/**
 * @file
 * Hardware page walker.
 *
 * Fills TLB misses by reading the two page-table levels out of
 * simulated memory. The walker itself is timing-agnostic: it reports
 * which physical line addresses a walk touches so the memory system
 * can charge cache/bus latency for them; the paper routes this
 * traffic *around* the content prefetcher (Section 3.5).
 */

#ifndef CDP_VM_PAGE_WALKER_HH
#define CDP_VM_PAGE_WALKER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "stats/stat.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace cdp
{

/** Result of one page walk. */
struct WalkResult
{
    /** Physical frame base of the translated page; nullopt = fault. */
    std::optional<Addr> framePa;
    /** Physical addresses read during the walk (PDE, then PTE). */
    std::vector<Addr> accesses;
};

/**
 * Walks the two-level page table on TLB misses and refills the TLB.
 */
class PageWalker
{
  public:
    PageWalker(PageTable &table, StatGroup *stats = nullptr,
               const std::string &name = "walker");

    /**
     * Perform a walk for @p va and, on success, install the
     * translation into @p tlb.
     */
    WalkResult walk(Addr va, Tlb &tlb);

    std::uint64_t walkCount() const { return walks.value(); }
    std::uint64_t faultCount() const { return faults.value(); }

  private:
    PageTable &table;
    StatGroup dummyGroup;
    Scalar walks;
    Scalar faults;
};

} // namespace cdp

#endif // CDP_VM_PAGE_WALKER_HH
