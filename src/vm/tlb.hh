/**
 * @file
 * Set-associative translation look-aside buffer.
 *
 * Table 1 of the paper specifies a 64-entry, 4-way DTLB and a
 * 128-entry, fully associative ITLB. Section 4.2.2 sweeps the DTLB
 * from 64 to 1024 entries to isolate the contribution of the content
 * prefetcher's implicit TLB prefetching, so both geometry parameters
 * are configurable.
 */

#ifndef CDP_VM_TLB_HH
#define CDP_VM_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace check { struct Access; }

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/**
 * An LRU, set-associative TLB caching VPN -> PFN translations.
 */
class Tlb
{
  public:
    /**
     * @param entries total entries (must be a multiple of @p ways)
     * @param ways associativity
     * @param stats optional stat group for hit/miss counters
     * @param name stat name prefix
     */
    Tlb(unsigned entries, unsigned ways, StatGroup *stats = nullptr,
        const std::string &name = "tlb");

    /**
     * Look up the translation for @p va, updating LRU on a hit.
     * @return physical frame base, or std::nullopt on a miss.
     */
    std::optional<Addr> lookup(Addr va);

    /**
     * Probe without updating replacement state or statistics (used by
     * speculative checks).
     */
    std::optional<Addr> probe(Addr va) const;

    /** Install a translation (evicting the set's LRU entry). */
    void insert(Addr va, Addr frame_pa);

    /** Drop every cached translation. */
    void flush();

    unsigned numEntries() const { return entries; }
    unsigned numWays() const { return ways; }
    std::uint64_t hitCount() const { return hits.value(); }
    std::uint64_t missCount() const { return misses.value(); }

    /** Serialize entries + LRU clock (checkpointing). */
    void saveState(snap::Writer &w) const;

    /** Restore entries; geometry must match. */
    void loadState(snap::Reader &r);

  private:
    friend struct check::Access;

    struct Entry
    {
        Addr vpn = 0;
        Addr framePa = 0;
        std::uint64_t lruStamp = 0;
        bool valid = false;
    };

    unsigned setIndex(Addr vpn) const { return vpn & (numSets - 1); }

    unsigned entries;
    unsigned ways;
    // cdplint: transient(numSets) -- derived from entries/ways, whose geometry loadState already cross-checks
    unsigned numSets;
    std::vector<Entry> table; // numSets * ways
    std::uint64_t stamp = 0;

    // cdplint: transient(dummyGroup, hits, misses) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyGroup; // used when caller passes no group
    Scalar hits;
    Scalar misses;
};

} // namespace cdp

#endif // CDP_VM_TLB_HH
