/**
 * @file
 * A two-level, IA-32-style page table that is *materialized in the
 * simulated physical memory*.
 *
 * The paper's processor model uses a hardware TLB "page-walk" that
 * accesses page-table structures in memory to fill TLB misses, and
 * explicitly bypasses the content prefetcher for that traffic because
 * page-table pages are full of pointers (Section 3.5). To reproduce
 * that behaviour and the associated ablation, walks here really read
 * page-directory and page-table entries out of the BackingStore, so
 * those lines have genuine pointer-dense content.
 *
 * Entry format (both levels): bits [31:12] = frame base, bit 0 =
 * valid. A 32-bit VA splits as [31:22] directory index, [21:12] table
 * index, [11:0] page offset.
 */

#ifndef CDP_VM_PAGE_TABLE_HH
#define CDP_VM_PAGE_TABLE_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"
#include "mem/backing_store.hh"
#include "mem/frame_allocator.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Physical addresses touched by one hardware page walk. */
struct WalkPath
{
    Addr pdeAddr; //!< physical address of the page-directory entry
    Addr pteAddr; //!< physical address of the page-table entry (or 0)
    bool complete; //!< false when the PDE was invalid
};

/**
 * Two-level page table resident in simulated physical memory.
 */
class PageTable
{
  public:
    /**
     * @param store physical memory holding the tables
     * @param frame_alloc allocator for page-table frames
     */
    PageTable(BackingStore &store, FrameAllocator &frame_alloc);

    /**
     * Map virtual page containing @p va to the physical frame
     * containing @p pa, creating the second-level table on demand.
     */
    void map(Addr va, Addr pa);

    /**
     * Functional translation (no timing).
     * @return physical address, or std::nullopt when unmapped.
     */
    std::optional<Addr> translate(Addr va) const;

    /**
     * The physical addresses a hardware walker must read to translate
     * @p va. Used by the PageWalker to inject timed memory accesses.
     */
    WalkPath walkPath(Addr va) const;

    /** Physical address of the page-directory base. */
    Addr rootAddr() const { return rootPa; }

    /** Number of virtual pages currently mapped. */
    std::uint64_t mappedPages() const { return _mappedPages; }

    /**
     * Serialize bookkeeping (checkpointing). The table *content*
     * lives in the BackingStore and is restored with it; only the
     * root address (a determinism guard) and the mapped-page count
     * travel here.
     */
    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    static constexpr std::uint32_t entryValid = 0x1;

    static Addr dirIndex(Addr va) { return (va >> 22) & 0x3ff; }
    static Addr tblIndex(Addr va) { return (va >> 12) & 0x3ff; }

    // cdplint: transient(store, frameAlloc) -- wiring references; the radix tree lives in the backing store, which checkpoints itself
    BackingStore &store;
    FrameAllocator &frameAlloc;
    Addr rootPa;
    std::uint64_t _mappedPages = 0;

    // cdplint: transient(lastVPage, lastFrameBase) -- pure translation memo over the (invalidated-on-map) radix tree; rebuilt on demand, never architectural state
    /**
     * One-entry translate() memo: the functional (untimed) translate
     * path is hammered by the workload generators, which walk their
     * data structures through simulated memory. Holds only *positive*
     * results; map() and loadState() invalidate it. Timed translation
     * (TLB + walker) never goes through this.
     */
    mutable Addr lastVPage = ~Addr{0};
    mutable Addr lastFrameBase = 0;
};

} // namespace cdp

#endif // CDP_VM_PAGE_TABLE_HH
