#include "vm/tlb.hh"

#include <stdexcept>

#include "snapshot/ckpt_io.hh"

namespace cdp
{

namespace
{

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Tlb::Tlb(unsigned entries, unsigned ways, StatGroup *stats,
         const std::string &name)
    : entries(entries), ways(ways),
      numSets(ways ? entries / ways : 0),
      hits(stats ? *stats : dummyGroup, name + ".hits", "TLB hits"),
      misses(stats ? *stats : dummyGroup, name + ".misses", "TLB misses")
{
    if (ways == 0 || entries % ways != 0)
        throw std::invalid_argument("Tlb: entries must be multiple of ways");
    if (!isPow2(numSets))
        throw std::invalid_argument("Tlb: number of sets must be pow2");
    table.resize(entries);
}

std::optional<Addr>
Tlb::lookup(Addr va)
{
    const Addr vpn = pageNumber(va);
    Entry *base = &table[setIndex(vpn) * ways];
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.vpn == vpn) {
            e.lruStamp = ++stamp;
            ++hits;
            return e.framePa;
        }
    }
    ++misses;
    return std::nullopt;
}

std::optional<Addr>
Tlb::probe(Addr va) const
{
    const Addr vpn = pageNumber(va);
    const Entry *base = &table[setIndex(vpn) * ways];
    for (unsigned w = 0; w < ways; ++w) {
        const Entry &e = base[w];
        if (e.valid && e.vpn == vpn)
            return e.framePa;
    }
    return std::nullopt;
}

void
Tlb::insert(Addr va, Addr frame_pa)
{
    const Addr vpn = pageNumber(va);
    Entry *base = &table[setIndex(vpn) * ways];
    Entry *victim = &base[0];
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.vpn == vpn) {
            victim = &e; // refresh existing entry in place
            break;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    victim->vpn = vpn;
    victim->framePa = pageAlign(frame_pa);
    victim->lruStamp = ++stamp;
    victim->valid = true;
}

void
Tlb::flush()
{
    for (auto &e : table)
        e.valid = false;
}

void
Tlb::saveState(snap::Writer &w) const
{
    w.u64(entries);
    w.u64(ways);
    w.u64(stamp);
    for (const Entry &e : table) {
        w.u32(e.vpn);
        w.u32(e.framePa);
        w.u64(e.lruStamp);
        w.boolean(e.valid);
    }
}

void
Tlb::loadState(snap::Reader &r)
{
    r.expectU64(entries, "TLB entries");
    r.expectU64(ways, "TLB ways");
    stamp = r.u64();
    for (Entry &e : table) {
        e.vpn = r.u32();
        e.framePa = r.u32();
        e.lruStamp = r.u64();
        e.valid = r.boolean();
    }
}

} // namespace cdp
