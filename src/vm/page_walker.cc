#include "vm/page_walker.hh"

namespace cdp
{

PageWalker::PageWalker(PageTable &table, StatGroup *stats,
                       const std::string &name)
    : table(table),
      walks(stats ? *stats : dummyGroup, name + ".walks",
            "hardware page walks performed"),
      faults(stats ? *stats : dummyGroup, name + ".faults",
             "walks that found no valid translation")
{
}

WalkResult
PageWalker::walk(Addr va, Tlb &tlb)
{
    ++walks;
    WalkResult res;
    const WalkPath path = table.walkPath(va);
    res.accesses.push_back(path.pdeAddr);
    if (!path.complete) {
        ++faults;
        res.framePa = std::nullopt;
        return res;
    }
    res.accesses.push_back(path.pteAddr);

    const auto pa = table.translate(va);
    if (!pa) {
        ++faults;
        res.framePa = std::nullopt;
        return res;
    }
    res.framePa = pageAlign(*pa);
    tlb.insert(va, *res.framePa);
    return res;
}

} // namespace cdp
