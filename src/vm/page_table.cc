#include "vm/page_table.hh"

#include "snapshot/ckpt_io.hh"

namespace cdp
{

PageTable::PageTable(BackingStore &store, FrameAllocator &frame_alloc)
    : store(store), frameAlloc(frame_alloc)
{
    rootPa = frameAlloc.allocate();
}

void
PageTable::map(Addr va, Addr pa)
{
    const Addr pde_addr = rootPa + dirIndex(va) * 4;
    std::uint32_t pde = store.read32(pde_addr);
    Addr table_pa;
    if (!(pde & entryValid)) {
        table_pa = frameAlloc.allocate();
        store.write32(pde_addr, pageAlign(table_pa) | entryValid);
    } else {
        table_pa = pageAlign(pde);
    }

    const Addr pte_addr = table_pa + tblIndex(va) * 4;
    const std::uint32_t old_pte = store.read32(pte_addr);
    if (!(old_pte & entryValid))
        ++_mappedPages;
    store.write32(pte_addr, pageAlign(pa) | entryValid);
    lastVPage = ~Addr{0}; // the memo may now be stale
}

std::optional<Addr>
PageTable::translate(Addr va) const
{
    if (pageAlign(va) == lastVPage)
        return lastFrameBase | pageOffset(va);
    const std::uint32_t pde = store.read32(rootPa + dirIndex(va) * 4);
    if (!(pde & entryValid))
        return std::nullopt;
    const std::uint32_t pte =
        store.read32(pageAlign(pde) + tblIndex(va) * 4);
    if (!(pte & entryValid))
        return std::nullopt;
    lastVPage = pageAlign(va);
    lastFrameBase = pageAlign(pte);
    return lastFrameBase | pageOffset(va);
}

WalkPath
PageTable::walkPath(Addr va) const
{
    WalkPath path{};
    path.pdeAddr = rootPa + dirIndex(va) * 4;
    const std::uint32_t pde = store.read32(path.pdeAddr);
    if (!(pde & entryValid)) {
        path.pteAddr = 0;
        path.complete = false;
        return path;
    }
    path.pteAddr = pageAlign(pde) + tblIndex(va) * 4;
    path.complete = true;
    return path;
}

void
PageTable::saveState(snap::Writer &w) const
{
    w.u64(rootPa);
    w.u64(_mappedPages);
}

void
PageTable::loadState(snap::Reader &r)
{
    // The root frame is the first allocation of a freshly built
    // simulator; a mismatch means the restore target was constructed
    // differently from the checkpoint writer.
    r.expectU64(rootPa, "page-table root frame");
    _mappedPages = r.u64();
    lastVPage = ~Addr{0}; // backing-store content was just replaced
}

} // namespace cdp
