/**
 * @file
 * Compile-time-gated simulation invariant checking.
 *
 * The simulator's correctness rests on structural invariants the
 * paper relies on but that no single unit test can guard globally:
 * bounded per-line depth tags (Section 3.4.2), MSHR merge/promotion
 * lifecycle legality (Section 3.5), and strict demand > stride >
 * content arbitration. `CDP_CHECK` / `CDP_CHECK_MSG` verify such
 * invariants at their hook points and abort with a diagnostic dump of
 * the offending component's state.
 *
 * The checks compile to nothing unless the build defines
 * `CDP_ENABLE_CHECKS` (CMake option of the same name), so release
 * builds pay zero cost. Heavier whole-structure audits live in
 * check/invariants.hh and are invoked from the same gated hook
 * points.
 *
 * This header is dependency-free on purpose: any layer, including
 * common/types.hh, may include it without creating a link or include
 * cycle.
 */

#ifndef CDP_CHECK_CHECK_HH
#define CDP_CHECK_CHECK_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace cdp
{
namespace check
{

/**
 * Report an invariant violation and abort. @p dump is the offending
 * component's state, rendered by the caller (empty when there is no
 * component context).
 */
[[noreturn]] inline void
fail(const char *file, int line, const char *expr,
     const std::string &dump)
{
    std::fprintf(stderr,
                 "\n=== CDP invariant violation ===\n"
                 "check:    %s\n"
                 "location: %s:%d\n",
                 expr, file, line);
    if (!dump.empty())
        std::fprintf(stderr, "state:\n%s\n", dump.c_str());
    std::fflush(stderr);
    std::abort();
}

} // namespace check
} // namespace cdp

#ifdef CDP_ENABLE_CHECKS

/** Abort with a diagnostic when @p cond is false (checked builds). */
#define CDP_CHECK(cond)                                                 \
    do {                                                                \
        if (!(cond))                                                    \
            ::cdp::check::fail(__FILE__, __LINE__, #cond,               \
                               std::string());                          \
    } while (false)

/**
 * Abort when @p cond is false, printing @p dump (a std::string
 * expression, evaluated only on failure) as the component state.
 */
#define CDP_CHECK_MSG(cond, dump)                                       \
    do {                                                                \
        if (!(cond))                                                    \
            ::cdp::check::fail(__FILE__, __LINE__, #cond, (dump));      \
    } while (false)

/** True when invariant checking is compiled in. */
#define CDP_CHECKS_ENABLED 1

#else // !CDP_ENABLE_CHECKS

// sizeof keeps the condition/dump expressions syntactically checked
// (and their operands "used") without evaluating them at runtime.
#define CDP_CHECK(cond) ((void)sizeof(!(cond)))
#define CDP_CHECK_MSG(cond, dump) ((void)sizeof(!(cond)))

#define CDP_CHECKS_ENABLED 0

#endif // CDP_ENABLE_CHECKS

#endif // CDP_CHECK_CHECK_HH
