#include "check/invariants.hh"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "check/access.hh"

namespace cdp
{
namespace check
{

namespace
{

std::ostream &
operator<<(std::ostream &os, const MshrEntry &e)
{
    os << reqTypeName(e.type) << " pa=0x" << std::hex << e.linePa
       << " va=0x" << e.lineVa << " ea=0x" << e.vaddr << std::dec
       << " depth=" << e.depth << " done@" << e.completion
       << (e.promoted ? " promoted" : "")
       << (e.widthLine ? " width" : "")
       << (e.pollution ? " pollution" : "")
       << (e.strideOverlap ? " overlap" : "");
    return os;
}

std::ostream &
operator<<(std::ostream &os, const MemRequest &r)
{
    os << reqTypeName(r.type) << " id=" << r.id << " va=0x" << std::hex
       << r.lineVa << std::dec << " depth=" << r.depth << " enq@"
       << r.enqueued << (r.widthLine ? " width" : "");
    return os;
}

} // namespace

std::string
dumpCacheSet(const Cache &c, unsigned set, const char *who)
{
    const auto &lines = Access::lines(c);
    const unsigned ways = c.numWays();
    std::ostringstream os;
    os << who << ": set " << set << " of " << c.numSets() << " ("
       << ways << "-way, global lru stamp "
       << Access::lruStamp(c) << ")\n";
    for (unsigned w = 0; w < ways; ++w) {
        const CacheLine &l =
            lines[static_cast<std::size_t>(set) * ways + w];
        os << "  way " << w << ": ";
        if (!l.valid) {
            os << "invalid\n";
            continue;
        }
        os << "tag=0x" << std::hex << l.tag << std::dec << " lru="
           << l.lruStamp << " depth="
           << static_cast<unsigned>(l.storedDepth) << " fill="
           << reqTypeName(l.fillType) << " fill@" << l.fillCycle
           << (l.prefetched ? " prefetched" : "")
           << (l.everUsed ? " used" : "") << "\n";
    }
    return os.str();
}

void
auditCache(const Cache &c, unsigned max_depth,
           [[maybe_unused]] const char *who)
{
    const auto &lines = Access::lines(c);
    const unsigned ways = c.numWays();
    const unsigned sets = c.numSets();
    const std::uint64_t global = Access::lruStamp(c);

    for (unsigned s = 0; s < sets; ++s) {
        const CacheLine *base =
            &lines[static_cast<std::size_t>(s) * ways];
        for (unsigned w = 0; w < ways; ++w) {
            const CacheLine &l = base[w];
            if (!l.valid)
                continue;
            CDP_CHECK_MSG(l.tag == lineAlign(l.tag),
                          dumpCacheSet(c, s, who));
            CDP_CHECK_MSG(Access::setOf(c, l.tag) == s,
                          dumpCacheSet(c, s, who));
            CDP_CHECK_MSG(l.lruStamp <= global,
                          dumpCacheSet(c, s, who));
            CDP_CHECK_MSG(l.storedDepth <= max_depth,
                          dumpCacheSet(c, s, who));
            for (unsigned v = w + 1; v < ways; ++v) {
                const CacheLine &o = base[v];
                if (!o.valid)
                    continue;
                CDP_CHECK_MSG(o.tag != l.tag, dumpCacheSet(c, s, who));
                CDP_CHECK_MSG(o.lruStamp != l.lruStamp,
                              dumpCacheSet(c, s, who));
            }
        }
    }
}

std::vector<std::pair<Addr, MshrEntry>>
sortedMshrEntries(const MshrFile &m)
{
    const auto &raw = Access::entries(m);
    std::vector<std::pair<Addr, MshrEntry>> snap(raw.begin(), raw.end());
    std::sort(snap.begin(), snap.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return snap;
}

std::string
dumpMshr(const MshrFile &m, const char *who)
{
    std::ostringstream os;
    os << who << ": " << m.size() << "/" << Access::capacity(m)
       << " entries\n";
    for (const auto &[key, e] : sortedMshrEntries(m)) {
        os << "  [0x" << std::hex << key << std::dec << "] " << e
           << "\n";
    }
    return os.str();
}

void
auditMshr(const MshrFile &m, unsigned content_depth_max,
          [[maybe_unused]] const char *who)
{
    CDP_CHECK_MSG(Access::entries(m).size() <= Access::capacity(m),
                  dumpMshr(m, who));
    for (const auto &[key, e] : sortedMshrEntries(m)) {
        CDP_CHECK_MSG(key == lineAlign(key), dumpMshr(m, who));
        CDP_CHECK_MSG(e.linePa == key, dumpMshr(m, who));
        // Promotion legality (Section 3.5): promoting an in-flight
        // prefetch reclassifies it as a demand; an entry can never be
        // both promoted and still prefetch-class.
        CDP_CHECK_MSG(!(e.promoted && isPrefetch(e.type)),
                      dumpMshr(m, who));
        // Width lines are only ever born as prefetches; a demand-class
        // width entry must have arrived there via promotion.
        CDP_CHECK_MSG(!e.widthLine || isPrefetch(e.type) || e.promoted,
                      dumpMshr(m, who));
        if (e.type == ReqType::ContentPrefetch)
            CDP_CHECK_MSG(e.depth <= content_depth_max,
                          dumpMshr(m, who));
    }
}

std::size_t
prefetchEntryCount(const MshrFile &m)
{
    std::size_t n = 0;
    for (const auto &[key, e] : Access::entries(m)) {
        (void)key;
        if (isPrefetch(e.type) || e.promoted)
            ++n;
    }
    return n;
}

std::string
dumpArbiter(const QueuedArbiter &a, const char *who)
{
    std::ostringstream os;
    os << who << ": " << a.size() << "/" << a.capacityOf()
       << " resident; enqueued=" << Access::enqueuedCount(a)
       << " issued=" << Access::issuedCount(a)
       << " dropped=" << Access::droppedCount(a)
       << " extracted=" << Access::extractedCount(a) << "\n";
    for (unsigned p = 0; p < numPriorities; ++p) {
        os << "  class " << p << " (" << a.sizeOfClass(p) << "):\n";
        for (const MemRequest &r : Access::classQueue(a, p))
            os << "    " << r << "\n";
    }
    return os.str();
}

void
auditArbiter(const QueuedArbiter &a, [[maybe_unused]] const char *who)
{
    std::size_t resident = 0;
    for (unsigned p = 0; p < numPriorities; ++p) {
        const auto &q = Access::classQueue(a, p);
        resident += q.size();
        for (const MemRequest &r : q) {
            // Strict-priority structure: a request must sit in the
            // queue of its own class, or arbitration order is broken.
            CDP_CHECK_MSG(r.priority() == p, dumpArbiter(a, who));
            CDP_CHECK_MSG(r.lineVa == lineAlign(r.lineVa),
                          dumpArbiter(a, who));
        }
    }
    CDP_CHECK_MSG(resident == a.size(), dumpArbiter(a, who));
    CDP_CHECK_MSG(a.size() <= a.capacityOf(), dumpArbiter(a, who));
    // Conservation: every request ever accepted either left through
    // an accounted exit (issued to the bus, displaced by a demand,
    // extracted for promotion) or is still resident. Dropped and
    // displaced exits carry stats (arb.rejected / arb.displaced).
    CDP_CHECK_MSG(Access::enqueuedCount(a) ==
                      Access::issuedCount(a) + Access::droppedCount(a) +
                          Access::extractedCount(a) + a.size(),
                  dumpArbiter(a, who));
}

std::string
dumpTlb(const Tlb &t, const char *who)
{
    std::ostringstream os;
    os << who << ": " << t.numEntries() << " entries, "
       << t.numWays() << "-way\n";
    for (const auto &e : Access::tlbEntries(t)) {
        if (!e.valid)
            continue;
        os << "  vpn=0x" << std::hex << e.vpn << " -> frame=0x"
           << e.framePa << std::dec << "\n";
    }
    return os.str();
}

void
auditTlb(const Tlb &t, const PageTable &pt,
         [[maybe_unused]] const char *who)
{
    for (const auto &e : Access::tlbEntries(t)) {
        if (!e.valid)
            continue;
        const Addr va = e.vpn << pageShift;
        const auto pa = pt.translate(va);
        // Every cached translation must be backed by a live mapping
        // that agrees on the frame; anything else is a stale or
        // fabricated TLB entry.
        CDP_CHECK_MSG(pa.has_value(), dumpTlb(t, who));
        CDP_CHECK_MSG(!pa || *pa == e.framePa, dumpTlb(t, who));
        CDP_CHECK_MSG(e.framePa == pageAlign(e.framePa),
                      dumpTlb(t, who));
    }
}

} // namespace check
} // namespace cdp
