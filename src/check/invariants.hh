/**
 * @file
 * Whole-structure invariant audits for the simulator's core
 * components, plus the state-dump helpers their failure diagnostics
 * (and the fault-injection tests) use.
 *
 * Each `audit*` function walks one component and aborts through
 * CDP_CHECK_MSG on the first violated invariant, printing a dump of
 * the offending state. With CDP_ENABLE_CHECKS off the contained
 * checks compile to nothing, so the audits reduce to harmless walks;
 * their call sites (MemorySystem::checkInvariants and the gated hook
 * points) are additionally compiled out, so release builds never pay
 * for them.
 *
 * The invariants encoded here, and the paper sections they come from,
 * are enumerated in DESIGN.md ("Invariants").
 */

#ifndef CDP_CHECK_INVARIANTS_HH
#define CDP_CHECK_INVARIANTS_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "check/check.hh"
#include "memsys/cache.hh"
#include "memsys/mshr.hh"
#include "memsys/queued_arbiter.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace cdp
{
namespace check
{

/**
 * Audit a cache: tag alignment and set residency, tag uniqueness per
 * set, LRU-stamp consistency (every valid stamp <= the cache's global
 * stamp, stamps distinct within a set), and depth tags bounded by
 * @p max_depth (Section 3.4.2's request-depth threshold).
 */
void auditCache(const Cache &c, unsigned max_depth, const char *who);

/**
 * Audit the MSHR file: occupancy within capacity (no leaked
 * entries), key/address agreement, merge/promotion state legality (a
 * promoted entry must have left the prefetch class and vice versa),
 * width-line provenance, and content-chain depth bounds.
 */
void auditMshr(const MshrFile &m, unsigned content_depth_max,
               const char *who);

/**
 * Audit an arbiter: queue conservation (every request ever accepted
 * was issued, displaced, extracted, or is still resident — the
 * drop/squash paths all carry a stat) and strict class ordering
 * (every resident request sits in the queue of its own priority;
 * Section 3.5's demand > stride > content order).
 */
void auditArbiter(const QueuedArbiter &a, const char *who);

/**
 * Audit the TLB against the page table: every valid entry must be
 * backed by a live page-table mapping translating to the same frame.
 */
void auditTlb(const Tlb &t, const PageTable &pt, const char *who);

/** MSHR entries currently in the prefetch lifecycle (prefetch-class
 *  or demand-promoted); MemorySystem checks its in-flight counter
 *  against this. */
std::size_t prefetchEntryCount(const MshrFile &m);

/**
 * Key-sorted snapshot of the MSHR file's entries. The backing
 * container is hash-ordered, so every walk that feeds a dump or a
 * per-entry check message must go through this to keep diagnostics
 * byte-deterministic across runs.
 */
std::vector<std::pair<Addr, MshrEntry>> sortedMshrEntries(const MshrFile &m);

// State-dump helpers (always compiled; evaluated lazily on failure).
std::string dumpCacheSet(const Cache &c, unsigned set, const char *who);
std::string dumpMshr(const MshrFile &m, const char *who);
std::string dumpArbiter(const QueuedArbiter &a, const char *who);
std::string dumpTlb(const Tlb &t, const char *who);

} // namespace check
} // namespace cdp

#endif // CDP_CHECK_INVARIANTS_HH
