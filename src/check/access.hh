/**
 * @file
 * Controlled access to component internals for the invariant-checker
 * subsystem and its fault-injection tests.
 *
 * The checkers in check/invariants.cc must read private state (cache
 * line arrays, the MSHR map, arbiter class queues, TLB entries) to
 * audit structural invariants, and the death tests must *corrupt*
 * that state to prove each check fires. Rather than widening every
 * component's public API, each component befriends this single
 * struct; everything else in the tree keeps the narrow interface.
 */

#ifndef CDP_CHECK_ACCESS_HH
#define CDP_CHECK_ACCESS_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "memsys/cache.hh"
#include "memsys/mshr.hh"
#include "memsys/queued_arbiter.hh"
#include "memsys/request.hh"
#include "vm/tlb.hh"

namespace cdp
{
namespace check
{

/** Befriended window into component internals (checks/tests only). */
struct Access
{
    // --- Cache ------------------------------------------------------
    static const std::vector<CacheLine> &lines(const Cache &c)
    {
        return c.lines;
    }
    static std::vector<CacheLine> &lines(Cache &c) { return c.lines; }
    static std::uint64_t lruStamp(const Cache &c) { return c.stamp; }
    static unsigned setOf(const Cache &c, Addr line_addr)
    {
        return c.setIndex(line_addr);
    }

    // --- MshrFile ---------------------------------------------------
    static const std::unordered_map<Addr, MshrEntry> &
    entries(const MshrFile &m)
    {
        return m.entries;
    }
    static std::unordered_map<Addr, MshrEntry> &entries(MshrFile &m)
    {
        return m.entries;
    }
    static unsigned capacity(const MshrFile &m) { return m.capacity; }

    // --- QueuedArbiter ----------------------------------------------
    static const std::deque<MemRequest> &
    classQueue(const QueuedArbiter &a, unsigned prio)
    {
        return a.queues[prio];
    }
    static std::deque<MemRequest> &classQueue(QueuedArbiter &a,
                                              unsigned prio)
    {
        return a.queues[prio];
    }
    static std::size_t &totalRef(QueuedArbiter &a) { return a.total; }
    static std::uint64_t enqueuedCount(const QueuedArbiter &a)
    {
        return a.enqueuedCount;
    }
    static std::uint64_t issuedCount(const QueuedArbiter &a)
    {
        return a.issuedCount;
    }
    static std::uint64_t droppedCount(const QueuedArbiter &a)
    {
        return a.droppedCount;
    }
    static std::uint64_t extractedCount(const QueuedArbiter &a)
    {
        return a.extractedCount;
    }

    // --- Tlb --------------------------------------------------------
    struct TlbEntryView
    {
        Addr vpn;
        Addr framePa;
        bool valid;
    };
    static std::vector<TlbEntryView> tlbEntries(const Tlb &t)
    {
        std::vector<TlbEntryView> out;
        out.reserve(t.table.size());
        for (const auto &e : t.table)
            out.push_back({e.vpn, e.framePa, e.valid});
        return out;
    }
    /** Install a raw entry bypassing Tlb::insert (fault injection). */
    static void corruptTlbEntry(Tlb &t, std::size_t slot, Addr vpn,
                                Addr frame_pa)
    {
        t.table[slot].vpn = vpn;
        t.table[slot].framePa = frame_pa;
        t.table[slot].valid = true;
    }
};

} // namespace check
} // namespace cdp

#endif // CDP_CHECK_ACCESS_HH
