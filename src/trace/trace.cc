#include "trace/trace.hh"

#include <cstring>
#include <stdexcept>

namespace cdp
{

namespace
{

/** On-disk uop record (fixed 16 bytes including pc/vaddr). */
struct Record
{
    std::uint8_t type;
    std::uint8_t flags;
    std::int8_t src0;
    std::int8_t src1;
    std::int8_t dst;
    std::uint8_t pad[3];
    std::uint32_t pc;
    std::uint32_t vaddr;
};
static_assert(sizeof(Record) == 16, "trace record must be 16 bytes");

Record
pack(const Uop &u)
{
    Record r{};
    r.type = static_cast<std::uint8_t>(u.type);
    r.flags = (u.taken ? 1u : 0u) | (u.pointerLoad ? 2u : 0u);
    r.src0 = u.src0;
    r.src1 = u.src1;
    r.dst = u.dst;
    r.pc = u.pc;
    r.vaddr = u.vaddr;
    return r;
}

Uop
unpack(const Record &r)
{
    Uop u;
    u.type = static_cast<UopType>(r.type);
    u.taken = (r.flags & 1u) != 0;
    u.pointerLoad = (r.flags & 2u) != 0;
    u.src0 = r.src0;
    u.src1 = r.src1;
    u.dst = r.dst;
    u.pc = r.pc;
    u.vaddr = r.vaddr;
    return u;
}

/** Header layout: magic, version, count, tag length, tag bytes. */
void
writeU32(std::FILE *f, std::uint32_t v)
{
    if (std::fwrite(&v, sizeof(v), 1, f) != 1)
        throw std::runtime_error("trace: short write");
}

void
writeU64(std::FILE *f, std::uint64_t v)
{
    if (std::fwrite(&v, sizeof(v), 1, f) != 1)
        throw std::runtime_error("trace: short write");
}

std::uint32_t
readU32(std::FILE *f)
{
    std::uint32_t v = 0;
    if (std::fread(&v, sizeof(v), 1, f) != 1)
        throw std::runtime_error("trace: short read");
    return v;
}

std::uint64_t
readU64(std::FILE *f)
{
    std::uint64_t v = 0;
    if (std::fread(&v, sizeof(v), 1, f) != 1)
        throw std::runtime_error("trace: short read");
    return v;
}

} // namespace

// --------------------------------------------------------- TraceWriter

TraceWriter::TraceWriter(const std::string &path,
                         const std::string &workload_tag)
    : tag(workload_tag)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        throw std::runtime_error("trace: cannot open for write: " +
                                 path);
    writeHeader();
}

TraceWriter::~TraceWriter()
{
    if (!closed) {
        try {
            close();
        } catch (...) {
            // Destructor must not throw; the file may be truncated.
        }
    }
}

void
TraceWriter::writeHeader()
{
    std::rewind(file);
    writeU32(file, traceMagic);
    writeU32(file, traceVersion);
    writeU64(file, written);
    writeU32(file, static_cast<std::uint32_t>(tag.size()));
    if (!tag.empty() &&
        std::fwrite(tag.data(), 1, tag.size(), file) != tag.size())
        throw std::runtime_error("trace: short write (tag)");
}

void
TraceWriter::append(const Uop &u)
{
    if (closed)
        throw std::logic_error("trace: append after close");
    const Record r = pack(u);
    if (std::fwrite(&r, sizeof(r), 1, file) != 1)
        throw std::runtime_error("trace: short write (record)");
    ++written;
}

void
TraceWriter::close()
{
    if (closed)
        return;
    writeHeader(); // rewrite with the final count
    if (std::fclose(file) != 0)
        throw std::runtime_error("trace: close failed");
    file = nullptr;
    closed = true;
}

// --------------------------------------------------------- TraceReader

TraceReader::TraceReader(const std::string &path)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        throw std::runtime_error("trace: cannot open for read: " +
                                 path);
    if (readU32(file) != traceMagic)
        throw std::runtime_error("trace: bad magic in " + path);
    if (readU32(file) != traceVersion)
        throw std::runtime_error("trace: unsupported version in " +
                                 path);
    total = readU64(file);
    const std::uint32_t tag_len = readU32(file);
    tag.resize(tag_len);
    if (tag_len &&
        std::fread(tag.data(), 1, tag_len, file) != tag_len)
        throw std::runtime_error("trace: short read (tag)");
}

TraceReader::~TraceReader()
{
    if (file)
        std::fclose(file);
}

bool
TraceReader::next(Uop &u)
{
    if (consumed >= total)
        return false;
    Record r;
    if (std::fread(&r, sizeof(r), 1, file) != 1)
        throw std::runtime_error("trace: truncated record");
    u = unpack(r);
    ++consumed;
    return true;
}

// --------------------------------------------------------- TraceSource

TraceSource::TraceSource(const std::string &path)
    : path(path), reader(std::make_unique<TraceReader>(path))
{
    if (reader->count() == 0)
        throw std::runtime_error("trace: empty trace: " + path);
    sourceName = "trace:" + reader->workloadTag();
}

Uop
TraceSource::next()
{
    Uop u;
    if (!reader->next(u)) {
        reader = std::make_unique<TraceReader>(path);
        ++wrapCount;
        if (!reader->next(u))
            throw std::runtime_error("trace: empty after reopen");
    }
    return u;
}

// ----------------------------------------------------- CapturingSource

CapturingSource::CapturingSource(UopSource &inner,
                                 const std::string &path,
                                 const std::string &workload_tag)
    : inner(inner), writer(path, workload_tag)
{
}

Uop
CapturingSource::next()
{
    const Uop u = inner.next();
    writer.append(u);
    return u;
}

} // namespace cdp
