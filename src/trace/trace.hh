/**
 * @file
 * Uop-trace capture and replay.
 *
 * The paper drives its simulator from LITs — checkpoints replayed as
 * instruction streams. This module provides the equivalent facility
 * for our generated workloads: any UopSource can be captured to a
 * compact binary trace file and replayed later, byte-for-byte
 * deterministically, decoupling workload generation from timing
 * experiments (and letting a tuned uop stream be shared between
 * machines or attached to a bug report).
 *
 * File format (little-endian):
 *   header: magic "CDPT", u32 version, u64 uop count
 *   records: one 14-byte record per uop
 *     u8  type          (UopType)
 *     u8  flags         (bit0 taken, bit1 pointerLoad)
 *     i8  src0, src1, dst
 *     u8  pad
 *     u32 pc
 *     u32 vaddr
 *
 * Note: a trace captures the *uop stream*, not the memory image; a
 * replayed trace is only meaningful against the same simulated heap
 * contents (same workload spec and seed), which the header's
 * workload tag records.
 */

#ifndef CDP_TRACE_TRACE_HH
#define CDP_TRACE_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cpu/uop.hh"

namespace cdp
{

/** Trace-file magic and version. */
constexpr std::uint32_t traceMagic = 0x54504443; // "CDPT"
constexpr std::uint32_t traceVersion = 1;

/**
 * Writes uops to a trace file.
 */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing.
     * @param workload_tag workload name + seed recorded in the header
     * @throw std::runtime_error when the file cannot be opened
     */
    TraceWriter(const std::string &path,
                const std::string &workload_tag);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one uop. */
    void append(const Uop &u);

    /** Finalize the header (uop count) and close. */
    void close();

    std::uint64_t count() const { return written; }

  private:
    void writeHeader();

    std::FILE *file = nullptr;
    std::string tag;
    std::uint64_t written = 0;
    bool closed = false;
};

/**
 * Reads a trace file; validates magic/version on open.
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /**
     * Read the next uop.
     * @return false at end of trace.
     */
    bool next(Uop &u);

    std::uint64_t count() const { return total; }
    const std::string &workloadTag() const { return tag; }

  private:
    std::FILE *file = nullptr;
    std::uint64_t total = 0;
    std::uint64_t consumed = 0;
    std::string tag;
};

/**
 * UopSource replaying a trace file; loops back to the start when the
 * trace is exhausted (workload streams are conceptually infinite).
 */
class TraceSource : public UopSource
{
  public:
    explicit TraceSource(const std::string &path);

    Uop next() override;
    const char *name() const override { return sourceName.c_str(); }

    /** Times the trace wrapped back to its beginning. */
    std::uint64_t wraps() const { return wrapCount; }

  private:
    std::string path;
    std::string sourceName;
    std::unique_ptr<TraceReader> reader;
    std::uint64_t wrapCount = 0;
};

/**
 * Pass-through UopSource that captures everything it forwards.
 */
class CapturingSource : public UopSource
{
  public:
    CapturingSource(UopSource &inner, const std::string &path,
                    const std::string &workload_tag);

    Uop next() override;
    const char *name() const override { return inner.name(); }

    /** Stop capturing and finalize the file. */
    void finish() { writer.close(); }

    std::uint64_t captured() const { return writer.count(); }

  private:
    UopSource &inner;
    TraceWriter writer;
};

} // namespace cdp

#endif // CDP_TRACE_TRACE_HH
