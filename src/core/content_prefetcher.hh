/**
 * @file
 * The content-directed data prefetcher — the paper's contribution
 * (Sections 3.1, 3.4, 3.5).
 *
 * The prefetcher receives a copy of every UL2 fill (demand and
 * prefetch), scans it with the VAM heuristic, and emits candidate
 * prefetches. Three mechanisms shape the request stream:
 *
 *  - **Chaining / request depth** (3.4.1): a prefetch born from a
 *    demand fill has depth 1; a prefetch born from a prefetch fill of
 *    depth d has depth d+1; fills whose depth has reached the
 *    threshold are not scanned, bounding speculation.
 *  - **Width** (3.4.3): each candidate may pull in @p nextLines
 *    following lines (and optionally @p prevLines preceding ones) at
 *    the same depth — trading "deeper" for "wider" because node
 *    instances span cache lines.
 *  - **Path reinforcement** (3.4.2): a demand (or shallower) hit on a
 *    prefetched line whose stored depth exceeds the request depth
 *    promotes the line and *rescans* it, re-extending the chain so
 *    prefetching stays a threshold's distance ahead. The rescan can
 *    be throttled to fire only when the depth improves by at least
 *    @p reinforceMinDelta (Figure 4c halves the rescans with delta 2).
 *
 * The class is a pure policy engine: it decides *what* to prefetch;
 * translation, duplicate suppression against caches/arbiters/MSHRs,
 * and queueing are the memory system's job (Figure 6).
 */

#ifndef CDP_CORE_CONTENT_PREFETCHER_HH
#define CDP_CORE_CONTENT_PREFETCHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/vam.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Configuration of the content prefetcher. */
struct CdpConfig
{
    bool enabled = true;
    VamConfig vam{};
    /** Prefetch chains stop when request depth reaches this. */
    unsigned depthThreshold = 3;
    /** Lines fetched after each candidate ("wider"). */
    unsigned nextLines = 3;
    /** Lines fetched before each candidate. */
    unsigned prevLines = 0;
    /** Enable path reinforcement (depth tags in the UL2). */
    bool reinforce = true;
    /**
     * Minimum (storedDepth - requestDepth) required to trigger a
     * rescan; 1 = always rescan on promotion, 2 = Figure 4(c).
     */
    unsigned reinforceMinDelta = 1;
    /** Scan fills produced by page walks (off per Section 3.5). */
    bool scanPageWalkFills = false;
    /**
     * Scan next/prev-line (width) fills when they return. Width
     * prefetches exist to pull in the rest of a node instance
     * (Section 3.4.3), not to extend the recursive chain; scanning
     * them makes the chain frontier grow geometrically and the
     * resulting prefetch storm pollutes the UL2. Off by default;
     * exposed for the ablation bench.
     */
    bool scanWidthFills = false;
    /**
     * Emit width (next/prev-line) companions on reinforcement
     * rescans. A rescan's purpose is to re-extend the *chain*
     * (Section 3.4.2); re-emitting width lines on every demand hit
     * refetches previously evicted width junk and sustains cache
     * pollution. Off by default; exposed for the ablation bench.
     */
    bool widthOnRescan = false;

    /** "p0.n3"-style label used by Figure 9. */
    std::string widthLabel() const;
};

/** Field-wise equality (checkpoint live-config reconciliation). */
bool operator==(const VamConfig &a, const VamConfig &b);
bool operator==(const CdpConfig &a, const CdpConfig &b);
inline bool operator!=(const CdpConfig &a, const CdpConfig &b)
{
    return !(a == b);
}

namespace snap
{
/** Serialize every CdpConfig knob. */
void saveCdpConfig(Writer &w, const CdpConfig &cfg);
/** Read a CdpConfig written by saveCdpConfig. */
CdpConfig loadCdpConfig(Reader &r);
} // namespace snap

/** One prefetch the content prefetcher wants issued. */
struct CdpCandidate
{
    Addr vaddr = 0;      //!< predicted pointer target (virtual)
    Addr lineVa = 0;     //!< line to fetch (candidate or next/prev line)
    unsigned depth = 0;  //!< request depth to assign
    bool widthLine = false; //!< true for next/prev-line companions
    /**
     * Provenance hop: this candidate's index within the scan that
     * emitted it (width companions count). Combined with the fill's
     * root id, (root, depth, hop) uniquely names the chain position
     * of every derived prefetch (see src/obs/event.hh).
     */
    unsigned hop = 0;
};

/**
 * Content-directed prefetcher policy engine.
 */
class ContentPrefetcher
{
  public:
    explicit ContentPrefetcher(const CdpConfig &cfg = CdpConfig{},
                               StatGroup *stats = nullptr,
                               const std::string &name = "cdp");

    /**
     * Scan a fill and emit candidate prefetches.
     *
     * @param line the lineBytes bytes of fill data
     * @param trigger_ea virtual effective address of the triggering
     *        request (demand EA, or the candidate address for a
     *        chained prefetch)
     * @param fill_depth request depth of the fill being scanned
     * @param is_rescan true when driven by path reinforcement
     * @return prefetches to issue, duplicates within the scan removed
     */
    std::vector<CdpCandidate> scanFill(const std::uint8_t *line,
                                       Addr trigger_ea,
                                       unsigned fill_depth,
                                       bool is_rescan = false);

    /**
     * Reinforcement predicate: should a hit with @p req_depth on a
     * line tagged @p stored_depth trigger promotion + rescan?
     */
    bool shouldRescan(unsigned req_depth, unsigned stored_depth) const;

    /** Is a fill of @p depth scanned at all (depth < threshold)? */
    bool scansAtDepth(unsigned depth) const
    {
        return depth < cfg.depthThreshold;
    }

    const CdpConfig &config() const { return cfg; }
    const Vam &vam() const { return predictor; }

    /**
     * Swap in a new configuration at runtime (used by the adaptive
     * controller). The predictor is rebuilt; counters are preserved.
     */
    void reconfigure(const CdpConfig &new_cfg);

    std::uint64_t linesScanned() const { return scans.value(); }
    std::uint64_t rescanCount() const { return rescans.value(); }
    std::uint64_t candidatesFound() const { return candidates.value(); }

    /**
     * Serialize the live configuration — which may differ from the
     * construction-time config when the adaptive controller has tuned
     * it mid-run. The VAM itself is stateless (the paper's premise),
     * so the config is the *only* state worth saving.
     */
    void saveState(snap::Writer &w) const;

    /**
     * Consume the saved live configuration; apply it via
     * reconfigure() only when @p apply_config is true (the restoring
     * simulator keeps its own knobs when it was constructed with a
     * deliberately different sweep configuration).
     */
    void loadState(snap::Reader &r, bool apply_config);

  private:
    CdpConfig cfg;
    // cdplint: transient(predictor) -- the VAM is stateless by design (the paper's central claim); nothing to checkpoint
    Vam predictor;

    // cdplint: transient(dummyGroup, scans, rescans, candidates, widthLines, depthSuppressed) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyGroup;
    Scalar scans;
    Scalar rescans;
    Scalar candidates;
    Scalar widthLines;
    Scalar depthSuppressed;
};

} // namespace cdp

#endif // CDP_CORE_CONTENT_PREFETCHER_HH
