/**
 * @file
 * SIMD kernels behind Vam::scanLine (see core/vam.hh for the dispatch
 * contract). Each kernel evaluates the VAM predicate of classify()
 * lane-parallel over every word offset of a line and returns a bitmap
 * of candidate byte offsets; Vam::scanLine then materializes the
 * stepped-offset candidate list from the mask, so the output is
 * bit-exact with scanLineScalar for every legal VamConfig
 * (tests/test_vam_simd.cc enumerates the lattice).
 *
 * Lane layout: the line is copied into a zero-padded 80-byte aligned
 * buffer so that for each residue r in [0,4) the words at byte
 * offsets r, r+4, ..., r+60 load as consecutive dword lanes of
 * unaligned vector loads at buf+r+16k (SSE2) / buf+r+32k (AVX2). The
 * widest load touches byte 67, inside the padded buffer, which keeps
 * every access in-bounds under AddressSanitizer. Padding words
 * (offsets 61..63) may set mask bits; scanLine never reads past
 * offset lineBytes - wordBytes, so those bits are dead.
 *
 * The predicate per lane, mirroring Vam::classify():
 *   aligned   = (word & alignMask) == 0
 *   top       = word >> compareShift          (compareShift in [1,31])
 *   topEq     = top == ea_top
 *   filt      = (word >> filterShift) & filterMask
 *   reject    = (top == 0 && filt == 0) ||
 *               (top == compareMax && filt == filterMask)
 *   candidate = aligned && topEq && !reject
 * With filterBits == 0 both region tests degenerate to "always
 * reject", exactly as in the scalar code.
 */

#include "core/vam.hh"

#include <cstring>
#include <stdexcept>

#if CDP_SIMD_ENABLED
#include <immintrin.h>
#endif

namespace cdp
{

#if CDP_SIMD_ENABLED

static_assert(lineBytes == 64 && wordBytes == 4,
              "SIMD VAM kernels assume 64-byte lines of 32-bit words");

namespace
{

/** Scatter 4 lane bits to mask bits 0/4/8/12 (lane stride 4 bytes). */
inline std::uint64_t
spread4(unsigned m)
{
    return static_cast<std::uint64_t>(m & 1u) |
           (static_cast<std::uint64_t>((m >> 1) & 1u) << 4) |
           (static_cast<std::uint64_t>((m >> 2) & 1u) << 8) |
           (static_cast<std::uint64_t>((m >> 3) & 1u) << 12);
}

/** Scatter 8 lane bits to mask bits 0,4,...,28. */
inline std::uint64_t
spread8(unsigned m)
{
    return spread4(m & 0xfu) | (spread4(m >> 4) << 16);
}

} // namespace

VamSimdLevel
Vam::detectSimdLevel()
{
    // SSE2 is part of the x86-64 baseline, so only AVX2 needs a
    // runtime probe. Computed fresh per call (no cached mutable
    // state); construction-time cost is negligible.
    if (__builtin_cpu_supports("avx2"))
        return VamSimdLevel::Avx2;
    return VamSimdLevel::Sse2;
}

std::uint64_t
Vam::candidateMaskSse2(const std::uint8_t *line, Addr trigger_ea) const
{
    alignas(32) std::uint8_t buf[lineBytes + 16] = {};
    std::memcpy(buf, line, lineBytes);

    const std::uint32_t ea_top =
        static_cast<std::uint32_t>(trigger_ea) >> compareShift;
    const __m128i alignMaskV =
        _mm_set1_epi32(static_cast<int>(alignMask));
    const __m128i eaTopV = _mm_set1_epi32(static_cast<int>(ea_top));
    const __m128i topMaxV =
        _mm_set1_epi32(static_cast<int>(compareMax));
    const __m128i filterMaskV =
        _mm_set1_epi32(static_cast<int>(filterMask));
    const __m128i zeroV = _mm_setzero_si128();
    const __m128i cShift =
        _mm_cvtsi32_si128(static_cast<int>(compareShift));
    const __m128i fShift =
        _mm_cvtsi32_si128(static_cast<int>(filterShift));

    std::uint64_t mask = 0;
    for (unsigned r = 0; r < wordBytes; ++r) {
        for (unsigned k = 0; k < 4; ++k) {
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(buf + r + 16 * k));
            const __m128i aligned =
                _mm_cmpeq_epi32(_mm_and_si128(v, alignMaskV), zeroV);
            const __m128i top = _mm_srl_epi32(v, cShift);
            const __m128i topEq = _mm_cmpeq_epi32(top, eaTopV);
            const __m128i filt =
                _mm_and_si128(_mm_srl_epi32(v, fShift), filterMaskV);
            const __m128i zeroRegion =
                _mm_and_si128(_mm_cmpeq_epi32(top, zeroV),
                              _mm_cmpeq_epi32(filt, zeroV));
            const __m128i oneRegion =
                _mm_and_si128(_mm_cmpeq_epi32(top, topMaxV),
                              _mm_cmpeq_epi32(filt, filterMaskV));
            const __m128i cand = _mm_andnot_si128(
                _mm_or_si128(zeroRegion, oneRegion),
                _mm_and_si128(aligned, topEq));
            const unsigned m = static_cast<unsigned>(
                _mm_movemask_ps(_mm_castsi128_ps(cand)));
            mask |= spread4(m) << (r + 16 * k);
        }
    }
    return mask;
}

__attribute__((target("avx2"))) std::uint64_t
Vam::candidateMaskAvx2(const std::uint8_t *line, Addr trigger_ea) const
{
    alignas(32) std::uint8_t buf[lineBytes + 16] = {};
    std::memcpy(buf, line, lineBytes);

    const std::uint32_t ea_top =
        static_cast<std::uint32_t>(trigger_ea) >> compareShift;
    const __m256i alignMaskV =
        _mm256_set1_epi32(static_cast<int>(alignMask));
    const __m256i eaTopV =
        _mm256_set1_epi32(static_cast<int>(ea_top));
    const __m256i topMaxV =
        _mm256_set1_epi32(static_cast<int>(compareMax));
    const __m256i filterMaskV =
        _mm256_set1_epi32(static_cast<int>(filterMask));
    const __m256i zeroV = _mm256_setzero_si256();
    const __m128i cShift =
        _mm_cvtsi32_si128(static_cast<int>(compareShift));
    const __m128i fShift =
        _mm_cvtsi32_si128(static_cast<int>(filterShift));

    std::uint64_t mask = 0;
    for (unsigned r = 0; r < wordBytes; ++r) {
        for (unsigned k = 0; k < 2; ++k) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(buf + r + 32 * k));
            const __m256i aligned = _mm256_cmpeq_epi32(
                _mm256_and_si256(v, alignMaskV), zeroV);
            const __m256i top = _mm256_srl_epi32(v, cShift);
            const __m256i topEq = _mm256_cmpeq_epi32(top, eaTopV);
            const __m256i filt = _mm256_and_si256(
                _mm256_srl_epi32(v, fShift), filterMaskV);
            const __m256i zeroRegion =
                _mm256_and_si256(_mm256_cmpeq_epi32(top, zeroV),
                                 _mm256_cmpeq_epi32(filt, zeroV));
            const __m256i oneRegion =
                _mm256_and_si256(_mm256_cmpeq_epi32(top, topMaxV),
                                 _mm256_cmpeq_epi32(filt, filterMaskV));
            const __m256i cand = _mm256_andnot_si256(
                _mm256_or_si256(zeroRegion, oneRegion),
                _mm256_and_si256(aligned, topEq));
            const unsigned m = static_cast<unsigned>(
                _mm256_movemask_ps(_mm256_castsi256_ps(cand)));
            mask |= spread8(m) << (r + 32 * k);
        }
    }
    return mask;
}

#else // !CDP_SIMD_ENABLED

VamSimdLevel
Vam::detectSimdLevel()
{
    return VamSimdLevel::Scalar;
}

std::uint64_t
Vam::candidateMaskSse2(const std::uint8_t *, Addr) const
{
    throw std::logic_error("Vam: SSE2 kernel not compiled in");
}

std::uint64_t
Vam::candidateMaskAvx2(const std::uint8_t *, Addr) const
{
    throw std::logic_error("Vam: AVX2 kernel not compiled in");
}

#endif // CDP_SIMD_ENABLED

} // namespace cdp
