#include "core/adaptive_vam.hh"

#include "snapshot/ckpt_io.hh"

namespace cdp
{

AdaptiveVamController::AdaptiveVamController(
    const AdaptiveVamConfig &cfg, StatGroup *stats,
    const std::string &name)
    : cfg(cfg),
      epochs(stats ? *stats : dummyGroup, name + ".epochs",
             "adaptive epochs evaluated"),
      tightens(stats ? *stats : dummyGroup, name + ".tightens",
               "steps toward stricter prediction"),
      loosens(stats ? *stats : dummyGroup, name + ".loosens",
              "steps toward wider prediction")
{
}

bool
AdaptiveVamController::evaluate(CdpConfig &target)
{
    if (!cfg.enabled || issuedInEpoch == 0)
        return false;

    lastAccuracy = static_cast<double>(usefulInEpoch) /
                   static_cast<double>(issuedInEpoch);
    issuedInEpoch = 0;
    usefulInEpoch = 0;
    ++epochs;

    if (lastAccuracy < cfg.lowAccuracy) {
        // Too much junk: first demand a stricter address match, then
        // shed width.
        if (target.vam.compareBits < cfg.maxCompareBits) {
            ++target.vam.compareBits;
            ++tightens;
            return true;
        }
        if (cfg.adjustWidth && target.nextLines > cfg.minNextLines) {
            --target.nextLines;
            ++tightens;
            return true;
        }
        return false;
    }

    if (lastAccuracy > cfg.highAccuracy) {
        // Plenty of headroom: widen the net for more coverage.
        if (target.vam.compareBits > cfg.minCompareBits) {
            --target.vam.compareBits;
            ++loosens;
            return true;
        }
        if (cfg.adjustWidth && target.nextLines < cfg.maxNextLines) {
            ++target.nextLines;
            ++loosens;
            return true;
        }
        return false;
    }

    return false; // inside the hysteresis band
}

void
AdaptiveVamController::saveState(snap::Writer &w) const
{
    w.u64(issuedInEpoch);
    w.u64(usefulInEpoch);
    w.f64(lastAccuracy);
}

void
AdaptiveVamController::loadState(snap::Reader &r)
{
    issuedInEpoch = r.u64();
    usefulInEpoch = r.u64();
    lastAccuracy = r.f64();
}

} // namespace cdp
