#include "core/content_prefetcher.hh"

#include <unordered_set>

#include "snapshot/ckpt_io.hh"

namespace cdp
{

std::string
CdpConfig::widthLabel() const
{
    std::string label = "p";
    label += std::to_string(prevLines);
    label += ".n";
    label += std::to_string(nextLines);
    return label;
}

ContentPrefetcher::ContentPrefetcher(const CdpConfig &cfg,
                                     StatGroup *stats,
                                     const std::string &name)
    : cfg(cfg), predictor(cfg.vam),
      scans(stats ? *stats : dummyGroup, name + ".scans",
            "cache lines scanned"),
      rescans(stats ? *stats : dummyGroup, name + ".rescans",
              "reinforcement-driven rescans"),
      candidates(stats ? *stats : dummyGroup, name + ".candidates",
                 "candidate virtual addresses found"),
      widthLines(stats ? *stats : dummyGroup, name + ".width_lines",
                 "next/prev-line companion prefetches emitted"),
      depthSuppressed(stats ? *stats : dummyGroup,
                      name + ".depth_suppressed",
                      "fills not scanned: depth at threshold")
{
}

void
ContentPrefetcher::reconfigure(const CdpConfig &new_cfg)
{
    cfg = new_cfg;
    predictor = Vam(cfg.vam);
}

bool
ContentPrefetcher::shouldRescan(unsigned req_depth,
                                unsigned stored_depth) const
{
    if (!cfg.enabled || !cfg.reinforce)
        return false;
    return stored_depth > req_depth &&
           stored_depth - req_depth >= cfg.reinforceMinDelta;
}

std::vector<CdpCandidate>
ContentPrefetcher::scanFill(const std::uint8_t *line, Addr trigger_ea,
                            unsigned fill_depth, bool is_rescan)
{
    std::vector<CdpCandidate> out;
    if (!cfg.enabled)
        return out;
    if (!scansAtDepth(fill_depth)) {
        ++depthSuppressed;
        return out;
    }

    ++scans;
    if (is_rescan)
        ++rescans;

    const Addr trigger_line = lineAlign(trigger_ea);
    const unsigned child_depth = fill_depth + 1;
    const bool emit_width = !is_rescan || cfg.widthOnRescan;
    std::unordered_set<Addr> seen;
    seen.insert(trigger_line); // never re-request the line in hand

    unsigned hop = 0; // provenance hop index, scan-emission order
    for (Addr target : predictor.scanLine(line, trigger_ea)) {
        ++candidates;
        const Addr target_line = lineAlign(target);
        if (seen.insert(target_line).second) {
            out.push_back({target, target_line, child_depth, false,
                           hop++});
        }
        if (!emit_width)
            continue;
        for (unsigned p = 1; p <= cfg.prevLines; ++p) {
            const Addr l = target_line - p * lineBytes;
            if (l < target_line && seen.insert(l).second) {
                out.push_back({target, l, child_depth, true, hop++});
                ++widthLines;
            }
        }
        for (unsigned n = 1; n <= cfg.nextLines; ++n) {
            const Addr l = target_line + n * lineBytes;
            if (l > target_line && seen.insert(l).second) {
                out.push_back({target, l, child_depth, true, hop++});
                ++widthLines;
            }
        }
    }
    return out;
}

bool
operator==(const VamConfig &a, const VamConfig &b)
{
    return a.compareBits == b.compareBits && a.filterBits == b.filterBits &&
           a.alignBits == b.alignBits && a.scanStep == b.scanStep;
}

bool
operator==(const CdpConfig &a, const CdpConfig &b)
{
    return a.enabled == b.enabled && a.vam == b.vam &&
           a.depthThreshold == b.depthThreshold &&
           a.nextLines == b.nextLines && a.prevLines == b.prevLines &&
           a.reinforce == b.reinforce &&
           a.reinforceMinDelta == b.reinforceMinDelta &&
           a.scanPageWalkFills == b.scanPageWalkFills &&
           a.scanWidthFills == b.scanWidthFills &&
           a.widthOnRescan == b.widthOnRescan;
}

namespace snap
{

void
saveCdpConfig(Writer &w, const CdpConfig &cfg)
{
    w.boolean(cfg.enabled);
    w.u64(cfg.vam.compareBits);
    w.u64(cfg.vam.filterBits);
    w.u64(cfg.vam.alignBits);
    w.u64(cfg.vam.scanStep);
    w.u64(cfg.depthThreshold);
    w.u64(cfg.nextLines);
    w.u64(cfg.prevLines);
    w.boolean(cfg.reinforce);
    w.u64(cfg.reinforceMinDelta);
    w.boolean(cfg.scanPageWalkFills);
    w.boolean(cfg.scanWidthFills);
    w.boolean(cfg.widthOnRescan);
}

CdpConfig
loadCdpConfig(Reader &r)
{
    CdpConfig cfg;
    cfg.enabled = r.boolean();
    cfg.vam.compareBits = static_cast<unsigned>(r.u64());
    cfg.vam.filterBits = static_cast<unsigned>(r.u64());
    cfg.vam.alignBits = static_cast<unsigned>(r.u64());
    cfg.vam.scanStep = static_cast<unsigned>(r.u64());
    cfg.depthThreshold = static_cast<unsigned>(r.u64());
    cfg.nextLines = static_cast<unsigned>(r.u64());
    cfg.prevLines = static_cast<unsigned>(r.u64());
    cfg.reinforce = r.boolean();
    cfg.reinforceMinDelta = static_cast<unsigned>(r.u64());
    cfg.scanPageWalkFills = r.boolean();
    cfg.scanWidthFills = r.boolean();
    cfg.widthOnRescan = r.boolean();
    return cfg;
}

} // namespace snap

void
ContentPrefetcher::saveState(snap::Writer &w) const
{
    snap::saveCdpConfig(w, cfg);
}

void
ContentPrefetcher::loadState(snap::Reader &r, bool apply_config)
{
    const CdpConfig saved = snap::loadCdpConfig(r);
    if (apply_config && saved != cfg)
        reconfigure(saved);
}

} // namespace cdp
