/**
 * @file
 * Adaptive (runtime) tuning of the VAM heuristic — the future-work
 * direction the paper's authors state they are investigating
 * (Section 4.1: the chosen bit combinations "are specific to the
 * applications, compilers, and operating systems utilized in this
 * study. They would require further tuning if the content prefetcher
 * was going to be used beyond the scope of this study. One area of
 * research currently being investigated by the authors is adaptive
 * (runtime) heuristics for adjusting these parameters.")
 *
 * The controller watches issued/useful content-prefetch counts over
 * fixed-size epochs and nudges the predictor:
 *
 *  - accuracy below the low-water mark  -> tighten: add a compare
 *    bit (halving the predicted address range); if already at the
 *    maximum, shed a next-line of width instead;
 *  - accuracy above the high-water mark -> loosen: drop a compare
 *    bit (doubling coverage); if already at the minimum, add width.
 *
 * A hysteresis band between the marks leaves the configuration
 * alone, and adjustments are rate-limited to one step per epoch so a
 * burst of (un)lucky prefetches cannot slam the knobs.
 */

#ifndef CDP_CORE_ADAPTIVE_VAM_HH
#define CDP_CORE_ADAPTIVE_VAM_HH

#include <cstdint>
#include <string>

#include "core/content_prefetcher.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Knobs of the adaptive controller. */
struct AdaptiveVamConfig
{
    bool enabled = false;
    /** Content prefetches issued per evaluation epoch. */
    std::uint64_t epochPrefetches = 2048;
    /** Tighten when epoch accuracy falls below this. */
    double lowAccuracy = 0.10;
    /** Loosen when epoch accuracy rises above this. */
    double highAccuracy = 0.40;
    unsigned minCompareBits = 8;
    unsigned maxCompareBits = 14;
    /** Allow the controller to trade width as a secondary knob. */
    bool adjustWidth = true;
    unsigned minNextLines = 0;
    unsigned maxNextLines = 4;
};

/**
 * Epoch-based accuracy controller for the content prefetcher.
 */
class AdaptiveVamController
{
  public:
    explicit AdaptiveVamController(const AdaptiveVamConfig &cfg,
                                   StatGroup *stats = nullptr,
                                   const std::string &name =
                                       "adaptive");

    bool enabled() const { return cfg.enabled; }

    /** One content prefetch was issued to memory. */
    void noteIssued() { ++issuedInEpoch; }

    /** One content prefetch was demand-used (full or partial). */
    void noteUseful() { ++usefulInEpoch; }

    /** Is the current epoch complete? */
    bool
    epochElapsed() const
    {
        return cfg.enabled && issuedInEpoch >= cfg.epochPrefetches;
    }

    /**
     * Evaluate the finished epoch and, when warranted, adjust
     * @p target in place (the caller owns applying the change to the
     * live prefetcher). Resets the epoch counters.
     * @return true when @p target was modified
     */
    bool evaluate(CdpConfig &target);

    double
    lastEpochAccuracy() const
    {
        return lastAccuracy;
    }

    std::uint64_t epochsEvaluated() const { return epochs.value(); }
    std::uint64_t tightenCount() const { return tightens.value(); }
    std::uint64_t loosenCount() const { return loosens.value(); }

    /** Serialize mid-epoch progress (checkpointing). */
    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    // cdplint: transient(cfg) -- construction-time policy knobs; the restoring side's own config governs
    AdaptiveVamConfig cfg;
    std::uint64_t issuedInEpoch = 0;
    std::uint64_t usefulInEpoch = 0;
    double lastAccuracy = 0.0;

    // cdplint: transient(dummyGroup, epochs, tightens, loosens) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyGroup;
    Scalar epochs;
    Scalar tightens;
    Scalar loosens;
};

} // namespace cdp

#endif // CDP_CORE_ADAPTIVE_VAM_HH
