/**
 * @file
 * Virtual Address Matching (VAM) — the paper's pointer-recognition
 * heuristic (Section 3.3, Figures 2 and 5).
 *
 * An address-sized word in a freshly filled cache line is deemed a
 * *candidate virtual address* when:
 *
 *  1. its low @p alignBits bits are zero (compilers place pointers on
 *     2/4-byte boundaries);
 *  2. its upper @p compareBits match the upper bits of the effective
 *     address that triggered the fill (heap pointers share a base);
 *  3. in the two degenerate regions — upper bits all zeros or all
 *     ones — the next @p filterBits of the word must contain a
 *     non-zero (resp. non-one) bit, so that small positive or
 *     negative integers are not misread as stack/low-heap pointers.
 *
 * The line is scanned at @p scanStep-byte granularity; the paper's
 * chosen configuration is 8 compare bits, 4 filter bits, 1 align bit,
 * 2-byte scan step (written "8.4.1.2").
 */

#ifndef CDP_CORE_VAM_HH
#define CDP_CORE_VAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cdp
{

/** Tunable knobs of the VAM predictor (Figures 7 and 8). */
struct VamConfig
{
    unsigned compareBits = 8; //!< upper bits matched against the EA
    unsigned filterBits = 4;  //!< bits inspected in the all-0/all-1 regions
    unsigned alignBits = 1;   //!< low bits that must be zero
    unsigned scanStep = 2;    //!< bytes stepped between examined words

    /** "8.4.1.2"-style label used in the paper's figures. */
    std::string label() const;
};

/** Why a word was accepted or rejected (tests and tuning stats). */
enum class VamVerdict
{
    Candidate,       //!< passed every check
    Misaligned,      //!< low align bits non-zero
    CompareMismatch, //!< upper bits differ from the trigger EA
    FilteredZero,    //!< all-zero region, filter bits all zero
    FilteredOne,     //!< all-one region, filter bits all one
};

/**
 * Dispatch level of the scanLine kernel. The paper's VAM is
 * branch-free hardware operating on all words of a line at once
 * (Figure 5), which maps directly onto SIMD lanes; the kernels are
 * bit-exact with the scalar reference (tests/test_vam_simd.cc) and
 * selected per Vam instance at construction — never through mutable
 * global state.
 */
enum class VamSimdLevel
{
    Scalar, //!< portable reference loop (also the CDP_SIMD=OFF build)
    Sse2,   //!< 4-lane kernel (x86-64 baseline)
    Avx2,   //!< 8-lane kernel (runtime-detected)
};

/**
 * The VAM predictor. Stateless by construction — the entire paper's
 * premise — so the class holds only its configuration.
 */
class Vam
{
  public:
    explicit Vam(const VamConfig &cfg = VamConfig{});

    /** Full classification of one word against a trigger EA. */
    VamVerdict classify(std::uint32_t word, Addr trigger_ea) const;

    /** Shorthand: classify(...) == Candidate. */
    bool isCandidate(std::uint32_t word, Addr trigger_ea) const
    {
        return classify(word, trigger_ea) == VamVerdict::Candidate;
    }

    /**
     * Scan one cache line for candidate virtual addresses.
     * @param line lineBytes bytes of fill data
     * @param trigger_ea virtual effective address of the request that
     *        caused the fill
     * @return the candidate pointer values found, in scan order
     */
    std::vector<Addr> scanLine(const std::uint8_t *line,
                               Addr trigger_ea) const;

    /**
     * The portable reference implementation of scanLine (the scalar
     * word loop). Public so the SIMD differential property tests can
     * compare every dispatch level against it.
     */
    std::vector<Addr> scanLineScalar(const std::uint8_t *line,
                                     Addr trigger_ea) const;

    /**
     * Highest dispatch level this build + host supports: Scalar when
     * the build disables CDP_SIMD (or targets a non-x86-64 machine),
     * else Sse2, else Avx2 when the CPU advertises it.
     */
    static VamSimdLevel detectSimdLevel();

    /** The level this instance dispatches scanLine through. */
    VamSimdLevel simdLevel() const { return level; }

    /**
     * Test hook: pin the dispatch level. Levels above
     * detectSimdLevel() throw std::invalid_argument (the kernel
     * would fault on an unsupporting host).
     */
    void forceSimdLevel(VamSimdLevel l);

    const VamConfig &config() const { return cfg; }

    /** Words examined per line at the configured scan step. */
    unsigned wordsPerLine() const
    {
        return (lineBytes - wordBytes) / cfg.scanStep + 1;
    }

  private:
    /**
     * Bit @c off set = the word at byte offset @c off of @p line is a
     * VAM candidate, for every off in [0, lineBytes - wordBytes].
     * SIMD kernels (src/core/vam_simd.cc); bits above that range are
     * unspecified and never read.
     */
    std::uint64_t candidateMaskSse2(const std::uint8_t *line,
                                    Addr trigger_ea) const;
    std::uint64_t candidateMaskAvx2(const std::uint8_t *line,
                                    Addr trigger_ea) const;

    VamConfig cfg;
    std::uint32_t alignMask;   //!< low bits that must be zero
    unsigned compareShift;     //!< 32 - compareBits
    std::uint32_t compareMax;  //!< all-ones value of the compare field
    unsigned filterShift;      //!< 32 - compareBits - filterBits
    std::uint32_t filterMask;  //!< mask of the filter field
    VamSimdLevel level;        //!< per-instance scanLine dispatch
};

} // namespace cdp

#endif // CDP_CORE_VAM_HH
