#include "core/vam.hh"

#include <cstring>
#include <stdexcept>

namespace cdp
{

std::string
VamConfig::label() const
{
    return std::to_string(compareBits) + "." + std::to_string(filterBits) +
           "." + std::to_string(alignBits) + "." + std::to_string(scanStep);
}

Vam::Vam(const VamConfig &cfg) : cfg(cfg)
{
    if (cfg.compareBits == 0 || cfg.compareBits > 31)
        throw std::invalid_argument("Vam: compareBits must be in [1,31]");
    if (cfg.compareBits + cfg.filterBits > 32)
        throw std::invalid_argument("Vam: compare+filter bits exceed 32");
    if (cfg.alignBits > 4)
        throw std::invalid_argument("Vam: alignBits must be <= 4");
    if (cfg.scanStep == 0 || cfg.scanStep > lineBytes - wordBytes)
        throw std::invalid_argument("Vam: bad scanStep");

    alignMask = (1u << cfg.alignBits) - 1;
    compareShift = 32 - cfg.compareBits;
    compareMax = (cfg.compareBits == 32)
                     ? 0xffffffffu
                     : ((1u << cfg.compareBits) - 1);
    filterShift = 32 - cfg.compareBits - cfg.filterBits;
    filterMask = cfg.filterBits ? ((1u << cfg.filterBits) - 1) : 0;
    level = detectSimdLevel();
}

void
Vam::forceSimdLevel(VamSimdLevel l)
{
    if (static_cast<int>(l) > static_cast<int>(detectSimdLevel()))
        throw std::invalid_argument(
            "Vam: requested SIMD level unsupported by this build/host");
    level = l;
}

VamVerdict
Vam::classify(std::uint32_t word, Addr trigger_ea) const
{
    if (word & alignMask)
        return VamVerdict::Misaligned;

    const std::uint32_t word_top = word >> compareShift;
    const std::uint32_t ea_top =
        static_cast<std::uint32_t>(trigger_ea) >> compareShift;

    if (word_top != ea_top)
        return VamVerdict::CompareMismatch;

    if (word_top == 0) {
        // All-zeros region: small positive values would "match" any
        // low effective address. Demand a non-zero bit among the
        // filter bits; zero filter bits means never predict here.
        const std::uint32_t filt = (word >> filterShift) & filterMask;
        if (filt == 0)
            return VamVerdict::FilteredZero;
    } else if (word_top == compareMax) {
        // All-ones region: small negative values. Demand a non-one
        // bit among the filter bits.
        const std::uint32_t filt = (word >> filterShift) & filterMask;
        if (filt == filterMask)
            return VamVerdict::FilteredOne;
    }

    return VamVerdict::Candidate;
}

std::vector<Addr>
Vam::scanLineScalar(const std::uint8_t *line, Addr trigger_ea) const
{
    std::vector<Addr> out;
    for (unsigned off = 0; off + wordBytes <= lineBytes;
         off += cfg.scanStep) {
        std::uint32_t word;
        std::memcpy(&word, line + off, wordBytes);
        if (isCandidate(word, trigger_ea))
            out.push_back(static_cast<Addr>(word));
    }
    return out;
}

std::vector<Addr>
Vam::scanLine(const std::uint8_t *line, Addr trigger_ea) const
{
    if (level == VamSimdLevel::Scalar)
        return scanLineScalar(line, trigger_ea);

    // The kernel classifies every word offset of the line at once;
    // walking the stepped offsets against the mask reproduces the
    // scalar path's output order and values exactly.
    const std::uint64_t mask = level == VamSimdLevel::Avx2
                                   ? candidateMaskAvx2(line, trigger_ea)
                                   : candidateMaskSse2(line, trigger_ea);
    std::vector<Addr> out;
    for (unsigned off = 0; off + wordBytes <= lineBytes;
         off += cfg.scanStep) {
        if ((mask >> off) & 1u) {
            std::uint32_t word;
            std::memcpy(&word, line + off, wordBytes);
            out.push_back(static_cast<Addr>(word));
        }
    }
    return out;
}

} // namespace cdp
