#include "workloads/generators.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "snapshot/ckpt_io.hh"

namespace cdp
{

// --------------------------------------------------------- block base

void
BlockUopSource::saveQueue(snap::Writer &w) const
{
    // Only the unconsumed tail is live state; the byte format (count
    // + uops in hand-out order) is unchanged from the deque days.
    w.u64(queue.size() - queueHead);
    for (std::size_t i = queueHead; i < queue.size(); ++i)
        snap::saveUop(w, queue[i]);
}

void
BlockUopSource::loadQueue(snap::Reader &r)
{
    const std::uint64_t n = r.u64();
    queue.clear();
    queueHead = 0;
    for (std::uint64_t i = 0; i < n; ++i)
        queue.push_back(snap::loadUop(r));
}

// ---------------------------------------------------------------- list

ListTraversalGen::ListTraversalGen(HeapAllocator &heap, BuiltList list,
                                   Addr pc_base, unsigned reg_base,
                                   WalkOptions opts, std::uint64_t seed)
    : heap(heap), list(std::move(list)), pcBase(pc_base),
      regBase(reg_base), opts(opts), rng(seed), cur(this->list.head)
{
}

void
ListTraversalGen::emitBlock()
{
    const auto rp = static_cast<std::int8_t>(regBase % numRegs);
    const auto rv = static_cast<std::int8_t>((regBase + 1) % numRegs);
    const auto rc = static_cast<std::int8_t>((regBase + 2) % numRegs);

    // Payload loads are spread across the node so that nodes larger
    // than a cache line touch their trailing lines — the access
    // pattern that makes "wider" prefetching worthwhile (Sec. 3.4.3).
    const std::uint32_t span = list.nodeBytes & ~3u;
    for (unsigned k = 0; k < opts.payloadLoads; ++k) {
        std::uint32_t off =
            (span * (k + 1) / (opts.payloadLoads + 1)) & ~3u;
        if (off == list.nextOffset)
            off = (off + 4) % span;
        pushLoad(pcBase + 4 * k, cur + off, rp, rv, false);
    }
    for (unsigned k = 0; k < opts.aluPerNode; ++k) {
        if (rng.chance(opts.fpFrac))
            pushFp(pcBase + 0x40 + 4 * k, rv, rc);
        else
            pushAlu(pcBase + 0x40 + 4 * k, rv, rc);
    }
    // The recurrence load: next = cur->next.
    pushLoad(pcBase + 0x80, cur + list.nextOffset, rp, rp, true);
    // Loop branch: the list is circular, so always taken.
    pushBranch(pcBase + 0x84, true);

    cur = heap.read32(cur + list.nextOffset);
    if (cur == 0)
        cur = list.head; // defensive: corrupt list
}

void
ListTraversalGen::saveState(snap::Writer &w) const
{
    saveQueue(w);
    w.rng(rng);
    w.u32(cur);
}

void
ListTraversalGen::loadState(snap::Reader &r)
{
    loadQueue(r);
    r.rng(rng);
    cur = r.u32();
}

// ---------------------------------------------------------------- tree

TreeSearchGen::TreeSearchGen(HeapAllocator &heap, BuiltTree tree,
                             Addr pc_base, unsigned reg_base,
                             WalkOptions opts, std::uint64_t seed)
    : heap(heap), tree(std::move(tree)), pcBase(pc_base),
      regBase(reg_base), opts(opts), rng(seed), cur(this->tree.root)
{
}

void
TreeSearchGen::emitBlock()
{
    const auto rp = static_cast<std::int8_t>(regBase % numRegs);
    const auto rk = static_cast<std::int8_t>((regBase + 1) % numRegs);
    const auto rc = static_cast<std::int8_t>((regBase + 2) % numRegs);

    // Load the key, compare against the search target.
    pushLoad(pcBase, cur + 0, rp, rk, false);
    for (unsigned k = 0; k < opts.aluPerNode; ++k)
        pushAlu(pcBase + 4 + 4 * k, rk, rc);

    const std::uint32_t left = heap.read32(cur + tree.leftOffset);
    const std::uint32_t right = heap.read32(cur + tree.rightOffset);
    // Random search key -> effectively random direction; the branch
    // depends on the loaded key and mispredicts like real search code.
    bool go_left = rng.chance(0.5);
    if (left == 0 && right == 0) {
        // Leaf: restart from the root on the next block.
    } else if (left == 0) {
        go_left = false;
    } else if (right == 0) {
        go_left = true;
    }
    pushBranch(pcBase + 0x40, go_left, rk);

    const std::uint32_t child_off =
        go_left ? tree.leftOffset : tree.rightOffset;
    pushLoad(pcBase + 0x44, cur + child_off, rp, rp, true);

    const Addr child = heap.read32(cur + child_off);
    cur = child != 0 ? child : tree.root;
}

void
TreeSearchGen::saveState(snap::Writer &w) const
{
    saveQueue(w);
    w.rng(rng);
    w.u32(cur);
}

void
TreeSearchGen::loadState(snap::Reader &r)
{
    loadQueue(r);
    r.rng(rng);
    cur = r.u32();
}

// ---------------------------------------------------------------- hash

HashLookupGen::HashLookupGen(HeapAllocator &heap, BuiltHash hash,
                             Addr pc_base, unsigned reg_base,
                             WalkOptions opts, std::uint64_t seed)
    : heap(heap), hash(std::move(hash)), pcBase(pc_base),
      regBase(reg_base), opts(opts), rng(seed)
{
}

void
HashLookupGen::emitBlock()
{
    const auto rp = static_cast<std::int8_t>(regBase % numRegs);
    const auto rk = static_cast<std::int8_t>((regBase + 1) % numRegs);
    const auto rh = static_cast<std::int8_t>((regBase + 2) % numRegs);

    // Pick a key: mostly present (a random node's key), sometimes not.
    std::uint32_t key;
    if (!hash.nodes.empty() && rng.chance(0.8)) {
        const Addr n = hash.nodes[rng.below(hash.nodes.size())];
        key = heap.read32(n);
    } else {
        key = rng.next32();
    }
    const std::uint32_t bucket = key & (hash.buckets - 1);

    // Hash computation, then the bucket-head load (indexed).
    pushAlu(pcBase, rh, rh);
    pushAlu(pcBase + 4, rh, rh);
    pushLoad(pcBase + 8, hash.bucketArray + bucket * 4, rh, rp, true);

    Addr cur = heap.read32(hash.bucketArray + bucket * 4);
    unsigned hops = 0;
    while (cur != 0 && hops < maxChain) {
        pushLoad(pcBase + 0x20, cur + 0, rp, rk, false);
        // Key comparison reads row fields spread across the node, so
        // multi-line rows exercise their trailing lines on every hop.
        const std::uint32_t span = hash.nodeBytes & ~3u;
        for (unsigned k = 0; k < opts.payloadLoads; ++k) {
            std::uint32_t off =
                (span * (k + 1) / (opts.payloadLoads + 1)) & ~3u;
            if (off == hash.nextOffset || off == 0)
                off = (off + 4) % span;
            pushLoad(pcBase + 0x50 + 4 * k, cur + off, rp, rk, false);
        }
        for (unsigned k = 0; k < opts.aluPerNode; ++k)
            pushAlu(pcBase + 0x24 + 4 * k, rk, rh);
        const bool found = heap.read32(cur) == key;
        pushBranch(pcBase + 0x40, found, rk);
        if (found)
            break;
        pushLoad(pcBase + 0x44, cur + hash.nextOffset, rp, rp, true);
        cur = heap.read32(cur + hash.nextOffset);
        ++hops;
    }
    // End-of-lookup branch back to the dispatch loop.
    pushBranch(pcBase + 0x60, true);
}

void
HashLookupGen::saveState(snap::Writer &w) const
{
    saveQueue(w);
    w.rng(rng);
}

void
HashLookupGen::loadState(snap::Reader &r)
{
    loadQueue(r);
    r.rng(rng);
}

// --------------------------------------------------------------- graph

GraphWalkGen::GraphWalkGen(HeapAllocator &heap, BuiltGraph graph,
                           Addr pc_base, unsigned reg_base,
                           WalkOptions opts, std::uint64_t seed)
    : heap(heap), graph(std::move(graph)), pcBase(pc_base),
      regBase(reg_base), opts(opts), rng(seed),
      cur(this->graph.nodes.front())
{
}

void
GraphWalkGen::emitBlock()
{
    const auto rp = static_cast<std::int8_t>(regBase % numRegs);
    const auto rd = static_cast<std::int8_t>((regBase + 1) % numRegs);
    const auto ra = static_cast<std::int8_t>((regBase + 2) % numRegs);
    const auto rc = static_cast<std::int8_t>((regBase + 3) % numRegs);

    // Load the node header: degree, then the adjacency-array pointer.
    pushLoad(pcBase, cur + BuiltGraph::degreeOffset, rp, rd, false);
    pushLoad(pcBase + 4, cur + BuiltGraph::adjPtrOffset, rp, ra, true);
    for (unsigned k = 0; k < opts.aluPerNode; ++k)
        pushAlu(pcBase + 8 + 4 * k, rd, rc);

    const std::uint32_t degree =
        heap.read32(cur + BuiltGraph::degreeOffset);
    const Addr adj = heap.read32(cur + BuiltGraph::adjPtrOffset);
    const std::uint32_t pick =
        degree ? static_cast<std::uint32_t>(rng.below(degree)) : 0;

    // Edge-select branch (data dependent -> mispredicts), then the
    // hop: load the chosen adjacency entry into the node pointer.
    pushBranch(pcBase + 0x40, (pick & 1) != 0, rd);
    pushLoad(pcBase + 0x44, adj + 4 * pick, ra, rp, true);

    const Addr next = heap.read32(adj + 4 * pick);
    cur = next != 0 ? next : graph.nodes.front();
}

void
GraphWalkGen::saveState(snap::Writer &w) const
{
    saveQueue(w);
    w.rng(rng);
    w.u32(cur);
}

void
GraphWalkGen::loadState(snap::Reader &r)
{
    loadQueue(r);
    r.rng(rng);
    cur = r.u32();
}

// --------------------------------------------------------------- btree

BTreeSearchGen::BTreeSearchGen(HeapAllocator &heap, BuiltBTree tree,
                               Addr pc_base, unsigned reg_base,
                               WalkOptions opts, std::uint64_t seed)
    : heap(heap), tree(std::move(tree)), pcBase(pc_base),
      regBase(reg_base), opts(opts), rng(seed)
{
}

void
BTreeSearchGen::emitBlock()
{
    const auto rp = static_cast<std::int8_t>(regBase % numRegs);
    const auto rk = static_cast<std::int8_t>((regBase + 1) % numRegs);
    const auto rc = static_cast<std::int8_t>((regBase + 2) % numRegs);

    const std::uint32_t target = rng.next32() >> 1;
    Addr cur = tree.root;
    // Descend height-1 inner levels; the leaf load ends the search.
    for (std::uint32_t level = 0; level + 1 < tree.height; ++level) {
        const std::uint32_t count = heap.read32(cur + 0);
        pushLoad(pcBase, cur + 0, rp, rk, false); // entry count
        // Separator comparisons (a few per level).
        std::uint32_t child = 0;
        for (std::uint32_t i = 0; i + 1 < count; ++i) {
            if (i < 3) { // model only the first comparisons' uops
                pushLoad(pcBase + 4 + 4 * i,
                         cur + tree.keyOffset(i), rp, rk, false);
                pushAlu(pcBase + 0x20 + 4 * i, rk, rc);
            }
            if (target >= heap.read32(cur + tree.keyOffset(i)))
                child = i + 1;
        }
        pushBranch(pcBase + 0x40, (child & 1) != 0, rk);
        pushLoad(pcBase + 0x44, cur + tree.childOffset(child), rp, rp,
                 true);
        cur = heap.read32(cur + tree.childOffset(child));
        if (cur == 0) {
            cur = tree.root; // defensive
            break;
        }
    }
    // Touch the leaf.
    pushLoad(pcBase + 0x60, cur + tree.keyOffset(0), rp, rk, false);
    for (unsigned k = 0; k < opts.aluPerNode; ++k)
        pushAlu(pcBase + 0x64 + 4 * k, rk, rc);
    pushBranch(pcBase + 0x80, true);
}

void
BTreeSearchGen::saveState(snap::Writer &w) const
{
    saveQueue(w);
    w.rng(rng);
}

void
BTreeSearchGen::loadState(snap::Reader &r)
{
    loadQueue(r);
    r.rng(rng);
}

// -------------------------------------------------------------- stride

StrideStreamGen::StrideStreamGen(Addr region_base, Addr region_bytes,
                                 Addr stride_bytes, Addr pc_base,
                                 unsigned reg_base, unsigned alu_per_iter,
                                 std::uint64_t seed)
    : base(region_base), bytes(region_bytes), stride(stride_bytes),
      pcBase(pc_base), regBase(reg_base), aluPerIter(alu_per_iter),
      rng(seed)
{
    if (bytes == 0 || stride == 0)
        throw std::invalid_argument("StrideStreamGen: empty region");
}

void
StrideStreamGen::emitBlock()
{
    const auto ri = static_cast<std::int8_t>(regBase % numRegs);
    const auto rv = static_cast<std::int8_t>((regBase + 1) % numRegs);

    pushAlu(pcBase, ri, ri); // induction-variable update
    pushLoad(pcBase + 4, base + pos, ri, rv, false);
    for (unsigned k = 0; k < aluPerIter; ++k)
        pushAlu(pcBase + 8 + 4 * k, rv, rv);
    const bool wrap = pos + stride >= bytes;
    pushBranch(pcBase + 0x40, !wrap, ri);

    pos = wrap ? 0 : pos + stride;
}

void
StrideStreamGen::saveState(snap::Writer &w) const
{
    saveQueue(w);
    w.rng(rng);
    w.u32(pos);
}

void
StrideStreamGen::loadState(snap::Reader &r)
{
    loadQueue(r);
    r.rng(rng);
    pos = r.u32();
    if (pos >= bytes)
        r.fail("stride-stream position " + std::to_string(pos) +
               " outside its " + std::to_string(bytes) + "-byte region");
}

// -------------------------------------------------------------- random

RandomAccessGen::RandomAccessGen(Addr region_base, Addr region_bytes,
                                 Addr pc_base, unsigned reg_base,
                                 std::uint64_t seed)
    : base(region_base), bytes(region_bytes), pcBase(pc_base),
      regBase(reg_base), rng(seed)
{
    if (bytes < 4)
        throw std::invalid_argument("RandomAccessGen: region too small");
}

void
RandomAccessGen::emitBlock()
{
    const auto rv = static_cast<std::int8_t>(regBase % numRegs);
    const auto rc = static_cast<std::int8_t>((regBase + 1) % numRegs);

    const Addr off = static_cast<Addr>(rng.below(bytes / 4)) * 4;
    // Address from a (register-resident) table index: no load-load
    // dependence, so these loads overlap freely.
    pushLoad(pcBase, base + off, noReg, rv, false);
    pushAlu(pcBase + 4, rv, rc);
    pushBranch(pcBase + 8, true);
}

void
RandomAccessGen::saveState(snap::Writer &w) const
{
    saveQueue(w);
    w.rng(rng);
}

void
RandomAccessGen::loadState(snap::Reader &r)
{
    loadQueue(r);
    r.rng(rng);
}

// ------------------------------------------------------------- compute

ComputeGen::ComputeGen(Addr pc_base, unsigned reg_base,
                       unsigned block_uops, double fp_frac,
                       double branch_random_prob, Addr hot_base,
                       Addr hot_bytes, unsigned hot_loads,
                       std::uint64_t seed)
    : pcBase(pc_base), regBase(reg_base),
      blockUops(block_uops ? block_uops : 1), fpFrac(fp_frac),
      branchRandomProb(branch_random_prob), hotBase(hot_base),
      hotBytes(hot_bytes), hotLoads(hot_bytes >= 4 ? hot_loads : 0),
      rng(seed)
{
}

void
ComputeGen::emitBlock()
{
    const auto r0 = static_cast<std::int8_t>(regBase % numRegs);
    const auto r1 = static_cast<std::int8_t>((regBase + 1) % numRegs);
    const auto r2 = static_cast<std::int8_t>((regBase + 2) % numRegs);

    for (unsigned k = 0; k < hotLoads; ++k) {
        const Addr off = static_cast<Addr>(rng.below(hotBytes / 4)) * 4;
        pushLoad(pcBase + 0x200 + 4 * k, hotBase + off, noReg, r2,
                 false);
    }
    for (unsigned k = 0; k < blockUops; ++k) {
        // Alternate dependent/independent ops: ~2-wide ILP.
        const auto dst = (k % 2) ? r0 : r1;
        const auto src = (k % 2) ? r1 : r0;
        if (rng.chance(fpFrac))
            pushFp(pcBase + 4 * k, src, dst);
        else
            pushAlu(pcBase + 4 * k, src, dst);
    }
    const bool random_branch = rng.chance(branchRandomProb);
    pushBranch(pcBase + 0x100,
               random_branch ? rng.chance(0.5) : true, r0);
}

void
ComputeGen::saveState(snap::Writer &w) const
{
    saveQueue(w);
    w.rng(rng);
}

void
ComputeGen::loadState(snap::Reader &r)
{
    loadQueue(r);
    r.rng(rng);
}

// ----------------------------------------------------------------- mix

MixGen::MixGen(std::string mix_name, std::uint64_t seed)
    : mixName(std::move(mix_name)), rng(seed)
{
}

void
MixGen::adopt(std::unique_ptr<HeapAllocator> aux)
{
    auxiliaries.push_back(std::move(aux));
}

void
MixGen::add(std::unique_ptr<UopSource> src, double weight)
{
    if (weight <= 0.0)
        return;
    sources.push_back(std::move(src));
    totalWeight += weight;
    cumWeights.push_back(totalWeight);
}

Uop
MixGen::next()
{
    if (sources.empty())
        throw std::runtime_error("MixGen: no sources");
    const double pick = rng.uniform() * totalWeight;
    const auto it =
        std::upper_bound(cumWeights.begin(), cumWeights.end(), pick);
    const std::size_t idx = std::min<std::size_t>(
        static_cast<std::size_t>(it - cumWeights.begin()),
        sources.size() - 1);
    return sources[idx]->next();
}

void
MixGen::saveState(snap::Writer &w) const
{
    w.rng(rng);
    w.u64(sources.size());
    for (const auto &src : sources) {
        // The name doubles as a layout guard: restoring into a mix
        // whose composition differs must fail loudly, not scramble.
        w.str(src->name());
        src->saveState(w);
    }
    w.u64(auxiliaries.size());
    for (const auto &aux : auxiliaries)
        aux->saveState(w);
}

void
MixGen::loadState(snap::Reader &r)
{
    r.rng(rng);
    r.expectU64(sources.size(), "mix sub-source count");
    for (const auto &src : sources) {
        r.expectStr(src->name(), "mix sub-source");
        src->loadState(r);
    }
    r.expectU64(auxiliaries.size(), "mix auxiliary-allocator count");
    for (const auto &aux : auxiliaries)
        aux->loadState(r);
}

} // namespace cdp
