/**
 * @file
 * Uop-stream generators: the executable side of the workloads.
 *
 * Each generator walks a structure built by builders.cc *through the
 * simulated memory* — the address of every pointer load is the value
 * actually stored at the previous node — and emits the corresponding
 * uop sequence (address-generation ALUs, payload loads, the pointer
 * load itself, loop/compare branches). Register dependencies are
 * explicit, so the timing core sees genuine pointer-chase serial
 * chains and genuine MLP for independent streams.
 *
 * Generators are combined by MixGen with per-source weights to form
 * the Table 2 benchmark suite (suite.hh).
 */

#ifndef CDP_WORKLOADS_GENERATORS_HH
#define CDP_WORKLOADS_GENERATORS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "cpu/uop.hh"
#include "workloads/builders.hh"
#include "workloads/heap_allocator.hh"

namespace cdp
{

/**
 * Base for generators that emit whole basic blocks into a queue and
 * hand them out one uop at a time.
 */
class BlockUopSource : public UopSource
{
  public:
    Uop
    next() override
    {
        // A block is always fully consumed before the next one is
        // staged, so the queue is a flat vector with a read cursor
        // (its capacity survives the clear): one uop hand-off is an
        // indexed read, the hottest edge in the whole simulator.
        while (queueHead == queue.size()) {
            queue.clear();
            queueHead = 0;
            emitBlock();
        }
        return queue[queueHead++];
    }

  protected:
    /** Emit at least one uop into the queue. */
    virtual void emitBlock() = 0;

    /** Serialize the staged uop queue (helper for subclasses). */
    void saveQueue(snap::Writer &w) const;
    /** Restore the staged uop queue (helper for subclasses). */
    void loadQueue(snap::Reader &r);

    void
    pushLoad(Addr pc, Addr va, std::int8_t src, std::int8_t dst,
             bool pointer)
    {
        Uop u;
        u.type = UopType::Load;
        u.pc = pc;
        u.vaddr = va;
        u.src0 = src;
        u.dst = dst;
        u.pointerLoad = pointer;
        queue.push_back(u);
    }

    void
    pushStore(Addr pc, Addr va, std::int8_t src)
    {
        Uop u;
        u.type = UopType::Store;
        u.pc = pc;
        u.vaddr = va;
        u.src0 = src;
        queue.push_back(u);
    }

    void
    pushAlu(Addr pc, std::int8_t src, std::int8_t dst)
    {
        Uop u;
        u.type = UopType::Alu;
        u.pc = pc;
        u.src0 = src;
        u.dst = dst;
        queue.push_back(u);
    }

    void
    pushFp(Addr pc, std::int8_t src, std::int8_t dst)
    {
        Uop u;
        u.type = UopType::Fp;
        u.pc = pc;
        u.src0 = src;
        u.dst = dst;
        queue.push_back(u);
    }

    void
    pushBranch(Addr pc, bool taken, std::int8_t src = noReg)
    {
        Uop u;
        u.type = UopType::Branch;
        u.pc = pc;
        u.taken = taken;
        u.src0 = src;
        queue.push_back(u);
    }

    std::vector<Uop> queue;
    std::size_t queueHead = 0;
};

/** Options common to the structure-walking generators. */
struct WalkOptions
{
    unsigned aluPerNode = 2;   //!< compute uops per node visited
    unsigned payloadLoads = 1; //!< extra (non-pointer) loads per node
    double fpFrac = 0.2;       //!< fraction of compute uops that are FP
};

/**
 * Endless traversal of a circular linked list.
 */
class ListTraversalGen : public BlockUopSource
{
  public:
    ListTraversalGen(HeapAllocator &heap, BuiltList list, Addr pc_base,
                     unsigned reg_base, WalkOptions opts,
                     std::uint64_t seed);

    const char *name() const override { return "list-traversal"; }

    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r) override;

  protected:
    void emitBlock() override;

  private:
    // cdplint: transient(heap, list, pcBase, regBase, opts) -- workload shape is rebuilt identically at construction from the same seed and config; only the walk cursor and RNG travel
    HeapAllocator &heap;
    BuiltList list;
    Addr pcBase;
    unsigned regBase;
    WalkOptions opts;
    Rng rng;
    Addr cur;
};

/**
 * Repeated random root-to-leaf searches of a binary search tree.
 * Compare-direction branches are data-dependent and mispredict
 * roughly half the time, as real search code does.
 */
class TreeSearchGen : public BlockUopSource
{
  public:
    TreeSearchGen(HeapAllocator &heap, BuiltTree tree, Addr pc_base,
                  unsigned reg_base, WalkOptions opts,
                  std::uint64_t seed);

    const char *name() const override { return "tree-search"; }

    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r) override;

  protected:
    void emitBlock() override;

  private:
    // cdplint: transient(heap, tree, pcBase, regBase, opts) -- workload shape is rebuilt identically at construction from the same seed and config; only the walk cursor and RNG travel
    HeapAllocator &heap;
    BuiltTree tree;
    Addr pcBase;
    unsigned regBase;
    WalkOptions opts;
    Rng rng;
    Addr cur;
};

/**
 * Random hash-table lookups: compute the bucket, load the head
 * pointer, walk the chain.
 */
class HashLookupGen : public BlockUopSource
{
  public:
    HashLookupGen(HeapAllocator &heap, BuiltHash hash, Addr pc_base,
                  unsigned reg_base, WalkOptions opts,
                  std::uint64_t seed);

    const char *name() const override { return "hash-lookup"; }

    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r) override;

  protected:
    void emitBlock() override;

  private:
    // cdplint: transient(heap, hash, pcBase, regBase, opts) -- workload shape is rebuilt identically at construction from the same seed and config; only the walk cursor and RNG travel
    HeapAllocator &heap;
    BuiltHash hash;
    Addr pcBase;
    unsigned regBase;
    WalkOptions opts;
    Rng rng;
    /** Cap on chain hops per lookup (safety on degenerate chains). */
    static constexpr unsigned maxChain = 16;
};

/**
 * Random walk over a directed graph: per step, load the node header
 * (degree + adjacency pointer), load one adjacency entry, hop. The
 * adjacency arrays are lines densely packed with node pointers — a
 * content-prefetcher feast that neither a stride nor a Markov
 * prefetcher can exploit on a first visit.
 */
class GraphWalkGen : public BlockUopSource
{
  public:
    GraphWalkGen(HeapAllocator &heap, BuiltGraph graph, Addr pc_base,
                 unsigned reg_base, WalkOptions opts,
                 std::uint64_t seed);

    const char *name() const override { return "graph-walk"; }

    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r) override;

  protected:
    void emitBlock() override;

  private:
    // cdplint: transient(heap, graph, pcBase, regBase, opts) -- workload shape is rebuilt identically at construction from the same seed and config; only the walk cursor and RNG travel
    HeapAllocator &heap;
    BuiltGraph graph;
    Addr pcBase;
    unsigned regBase;
    WalkOptions opts;
    Rng rng;
    Addr cur;
};

/**
 * Repeated random-key searches of a B-tree: per level, load the
 * entry count, compare against the separator keys, branch, load the
 * chosen child pointer. Inner-node fills contain up to `fanout`
 * child pointers, so one scan primes several alternative descents.
 */
class BTreeSearchGen : public BlockUopSource
{
  public:
    BTreeSearchGen(HeapAllocator &heap, BuiltBTree tree, Addr pc_base,
                   unsigned reg_base, WalkOptions opts,
                   std::uint64_t seed);

    const char *name() const override { return "btree-search"; }

    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r) override;

  protected:
    void emitBlock() override;

  private:
    // cdplint: transient(heap, tree, pcBase, regBase, opts) -- workload shape is rebuilt identically at construction from the same seed and config; only the walk cursor and RNG travel
    HeapAllocator &heap;
    BuiltBTree tree;
    Addr pcBase;
    unsigned regBase;
    WalkOptions opts;
    Rng rng;
};

/**
 * Constant-stride sweep over a data region — the regular traffic the
 * baseline stride prefetcher eats for breakfast.
 */
class StrideStreamGen : public BlockUopSource
{
  public:
    StrideStreamGen(Addr region_base, Addr region_bytes,
                    Addr stride_bytes, Addr pc_base, unsigned reg_base,
                    unsigned alu_per_iter, std::uint64_t seed);

    const char *name() const override { return "stride-stream"; }

    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r) override;

  protected:
    void emitBlock() override;

  private:
    // cdplint: transient(base, bytes, stride, pcBase, regBase, aluPerIter) -- workload shape is rebuilt identically at construction from the same seed and config; only the walk cursor and RNG travel
    Addr base;
    Addr bytes;
    Addr stride;
    Addr pcBase;
    unsigned regBase;
    unsigned aluPerIter;
    Rng rng;
    Addr pos = 0;
};

/**
 * Independent loads at random offsets in a region: irregular but
 * non-pointer traffic (neither prefetcher should cover it).
 */
class RandomAccessGen : public BlockUopSource
{
  public:
    RandomAccessGen(Addr region_base, Addr region_bytes, Addr pc_base,
                    unsigned reg_base, std::uint64_t seed);

    const char *name() const override { return "random-access"; }

    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r) override;

  protected:
    void emitBlock() override;

  private:
    // cdplint: transient(base, bytes, pcBase, regBase) -- workload shape is rebuilt identically at construction from the same seed and config; only the RNG travels
    Addr base;
    Addr bytes;
    Addr pcBase;
    unsigned regBase;
    Rng rng;
};

/**
 * Compute padding: ALU/FP chains with loop branches, an optional dose
 * of random (mispredictable) branches, and loads against a small
 * "hot" region that stays cache-resident. The hot loads give the uop
 * stream a realistic load density (and keep the DL1/UL2 busy with hit
 * traffic) without adding L2 misses.
 */
class ComputeGen : public BlockUopSource
{
  public:
    ComputeGen(Addr pc_base, unsigned reg_base, unsigned block_uops,
               double fp_frac, double branch_random_prob,
               Addr hot_base, Addr hot_bytes, unsigned hot_loads,
               std::uint64_t seed);

    const char *name() const override { return "compute"; }

    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r) override;

  protected:
    void emitBlock() override;

  private:
    // cdplint: transient(pcBase, regBase, blockUops, fpFrac, branchRandomProb, hotBase, hotBytes, hotLoads) -- workload shape is rebuilt identically at construction from the same seed and config; only the RNG travels
    Addr pcBase;
    unsigned regBase;
    unsigned blockUops;
    double fpFrac;
    double branchRandomProb;
    Addr hotBase;
    Addr hotBytes;
    unsigned hotLoads;
    Rng rng;
};

/**
 * Weighted uop-level interleaving of sub-sources. Each sub-source
 * owns a disjoint register window, so interleaving does not create
 * false dependencies.
 */
class MixGen : public UopSource
{
  public:
    MixGen(std::string mix_name, std::uint64_t seed);

    /** Add a sub-source with a selection weight. */
    void add(std::unique_ptr<UopSource> src, double weight);

    /**
     * Take ownership of an auxiliary object (e.g. the allocator of a
     * secondary address-space segment) that sub-sources reference.
     */
    void adopt(std::unique_ptr<HeapAllocator> aux);

    Uop next() override;
    const char *name() const override { return mixName.c_str(); }

    /**
     * Serialize the mix RNG, every sub-source (name-guarded so a
     * layout change fails loudly), and the adopted auxiliary
     * allocators.
     */
    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r) override;

  private:
    // cdplint: transient(mixName, cumWeights, totalWeight) -- mix recipe is construction-time; only the constituent sources and the selector RNG travel
    std::string mixName;
    Rng rng;
    std::vector<std::unique_ptr<UopSource>> sources;
    std::vector<std::unique_ptr<HeapAllocator>> auxiliaries;
    std::vector<double> cumWeights;
    double totalWeight = 0.0;
};

} // namespace cdp

#endif // CDP_WORKLOADS_GENERATORS_HH
