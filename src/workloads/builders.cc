#include "workloads/builders.hh"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace cdp
{

namespace
{

/** One plausible non-pointer payload word. */
std::uint32_t
payloadWord(DataKind kind, Rng &rng)
{
    switch (kind) {
      case DataKind::SmallInts:
        return static_cast<std::uint32_t>(rng.below(65536));
      case DataKind::MediumInts:
        return static_cast<std::uint32_t>(
            (1u << 18) + rng.below((1u << 24) - (1u << 18)));
      case DataKind::Floats: {
        const float f =
            static_cast<float>(rng.uniform() * 2000.0 - 1000.0);
        std::uint32_t bits;
        std::memcpy(&bits, &f, 4);
        return bits;
      }
      case DataKind::RandomBits:
        return rng.next32();
    }
    return 0;
}

} // namespace

void
fillPayload(HeapAllocator &heap, Addr node, std::uint32_t bytes,
            const std::vector<std::uint32_t> &skip_offsets, Rng &rng)
{
    for (std::uint32_t off = 0; off + 4 <= bytes; off += 4) {
        if (std::find(skip_offsets.begin(), skip_offsets.end(), off) !=
            skip_offsets.end())
            continue;
        // Mix small ints and floats, the dominant payload classes.
        const DataKind kind =
            rng.chance(0.5) ? DataKind::SmallInts : DataKind::Floats;
        heap.write32(node + off, payloadWord(kind, rng));
    }
}

BuiltList
buildLinkedList(HeapAllocator &heap, std::uint32_t nodes,
                std::uint32_t node_bytes, std::uint32_t next_offset,
                std::uint32_t run_len, Rng &rng)
{
    if (nodes == 0)
        throw std::invalid_argument("buildLinkedList: zero nodes");
    if (next_offset + 4 > node_bytes)
        throw std::invalid_argument("buildLinkedList: bad next offset");
    if (run_len == 0)
        run_len = 1;

    BuiltList list;
    list.nodeBytes = node_bytes;
    list.nextOffset = next_offset;

    std::vector<Addr> alloc_order(nodes);
    for (auto &a : alloc_order)
        a = heap.alloc(node_bytes, 4);

    // Split allocation order into runs of geometric length (mean
    // run_len), then shuffle the runs: consecutive nodes within a run
    // are adjacent in memory, runs land far apart.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
    for (std::uint32_t i = 0; i < nodes;) {
        std::uint32_t len = 1;
        while (i + len < nodes && len < 8 * run_len &&
               !rng.chance(1.0 / run_len))
            ++len;
        runs.emplace_back(i, len);
        i += len;
    }
    for (std::size_t i = runs.size(); i-- > 1;)
        std::swap(runs[i], runs[rng.below(i + 1)]);

    list.nodes.reserve(nodes);
    for (const auto &[start, len] : runs) {
        for (std::uint32_t k = 0; k < len; ++k)
            list.nodes.push_back(alloc_order[start + k]);
    }

    for (std::uint32_t i = 0; i < nodes; ++i) {
        const Addr node = list.nodes[i];
        const Addr next = list.nodes[(i + 1) % nodes]; // circular
        fillPayload(heap, node, node_bytes, {next_offset}, rng);
        heap.write32(node + next_offset, next);
    }
    list.head = list.nodes.front();
    return list;
}

BuiltTree
buildBinaryTree(HeapAllocator &heap, std::uint32_t nodes,
                std::uint32_t node_bytes, Rng &rng)
{
    if (nodes == 0)
        throw std::invalid_argument("buildBinaryTree: zero nodes");
    if (node_bytes < 12)
        throw std::invalid_argument("buildBinaryTree: node too small");

    BuiltTree tree;
    tree.nodeBytes = node_bytes;
    tree.nodes.reserve(nodes);

    auto make_node = [&](std::uint32_t key) {
        const Addr n = heap.alloc(node_bytes, 4);
        fillPayload(heap, n, node_bytes,
                    {0, tree.leftOffset, tree.rightOffset}, rng);
        heap.write32(n + 0, key);
        heap.write32(n + tree.leftOffset, 0);
        heap.write32(n + tree.rightOffset, 0);
        tree.nodes.push_back(n);
        return n;
    };

    tree.root = make_node(rng.next32() >> 1);
    for (std::uint32_t i = 1; i < nodes; ++i) {
        const std::uint32_t key = rng.next32() >> 1;
        const Addr n = make_node(key);
        Addr cur = tree.root;
        for (;;) {
            const std::uint32_t cur_key = heap.read32(cur);
            const std::uint32_t off =
                key < cur_key ? tree.leftOffset : tree.rightOffset;
            const Addr child = heap.read32(cur + off);
            if (child == 0) {
                heap.write32(cur + off, n);
                break;
            }
            cur = child;
        }
    }
    return tree;
}

BuiltHash
buildHashTable(HeapAllocator &heap, std::uint32_t buckets,
               std::uint32_t nodes, std::uint32_t node_bytes, Rng &rng)
{
    if (buckets == 0 || (buckets & (buckets - 1)) != 0)
        throw std::invalid_argument("buildHashTable: buckets must be pow2");
    if (node_bytes < 8)
        throw std::invalid_argument("buildHashTable: node too small");

    BuiltHash hash;
    hash.buckets = buckets;
    hash.nodeBytes = node_bytes;
    hash.bucketArray = heap.alloc(buckets * 4, 4);
    for (std::uint32_t b = 0; b < buckets; ++b)
        heap.write32(hash.bucketArray + b * 4, 0);

    // Rows are inserted in random key order, as an aged OLTP table
    // would be: chain-adjacent rows land far apart in memory, so the
    // chains are genuine pointer chases (the stride prefetcher cannot
    // cover them). Chains are linked in allocation order.
    std::vector<std::uint32_t> keys(nodes);
    for (auto &k : keys)
        k = rng.next32();

    std::vector<Addr> tails(buckets, 0);
    hash.nodes.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i) {
        const std::uint32_t key = keys[i];
        const std::uint32_t b = key & (buckets - 1);
        const Addr n = heap.alloc(node_bytes, 4);
        fillPayload(heap, n, node_bytes, {0, hash.nextOffset}, rng);
        heap.write32(n + 0, key);
        heap.write32(n + hash.nextOffset, 0);
        if (tails[b] == 0)
            heap.write32(hash.bucketArray + b * 4, n);
        else
            heap.write32(tails[b] + hash.nextOffset, n);
        tails[b] = n;
        hash.nodes.push_back(n);
    }
    return hash;
}

BuiltGraph
buildGraph(HeapAllocator &heap, std::uint32_t nodes,
           std::uint32_t node_bytes, std::uint32_t max_degree, Rng &rng)
{
    if (nodes == 0)
        throw std::invalid_argument("buildGraph: zero nodes");
    if (node_bytes < 8)
        throw std::invalid_argument("buildGraph: node too small");
    if (max_degree == 0)
        throw std::invalid_argument("buildGraph: zero max degree");

    BuiltGraph g;
    g.nodeBytes = node_bytes;
    g.nodes.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i)
        g.nodes.push_back(heap.alloc(node_bytes, 4));

    for (Addr node : g.nodes) {
        const std::uint32_t degree =
            1 + static_cast<std::uint32_t>(rng.below(max_degree));
        const Addr adj = heap.alloc(degree * 4, 4);
        for (std::uint32_t e = 0; e < degree; ++e) {
            heap.write32(adj + 4 * e,
                         g.nodes[rng.below(g.nodes.size())]);
        }
        fillPayload(heap, node, node_bytes,
                    {BuiltGraph::degreeOffset,
                     BuiltGraph::adjPtrOffset},
                    rng);
        heap.write32(node + BuiltGraph::degreeOffset, degree);
        heap.write32(node + BuiltGraph::adjPtrOffset, adj);
    }
    return g;
}

BuiltBTree
buildBTree(HeapAllocator &heap, std::uint32_t leaves,
           std::uint32_t fanout, Rng &rng)
{
    if (leaves == 0)
        throw std::invalid_argument("buildBTree: zero leaves");
    if (fanout < 2 || fanout > 15)
        throw std::invalid_argument("buildBTree: fanout out of range");

    BuiltBTree t;
    t.fanout = fanout;
    // count + (fanout-1) keys + fanout children, rounded to 8 bytes.
    t.nodeBytes = (4 + 4 * (fanout - 1) + 4 * fanout + 7) & ~7u;

    // Sorted random keys, one run per leaf.
    std::vector<std::uint32_t> keys(leaves * (fanout - 1));
    for (auto &k : keys)
        k = rng.next32() >> 1;
    std::sort(keys.begin(), keys.end());

    auto alloc_node = [&]() {
        const Addr n = heap.alloc(t.nodeBytes, 8);
        for (std::uint32_t off = 0; off < t.nodeBytes; off += 4)
            heap.write32(n + off, 0);
        t.nodes.push_back(n);
        return n;
    };

    // Build the leaf level.
    std::vector<Addr> level;
    std::vector<std::uint32_t> level_min; // smallest key under node
    std::size_t ki = 0;
    for (std::uint32_t l = 0; l < leaves; ++l) {
        const Addr n = alloc_node();
        heap.write32(n + 0, fanout - 1);
        level_min.push_back(keys[ki]);
        for (std::uint32_t i = 0; i < fanout - 1; ++i)
            heap.write32(n + t.keyOffset(i), keys[ki++]);
        level.push_back(n);
    }
    t.height = 1;

    // Build inner levels bottom-up until a single root remains.
    while (level.size() > 1) {
        std::vector<Addr> parents;
        std::vector<std::uint32_t> parent_min;
        for (std::size_t i = 0; i < level.size(); i += fanout) {
            const std::uint32_t n_children = static_cast<std::uint32_t>(
                std::min<std::size_t>(fanout, level.size() - i));
            const Addr n = alloc_node();
            heap.write32(n + 0, n_children);
            for (std::uint32_t c = 0; c < n_children; ++c)
                heap.write32(n + t.childOffset(c), level[i + c]);
            // Separator keys: the minimum of each child but the first.
            for (std::uint32_t c = 1; c < n_children; ++c)
                heap.write32(n + t.keyOffset(c - 1),
                             level_min[i + c]);
            parents.push_back(n);
            parent_min.push_back(level_min[i]);
        }
        level = std::move(parents);
        level_min = std::move(parent_min);
        ++t.height;
    }
    t.root = level.front();
    return t;
}

Addr
buildDataRegion(HeapAllocator &heap, std::uint32_t bytes, DataKind kind,
                Rng &rng)
{
    const Addr base = heap.alloc(bytes, 64);
    for (std::uint32_t off = 0; off + 4 <= bytes; off += 4)
        heap.write32(base + off, payloadWord(kind, rng));
    return base;
}

} // namespace cdp
