/**
 * @file
 * The synthetic benchmark suite standing in for the paper's Table 2
 * workloads.
 *
 * The paper runs proprietary Intel LIT checkpoints of commercial
 * applications (b2b, quake, tpcc, verilog, specjbb, ...). Those
 * traces are not available, so each benchmark here is a parameterized
 * mix of the behaviours the paper attributes to its suite: linked
 * structure traversals (lists, trees, hash chains) over working sets
 * chosen to stress a 1-MB UL2 to a similar degree (the L2 MPTU column
 * of Table 2), plus strided streams, irregular non-pointer loads, and
 * compute padding. Names are kept so the figures line up with the
 * paper's.
 */

#ifndef CDP_WORKLOADS_SUITE_HH
#define CDP_WORKLOADS_SUITE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/uop.hh"
#include "workloads/heap_allocator.hh"

namespace cdp
{

/** Parameter block defining one synthetic benchmark. */
struct BenchmarkSpec
{
    std::string name;
    std::string suite; //!< Table 2 suite column

    // Linked-list component.
    std::uint32_t listNodes = 0;
    std::uint32_t listNodeBytes = 64;
    std::uint32_t listNextOffset = 8;
    /** Mean allocation-run length (aged-heap model; 1 = shuffled). */
    std::uint32_t listRunLen = 2;

    // Binary-tree component.
    std::uint32_t treeNodes = 0;
    std::uint32_t treeNodeBytes = 32;

    // Hash-table component.
    std::uint32_t hashBuckets = 0;
    std::uint32_t hashNodes = 0;
    std::uint32_t hashNodeBytes = 32;

    // Graph component (adjacency-array pointer chasing).
    std::uint32_t graphNodes = 0;
    std::uint32_t graphNodeBytes = 32;
    std::uint32_t graphMaxDegree = 6;

    // B-tree component (multi-way index descent).
    std::uint32_t btreeLeaves = 0;
    std::uint32_t btreeFanout = 8;

    // Regular / irregular array components.
    std::uint32_t strideKB = 0;
    std::uint32_t strideStep = 64;
    std::uint32_t randomKB = 0;

    // Mix weights (relative uop frequencies).
    double wList = 0.0;
    double wTree = 0.0;
    double wHash = 0.0;
    double wGraph = 0.0;
    double wBTree = 0.0;
    double wStride = 0.0;
    double wRandom = 0.0;
    double wCompute = 0.0;

    // Intensity knobs.
    unsigned aluPerNode = 2;
    unsigned payloadLoads = 1;
    double fpFrac = 0.15;
    double branchRandomProb = 0.02;
    unsigned computeBlock = 8;
    /** Cache-resident hot region touched by compute blocks. */
    std::uint32_t hotKB = 64;
    unsigned hotLoads = 3;

    /** Approximate working-set bytes of all structures. */
    std::uint64_t workingSetBytes() const;
};

/** The 15 benchmarks of Table 2, in the paper's order. */
const std::vector<BenchmarkSpec> &table2Suite();

/**
 * Additional workloads beyond the paper's suite: graph analytics
 * ("xgraph") and a B-tree index ("xbtree"). Usable anywhere a
 * workload name is accepted; not part of the Table 2 averages.
 */
const std::vector<BenchmarkSpec> &extraWorkloads();

/**
 * Find a benchmark spec by name.
 * @throw std::invalid_argument for unknown names.
 */
const BenchmarkSpec &findBenchmark(const std::string &name);

/**
 * Build the structures of @p spec in @p heap and return the composed
 * uop source.
 */
std::unique_ptr<UopSource> makeBenchmark(const BenchmarkSpec &spec,
                                         HeapAllocator &heap,
                                         std::uint64_t seed);

} // namespace cdp

#endif // CDP_WORKLOADS_SUITE_HH
