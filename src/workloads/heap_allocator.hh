/**
 * @file
 * Simulated heap allocator.
 *
 * The VAM heuristic works because "the memory allocation used by
 * operating systems and runtime systems" hands out heap pointers that
 * share their high-order bits and are (mostly) 4-byte aligned. This
 * allocator reproduces that property: a bump allocator over a virtual
 * heap region starting at a common base, mapping pages on demand
 * through the two-level page table, with a configurable fraction of
 * 2-byte-only alignments ("not all compilers align the base address
 * of each node; this is expected from compilers optimizing for data
 * footprint", Section 4.1).
 *
 * The allocator is also the workloads' window into simulated memory:
 * read32/write32 translate through the page table and hit the
 * BackingStore, so structures built here are real bytes the content
 * prefetcher later scans.
 */

#ifndef CDP_WORKLOADS_HEAP_ALLOCATOR_HH
#define CDP_WORKLOADS_HEAP_ALLOCATOR_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "mem/backing_store.hh"
#include "mem/frame_allocator.hh"
#include "vm/page_table.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Default base of the simulated heap (upper 8 bits = 0x10). */
constexpr Addr defaultHeapBase = 0x10000000;

/**
 * Bump allocator over a demand-mapped virtual heap.
 */
class HeapAllocator
{
  public:
    /**
     * @param align_noise fraction of allocations aligned to 2 bytes
     *        instead of the requested alignment
     */
    HeapAllocator(BackingStore &store, PageTable &page_table,
                  FrameAllocator &frames,
                  Addr heap_base = defaultHeapBase,
                  double align_noise = 0.0,
                  std::uint64_t seed = 97);

    /**
     * Allocate @p bytes aligned to @p align (power of two); pages are
     * mapped on first allocation. Returns the virtual address.
     */
    Addr alloc(Addr bytes, Addr align = 4);

    /** Map every page of [va, va+bytes) (idempotent). */
    void ensureMapped(Addr va, Addr bytes);

    /** Read a 32-bit little-endian word at virtual address @p va. */
    std::uint32_t read32(Addr va) const;

    /** Write a 32-bit little-endian word at virtual address @p va. */
    void write32(Addr va, std::uint32_t v);

    /** Read one byte. */
    std::uint8_t read8(Addr va) const;

    /** Write one byte. */
    void write8(Addr va, std::uint8_t v);

    Addr heapBase() const { return base; }
    Addr heapTop() const { return top; }
    Addr bytesAllocated() const { return top - base; }

    BackingStore &backingStore() { return store; }
    PageTable &pageTable() { return table; }
    FrameAllocator &frameAllocator() { return frames; }

    /** Serialize bump-pointer state + RNG (checkpointing). */
    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    Addr translateOrThrow(Addr va) const;

    // cdplint: transient(lastVaPage, lastHost) -- one-entry VA-page -> host-frame memo; mappings are never unmapped and frames never move, so only loadState() resets it
    /**
     * Translation memo: the last heap page touched by an in-page
     * read32/write32, as a direct host pointer into the backing
     * store's frame. Collapses translate + frame lookup for the
     * pointer-chasing workloads that hammer one page at a time.
     * Valid because the page table has no unmap and frames are
     * stable until loadState(), which resets the memo.
     */
    mutable Addr lastVaPage = ~Addr{0};
    mutable std::uint8_t *lastHost = nullptr;

    // cdplint: transient(store, table, frames) -- wiring references rebuilt by the restoring harness, not state
    BackingStore &store;
    PageTable &table;
    FrameAllocator &frames;
    Addr base;
    Addr top;
    Addr mappedTo; //!< first unmapped heap address
    // cdplint: transient(alignNoise) -- construction-time policy knob; the restoring side's own config governs
    double alignNoise;
    Rng rng;
};

} // namespace cdp

#endif // CDP_WORKLOADS_HEAP_ALLOCATOR_HH
