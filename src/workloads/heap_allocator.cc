#include "workloads/heap_allocator.hh"

#include <cstring>
#include <stdexcept>

#include "snapshot/ckpt_io.hh"

namespace cdp
{

HeapAllocator::HeapAllocator(BackingStore &store, PageTable &page_table,
                             FrameAllocator &frames, Addr heap_base,
                             double align_noise, std::uint64_t seed)
    : store(store), table(page_table), frames(frames), base(heap_base),
      top(heap_base), mappedTo(heap_base), alignNoise(align_noise),
      rng(seed)
{
}

Addr
HeapAllocator::alloc(Addr bytes, Addr align)
{
    if (bytes == 0)
        bytes = 1;
    if (align == 0 || (align & (align - 1)) != 0)
        throw std::invalid_argument("HeapAllocator: bad alignment");

    Addr effective_align = align;
    if (alignNoise > 0.0 && align > 2 && rng.chance(alignNoise))
        effective_align = 2;

    top = (top + effective_align - 1) & ~(effective_align - 1);
    const Addr va = top;
    top += bytes;
    ensureMapped(va, bytes);
    return va;
}

void
HeapAllocator::ensureMapped(Addr va, Addr bytes)
{
    const Addr first = pageAlign(va);
    const Addr last = pageAlign(va + bytes - 1);
    for (Addr page = first;; page += pageBytes) {
        if (page >= mappedTo || !table.translate(page)) {
            const Addr frame = frames.allocate();
            table.map(page, frame);
        }
        if (page == last)
            break;
    }
    if (last + pageBytes > mappedTo)
        mappedTo = last + pageBytes;
}

Addr
HeapAllocator::translateOrThrow(Addr va) const
{
    const auto pa = table.translate(va);
    if (!pa)
        throw std::runtime_error("HeapAllocator: unmapped VA");
    return *pa;
}

std::uint32_t
HeapAllocator::read32(Addr va) const
{
    if (pageOffset(va) <= pageBytes - 4) {
        if (pageAlign(va) == lastVaPage) {
            std::uint32_t v;
            std::memcpy(&v, lastHost + pageOffset(va), 4);
            return v;
        }
        const Addr pa = translateOrThrow(va);
        if (std::uint8_t *host = store.pageDataIfPresent(pa)) {
            lastVaPage = pageAlign(va);
            lastHost = host;
            std::uint32_t v;
            std::memcpy(&v, host + pageOffset(pa), 4);
            return v;
        }
        return 0; // never-written frame reads as zero; do not memoize
    }
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(
                 store.read8(translateOrThrow(va + i)))
             << (8 * i);
    }
    return v;
}

void
HeapAllocator::write32(Addr va, std::uint32_t v)
{
    if (pageOffset(va) <= pageBytes - 4) {
        if (pageAlign(va) == lastVaPage) {
            std::memcpy(lastHost + pageOffset(va), &v, 4);
            return;
        }
        const Addr pa = translateOrThrow(va);
        lastVaPage = pageAlign(va);
        lastHost = store.pageData(pa);
        std::memcpy(lastHost + pageOffset(pa), &v, 4);
        return;
    }
    for (unsigned i = 0; i < 4; ++i) {
        store.write8(translateOrThrow(va + i),
                     static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint8_t
HeapAllocator::read8(Addr va) const
{
    return store.read8(translateOrThrow(va));
}

void
HeapAllocator::write8(Addr va, std::uint8_t v)
{
    store.write8(translateOrThrow(va), v);
}

void
HeapAllocator::saveState(snap::Writer &w) const
{
    w.u64(base);
    w.u32(top);
    w.u32(mappedTo);
    w.rng(rng);
}

void
HeapAllocator::loadState(snap::Reader &r)
{
    r.expectU64(base, "heap base");
    top = r.u32();
    mappedTo = r.u32();
    if (top < base || mappedTo < base)
        r.fail("heap bump pointer below the heap base");
    r.rng(rng);
    lastVaPage = ~Addr{0};
    lastHost = nullptr;
}

} // namespace cdp
