#include "workloads/suite.hh"

#include <stdexcept>

#include "workloads/generators.hh"

namespace cdp
{

std::uint64_t
BenchmarkSpec::workingSetBytes() const
{
    std::uint64_t ws = 0;
    ws += static_cast<std::uint64_t>(listNodes) * listNodeBytes;
    ws += static_cast<std::uint64_t>(treeNodes) * treeNodeBytes;
    ws += static_cast<std::uint64_t>(graphNodes) *
          (graphNodeBytes + 4 * (1 + graphMaxDegree) / 2);
    ws += static_cast<std::uint64_t>(btreeLeaves) * btreeFanout * 8;
    ws += static_cast<std::uint64_t>(hashNodes) * hashNodeBytes +
          static_cast<std::uint64_t>(hashBuckets) * 4;
    ws += static_cast<std::uint64_t>(strideKB) * 1024;
    ws += static_cast<std::uint64_t>(randomKB) * 1024;
    ws += static_cast<std::uint64_t>(hotKB) * 1024;
    return ws;
}

namespace
{

/** Shorthand builder for the table below. */
BenchmarkSpec
spec(std::string name, std::string suite)
{
    BenchmarkSpec s;
    s.name = std::move(name);
    s.suite = std::move(suite);
    return s;
}

/**
 * The mix weights below are chosen so the demand L2 miss density
 * (MPTU) of each benchmark lands in the neighbourhood of its Table 2
 * column: pointer-walk uops are a small fraction of the stream (real
 * applications miss the L2 on well under 1% of uops), and the heavy
 * CAD/server codes are dominated by out-of-cache pointer chasing.
 * The measured values are recorded in EXPERIMENTS.md.
 */
std::vector<BenchmarkSpec>
buildSuite()
{
    std::vector<BenchmarkSpec> v;

    // Internet business: middleware over moderate heaps; b2b misses,
    // b2c's working set nearly fits the UL2.
    {
        BenchmarkSpec s = spec("b2b", "Internet");
        s.listNodes = 14'000;  s.listNodeBytes = 64;   // 896 KB
        s.hashBuckets = 1024;  s.hashNodes = 12'000;   // 388 KB
        s.wList = 0.005; s.wHash = 0.004; s.wStride = 0.02;
        s.strideKB = 256;
        s.wCompute = 0.971;
        v.push_back(s);
    }
    {
        BenchmarkSpec s = spec("b2c", "Internet");
        s.listNodes = 3'000;   s.listNodeBytes = 64;   // 192 KB
        s.hashBuckets = 1024;  s.hashNodes = 3'000;    // 100 KB
        s.wList = 0.04; s.wHash = 0.03; s.wStride = 0.02;
        s.strideKB = 128;
        s.wCompute = 0.91;
        v.push_back(s);
    }
    // Multimedia: streaming plus irregular texture/entity access.
    {
        BenchmarkSpec s = spec("quake", "Multimedia");
        s.strideKB = 1536; s.randomKB = 1024;
        s.listNodes = 8'000; s.listNodeBytes = 96;     // 768 KB
        s.listRunLen = 8; // young heap: stride-friendly layout
        s.wStride = 0.06; s.wRandom = 0.03; s.wList = 0.02;
        s.wCompute = 0.89; s.fpFrac = 0.35;
        v.push_back(s);
    }
    // Productivity.
    {
        BenchmarkSpec s = spec("speech", "Productivity");
        s.hashBuckets = 1024; s.hashNodes = 20'000;    // 640 KB
        s.treeNodes = 16'000; s.treeNodeBytes = 48;    // 768 KB
        s.wHash = 0.030; s.wTree = 0.02; s.wStride = 0.03;
        s.strideKB = 512;
        s.wCompute = 0.92;
        v.push_back(s);
    }
    {
        BenchmarkSpec s = spec("rc3", "Productivity");
        s.listNodes = 8'000; s.listNodeBytes = 64;     // 512 KB
        s.listRunLen = 8; // young heap: stride-friendly layout
        s.strideKB = 512;
        s.wList = 0.03; s.wStride = 0.03; s.wCompute = 0.94;
        v.push_back(s);
    }
    {
        BenchmarkSpec s = spec("creation", "Productivity");
        s.treeNodes = 24'000; s.treeNodeBytes = 48;    // 1.1 MB
        s.strideKB = 768;
        s.wTree = 0.035; s.wStride = 0.03; s.wCompute = 0.935;
        v.push_back(s);
    }
    // Server (OLTP): hash/list chasing over multi-MB shared buffers;
    // the four tpcc flavours grow the working set.
    for (unsigned i = 1; i <= 4; ++i) {
        BenchmarkSpec s = spec("tpcc-" + std::to_string(i), "Server");
        s.hashBuckets = 2048;  // long chains: ~8 rows per bucket
        s.hashNodes = 14'000 + i * 2'000;              // 2.0-2.8 MB
        s.hashNodeBytes = 128; // OLTP rows span two cache lines
        s.listNodes = 8'000 + i * 1'500;
        s.listNodeBytes = 128;                         // 1.2-1.8 MB
        s.wHash = 0.008 + 0.001 * i;
        s.wList = 0.005; s.wStride = 0.015;
        s.strideKB = 512;
        s.wCompute = 1.0 - s.wHash - s.wList - s.wStride;
        v.push_back(s);
    }
    // Workstation (CAD): verilog simulators chase huge netlists with
    // little compute between hops.
    {
        BenchmarkSpec s = spec("verilog-func", "Workstation");
        s.listNodes = 60'000; s.listNodeBytes = 64;    // 3.8 MB
        s.listRunLen = 2; // heavily fragmented netlist heap
        s.treeNodes = 10'000;                          // 320 KB
        s.wList = 0.08; s.wTree = 0.015; s.wCompute = 0.905;
        s.aluPerNode = 1;
        v.push_back(s);
    }
    {
        BenchmarkSpec s = spec("verilog-gate", "Workstation");
        s.listNodes = 160'000; s.listNodeBytes = 64;   // 10 MB
        s.listRunLen = 3; // heavily fragmented netlist heap
        s.wList = 0.16; s.wCompute = 0.84;
        s.aluPerNode = 1; s.payloadLoads = 1;
        v.push_back(s);
    }
    {
        BenchmarkSpec s = spec("proE", "Workstation");
        s.treeNodes = 6'000; s.treeNodeBytes = 32;     // 192 KB
        s.strideKB = 512;
        s.wTree = 0.03; s.wStride = 0.04; s.wCompute = 0.93;
        v.push_back(s);
    }
    {
        BenchmarkSpec s = spec("slsb", "Workstation");
        s.hashBuckets = 2048; s.hashNodes = 36'000;    // 1.4 MB
        s.hashNodeBytes = 40;
        s.wHash = 0.050; s.wCompute = 0.92; s.wStride = 0.03;
        s.strideKB = 384;
        v.push_back(s);
    }
    // Runtime (Java): allocation-scattered object graphs; node sizes
    // straddle cache lines, which is where next-line width pays off.
    {
        BenchmarkSpec s = spec("specjbb-vsnet", "Runtime");
        s.listNodes = 18'000; s.listNodeBytes = 96;    // 1.7 MB
        s.treeNodes = 14'000; s.treeNodeBytes = 48;    // 672 KB
        s.hashBuckets = 4096; s.hashNodes = 10'000;
        s.wList = 0.005; s.wTree = 0.006; s.wHash = 0.004;
        s.wStride = 0.01; s.strideKB = 256;
        s.wCompute = 0.975;
        v.push_back(s);
    }
    return v;
}

} // namespace

const std::vector<BenchmarkSpec> &
table2Suite()
{
    static const std::vector<BenchmarkSpec> suite = buildSuite();
    return suite;
}

const std::vector<BenchmarkSpec> &
extraWorkloads()
{
    static const std::vector<BenchmarkSpec> extras = [] {
        std::vector<BenchmarkSpec> v;
        {
            BenchmarkSpec s = spec("xgraph", "Extra");
            s.graphNodes = 40'000;     // ~2.2 MB incl. adjacency
            s.graphNodeBytes = 32;
            s.graphMaxDegree = 6;
            s.wGraph = 0.04; s.wCompute = 0.96;
            v.push_back(s);
        }
        {
            BenchmarkSpec s = spec("xbtree", "Extra");
            s.btreeLeaves = 24'000;    // ~1.9 MB of order-8 nodes
            s.btreeFanout = 8;
            s.wBTree = 0.04; s.wStride = 0.01; s.strideKB = 256;
            s.wCompute = 0.95;
            v.push_back(s);
        }
        return v;
    }();
    return extras;
}

const BenchmarkSpec &
findBenchmark(const std::string &name)
{
    for (const auto &s : table2Suite()) {
        if (s.name == name)
            return s;
    }
    for (const auto &s : extraWorkloads()) {
        if (s.name == name)
            return s;
    }
    throw std::invalid_argument("unknown benchmark: " + name);
}

std::unique_ptr<UopSource>
makeBenchmark(const BenchmarkSpec &spec, HeapAllocator &heap,
              std::uint64_t seed)
{
    Rng build_rng(seed * 2654435761ull + 17);
    auto mix = std::make_unique<MixGen>(spec.name, seed + 1);

    WalkOptions walk;
    walk.aluPerNode = spec.aluPerNode;
    walk.payloadLoads = spec.payloadLoads;
    walk.fpFrac = spec.fpFrac;

    if (spec.listNodes && spec.wList > 0.0) {
        BuiltList list =
            buildLinkedList(heap, spec.listNodes, spec.listNodeBytes,
                            spec.listNextOffset, spec.listRunLen,
                            build_rng);
        // Two independent walker contexts over the same structure
        // (distinct register windows): real programs overlap several
        // traversals, which is where pointer-chase MLP comes from.
        BuiltList list2 = list;
        if (list2.nodes.size() > 1)
            list2.head = list2.nodes[list2.nodes.size() / 2];
        mix->add(std::make_unique<ListTraversalGen>(
                     heap, std::move(list), 0x1000, 0, walk, seed + 2),
                 spec.wList / 2);
        mix->add(std::make_unique<ListTraversalGen>(
                     heap, std::move(list2), 0x1100, 24, walk,
                     seed + 12),
                 spec.wList / 2);
    }
    if (spec.treeNodes && spec.wTree > 0.0) {
        BuiltTree tree = buildBinaryTree(heap, spec.treeNodes,
                                         spec.treeNodeBytes, build_rng);
        mix->add(std::make_unique<TreeSearchGen>(
                     heap, std::move(tree), 0x2000, 4, walk, seed + 3),
                 spec.wTree);
    }
    if (spec.hashNodes && spec.wHash > 0.0) {
        BuiltHash hash =
            buildHashTable(heap, spec.hashBuckets, spec.hashNodes,
                           spec.hashNodeBytes, build_rng);
        BuiltHash hash2 = hash;
        mix->add(std::make_unique<HashLookupGen>(
                     heap, std::move(hash), 0x3000, 8, walk, seed + 4),
                 spec.wHash / 2);
        mix->add(std::make_unique<HashLookupGen>(
                     heap, std::move(hash2), 0x3100, 28, walk,
                     seed + 14),
                 spec.wHash / 2);
    }
    if (spec.graphNodes && spec.wGraph > 0.0) {
        BuiltGraph graph = buildGraph(heap, spec.graphNodes,
                                      spec.graphNodeBytes,
                                      spec.graphMaxDegree, build_rng);
        mix->add(std::make_unique<GraphWalkGen>(
                     heap, std::move(graph), 0x7000, 4, walk,
                     seed + 8),
                 spec.wGraph);
    }
    if (spec.btreeLeaves && spec.wBTree > 0.0) {
        BuiltBTree btree = buildBTree(heap, spec.btreeLeaves,
                                      spec.btreeFanout, build_rng);
        mix->add(std::make_unique<BTreeSearchGen>(
                     heap, std::move(btree), 0x7800, 8, walk,
                     seed + 9),
                 spec.wBTree);
    }
    if (spec.strideKB && spec.wStride > 0.0) {
        const Addr region = buildDataRegion(
            heap, spec.strideKB * 1024, DataKind::Floats, build_rng);
        mix->add(std::make_unique<StrideStreamGen>(
                     region, spec.strideKB * 1024, spec.strideStep,
                     0x4000, 12, spec.aluPerNode, seed + 5),
                 spec.wStride);
    }
    if (spec.randomKB && spec.wRandom > 0.0) {
        const Addr region = buildDataRegion(
            heap, spec.randomKB * 1024, DataKind::RandomBits, build_rng);
        mix->add(std::make_unique<RandomAccessGen>(
                     region, spec.randomKB * 1024, 0x5000, 16, seed + 6),
                 spec.wRandom);
    }
    // Low-region "globals" segment (static data at 0x00200000):
    // a small intra-segment pointer web plus medium-integer data.
    // This is the address region whose candidates the VAM *filter
    // bits* arbitrate (Section 3.3): with few filter bits, genuine
    // low-region pointers are rejected as small integers; with many,
    // medium integers start masquerading as pointers.
    auto globals = std::make_unique<HeapAllocator>(
        heap.backingStore(), heap.pageTable(), heap.frameAllocator(),
        /*heap_base=*/0x00200000, /*align_noise=*/0.0, seed ^ 0x910b);
    Addr hot_base = 0;
    Addr hot_bytes = 0;
    if (spec.hotKB) {
        hot_bytes = spec.hotKB * 1024;
        hot_base = buildDataRegion(*globals, hot_bytes,
                                   DataKind::MediumInts, build_rng);
    }
    {
        BuiltList glist =
            buildLinkedList(*globals, 1'500, 32, 8, 4, build_rng);
        WalkOptions gwalk;
        gwalk.aluPerNode = 1;
        gwalk.payloadLoads = 1;
        mix->add(std::make_unique<ListTraversalGen>(
                     *globals, std::move(glist), 0x8000, 29, gwalk,
                     seed + 11),
                 0.004);
    }
    if (spec.wCompute > 0.0) {
        mix->add(std::make_unique<ComputeGen>(
                     0x6000, 20, spec.computeBlock, spec.fpFrac,
                     spec.branchRandomProb, hot_base, hot_bytes,
                     spec.hotLoads, seed + 7),
                 spec.wCompute);
    }
    mix->adopt(std::move(globals));
    return mix;
}

} // namespace cdp
