/**
 * @file
 * Builders that construct *real* linked data structures inside the
 * simulated memory.
 *
 * Every pointer written here is a genuine 32-bit virtual address
 * stored little-endian at its natural struct offset, which is what
 * makes content-directed prefetching work end-to-end in this
 * simulator: when a node's cache line is filled, the next/child
 * pointers are sitting in the line bytes for the VAM scanner to find.
 *
 * Payload words are filled with "plausible data" — small integers,
 * IEEE-754 floats, and random bits — so the false-positive behaviour
 * of the filter/align heuristics is exercised realistically.
 */

#ifndef CDP_WORKLOADS_BUILDERS_HH
#define CDP_WORKLOADS_BUILDERS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "workloads/heap_allocator.hh"

namespace cdp
{

/** A singly linked list resident in simulated memory. */
struct BuiltList
{
    Addr head = 0;
    std::uint32_t nodeBytes = 0;
    std::uint32_t nextOffset = 0;
    std::vector<Addr> nodes; //!< link order
};

/**
 * Build a singly linked list of @p nodes nodes of @p node_bytes each;
 * the next pointer lives at @p next_offset.
 *
 * Heap layout follows the "aged allocator" model: the link order is a
 * concatenation of *runs* of consecutive allocations (geometric
 * length, mean @p run_len) with the run order shuffled. run_len == 1
 * destroys all spatial locality (a thoroughly fragmented heap);
 * a large run_len approaches a freshly built, fully sequential list.
 * Real programs sit in between, which is what makes both the stride
 * prefetcher and the content prefetcher's next-line width worth
 * having. The list is circular (the last node points back to the
 * head) so traversal generators never run off the end.
 */
BuiltList buildLinkedList(HeapAllocator &heap, std::uint32_t nodes,
                          std::uint32_t node_bytes,
                          std::uint32_t next_offset,
                          std::uint32_t run_len, Rng &rng);

/** A binary search tree resident in simulated memory. */
struct BuiltTree
{
    Addr root = 0;
    std::uint32_t nodeBytes = 0;
    std::uint32_t leftOffset = 4;  //!< after the 4-byte key
    std::uint32_t rightOffset = 8;
    std::vector<Addr> nodes;
};

/**
 * Build a binary search tree by inserting @p nodes random keys.
 * Layout per node: [key:4][left:4][right:4][payload...].
 */
BuiltTree buildBinaryTree(HeapAllocator &heap, std::uint32_t nodes,
                          std::uint32_t node_bytes, Rng &rng);

/** A chained hash table resident in simulated memory. */
struct BuiltHash
{
    Addr bucketArray = 0;   //!< array of head pointers
    std::uint32_t buckets = 0;
    std::uint32_t nodeBytes = 0;
    std::uint32_t nextOffset = 4; //!< after the 4-byte key
    std::vector<Addr> nodes;
};

/**
 * Build a hash table with @p buckets chains over @p nodes nodes.
 * Node layout: [key:4][next:4][payload...].
 */
BuiltHash buildHashTable(HeapAllocator &heap, std::uint32_t buckets,
                         std::uint32_t nodes, std::uint32_t node_bytes,
                         Rng &rng);

/** A directed graph with per-node adjacency arrays. */
struct BuiltGraph
{
    /** Node layout: [degree:4][adjArrayPtr:4][payload...]. */
    std::vector<Addr> nodes;
    std::uint32_t nodeBytes = 0;
    static constexpr std::uint32_t degreeOffset = 0;
    static constexpr std::uint32_t adjPtrOffset = 4;
};

/**
 * Build a random directed graph of @p nodes nodes with out-degrees
 * in [1, max_degree]. Each node stores its degree and a pointer to a
 * separately allocated adjacency array of node addresses — the
 * "pointer to an array of pointers" shape that makes graph codes a
 * distinct prefetching target from plain linked structures (the
 * scanner finds the adjacency-array pointer in the node line, and
 * the array line is then densely packed with node pointers).
 */
BuiltGraph buildGraph(HeapAllocator &heap, std::uint32_t nodes,
                      std::uint32_t node_bytes,
                      std::uint32_t max_degree, Rng &rng);

/** A B-tree (order @p fanout) resident in simulated memory. */
struct BuiltBTree
{
    Addr root = 0;
    std::uint32_t fanout = 0;   //!< max children per inner node
    std::uint32_t nodeBytes = 0;
    std::uint32_t height = 0;
    std::vector<Addr> nodes;
    /** Node layout: [count:4][keys: fanout-1 x 4][children: fanout x 4]. */
    std::uint32_t keyOffset(std::uint32_t i) const { return 4 + 4 * i; }
    std::uint32_t
    childOffset(std::uint32_t i) const
    {
        return 4 + 4 * (fanout - 1) + 4 * i;
    }
};

/**
 * Bulk-build a complete B-tree over @p keys sorted random keys.
 * Inner-node lines are densely packed with child pointers — the
 * most pointer-rich content the scanner ever sees outside the page
 * tables — while leaves hold only keys.
 */
BuiltBTree buildBTree(HeapAllocator &heap, std::uint32_t leaves,
                      std::uint32_t fanout, Rng &rng);

/** Content class for non-pointer data regions. */
enum class DataKind
{
    SmallInts, //!< values < 2^16: rejected by the zero-region filter
    MediumInts, //!< sizes/offsets in [2^18, 2^24): the values the
                //!< zero-region *filter bits* exist to reject
    Floats,    //!< IEEE-754 singles around 1.0
    RandomBits, //!< uniform random words (compressed-data stand-in)
};

/**
 * Allocate and fill a @p bytes-sized region with non-pointer data.
 * @return base virtual address of the region.
 */
Addr buildDataRegion(HeapAllocator &heap, std::uint32_t bytes,
                     DataKind kind, Rng &rng);

/**
 * Fill the payload words of a node (everything except the pointer
 * slots listed) with plausible non-pointer data.
 */
void fillPayload(HeapAllocator &heap, Addr node, std::uint32_t bytes,
                 const std::vector<std::uint32_t> &skip_offsets,
                 Rng &rng);

} // namespace cdp

#endif // CDP_WORKLOADS_BUILDERS_HH
