/**
 * @file
 * Out-of-order window core model.
 *
 * A trace-driven approximation of the paper's Pentium-4-like machine
 * (Table 1): 3-wide fetch/issue/retire, 128-entry reorder buffer,
 * 48-entry load and 32-entry store buffers, 16K-entry gshare with a
 * 28-cycle misprediction bubble, and per-register dependency timing.
 *
 * Uops issue in program order (each cycle up to issueWidth of them)
 * but *complete* out of order: a uop's start time is the max of its
 * source registers' ready cycles, so independent loads overlap while
 * pointer-chasing loads serialize — exactly the memory-level-
 * parallelism behaviour the content prefetcher targets. Retirement
 * is in order and bounded by the ROB, which is what ultimately
 * converts load miss latency into lost cycles.
 */

#ifndef CDP_CPU_OOO_CORE_HH
#define CDP_CPU_OOO_CORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "cpu/gshare.hh"
#include "cpu/uop.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/**
 * Interface the core uses to talk to the memory hierarchy.
 */
class CoreMemIf
{
  public:
    virtual ~CoreMemIf() = default;

    /**
     * Issue a demand load.
     * @param pc load PC
     * @param vaddr effective address
     * @param now cycle the address is available
     * @param pointer_load stat tag: recurrence-pointer load
     * @return cycle the loaded value is available (load-to-use)
     */
    virtual Cycle load(Addr pc, Addr vaddr, Cycle now,
                       bool pointer_load) = 0;

    /**
     * Issue a demand store.
     * @return cycle the store has been accepted
     */
    virtual Cycle store(Addr pc, Addr vaddr, Cycle now) = 0;

    /** Advance memory-system background work (fills, arbiters). */
    virtual void advance(Cycle now) = 0;

    /** nextEventCycle() value meaning "nothing pending at all". */
    static constexpr Cycle noPendingEvent = ~Cycle{0};

    /**
     * Earliest future cycle at which advance() could make progress.
     * Purely an optimization hint for the caller: skipping advance()
     * calls strictly before this cycle must not change any
     * architectural state, statistic, or RNG stream. The default (0)
     * preserves the legacy call-every-cycle contract; noPendingEvent
     * means no background work can exist until the next load/store.
     * The hint is invalidated by any load()/store()/advance() call,
     * after which the caller must re-query.
     */
    virtual Cycle nextEventCycle() const { return 0; }
};

/** Core sizing knobs (defaults = Table 1). */
struct CoreConfig
{
    unsigned issueWidth = 3;
    unsigned retireWidth = 3;
    unsigned robEntries = 128;
    unsigned loadBuffer = 48;
    unsigned storeBuffer = 32;
    unsigned mispredictPenalty = 28;
    unsigned bpEntries = 16384;
    unsigned aluLatency = 1;
    unsigned fpLatency = 3;
};

/**
 * The timing core. Pulls uops from a UopSource, times them against a
 * CoreMemIf, and accumulates cycles/uops.
 */
class OooCore
{
  public:
    OooCore(const CoreConfig &cfg, UopSource &source, CoreMemIf &mem,
            StatGroup *stats = nullptr, const std::string &name = "core");

    /**
     * Run until @p n more uops have retired.
     * @return cycles elapsed during this call
     */
    Cycle run(std::uint64_t n);

    Cycle currentCycle() const { return cycle; }
    std::uint64_t retiredUops() const { return uopsRetired.value(); }

    /** IPC over everything retired so far (after last stat reset). */
    double ipc() const
    {
        const Cycle c = cyclesSince(cycle, cycleBase);
        return c ? static_cast<double>(uopsRetired.value()) / c : 0.0;
    }

    /**
     * Restart measurement: zeroes the cycle base so ipc() reflects
     * only post-warm-up execution. Stat counters are reset separately
     * via the owning StatGroup.
     */
    void resetMeasurement() { cycleBase = cycle; }

    const Gshare &branchPredictor() const { return bp; }

    /**
     * Serialize the pipeline state: clock, ROB occupancy, register
     * ready times, the stalled fetch, and the branch predictor. The
     * uop source serializes itself elsewhere (it belongs to the
     * workload, not the core).
     */
    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    struct RobEntry
    {
        Cycle complete = 0;
        bool isLoad = false;
        bool isStore = false;
    };

    /** Advance one cycle; may skip ahead when fully stalled. */
    void step();

    /** Retire completed uops from the ROB head, up to retireWidth. */
    void retireStage();

    /** Fetch/issue up to issueWidth uops. */
    void issueStage();

    // cdplint: transient(cfg) -- construction-time geometry; loadState cross-checks compatibility, it never overwrites
    CoreConfig cfg;
    // cdplint: transient(source, mem) -- wiring references rebuilt by the restoring harness, not state
    UopSource &source;
    CoreMemIf &mem;
    Gshare bp;

    Cycle cycle = 0;
    Cycle cycleBase = 0;
    Cycle fetchStalledUntil = 0;
    // cdplint: transient(memWake) -- cached mem.nextEventCycle() hint; reset to 0 (re-query) on restore, so it never carries state
    /** Cached wake hint: skip mem.advance() while cycle < memWake. */
    Cycle memWake = 0;
    Uop pending{};
    bool havePending = false;
    /**
     * The ROB as a fixed-capacity ring (capacity = cfg.robEntries,
     * sized at construction): one push and one pop per retired uop
     * made deque segment management a measurable cost. robHead is
     * the oldest entry; robCount the occupancy. saveState writes the
     * logical FIFO (robCount entries in age order); loadState
     * rebuilds it compacted from slot zero.
     */
    std::vector<RobEntry> robBuf;
    std::size_t robHead = 0;
    std::size_t robCount = 0;
    // cdplint: transient(loadsInRob, storesInRob) -- recomputed from the restored ROB contents in loadState
    unsigned loadsInRob = 0;
    unsigned storesInRob = 0;
    Cycle regReady[numRegs] = {};

    // cdplint: transient(dummyGroup, uopsRetired, issuedLoads, issuedStores, issuedBranches, robFullCycles, fetchStallCycles) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyGroup;
    Scalar uopsRetired;
    Scalar issuedLoads;
    Scalar issuedStores;
    Scalar issuedBranches;
    Scalar robFullCycles;
    Scalar fetchStallCycles;
};

} // namespace cdp

#endif // CDP_CPU_OOO_CORE_HH
