/**
 * @file
 * gshare branch predictor — Table 1 specifies a 16K-entry gshare with
 * a 28-cycle misprediction penalty (the penalty is charged by the
 * core, not here).
 */

#ifndef CDP_CPU_GSHARE_HH
#define CDP_CPU_GSHARE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/**
 * Global-history-xor-PC predictor with 2-bit saturating counters.
 */
class Gshare
{
  public:
    /**
     * @param entries pattern-history-table entries (power of two)
     */
    explicit Gshare(unsigned entries = 16384, StatGroup *stats = nullptr,
                    const std::string &name = "bp");

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Update predictor state with the actual outcome and record
     * whether the earlier prediction was correct.
     * @return true when the prediction was correct
     */
    bool update(Addr pc, bool taken);

    std::uint64_t lookupCount() const { return lookups.value(); }
    std::uint64_t mispredictCount() const { return mispredicts.value(); }

    /** Serialize PHT + global history (checkpointing). */
    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    unsigned index(Addr pc) const
    {
        return static_cast<unsigned>(((pc >> 2) ^ history) & mask);
    }

    // cdplint: transient(mask) -- derived from the PHT size at construction; geometry must match across restore
    unsigned mask;
    std::vector<std::uint8_t> pht; //!< 2-bit counters
    std::uint32_t history = 0;

    // cdplint: transient(dummyGroup, lookups, mispredicts) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyGroup;
    Scalar lookups;
    Scalar mispredicts;
};

} // namespace cdp

#endif // CDP_CPU_GSHARE_HH
