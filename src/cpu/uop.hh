/**
 * @file
 * Micro-operation (uop) definitions and the uop-source interface.
 *
 * The paper's simulator executes Long Instruction Traces through a
 * pop-level IA-32 model. Our substitution feeds the timing core from
 * *generated* uop streams: workload generators walk real data
 * structures living in the simulated memory and emit loads whose
 * addresses come from genuinely loaded pointer values, plus the ALU,
 * branch, and store padding that gives each benchmark its compute
 * density.
 */

#ifndef CDP_CPU_UOP_HH
#define CDP_CPU_UOP_HH

#include <cstdint>

#include "common/types.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Functional class of a uop. */
enum class UopType : std::uint8_t
{
    Alu,
    Fp,
    Load,
    Store,
    Branch,
    Nop,
};

/** Number of architectural registers modeled for dependency timing. */
constexpr unsigned numRegs = 32;

/** Register id meaning "no register". */
constexpr std::int8_t noReg = -1;

/**
 * One micro-operation. Dependencies are expressed through up to two
 * source registers and one destination register; the timing core
 * tracks per-register ready cycles, so pointer chases serialize
 * naturally (each hop's address register is written by the previous
 * hop's load).
 */
struct Uop
{
    UopType type = UopType::Nop;
    Addr pc = 0;
    Addr vaddr = 0;          //!< effective address (Load/Store only)
    std::int8_t src0 = noReg;
    std::int8_t src1 = noReg;
    std::int8_t dst = noReg;
    bool taken = false;      //!< actual branch outcome (Branch only)
    bool pointerLoad = false; //!< load of a recurrence pointer (stats)
};

namespace snap
{
/** Serialize one uop field-by-field (checkpointing). */
void saveUop(Writer &w, const Uop &u);
/** Read a uop written by saveUop. */
Uop loadUop(Reader &r);
} // namespace snap

/**
 * Infinite stream of uops; workload generators implement this.
 */
class UopSource
{
  public:
    virtual ~UopSource() = default;

    /** Produce the next uop of the stream. */
    virtual Uop next() = 0;

    /** Short workload name for reports. */
    virtual const char *name() const = 0;

    /**
     * Serialize generator state for checkpointing. Sources that keep
     * no replayable state (e.g. live trace capture) must override
     * with an implementation that throws SnapshotError — the defaults
     * here do exactly that so forgetting an override fails loudly
     * instead of silently desynchronizing the stream.
     */
    virtual void saveState(snap::Writer &w) const;
    virtual void loadState(snap::Reader &r);
};

} // namespace cdp

#endif // CDP_CPU_UOP_HH
