#include "cpu/gshare.hh"

#include <stdexcept>

#include "snapshot/ckpt_io.hh"

namespace cdp
{

Gshare::Gshare(unsigned entries, StatGroup *stats, const std::string &name)
    : mask(entries - 1), pht(entries, 1),
      lookups(stats ? *stats : dummyGroup, name + ".lookups",
              "branch predictions made"),
      mispredicts(stats ? *stats : dummyGroup, name + ".mispredicts",
                  "branches mispredicted")
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        throw std::invalid_argument("Gshare: entries must be power of two");
}

bool
Gshare::predict(Addr pc) const
{
    return pht[index(pc)] >= 2;
}

bool
Gshare::update(Addr pc, bool taken)
{
    ++lookups;
    const unsigned idx = index(pc);
    const bool predicted = pht[idx] >= 2;

    std::uint8_t &ctr = pht[idx];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    history = (history << 1) | (taken ? 1u : 0u);

    const bool correct = predicted == taken;
    if (!correct)
        ++mispredicts;
    return correct;
}

void
Gshare::saveState(snap::Writer &w) const
{
    w.u64(pht.size());
    w.u32(history);
    w.bytes(pht.data(), pht.size());
}

void
Gshare::loadState(snap::Reader &r)
{
    r.expectU64(pht.size(), "branch-predictor PHT entries");
    history = r.u32();
    r.bytes(pht.data(), pht.size());
    for (const std::uint8_t ctr : pht) {
        if (ctr > 3)
            r.fail("branch-predictor counter " + std::to_string(ctr) +
                   " exceeds the 2-bit range");
    }
}

} // namespace cdp
