#include "cpu/ooo_core.hh"

#include <algorithm>
#include <limits>
#include <string>

#include "snapshot/ckpt_io.hh"

namespace cdp
{

namespace snap
{

void
saveUop(Writer &w, const Uop &u)
{
    w.u8(static_cast<std::uint8_t>(u.type));
    w.u32(u.pc);
    w.u32(u.vaddr);
    w.u8(static_cast<std::uint8_t>(u.src0));
    w.u8(static_cast<std::uint8_t>(u.src1));
    w.u8(static_cast<std::uint8_t>(u.dst));
    w.boolean(u.taken);
    w.boolean(u.pointerLoad);
}

namespace
{

std::int8_t
loadRegId(Reader &r)
{
    const std::uint8_t raw = r.u8();
    const auto reg = static_cast<std::int8_t>(raw);
    if (reg != noReg && (reg < 0 || reg >= static_cast<int>(numRegs)))
        r.fail("uop register id " + std::to_string(raw) +
               " outside the architectural file");
    return reg;
}

} // namespace

Uop
loadUop(Reader &r)
{
    Uop u;
    const std::uint8_t type = r.u8();
    if (type > static_cast<std::uint8_t>(UopType::Nop))
        r.fail("unknown uop type " + std::to_string(type));
    u.type = static_cast<UopType>(type);
    u.pc = r.u32();
    u.vaddr = r.u32();
    u.src0 = loadRegId(r);
    u.src1 = loadRegId(r);
    u.dst = loadRegId(r);
    u.taken = r.boolean();
    u.pointerLoad = r.boolean();
    return u;
}

} // namespace snap

void
UopSource::saveState(snap::Writer &) const
{
    throw snap::SnapshotError(std::string("uop source '") + name() +
                              "' does not support checkpointing");
}

void
UopSource::loadState(snap::Reader &)
{
    throw snap::SnapshotError(std::string("uop source '") + name() +
                              "' does not support checkpointing");
}

OooCore::OooCore(const CoreConfig &cfg, UopSource &source, CoreMemIf &mem,
                 StatGroup *stats, const std::string &name)
    : cfg(cfg), source(source), mem(mem),
      bp(cfg.bpEntries, stats, name + ".bp"),
      uopsRetired(stats ? *stats : dummyGroup, name + ".retired_uops",
                  "uops retired"),
      issuedLoads(stats ? *stats : dummyGroup, name + ".loads",
                  "demand loads issued"),
      issuedStores(stats ? *stats : dummyGroup, name + ".stores",
                   "demand stores issued"),
      issuedBranches(stats ? *stats : dummyGroup, name + ".branches",
                     "branches executed"),
      robFullCycles(stats ? *stats : dummyGroup, name + ".rob_full_cycles",
                    "cycles issue blocked on a full ROB"),
      fetchStallCycles(stats ? *stats : dummyGroup,
                       name + ".fetch_stall_cycles",
                       "cycles fetch was squashed by a mispredict")
{
    robBuf.resize(cfg.robEntries);
}

void
OooCore::retireStage()
{
    for (unsigned i = 0; i < cfg.retireWidth && robCount != 0; ++i) {
        const RobEntry &head = robBuf[robHead];
        if (head.complete > cycle)
            break;
        if (head.isLoad)
            --loadsInRob;
        if (head.isStore)
            --storesInRob;
        robHead = robHead + 1 == robBuf.size() ? 0 : robHead + 1;
        --robCount;
        ++uopsRetired;
    }
}

void
OooCore::issueStage()
{
    if (cycle < fetchStalledUntil) {
        ++fetchStallCycles;
        return;
    }

    for (unsigned i = 0; i < cfg.issueWidth; ++i) {
        if (robCount >= cfg.robEntries) {
            if (i == 0)
                ++robFullCycles;
            break;
        }
        if (!havePending) {
            pending = source.next();
            havePending = true;
        }
        const Uop &u = pending;
        if (u.type == UopType::Load && loadsInRob >= cfg.loadBuffer)
            break;
        if (u.type == UopType::Store && storesInRob >= cfg.storeBuffer)
            break;
        havePending = false;

        Cycle ready = cycle;
        if (u.src0 != noReg)
            ready = std::max(ready, regReady[u.src0]);
        if (u.src1 != noReg)
            ready = std::max(ready, regReady[u.src1]);

        Cycle complete = ready;
        bool mispredicted = false;
        switch (u.type) {
          case UopType::Alu:
          case UopType::Nop:
            complete = ready + cfg.aluLatency;
            break;
          case UopType::Fp:
            complete = ready + cfg.fpLatency;
            break;
          case UopType::Load:
            complete = mem.load(u.pc, u.vaddr, ready, u.pointerLoad);
            ++issuedLoads;
            memWake = mem.nextEventCycle(); // load may have (re)scheduled fills
            break;
          case UopType::Store:
            complete = mem.store(u.pc, u.vaddr, ready);
            ++issuedStores;
            memWake = mem.nextEventCycle(); // store may have (re)scheduled fills
            break;
          case UopType::Branch:
            complete = ready + cfg.aluLatency;
            ++issuedBranches;
            mispredicted = !bp.update(u.pc, u.taken);
            break;
        }

        if (u.dst != noReg)
            regReady[u.dst] = complete;

        std::size_t tail = robHead + robCount;
        if (tail >= robBuf.size())
            tail -= robBuf.size();
        robBuf[tail] = {complete, u.type == UopType::Load,
                        u.type == UopType::Store};
        ++robCount;
        if (u.type == UopType::Load)
            ++loadsInRob;
        if (u.type == UopType::Store)
            ++storesInRob;

        if (mispredicted) {
            // Fetch resumes a fixed bubble after the branch resolves.
            fetchStalledUntil = complete + cfg.mispredictPenalty;
            break;
        }
    }
}

void
OooCore::step()
{
    // Only call into the memory system when its wake hint says the
    // call could matter. The hint is conservative (0 = legacy
    // every-cycle contract, e.g. for mocks that keep the CoreMemIf
    // default), and every load/store refreshes it, so skipped calls
    // are exactly the ones advance() guarantees are pure no-ops.
    if (memWake <= cycle) {
        mem.advance(cycle);
        memWake = mem.nextEventCycle();
    }

    const std::uint64_t retired_before = uopsRetired.value();
    const std::size_t rob_before = robCount;
    retireStage();
    issueStage();
    const bool progressed = uopsRetired.value() != retired_before ||
                            robCount != rob_before;

    Cycle next = cycle + 1;
    if (!progressed) {
        // Fully stalled: skip ahead to the next event that can
        // unblock us — the ROB head completing or fetch resuming.
        Cycle wake = std::numeric_limits<Cycle>::max();
        if (robCount != 0)
            wake = std::min(wake, robBuf[robHead].complete);
        if (cycle < fetchStalledUntil)
            wake = std::min(wake, fetchStalledUntil);
        if (wake != std::numeric_limits<Cycle>::max())
            next = std::max(next, wake);
    }
    cycle = next;
}

Cycle
OooCore::run(std::uint64_t n)
{
    const Cycle start = cycle;
    const std::uint64_t target = uopsRetired.value() + n;
    while (uopsRetired.value() < target)
        step();
    return cyclesSince(cycle, start);
}

void
OooCore::saveState(snap::Writer &w) const
{
    w.u64(cycle);
    w.u64(cycleBase);
    w.u64(fetchStalledUntil);
    w.boolean(havePending);
    snap::saveUop(w, pending);
    w.u64(robCount);
    for (std::size_t i = 0; i < robCount; ++i) {
        std::size_t idx = robHead + i;
        if (idx >= robBuf.size())
            idx -= robBuf.size();
        const RobEntry &e = robBuf[idx];
        w.u64(e.complete);
        w.boolean(e.isLoad);
        w.boolean(e.isStore);
    }
    for (const Cycle ready : regReady)
        w.u64(ready);
    bp.saveState(w);
}

void
OooCore::loadState(snap::Reader &r)
{
    cycle = r.u64();
    cycleBase = r.u64();
    fetchStalledUntil = r.u64();
    memWake = 0; // re-query the wake hint on the first step
    havePending = r.boolean();
    pending = snap::loadUop(r);

    const std::uint64_t occupancy = r.u64();
    if (occupancy > cfg.robEntries)
        r.fail("ROB occupancy " + std::to_string(occupancy) +
               " exceeds capacity " + std::to_string(cfg.robEntries));
    robCount = occupancy;
    robHead = 0;
    loadsInRob = 0;
    storesInRob = 0;
    for (std::uint64_t i = 0; i < occupancy; ++i) {
        RobEntry e;
        e.complete = r.u64();
        e.isLoad = r.boolean();
        e.isStore = r.boolean();
        loadsInRob += e.isLoad ? 1 : 0;
        storesInRob += e.isStore ? 1 : 0;
        robBuf[i] = e;
    }
    for (Cycle &ready : regReady)
        ready = r.u64();
    bp.loadState(r);
}

} // namespace cdp
