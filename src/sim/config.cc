#include "sim/config.hh"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace cdp
{

namespace
{

std::uint64_t
toU64(const std::string &v)
{
    return std::stoull(v);
}

bool
toBool(const std::string &v)
{
    return v == "1" || v == "true" || v == "on" || v == "yes";
}

} // namespace

void
SimConfig::scaleRunLength(double factor)
{
    if (factor <= 0.0)
        throw std::invalid_argument("scaleRunLength: factor must be > 0");
    warmupUops = static_cast<std::uint64_t>(warmupUops * factor);
    measureUops = static_cast<std::uint64_t>(measureUops * factor);
    if (warmupUops == 0)
        warmupUops = 1;
    if (measureUops == 0)
        measureUops = 1;
}

bool
SimConfig::applyOverride(const std::string &key, const std::string &value)
{
    // Core.
    if (key == "core.issue_width") core.issueWidth = toU64(value);
    else if (key == "core.rob") core.robEntries = toU64(value);
    else if (key == "core.load_buffer") core.loadBuffer = toU64(value);
    else if (key == "core.store_buffer") core.storeBuffer = toU64(value);
    else if (key == "core.mispredict_penalty")
        core.mispredictPenalty = toU64(value);
    // Memory hierarchy.
    else if (key == "mem.l1_kb") mem.l1Bytes = toU64(value) * 1024;
    else if (key == "mem.l2_kb") mem.l2Bytes = toU64(value) * 1024;
    else if (key == "mem.l2_ways") mem.l2Ways = toU64(value);
    else if (key == "mem.dtlb_entries") mem.dtlbEntries = toU64(value);
    else if (key == "mem.dtlb_ways") mem.dtlbWays = toU64(value);
    else if (key == "mem.bus_latency") mem.busLatency = toU64(value);
    else if (key == "mem.bus_occupancy") mem.busOccupancy = toU64(value);
    else if (key == "mem.bus_queue") mem.busQueueSize = toU64(value);
    else if (key == "mem.l2_queue") mem.l2QueueSize = toU64(value);
    // Stride prefetcher.
    else if (key == "stride.enabled") stride.enabled = toBool(value);
    else if (key == "stride.policy") {
        if (value != "stride" && value != "nextline")
            throw std::invalid_argument(
                "stride.policy must be 'stride' or 'nextline'");
        stride.policy = value;
    }
    else if (key == "stride.degree") stride.degree = toU64(value);
    else if (key == "stride.entries") stride.tableEntries = toU64(value);
    // Markov prefetcher.
    else if (key == "markov.enabled") markov.enabled = toBool(value);
    else if (key == "markov.stab_kb") markov.stabBytes = toU64(value) * 1024;
    else if (key == "markov.fanout") markov.fanout = toU64(value);
    // Content prefetcher.
    else if (key == "cdp.enabled") cdp.enabled = toBool(value);
    else if (key == "cdp.compare_bits") cdp.vam.compareBits = toU64(value);
    else if (key == "cdp.filter_bits") cdp.vam.filterBits = toU64(value);
    else if (key == "cdp.align_bits") cdp.vam.alignBits = toU64(value);
    else if (key == "cdp.scan_step") cdp.vam.scanStep = toU64(value);
    else if (key == "cdp.depth") cdp.depthThreshold = toU64(value);
    else if (key == "cdp.next_lines") cdp.nextLines = toU64(value);
    else if (key == "cdp.prev_lines") cdp.prevLines = toU64(value);
    else if (key == "cdp.reinforce") cdp.reinforce = toBool(value);
    else if (key == "cdp.reinforce_min_delta")
        cdp.reinforceMinDelta = toU64(value);
    else if (key == "cdp.scan_page_walks")
        cdp.scanPageWalkFills = toBool(value);
    else if (key == "cdp.scan_width")
        cdp.scanWidthFills = toBool(value);
    // Adaptive VAM controller (Section 4.1 future work).
    else if (key == "adaptive.enabled") adaptive.enabled = toBool(value);
    else if (key == "adaptive.epoch")
        adaptive.epochPrefetches = toU64(value);
    else if (key == "adaptive.low_accuracy")
        adaptive.lowAccuracy = std::stod(value);
    else if (key == "adaptive.high_accuracy")
        adaptive.highAccuracy = std::stod(value);
    else if (key == "adaptive.adjust_width")
        adaptive.adjustWidth = toBool(value);
    // Pollution limit study.
    else if (key == "pollution.enabled") pollution.enabled = toBool(value);
    // Simulation scheduler (host-side; stats are mode-independent).
    else if (key == "sched.mode") {
        if (value != "wheel" && value != "legacy")
            throw std::invalid_argument(
                "sched.mode must be 'wheel' or 'legacy'");
        sched.mode = value;
    }
    // Lifecycle-event tracer (src/obs).
    else if (key == "trace.enabled") trace.enabled = toBool(value);
    else if (key == "trace.buffer") trace.bufferEvents = toU64(value);
    // Run control.
    else if (key == "workload") workload = value;
    else if (key == "seed") workloadSeed = toU64(value);
    else if (key == "warmup_uops") warmupUops = toU64(value);
    else if (key == "measure_uops") measureUops = toU64(value);
    else if (key == "scale") scaleRunLength(std::stod(value));
    else
        return false;
    return true;
}

void
SimConfig::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument(
                "expected key=value argument, got: " + arg);
        }
        const std::string key = arg.substr(0, eq);
        const std::string value = arg.substr(eq + 1);
        if (!applyOverride(key, value))
            throw std::invalid_argument("unknown config key: " + key);
    }
    // cdplint: allow(nondeterminism) -- CDP_SCALE is an explicit
    // host-side knob; its value is captured into the config and
    // echoed in the config summary, so runs remain reproducible.
    if (const char *scale = std::getenv("CDP_SCALE"))
        scaleRunLength(std::stod(scale));
}

std::string
SimConfig::summary() const
{
    std::ostringstream os;
    os << "machine: " << core.issueWidth << "-wide, ROB "
       << core.robEntries << ", LB " << core.loadBuffer << ", SB "
       << core.storeBuffer << ", bp gshare " << core.bpEntries
       << " (penalty " << core.mispredictPenalty << ")\n"
       << "mem: DL1 " << mem.l1Bytes / 1024 << "KB/" << mem.l1Ways
       << "w (" << mem.l1Latency << "cy), UL2 " << mem.l2Bytes / 1024
       << "KB/" << mem.l2Ways << "w (" << mem.l2Latency
       << "cy), DTLB " << mem.dtlbEntries << "/" << mem.dtlbWays
       << "w, bus " << mem.busLatency << "cy lat / "
       << mem.busOccupancy << "cy occ, queues L2=" << mem.l2QueueSize
       << " bus=" << mem.busQueueSize << "\n"
       << "stride: " << (stride.enabled ? "on" : "off") << " degree "
       << stride.degree << "; markov: "
       << (markov.enabled ? "on" : "off") << " stab "
       << markov.stabBytes / 1024 << "KB\n"
       << "cdp: " << (cdp.enabled ? "on" : "off") << " vam "
       << cdp.vam.label() << " depth " << cdp.depthThreshold << " "
       << cdp.widthLabel() << " reinforce "
       << (cdp.reinforce ? "on" : "off") << " (delta "
       << cdp.reinforceMinDelta << ")\n"
       << "run: workload " << workload << " seed " << workloadSeed
       << " warmup " << warmupUops << " measure " << measureUops;
    return os.str();
}

} // namespace cdp
