#include "sim/event_wheel.hh"

#include <algorithm>
#include <stdexcept>

namespace cdp
{

EventWheel::EventWheel() : slots(slotCount)
{
}

void
EventWheel::place(Event e)
{
    if (inWindow(e.when)) {
        const std::size_t s = static_cast<std::size_t>(e.when & slotMask);
        slots[s].push_back(e);
        occupied[s >> 6] |= std::uint64_t{1} << (s & 63);
    } else {
        overflow[e.when].push_back(e);
    }
}

void
EventWheel::schedule(Cycle when, Addr payload)
{
    if (when < base)
        throw std::logic_error(
            "EventWheel: scheduling into the past (when < base)");
    Event e;
    e.when = when;
    e.seq = nextSeq++;
    e.payload = payload;
    if (count == 0 || when < minDue)
        minDue = when;
    place(e);
    ++count;
}

void
EventWheel::recomputeMin()
{
    // The slot ring holds at most one cycle value per slot, so the
    // earliest in-window deadline is the minimum over occupied slots
    // — ring order does not matter for a minimum.
    Cycle best = ~Cycle{0};
    bool found = false;
    for (std::size_t w = 0; w < bitmapWords; ++w) {
        std::uint64_t bits = occupied[w];
        while (bits) {
            const unsigned b =
                static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            const Cycle c = slots[(w << 6) | b].front().when;
            if (!found || c < best) {
                best = c;
                found = true;
            }
        }
    }
    if (!overflow.empty() &&
        (!found || overflow.begin()->first < best)) {
        best = overflow.begin()->first;
        found = true;
    }
    minDue = best;
    // Turn the wheel: every pending event is >= the new minimum, so
    // it is a valid base, and advancing it may bring overflow events
    // inside the horizon.
    base = best;
    while (!overflow.empty() && inWindow(overflow.begin()->first)) {
        auto node = overflow.extract(overflow.begin());
        for (Event &e : node.mapped())
            place(e);
    }
}

std::optional<EventWheel::Event>
EventWheel::popDue(Cycle now)
{
    if (count == 0 || minDue > now)
        return std::nullopt;

    Event e;
    const std::size_t s = static_cast<std::size_t>(minDue & slotMask);
    std::vector<Event> &slot = slots[s];
    if (!slot.empty() && slot.front().when == minDue) {
        e = slot.front();
        slot.erase(slot.begin());
        if (slot.empty())
            occupied[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
    } else {
        // The minimum still sits in overflow: possible only when the
        // whole ring window between base and minDue is empty.
        auto it = overflow.begin();
        std::vector<Event> &q = it->second;
        e = q.front();
        q.erase(q.begin());
        if (q.empty())
            overflow.erase(it);
    }
    --count;

    if (count == 0)
        base = std::max(base, e.when);
    else if ((slots[s].empty() || slots[s].front().when != minDue) &&
             (overflow.empty() || overflow.begin()->first != minDue))
        recomputeMin();
    return e;
}

std::vector<EventWheel::Event>
EventWheel::sorted() const
{
    std::vector<Event> out;
    out.reserve(count);
    for (std::size_t w = 0; w < bitmapWords; ++w) {
        std::uint64_t bits = occupied[w];
        while (bits) {
            const unsigned b =
                static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            const std::vector<Event> &slot = slots[(w << 6) | b];
            out.insert(out.end(), slot.begin(), slot.end());
        }
    }
    for (const auto &[when, q] : overflow) {
        (void)when;
        out.insert(out.end(), q.begin(), q.end());
    }
    std::sort(out.begin(), out.end(),
              [](const Event &a, const Event &b) {
                  return a.when != b.when ? a.when < b.when
                                          : a.seq < b.seq;
              });
    return out;
}

} // namespace cdp
