#include "sim/simulator.hh"

namespace cdp
{

namespace
{

/** Field-wise difference of two counter snapshots. */
MemorySystem::Counters
diffCounters(const MemorySystem::Counters &a,
             const MemorySystem::Counters &b)
{
    MemorySystem::Counters d;
#define CDP_DIFF(f) d.f = a.f - b.f
    CDP_DIFF(demandLoads);
    CDP_DIFF(l1Misses);
    CDP_DIFF(l2DemandAccesses);
    CDP_DIFF(l2DemandMisses);
    CDP_DIFF(maskFullStride);
    CDP_DIFF(maskPartialStride);
    CDP_DIFF(maskFullCdp);
    CDP_DIFF(maskPartialCdp);
    CDP_DIFF(strideIssued);
    CDP_DIFF(cdpIssued);
    CDP_DIFF(cdpIssuedOverlap);
    CDP_DIFF(cdpUsefulOverlap);
    CDP_DIFF(strideUseful);
    CDP_DIFF(cdpUseful);
    CDP_DIFF(pfDropL2Hit);
    CDP_DIFF(pfDropInflight);
    CDP_DIFF(pfDropQueued);
    CDP_DIFF(pfDropBusFull);
    CDP_DIFF(pfDropUnmapped);
    CDP_DIFF(pfDropArbiter);
    CDP_DIFF(demandWalks);
    CDP_DIFF(prefetchWalks);
    CDP_DIFF(promotions);
    CDP_DIFF(rescans);
    CDP_DIFF(reinforcePromotions);
    CDP_DIFF(pollutionInjected);
    CDP_DIFF(prefetchEvictedUnused);
    for (unsigned i = 0; i < provDepthBuckets; ++i) {
        CDP_DIFF(depthAccurate[i]);
        CDP_DIFF(depthLate[i]);
        CDP_DIFF(depthDropped[i]);
        CDP_DIFF(depthPolluting[i]);
    }
#undef CDP_DIFF
    return d;
}

} // namespace

Simulator::Simulator(const SimConfig &cfg)
    : cfg(cfg),
      frames(/*base_pa=*/0, cfg.physFrames, /*scatter=*/true,
             cfg.workloadSeed ^ 0xabcdef),
      pageTable(store, frames)
{
    heapAlloc = std::make_unique<HeapAllocator>(
        store, pageTable, frames, defaultHeapBase,
        /*align_noise=*/0.05, cfg.workloadSeed ^ 0x5eed);
    source = makeBenchmark(findBenchmark(cfg.workload), *heapAlloc,
                           cfg.workloadSeed);
    memsys = std::make_unique<MemorySystem>(cfg, store, pageTable,
                                            &statGroup);
    cpu = std::make_unique<OooCore>(cfg.core, *source, *memsys,
                                    &statGroup);
}

void
Simulator::warmup(std::uint64_t uops)
{
    cpu->run(uops);
    memsys->checkInvariants();
}

RunResult
Simulator::snapshotDelta(Cycle cycles, std::uint64_t uops,
                         const MemorySystem::Counters &before) const
{
    RunResult r;
    r.workload = cfg.workload;
    r.cycles = cycles;
    r.uops = uops;
    r.ipc = cycles ? static_cast<double>(uops) / cycles : 0.0;
    r.mem = diffCounters(memsys->counters(), before);
    return r;
}

RunResult
Simulator::measure(std::uint64_t uops)
{
    statGroup.resetAll();
    memsys->resetCounters();
    cpu->resetMeasurement();
    const MemorySystem::Counters before{}; // just reset
    const std::uint64_t u0 = cpu->retiredUops();
    const Cycle cycles = cpu->run(uops);
    memsys->checkInvariants();
    return snapshotDelta(cycles, cpu->retiredUops() - u0, before);
}

RunResult
Simulator::runChunk(std::uint64_t uops)
{
    const MemorySystem::Counters before = memsys->counters();
    const std::uint64_t u0 = cpu->retiredUops();
    const Cycle cycles = cpu->run(uops);
    return snapshotDelta(cycles, cpu->retiredUops() - u0, before);
}

RunResult
Simulator::run()
{
    warmup(cfg.warmupUops);
    return measure(cfg.measureUops);
}

} // namespace cdp
