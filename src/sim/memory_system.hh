/**
 * @file
 * The full memory system of Figure 6: virtually indexed DL1,
 * physically indexed UL2, DTLB with hardware page walker, stride
 * prefetcher on the L1 miss stream, content prefetcher on the UL2
 * fill stream, optional Markov prefetcher on the UL2 miss stream,
 * priority arbiters, and the front-side bus.
 *
 * MemorySystem implements CoreMemIf: the core calls load()/store()
 * synchronously and gets back data-ready cycles; background work
 * (fill completion, fill-content scanning, chained prefetch issue,
 * prefetch-queue drain) happens in advance(), which the core calls
 * every cycle (with skip-ahead, so all bookkeeping is elapsed-time
 * based).
 *
 * Modeling notes (documented deviations, see DESIGN.md):
 *  - the bus is a single server with per-line occupancy, so queueing
 *    delay emerges from occupancy rather than an explicit slot list;
 *  - prefetch outstandingness is capped at the bus queue size (32);
 *    demand misses are bounded by the 48-entry load buffer instead of
 *    competing for those 32 slots.
 */

#ifndef CDP_SIM_MEMORY_SYSTEM_HH
#define CDP_SIM_MEMORY_SYSTEM_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "core/adaptive_vam.hh"
#include "core/content_prefetcher.hh"
#include "cpu/ooo_core.hh"
#include "mem/backing_store.hh"
#include "memsys/bus.hh"
#include "memsys/cache.hh"
#include "memsys/mshr.hh"
#include "memsys/queued_arbiter.hh"
#include "obs/tracer.hh"
#include "prefetch/markov_prefetcher.hh"
#include "prefetch/nextline_prefetcher.hh"
#include "prefetch/stride_prefetcher.hh"
#include "sim/config.hh"
#include "sim/event_wheel.hh"
#include "stats/stat.hh"
#include "vm/page_table.hh"
#include "vm/page_walker.hh"
#include "vm/tlb.hh"

namespace cdp
{

/**
 * Depth buckets for per-depth provenance attribution: depths 0..4
 * get their own bucket, everything deeper lands in the last one.
 * Small and fixed so the counters stay a plain struct.
 */
constexpr unsigned provDepthBuckets = 6;

/** Clamp a chain depth into a provenance bucket index. */
constexpr unsigned
provDepthBucket(unsigned depth)
{
    return depth < provDepthBuckets ? depth : provDepthBuckets - 1;
}

/**
 * The complete Figure 6 memory hierarchy.
 */
class MemorySystem : public CoreMemIf
{
  public:
    MemorySystem(const SimConfig &cfg, BackingStore &store,
                 PageTable &page_table, StatGroup *stats);

    // CoreMemIf
    Cycle load(Addr pc, Addr vaddr, Cycle now, bool pointer_load) override;
    Cycle store(Addr pc, Addr vaddr, Cycle now) override;
    void advance(Cycle now) override;
    Cycle nextEventCycle() const override;

    /** Drain every in-flight transaction (end-of-run settling). */
    void drainAll(Cycle now);

    /**
     * Audit every structural invariant of the hierarchy (caches,
     * MSHRs, arbiter, TLB, request-lifecycle accounting). Aborts with
     * a state dump on the first violation. Compiled to a no-op unless
     * the build enables CDP_ENABLE_CHECKS; checked builds also invoke
     * it periodically from advance() and at drain points.
     */
    void checkInvariants() const;

    // Component access for tests and benches.
    Cache &l1() { return dl1; }
    Cache &l2() { return ul2; }
    Tlb &dtlb() { return dataTlb; }
    /** Lifecycle-event tracer (inert unless cfg.trace.enabled). */
    obs::Tracer &tracer() { return trc; }
    const obs::Tracer &tracer() const { return trc; }
    ContentPrefetcher &contentPf() { return cdp; }

    /**
     * Switch the content-prefetcher configuration live, updating both
     * the prefetcher and this system's own copy (depth suppression,
     * reinforcement, and scan gating read the latter). Meant for
     * quiesce points only: restoring a warm checkpoint into a machine
     * built with a different cdp.* config is defined to be equivalent
     * to calling this on the checkpointing machine at its quiesce
     * point (see DESIGN.md §11).
     */
    void reconfigureCdp(const CdpConfig &new_cfg);
    const AdaptiveVamController &adaptiveCtl() const { return adaptive; }
    StridePrefetcher &stridePf() { return stride; }
    MarkovPrefetcher *markovPf() { return markov.get(); }
    const Bus &frontBus() const { return bus; }

    /** Aggregate counters the benches read out. */
    struct Counters
    {
        // Demand-side accounting.
        std::uint64_t demandLoads = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t l2DemandAccesses = 0;
        std::uint64_t l2DemandMisses = 0; //!< true misses (fresh fills)
        // Figure 10 buckets: how demand L2 lookups that would have
        // missed were (not) masked.
        std::uint64_t maskFullStride = 0;
        std::uint64_t maskPartialStride = 0;
        std::uint64_t maskFullCdp = 0;
        std::uint64_t maskPartialCdp = 0;
        // Prefetch accounting per class. strideIssued covers both
        // history prefetchers (Markov requests share the stride
        // priority class).
        std::uint64_t strideIssued = 0;
        std::uint64_t cdpIssued = 0;
        std::uint64_t cdpIssuedOverlap = 0; //!< stride also covered it
        std::uint64_t cdpUsefulOverlap = 0;
        std::uint64_t strideUseful = 0;
        std::uint64_t cdpUseful = 0;
        // Drop reasons.
        std::uint64_t pfDropL2Hit = 0;
        std::uint64_t pfDropInflight = 0;
        std::uint64_t pfDropQueued = 0;
        std::uint64_t pfDropBusFull = 0;
        std::uint64_t pfDropUnmapped = 0;
        std::uint64_t pfDropArbiter = 0;
        // TLB / walks.
        std::uint64_t demandWalks = 0;
        std::uint64_t prefetchWalks = 0;
        // Reinforcement.
        std::uint64_t promotions = 0;
        std::uint64_t rescans = 0;
        /** Depth-tag promotions recorded by reinforceOnHit alone
         *  (promotions also counts arbiter extractions). */
        std::uint64_t reinforcePromotions = 0;
        // Pollution study.
        std::uint64_t pollutionInjected = 0;
        // Unused prefetched lines evicted (accuracy complement).
        std::uint64_t prefetchEvictedUnused = 0;
        // Per-depth provenance attribution for content prefetches
        // (index = provDepthBucket(chain depth)):
        //  accurate  — first demand touch of a completed prefetch
        //  late      — demand promoted the prefetch while in flight
        //  dropped   — squashed before issue (any drop reason)
        //  polluting — evicted without ever being demanded
        std::uint64_t depthAccurate[provDepthBuckets] = {};
        std::uint64_t depthLate[provDepthBuckets] = {};
        std::uint64_t depthDropped[provDepthBuckets] = {};
        std::uint64_t depthPolluting[provDepthBuckets] = {};
    };

    const Counters &counters() const { return ctr; }

    /** Zero the counters (end of warm-up). */
    void resetCounters() { ctr = Counters{}; }

    /**
     * Serialize the entire hierarchy. Requires a quiesced machine —
     * no in-flight fills, MSHR entries, or queued prefetches (call
     * drainAll() first); throws snap::SnapshotError otherwise, so no
     * in-flight transaction ever needs encoding. The tracer is a pure
     * observer and is deliberately not checkpointed.
     */
    void saveState(snap::Writer &w) const;

    /**
     * Restore into a freshly constructed (still-empty) hierarchy. The
     * checkpointed *base* content-prefetcher config is compared with
     * this instance's: when equal, the checkpoint's live (possibly
     * adaptive-tuned) config is applied; when the restoring simulator
     * was built with deliberately different cdp knobs (a warm-fork
     * sweep), its own configuration wins.
     */
    void loadState(snap::Reader &r);

    /**
     * advance() calls that ran the full fixpoint body (vs returning
     * through the idle fast path). Diagnostic only: never serialized
     * and never a stat, so wheel and legacy stats dumps stay
     * byte-identical (tests assert the wheel actually skips).
     */
    std::uint64_t fullAdvanceCount() const { return fullAdvances; }
    /** advance() calls that returned through the idle fast path. */
    std::uint64_t skippedAdvanceCount() const { return skippedAdvances; }

  private:
    /**
     * Earliest future cycle at which advance() could do real work, or
     * CoreMemIf::noPendingEvent when nothing is in flight at all: the
     * minimum of the next fill completion and the first cycle the
     * arbiter head could win the bus (max of its enqueue time and the
     * bus going idle). Only meaningful when the per-call activities
     * (pollution RNG draw, rescan-debt repayment, adaptive epoch) are
     * quiescent — callers must check those separately. While the head
     * is bus-blocked, a legacy advance() merely accrues drain-pool
     * slots, and that accrual composes associatively under its cap,
     * so deferring it to the next full advance() is exact (DESIGN.md
     * §12).
     */
    Cycle nextProgressCycle() const
    {
        Cycle next = ~Cycle{0};
        if (!pendingFills.empty())
            next = pendingFills.nextDue();
        if (const MemRequest *head = l2Arbiter.peek())
            next = std::min(next,
                            std::max(head->enqueued, bus.freeCycle()));
        return next;
    }

    /**
     * True when advance(@p now) is provably a pure no-op: no fill is
     * due, the arbiter head (if any) cannot win the bus yet, no
     * rescan slot is owed, pollution injection (which draws the RNG
     * once per call) is off, and no adaptive epoch is pending.
     */
    bool idleAt(Cycle now) const
    {
        return !cfg.pollution.enabled && rescanDebt == 0 &&
               !adaptive.epochElapsed() && nextProgressCycle() > now;
    }

    /**
     * Charge a timed page walk at @p now.
     * @return walk latency in cycles, or nullopt on a fault
     *         (candidate pointing at unmapped memory).
     */
    std::optional<Cycle> timedWalk(Addr va, Cycle now, bool speculative);

    /** Translate @p va, walking on a DTLB miss; nullopt on fault. */
    std::optional<Addr> translate(Addr va, Cycle now, bool speculative,
                                  Cycle *extra_latency);

    /** Queue a prefetch into the L2 arbiter. */
    void enqueuePrefetch(ReqType type, Addr vaddr, Addr line_va,
                         unsigned depth, ReqId root, unsigned hop,
                         Cycle now, bool width_line = false);

    /** Count (and trace) one squashed prefetch at @p depth. */
    void noteDrop(ReqType type, unsigned depth, obs::DropReason why,
                  Addr addr, ReqId id, ReqId root, unsigned hop,
                  Cycle now);

    /** Pop prefetches from the L2 arbiter and put them on the bus. */
    void drainPrefetches(Cycle now);

    /** Issue one drained prefetch; returns false if squashed. */
    bool issuePrefetch(MemRequest req, Cycle now);

    /** Handle one completed fill (insert + scan + chain). */
    void completeFill(Addr line_pa, Cycle when);

    /** Scan fill/rescan content and enqueue the resulting requests. */
    void scanAndEnqueue(Addr line_pa, Addr trigger_ea, unsigned depth,
                        ReqId root, bool is_rescan, Cycle now);

    /** Reinforcement on an L2 hit (Section 3.4.2). */
    void reinforceOnHit(CacheLine &line, Addr line_pa, unsigned req_depth,
                        Addr req_vaddr, Cycle now);

    /** Inject one bad prefetch on an idle bus slot (Section 3.5). */
    void maybeInjectPollution(Cycle now);

    /** Baseline prefetcher predictions for one observed miss. */
    std::vector<Addr> baselineObserve(Addr pc, Addr vaddr);

    /** Did the baseline prefetcher recently cover @p line_va? */
    bool baselineRecentlyIssued(Addr line_va) const;

    /** Mutable only through reconfigureCdp(); geometry never changes. */
    SimConfig cfg;
    // cdplint: transient(backing, pageTable) -- wiring references; memory and page-table contents are checkpointed by their owners
    BackingStore &backing;
    PageTable &pageTable;

    Cache dl1;
    Cache ul2;
    Tlb dataTlb;
    // cdplint: transient(walker) -- stateless between requests; quiesce guarantees no walk is in flight
    PageWalker walker;
    StridePrefetcher stride;
    std::unique_ptr<NextLinePrefetcher> nextline; //!< alt baseline
    std::unique_ptr<MarkovPrefetcher> markov;
    ContentPrefetcher cdp;
    AdaptiveVamController adaptive;
    Bus bus;
    QueuedArbiter l2Arbiter;
    MshrFile mshrs;

    EventWheel pendingFills;
    unsigned prefetchInFlight = 0;
    // cdplint: transient(skipIdle, fullAdvances, skippedAdvances) -- scheduler-mode policy knob and diagnostic call counters; never architectural state
    /** sched.mode == "wheel": advance() may fast-path idle calls. */
    bool skipIdle = true;
    std::uint64_t fullAdvances = 0;
    std::uint64_t skippedAdvances = 0;
    Cycle lastDrain = 0;
    Cycle drainPool = 0; //!< banked L2-arbiter slots (1/cycle)
    unsigned rescanDebt = 0; //!< rescans consume L2 drain slots
    ReqId nextReqId = 1;
    std::uint64_t checkTick = 0; //!< advance() calls, for audit pacing
    /** Deepest cdp depthThreshold this machine has ever run with —
     *  including thresholds inherited through a checkpoint. Resident
     *  lines keep the depth tag they were filled with across
     *  reconfigureCdp(), so structure audits must bound depths by the
     *  high-water mark, not the current config. */
    unsigned cdpDepthHighWater = 1;
    Rng pollutionRng;
    // cdplint: transient(pollutionSpan) -- derived from the backing-store span at construction
    Addr pollutionSpan = 0; //!< physical span to pick bad lines from

    // cdplint: transient(trc) -- pure observer; trace buffers are diagnostic output, not architectural state
    obs::Tracer trc; //!< lifecycle-event recorder (pure observer)

    // cdplint: transient(dummyStatGroup, loadLatency, prefetchLead, provChainDepth, provFormulas) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyStatGroup; //!< sink when no group is supplied
    /** Demand-load latency distribution (cycles, log-ish buckets). */
    Distribution loadLatency;
    /** Cycles between a content prefetch's fill and its first demand
     *  touch (timeliness; Figure 10's full-vs-partial split). */
    Distribution prefetchLead;
    /** Chain depth of every issued content prefetch (provenance). */
    Distribution provChainDepth;
    /**
     * prov.* formulas mirroring the per-depth Counters arrays into
     * the stats dump (reserve()d up front: StatGroup keeps raw
     * pointers into this vector).
     */
    std::vector<Formula> provFormulas;

    Counters ctr;
};

} // namespace cdp

#endif // CDP_SIM_MEMORY_SYSTEM_HH
