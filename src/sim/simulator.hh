/**
 * @file
 * Top-level simulator: owns the simulated machine (memory, page
 * table, heap, workload, memory system, core) and runs the paper's
 * two-phase methodology — warm-up, statistics reset, measurement
 * (Section 2.2).
 */

#ifndef CDP_SIM_SIMULATOR_HH
#define CDP_SIM_SIMULATOR_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "cpu/ooo_core.hh"
#include "mem/backing_store.hh"
#include "mem/frame_allocator.hh"
#include "sim/config.hh"
#include "sim/memory_system.hh"
#include "stats/stat.hh"
#include "vm/page_table.hh"
#include "workloads/heap_allocator.hh"
#include "workloads/suite.hh"

namespace cdp
{

/** Results of one measured simulation phase. */
struct RunResult
{
    std::string workload;
    Cycle cycles = 0;
    std::uint64_t uops = 0;
    double ipc = 0.0;
    MemorySystem::Counters mem{};

    /** Demand L2 misses per 1000 uops (the paper's MPTU metric). */
    double
    mptu() const
    {
        return uops ? 1000.0 * static_cast<double>(mem.l2DemandMisses) /
                          static_cast<double>(uops)
                    : 0.0;
    }

    /** Speedup of this run relative to @p baseline. */
    double
    speedupOver(const RunResult &baseline) const
    {
        return baseline.ipc > 0.0 ? ipc / baseline.ipc : 0.0;
    }
};

/**
 * One fully wired simulated machine.
 */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &cfg);

    /**
     * Run the standard two-phase experiment: warm up for
     * cfg.warmupUops, reset statistics, measure cfg.measureUops.
     */
    RunResult run();

    /** Execute @p uops without resetting anything (warm-up). */
    void warmup(std::uint64_t uops);

    /** Reset statistics and measure @p uops. */
    RunResult measure(std::uint64_t uops);

    /**
     * Execute @p uops and report just that chunk (used by the Fig. 1
     * non-cumulative MPTU trace). Counters are *not* reset; the
     * chunk result is the delta.
     */
    RunResult runChunk(std::uint64_t uops);

    const SimConfig &config() const { return cfg; }
    StatGroup &stats() { return statGroup; }
    MemorySystem &memory() { return *memsys; }
    OooCore &core() { return *cpu; }
    HeapAllocator &heap() { return *heapAlloc; }
    UopSource &workload() { return *source; }

    /**
     * Drain every in-flight memory transaction, bringing the machine
     * to a quiesce point — the only states checkpoints can capture
     * (see DESIGN.md §11). Idempotent; deterministic, so the straight
     * and the restored leg of a differential run stay byte-identical
     * as long as both quiesce at the same uop count.
     */
    void quiesce();

    /**
     * Serialize the complete machine into @p os (versioned binary
     * format, see src/snapshot/ckpt_io.hh). Requires a quiesced
     * machine; throws snap::SnapshotError otherwise.
     */
    void saveCheckpoint(std::ostream &os) const;

    /**
     * Restore a checkpoint into this (freshly constructed) machine.
     * The guarded subset of the configuration — workload, seed,
     * machine geometry, baseline-prefetcher knobs — must match the
     * checkpointing run exactly; the sweep-fork knobs (cdp.*,
     * adaptive.*, trace.*, run lengths) may differ, enabling
     * warm-once / fork-many sweeps. Throws snap::SnapshotError with a
     * section-qualified diagnostic on any mismatch, corruption,
     * truncation, or version skew.
     */
    void restoreCheckpoint(std::istream &is);

    /** saveCheckpoint into @p path (binary); throws on I/O failure. */
    void saveCheckpointFile(const std::string &path) const;

    /** restoreCheckpoint from @p path; throws on I/O failure. */
    void restoreCheckpointFile(const std::string &path);

  private:
    RunResult snapshotDelta(Cycle cycles, std::uint64_t uops,
                            const MemorySystem::Counters &before) const;

    SimConfig cfg;
    StatGroup statGroup;
    BackingStore store;
    FrameAllocator frames;
    PageTable pageTable;
    std::unique_ptr<HeapAllocator> heapAlloc;
    std::unique_ptr<UopSource> source;
    std::unique_ptr<MemorySystem> memsys;
    std::unique_ptr<OooCore> cpu;
};

} // namespace cdp

#endif // CDP_SIM_SIMULATOR_HH
