/**
 * @file
 * Complete configuration of one simulation: Table 1 machine
 * parameters, prefetcher knobs, and workload/run control.
 *
 * Defaults reproduce the paper's 4-GHz system configuration and the
 * best content-prefetcher configuration (compare.filter.align.step =
 * 8.4.1.2, depth threshold 3, p0.n3, path reinforcement on).
 */

#ifndef CDP_SIM_CONFIG_HH
#define CDP_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "core/adaptive_vam.hh"
#include "core/content_prefetcher.hh"
#include "cpu/ooo_core.hh"
#include "obs/tracer.hh"

namespace cdp
{

/** Memory-hierarchy geometry and timing (Table 1). */
struct MemConfig
{
    // DL1: 32 KB, 8-way, virtually indexed, 3-cycle load-to-use.
    std::uint64_t l1Bytes = 32 * 1024;
    unsigned l1Ways = 8;
    Cycle l1Latency = 3;

    // UL2: 1 MB, 8-way, physically indexed, 16-cycle load-to-use.
    std::uint64_t l2Bytes = 1024 * 1024;
    unsigned l2Ways = 8;
    Cycle l2Latency = 16;

    // DTLB: 64-entry, 4-way (swept to 1024 in Section 4.2.2).
    unsigned dtlbEntries = 64;
    unsigned dtlbWays = 4;

    // Bus: 460-cycle round trip; 64 B at 4.26 GB/s at 4 GHz ~= 60
    // cycles of occupancy per line.
    Cycle busLatency = 460;
    Cycle busOccupancy = 60;
    unsigned busQueueSize = 32;
    unsigned l2QueueSize = 128;

    /**
     * Cap on banked prefetch-drain slots (L2 throughput is one
     * request per cycle; the bank covers core stalls, during which
     * the prefetch engine keeps running).
     */
    unsigned drainBudgetCap = 512;
};

/** Baseline (history) prefetcher knobs. */
struct StrideConfig
{
    bool enabled = true;
    /**
     * Which miss-driven baseline drives the machine: "stride"
     * (PC-indexed RPT, the paper's baseline) or "nextline" (tagged
     * sequential prefetch — see bench_baselines for why the paper
     * prefers stride).
     */
    std::string policy = "stride";
    unsigned tableEntries = 256;
    unsigned degree = 2;
    unsigned confThreshold = 2;
};

/** Markov prefetcher (Section 5) knobs. */
struct MarkovConfig
{
    bool enabled = false;
    /** STAB budget in bytes; 0 = unbounded ("markov_big"). */
    std::uint64_t stabBytes = 0;
    unsigned ways = 16;
    unsigned fanout = 4;
};

/** Section 3.5 limit study: inject bad prefetches on idle bus slots. */
struct PollutionConfig
{
    bool enabled = false;
    std::uint64_t seed = 7777;
};

/**
 * Simulation-scheduler selection — a host-side execution knob, never
 * part of the modeled machine (and therefore deliberately outside the
 * checkpoint's guarded configuration, like trace.*).
 */
struct SchedConfig
{
    /**
     * "wheel"  — event-wheel mode: MemorySystem::advance() returns
     *            through a fast path on provably idle calls and the
     *            core skips calls the wheel proves idle entirely.
     *            Stats stay byte-identical to legacy mode; the
     *            differential test net in tests/test_event_wheel.cc
     *            pins this (DESIGN.md §12).
     * "legacy" — the original tick-every-cycle contract: advance()
     *            runs its full body on every call.
     */
    std::string mode = "wheel";
};

/** Everything that defines one simulation run. */
struct SimConfig
{
    CoreConfig core{};
    MemConfig mem{};
    StrideConfig stride{};
    MarkovConfig markov{};
    CdpConfig cdp{};
    AdaptiveVamConfig adaptive{};
    PollutionConfig pollution{};
    SchedConfig sched{};
    /**
     * Lifecycle-event tracer (src/obs). A pure observer: enabling it
     * never changes timing, counters, or stats dumps. No-op unless
     * the build compiles tracing in (CDP_ENABLE_TRACE).
     */
    obs::TraceConfig trace{};

    /** Workload name from the Table 2 suite (see workloads/suite.hh). */
    std::string workload = "specjbb-vsnet";
    std::uint64_t workloadSeed = 1;

    /**
     * Uops executed before statistics start (Section 2.2). The paper
     * warms for 7.5 M uops out of ~45 M; we default to a proportional
     * prefix of our shorter runs (Figure 1's MPTU trace justifies the
     * choice — see bench_fig1_mptu).
     */
    std::uint64_t warmupUops = 600'000;
    /** Uops measured after warm-up. */
    std::uint64_t measureUops = 1'000'000;

    /** Physical memory frames available to the run. */
    std::uint32_t physFrames = 48 * 1024; // 192 MB

    /**
     * Scale warmup/measure lengths (CDP_SCALE env or CLI); the paper
     * runs 30 M instructions per LIT, we default to shorter runs.
     */
    void scaleRunLength(double factor);

    /**
     * Apply a "key=value" override; recognized keys cover every knob
     * above (e.g. "cdp.depth=5", "mem.l2_kb=512", "workload=tpcc-2").
     * @return false when the key is unknown.
     */
    bool applyOverride(const std::string &key, const std::string &value);

    /** Parse argv-style overrides; throws on an unknown key. */
    void parseArgs(int argc, char **argv);

    /** Multi-line human-readable summary (Table 1 style). */
    std::string summary() const;
};

} // namespace cdp

#endif // CDP_SIM_CONFIG_HH
