#include "sim/memory_system.hh"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "check/access.hh"
#include "check/check.hh"
#include "check/invariants.hh"
#include "snapshot/ckpt_io.hh"

namespace cdp
{

MemorySystem::MemorySystem(const SimConfig &cfg, BackingStore &store,
                           PageTable &page_table, StatGroup *stats)
    : cfg(cfg), backing(store), pageTable(page_table),
      dl1(cfg.mem.l1Bytes, cfg.mem.l1Ways, stats, "dl1"),
      ul2(cfg.mem.l2Bytes, cfg.mem.l2Ways, stats, "ul2"),
      dataTlb(cfg.mem.dtlbEntries, cfg.mem.dtlbWays, stats, "dtlb"),
      walker(page_table, stats, "walker"),
      stride(cfg.stride.tableEntries, cfg.stride.degree,
             cfg.stride.confThreshold, stats, "stride"),
      nextline(cfg.stride.policy == "nextline"
                   ? std::make_unique<NextLinePrefetcher>(
                         cfg.stride.degree, true, stats, "nextline")
                   : nullptr),
      markov(cfg.markov.enabled
                 ? std::make_unique<MarkovPrefetcher>(
                       cfg.markov.stabBytes, cfg.markov.ways,
                       cfg.markov.fanout, stats, "markov")
                 : nullptr),
      cdp(cfg.cdp, stats, "cdp"),
      adaptive(cfg.adaptive, stats, "adaptive"),
      bus(cfg.mem.busLatency, cfg.mem.busOccupancy, stats, "bus"),
      l2Arbiter(cfg.mem.l2QueueSize, stats, "l2arb"),
      mshrs(cfg.core.loadBuffer + cfg.mem.busQueueSize + 8, stats,
            "mshr"),
      pollutionRng(cfg.pollution.seed),
      pollutionSpan(static_cast<Addr>(cfg.physFrames) * pageBytes),
      trc(cfg.trace),
      loadLatency(stats ? *stats : dummyStatGroup,
                  "mem.load_latency",
                  "demand load-to-use latency (cycles)", 0, 800, 16),
      prefetchLead(stats ? *stats : dummyStatGroup,
                   "mem.prefetch_lead",
                   "content-prefetch fill-to-use lead (cycles)", 0,
                   2000, 20),
      provChainDepth(stats ? *stats : dummyStatGroup,
                     "prov.chain_depth",
                     "chain depth of issued content prefetches", 0, 16,
                     16)
{
    skipIdle = cfg.sched.mode == "wheel";
    cdpDepthHighWater = std::max(cfg.cdp.depthThreshold, 1u);
    StatGroup &sg = stats ? *stats : dummyStatGroup;
    // StatGroup keeps raw pointers into provFormulas; reserve the
    // exact count so emplace_back can never reallocate them away.
    provFormulas.reserve(4 * provDepthBuckets + 2);
    for (unsigned d = 0; d < provDepthBuckets; ++d) {
        const std::string base = "prov.d" + std::to_string(d) + ".";
        const std::string at =
            d + 1 == provDepthBuckets
                ? "depth >= " + std::to_string(d)
                : "depth " + std::to_string(d);
        provFormulas.emplace_back(
            sg, base + "accurate",
            "content prefetches first-touched by a demand (" + at + ")",
            [this, d] {
                return static_cast<double>(ctr.depthAccurate[d]);
            });
        provFormulas.emplace_back(
            sg, base + "late",
            "content prefetches promoted while in flight (" + at + ")",
            [this, d] {
                return static_cast<double>(ctr.depthLate[d]);
            });
        provFormulas.emplace_back(
            sg, base + "dropped",
            "content prefetches squashed before issue (" + at + ")",
            [this, d] {
                return static_cast<double>(ctr.depthDropped[d]);
            });
        provFormulas.emplace_back(
            sg, base + "polluting",
            "content-prefetched lines evicted unused (" + at + ")",
            [this, d] {
                return static_cast<double>(ctr.depthPolluting[d]);
            });
    }
    provFormulas.emplace_back(
        sg, "prov.reinforce_promotions",
        "depth-tag promotions recorded by path reinforcement",
        [this] {
            return static_cast<double>(ctr.reinforcePromotions);
        });
    provFormulas.emplace_back(
        sg, "prov.reinforce_rescans",
        "reinforcement promotions that also triggered a rescan",
        [this] { return static_cast<double>(ctr.rescans); });
}

Cycle
MemorySystem::nextEventCycle() const
{
    // Anything per-call (rescan-debt repayment, the pollution RNG
    // draw, an adaptive epoch) forces the legacy every-cycle
    // contract; so does sched.mode = "legacy" itself. Otherwise the
    // next event is the earlier of a fill completing and the arbiter
    // head winning the bus.
    if (!skipIdle || cfg.pollution.enabled || rescanDebt != 0 ||
        adaptive.epochElapsed())
        return 0;
    return nextProgressCycle();
}

void
MemorySystem::advance(Cycle now)
{
    // Idle fast path (sched.mode = "wheel"): when the call is
    // provably a pure no-op, skip the whole body — including the
    // drain-pool bookkeeping, whose deferred accumulation is exact
    // (see idleAt). The skip happens before checkTick so audit
    // pacing tracks full advances, which are the only calls that can
    // corrupt state.
    if (skipIdle && idleAt(now)) {
        ++skippedAdvances;
        return;
    }
    ++fullAdvances;

    // Iterate to a fixpoint: completed fills can enqueue chained
    // prefetches, and drained prefetches can complete within the same
    // window, whose fills must be scanned in turn.
    for (;;) {
        bool progressed = false;
        while (auto f = pendingFills.popDue(now)) {
            completeFill(f->payload, f->when);
            progressed = true;
        }
        const std::size_t queued = l2Arbiter.size();
        drainPrefetches(now);
        progressed |= l2Arbiter.size() != queued;
        if (!progressed)
            break;
    }
    if (adaptive.epochElapsed()) {
        CdpConfig tuned = cdp.config();
        if (adaptive.evaluate(tuned))
            cdp.reconfigure(tuned);
    }
    if (cfg.pollution.enabled)
        maybeInjectPollution(now);

#if CDP_CHECKS_ENABLED
    // Full-structure audits are O(cache size); pace them so checked
    // builds stay usable while still catching corruption quickly.
    if ((++checkTick & 0x3ff) == 0)
        checkInvariants();
#endif
}

void
MemorySystem::reconfigureCdp(const CdpConfig &new_cfg)
{
    cfg.cdp = new_cfg;
    cdpDepthHighWater =
        std::max(cdpDepthHighWater, new_cfg.depthThreshold);
    cdp.reconfigure(new_cfg);
}

void
MemorySystem::checkInvariants() const
{
#if CDP_CHECKS_ENABLED
    // Depth tags (Section 3.4.2): content chains stop at the
    // configured threshold; stride prefetches carry depth 1; the DL1
    // never stores a depth at all. Resident lines and in-flight
    // entries keep the depth they were created with across a sweep's
    // reconfigureCdp(), so the bound is the depth high-water mark.
    const unsigned maxDepth = std::max(cdpDepthHighWater, 1u);
    check::auditCache(dl1, 0, "dl1");
    check::auditCache(ul2, maxDepth, "ul2");
    check::auditMshr(mshrs, cdpDepthHighWater, "mshr");
    check::auditArbiter(l2Arbiter, "l2arb");
    check::auditTlb(dataTlb, pageTable, "dtlb");

    // In-flight accounting: the prefetch-outstandingness counter must
    // equal the number of MSHR entries in the prefetch lifecycle.
    CDP_CHECK_MSG(prefetchInFlight == check::prefetchEntryCount(mshrs),
                  check::dumpMshr(mshrs, "mshr"));

    // Request-lifecycle pairing: every in-flight entry has exactly
    // one scheduled completion event and vice versa, so no fill can
    // be lost or delivered twice.
    std::unordered_set<Addr> scheduled;
    for (const EventWheel::Event &e : pendingFills.sorted())
        scheduled.insert(e.payload);
    CDP_CHECK_MSG(scheduled.size() == mshrs.size(),
                  check::dumpMshr(mshrs, "mshr"));
    for (const auto &[pa, entry] : check::sortedMshrEntries(mshrs)) {
        (void)entry;
        CDP_CHECK_MSG(scheduled.count(pa) == 1,
                      check::dumpMshr(mshrs, "mshr"));
    }
#endif
}

void
MemorySystem::drainAll(Cycle now)
{
    while (!pendingFills.empty() || !l2Arbiter.empty()) {
        Cycle horizon = now;
        if (!pendingFills.empty())
            horizon = std::max(horizon, pendingFills.nextDue());
        advance(horizon + cfg.mem.drainBudgetCap);
        now = horizon + cfg.mem.drainBudgetCap;
    }
    checkInvariants();
}

void
MemorySystem::drainPrefetches(Cycle now)
{
    // Accumulate L2-arbiter slots at one per elapsed cycle (the L2
    // throughput of Table 1), capped so an idle aeon cannot bank an
    // unbounded burst.
    if (now > lastDrain) {
        drainPool = std::min<Cycle>(
            drainPool + cyclesSince(now, lastDrain),
            cfg.mem.drainBudgetCap);
        lastDrain = now;
    }

    // Reinforcement rescans steal UL2 port slots (Section 4.2.1:
    // "the rescan overhead ... can put a strain on the memory
    // system, specifically the UL2 cache").
    while (drainPool > 0 && rescanDebt > 0) {
        --drainPool;
        --rescanDebt;
    }
    // Strict priority (Section 3.5): prefetches only consume *idle*
    // bus slots, never reserving bandwidth ahead of a later demand.
    // The prefetch hardware runs concurrently with the (possibly
    // stalled) core, so a request issues at the first bus-idle point
    // after it was enqueued -- which may lie anywhere inside the
    // window the core just skipped over.
    while (drainPool > 0 && !l2Arbiter.empty()) {
        auto req = l2Arbiter.dequeue();
        if (!req)
            break;
        const Cycle t = std::max(req->enqueued, bus.freeCycle());
        if (t > now) {
            // Bus stays busy past the current horizon; retry on the
            // next advance.
            l2Arbiter.requeueFront(*req);
            break;
        }
        --drainPool;
        if (trc.active())
            trc.record(obs::EventKind::ArbGrant, t, req->lineVa,
                       req->id, req->root, req->type, req->depth,
                       req->hop);
        issuePrefetch(*req, t);
    }
}

std::optional<Cycle>
MemorySystem::timedWalk(Addr va, Cycle now, bool speculative)
{
    if (speculative)
        ++ctr.prefetchWalks;
    else
        ++ctr.demandWalks;

    const WalkResult wr = walker.walk(va, dataTlb);
    Cycle lat = 0;
    for (Addr pa : wr.accesses) {
        const Addr lpa = lineAlign(pa);
        if (ul2.lookup(lpa)) {
            lat += cfg.mem.l2Latency;
            continue;
        }
        if (const MshrEntry *e = mshrs.find(lpa)) {
            if (e->completion > now + lat)
                lat = cyclesUntil(e->completion, now);
            continue;
        }
        const Cycle comp = bus.service(now + lat);
        MshrEntry fill{};
        fill.linePa = lpa;
        fill.lineVa = 0;
        fill.vaddr = va;
        fill.type = ReqType::PageWalk;
        fill.id = nextReqId++;
        fill.root = fill.id; // walk fills are their own root
        fill.completion = comp;
        if (mshrs.allocate(fill)) {
            pendingFills.schedule(comp, lpa);
            if (trc.active())
                trc.record(obs::EventKind::Issue, now + lat, lpa,
                           fill.id, fill.root, ReqType::PageWalk, 0, 0);
        }
        lat = cyclesSince(comp, now);
    }
    if (!wr.framePa)
        return std::nullopt;
    return lat;
}

std::optional<Addr>
MemorySystem::translate(Addr va, Cycle now, bool speculative,
                        Cycle *extra_latency)
{
    if (auto frame = dataTlb.lookup(va))
        return *frame | pageOffset(va);

    const auto lat = timedWalk(va, now, speculative);
    if (!lat)
        return std::nullopt;
    *extra_latency += *lat;
    const auto frame = dataTlb.probe(va);
    if (!frame)
        return std::nullopt;
    return *frame | pageOffset(va);
}

void
MemorySystem::noteDrop(ReqType type, unsigned depth,
                       obs::DropReason why, Addr addr, ReqId id,
                       ReqId root, unsigned hop, Cycle now)
{
    if (type == ReqType::ContentPrefetch)
        ++ctr.depthDropped[provDepthBucket(depth)];
    if (trc.active())
        trc.record(obs::EventKind::Drop, now, addr, id, root, type,
                   depth, hop, static_cast<std::uint32_t>(why));
}

void
MemorySystem::enqueuePrefetch(ReqType type, Addr vaddr, Addr line_va,
                              unsigned depth, ReqId root, unsigned hop,
                              Cycle now, bool width_line)
{
    if (type == ReqType::ContentPrefetch &&
        depth > cfg.cdp.depthThreshold)
        return; // chain terminated (Section 3.4.1)

    const ReqId id = nextReqId++;
    if (l2Arbiter.contains(line_va)) {
        ++ctr.pfDropQueued;
        noteDrop(type, depth, obs::DropReason::QueuedDup,
                 lineAlign(line_va), id, root, hop, now);
        return;
    }

    MemRequest req{};
    req.id = id;
    req.type = type;
    req.vaddr = vaddr;
    req.lineVa = lineAlign(line_va);
    req.depth = depth;
    req.root = root;
    req.hop = hop;
    req.widthLine = width_line;
    req.enqueued = now;
    if (l2Arbiter.enqueue(req) == EnqueueResult::Rejected) {
        ++ctr.pfDropArbiter;
        noteDrop(type, depth, obs::DropReason::ArbFull, req.lineVa, id,
                 root, hop, now);
        return;
    }
    if (trc.active())
        trc.record(obs::EventKind::ArbEnqueue, now, req.lineVa, id,
                   root, type, depth, hop);
}

bool
MemorySystem::issuePrefetch(MemRequest req, Cycle now)
{
    Cycle extra = 0;
    const auto pa = translate(req.lineVa, now, true, &extra);
    if (!pa) {
        ++ctr.pfDropUnmapped;
        noteDrop(req.type, req.depth, obs::DropReason::Unmapped,
                 req.lineVa, req.id, req.root, req.hop, now);
        return false;
    }
    const Addr line_pa = lineAlign(*pa);

    if (CacheLine *line = ul2.probeMutable(line_pa)) {
        ++ctr.pfDropL2Hit;
        noteDrop(req.type, req.depth, obs::DropReason::L2Hit, line_pa,
                 req.id, req.root, req.hop, now);
        // A shallower prefetch touching a deeper resident line still
        // reinforces the chain (Section 3.4.2: "any memory request").
        reinforceOnHit(*line, line_pa, req.depth, req.vaddr, now);
        return false;
    }
    if (mshrs.find(line_pa)) {
        ++ctr.pfDropInflight;
        noteDrop(req.type, req.depth, obs::DropReason::Inflight,
                 line_pa, req.id, req.root, req.hop, now);
        return false;
    }
    if (prefetchInFlight >= cfg.mem.busQueueSize) {
        ++ctr.pfDropBusFull;
        noteDrop(req.type, req.depth, obs::DropReason::BusFull,
                 line_pa, req.id, req.root, req.hop, now);
        return false;
    }

    MshrEntry e{};
    e.linePa = line_pa;
    e.lineVa = req.lineVa;
    e.vaddr = req.vaddr;
    e.type = req.type;
    e.depth = req.depth;
    e.id = req.id;
    e.root = req.root;
    e.hop = req.hop;
    e.strideOverlap = req.type == ReqType::ContentPrefetch &&
                      baselineRecentlyIssued(req.lineVa);
    e.widthLine = req.widthLine;
    e.completion = bus.service(now + extra);
    if (!mshrs.allocate(e)) {
        ++ctr.pfDropBusFull;
        noteDrop(req.type, req.depth, obs::DropReason::BusFull,
                 line_pa, req.id, req.root, req.hop, now);
        return false;
    }
    ++prefetchInFlight;
    pendingFills.schedule(e.completion, line_pa);
    if (trc.active())
        trc.record(obs::EventKind::Issue, now, line_pa, req.id,
                   req.root, req.type, req.depth, req.hop);

    if (req.type == ReqType::ContentPrefetch) {
        provChainDepth.sample(static_cast<double>(req.depth));
        ++ctr.cdpIssued;
        adaptive.noteIssued();
        if (e.strideOverlap)
            ++ctr.cdpIssuedOverlap;
    } else {
        ++ctr.strideIssued;
    }
    return true;
}

void
MemorySystem::reinforceOnHit(CacheLine &line, Addr line_pa,
                             unsigned req_depth, Addr req_vaddr,
                             Cycle now)
{
    if (!cfg.cdp.enabled || !cfg.cdp.reinforce)
        return;
    if (line.storedDepth <= req_depth)
        return;
    const bool rescan = cdp.shouldRescan(req_depth, line.storedDepth);
    const unsigned old_depth = line.storedDepth;
    line.storedDepth = static_cast<std::uint8_t>(req_depth);
    ++ctr.promotions;
    ++ctr.reinforcePromotions;
    if (trc.active())
        trc.record(obs::EventKind::Reinforce, now, line_pa,
                   line.provRoot, line.provRoot, line.fillType,
                   req_depth, 0, static_cast<std::uint32_t>(old_depth));
    if (rescan) {
        ++ctr.rescans;
        ++rescanDebt;
        scanAndEnqueue(line_pa, req_vaddr, req_depth, line.provRoot,
                       true, now);
    }
}

void
MemorySystem::scanAndEnqueue(Addr line_pa, Addr trigger_ea,
                             unsigned depth, ReqId root, bool is_rescan,
                             Cycle now)
{
    if (!cfg.cdp.enabled)
        return;
    std::uint8_t buf[lineBytes];
    backing.readLine(line_pa, buf);
    const std::vector<CdpCandidate> cands =
        cdp.scanFill(buf, trigger_ea, depth, is_rescan);
    if (trc.active())
        trc.record(obs::EventKind::Scan, now, line_pa, root, root,
                   ReqType::ContentPrefetch, depth, 0,
                   static_cast<std::uint32_t>(cands.size()));
    for (const CdpCandidate &c : cands) {
        enqueuePrefetch(ReqType::ContentPrefetch, c.vaddr, c.lineVa,
                        c.depth, root, c.hop, now, c.widthLine);
    }
}

void
MemorySystem::completeFill(Addr line_pa, Cycle when)
{
    MshrEntry *found = mshrs.find(line_pa);
    // Lifecycle FSM: completion events pair 1:1 with MSHR entries
    // (allocate schedules exactly one event; nothing else releases),
    // and the event must retire the transaction that scheduled it.
    CDP_CHECK(found != nullptr);
    if (!found)
        return; // stale event (entry was serviced another way)
    CDP_CHECK_MSG(found->completion == when,
                  check::dumpMshr(mshrs, "mshr"));
    const MshrEntry entry = *found;
    mshrs.release(line_pa);

    if (isPrefetch(entry.type) || entry.promoted) {
        CDP_CHECK(prefetchInFlight > 0);
        if (prefetchInFlight > 0)
            --prefetchInFlight;
    }

    // No double-fill: the line left the UL2 before its fill was
    // requested and only this path inserts, so it cannot be resident.
    CDP_CHECK_MSG(ul2.probe(line_pa) == nullptr,
                  check::dumpCacheSet(
                      ul2, check::Access::setOf(ul2, line_pa), "ul2"));

    Eviction ev;
    CacheLine &line = ul2.insert(line_pa, &ev);
    if (ev.valid && ev.prefetched)
        ++ctr.prefetchEvictedUnused;
    // Pollution attribution: a content-prefetched line displaced
    // without ever serving a demand, charged to its fill-time depth.
    if (ev.valid && ev.fillType == ReqType::ContentPrefetch &&
        !ev.everUsed) {
        ++ctr.depthPolluting[provDepthBucket(ev.fillDepth)];
    }

    line.prefetched = isPrefetch(entry.type);
    line.fillType = entry.type;
    line.storedDepth =
        static_cast<std::uint8_t>(std::min(entry.depth, 255u));
    line.fillDepth =
        static_cast<std::uint8_t>(std::min(entry.depth, 255u));
    line.provRoot = entry.root;
    line.fillCycle = when;
    line.strideOverlap = entry.strideOverlap;
    line.everUsed = !isPrefetch(entry.type) &&
                    entry.type != ReqType::PageWalk;

    if (trc.active())
        trc.record(obs::EventKind::Fill, when, line_pa, entry.id,
                   entry.root, entry.type, entry.depth, entry.hop);

    if ((entry.type == ReqType::DemandLoad ||
         entry.type == ReqType::DemandStore) &&
        !entry.pollution) {
        dl1.insert(entry.lineVa);
    }

    if (entry.pollution)
        return;
    if (entry.type == ReqType::PageWalk && !cfg.cdp.scanPageWalkFills)
        return; // Section 3.5: page-walk traffic bypasses the scanner
    if (entry.widthLine && !cfg.cdp.scanWidthFills)
        return; // width fills pull in node payload, not chain links
    scanAndEnqueue(line_pa, entry.vaddr, entry.depth, entry.root,
                   false, when);
}

std::vector<Addr>
MemorySystem::baselineObserve(Addr pc, Addr vaddr)
{
    if (nextline)
        return nextline->observeMiss(pc, vaddr);
    return stride.observeMiss(pc, vaddr);
}

bool
MemorySystem::baselineRecentlyIssued(Addr line_va) const
{
    if (nextline)
        return nextline->recentlyIssued(line_va);
    return stride.recentlyIssued(line_va);
}

void
MemorySystem::maybeInjectPollution(Cycle now)
{
    if (!bus.freeAt(now))
        return;
    // Inject on a fraction of idle opportunities; advance() is not
    // called every cycle, so firing on every call would overshoot
    // the paper's "every idle bus cycle" rate substantially.
    if (!pollutionRng.chance(0.3))
        return;
    const Addr line_pa =
        lineAlign(static_cast<Addr>(pollutionRng.below(pollutionSpan)));
    if (ul2.probe(line_pa) || mshrs.find(line_pa))
        return;

    MshrEntry e{};
    e.linePa = line_pa;
    e.type = ReqType::ContentPrefetch;
    e.depth = cfg.cdp.depthThreshold; // never scanned
    e.id = nextReqId++;
    e.root = 0; // injected noise has no provenance root
    e.pollution = true;
    e.completion = bus.service(now);
    if (mshrs.allocate(e)) {
        ++prefetchInFlight;
        pendingFills.schedule(e.completion, line_pa);
        ++ctr.pollutionInjected;
        if (trc.active())
            trc.record(obs::EventKind::Issue, now, line_pa, e.id,
                       e.root, e.type, e.depth, 0);
    }
}

Cycle
MemorySystem::load(Addr pc, Addr vaddr, Cycle now, bool /*pointer_load*/)
{
    advance(now);
    ++ctr.demandLoads;

    if (dl1.lookup(vaddr)) {
        loadLatency.sample(static_cast<double>(cfg.mem.l1Latency));
        return now + cfg.mem.l1Latency;
    }
    ++ctr.l1Misses;

    // Every DL1 miss gets a fresh transaction id up front: it is the
    // provenance root of everything it spawns (its stride prefetches
    // and, on an L2 miss, its own fill).
    const ReqId demandId = nextReqId++;
    if (trc.active())
        trc.record(obs::EventKind::DemandMiss, now, lineAlign(vaddr),
                   demandId, demandId, ReqType::DemandLoad, 0, 0);

    // The baseline prefetcher monitors the L1 miss stream (Fig. 6).
    bool stride_fired = false;
    if (cfg.stride.enabled) {
        unsigned hop = 0;
        for (Addr p : baselineObserve(pc, vaddr)) {
            stride_fired = true;
            enqueuePrefetch(ReqType::StridePrefetch, p, lineAlign(p), 1,
                            demandId, hop++, now);
        }
    }

    Cycle extra = 0;
    const auto pa = translate(vaddr, now, false, &extra);
    if (!pa)
        throw std::runtime_error("demand load to unmapped VA");
    const Addr line_pa = lineAlign(*pa);
    const Addr line_va = lineAlign(vaddr);
    const Cycle t0 = now + extra + 1; // one cycle of L2 queueing

    ++ctr.l2DemandAccesses;
    if (CacheLine *line = ul2.lookup(line_pa)) {
        if (line->prefetched && !line->everUsed) {
            // First demand touch of a prefetched line: fully masked.
            if (now > line->fillCycle)
                prefetchLead.sample(static_cast<double>(
                    cyclesSince(now, line->fillCycle)));
            if (line->fillType == ReqType::ContentPrefetch) {
                ++ctr.maskFullCdp;
                ++ctr.cdpUseful;
                ++ctr.depthAccurate[provDepthBucket(line->fillDepth)];
                adaptive.noteUseful();
                if (line->strideOverlap)
                    ++ctr.cdpUsefulOverlap;
            } else {
                ++ctr.maskFullStride;
                ++ctr.strideUseful;
            }
        }
        line->everUsed = true;
        reinforceOnHit(*line, line_pa, 0, vaddr, now);
        dl1.insert(line_va);
        loadLatency.sample(static_cast<double>(
            cyclesSince(t0 + cfg.mem.l2Latency, now)));
        return t0 + cfg.mem.l2Latency;
    }

    // L2 miss: check in-flight transactions first.
    if (const MshrEntry *e = mshrs.find(line_pa)) {
        const Cycle fresh =
            std::max(t0, bus.freeCycle()) + bus.latencyCycles();
        const Cycle inflight_done = e->completion;
        if (isPrefetch(e->type)) {
            const bool is_cdp = e->type == ReqType::ContentPrefetch;
            const bool overlap = e->strideOverlap;
            if (is_cdp)
                ++ctr.depthLate[provDepthBucket(e->depth)];
            if (trc.active())
                trc.record(obs::EventKind::Promote, now, line_pa,
                           e->id, e->root, e->type, e->depth, e->hop,
                           static_cast<std::uint32_t>(demandId));
            mshrs.promote(line_pa, 0, vaddr);
            // Promotion must have moved the entry to demand class.
            CDP_CHECK_MSG(!isPrefetch(mshrs.find(line_pa)->type),
                          check::dumpMshr(mshrs, "mshr"));
            if (is_cdp) {
                ++ctr.maskPartialCdp;
                ++ctr.cdpUseful;
                adaptive.noteUseful();
                if (overlap)
                    ++ctr.cdpUsefulOverlap;
            } else {
                ++ctr.maskPartialStride;
                ++ctr.strideUseful;
            }
        } else {
            // Merge with an in-flight demand (secondary miss).
            if (trc.active())
                trc.record(obs::EventKind::Merge, now, line_pa, e->id,
                           e->root, e->type, e->depth, e->hop,
                           static_cast<std::uint32_t>(demandId));
        }
        (void)fresh;
        const Cycle done = std::max(inflight_done,
                                    t0 + cfg.mem.l2Latency);
        loadLatency.sample(static_cast<double>(cyclesSince(done, now)));
        return done;
    }

    // A queued-but-unstarted prefetch for this line is promoted to
    // the demand's priority and issued right now as the demand.
    if (auto queued = l2Arbiter.extractPrefetch(line_va)) {
        ++ctr.promotions;
        if (trc.active())
            trc.record(obs::EventKind::Promote, now, line_va,
                       queued->id, queued->root, queued->type,
                       queued->depth, queued->hop,
                       static_cast<std::uint32_t>(demandId));
    }

    ++ctr.l2DemandMisses;

    // The Markov prefetcher observes the L2 miss stream but is
    // blocked whenever the stride prefetcher fired (Section 5).
    if (markov && !stride_fired) {
        unsigned hop = 0;
        for (Addr p : markov->observeMiss(pc, vaddr)) {
            enqueuePrefetch(ReqType::StridePrefetch, p, lineAlign(p), 1,
                            demandId, hop++, now);
        }
    }

    const Cycle comp = bus.service(t0);
    MshrEntry e{};
    e.linePa = line_pa;
    e.lineVa = line_va;
    e.vaddr = vaddr;
    e.type = ReqType::DemandLoad;
    e.id = demandId;
    e.root = demandId;
    e.completion = comp;
    if (mshrs.allocate(e)) {
        pendingFills.schedule(comp, line_pa);
        if (trc.active())
            trc.record(obs::EventKind::Issue, t0, line_pa, demandId,
                       demandId, ReqType::DemandLoad, 0, 0);
    }
    loadLatency.sample(static_cast<double>(cyclesSince(comp, now)));
    return comp;
}

Cycle
MemorySystem::store(Addr pc, Addr vaddr, Cycle now)
{
    advance(now);

    if (dl1.lookup(vaddr))
        return now + 1;
    ++ctr.l1Misses;

    const ReqId demandId = nextReqId++;
    if (trc.active())
        trc.record(obs::EventKind::DemandMiss, now, lineAlign(vaddr),
                   demandId, demandId, ReqType::DemandStore, 0, 0);

    if (cfg.stride.enabled) {
        unsigned hop = 0;
        for (Addr p : baselineObserve(pc, vaddr)) {
            enqueuePrefetch(ReqType::StridePrefetch, p, lineAlign(p), 1,
                            demandId, hop++, now);
        }
    }

    Cycle extra = 0;
    const auto pa = translate(vaddr, now, false, &extra);
    if (!pa)
        throw std::runtime_error("demand store to unmapped VA");
    const Addr line_pa = lineAlign(*pa);
    const Addr line_va = lineAlign(vaddr);

    if (CacheLine *line = ul2.lookup(line_pa)) {
        if (line->prefetched && !line->everUsed) {
            if (line->fillType == ReqType::ContentPrefetch) {
                ++ctr.cdpUseful;
                ++ctr.depthAccurate[provDepthBucket(line->fillDepth)];
                adaptive.noteUseful();
            } else {
                ++ctr.strideUseful;
            }
        }
        line->everUsed = true;
        reinforceOnHit(*line, line_pa, 0, vaddr, now);
        dl1.insert(line_va);
        return now + 1;
    }

    if (const MshrEntry *e = mshrs.find(line_pa)) {
        if (trc.active())
            trc.record(obs::EventKind::Merge, now, line_pa, e->id,
                       e->root, e->type, e->depth, e->hop,
                       static_cast<std::uint32_t>(demandId));
        return now + 1; // merge; store buffer hides the latency
    }

    const Cycle t0 = now + extra + 1;
    const Cycle comp = bus.service(t0);
    MshrEntry e{};
    e.linePa = line_pa;
    e.lineVa = line_va;
    e.vaddr = vaddr;
    e.type = ReqType::DemandStore;
    e.id = demandId;
    e.root = demandId;
    e.completion = comp;
    if (mshrs.allocate(e)) {
        pendingFills.schedule(comp, line_pa);
        if (trc.active())
            trc.record(obs::EventKind::Issue, t0, line_pa, demandId,
                       demandId, ReqType::DemandStore, 0, 0);
    }
    return now + 1;
}

// Single field list so save, load, and any future diff stay in sync
// (the arrays travel separately below).
#define CDP_FOR_EACH_COUNTER(X)                                        \
    X(demandLoads) X(l1Misses) X(l2DemandAccesses) X(l2DemandMisses)   \
    X(maskFullStride) X(maskPartialStride) X(maskFullCdp)              \
    X(maskPartialCdp) X(strideIssued) X(cdpIssued) X(cdpIssuedOverlap) \
    X(cdpUsefulOverlap) X(strideUseful) X(cdpUseful) X(pfDropL2Hit)    \
    X(pfDropInflight) X(pfDropQueued) X(pfDropBusFull)                 \
    X(pfDropUnmapped) X(pfDropArbiter) X(demandWalks)                  \
    X(prefetchWalks) X(promotions) X(rescans) X(reinforcePromotions)   \
    X(pollutionInjected) X(prefetchEvictedUnused)

void
MemorySystem::saveState(snap::Writer &w) const
{
    if (mshrs.size() != 0)
        throw snap::SnapshotError(
            "cannot checkpoint with " + std::to_string(mshrs.size()) +
            " in-flight MSHR fill(s) — checkpoint only at quiesce "
            "points (drainAll first)");
    if (!pendingFills.empty())
        throw snap::SnapshotError(
            "cannot checkpoint with " +
            std::to_string(pendingFills.size()) +
            " pending fill(s) — checkpoint only at quiesce points");
    if (prefetchInFlight != 0)
        throw snap::SnapshotError(
            "cannot checkpoint with " +
            std::to_string(prefetchInFlight) +
            " prefetch(es) in flight — checkpoint only at quiesce "
            "points");

    dl1.saveState(w);
    ul2.saveState(w);
    dataTlb.saveState(w);
    stride.saveState(w);
    w.boolean(nextline != nullptr);
    if (nextline)
        nextline->saveState(w);
    w.boolean(markov != nullptr);
    if (markov)
        markov->saveState(w);
    // Base (construction-time) cdp config travels ahead of the live
    // one: the restoring side uses it to decide whether the live
    // config applies (same machine resumed) or its own sweep override
    // wins (warm fork).
    snap::saveCdpConfig(w, cfg.cdp);
    cdp.saveState(w);
    adaptive.saveState(w);
    bus.saveState(w);
    l2Arbiter.saveState(w); // throws unless empty
    w.u64(lastDrain);
    w.u64(drainPool);
    w.u64(rescanDebt);
    w.u64(nextReqId);
    w.u64(checkTick);
    w.u64(cdpDepthHighWater);
    w.rng(pollutionRng);

#define CDP_SAVE_COUNTER(f) w.u64(ctr.f);
    CDP_FOR_EACH_COUNTER(CDP_SAVE_COUNTER)
#undef CDP_SAVE_COUNTER
    for (unsigned d = 0; d < provDepthBuckets; ++d) {
        w.u64(ctr.depthAccurate[d]);
        w.u64(ctr.depthLate[d]);
        w.u64(ctr.depthDropped[d]);
        w.u64(ctr.depthPolluting[d]);
    }
}

void
MemorySystem::loadState(snap::Reader &r)
{
    if (mshrs.size() != 0 || !pendingFills.empty() ||
        prefetchInFlight != 0)
        r.fail("restore target is not quiesced");

    dl1.loadState(r);
    ul2.loadState(r);
    dataTlb.loadState(r);
    stride.loadState(r);
    const bool hadNextline = r.boolean();
    if (hadNextline != (nextline != nullptr))
        r.fail("baseline-prefetcher mismatch: checkpoint " +
               std::string(hadNextline ? "has" : "lacks") +
               " a next-line prefetcher, this simulator " +
               std::string(nextline ? "has" : "lacks") + " one");
    if (nextline)
        nextline->loadState(r);
    const bool hadMarkov = r.boolean();
    if (hadMarkov != (markov != nullptr))
        r.fail("Markov-prefetcher mismatch: checkpoint " +
               std::string(hadMarkov ? "has" : "lacks") +
               " one, this simulator " +
               std::string(markov ? "has" : "lacks") + " one");
    if (markov)
        markov->loadState(r);
    const CdpConfig savedBase = snap::loadCdpConfig(r);
    const bool sameBase = savedBase == cfg.cdp;
    cdp.loadState(r, sameBase);
    adaptive.loadState(r);
    bus.loadState(r);
    l2Arbiter.loadState(r);
    lastDrain = r.u64();
    drainPool = r.u64();
    rescanDebt = static_cast<unsigned>(r.u64());
    nextReqId = static_cast<ReqId>(r.u64());
    checkTick = r.u64();
    // Max-merge rather than overwrite: the live machine may already
    // have configured a deeper threshold than the checkpointed one.
    cdpDepthHighWater = std::max(
        cdpDepthHighWater, static_cast<unsigned>(r.u64()));
    r.rng(pollutionRng);

#define CDP_LOAD_COUNTER(f) ctr.f = r.u64();
    CDP_FOR_EACH_COUNTER(CDP_LOAD_COUNTER)
#undef CDP_LOAD_COUNTER
    for (unsigned d = 0; d < provDepthBuckets; ++d) {
        ctr.depthAccurate[d] = r.u64();
        ctr.depthLate[d] = r.u64();
        ctr.depthDropped[d] = r.u64();
        ctr.depthPolluting[d] = r.u64();
    }
}

#undef CDP_FOR_EACH_COUNTER

} // namespace cdp
