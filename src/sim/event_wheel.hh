/**
 * @file
 * Deterministic timing-wheel scheduler for the memory system's
 * completion events.
 *
 * The wheel replaces the pending-fill priority queue with a structure
 * that can answer "when is the next event due?" in O(1) — the hook
 * the idle-skipping simulation loop hangs off (DESIGN.md §12). It is
 * a classic single-level wheel: a power-of-two ring of slots covering
 * the near future, an ordered overflow map for events beyond the
 * horizon, and an occupancy bitmap so recomputing the earliest
 * deadline scans 64 slots per word instead of walking a heap.
 *
 * Determinism contract:
 *  - events at distinct cycles pop in cycle order;
 *  - events at the same cycle pop in schedule (FIFO) order, tracked
 *    by a monotonic sequence number — never in container order;
 *  - sorted() returns the pending set keyed by (cycle, seq), so
 *    audits and dumps iterate in a reproducible order.
 *
 * In the memory system ties never actually occur: every completion
 * is minted by the single front-side bus, whose busy-window advances
 * by at least the per-line occupancy (>= 1 cycle) per transfer, so
 * completion cycles are strictly increasing. The FIFO rule makes the
 * wheel's order provably identical to the old priority queue even
 * without that guarantee.
 */

#ifndef CDP_SIM_EVENT_WHEEL_HH
#define CDP_SIM_EVENT_WHEEL_HH

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace cdp
{

/**
 * A timing wheel holding (cycle, payload) completion events. The
 * payload is the line-aligned physical address whose fill completes.
 */
class EventWheel
{
  public:
    struct Event
    {
        Cycle when = 0;
        std::uint64_t seq = 0; //!< schedule order; FIFO tie-break
        Addr payload = 0;
    };

    EventWheel();

    /**
     * Schedule @p payload to complete at @p when. @p when must not
     * precede the wheel's base — the highest deadline already
     * drained (the wheel only turns forward); throws
     * std::logic_error otherwise. Scheduling below the current
     * minimum but at or above base is legal: the new event simply
     * becomes the next to pop.
     */
    void schedule(Cycle when, Addr payload);

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    /** Earliest pending completion cycle; requires !empty(). */
    Cycle nextDue() const { return minDue; }

    /**
     * Pop the earliest event if it is due (when <= @p now); FIFO
     * among events sharing a cycle. nullopt when nothing is due.
     */
    std::optional<Event> popDue(Cycle now);

    /** Pending events in (when, seq) order — audits and tests. */
    std::vector<Event> sorted() const;

  private:
    /** log2 of the near-future horizon covered by the slot ring. */
    static constexpr unsigned slotBits = 10;
    static constexpr std::size_t slotCount = std::size_t{1} << slotBits;
    static constexpr Cycle slotMask = slotCount - 1;
    static constexpr std::size_t bitmapWords = slotCount / 64;

    /** Every event in [base, base + slotCount) lives in its slot.
     *  Callers guarantee when >= base (schedule() rejects the past
     *  and every pending event is >= base by invariant). */
    bool inWindow(Cycle when) const
    {
        return cyclesSince(when, base) < slotCount;
    }

    void place(Event e);

    /** Re-derive minDue/base after the previous minimum drained,
     *  then pull newly-in-window overflow events into the ring. */
    void recomputeMin();

    /**
     * One slot holds events of exactly one cycle at a time: two
     * in-window cycles can only share a slot if they differ by a
     * multiple of slotCount, which the window bound excludes.
     */
    std::vector<std::vector<Event>> slots;
    std::array<std::uint64_t, bitmapWords> occupied{};
    std::map<Cycle, std::vector<Event>> overflow;
    Cycle base = 0;   //!< lower bound on every pending event
    Cycle minDue = 0; //!< earliest pending cycle (valid iff count > 0)
    std::size_t count = 0;
    std::uint64_t nextSeq = 0;
};

} // namespace cdp

#endif // CDP_SIM_EVENT_WHEEL_HH
