#include "mem/frame_allocator.hh"

#include <numeric>

namespace cdp
{

FrameAllocator::FrameAllocator(Addr base_pa, std::uint32_t frames,
                               bool scatter, std::uint64_t seed)
    : basePa(pageAlign(base_pa)), totalFrames(frames), scatter(scatter),
      rng(seed)
{
    if (frames == 0)
        throw std::runtime_error("FrameAllocator: zero frames");
}

Addr
FrameAllocator::allocate()
{
    if (nextIndex >= totalFrames)
        throw std::runtime_error("FrameAllocator: out of physical memory");

    std::uint32_t idx = nextIndex++;
    if (scatter) {
        // Affine permutation of the frame index space: idx -> a*idx+c
        // (mod totalFrames) with gcd(a, totalFrames) == 1. This is a
        // bijection, so no frame is handed out twice, while virtually
        // adjacent pages land in physically distant frames.
        std::uint64_t a = 2654435761ull; // Knuth multiplicative hash
        while (std::gcd(a, static_cast<std::uint64_t>(totalFrames)) != 1)
            ++a;
        const std::uint64_t c = 0x9e3779b9ull % totalFrames;
        idx = static_cast<std::uint32_t>(
            (a * idx + c) % totalFrames);
    }
    return basePa + idx * pageBytes;
}

} // namespace cdp
