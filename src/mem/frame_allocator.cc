#include "mem/frame_allocator.hh"

#include <numeric>

#include "snapshot/ckpt_io.hh"

namespace cdp
{

FrameAllocator::FrameAllocator(Addr base_pa, std::uint32_t frames,
                               bool scatter, std::uint64_t seed)
    : basePa(pageAlign(base_pa)), totalFrames(frames), scatter(scatter),
      rng(seed)
{
    if (frames == 0)
        throw std::runtime_error("FrameAllocator: zero frames");
}

Addr
FrameAllocator::allocate()
{
    if (nextIndex >= totalFrames)
        throw std::runtime_error("FrameAllocator: out of physical memory");

    std::uint32_t idx = nextIndex++;
    if (scatter) {
        // Affine permutation of the frame index space: idx -> a*idx+c
        // (mod totalFrames) with gcd(a, totalFrames) == 1. This is a
        // bijection, so no frame is handed out twice, while virtually
        // adjacent pages land in physically distant frames.
        std::uint64_t a = 2654435761ull; // Knuth multiplicative hash
        while (std::gcd(a, static_cast<std::uint64_t>(totalFrames)) != 1)
            ++a;
        const std::uint64_t c = 0x9e3779b9ull % totalFrames;
        idx = static_cast<std::uint32_t>(
            (a * idx + c) % totalFrames);
    }
    return basePa + idx * pageBytes;
}

void
FrameAllocator::saveState(snap::Writer &w) const
{
    w.u64(basePa);
    w.u64(totalFrames);
    w.boolean(scatter);
    w.u64(nextIndex);
    w.rng(rng);
}

void
FrameAllocator::loadState(snap::Reader &r)
{
    r.expectU64(basePa, "frame-allocator base");
    r.expectU64(totalFrames, "frame-allocator capacity");
    const bool savedScatter = r.boolean();
    if (savedScatter != scatter)
        r.fail("frame-allocator scatter mode mismatch");
    const std::uint64_t idx = r.u64();
    if (idx > totalFrames)
        r.fail("frame-allocator nextIndex " + std::to_string(idx) +
               " exceeds capacity " + std::to_string(totalFrames));
    nextIndex = static_cast<std::uint32_t>(idx);
    r.rng(rng);
}

} // namespace cdp
