#include "mem/backing_store.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "snapshot/ckpt_io.hh"

namespace cdp
{

BackingStore::Frame &
BackingStore::frameFor(Addr pa)
{
    const Addr page = pageNumber(pa);
    if (page == lastPage)
        return *lastFrame;
    auto &slot = frames[page];
    if (!slot) {
        slot = std::make_unique<Frame>();
        slot->fill(0);
    }
    lastPage = page;
    lastFrame = slot.get();
    return *slot;
}

const BackingStore::Frame *
BackingStore::frameForRead(Addr pa) const
{
    const Addr page = pageNumber(pa);
    if (page == lastPage)
        return lastFrame;
    auto it = frames.find(page);
    if (it == frames.end())
        return nullptr;
    lastPage = page;
    lastFrame = it->second.get();
    return it->second.get();
}

std::uint8_t
BackingStore::read8(Addr pa) const
{
    const Frame *f = frameForRead(pa);
    return f ? (*f)[pageOffset(pa)] : 0;
}

void
BackingStore::write8(Addr pa, std::uint8_t v)
{
    frameFor(pa)[pageOffset(pa)] = v;
}

std::uint32_t
BackingStore::read32(Addr pa) const
{
    // Fast path: word fully inside one frame.
    if (pageOffset(pa) <= pageBytes - 4) {
        const Frame *f = frameForRead(pa);
        if (!f)
            return 0;
        std::uint32_t v;
        std::memcpy(&v, f->data() + pageOffset(pa), 4);
        return v; // host is little-endian; simulated ISA is too
    }
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(read8(pa + i)) << (8 * i);
    return v;
}

void
BackingStore::write32(Addr pa, std::uint32_t v)
{
    if (pageOffset(pa) <= pageBytes - 4) {
        std::memcpy(frameFor(pa).data() + pageOffset(pa), &v, 4);
        return;
    }
    for (unsigned i = 0; i < 4; ++i)
        write8(pa + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

void
BackingStore::readLine(Addr pa, std::uint8_t *out) const
{
    const Addr base = lineAlign(pa);
    const Frame *f = frameForRead(base);
    if (f) {
        std::memcpy(out, f->data() + pageOffset(base), lineBytes);
    } else {
        std::memset(out, 0, lineBytes);
    }
}

void
BackingStore::write(Addr pa, const std::uint8_t *src, Addr len)
{
    for (Addr i = 0; i < len; ++i)
        write8(pa + i, src[i]);
}

void
BackingStore::saveState(snap::Writer &w) const
{
    // Key-sorted iteration: the map is hash-ordered, the checkpoint
    // must be byte-deterministic.
    std::vector<Addr> pages;
    pages.reserve(frames.size());
    for (const auto &kv : frames)
        pages.push_back(kv.first);
    std::sort(pages.begin(), pages.end());

    w.u64(pages.size());
    for (const Addr page : pages) {
        w.u32(page);
        w.bytes(frames.at(page)->data(), pageBytes);
    }
}

void
BackingStore::loadState(snap::Reader &r)
{
    const std::uint64_t n = r.u64();
    frames.clear();
    lastPage = ~Addr{0};
    lastFrame = nullptr;
    frames.reserve(n);
    Addr prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr page = r.u32();
        if (i > 0 && page <= prev)
            r.fail("backing-store page numbers not strictly increasing");
        prev = page;
        auto frame = std::make_unique<Frame>();
        r.bytes(frame->data(), pageBytes);
        frames[page] = std::move(frame);
    }
}

} // namespace cdp
