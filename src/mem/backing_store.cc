#include "mem/backing_store.hh"

#include <cstring>

namespace cdp
{

BackingStore::Frame &
BackingStore::frameFor(Addr pa)
{
    auto &slot = frames[pageNumber(pa)];
    if (!slot) {
        slot = std::make_unique<Frame>();
        slot->fill(0);
    }
    return *slot;
}

const BackingStore::Frame *
BackingStore::frameForRead(Addr pa) const
{
    auto it = frames.find(pageNumber(pa));
    return it == frames.end() ? nullptr : it->second.get();
}

std::uint8_t
BackingStore::read8(Addr pa) const
{
    const Frame *f = frameForRead(pa);
    return f ? (*f)[pageOffset(pa)] : 0;
}

void
BackingStore::write8(Addr pa, std::uint8_t v)
{
    frameFor(pa)[pageOffset(pa)] = v;
}

std::uint32_t
BackingStore::read32(Addr pa) const
{
    // Fast path: word fully inside one frame.
    if (pageOffset(pa) <= pageBytes - 4) {
        const Frame *f = frameForRead(pa);
        if (!f)
            return 0;
        std::uint32_t v;
        std::memcpy(&v, f->data() + pageOffset(pa), 4);
        return v; // host is little-endian; simulated ISA is too
    }
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(read8(pa + i)) << (8 * i);
    return v;
}

void
BackingStore::write32(Addr pa, std::uint32_t v)
{
    if (pageOffset(pa) <= pageBytes - 4) {
        std::memcpy(frameFor(pa).data() + pageOffset(pa), &v, 4);
        return;
    }
    for (unsigned i = 0; i < 4; ++i)
        write8(pa + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

void
BackingStore::readLine(Addr pa, std::uint8_t *out) const
{
    const Addr base = lineAlign(pa);
    const Frame *f = frameForRead(base);
    if (f) {
        std::memcpy(out, f->data() + pageOffset(base), lineBytes);
    } else {
        std::memset(out, 0, lineBytes);
    }
}

void
BackingStore::write(Addr pa, const std::uint8_t *src, Addr len)
{
    for (Addr i = 0; i < len; ++i)
        write8(pa + i, src[i]);
}

} // namespace cdp
