/**
 * @file
 * Physical frame allocator.
 *
 * Hands out physical page frames for the page tables and for mapped
 * virtual pages. Frames are allocated from a configurable physical
 * range; a pseudo-random permutation option scatters virtual-to-
 * physical mappings the way a long-running OS would, so physically
 * indexed structures (the UL2) do not see artificially contiguous
 * layouts.
 */

#ifndef CDP_MEM_FRAME_ALLOCATOR_HH
#define CDP_MEM_FRAME_ALLOCATOR_HH

#include <cstdint>
#include <stdexcept>

#include "common/rng.hh"
#include "common/types.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/**
 * Allocates physical frames, either sequentially or in a scattered
 * (pseudo-random within a window) order.
 */
class FrameAllocator
{
  public:
    /**
     * @param base_pa first physical address handed out (frame aligned)
     * @param frames number of frames available
     * @param scatter when true, hand frames out in shuffled order
     * @param seed shuffle seed
     */
    FrameAllocator(Addr base_pa, std::uint32_t frames,
                   bool scatter = true, std::uint64_t seed = 12345);

    /**
     * Allocate one frame.
     * @return physical address of the frame base.
     * @throw std::runtime_error when physical memory is exhausted.
     */
    Addr allocate();

    std::uint32_t allocated() const { return nextIndex; }
    std::uint32_t capacity() const { return totalFrames; }

    /** Serialize allocation progress (checkpointing). */
    void saveState(snap::Writer &w) const;

    /** Restore state; the allocator geometry must match. */
    void loadState(snap::Reader &r);

  private:
    Addr basePa;
    std::uint32_t totalFrames;
    std::uint32_t nextIndex = 0;
    bool scatter;
    Rng rng;
};

} // namespace cdp

#endif // CDP_MEM_FRAME_ALLOCATOR_HH
