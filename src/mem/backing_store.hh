/**
 * @file
 * Simulated physical memory.
 *
 * The content prefetcher predicts by *reading the bytes* of filled
 * cache lines, so the workloads' data structures must genuinely exist
 * in memory: a linked-list node holds the real (virtual) address of
 * its successor, little-endian, exactly where the struct layout puts
 * it. BackingStore provides that byte-addressable physical memory,
 * allocated lazily in 4-KByte frames.
 */

#ifndef CDP_MEM_BACKING_STORE_HH
#define CDP_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/**
 * Lazily allocated, frame-granular physical memory. Reads of frames
 * that were never written return zero bytes, mirroring a zero-filled
 * fresh page.
 */
class BackingStore
{
  public:
    /** Read a single byte at physical address @p pa. */
    std::uint8_t read8(Addr pa) const;

    /** Write a single byte. */
    void write8(Addr pa, std::uint8_t v);

    /**
     * Read a little-endian 32-bit word. The word may straddle a frame
     * boundary; it is assembled byte by byte.
     */
    std::uint32_t read32(Addr pa) const;

    /** Write a little-endian 32-bit word. */
    void write32(Addr pa, std::uint32_t v);

    /**
     * Copy one cache line (lineBytes bytes) starting at the
     * line-aligned physical address containing @p pa into @p out.
     */
    void readLine(Addr pa, std::uint8_t *out) const;

    /** Write @p len bytes from @p src starting at @p pa. */
    void write(Addr pa, const std::uint8_t *src, Addr len);

    /** Number of frames that have been materialized. */
    std::size_t framesTouched() const { return frames.size(); }

    /**
     * Host pointer to the base of the frame holding @p pa,
     * materializing it zero-filled. Frames are never deallocated
     * except by loadState(), so the pointer stays valid until then —
     * callers memoizing it must reset on restore.
     */
    std::uint8_t *pageData(Addr pa) { return frameFor(pa).data(); }

    /**
     * Host pointer to the frame holding @p pa, or nullptr if it was
     * never materialized (reads of such pages see zero bytes). Same
     * lifetime guarantee as pageData().
     */
    std::uint8_t *pageDataIfPresent(Addr pa)
    {
        const Addr page = pageNumber(pa);
        if (page == lastPage)
            return lastFrame->data();
        auto it = frames.find(page);
        if (it == frames.end())
            return nullptr;
        lastPage = page;
        lastFrame = it->second.get();
        return lastFrame->data();
    }

    /** Serialize every materialized frame in page-number order. */
    void saveState(snap::Writer &w) const;

    /** Replace all contents with the checkpointed frames. */
    void loadState(snap::Reader &r);

  private:
    using Frame = std::array<std::uint8_t, pageBytes>;

    /** Get the frame holding @p pa, creating it zero-filled. */
    Frame &frameFor(Addr pa);

    /** Get the frame holding @p pa, or nullptr if never written. */
    const Frame *frameForRead(Addr pa) const;

    std::unordered_map<Addr, std::unique_ptr<Frame>> frames;

    // cdplint: transient(lastPage, lastFrame) -- pure lookup memo over the frame map; frame storage is stable (unique_ptr) and loadState resets it
    /**
     * One-entry frame-lookup memo (reads and writes). Only
     * *materialized* frames are cached, so a hit is always valid:
     * frames are never deallocated except by loadState(), which
     * resets the memo.
     */
    mutable Addr lastPage = ~Addr{0};
    mutable Frame *lastFrame = nullptr;
};

} // namespace cdp

#endif // CDP_MEM_BACKING_STORE_HH
