#include "stats/stat.hh"

#include <algorithm>
#include <iomanip>
#include <limits>

#include "snapshot/ckpt_io.hh"

namespace cdp
{

Scalar::Scalar(StatGroup &group, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    group.add(this);
}

Distribution::Distribution(StatGroup &group, std::string name,
                           std::string desc, double lo, double hi,
                           unsigned nbuckets)
    : _name(std::move(name)), _desc(std::move(desc)), _lo(lo), _hi(hi),
      _bucketWidth((hi - lo) / (nbuckets ? nbuckets : 1)),
      _buckets(nbuckets ? nbuckets : 1, 0),
      _min(std::numeric_limits<double>::max()),
      _max(std::numeric_limits<double>::lowest())
{
    group.add(this);
}

void
Distribution::sample(double v)
{
    ++_count;
    _sum += v;
    _min = std::min(_min, v);
    _max = std::max(_max, v);
    if (v < _lo) {
        ++_underflow;
    } else if (v >= _hi) {
        ++_overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - _lo) / _bucketWidth);
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1;
        ++_buckets[idx];
    }
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = _overflow = _count = 0;
    _sum = 0.0;
    _min = std::numeric_limits<double>::max();
    _max = std::numeric_limits<double>::lowest();
}

void
Distribution::print(std::ostream &os) const
{
    os << _name << " count=" << _count;
    if (_count) {
        os << " mean=" << mean() << " min=" << _min << " max=" << _max;
    }
    os << " buckets=[";
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (i)
            os << ' ';
        os << _buckets[i];
    }
    os << "] under=" << _underflow << " over=" << _overflow;
}

Formula::Formula(StatGroup &group, std::string name, std::string desc,
                 std::function<double()> fn)
    : _name(std::move(name)), _desc(std::move(desc)), _fn(std::move(fn))
{
    group.add(this);
}

void
StatGroup::resetAll()
{
    for (auto *s : scalars)
        s->reset();
    for (auto *d : dists)
        d->reset();
    // Formulas hold no state of their own.
}

void
StatGroup::dump(std::ostream &os) const
{
    std::vector<const Scalar *> sorted(scalars.begin(), scalars.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const Scalar *a, const Scalar *b) {
                  return a->name() < b->name();
              });
    for (const auto *s : sorted) {
        os << std::left << std::setw(48) << s->name() << ' '
           << std::right << std::setw(16) << s->value()
           << "  # " << s->desc() << '\n';
    }

    std::vector<const Formula *> fsorted(formulas.begin(), formulas.end());
    std::sort(fsorted.begin(), fsorted.end(),
              [](const Formula *a, const Formula *b) {
                  return a->name() < b->name();
              });
    for (const auto *f : fsorted) {
        os << std::left << std::setw(48) << f->name() << ' '
           << std::right << std::setw(16) << std::fixed
           << std::setprecision(6) << f->value()
           << "  # " << f->desc() << '\n';
    }

    for (const auto *d : dists) {
        d->print(os);
        os << '\n';
    }
}

void
Distribution::saveState(snap::Writer &w) const
{
    w.u64(_buckets.size());
    for (const std::uint64_t b : _buckets)
        w.u64(b);
    w.u64(_underflow);
    w.u64(_overflow);
    w.u64(_count);
    w.f64(_sum);
    w.f64(_min);
    w.f64(_max);
}

void
Distribution::loadState(snap::Reader &r)
{
    const std::uint64_t n = r.u64();
    if (n != _buckets.size())
        r.fail("distribution '" + _name + "' has " +
               std::to_string(_buckets.size()) + " buckets, checkpoint has " +
               std::to_string(n));
    for (auto &b : _buckets)
        b = r.u64();
    _underflow = r.u64();
    _overflow = r.u64();
    _count = r.u64();
    _sum = r.f64();
    _min = r.f64();
    _max = r.f64();
}

void
StatGroup::saveValues(snap::Writer &w) const
{
    std::vector<const Scalar *> sorted(scalars.begin(), scalars.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const Scalar *a, const Scalar *b) {
                  return a->name() < b->name();
              });
    w.u64(sorted.size());
    for (const auto *s : sorted) {
        w.str(s->name());
        w.u64(s->value());
    }

    std::vector<const Distribution *> dsorted(dists.begin(), dists.end());
    std::sort(dsorted.begin(), dsorted.end(),
              [](const Distribution *a, const Distribution *b) {
                  return a->name() < b->name();
              });
    w.u64(dsorted.size());
    for (const auto *d : dsorted) {
        w.str(d->name());
        d->saveState(w);
    }
}

void
StatGroup::loadValues(snap::Reader &r)
{
    const std::uint64_t nscalars = r.u64();
    if (nscalars != scalars.size())
        r.fail("checkpoint has " + std::to_string(nscalars) +
               " scalar stats, this simulator registers " +
               std::to_string(scalars.size()));
    std::map<std::string, Scalar *> byName;
    for (auto *s : scalars)
        byName[s->name()] = s;
    for (std::uint64_t i = 0; i < nscalars; ++i) {
        const std::string name = r.str();
        const std::uint64_t value = r.u64();
        const auto it = byName.find(name);
        if (it == byName.end())
            r.fail("checkpoint stat '" + name +
                   "' is unknown to this simulator");
        it->second->set(value);
    }

    const std::uint64_t ndists = r.u64();
    if (ndists != dists.size())
        r.fail("checkpoint has " + std::to_string(ndists) +
               " distributions, this simulator registers " +
               std::to_string(dists.size()));
    std::map<std::string, Distribution *> distByName;
    for (auto *d : dists)
        distByName[d->name()] = d;
    for (std::uint64_t i = 0; i < ndists; ++i) {
        const std::string name = r.str();
        const auto it = distByName.find(name);
        if (it == distByName.end())
            r.fail("checkpoint distribution '" + name +
                   "' is unknown to this simulator");
        it->second->loadState(r);
    }
}

const Scalar *
StatGroup::findScalar(const std::string &name) const
{
    for (const auto *s : scalars) {
        if (s->name() == name)
            return s;
    }
    return nullptr;
}

const Formula *
StatGroup::findFormula(const std::string &name) const
{
    for (const auto *f : formulas) {
        if (f->name() == name)
            return f;
    }
    return nullptr;
}

} // namespace cdp
