/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components register named statistics against a StatGroup; the group
 * can be reset at the end of warm-up (the paper discards everything
 * before 7.5 M retired uops) and dumped as text at the end of a run.
 * Three kinds of statistic are provided:
 *
 *  - Scalar: a named counter / value.
 *  - Distribution: a bucketed histogram with mean/min/max.
 *  - Formula: a value computed from other statistics at dump time
 *    (e.g. coverage = prefetch_hits / baseline_misses).
 */

#ifndef CDP_STATS_STAT_HH
#define CDP_STATS_STAT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

class StatGroup;

/**
 * A named 64-bit counter with an optional description. Scalars are
 * the workhorse statistic: hits, misses, prefetches issued, etc.
 */
class Scalar
{
  public:
    Scalar() = default;

    /** Register this scalar with @p group under @p name. */
    Scalar(StatGroup &group, std::string name, std::string desc);

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(std::uint64_t v) { _value += v; return *this; }
    void set(std::uint64_t v) { _value = v; }
    void reset() { _value = 0; }

    std::uint64_t value() const { return _value; }
    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

  private:
    std::string _name;
    std::string _desc;
    std::uint64_t _value = 0;
};

/**
 * A fixed-bucket histogram. Samples outside the configured range are
 * accumulated in underflow/overflow buckets so no sample is lost.
 */
class Distribution
{
  public:
    Distribution() = default;

    /**
     * Register a histogram covering [lo, hi) with @p nbuckets equal
     * buckets.
     */
    Distribution(StatGroup &group, std::string name, std::string desc,
                 double lo, double hi, unsigned nbuckets);

    /** Record one sample. */
    void sample(double v);

    void reset();

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _min; }
    double max() const { return _max; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    const std::string &name() const { return _name; }

    /** Print "name mean=... [bucket counts]". */
    void print(std::ostream &os) const;

    /** Serialize the mutable sample state (checkpointing). */
    void saveState(snap::Writer &w) const;

    /** Restore state saved by saveState; geometry must match. */
    void loadState(snap::Reader &r);

  private:
    // cdplint: transient(_name, _desc, _lo, _hi, _bucketWidth) -- registration identity and bucket geometry are construction-time; loadState cross-checks geometry instead of overwriting it
    std::string _name;
    std::string _desc;
    double _lo = 0.0;
    double _hi = 1.0;
    double _bucketWidth = 1.0;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * A statistic computed on demand from other statistics. The closure
 * is evaluated at dump()/value() time, so formulas always reflect the
 * current counter values.
 */
class Formula
{
  public:
    Formula() = default;
    Formula(StatGroup &group, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return _fn ? _fn() : 0.0; }
    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

  private:
    std::string _name;
    std::string _desc;
    std::function<double()> _fn;
};

/**
 * Owner of a set of statistics. Components hold a reference to a
 * StatGroup and construct their stats against it; the simulator owns
 * the group and resets/dumps it around the measurement phase.
 *
 * Registration stores raw pointers, so statistics must outlive the
 * group or be deregistered by destroying the group first; in this
 * code base both the group and the stats live inside the same
 * simulator object, which guarantees the ordering.
 */
class StatGroup
{
  public:
    StatGroup() = default;
    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    void add(Scalar *s) { scalars.push_back(s); }
    void add(Distribution *d) { dists.push_back(d); }
    void add(Formula *f) { formulas.push_back(f); }

    /** Zero every resettable statistic (end of warm-up). */
    void resetAll();

    /** Dump all statistics, sorted by name, to @p os. */
    void dump(std::ostream &os) const;

    /**
     * Look up a scalar by name.
     * @return nullptr when no scalar has that name.
     */
    const Scalar *findScalar(const std::string &name) const;

    /** Look up a formula by name; nullptr when absent. */
    const Formula *findFormula(const std::string &name) const;

    /**
     * Serialize every scalar and distribution value, keyed by name in
     * sorted order (formulas are recomputed, never stored). Part of
     * the checkpoint format, DESIGN.md §11.
     */
    void saveValues(snap::Writer &w) const;

    /**
     * Restore values saved by saveValues into the registered stats.
     * The set of registered names must match the checkpoint exactly;
     * any skew throws snap::SnapshotError.
     */
    void loadValues(snap::Reader &r);

  private:
    std::vector<Scalar *> scalars;
    std::vector<Distribution *> dists;
    std::vector<Formula *> formulas;
};

} // namespace cdp

#endif // CDP_STATS_STAT_HH
