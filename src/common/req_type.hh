/**
 * @file
 * Memory request classes and their arbiter priorities.
 *
 * Split out of memsys/request.hh so layers that only need the
 * request-type vocabulary (the obs/ tracing layer in particular,
 * which must not include simulator-internal headers) can get it
 * from common/.
 *
 * The paper's arbiters maintain a strict priority order: demand
 * requests first, then stride prefetches (higher accuracy), then
 * content prefetches (Section 3.5). Page-walk traffic is demand-class
 * (a demand load cannot complete without its translation).
 */

#ifndef CDP_COMMON_REQ_TYPE_HH
#define CDP_COMMON_REQ_TYPE_HH

#include <cstdint>

namespace cdp
{

/** Originator / class of a memory transaction. */
enum class ReqType : std::uint8_t
{
    DemandLoad,
    DemandStore,
    PageWalk,
    StridePrefetch,
    ContentPrefetch,
};

/** True for the two speculative request classes. */
constexpr bool
isPrefetch(ReqType t)
{
    return t == ReqType::StridePrefetch || t == ReqType::ContentPrefetch;
}

/**
 * Arbiter priority class; lower value = higher priority.
 * Demand and page-walk traffic outrank stride prefetches, which
 * outrank content prefetches.
 */
constexpr unsigned
priorityOf(ReqType t)
{
    switch (t) {
      case ReqType::DemandLoad:
      case ReqType::DemandStore:
      case ReqType::PageWalk:
        return 0;
      case ReqType::StridePrefetch:
        return 1;
      case ReqType::ContentPrefetch:
        return 2;
    }
    return 2;
}

/** Number of distinct priority classes. */
constexpr unsigned numPriorities = 3;

/** Human-readable request-type name (for traces and tests). */
inline const char *
reqTypeName(ReqType t)
{
    switch (t) {
      case ReqType::DemandLoad: return "demand-load";
      case ReqType::DemandStore: return "demand-store";
      case ReqType::PageWalk: return "page-walk";
      case ReqType::StridePrefetch: return "stride-pf";
      case ReqType::ContentPrefetch: return "content-pf";
    }
    return "?";
}

} // namespace cdp

#endif // CDP_COMMON_REQ_TYPE_HH
