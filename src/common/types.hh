/**
 * @file
 * Fundamental types and constants shared by every module of the
 * content-directed data prefetching (CDP) simulator.
 *
 * The reproduced system (Cooksey et al., ASPLOS 2002) models a 32-bit
 * IA-32-like machine: 32-bit virtual and physical addresses, 64-byte
 * cache lines, and 4-KByte pages. Those constants live here so that
 * every substrate agrees on them.
 */

#ifndef CDP_COMMON_TYPES_HH
#define CDP_COMMON_TYPES_HH

#include <cstdint>

#include "check/check.hh"

namespace cdp
{

/** A 32-bit address; used for both virtual and physical addresses. */
using Addr = std::uint32_t;

/** Simulation time, measured in processor clock cycles. */
using Cycle = std::uint64_t;

/** Monotonically increasing identifier for memory transactions. */
using ReqId = std::uint64_t;

/** Cache line size in bytes (Table 1 of the paper). */
constexpr Addr lineBytes = 64;

/** log2(lineBytes); used for line-address arithmetic. */
constexpr unsigned lineShift = 6;

/** Page size in bytes (Table 1 of the paper). */
constexpr Addr pageBytes = 4096;

/** log2(pageBytes). */
constexpr unsigned pageShift = 12;

/** Width of an address-sized word scanned by the content prefetcher. */
constexpr Addr wordBytes = 4;

/** Strip the line offset from an address. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~(lineBytes - 1);
}

/** Byte offset of an address within its cache line. */
constexpr Addr
lineOffset(Addr a)
{
    return a & (lineBytes - 1);
}

/** Strip the page offset from an address. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~(pageBytes - 1);
}

/** Virtual (or physical) page number of an address. */
constexpr Addr
pageNumber(Addr a)
{
    return a >> pageShift;
}

/** Byte offset of an address within its page. */
constexpr Addr
pageOffset(Addr a)
{
    return a & (pageBytes - 1);
}

/**
 * Elapsed cycles from @p then to @p now.
 *
 * Cycle is unsigned, so a reversed subtraction silently yields an
 * astronomically large latency instead of a crash — the classic
 * simulator timing bug. All Cycle differences in the tree go through
 * this helper (enforced by tools/cdplint's cycle-arith rule); under
 * CDP_ENABLE_CHECKS a non-monotonic pair aborts.
 */
inline Cycle
cyclesSince(Cycle now, Cycle then)
{
    CDP_CHECK(now >= then);
    // cdplint: allow(cycle-arith) -- this is the checked helper itself
    return now - then;
}

/**
 * Cycles remaining until @p deadline as seen from @p now; the checked
 * dual of cyclesSince for forward-looking waits.
 */
inline Cycle
cyclesUntil(Cycle deadline, Cycle now)
{
    CDP_CHECK(deadline >= now);
    // cdplint: allow(cycle-arith) -- this is the checked helper itself
    return deadline - now;
}

} // namespace cdp

#endif // CDP_COMMON_TYPES_HH
