/**
 * @file
 * A small, fast, deterministic random number generator used by the
 * workload generators and directed testers.
 *
 * The simulator must be bit-for-bit reproducible across runs so that
 * paired baseline/prefetcher experiments see identical uop streams;
 * std::mt19937_64 would work but is heavyweight to copy around, so a
 * splitmix64/xoshiro-style generator is used instead.
 */

#ifndef CDP_COMMON_RNG_HH
#define CDP_COMMON_RNG_HH

#include <cstdint>

namespace cdp
{

/**
 * xorshift128+ generator seeded through splitmix64. Deterministic,
 * copyable, and cheap enough to embed in every workload generator.
 */
class Rng
{
  public:
    /** Construct with a seed; equal seeds give equal sequences. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 to spread a possibly low-entropy seed.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            return z ^ (z >> 31);
        };
        s0 = next();
        s1 = next();
        if (s0 == 0 && s1 == 0)
            s1 = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        std::uint64_t x = s0;
        const std::uint64_t y = s1;
        s0 = y;
        x ^= x << 23;
        s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1 + y;
    }

    /** Next 32-bit value. */
    std::uint32_t next32() { return static_cast<std::uint32_t>(next64() >> 32); }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next64() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Export the raw state words (checkpointing). */
    void
    getState(std::uint64_t &out_s0, std::uint64_t &out_s1) const
    {
        out_s0 = s0;
        out_s1 = s1;
    }

    /**
     * Restore a state captured with getState(). The all-zero state is
     * a fixed point of xorshift128+, so it is nudged exactly as the
     * constructor does.
     */
    void
    setState(std::uint64_t new_s0, std::uint64_t new_s1)
    {
        s0 = new_s0;
        s1 = new_s1;
        if (s0 == 0 && s1 == 0)
            s1 = 1;
    }

  private:
    std::uint64_t s0;
    std::uint64_t s1;
};

} // namespace cdp

#endif // CDP_COMMON_RNG_HH
