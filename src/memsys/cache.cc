#include "memsys/cache.hh"

#include <stdexcept>

#include "check/check.hh"
#include "snapshot/ckpt_io.hh"

namespace cdp
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(std::uint64_t size_bytes, unsigned ways, StatGroup *stats,
             const std::string &name)
    : ways(ways),
      hits(stats ? *stats : dummyGroup, name + ".hits", "cache hits"),
      misses(stats ? *stats : dummyGroup, name + ".misses",
             "cache misses"),
      evictions(stats ? *stats : dummyGroup, name + ".evictions",
                "valid lines displaced")
{
    if (ways == 0)
        throw std::invalid_argument("Cache: zero ways");
    if (size_bytes % (static_cast<std::uint64_t>(ways) * lineBytes) != 0)
        throw std::invalid_argument("Cache: size not divisible by ways");
    const std::uint64_t s = size_bytes / ways / lineBytes;
    if (!isPow2(s))
        throw std::invalid_argument("Cache: set count must be pow2");
    sets = static_cast<unsigned>(s);
    setMask = sets - 1;
    lines.resize(static_cast<std::size_t>(sets) * ways);
}

CacheLine *
Cache::lookup(Addr addr)
{
    // Hot path: one shift + one mask for the set (setMask is
    // precomputed), then a bounded pointer scan that exits on the
    // matching way. The tag holds the full line address, so a single
    // compare decides validity + match for valid lines.
    const Addr la = lineAlign(addr);
    CacheLine *const base = setBase(la);
    CacheLine *const end = base + ways;
    for (CacheLine *l = base; l != end; ++l) {
        if (l->valid && l->tag == la) {
            l->lruStamp = ++stamp;
            ++hits;
            return l;
        }
    }
    ++misses;
    return nullptr;
}

const CacheLine *
Cache::probe(Addr addr) const
{
    const Addr la = lineAlign(addr);
    const CacheLine *const base = setBase(la);
    const CacheLine *const end = base + ways;
    for (const CacheLine *l = base; l != end; ++l) {
        if (l->valid && l->tag == la)
            return l;
    }
    return nullptr;
}

CacheLine *
Cache::probeMutable(Addr addr)
{
    return const_cast<CacheLine *>(
        static_cast<const Cache *>(this)->probe(addr));
}

CacheLine &
Cache::insert(Addr addr, Eviction *evicted)
{
    const Addr la = lineAlign(addr);
    CacheLine *base = setBase(la);
    CacheLine *victim = &base[0];
    for (unsigned w = 0; w < ways; ++w) {
        CacheLine &l = base[w];
        if (l.valid && l.tag == la) {
            victim = &l; // refill of a resident line: reuse in place
            break;
        }
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lruStamp < victim->lruStamp)
            victim = &l;
    }

    if (evicted) {
        evicted->valid = victim->valid && victim->tag != la;
        evicted->lineAddr = victim->tag;
        evicted->prefetched = victim->prefetched;
        evicted->fillType = victim->fillType;
        evicted->fillDepth = victim->fillDepth;
        evicted->everUsed = victim->everUsed;
    }
    if (victim->valid && victim->tag != la)
        ++evictions;

    victim->tag = la;
    victim->valid = true;
    victim->lruStamp = ++stamp;
    victim->prefetched = false;
    victim->fillType = ReqType::DemandLoad;
    victim->storedDepth = 0;
    victim->fillDepth = 0;
    victim->provRoot = 0;
    victim->fillCycle = 0;
    victim->everUsed = false;
    victim->strideOverlap = false;

#if CDP_CHECKS_ENABLED
    // Tag uniqueness per set: a fill must never leave two ways
    // claiming the same line.
    unsigned copies = 0;
    for (unsigned w = 0; w < ways; ++w)
        copies += (base[w].valid && base[w].tag == la) ? 1 : 0;
    CDP_CHECK(copies == 1);
#endif
    return *victim;
}

void
Cache::invalidate(Addr addr)
{
    CacheLine *l = probeMutable(addr);
    if (l)
        l->valid = false;
}

void
Cache::flushAll()
{
    for (auto &l : lines)
        l.valid = false;
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (const auto &l : lines)
        n += l.valid ? 1 : 0;
    return n;
}

void
Cache::saveState(snap::Writer &w) const
{
    w.u64(ways);
    w.u64(sets);
    w.u64(stamp);
    for (const CacheLine &l : lines) {
        w.u32(l.tag);
        w.u64(l.lruStamp);
        w.boolean(l.valid);
        w.boolean(l.prefetched);
        w.u8(static_cast<std::uint8_t>(l.fillType));
        w.u8(l.storedDepth);
        w.u8(l.fillDepth);
        w.u64(l.provRoot);
        w.u64(l.fillCycle);
        w.boolean(l.everUsed);
        w.boolean(l.strideOverlap);
    }
}

void
Cache::loadState(snap::Reader &r)
{
    r.expectU64(ways, "cache associativity");
    r.expectU64(sets, "cache sets");
    stamp = r.u64();
    for (CacheLine &l : lines) {
        l.tag = r.u32();
        l.lruStamp = r.u64();
        l.valid = r.boolean();
        l.prefetched = r.boolean();
        const std::uint8_t type = r.u8();
        if (type > static_cast<std::uint8_t>(ReqType::ContentPrefetch))
            r.fail("cache line fill type " + std::to_string(type) +
                   " out of range");
        l.fillType = static_cast<ReqType>(type);
        l.storedDepth = r.u8();
        l.fillDepth = r.u8();
        l.provRoot = r.u64();
        l.fillCycle = r.u64();
        l.everUsed = r.boolean();
        l.strideOverlap = r.boolean();
    }
}

} // namespace cdp
