/**
 * @file
 * Front-side bus + DRAM timing model.
 *
 * Table 1: 4.26 GByte/s bandwidth (133 MHz, 8 B, quad pumped) and a
 * 460-processor-cycle round-trip latency at 4 GHz (8 bus cycles
 * through the chipset = 240 cycles, 55 ns DRAM access = 220 cycles).
 *
 * A 64-byte line at 4.26 GB/s occupies the bus for ~15 ns = 60
 * processor cycles, so the model is a single server with a fixed
 * occupancy per transfer and a fixed pipe latency: a transfer that
 * *starts* at cycle S finishes occupying the bus at S + occupancy and
 * delivers its data at S + latency. Strict priority is enforced by
 * the bus arbiter in front of this server (QueuedArbiter); once a
 * transfer starts it cannot be preempted.
 */

#ifndef CDP_MEMSYS_BUS_HH
#define CDP_MEMSYS_BUS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/**
 * Single-server bus/DRAM latency model.
 */
class Bus
{
  public:
    /**
     * @param latency_cycles request-to-data round trip
     * @param occupancy_cycles per-line bus occupancy (bandwidth)
     */
    Bus(Cycle latency_cycles = 460, Cycle occupancy_cycles = 60,
        StatGroup *stats = nullptr, const std::string &name = "bus");

    /**
     * Start a transfer no earlier than @p now.
     * @return the cycle the fill data is available.
     */
    Cycle service(Cycle now);

    /** Would a transfer issued at @p now start immediately? */
    bool freeAt(Cycle now) const { return busyUntil <= now; }

    /** Cycle at which the bus next goes idle. */
    Cycle freeCycle() const { return busyUntil; }

    Cycle latencyCycles() const { return latency; }
    Cycle occupancyCycles() const { return occupancy; }
    std::uint64_t transferCount() const { return transfers.value(); }

    /** Total cycles the bus spent occupied (bandwidth accounting). */
    std::uint64_t busyCycles() const { return cyclesBusy.value(); }

    /** Serialize the occupancy horizon (checkpointing). */
    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    Cycle latency;
    Cycle occupancy;
    Cycle busyUntil = 0;

    // cdplint: transient(dummyGroup, transfers, cyclesBusy) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyGroup;
    Scalar transfers;
    Scalar cyclesBusy;
};

} // namespace cdp

#endif // CDP_MEMSYS_BUS_HH
