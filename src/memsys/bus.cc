#include "memsys/bus.hh"

#include <algorithm>

namespace cdp
{

Bus::Bus(Cycle latency_cycles, Cycle occupancy_cycles, StatGroup *stats,
         const std::string &name)
    : latency(latency_cycles), occupancy(occupancy_cycles),
      transfers(stats ? *stats : dummyGroup, name + ".transfers",
                "line transfers serviced"),
      cyclesBusy(stats ? *stats : dummyGroup, name + ".busy_cycles",
                 "cycles the bus was occupied")
{
}

Cycle
Bus::service(Cycle now)
{
    const Cycle start = std::max(now, busyUntil);
    busyUntil = start + occupancy;
    ++transfers;
    cyclesBusy += occupancy;
    return start + latency;
}

} // namespace cdp
