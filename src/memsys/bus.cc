#include "memsys/bus.hh"

#include <algorithm>

#include "snapshot/ckpt_io.hh"

namespace cdp
{

Bus::Bus(Cycle latency_cycles, Cycle occupancy_cycles, StatGroup *stats,
         const std::string &name)
    : latency(latency_cycles), occupancy(occupancy_cycles),
      transfers(stats ? *stats : dummyGroup, name + ".transfers",
                "line transfers serviced"),
      cyclesBusy(stats ? *stats : dummyGroup, name + ".busy_cycles",
                 "cycles the bus was occupied")
{
}

Cycle
Bus::service(Cycle now)
{
    const Cycle start = std::max(now, busyUntil);
    busyUntil = start + occupancy;
    ++transfers;
    cyclesBusy += occupancy;
    return start + latency;
}

void
Bus::saveState(snap::Writer &w) const
{
    w.u64(latency);
    w.u64(occupancy);
    w.u64(busyUntil);
}

void
Bus::loadState(snap::Reader &r)
{
    r.expectU64(latency, "bus latency");
    r.expectU64(occupancy, "bus occupancy");
    busyUntil = r.u64();
}

} // namespace cdp
