/**
 * @file
 * Miss-status holding registers: the in-flight transaction book.
 *
 * Section 3.5: before a prefetch is enqueued, "both L2 and bus
 * arbiters are checked to see if a matching memory transaction is
 * currently in-flight. If such a transaction is found, the prefetch
 * request is dropped. In the event that a demand load encounters an
 * in-flight prefetch memory transaction for the same cache line
 * address, the prefetch request is promoted to the priority and depth
 * of the demand request." The MSHR file implements both checks.
 */

#ifndef CDP_MEMSYS_MSHR_HH
#define CDP_MEMSYS_MSHR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "memsys/request.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace check { struct Access; }

/** One in-flight line fill. */
struct MshrEntry
{
    Addr linePa = 0;
    Addr lineVa = 0;
    /**
     * Virtual effective address that triggered the request (demand
     * EA, or the candidate pointer value for content prefetches); it
     * becomes the compare-bits reference when the fill is scanned.
     */
    Addr vaddr = 0;
    ReqType type = ReqType::DemandLoad;
    unsigned depth = 0;
    /** Transaction id (assigned by the memory system at creation). */
    ReqId id = 0;
    /**
     * Provenance root: the demand miss this transaction descends
     * from (own id for demands; see MemRequest::root). Survives
     * merging and promotion so fills stay attributable.
     */
    ReqId root = 0;
    /** Provenance hop index (see MemRequest::hop). */
    unsigned hop = 0;
    /** Cycle the fill data arrives (bus completion). */
    Cycle completion = 0;
    /** A demand matched this entry while it was a prefetch. */
    bool promoted = false;
    /** Stride prefetcher had also issued for this line. */
    bool strideOverlap = false;
    /** Width (next/prev-line) prefetch: fill is not chain-scanned. */
    bool widthLine = false;
    /** Injected bad prefetch (Section 3.5 pollution limit study). */
    bool pollution = false;
};

/**
 * Fixed-capacity table of in-flight fills, keyed by physical line
 * address.
 */
class MshrFile
{
  public:
    explicit MshrFile(unsigned capacity, StatGroup *stats = nullptr,
                      const std::string &name = "mshr");

    bool full() const { return entries.size() >= capacity; }
    std::size_t size() const { return entries.size(); }

    /** Find the in-flight fill for @p line_pa, if any. */
    MshrEntry *find(Addr line_pa);
    const MshrEntry *find(Addr line_pa) const;

    /**
     * Allocate an entry.
     * @return false when the file is full (caller drops or stalls).
     */
    bool allocate(const MshrEntry &e);

    /** Retire the entry for @p line_pa (fill completed). */
    void release(Addr line_pa);

    /**
     * Promote an in-flight prefetch to demand class. Records the
     * promotion so the fill path can credit a partial latency mask;
     * the trigger EA is replaced by the demand's so the eventual fill
     * is scanned against a demand reference (Figure 3, right side).
     * @return true when the entry existed and was a prefetch.
     */
    bool promote(Addr line_pa, unsigned new_depth, Addr new_vaddr);

    std::uint64_t allocationCount() const { return allocations.value(); }
    std::uint64_t promotionCount() const { return promotions.value(); }

  private:
    friend struct check::Access;

    unsigned capacity;
    std::unordered_map<Addr, MshrEntry> entries;

    StatGroup dummyGroup;
    Scalar allocations;
    Scalar promotions;
    Scalar rejections;
};

} // namespace cdp

#endif // CDP_MEMSYS_MSHR_HH
