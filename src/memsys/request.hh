/**
 * @file
 * Memory transaction types shared by the caches, arbiters, bus, and
 * prefetchers.
 *
 * The paper's arbiters maintain a strict priority order: demand
 * requests first, then stride prefetches (higher accuracy), then
 * content prefetches (Section 3.5). Page-walk traffic is demand-class
 * (a demand load cannot complete without its translation).
 */

#ifndef CDP_MEMSYS_REQUEST_HH
#define CDP_MEMSYS_REQUEST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace cdp
{

/** Originator / class of a memory transaction. */
enum class ReqType : std::uint8_t
{
    DemandLoad,
    DemandStore,
    PageWalk,
    StridePrefetch,
    ContentPrefetch,
};

/** True for the two speculative request classes. */
constexpr bool
isPrefetch(ReqType t)
{
    return t == ReqType::StridePrefetch || t == ReqType::ContentPrefetch;
}

/**
 * Arbiter priority class; lower value = higher priority.
 * Demand and page-walk traffic outrank stride prefetches, which
 * outrank content prefetches.
 */
constexpr unsigned
priorityOf(ReqType t)
{
    switch (t) {
      case ReqType::DemandLoad:
      case ReqType::DemandStore:
      case ReqType::PageWalk:
        return 0;
      case ReqType::StridePrefetch:
        return 1;
      case ReqType::ContentPrefetch:
        return 2;
    }
    return 2;
}

/** Number of distinct priority classes. */
constexpr unsigned numPriorities = 3;

/** Human-readable request-type name (for traces and tests). */
inline const char *
reqTypeName(ReqType t)
{
    switch (t) {
      case ReqType::DemandLoad: return "demand-load";
      case ReqType::DemandStore: return "demand-store";
      case ReqType::PageWalk: return "page-walk";
      case ReqType::StridePrefetch: return "stride-pf";
      case ReqType::ContentPrefetch: return "content-pf";
    }
    return "?";
}

/**
 * One memory transaction. Carried through arbiters, the bus, and the
 * MSHR file. Virtual and physical line addresses are both kept: the
 * L1 is virtually indexed, the UL2 physically indexed, and the
 * content prefetcher needs the *virtual* effective address of the
 * trigger to run its compare-bits heuristic.
 */
struct MemRequest
{
    ReqId id = 0;
    ReqType type = ReqType::DemandLoad;
    Addr vaddr = 0;   //!< full virtual effective address
    Addr lineVa = 0;  //!< line-aligned virtual address
    Addr linePa = 0;  //!< line-aligned physical address
    /**
     * Request depth: 0 for demand fetches, 1 for prefetches triggered
     * by a demand miss, +1 per chained prefetch (Section 3.4.1).
     */
    unsigned depth = 0;
    /**
     * Provenance root: ReqId of the demand miss whose fill (directly
     * or through chained scans) spawned this request. A demand is its
     * own root. 0 = unattributed (e.g. injected pollution).
     */
    ReqId root = 0;
    /** Provenance hop: index within the scan that emitted it. */
    unsigned hop = 0;
    /** Next/prev-line companion of a candidate (width prefetch). */
    bool widthLine = false;
    Cycle enqueued = 0; //!< cycle the request entered its arbiter

    unsigned priority() const { return priorityOf(type); }
};

} // namespace cdp

#endif // CDP_MEMSYS_REQUEST_HH
