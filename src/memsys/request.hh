/**
 * @file
 * Memory transaction types shared by the caches, arbiters, bus, and
 * prefetchers. The request-class vocabulary (ReqType, priorityOf,
 * reqTypeName) lives in common/req_type.hh so observer code can name
 * request classes without depending on memsys/.
 */

#ifndef CDP_MEMSYS_REQUEST_HH
#define CDP_MEMSYS_REQUEST_HH

#include <cstdint>

#include "common/req_type.hh"
#include "common/types.hh"

namespace cdp
{

/**
 * One memory transaction. Carried through arbiters, the bus, and the
 * MSHR file. Virtual and physical line addresses are both kept: the
 * L1 is virtually indexed, the UL2 physically indexed, and the
 * content prefetcher needs the *virtual* effective address of the
 * trigger to run its compare-bits heuristic.
 */
struct MemRequest
{
    ReqId id = 0;
    ReqType type = ReqType::DemandLoad;
    Addr vaddr = 0;   //!< full virtual effective address
    Addr lineVa = 0;  //!< line-aligned virtual address
    Addr linePa = 0;  //!< line-aligned physical address
    /**
     * Request depth: 0 for demand fetches, 1 for prefetches triggered
     * by a demand miss, +1 per chained prefetch (Section 3.4.1).
     */
    unsigned depth = 0;
    /**
     * Provenance root: ReqId of the demand miss whose fill (directly
     * or through chained scans) spawned this request. A demand is its
     * own root. 0 = unattributed (e.g. injected pollution).
     */
    ReqId root = 0;
    /** Provenance hop: index within the scan that emitted it. */
    unsigned hop = 0;
    /** Next/prev-line companion of a candidate (width prefetch). */
    bool widthLine = false;
    Cycle enqueued = 0; //!< cycle the request entered its arbiter

    unsigned priority() const { return priorityOf(type); }
};

} // namespace cdp

#endif // CDP_MEMSYS_REQUEST_HH
