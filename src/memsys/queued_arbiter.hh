/**
 * @file
 * Fixed-size, strict-priority request arbiter.
 *
 * Models both the L2 arbiter (128 entries) and the bus arbiter (32
 * entries) of Figure 6 with the policy from Section 3.5:
 *
 *  - strict priority: demand > stride prefetch > content prefetch,
 *    FIFO within a class;
 *  - a full arbiter *squashes* an arriving prefetch (no retry);
 *  - a demand arriving at a full arbiter displaces the resident
 *    prefetch with the lowest priority (deepest content prefetch
 *    first), which is then dropped;
 *  - a demand arriving at an arbiter full of demands must wait
 *    (reported to the caller, which stalls).
 */

#ifndef CDP_MEMSYS_QUEUED_ARBITER_HH
#define CDP_MEMSYS_QUEUED_ARBITER_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "memsys/request.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace check { struct Access; }

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Outcome of an enqueue attempt. */
enum class EnqueueResult
{
    Accepted,        //!< request queued normally
    AcceptedDisplaced, //!< queued after dropping a resident prefetch
    Rejected,        //!< arbiter full; request squashed
};

/**
 * Priority-ordered bounded queue of MemRequests.
 */
class QueuedArbiter
{
  public:
    explicit QueuedArbiter(unsigned capacity, StatGroup *stats = nullptr,
                           const std::string &name = "arbiter");

    /** Attempt to queue @p req under the Section 3.5 policy. */
    EnqueueResult enqueue(const MemRequest &req);

    /** Highest-priority request, FIFO within class; nullopt if empty. */
    std::optional<MemRequest> dequeue();

    /**
     * The request dequeue() would return next, without removing it;
     * nullptr when empty. Lets the drain scheduler compute the
     * earliest cycle the head could issue.
     */
    const MemRequest *peek() const
    {
        for (const auto &q : queues) {
            if (!q.empty())
                return &q.front();
        }
        return nullptr;
    }

    /**
     * Put a request back at the *front* of its priority class (used
     * when the drain logic pops a request it cannot issue yet).
     */
    void requeueFront(const MemRequest &req);

    /**
     * Is a request for the virtual line @p line_va resident in any
     * class? The L2 arbiter sits before address translation in our
     * pipeline, so matching is by virtual line address.
     */
    bool contains(Addr line_va) const;

    /**
     * Remove and return the queued *prefetch* for @p line_va, if one
     * exists (used when a demand promotes a not-yet-started prefetch).
     */
    std::optional<MemRequest> extractPrefetch(Addr line_va);

    bool empty() const { return total == 0; }
    std::size_t size() const { return total; }
    unsigned capacityOf() const { return capacity; }
    std::size_t sizeOfClass(unsigned prio) const
    {
        return queues[prio].size();
    }

    std::uint64_t displacedCount() const { return displaced.value(); }
    std::uint64_t rejectedCount() const { return rejected.value(); }
    std::uint64_t issuedCountStat() const { return issued.value(); }

    /**
     * Serialize the lifetime conservation ledger. Checkpoints are
     * taken only at quiesce points, so the queues themselves must be
     * empty — saving a non-empty arbiter throws snap::SnapshotError.
     */
    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    friend struct check::Access;

    /** Drop the lowest-priority resident prefetch; false if none. */
    bool dropLowestPrefetch();

    void noteResident(Addr line_va) { ++residentLines[line_va]; }
    void noteRemoved(Addr line_va)
    {
        const auto it = residentLines.find(line_va);
        if (--it->second == 0)
            residentLines.erase(it);
    }

    // cdplint: transient(capacity) -- construction-time geometry; checkpoints are taken at quiesce points
    unsigned capacity;
    // cdplint: transient(queues) -- saveState throws unless the arbiter is empty, so there is never queue content to serialize
    std::deque<MemRequest> queues[numPriorities];
    /**
     * Membership index over the queues (line VA -> resident count),
     * so contains() — called once per would-be prefetch — is O(1)
     * instead of a scan of every class. Pure acceleration: only
     * membership is ever queried, never iteration order.
     */
    // cdplint: transient(residentLines) -- derived index over queues; empty whenever the (quiesced) arbiter is checkpointable
    std::unordered_map<Addr, unsigned> residentLines;
    std::size_t total = 0;

    /**
     * Lifetime conservation ledger, deliberately separate from the
     * resettable Scalars below (statistics are zeroed at the end of
     * warm-up while requests may still be resident, so the stats
     * cannot balance). Invariant (auditArbiter): enqueuedCount ==
     * issuedCount + droppedCount + extractedCount + size().
     */
    std::uint64_t enqueuedCount = 0;
    std::uint64_t issuedCount = 0;
    std::uint64_t droppedCount = 0;  //!< rejected + displaced
    std::uint64_t extractedCount = 0;

    // cdplint: transient(dummyGroup, accepted, rejected, displaced, issued) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyGroup;
    Scalar accepted;
    Scalar rejected;
    Scalar displaced;
    Scalar issued;
};

} // namespace cdp

#endif // CDP_MEMSYS_QUEUED_ARBITER_HH
