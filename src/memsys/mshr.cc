#include "memsys/mshr.hh"

namespace cdp
{

MshrFile::MshrFile(unsigned capacity, StatGroup *stats,
                   const std::string &name)
    : capacity(capacity),
      allocations(stats ? *stats : dummyGroup, name + ".allocations",
                  "MSHR entries allocated"),
      promotions(stats ? *stats : dummyGroup, name + ".promotions",
                 "in-flight prefetches promoted by demands"),
      rejections(stats ? *stats : dummyGroup, name + ".rejections",
                 "allocations rejected because the file was full")
{
}

MshrEntry *
MshrFile::find(Addr line_pa)
{
    auto it = entries.find(lineAlign(line_pa));
    return it == entries.end() ? nullptr : &it->second;
}

const MshrEntry *
MshrFile::find(Addr line_pa) const
{
    auto it = entries.find(lineAlign(line_pa));
    return it == entries.end() ? nullptr : &it->second;
}

bool
MshrFile::allocate(const MshrEntry &e)
{
    if (entries.size() >= capacity) {
        ++rejections;
        return false;
    }
    entries[lineAlign(e.linePa)] = e;
    ++allocations;
    return true;
}

void
MshrFile::release(Addr line_pa)
{
    entries.erase(lineAlign(line_pa));
}

bool
MshrFile::promote(Addr line_pa, unsigned new_depth, Addr new_vaddr)
{
    MshrEntry *e = find(line_pa);
    if (!e || !isPrefetch(e->type))
        return false;
    e->type = ReqType::DemandLoad;
    e->depth = new_depth;
    e->vaddr = new_vaddr;
    e->promoted = true;
    ++promotions;
    return true;
}

} // namespace cdp
