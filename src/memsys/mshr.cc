#include "memsys/mshr.hh"

#include "check/check.hh"

namespace cdp
{

MshrFile::MshrFile(unsigned capacity, StatGroup *stats,
                   const std::string &name)
    : capacity(capacity),
      allocations(stats ? *stats : dummyGroup, name + ".allocations",
                  "MSHR entries allocated"),
      promotions(stats ? *stats : dummyGroup, name + ".promotions",
                 "in-flight prefetches promoted by demands"),
      rejections(stats ? *stats : dummyGroup, name + ".rejections",
                 "allocations rejected because the file was full")
{
}

MshrEntry *
MshrFile::find(Addr line_pa)
{
    auto it = entries.find(lineAlign(line_pa));
    return it == entries.end() ? nullptr : &it->second;
}

const MshrEntry *
MshrFile::find(Addr line_pa) const
{
    auto it = entries.find(lineAlign(line_pa));
    return it == entries.end() ? nullptr : &it->second;
}

bool
MshrFile::allocate(const MshrEntry &e)
{
    CDP_CHECK(e.linePa == lineAlign(e.linePa));
    CDP_CHECK(!(e.promoted && isPrefetch(e.type)));
    if (entries.size() >= capacity) {
        ++rejections;
        return false;
    }
    // Callers must merge with (or drop against) an existing in-flight
    // fill before allocating; silently overwriting one would leak its
    // lifecycle (the pending fill event would complete a different
    // transaction than the one that scheduled it).
    CDP_CHECK(entries.find(lineAlign(e.linePa)) == entries.end());
    entries[lineAlign(e.linePa)] = e;
    ++allocations;
    return true;
}

void
MshrFile::release(Addr line_pa)
{
    [[maybe_unused]] const auto erased =
        entries.erase(lineAlign(line_pa));
    // Releasing a non-resident entry means the caller's lifecycle
    // bookkeeping (issued -> in-flight -> filled) double-retired.
    CDP_CHECK(erased == 1);
}

bool
MshrFile::promote(Addr line_pa, unsigned new_depth, Addr new_vaddr)
{
    MshrEntry *e = find(line_pa);
    if (!e || !isPrefetch(e->type))
        return false;
    // Provenance (id/root/hop) deliberately survives the promotion:
    // the fill is still the chain's transaction, it merely completes
    // at demand priority now.
    e->type = ReqType::DemandLoad;
    e->depth = new_depth;
    e->vaddr = new_vaddr;
    e->promoted = true;
    ++promotions;
    return true;
}

} // namespace cdp
