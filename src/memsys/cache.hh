/**
 * @file
 * Set-associative cache model with LRU replacement and the per-line
 * request-depth tag that the paper's path-reinforcement mechanism
 * relies on.
 *
 * Section 3.4.2: "a very small amount of space is allocated (enough
 * bits to encode the maximum allowed prefetch depth) in the cache
 * line to maintain the depth of a reference" — under 0.5% overhead at
 * two bits per 64-byte line. The tag lives in CacheLine::storedDepth.
 *
 * The model tracks only tags and metadata; line *data* stays in the
 * BackingStore (simulated caches are always coherent with it since
 * there is a single core).
 */

#ifndef CDP_MEMSYS_CACHE_HH
#define CDP_MEMSYS_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "memsys/request.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace check { struct Access; }

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Metadata for one resident cache line. */
struct CacheLine
{
    Addr tag = 0;              //!< line-aligned address
    std::uint64_t lruStamp = 0;
    bool valid = false;
    /** Filled by a prefetch and not yet referenced by a demand. */
    bool prefetched = false;
    /** Class of the request that brought the line in. */
    ReqType fillType = ReqType::DemandLoad;
    /** Stored request depth (the reinforcement tag). */
    std::uint8_t storedDepth = 0;
    /**
     * Depth at fill time, never promoted afterwards; per-depth
     * accuracy/pollution stats attribute against this, not the
     * mutable storedDepth.
     */
    std::uint8_t fillDepth = 0;
    /** Provenance root of the fill (see MshrEntry::root). */
    ReqId provRoot = 0;
    /** Cycle the fill completed (for timeliness accounting). */
    Cycle fillCycle = 0;
    /** Whether any demand ever touched the line (accuracy stats). */
    bool everUsed = false;
    /**
     * The stride prefetcher had also issued for this line; used to
     * compute the paper's stride-adjusted coverage/accuracy (Fig. 7).
     */
    bool strideOverlap = false;
};

/** What fell out of a set on insert. */
struct Eviction
{
    bool valid = false;        //!< an actual line was displaced
    Addr lineAddr = 0;
    bool prefetched = false;   //!< victim was an unused prefetch
    ReqType fillType = ReqType::DemandLoad;
    std::uint8_t fillDepth = 0; //!< victim's depth at fill time
    bool everUsed = false;      //!< a demand touched the victim
};

/**
 * An LRU set-associative cache keyed by line-aligned addresses.
 * Geometry (size, associativity) is fully parameterized; the same
 * class models the DL1 (32 KB, 8-way, virtually indexed) and the UL2
 * (1 MB, 8-way, physically indexed), as well as the resized UL2
 * variants of the Markov study (896 KB 7-way, 512 KB 8-way).
 */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity; must be ways * sets * 64 with
     *        sets a power of two
     * @param ways associativity
     * @param stats optional group for hit/miss/eviction counters
     * @param name stat prefix
     */
    Cache(std::uint64_t size_bytes, unsigned ways,
          StatGroup *stats = nullptr, const std::string &name = "cache");

    /**
     * Look up @p addr; on a hit the line's LRU stamp is refreshed.
     * @return the resident line, or nullptr on a miss.
     */
    CacheLine *lookup(Addr addr);

    /** Look up without disturbing LRU state or statistics. */
    const CacheLine *probe(Addr addr) const;
    CacheLine *probeMutable(Addr addr);

    /**
     * Insert (fill) the line containing @p addr, evicting the set's
     * LRU victim when the set is full.
     * @return the freshly installed line (caller sets metadata).
     */
    CacheLine &insert(Addr addr, Eviction *evicted = nullptr);

    /** Drop the line containing @p addr if resident. */
    void invalidate(Addr addr);

    /** Drop every line. */
    void flushAll();

    unsigned numWays() const { return ways; }
    unsigned numSets() const { return sets; }
    std::uint64_t sizeBytes() const
    {
        return static_cast<std::uint64_t>(sets) * ways * lineBytes;
    }

    /** Count of currently valid lines (test support). */
    std::uint64_t residentLines() const;

    std::uint64_t hitCount() const { return hits.value(); }
    std::uint64_t missCount() const { return misses.value(); }
    std::uint64_t evictionCount() const { return evictions.value(); }

    /** Serialize every line's metadata + the LRU clock. */
    void saveState(snap::Writer &w) const;

    /** Restore line metadata; geometry must match. */
    void loadState(snap::Reader &r);

  private:
    friend struct check::Access;

    unsigned setIndex(Addr line_addr) const
    {
        return (line_addr >> lineShift) & setMask;
    }

    /** First line of the set containing @p line_addr. */
    CacheLine *
    setBase(Addr line_addr)
    {
        return &lines[static_cast<std::size_t>(setIndex(line_addr)) *
                      ways];
    }
    const CacheLine *
    setBase(Addr line_addr) const
    {
        return &lines[static_cast<std::size_t>(setIndex(line_addr)) *
                      ways];
    }

    unsigned ways;
    unsigned sets;
    // cdplint: transient(setMask) -- precomputed from 'sets', whose geometry loadState already cross-checks
    unsigned setMask; //!< sets - 1, precomputed (sets is pow2)
    std::vector<CacheLine> lines; // sets * ways
    std::uint64_t stamp = 0;

    // cdplint: transient(dummyGroup, hits, misses, evictions) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyGroup;
    Scalar hits;
    Scalar misses;
    Scalar evictions;
};

} // namespace cdp

#endif // CDP_MEMSYS_CACHE_HH
