#include "memsys/queued_arbiter.hh"

#include "check/check.hh"
#include "snapshot/ckpt_io.hh"

namespace cdp
{

QueuedArbiter::QueuedArbiter(unsigned capacity, StatGroup *stats,
                             const std::string &name)
    : capacity(capacity),
      accepted(stats ? *stats : dummyGroup, name + ".accepted",
               "requests accepted into the arbiter"),
      rejected(stats ? *stats : dummyGroup, name + ".rejected",
               "requests squashed because the arbiter was full"),
      displaced(stats ? *stats : dummyGroup, name + ".displaced",
                "prefetches dropped to admit a demand request"),
      issued(stats ? *stats : dummyGroup, name + ".issued",
             "requests handed to the drain logic")
{
}

bool
QueuedArbiter::dropLowestPrefetch()
{
    // Content prefetches first (lowest priority), deepest entry last
    // in FIFO order; within the class the *newest* (deepest in the
    // chain, most speculative) request is the sacrifice.
    for (unsigned p = numPriorities; p-- > 1;) {
        auto &q = queues[p];
        if (!q.empty()) {
            noteRemoved(q.back().lineVa);
            q.pop_back();
            --total;
            ++displaced;
            ++droppedCount;
            return true;
        }
    }
    return false;
}

EnqueueResult
QueuedArbiter::enqueue(const MemRequest &req)
{
    const unsigned prio = req.priority();
    CDP_CHECK(prio < numPriorities);
    CDP_CHECK(req.lineVa == lineAlign(req.lineVa));
    if (total >= capacity) {
        if (prio == 0 && dropLowestPrefetch()) {
            queues[prio].push_back(req);
            noteResident(req.lineVa);
            ++total;
            ++accepted;
            ++enqueuedCount;
            return EnqueueResult::AcceptedDisplaced;
        }
        ++rejected;
        ++droppedCount;
        ++enqueuedCount;
        return EnqueueResult::Rejected;
    }
    queues[prio].push_back(req);
    noteResident(req.lineVa);
    ++total;
    ++accepted;
    ++enqueuedCount;
    return EnqueueResult::Accepted;
}

void
QueuedArbiter::requeueFront(const MemRequest &req)
{
    queues[req.priority()].push_front(req);
    noteResident(req.lineVa);
    ++total;
    // The request re-enters the resident population, reversing its
    // earlier dequeue in the conservation ledger.
    CDP_CHECK(issuedCount > 0);
    --issuedCount;
    if (issued.value() > 0)
        issued.set(issued.value() - 1);
}

std::optional<MemRequest>
QueuedArbiter::dequeue()
{
    for (unsigned p = 0; p < numPriorities; ++p) {
        auto &q = queues[p];
        if (!q.empty()) {
            MemRequest r = q.front();
            q.pop_front();
            noteRemoved(r.lineVa);
            --total;
            ++issuedCount;
            ++issued;
            CDP_CHECK(r.priority() == p);
            return r;
        }
    }
    CDP_CHECK(total == 0);
    return std::nullopt;
}

bool
QueuedArbiter::contains(Addr line_va) const
{
    return residentLines.count(lineAlign(line_va)) != 0;
}

std::optional<MemRequest>
QueuedArbiter::extractPrefetch(Addr line_va)
{
    const Addr la = lineAlign(line_va);
    for (unsigned p = 1; p < numPriorities; ++p) {
        auto &q = queues[p];
        for (auto it = q.begin(); it != q.end(); ++it) {
            if (it->lineVa == la) {
                MemRequest r = *it;
                q.erase(it);
                noteRemoved(la);
                --total;
                ++extractedCount;
                CDP_CHECK(isPrefetch(r.type));
                return r;
            }
        }
    }
    return std::nullopt;
}

void
QueuedArbiter::saveState(snap::Writer &w) const
{
    if (total != 0)
        throw snap::SnapshotError(
            "cannot checkpoint an arbiter holding " +
            std::to_string(total) +
            " queued request(s) — checkpoint only at quiesce points");
    // The conservation ledger spans the machine's whole lifetime (the
    // auditArbiter invariant balances against it), so it must travel
    // with the checkpoint even though the queues are empty.
    w.u64(enqueuedCount);
    w.u64(issuedCount);
    w.u64(droppedCount);
    w.u64(extractedCount);
}

void
QueuedArbiter::loadState(snap::Reader &r)
{
    if (total != 0)
        r.fail("restore target arbiter is not empty");
    enqueuedCount = r.u64();
    issuedCount = r.u64();
    droppedCount = r.u64();
    extractedCount = r.u64();
    if (enqueuedCount != issuedCount + droppedCount + extractedCount)
        r.fail("arbiter ledger does not balance: enqueued " +
               std::to_string(enqueuedCount) + " != issued " +
               std::to_string(issuedCount) + " + dropped " +
               std::to_string(droppedCount) + " + extracted " +
               std::to_string(extractedCount));
}

} // namespace cdp
