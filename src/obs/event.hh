/**
 * @file
 * Per-request lifecycle events for the observability layer.
 *
 * Every memory transaction — demand, stride, content, page walk,
 * injected pollution — emits a small fixed-size event at each station
 * of its life: arbiter enqueue, grant, drop, bus issue, fill, VAM
 * scan, MSHR merge/promotion, and depth reinforcement. Each event
 * carries the request's *provenance id*:
 *
 *   (root, depth, hop)
 *
 * where `root` is the ReqId of the demand miss whose fill ultimately
 * spawned the request (a demand is its own root), `depth` is the
 * chain depth (0 demand, 1 first-generation prefetch, +1 per chained
 * hop — Section 3.4.1), and `hop` is the candidate's index within the
 * scan that emitted it. The triple answers "which demand miss spawned
 * this prefetch, how deep in the chain is it, and which scan slot did
 * it come from" for every derived request, which is exactly the
 * attribution the end-of-run aggregates cannot provide.
 *
 * TraceEvent is a POD with fixed 40-byte layout; the binary trace
 * file (tools/cdptrace, obs/trace_io.hh) serializes the struct
 * directly.
 */

#ifndef CDP_OBS_EVENT_HH
#define CDP_OBS_EVENT_HH

#include <cstdint>

#include "common/req_type.hh"
#include "common/types.hh"

namespace cdp::obs
{

/** Lifecycle station that emitted the event. */
enum class EventKind : std::uint8_t
{
    DemandMiss,  //!< demand missed the DL1 and heads for the UL2
    ArbEnqueue,  //!< prefetch entered the L2 arbiter
    ArbGrant,    //!< prefetch dequeued from the arbiter toward the bus
    Drop,        //!< request squashed (aux = DropReason)
    Issue,       //!< MSHR allocated, bus transfer scheduled
    Merge,       //!< demand merged with an in-flight demand fill
    Promote,     //!< demand promoted an in-flight prefetch (Sec. 3.5)
    Fill,        //!< fill completed, line inserted into the UL2
    Scan,        //!< VAM scanned a fill (aux = candidates emitted)
    Reinforce,   //!< depth-tag promotion on a hit (aux = old depth)
};

/** Why a request was squashed (aux payload of EventKind::Drop). */
enum class DropReason : std::uint8_t
{
    QueuedDup,   //!< same line already waiting in the arbiter
    ArbFull,     //!< arbiter queue full
    L2Hit,       //!< target line already resident
    Inflight,    //!< matching transaction already in flight
    BusFull,     //!< prefetch outstandingness cap reached
    Unmapped,    //!< candidate points at unmapped memory
};

/** Human-readable event-kind name (JSON sinks and summaries). */
inline const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::DemandMiss: return "demand-miss";
      case EventKind::ArbEnqueue: return "arb-enqueue";
      case EventKind::ArbGrant: return "arb-grant";
      case EventKind::Drop: return "drop";
      case EventKind::Issue: return "issue";
      case EventKind::Merge: return "merge";
      case EventKind::Promote: return "promote";
      case EventKind::Fill: return "fill";
      case EventKind::Scan: return "scan";
      case EventKind::Reinforce: return "reinforce";
    }
    return "?";
}

/** Human-readable drop-reason name. */
inline const char *
dropReasonName(DropReason r)
{
    switch (r) {
      case DropReason::QueuedDup: return "queued-dup";
      case DropReason::ArbFull: return "arb-full";
      case DropReason::L2Hit: return "l2-hit";
      case DropReason::Inflight: return "inflight";
      case DropReason::BusFull: return "bus-full";
      case DropReason::Unmapped: return "unmapped";
    }
    return "?";
}

/**
 * One lifecycle event. Fixed 40-byte POD; written to the binary
 * trace verbatim (little-endian hosts only, like trace/trace.hh).
 */
struct TraceEvent
{
    Cycle cycle = 0;          //!< simulated cycle of the event
    ReqId id = 0;             //!< transaction id (0 = not yet assigned)
    ReqId root = 0;           //!< provenance root (demand miss ReqId)
    Addr addr = 0;            //!< line address (VA pre-, PA post-translate)
    std::uint32_t aux = 0;    //!< DropReason / scan candidates / old depth
    std::uint8_t kind = 0;    //!< EventKind
    std::uint8_t rtype = 0;   //!< ReqType
    std::uint8_t depth = 0;   //!< provenance chain depth
    std::uint8_t hop = 0;     //!< provenance hop index (clamped to 255)
    std::uint8_t pad[4] = {}; //!< explicit padding, always zero

    EventKind kindOf() const { return static_cast<EventKind>(kind); }
    ReqType typeOf() const { return static_cast<ReqType>(rtype); }
    DropReason dropOf() const { return static_cast<DropReason>(aux); }
};

static_assert(sizeof(TraceEvent) == 40,
              "trace event must be exactly 40 bytes (binary format)");

} // namespace cdp::obs

#endif // CDP_OBS_EVENT_HH
