#include "obs/trace_io.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace cdp::obs
{

namespace
{

void
writeU32(std::FILE *f, std::uint32_t v)
{
    if (std::fwrite(&v, sizeof(v), 1, f) != 1)
        throw std::runtime_error("trace_io: short write");
}

void
writeU64(std::FILE *f, std::uint64_t v)
{
    if (std::fwrite(&v, sizeof(v), 1, f) != 1)
        throw std::runtime_error("trace_io: short write");
}

std::uint32_t
readU32(std::FILE *f)
{
    std::uint32_t v = 0;
    if (std::fread(&v, sizeof(v), 1, f) != 1)
        throw std::runtime_error("trace_io: short read");
    return v;
}

std::uint64_t
readU64(std::FILE *f)
{
    std::uint64_t v = 0;
    if (std::fread(&v, sizeof(v), 1, f) != 1)
        throw std::runtime_error("trace_io: short read");
    return v;
}

/** RAII fclose so error paths cannot leak the handle. */
struct FileCloser
{
    std::FILE *f;
    ~FileCloser()
    {
        if (f)
            std::fclose(f);
    }
};

/** Escape for JSON string values (our names are ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/** Shared "args" object: provenance + address for one event. */
std::string
argsJson(const TraceEvent &e)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"id\": %llu, \"root\": %llu, \"depth\": %u, "
                  "\"hop\": %u, \"addr\": \"0x%08x\"",
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.root),
                  static_cast<unsigned>(e.depth),
                  static_cast<unsigned>(e.hop),
                  static_cast<unsigned>(e.addr));
    std::string out = buf;
    if (e.kindOf() == EventKind::Drop) {
        out += std::string(", \"reason\": \"") +
               dropReasonName(e.dropOf()) + "\"";
    } else if (e.kindOf() == EventKind::Scan ||
               e.kindOf() == EventKind::Reinforce) {
        std::snprintf(buf, sizeof(buf), ", \"aux\": %u", e.aux);
        out += buf;
    }
    out += "}";
    return out;
}

void
emitEvent(std::ostream &os, const char *ph, const std::string &name,
          const char *cat, Cycle ts, std::uint64_t tid,
          const std::string &args, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "    {\"name\": \"" << jsonEscape(name) << "\", \"cat\": \""
       << cat << "\", \"ph\": \"" << ph << "\", \"ts\": " << ts
       << ", \"pid\": 0, \"tid\": " << tid;
    if (ph[0] == 'i')
        os << ", \"s\": \"t\"";
    if (!args.empty())
        os << ", \"args\": " << args;
    os << "}";
}

} // namespace

void
writeBinaryTrace(const std::string &path,
                 const std::vector<TraceEvent> &events,
                 std::uint64_t dropped, const std::string &tag)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw std::runtime_error("trace_io: cannot open for write: " +
                                 path);
    FileCloser closer{f};
    writeU32(f, traceEventMagic);
    writeU32(f, traceEventVersion);
    writeU64(f, events.size());
    writeU64(f, dropped);
    writeU32(f, static_cast<std::uint32_t>(tag.size()));
    if (!tag.empty() &&
        std::fwrite(tag.data(), 1, tag.size(), f) != tag.size())
        throw std::runtime_error("trace_io: short write (tag)");
    if (!events.empty() &&
        std::fwrite(events.data(), sizeof(TraceEvent), events.size(),
                    f) != events.size())
        throw std::runtime_error("trace_io: short write (events)");
}

LoadedTrace
readBinaryTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw std::runtime_error("trace_io: cannot open for read: " +
                                 path);
    FileCloser closer{f};
    if (readU32(f) != traceEventMagic)
        throw std::runtime_error("trace_io: bad magic in " + path);
    if (readU32(f) != traceEventVersion)
        throw std::runtime_error("trace_io: unsupported version in " +
                                 path);
    LoadedTrace t;
    const std::uint64_t count = readU64(f);
    t.dropped = readU64(f);
    const std::uint32_t tag_len = readU32(f);
    t.tag.resize(tag_len);
    if (tag_len &&
        std::fread(t.tag.data(), 1, tag_len, f) != tag_len)
        throw std::runtime_error("trace_io: short read (tag)");
    t.events.resize(count);
    if (count &&
        std::fread(t.events.data(), sizeof(TraceEvent), count, f) !=
            count)
        throw std::runtime_error("trace_io: truncated events in " +
                                 path);
    return t;
}

void
writeChromeJson(std::ostream &os, const LoadedTrace &trace)
{
    // Stable sort keeps record order among same-cycle events, so the
    // output is a pure function of the trace contents.
    std::vector<TraceEvent> sorted = trace.events;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.cycle < b.cycle;
                     });

    os << "{\n  \"displayTimeUnit\": \"ns\",\n"
       << "  \"otherData\": {\"tool\": \"cdptrace\", \"tag\": \""
       << jsonEscape(trace.tag) << "\", \"dropped\": " << trace.dropped
       << "},\n  \"traceEvents\": [\n";
    bool first = true;
    for (const TraceEvent &e : sorted) {
        const std::string name = std::string(reqTypeName(e.typeOf())) +
                                 " d" + std::to_string(e.depth);
        switch (e.kindOf()) {
          case EventKind::Issue:
            // One duration track per transaction: tid = request id,
            // so the B/E pair trivially nests and never interleaves
            // with another request's pair.
            emitEvent(os, "B", name, "req", e.cycle, e.id,
                      argsJson(e), first);
            break;
          case EventKind::Fill:
            emitEvent(os, "E", name, "req", e.cycle, e.id, "", first);
            break;
          // cdplint: allow(exhaustive-switch) -- only Issue/Fill span a duration; every other kind, present or future, renders as an instant mark by design
          default:
            emitEvent(os, "i", eventKindName(e.kindOf()), "mark",
                      e.cycle, e.id, argsJson(e), first);
            break;
        }
    }
    os << "\n  ]\n}\n";
}

} // namespace cdp::obs
