/**
 * @file
 * The request-lifecycle event tracer.
 *
 * One Tracer instance lives inside each MemorySystem (no globals —
 * simulations fan out across the src/runner thread pool), collecting
 * TraceEvents into a bounded in-memory ring buffer. Sinks convert the
 * buffer after the run: a compact binary file and Chrome
 * `trace_event` JSON (obs/trace_io.hh), both driven by tools/cdptrace
 * or programmatically.
 *
 * Overhead contract (DESIGN.md §9):
 *  - compiled out (`-DCDP_ENABLE_TRACE=OFF`): record() is an empty
 *    inline function and every `if (tracer.active())` guard folds to
 *    `if (false)` — zero instructions on any simulation path;
 *  - compiled in, runtime-disabled (the default): active() is a
 *    single bool load, the only cost on hot paths (<1% on
 *    bench_headline);
 *  - enabled: one 40-byte store per event into a preallocated ring;
 *    when the ring wraps, the oldest events are overwritten and
 *    counted in dropped().
 *
 * The tracer is a pure observer: enabling it never changes simulated
 * timing, counters, or stats — byte-identical dumps with tracing on,
 * off, or compiled out.
 */

#ifndef CDP_OBS_TRACER_HH
#define CDP_OBS_TRACER_HH

#include <cstdint>
#include <vector>

#include "obs/event.hh"

#ifdef CDP_ENABLE_TRACE
#define CDP_TRACE_ENABLED 1
#else
#define CDP_TRACE_ENABLED 0
#endif

namespace cdp::obs
{

/** Runtime knobs of the tracer (SimConfig::trace). */
struct TraceConfig
{
    /** Master runtime switch; off by default (observer stays cold). */
    bool enabled = false;
    /**
     * Ring capacity in events (40 B each). When full the ring wraps,
     * overwriting the oldest events; Tracer::dropped() reports how
     * many were lost. Pairing-sensitive consumers (the fuzz
     * well-formedness pass, cdptrace summaries) should size the ring
     * to the run.
     */
    std::uint64_t bufferEvents = 1u << 16;
};

/**
 * Bounded event recorder. See the file comment for the overhead
 * contract; see MemorySystem for the emission points.
 */
class Tracer
{
  public:
    explicit Tracer(const TraceConfig &cfg = TraceConfig{})
        : cfg(cfg)
    {
    }

    /** True when events are both compiled in and runtime-enabled. */
    bool
    active() const
    {
#if CDP_TRACE_ENABLED
        return cfg.enabled;
#else
        return false;
#endif
    }

    /** Append one event (no-op when not active()). */
    void
    record(EventKind k, Cycle cycle, Addr addr, ReqId id, ReqId root,
           ReqType type, unsigned depth, unsigned hop,
           std::uint32_t aux = 0)
    {
#if CDP_TRACE_ENABLED
        if (!cfg.enabled)
            return;
        TraceEvent e{};
        e.cycle = cycle;
        e.id = id;
        e.root = root;
        e.addr = addr;
        e.aux = aux;
        e.kind = static_cast<std::uint8_t>(k);
        e.rtype = static_cast<std::uint8_t>(type);
        e.depth = static_cast<std::uint8_t>(depth > 255 ? 255 : depth);
        e.hop = static_cast<std::uint8_t>(hop > 255 ? 255 : hop);
        push(e);
#else
        (void)k; (void)cycle; (void)addr; (void)id; (void)root;
        (void)type; (void)depth; (void)hop; (void)aux;
#endif
    }

    /** Events currently held (≤ bufferEvents). */
    std::uint64_t size() const { return buf.size(); }

    /** Events overwritten after the ring wrapped. */
    std::uint64_t dropped() const { return overwritten; }

    /** Total events ever recorded (size() + dropped()). */
    std::uint64_t recorded() const { return buf.size() + overwritten; }

    /**
     * Copy out the retained events in record order (oldest first).
     * The ring is left untouched, so sinks and tests can snapshot
     * repeatedly.
     */
    std::vector<TraceEvent>
    snapshot() const
    {
        std::vector<TraceEvent> out;
        out.reserve(buf.size());
        for (std::size_t i = 0; i < buf.size(); ++i)
            out.push_back(buf[(head + i) % buf.size()]);
        return out;
    }

    /** Drop every retained event and the overwrite count. */
    void
    clear()
    {
        buf.clear();
        head = 0;
        overwritten = 0;
    }

    const TraceConfig &config() const { return cfg; }

  private:
    void
    push(const TraceEvent &e)
    {
        if (buf.size() < cfg.bufferEvents) {
            buf.push_back(e);
            return;
        }
        if (buf.empty())
            return; // bufferEvents == 0: tracing effectively off
        buf[head] = e;
        head = (head + 1) % buf.size();
        ++overwritten;
    }

    TraceConfig cfg;
    /** Grows to bufferEvents, then becomes a circular buffer. */
    std::vector<TraceEvent> buf;
    std::size_t head = 0; //!< oldest event once the ring has wrapped
    std::uint64_t overwritten = 0;
};

} // namespace cdp::obs

#endif // CDP_OBS_TRACER_HH
