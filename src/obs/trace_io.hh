/**
 * @file
 * Sinks and sources for lifecycle traces.
 *
 * Binary format "CDPO" (little-endian, like the uop trace CDPT):
 *   header: u32 magic, u32 version, u64 event count, u64 dropped,
 *           u32 tag length, tag bytes (workload/config label)
 *   records: TraceEvent structs, 40 bytes each, record order
 *
 * The Chrome sink emits the `trace_event` JSON format understood by
 * chrome://tracing and Perfetto: one duration pair ("ph":"B"/"E") per
 * issued transaction on a per-request track (tid = request id, so
 * pairs always nest), and instant events ("ph":"i") for scans,
 * drops, merges, promotions, and reinforcements. Events are sorted
 * by timestamp; provenance rides in "args".
 */

#ifndef CDP_OBS_TRACE_IO_HH
#define CDP_OBS_TRACE_IO_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event.hh"

namespace cdp::obs
{

/** Binary trace-file magic and version. */
constexpr std::uint32_t traceEventMagic = 0x4f504443; // "CDPO"
constexpr std::uint32_t traceEventVersion = 1;

/** A loaded binary trace: events plus header metadata. */
struct LoadedTrace
{
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0; //!< overwritten before the dump
    std::string tag;           //!< workload/config label
};

/**
 * Write @p events as a binary trace file.
 * @throw std::runtime_error on I/O failure
 */
void writeBinaryTrace(const std::string &path,
                      const std::vector<TraceEvent> &events,
                      std::uint64_t dropped, const std::string &tag);

/**
 * Load a binary trace file; validates magic/version.
 * @throw std::runtime_error on I/O or format errors
 */
LoadedTrace readBinaryTrace(const std::string &path);

/**
 * Emit @p trace as Chrome trace_event JSON on @p os. Deterministic:
 * stable sort by cycle, fixed field order, no floating point.
 */
void writeChromeJson(std::ostream &os, const LoadedTrace &trace);

} // namespace cdp::obs

#endif // CDP_OBS_TRACE_IO_HH
