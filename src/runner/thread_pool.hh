/**
 * @file
 * A small work-stealing thread pool for fanning independent
 * simulations out across cores.
 *
 * Each worker owns a deque; submit() deals tasks round-robin, a
 * worker pops from the front of its own deque and, when that runs
 * dry, steals from the back of a sibling's. Tasks are opaque
 * `std::function<void()>`s; ordering and exception transport are
 * layered on top by orderedMap(), which is what the experiment
 * harness uses (results land in submission order, so bench output is
 * byte-identical no matter how many workers run).
 *
 * The pool never runs tasks on the submitting thread; a pool of one
 * worker therefore serializes the batch in submission order, which is
 * the `-j1` reference ordering the determinism tests compare against.
 */

#ifndef CDP_RUNNER_THREAD_POOL_HH
#define CDP_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cdp::runner
{

/**
 * Fixed-size pool of `std::thread` workers with per-worker deques and
 * sibling stealing. The destructor drains: every task submitted
 * before destruction runs to completion.
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param workers worker count; 0 means defaultWorkers(). */
    explicit ThreadPool(unsigned workers = 0);

    /** Drains the queues, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task. Tasks must not throw (wrap with orderedMap for
     * exception transport) and must not block on other tasks in the
     * same pool (the harness never nests batches).
     */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void waitIdle();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(threads.size());
    }

    /**
     * The job count the environment asks for: CDP_JOBS when set to a
     * positive integer, else std::thread::hardware_concurrency(),
     * never less than 1.
     */
    static unsigned defaultWorkers();

  private:
    void workerLoop(std::size_t self);

    /** Pop own front / steal sibling back; caller holds the lock. */
    bool takeTask(std::size_t self, Task &out);

    // One mutex guards all deques: sim tasks run for milliseconds to
    // seconds, so queue-transfer contention is noise. The stealing
    // *policy* (own front, sibling back) is what spreads a burst of
    // submissions evenly when workers finish out of step.
    std::mutex mtx;
    std::condition_variable cvWork;
    std::condition_variable cvIdle;
    std::vector<std::deque<Task>> queues; // cdplint: guarded_by(mtx)
    std::vector<std::thread> threads;
    std::size_t nextQueue = 0; //!< round-robin deal position; cdplint: guarded_by(mtx)
    std::size_t inflight = 0;  //!< submitted, not yet finished; cdplint: guarded_by(mtx)
    bool stopping = false;     // cdplint: guarded_by(mtx)
};

/**
 * Run fn(0..n-1) on @p pool and return the results indexed by i —
 * submission order, independent of worker count or completion order.
 * The first (lowest-index) exception a task threw is rethrown after
 * the whole batch has drained; the partial results are discarded.
 */
template <typename Fn>
auto
orderedMap(ThreadPool &pool, std::size_t n, Fn fn)
    -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
{
    using R = std::invoke_result_t<Fn &, std::size_t>;
    static_assert(std::is_default_constructible_v<R>,
                  "orderedMap results must be default-constructible");
    std::vector<R> out(n);
    std::vector<std::exception_ptr> errors(n);

    struct Latch
    {
        std::mutex m;
        std::condition_variable cv;
        std::size_t remaining;
    };
    // Shared ownership: the waiter may wake and leave this scope the
    // instant the count hits zero, while the final worker is still
    // inside notify_one(); the last owner (worker or waiter) destroys
    // the latch, never underneath the other.
    auto latch = std::make_shared<Latch>();
    latch->remaining = n;

    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&, i, latch] {
            try {
                out[i] = fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lk(latch->m);
                --latch->remaining;
            }
            latch->cv.notify_one();
        });
    }
    {
        std::unique_lock<std::mutex> lk(latch->m);
        latch->cv.wait(lk, [&] { return latch->remaining == 0; });
    }
    for (auto &e : errors)
        if (e)
            std::rethrow_exception(e);
    return out;
}

} // namespace cdp::runner

#endif // CDP_RUNNER_THREAD_POOL_HH
