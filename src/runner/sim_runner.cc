#include "runner/sim_runner.hh"

#include <cstdio>
#include <stdexcept>
#include <string>

#ifdef _WIN32
#else
#include <unistd.h>
#endif

namespace cdp::runner
{

namespace
{

bool
stderrIsTty()
{
#ifdef _WIN32
    return false;
#else
    return isatty(fileno(stderr)) != 0;
#endif
}

} // namespace

SimRunner::SimRunner(unsigned jobs)
    : pool(jobs), progressTty(stderrIsTty())
{
}

SimRunner::Timer::Timer(SimRunner &r)
    : runner(r), start(std::chrono::steady_clock::now())
{
}

SimRunner::Timer::~Timer()
{
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    runner.wallMicros += static_cast<std::uint64_t>(us);
}

void
SimRunner::beginBatch(std::size_t total)
{
    batchDone = 0;
    batchTotal = total;
}

void
SimRunner::noteDone(const std::string &tag)
{
    ++simCount;
    const std::uint64_t done = ++batchDone;
    // Progress is stderr-only and scheduling-dependent; stdout and
    // report bodies must stay byte-identical across -j values.
    if (progressTty) {
        std::fprintf(stderr, "\r[%llu/%zu] %-40.40s%s",
                     static_cast<unsigned long long>(done), batchTotal,
                     tag.c_str(), done == batchTotal ? "\n" : "");
        std::fflush(stderr);
    }
}

std::vector<RunResult>
SimRunner::run(const std::vector<SimJob> &jobs)
{
    const Timer t(*this);
    beginBatch(jobs.size());
    return orderedMap(pool, jobs.size(), [&](std::size_t i) {
        const SimJob &job = jobs[i];
        Simulator sim(job.cfg);
        RunResult r = job.mode == SimJob::Mode::Whole
                          ? sim.runChunk(job.cfg.warmupUops +
                                         job.cfg.measureUops)
                          : sim.run();
        noteDone(job.tag);
        return r;
    });
}

HarnessStats
SimRunner::stats() const
{
    HarnessStats s;
    s.jobs = pool.workerCount();
    s.sims = simCount.load();
    s.wallSeconds =
        static_cast<double>(wallMicros.load()) / 1e6;
    return s;
}

unsigned
parseJobsFlag(int &argc, char **argv)
{
    unsigned jobs = 0;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg.rfind("--jobs=", 0) == 0)
            value = arg.substr(7);
        else if (arg.rfind("-j", 0) == 0 && arg.size() > 2)
            value = arg.substr(2);
        else if (arg == "-j" || arg == "--jobs") {
            if (i + 1 >= argc)
                throw std::invalid_argument(arg +
                                            " requires a count");
            value = argv[++i];
        } else {
            argv[w++] = argv[i];
            continue;
        }
        try {
            const long v = std::stol(value);
            if (v <= 0)
                throw std::invalid_argument("");
            jobs = static_cast<unsigned>(v);
        } catch (...) {
            throw std::invalid_argument("bad job count: " + value);
        }
    }
    argc = w;
    return jobs;
}

} // namespace cdp::runner
