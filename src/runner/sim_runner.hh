/**
 * @file
 * Parallel experiment runner: fans independent `Simulator` instances
 * out over a work-stealing thread pool and hands the results back in
 * deterministic submission order.
 *
 * The determinism contract is the point of the design: a batch of
 * SimJobs produces exactly the same result vector — and therefore
 * byte-identical bench stdout and JSON — at `-j1` and `-j64`. That
 * holds because each Simulator is a self-contained machine (no
 * globals, per-instance RNGs and stats) and because results are
 * returned indexed by submission position, never by completion order.
 * Anything scheduling-dependent (wall-clock, throughput, progress)
 * goes to stderr or the report's single-line "harness" object only.
 *
 * Worker count: the `-j` flag (parseJobsFlag) wins, then the
 * CDP_JOBS environment variable, then hardware_concurrency.
 */

#ifndef CDP_RUNNER_SIM_RUNNER_HH
#define CDP_RUNNER_SIM_RUNNER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "runner/thread_pool.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

namespace cdp::runner
{

/** One simulation to run: a full config plus a label. */
struct SimJob
{
    SimConfig cfg;
    /** Tag shown in progress lines and result reports. */
    std::string tag;

    /**
     * Run: the paper's two-phase warmup/measure experiment.
     * Whole: warmup+measure as one counted phase (tuning benches).
     */
    enum class Mode { Run, Whole } mode = Mode::Run;
};

/** Scheduling-side telemetry accumulated across batches. */
struct HarnessStats
{
    unsigned jobs = 1;          //!< worker threads
    std::uint64_t sims = 0;     //!< simulations completed
    double wallSeconds = 0.0;   //!< time spent inside batches

    double
    simsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(sims) / wallSeconds
                   : 0.0;
    }
};

/**
 * Runs batches of SimJobs (or arbitrary per-index tasks) on an
 * internal ThreadPool and reports progress on stderr.
 */
class SimRunner
{
  public:
    /** @param jobs worker count; 0 = CDP_JOBS / hardware default. */
    explicit SimRunner(unsigned jobs = 0);

    /**
     * Run every job and return results in submission order.
     * Worker exceptions are rethrown (lowest submission index first)
     * after the batch drains.
     */
    std::vector<RunResult> run(const std::vector<SimJob> &jobs);

    /**
     * Generic ordered fan-out for tasks that are not a plain
     * config-in/result-out simulation (paired runs, chunked traces,
     * stats captures). @p fn receives the job index; results come
     * back indexed by it. Counts one sim per task unless the task
     * reports more via noteExtraSims().
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        const Timer t(*this);
        beginBatch(n);
        auto out = orderedMap(pool, n, [&](std::size_t i) {
            auto r = fn(i);
            noteDone("");
            return r;
        });
        return out;
    }

    /**
     * Credit @p n additional simulations to the throughput counter
     * (for tasks that run more than one Simulator).
     */
    void
    noteExtraSims(std::uint64_t n)
    {
        simCount += n;
    }

    unsigned jobCount() const { return pool.workerCount(); }

    /** Telemetry over every batch run so far. */
    HarnessStats stats() const;

  private:
    /** RAII wall-clock accumulation around one batch. */
    class Timer
    {
      public:
        explicit Timer(SimRunner &r);
        ~Timer();

      private:
        SimRunner &runner;
        std::chrono::steady_clock::time_point start;
    };

    void beginBatch(std::size_t total);
    void noteDone(const std::string &tag);

    ThreadPool pool;
    std::atomic<std::uint64_t> simCount{0};
    std::atomic<std::uint64_t> batchDone{0};
    std::size_t batchTotal = 0;
    std::atomic<std::uint64_t> wallMicros{0};
    bool progressTty;
};

/**
 * Strip a trailing/leading `-jN` or `--jobs=N` from @p argv (mutating
 * argc/argv in place) and return N; 0 when no flag was given.
 * Malformed values throw std::invalid_argument.
 */
unsigned parseJobsFlag(int &argc, char **argv);

} // namespace cdp::runner

#endif // CDP_RUNNER_SIM_RUNNER_HH
