#include "runner/thread_pool.hh"

#include <cstdlib>
#include <string>

namespace cdp::runner
{

unsigned
ThreadPool::defaultWorkers()
{
    if (const char *env = std::getenv("CDP_JOBS")) {
        try {
            const long v = std::stol(env);
            if (v > 0)
                return static_cast<unsigned>(v);
        } catch (...) {
            // Fall through to hardware_concurrency on garbage.
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    const unsigned n = workers > 0 ? workers : defaultWorkers();
    // cdplint: allow(lock-discipline) -- single-threaded: the workers that could race are created on the next line
    queues.resize(n);
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    waitIdle();
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    cvWork.notify_all();
    for (auto &t : threads)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        queues[nextQueue].push_back(std::move(task));
        nextQueue = (nextQueue + 1) % queues.size();
        ++inflight;
    }
    cvWork.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lk(mtx);
    cvIdle.wait(lk, [this] { return inflight == 0; });
}

bool
ThreadPool::takeTask(std::size_t self, Task &out) // cdplint: requires_lock(mtx)
{
    auto &own = queues[self];
    if (!own.empty()) {
        out = std::move(own.front());
        own.pop_front();
        return true;
    }
    for (std::size_t k = 1; k < queues.size(); ++k) {
        auto &victim = queues[(self + k) % queues.size()];
        if (!victim.empty()) {
            out = std::move(victim.back());
            victim.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lk(mtx);
            cvWork.wait(lk, [&] {
                return takeTask(self, task) || stopping;
            });
            if (!task) {
                // Woken by stop with every deque empty.
                return;
            }
        }
        task();
        bool idle = false;
        {
            std::lock_guard<std::mutex> lk(mtx);
            idle = --inflight == 0;
        }
        if (idle)
            cvIdle.notify_all();
    }
}

} // namespace cdp::runner
