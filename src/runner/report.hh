/**
 * @file
 * Structured result emission for the experiment harness.
 *
 * Every bench writes a `BENCH_<name>.json` next to its stdout table:
 * a `results` array with one object per job (insertion-ordered keys,
 * fixed-precision number formatting, so the bytes are a pure function
 * of the simulated values) and a single-line `harness` object with
 * the scheduling telemetry (worker count, wall-clock, throughput).
 *
 * The split is deliberate: the `results` array is covered by the
 * `-j1` vs `-jN` byte-identity guarantee, while the `harness` line is
 * the one place scheduling-dependent numbers are allowed. The
 * determinism test drops that line and compares the rest bytewise.
 *
 * Output directory: $CDP_BENCH_JSON_DIR when set, else the current
 * working directory.
 */

#ifndef CDP_RUNNER_REPORT_HH
#define CDP_RUNNER_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runner/sim_runner.hh"
#include "sim/simulator.hh"

namespace cdp::runner
{

/**
 * One flat key/value row of a report. Values keep their insertion
 * order and are formatted deterministically (integers as decimal,
 * doubles with six fractional digits).
 */
class ReportRow
{
  public:
    ReportRow &add(const std::string &key, const std::string &value);
    ReportRow &add(const std::string &key, const char *value);
    ReportRow &add(const std::string &key, double value);
    ReportRow &add(const std::string &key, std::uint64_t value);
    ReportRow &add(const std::string &key, int value);
    ReportRow &add(const std::string &key, unsigned value);

    /**
     * Append the standard per-run fields (workload, cycles, uops,
     * ipc, mptu, l2 misses, cdp issued/useful).
     */
    ReportRow &addResult(const RunResult &r);

    /** Serialize as a single-line JSON object. */
    std::string json() const;

  private:
    std::vector<std::pair<std::string, std::string>> fields;
};

/**
 * Collector for one bench's structured output. Rows are emitted in
 * the order they were added — callers add them in submission order,
 * which keeps the file deterministic under any `-j`.
 */
class BenchReport
{
  public:
    /** @param bench short name; the file is BENCH_<bench>.json. */
    explicit BenchReport(std::string bench);

    /** Add one job row; returns it for field chaining. */
    ReportRow &row(const std::string &tag);

    /**
     * Write BENCH_<bench>.json including the harness telemetry of
     * @p runner. Emission failures print a warning to stderr rather
     * than aborting the bench (the stdout table already happened).
     */
    void write(const SimRunner &runner) const;

    /** The path the report will be written to. */
    std::string path() const;

  private:
    std::string name;
    std::vector<ReportRow> rows;
};

} // namespace cdp::runner

#endif // CDP_RUNNER_REPORT_HH
