#include "runner/report.hh"

#include <cstdio>
#include <cstdlib>

namespace cdp::runner
{

namespace
{

/** JSON string escaping for the characters our tags can contain. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
quoted(const std::string &s)
{
    return "\"" + escape(s) + "\"";
}

} // namespace

ReportRow &
ReportRow::add(const std::string &key, const std::string &value)
{
    fields.emplace_back(key, quoted(value));
    return *this;
}

ReportRow &
ReportRow::add(const std::string &key, const char *value)
{
    return add(key, std::string(value));
}

ReportRow &
ReportRow::add(const std::string &key, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    fields.emplace_back(key, buf);
    return *this;
}

ReportRow &
ReportRow::add(const std::string &key, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    fields.emplace_back(key, buf);
    return *this;
}

ReportRow &
ReportRow::add(const std::string &key, int value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%d", value);
    fields.emplace_back(key, buf);
    return *this;
}

ReportRow &
ReportRow::add(const std::string &key, unsigned value)
{
    return add(key, static_cast<std::uint64_t>(value));
}

namespace
{

/** "a/b/c/..." join of one per-depth provenance counter array. */
std::string
joinDepths(const std::uint64_t (&v)[provDepthBuckets])
{
    std::string out;
    for (unsigned i = 0; i < provDepthBuckets; ++i) {
        if (i)
            out += "/";
        out += std::to_string(v[i]);
    }
    return out;
}

} // namespace

ReportRow &
ReportRow::addResult(const RunResult &r)
{
    add("workload", r.workload);
    add("cycles", static_cast<std::uint64_t>(r.cycles));
    add("uops", r.uops);
    add("ipc", r.ipc);
    add("mptu", r.mptu());
    add("l2_demand_misses", r.mem.l2DemandMisses);
    add("cdp_issued", r.mem.cdpIssued);
    add("cdp_useful", r.mem.cdpUseful);
    // Provenance block: per-depth counts joined "d0/d1/.../d5+" so
    // the row stays flat and byte-deterministic.
    add("prov_accurate", joinDepths(r.mem.depthAccurate));
    add("prov_late", joinDepths(r.mem.depthLate));
    add("prov_dropped", joinDepths(r.mem.depthDropped));
    add("prov_polluting", joinDepths(r.mem.depthPolluting));
    add("prov_reinforce_promotions", r.mem.reinforcePromotions);
    add("prov_reinforce_rescans", r.mem.rescans);
    return *this;
}

std::string
ReportRow::json() const
{
    std::string out = "{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out += ", ";
        out += quoted(fields[i].first) + ": " + fields[i].second;
    }
    out += "}";
    return out;
}

BenchReport::BenchReport(std::string bench) : name(std::move(bench)) {}

ReportRow &
BenchReport::row(const std::string &tag)
{
    rows.emplace_back();
    rows.back().add("tag", tag);
    return rows.back();
}

std::string
BenchReport::path() const
{
    const char *dir = std::getenv("CDP_BENCH_JSON_DIR");
    const std::string base = dir && *dir ? std::string(dir) : ".";
    return base + "/BENCH_" + name + ".json";
}

void
BenchReport::write(const SimRunner &runner) const
{
    const std::string file = path();
    std::FILE *f = std::fopen(file.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     file.c_str());
        return;
    }
    const HarnessStats hs = runner.stats();
    std::fprintf(f, "{\n  \"bench\": %s,\n  \"schema\": 1,\n"
                    "  \"results\": [\n",
                 quoted(name).c_str());
    for (std::size_t i = 0; i < rows.size(); ++i)
        std::fprintf(f, "    %s%s\n", rows[i].json().c_str(),
                     i + 1 < rows.size() ? "," : "");
    // The harness object is the only scheduling-dependent line in
    // the file; keep it on one line so tooling can drop it before
    // byte-comparing runs (see tests/runner_determinism.py).
    std::fprintf(f,
                 "  ],\n"
                 "  \"harness\": {\"jobs\": %u, \"sims\": %llu, "
                 "\"wall_seconds\": %.3f, \"sims_per_second\": "
                 "%.2f}\n}\n",
                 hs.jobs, static_cast<unsigned long long>(hs.sims),
                 hs.wallSeconds, hs.simsPerSecond());
    std::fclose(f);
}

} // namespace cdp::runner
