/**
 * @file
 * Whole-machine checkpoint/restore (DESIGN.md §11).
 *
 * The Simulator's checkpoint members live here, next to the format
 * engine, so the section layout and the component serializers evolve
 * together. A checkpoint is a sequence of tagged sections:
 *
 *   CFG!  guarded configuration (name/value pairs, compared on load)
 *   STOR  BackingStore (sparse physical pages)
 *   FRAM  FrameAllocator
 *   PGTB  PageTable roots (table content lives in STOR)
 *   HEAP  HeapAllocator bump state
 *   WKLD  workload generator (name-guarded)
 *   MSYS  MemorySystem (caches, TLB, prefetchers, arbiter ledger)
 *   CORE  OooCore pipeline + branch predictor
 *   STAT  StatGroup scalar/distribution values
 *
 * The guarded configuration covers everything that shapes machine
 * *state*: restoring into a different geometry would silently corrupt
 * the run, so it fails loudly instead. The deliberately unguarded
 * knobs — cdp.*, adaptive.*, trace.*, run lengths — only shape future
 * *behaviour*; forking one warm checkpoint across a sweep of them is
 * the whole point of the subsystem.
 */

#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hh"
#include "snapshot/ckpt_io.hh"

namespace cdp
{

namespace
{

/**
 * The guarded subset of the configuration as ordered name/value
 * pairs. Both ends build the same list, so a mismatch reports the
 * offending knob by name.
 */
std::vector<std::pair<std::string, std::string>>
guardedConfig(const SimConfig &cfg)
{
    std::vector<std::pair<std::string, std::string>> kv;
    const auto add = [&kv](const char *name, std::uint64_t v) {
        kv.emplace_back(name, std::to_string(v));
    };
    kv.emplace_back("workload", cfg.workload);
    add("workload_seed", cfg.workloadSeed);
    add("phys_frames", cfg.physFrames);

    add("core.issue_width", cfg.core.issueWidth);
    add("core.retire_width", cfg.core.retireWidth);
    add("core.rob_entries", cfg.core.robEntries);
    add("core.load_buffer", cfg.core.loadBuffer);
    add("core.store_buffer", cfg.core.storeBuffer);
    add("core.mispredict_penalty", cfg.core.mispredictPenalty);
    add("core.bp_entries", cfg.core.bpEntries);
    add("core.alu_latency", cfg.core.aluLatency);
    add("core.fp_latency", cfg.core.fpLatency);

    add("mem.l1_bytes", cfg.mem.l1Bytes);
    add("mem.l1_ways", cfg.mem.l1Ways);
    add("mem.l1_latency", cfg.mem.l1Latency);
    add("mem.l2_bytes", cfg.mem.l2Bytes);
    add("mem.l2_ways", cfg.mem.l2Ways);
    add("mem.l2_latency", cfg.mem.l2Latency);
    add("mem.dtlb_entries", cfg.mem.dtlbEntries);
    add("mem.dtlb_ways", cfg.mem.dtlbWays);
    add("mem.bus_latency", cfg.mem.busLatency);
    add("mem.bus_occupancy", cfg.mem.busOccupancy);
    add("mem.bus_queue", cfg.mem.busQueueSize);
    add("mem.l2_queue", cfg.mem.l2QueueSize);
    add("mem.drain_budget_cap", cfg.mem.drainBudgetCap);

    add("stride.enabled", cfg.stride.enabled ? 1 : 0);
    kv.emplace_back("stride.policy", cfg.stride.policy);
    add("stride.table_entries", cfg.stride.tableEntries);
    add("stride.degree", cfg.stride.degree);
    add("stride.conf_threshold", cfg.stride.confThreshold);

    add("markov.enabled", cfg.markov.enabled ? 1 : 0);
    add("markov.stab_bytes", cfg.markov.stabBytes);
    add("markov.ways", cfg.markov.ways);
    add("markov.fanout", cfg.markov.fanout);

    add("pollution.enabled", cfg.pollution.enabled ? 1 : 0);
    add("pollution.seed", cfg.pollution.seed);
    return kv;
}

} // namespace

void
Simulator::quiesce()
{
    memsys->drainAll(cpu->currentCycle());
}

// cdplint: requires_quiesced(memsys)
void
Simulator::saveCheckpoint(std::ostream &os) const
{
    snap::Writer w(os);

    w.beginSection("CFG!");
    const auto kv = guardedConfig(cfg);
    w.u64(kv.size());
    for (const auto &pair : kv) {
        w.str(pair.first);
        w.str(pair.second);
    }
    w.endSection();

    w.beginSection("STOR");
    store.saveState(w);
    w.endSection();

    w.beginSection("FRAM");
    frames.saveState(w);
    w.endSection();

    w.beginSection("PGTB");
    pageTable.saveState(w);
    w.endSection();

    w.beginSection("HEAP");
    heapAlloc->saveState(w);
    w.endSection();

    w.beginSection("WKLD");
    w.str(source->name());
    source->saveState(w);
    w.endSection();

    w.beginSection("MSYS");
    memsys->saveState(w);
    w.endSection();

    w.beginSection("CORE");
    cpu->saveState(w);
    w.endSection();

    w.beginSection("STAT");
    statGroup.saveValues(w);
    w.endSection();

    w.finish();
}

void
Simulator::restoreCheckpoint(std::istream &is)
{
    snap::Reader r(is);

    r.enterSection("CFG!");
    const auto kv = guardedConfig(cfg);
    r.expectU64(kv.size(), "guarded-config entry count");
    for (const auto &pair : kv) {
        r.expectStr(pair.first, "guarded-config key");
        r.expectStr(pair.second, pair.first.c_str());
    }
    r.leaveSection();

    r.enterSection("STOR");
    store.loadState(r);
    r.leaveSection();

    r.enterSection("FRAM");
    frames.loadState(r);
    r.leaveSection();

    r.enterSection("PGTB");
    pageTable.loadState(r);
    r.leaveSection();

    r.enterSection("HEAP");
    heapAlloc->loadState(r);
    r.leaveSection();

    r.enterSection("WKLD");
    r.expectStr(source->name(), "workload generator");
    source->loadState(r);
    r.leaveSection();

    r.enterSection("MSYS");
    memsys->loadState(r);
    r.leaveSection();

    r.enterSection("CORE");
    cpu->loadState(r);
    r.leaveSection();

    r.enterSection("STAT");
    statGroup.loadValues(r);
    r.leaveSection();

    r.finish();
    memsys->checkInvariants();
}

// cdplint: requires_quiesced(memsys)
void
Simulator::saveCheckpointFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw snap::SnapshotError("cannot open checkpoint file '" +
                                  path + "' for writing");
    saveCheckpoint(os);
    os.flush();
    if (!os)
        throw snap::SnapshotError("write to checkpoint file '" + path +
                                  "' failed");
}

void
Simulator::restoreCheckpointFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw snap::SnapshotError("cannot open checkpoint file '" +
                                  path + "' for reading");
    restoreCheckpoint(is);
}

} // namespace cdp
