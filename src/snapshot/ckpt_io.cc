#include "snapshot/ckpt_io.hh"

#include <cstring>
#include <istream>
#include <ostream>

namespace cdp
{
namespace snap
{

namespace
{

constexpr char magic[] = "CDPSNAP\n"; // 8 bytes, no terminator written
constexpr std::size_t magicLen = 8;
constexpr char endTag[] = "END!";
constexpr std::size_t tagLen = 4;

/** FNV-1a 64-bit over a byte buffer. */
std::uint64_t
fnv1a(const std::string &data)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : data) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

void
putLe32(std::string &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putLe64(std::string &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

} // namespace

Writer::Writer(std::ostream &os) : os(os)
{
    std::string header(magic, magicLen);
    putLe32(header, formatVersion);
    os.write(header.data(), static_cast<std::streamsize>(header.size()));
    if (!os)
        throw SnapshotError("checkpoint write failed (header)");
}

void
Writer::beginSection(const char *tag)
{
    if (finished)
        throw SnapshotError("checkpoint writer already finished");
    if (inSection)
        throw SnapshotError("checkpoint section '" + curTag +
                            "' still open");
    if (std::strlen(tag) != tagLen)
        throw SnapshotError(std::string("bad section tag '") + tag + "'");
    curTag.assign(tag, tagLen);
    buf.clear();
    inSection = true;
}

void
Writer::endSection()
{
    if (!inSection)
        throw SnapshotError("endSection with no open section");
    std::string frame = curTag;
    putLe64(frame, buf.size());
    frame += buf;
    putLe64(frame, fnv1a(buf));
    os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    if (!os)
        throw SnapshotError("checkpoint write failed (section '" +
                            curTag + "')");
    inSection = false;
}

void
Writer::finish()
{
    beginSection(endTag);
    endSection();
    os.flush();
    if (!os)
        throw SnapshotError("checkpoint write failed (trailer)");
    finished = true;
}

void
Writer::raw(const void *p, std::size_t n)
{
    if (!inSection)
        throw SnapshotError("checkpoint value written outside a section");
    buf.append(static_cast<const char *>(p), n);
}

void
Writer::u8(std::uint8_t v)
{
    raw(&v, 1);
}

void
Writer::u32(std::uint32_t v)
{
    if (!inSection)
        throw SnapshotError("checkpoint value written outside a section");
    putLe32(buf, v);
}

void
Writer::u64(std::uint64_t v)
{
    if (!inSection)
        throw SnapshotError("checkpoint value written outside a section");
    putLe64(buf, v);
}

void
Writer::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Writer::boolean(bool v)
{
    u8(v ? 1 : 0);
}

void
Writer::str(const std::string &s)
{
    u64(s.size());
    raw(s.data(), s.size());
}

void
Writer::bytes(const std::uint8_t *p, std::size_t n)
{
    raw(p, n);
}

void
Writer::rng(const Rng &r)
{
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
    r.getState(s0, s1);
    u64(s0);
    u64(s1);
}

Reader::Reader(std::istream &is) : is(is)
{
    char header[magicLen + 4];
    is.read(header, sizeof(header));
    if (is.gcount() != static_cast<std::streamsize>(sizeof(header)))
        throw SnapshotError(
            "truncated checkpoint: stream ends inside the header "
            "(not a checkpoint file?)");
    if (std::memcmp(header, magic, magicLen) != 0)
        throw SnapshotError(
            "bad checkpoint magic: this is not a CDP checkpoint file");
    std::uint32_t version = 0;
    for (unsigned i = 0; i < 4; ++i)
        version |= static_cast<std::uint32_t>(
                       static_cast<std::uint8_t>(header[magicLen + i]))
                   << (8 * i);
    if (version != formatVersion)
        throw SnapshotError(
            "checkpoint format version skew: file has version " +
            std::to_string(version) + ", this binary reads version " +
            std::to_string(formatVersion) +
            " (re-create the checkpoint with a matching build)");
}

void
Reader::enterSection(const char *tag)
{
    if (inSection)
        throw SnapshotError("checkpoint section '" + curTag +
                            "' still open");
    char frameTag[tagLen];
    is.read(frameTag, tagLen);
    if (is.gcount() != static_cast<std::streamsize>(tagLen))
        throw SnapshotError(
            std::string("truncated checkpoint: stream ends where "
                        "section '") +
            tag + "' was expected");
    if (std::memcmp(frameTag, tag, tagLen) != 0)
        throw SnapshotError(
            std::string("checkpoint section mismatch: expected '") + tag +
            "', found '" + std::string(frameTag, tagLen) +
            "' (file written by an incompatible layout?)");
    char lenBytes[8];
    is.read(lenBytes, 8);
    if (is.gcount() != 8)
        throw SnapshotError(std::string("truncated checkpoint: section '") +
                            tag + "' header is cut off");
    std::uint64_t len = 0;
    for (unsigned i = 0; i < 8; ++i)
        len |= static_cast<std::uint64_t>(
                   static_cast<std::uint8_t>(lenBytes[i]))
               << (8 * i);
    payload.resize(len);
    if (len) {
        is.read(&payload[0], static_cast<std::streamsize>(len));
        if (is.gcount() != static_cast<std::streamsize>(len))
            throw SnapshotError(
                std::string("truncated checkpoint: section '") + tag +
                "' promises " + std::to_string(len) + " bytes, stream has " +
                std::to_string(is.gcount()));
    }
    char sumBytes[8];
    is.read(sumBytes, 8);
    if (is.gcount() != 8)
        throw SnapshotError(std::string("truncated checkpoint: section '") +
                            tag + "' checksum is cut off");
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < 8; ++i)
        sum |= static_cast<std::uint64_t>(
                   static_cast<std::uint8_t>(sumBytes[i]))
               << (8 * i);
    if (sum != fnv1a(payload))
        throw SnapshotError(std::string("corrupted checkpoint: section '") +
                            tag + "' fails its checksum");
    curTag.assign(tag, tagLen);
    pos = 0;
    inSection = true;
}

void
Reader::leaveSection()
{
    if (!inSection)
        throw SnapshotError("leaveSection with no open section");
    if (pos != payload.size())
        fail("section payload has " +
             std::to_string(payload.size() - pos) +
             " unconsumed byte(s) — layout drift");
    inSection = false;
}

void
Reader::finish()
{
    enterSection(endTag);
    leaveSection();
}

void
Reader::need(std::size_t n)
{
    if (!inSection)
        throw SnapshotError("checkpoint value read outside a section");
    if (payload.size() - pos < n)
        fail("payload exhausted reading a " + std::to_string(n) +
             "-byte value");
}

std::uint8_t
Reader::u8()
{
    need(1);
    return static_cast<std::uint8_t>(payload[pos++]);
}

std::uint32_t
Reader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(payload[pos + i]))
             << (8 * i);
    pos += 4;
    return v;
}

std::uint64_t
Reader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(payload[pos + i]))
             << (8 * i);
    pos += 8;
    return v;
}

double
Reader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

bool
Reader::boolean()
{
    const std::uint8_t v = u8();
    if (v > 1)
        fail("boolean encoded as " + std::to_string(v));
    return v != 0;
}

std::string
Reader::str()
{
    const std::uint64_t n = u64();
    need(n);
    std::string s = payload.substr(pos, n);
    pos += n;
    return s;
}

void
Reader::bytes(std::uint8_t *p, std::size_t n)
{
    need(n);
    std::memcpy(p, payload.data() + pos, n);
    pos += n;
}

void
Reader::rng(Rng &r)
{
    const std::uint64_t s0 = u64();
    const std::uint64_t s1 = u64();
    r.setState(s0, s1);
}

void
Reader::expectU64(std::uint64_t expected, const char *what)
{
    const std::uint64_t found = u64();
    if (found != expected)
        fail(std::string(what) + " mismatch: checkpoint has " +
             std::to_string(found) + ", this simulator has " +
             std::to_string(expected));
}

void
Reader::expectStr(const std::string &expected, const char *what)
{
    const std::string found = str();
    if (found != expected)
        fail(std::string(what) + " mismatch: checkpoint has '" + found +
             "', this simulator has '" + expected + "'");
}

void
Reader::fail(const std::string &what) const
{
    throw SnapshotError("checkpoint section '" + curTag + "' (offset " +
                        std::to_string(pos) + "): " + what);
}

} // namespace snap
} // namespace cdp
