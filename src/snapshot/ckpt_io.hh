/**
 * @file
 * Binary checkpoint container format (DESIGN.md §11).
 *
 * A checkpoint is a magic header, a format version, and a sequence of
 * tagged sections:
 *
 *     "CDPSNAP\n"  u32 version
 *     [ 4-byte tag | u64 payload bytes | payload | u64 FNV-1a ]...
 *     [ "END!" trailer section with empty payload ]
 *
 * All integers are little-endian regardless of host byte order, and
 * every multi-byte value inside a payload goes through the typed
 * Writer helpers, so serializing the same machine state twice yields
 * byte-identical files. Component serializers iterate associative
 * containers in key-sorted order (enforced by cdplint's
 * unordered-output rule), which is what makes the format — and the
 * warm-fork sweeps built on it — deterministic.
 *
 * Robustness contract: a Reader fed a truncated, corrupted, or
 * version-skewed stream throws SnapshotError with a diagnostic that
 * names the failing section and payload offset. It never invokes
 * undefined behaviour and never returns partially restored state to
 * the caller (Simulator::restoreCheckpoint rethrows before any
 * component is left half-written — see DESIGN.md §11).
 */

#ifndef CDP_SNAPSHOT_CKPT_IO_HH
#define CDP_SNAPSHOT_CKPT_IO_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "common/rng.hh"

namespace cdp
{
namespace snap
{

/** Current checkpoint format version (bump on layout changes). */
constexpr std::uint32_t formatVersion = 2;

/**
 * Any failure to serialize or deserialize a checkpoint: truncation,
 * checksum mismatch, version skew, section-tag mismatch, config
 * guard violation, or a non-quiesced machine.
 */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Serializes one checkpoint to an ostream. Values are staged into an
 * in-memory section buffer; endSection() emits the framed, checksummed
 * section. All typed writes must happen between beginSection() and
 * endSection(); finish() writes the trailer and flushes.
 */
class Writer
{
  public:
    /** Write the container header to @p os (opened in binary mode). */
    explicit Writer(std::ostream &os);

    /** Open a section; @p tag must be exactly 4 characters. */
    void beginSection(const char *tag);

    /** Frame, checksum, and emit the open section. */
    void endSection();

    /** Emit the end-of-checkpoint trailer section. */
    void finish();

    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** Doubles travel as their IEEE-754 bit pattern. */
    void f64(double v);
    void boolean(bool v);
    /** Length-prefixed byte string. */
    void str(const std::string &s);
    /** Raw bytes, caller knows the length (e.g. a memory frame). */
    void bytes(const std::uint8_t *p, std::size_t n);
    /** The two raw xorshift128+ state words of @p r. */
    void rng(const Rng &r);

  private:
    void raw(const void *p, std::size_t n);

    std::ostream &os;
    std::string buf;
    std::string curTag;
    bool inSection = false;
    bool finished = false;
};

/**
 * Deserializes one checkpoint from an istream. enterSection() loads
 * and checksum-verifies a whole section payload; the typed reads then
 * consume it; leaveSection() requires the payload to be fully
 * consumed, so layout drift is caught at the section where it
 * happens.
 */
class Reader
{
  public:
    /** Validate the container header of @p is (binary mode). */
    explicit Reader(std::istream &is);

    /** Read and verify the next section's frame; must match @p tag. */
    void enterSection(const char *tag);

    /** Require the current section payload to be fully consumed. */
    void leaveSection();

    /** Require the end-of-checkpoint trailer. */
    void finish();

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    bool boolean();
    std::string str();
    void bytes(std::uint8_t *p, std::size_t n);
    void rng(Rng &r);

    /**
     * Read a u64 and require it to equal @p expected — the geometry /
     * shape guard used by every component deserializer. @p what names
     * the field in the diagnostic.
     */
    void expectU64(std::uint64_t expected, const char *what);

    /** String flavour of expectU64 (workload names etc.). */
    void expectStr(const std::string &expected, const char *what);

    /**
     * Throw SnapshotError for a semantic problem found by a component
     * deserializer, prefixed with the current section and offset.
     */
    [[noreturn]] void fail(const std::string &what) const;

  private:
    void need(std::size_t n);

    std::istream &is;
    std::string payload;
    std::size_t pos = 0;
    std::string curTag;
    bool inSection = false;
};

} // namespace snap
} // namespace cdp

#endif // CDP_SNAPSHOT_CKPT_IO_HH
