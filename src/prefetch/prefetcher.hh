/**
 * @file
 * Common interface for miss-stream-driven prefetchers.
 *
 * The stride prefetcher (baseline, always on in the paper) and the
 * Markov prefetcher (Section 5 comparison) both watch a demand miss
 * stream and emit candidate virtual addresses. The content prefetcher
 * is deliberately *not* behind this interface: it consumes fill
 * contents, not miss addresses, which is the paper's whole point.
 */

#ifndef CDP_PREFETCH_PREFETCHER_HH
#define CDP_PREFETCH_PREFETCHER_HH

#include <vector>

#include "common/types.hh"

namespace cdp
{

/**
 * Abstract miss-driven prefetcher.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe one demand miss.
     * @param pc program counter of the missing load
     * @param vaddr effective address that missed
     * @return virtual addresses to prefetch (possibly empty)
     */
    virtual std::vector<Addr> observeMiss(Addr pc, Addr vaddr) = 0;

    /** Identifying name for stats and traces. */
    virtual const char *name() const = 0;
};

} // namespace cdp

#endif // CDP_PREFETCH_PREFETCHER_HH
