#include "prefetch/markov_prefetcher.hh"

#include <algorithm>

namespace cdp
{

namespace
{

unsigned
floorPow2(std::uint64_t v)
{
    unsigned p = 1;
    while (static_cast<std::uint64_t>(p) * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

MarkovPrefetcher::MarkovPrefetcher(std::uint64_t capacity_bytes,
                                   unsigned ways, unsigned fanout,
                                   StatGroup *stats,
                                   const std::string &name)
    : ways(ways), fanout(fanout),
      observed(stats ? *stats : dummyGroup, name + ".observed",
               "demand misses observed"),
      issued(stats ? *stats : dummyGroup, name + ".issued",
             "markov prefetches issued"),
      trained(stats ? *stats : dummyGroup, name + ".trained",
              "STAB transitions recorded")
{
    if (capacity_bytes == 0) {
        entryCapacity = 0;
    } else {
        const std::uint64_t entries =
            std::max<std::uint64_t>(ways, capacity_bytes / bytesPerEntry);
        numSets = floorPow2(entries / ways);
        entryCapacity = static_cast<std::uint64_t>(numSets) * ways;
        setTable.resize(entryCapacity);
    }
}

MarkovPrefetcher::Entry *
MarkovPrefetcher::findEntry(Addr line)
{
    if (entryCapacity == 0) {
        auto it = bigTable.find(line);
        return it == bigTable.end() ? nullptr : &it->second;
    }
    const unsigned set = (line >> lineShift) & (numSets - 1);
    Entry *base = &setTable[static_cast<std::size_t>(set) * ways];
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == line)
            return &base[w];
    }
    return nullptr;
}

MarkovPrefetcher::Entry &
MarkovPrefetcher::allocEntry(Addr line)
{
    if (entryCapacity == 0) {
        Entry &e = bigTable[line];
        e.tag = line;
        e.valid = true;
        return e;
    }
    const unsigned set = (line >> lineShift) & (numSets - 1);
    Entry *base = &setTable[static_cast<std::size_t>(set) * ways];
    Entry *victim = &base[0];
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == line)
            return e;
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    victim->tag = line;
    victim->valid = true;
    victim->successors.clear();
    return *victim;
}

void
MarkovPrefetcher::train(Addr prev, Addr line)
{
    Entry &e = allocEntry(prev);
    e.lruStamp = ++stamp;
    auto &succ = e.successors;
    auto it = std::find(succ.begin(), succ.end(), line);
    if (it != succ.end())
        succ.erase(it);
    succ.insert(succ.begin(), line);
    if (succ.size() > fanout)
        succ.resize(fanout);
    ++trained;
}

std::vector<Addr>
MarkovPrefetcher::observeMiss(Addr /*pc*/, Addr vaddr)
{
    ++observed;
    const Addr line = lineAlign(vaddr);
    std::vector<Addr> out;

    if (Entry *e = findEntry(line)) {
        e->lruStamp = ++stamp;
        for (Addr succ : e->successors) {
            out.push_back(succ);
            ++issued;
        }
    }

    if (havePrev && prevMissLine != line)
        train(prevMissLine, line);
    prevMissLine = line;
    havePrev = true;
    return out;
}

std::uint64_t
MarkovPrefetcher::population() const
{
    if (entryCapacity == 0)
        return bigTable.size();
    std::uint64_t n = 0;
    for (const auto &e : setTable)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace cdp
