#include "prefetch/markov_prefetcher.hh"

#include <algorithm>

#include "snapshot/ckpt_io.hh"

namespace cdp
{

namespace
{

unsigned
floorPow2(std::uint64_t v)
{
    unsigned p = 1;
    while (static_cast<std::uint64_t>(p) * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

MarkovPrefetcher::MarkovPrefetcher(std::uint64_t capacity_bytes,
                                   unsigned ways, unsigned fanout,
                                   StatGroup *stats,
                                   const std::string &name)
    : ways(ways), fanout(fanout),
      observed(stats ? *stats : dummyGroup, name + ".observed",
               "demand misses observed"),
      issued(stats ? *stats : dummyGroup, name + ".issued",
             "markov prefetches issued"),
      trained(stats ? *stats : dummyGroup, name + ".trained",
              "STAB transitions recorded")
{
    if (capacity_bytes == 0) {
        entryCapacity = 0;
    } else {
        const std::uint64_t entries =
            std::max<std::uint64_t>(ways, capacity_bytes / bytesPerEntry);
        numSets = floorPow2(entries / ways);
        entryCapacity = static_cast<std::uint64_t>(numSets) * ways;
        setTable.resize(entryCapacity);
    }
}

MarkovPrefetcher::Entry *
MarkovPrefetcher::findEntry(Addr line)
{
    if (entryCapacity == 0) {
        auto it = bigTable.find(line);
        return it == bigTable.end() ? nullptr : &it->second;
    }
    const unsigned set = (line >> lineShift) & (numSets - 1);
    Entry *base = &setTable[static_cast<std::size_t>(set) * ways];
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == line)
            return &base[w];
    }
    return nullptr;
}

MarkovPrefetcher::Entry &
MarkovPrefetcher::allocEntry(Addr line)
{
    if (entryCapacity == 0) {
        Entry &e = bigTable[line];
        e.tag = line;
        e.valid = true;
        return e;
    }
    const unsigned set = (line >> lineShift) & (numSets - 1);
    Entry *base = &setTable[static_cast<std::size_t>(set) * ways];
    Entry *victim = &base[0];
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == line)
            return e;
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    victim->tag = line;
    victim->valid = true;
    victim->successors.clear();
    return *victim;
}

void
MarkovPrefetcher::train(Addr prev, Addr line)
{
    Entry &e = allocEntry(prev);
    e.lruStamp = ++stamp;
    auto &succ = e.successors;
    auto it = std::find(succ.begin(), succ.end(), line);
    if (it != succ.end())
        succ.erase(it);
    succ.insert(succ.begin(), line);
    if (succ.size() > fanout)
        succ.resize(fanout);
    ++trained;
}

std::vector<Addr>
MarkovPrefetcher::observeMiss(Addr /*pc*/, Addr vaddr)
{
    ++observed;
    const Addr line = lineAlign(vaddr);
    std::vector<Addr> out;

    if (Entry *e = findEntry(line)) {
        e->lruStamp = ++stamp;
        for (Addr succ : e->successors) {
            out.push_back(succ);
            ++issued;
        }
    }

    if (havePrev && prevMissLine != line)
        train(prevMissLine, line);
    prevMissLine = line;
    havePrev = true;
    return out;
}

std::uint64_t
MarkovPrefetcher::population() const
{
    if (entryCapacity == 0)
        return bigTable.size();
    std::uint64_t n = 0;
    for (const auto &e : setTable)
        n += e.valid ? 1 : 0;
    return n;
}

namespace
{

void
saveMarkovEntry(snap::Writer &w, Addr tag, std::uint64_t lru_stamp,
                bool valid, const std::vector<Addr> &successors)
{
    w.u32(tag);
    w.u64(lru_stamp);
    w.boolean(valid);
    w.u64(successors.size());
    for (const Addr s : successors)
        w.u32(s);
}

} // namespace

void
MarkovPrefetcher::saveState(snap::Writer &w) const
{
    w.u64(entryCapacity);
    w.u64(ways);
    w.u64(fanout);
    w.u64(numSets);
    w.u64(stamp);
    w.u32(prevMissLine);
    w.boolean(havePrev);

    w.u64(setTable.size());
    for (const Entry &e : setTable)
        saveMarkovEntry(w, e.tag, e.lruStamp, e.valid, e.successors);

    // The unbounded STAB travels key-sorted: the map is hash-ordered,
    // the checkpoint must be byte-deterministic.
    std::vector<Addr> keys;
    keys.reserve(bigTable.size());
    for (const auto &kv : bigTable)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (const Addr key : keys) {
        const Entry &e = bigTable.at(key);
        w.u32(key);
        saveMarkovEntry(w, e.tag, e.lruStamp, e.valid, e.successors);
    }
}

void
MarkovPrefetcher::loadState(snap::Reader &r)
{
    r.expectU64(entryCapacity, "Markov STAB capacity");
    r.expectU64(ways, "Markov STAB ways");
    r.expectU64(fanout, "Markov fan-out");
    r.expectU64(numSets, "Markov STAB sets");
    stamp = r.u64();
    prevMissLine = r.u32();
    havePrev = r.boolean();

    const auto loadEntry = [&](Entry &e) {
        e.tag = r.u32();
        e.lruStamp = r.u64();
        e.valid = r.boolean();
        const std::uint64_t nsucc = r.u64();
        if (nsucc > fanout)
            r.fail("Markov entry has " + std::to_string(nsucc) +
                   " successors, fan-out is " + std::to_string(fanout));
        e.successors.clear();
        for (std::uint64_t i = 0; i < nsucc; ++i)
            e.successors.push_back(r.u32());
    };

    r.expectU64(setTable.size(), "Markov bounded-STAB slots");
    for (Entry &e : setTable)
        loadEntry(e);

    const std::uint64_t nbig = r.u64();
    bigTable.clear();
    Addr prevKey = 0;
    for (std::uint64_t i = 0; i < nbig; ++i) {
        const Addr key = r.u32();
        if (i > 0 && key <= prevKey)
            r.fail("Markov unbounded-STAB keys not strictly increasing");
        prevKey = key;
        loadEntry(bigTable[key]);
    }
}

} // namespace cdp
