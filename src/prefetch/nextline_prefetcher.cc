#include "prefetch/nextline_prefetcher.hh"

#include "snapshot/ckpt_io.hh"

namespace cdp
{

NextLinePrefetcher::NextLinePrefetcher(unsigned degree, bool tagged,
                                       StatGroup *stats,
                                       const std::string &name)
    : degree(degree ? degree : 1), tagged(tagged),
      observed(stats ? *stats : dummyGroup, name + ".observed",
               "demand misses observed"),
      issued(stats ? *stats : dummyGroup, name + ".issued",
             "next-line prefetches issued"),
      suppressed(stats ? *stats : dummyGroup, name + ".suppressed",
                 "predictions suppressed by the tag filter")
{
}

std::vector<Addr>
NextLinePrefetcher::observeMiss(Addr /*pc*/, Addr vaddr)
{
    ++observed;
    std::vector<Addr> out;
    const Addr base = lineAlign(vaddr);
    for (unsigned d = 1; d <= degree; ++d) {
        const Addr line = base + d * lineBytes;
        if (line < base)
            break; // wrapped past the top of the address space
        if (tagged && recentSet.count(line)) {
            ++suppressed;
            continue;
        }
        out.push_back(line);
        rememberIssued(line);
        ++issued;
    }
    return out;
}

bool
NextLinePrefetcher::recentlyIssued(Addr line_va) const
{
    return recentSet.count(lineAlign(line_va)) != 0;
}

void
NextLinePrefetcher::rememberIssued(Addr line_va)
{
    line_va = lineAlign(line_va);
    if (recentSet.insert(line_va).second) {
        recentFifo.push_back(line_va);
        if (recentFifo.size() > recentCapacity) {
            recentSet.erase(recentFifo.front());
            recentFifo.pop_front();
        }
    }
}

void
NextLinePrefetcher::saveState(snap::Writer &w) const
{
    w.u64(recentFifo.size());
    for (const Addr a : recentFifo)
        w.u32(a);
}

void
NextLinePrefetcher::loadState(snap::Reader &r)
{
    const std::uint64_t n = r.u64();
    if (n > recentCapacity)
        r.fail("next-line recent-issue ring holds " + std::to_string(n) +
               " entries, capacity is " + std::to_string(recentCapacity));
    recentFifo.clear();
    recentSet.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr a = r.u32();
        recentFifo.push_back(a);
        recentSet.insert(a);
    }
}

} // namespace cdp
