/**
 * @file
 * PC-indexed stride prefetcher (reference-prediction-table style,
 * Chen & Baer). This is the paper's *baseline* enhancement: every
 * speedup reported for the content prefetcher is measured relative to
 * a machine that already has this prefetcher (Section 2.1), so its
 * fidelity matters for the shape of every figure.
 *
 * Each table entry tracks the last effective address and stride of
 * one static load, with a two-bit confidence state machine; once
 * confidence is established, the next @p degree strided lines are
 * prefetched.
 */

#ifndef CDP_PREFETCH_STRIDE_PREFETCHER_HH
#define CDP_PREFETCH_STRIDE_PREFETCHER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "prefetch/prefetcher.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/**
 * Reference-prediction-table stride prefetcher.
 */
class StridePrefetcher : public Prefetcher
{
  public:
    /**
     * @param table_entries RPT entries (direct mapped on PC)
     * @param degree lines prefetched ahead once confident
     * @param conf_threshold confidence needed before prefetching
     */
    StridePrefetcher(unsigned table_entries = 256, unsigned degree = 2,
                     unsigned conf_threshold = 2,
                     StatGroup *stats = nullptr,
                     const std::string &name = "stride");

    std::vector<Addr> observeMiss(Addr pc, Addr vaddr) override;
    const char *name() const override { return "stride"; }

    /**
     * Did the stride prefetcher recently issue a prefetch covering
     * @p line_va? Used to compute the paper's *adjusted* coverage
     * and accuracy (Figure 7: "subtracting the content prefetches
     * that would have also been issued by the stride prefetcher").
     */
    bool recentlyIssued(Addr line_va) const;

    std::uint64_t issuedCount() const { return issued.value(); }

    /** Serialize RPT entries + the recent-issue ring. */
    void saveState(snap::Writer &w) const;

    /** Restore; table geometry must match. */
    void loadState(snap::Reader &r);

  private:
    struct Entry
    {
        Addr pcTag = 0;
        Addr lastAddr = 0;
        std::int32_t stride = 0;
        unsigned confidence = 0;
        bool valid = false;
    };

    void rememberIssued(Addr line_va);

    std::vector<Entry> table;
    // cdplint: transient(degree, confThreshold) -- construction-time policy knobs; the restoring side's own config governs
    unsigned degree;
    unsigned confThreshold;

    /** Ring of recently issued line addresses (adjusted stats). */
    static constexpr std::size_t recentCapacity = 4096;
    std::deque<Addr> recentFifo;
    // cdplint: transient(recentSet) -- index over recentFifo, rebuilt from it in loadState
    std::unordered_set<Addr> recentSet;

    // cdplint: transient(dummyGroup, observed, issued) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyGroup;
    Scalar observed;
    Scalar issued;
};

} // namespace cdp

#endif // CDP_PREFETCH_STRIDE_PREFETCHER_HH
