/**
 * @file
 * Tagged next-line prefetcher — the simplest classical hardware
 * prefetcher (one-block lookahead, Smith 1982; the degenerate case
 * of Jouppi's stream buffers the paper cites as related work).
 *
 * On every observed miss it prefetches the next @p degree sequential
 * lines. Provided as an alternative baseline to the stride
 * prefetcher so the repository can demonstrate *why* the paper
 * builds on a stride baseline: next-line covers pure streams but
 * wastes bandwidth on irregular traffic, while the PC-indexed stride
 * engine follows per-instruction arithmetic progressions of any
 * stride (see bench_baselines).
 */

#ifndef CDP_PREFETCH_NEXTLINE_PREFETCHER_HH
#define CDP_PREFETCH_NEXTLINE_PREFETCHER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "prefetch/prefetcher.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/**
 * Miss-driven sequential (next-line) prefetcher.
 */
class NextLinePrefetcher : public Prefetcher
{
  public:
    /**
     * @param degree sequential lines fetched per observed miss
     * @param tagged when true, suppress re-issuing lines predicted
     *        recently (classic "tagged" variant)
     */
    explicit NextLinePrefetcher(unsigned degree = 1, bool tagged = true,
                                StatGroup *stats = nullptr,
                                const std::string &name = "nextline");

    std::vector<Addr> observeMiss(Addr pc, Addr vaddr) override;
    const char *name() const override { return "nextline"; }

    /** Was @p line_va recently predicted (for adjusted stats)? */
    bool recentlyIssued(Addr line_va) const;

    std::uint64_t issuedCount() const { return issued.value(); }

    /** Serialize the recent-issue ring (the only mutable state). */
    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    void rememberIssued(Addr line_va);

    // cdplint: transient(degree, tagged) -- construction-time policy knobs; the restoring side's own config governs
    unsigned degree;
    bool tagged;

    static constexpr std::size_t recentCapacity = 4096;
    std::deque<Addr> recentFifo;
    // cdplint: transient(recentSet) -- index over recentFifo, rebuilt from it in loadState
    std::unordered_set<Addr> recentSet;

    // cdplint: transient(dummyGroup, observed, issued, suppressed) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyGroup;
    Scalar observed;
    Scalar issued;
    Scalar suppressed;
};

} // namespace cdp

#endif // CDP_PREFETCH_NEXTLINE_PREFETCHER_HH
