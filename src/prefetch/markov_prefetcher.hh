/**
 * @file
 * 1-history Markov prefetcher (Joseph & Grunwald, ISCA 1997), the
 * comparison point of Section 5.
 *
 * A State Transition Table (STAB) maps a miss line address to the up
 * to four (fan-out) line addresses that followed it in the miss
 * stream, most-recently-observed first, managed LRU. On each miss the
 * successors of the missing line are predicted as prefetches, then
 * the predecessor's successor list is updated.
 *
 * Table 3 configurations are expressed through @p capacity_bytes:
 *   markov_1/2  -> 512 KB STAB, 16-way
 *   markov_1/8  -> 128 KB STAB, 16-way
 *   markov_big  -> capacity_bytes == 0: unbounded STAB
 *
 * Each bounded entry is costed at (tag + fanout successors) * 4 B =
 * 20 bytes, so a 512 KB STAB holds ~26 K entries organized 16-way.
 * The paper blocks the Markov prefetcher whenever the stride
 * prefetcher issued for the same reference; that gating lives in the
 * memory system, which consults the stride engine first.
 */

#ifndef CDP_PREFETCH_MARKOV_PREFETCHER_HH
#define CDP_PREFETCH_MARKOV_PREFETCHER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "prefetch/prefetcher.hh"
#include "stats/stat.hh"

namespace cdp
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/**
 * Bounded or unbounded 1-history Markov prefetcher.
 */
class MarkovPrefetcher : public Prefetcher
{
  public:
    /**
     * @param capacity_bytes STAB budget; 0 means unbounded
     * @param ways set associativity of the bounded STAB
     * @param fanout successors kept (and predicted) per entry
     */
    MarkovPrefetcher(std::uint64_t capacity_bytes, unsigned ways = 16,
                     unsigned fanout = 4, StatGroup *stats = nullptr,
                     const std::string &name = "markov");

    std::vector<Addr> observeMiss(Addr pc, Addr vaddr) override;
    const char *name() const override { return "markov"; }

    /** Entries the bounded STAB can hold (0 when unbounded). */
    std::uint64_t capacityEntries() const { return entryCapacity; }

    /** Entries currently trained. */
    std::uint64_t population() const;

    std::uint64_t issuedCount() const { return issued.value(); }

    /** Bytes modeled per STAB entry (tag + fanout successors). */
    static constexpr std::uint64_t bytesPerEntry = 20;

    /**
     * Serialize the STAB (the unbounded map travels key-sorted so
     * checkpoints are byte-deterministic) and the 1-deep history.
     */
    void saveState(snap::Writer &w) const;

    /** Restore; STAB geometry must match. */
    void loadState(snap::Reader &r);

  private:
    struct Entry
    {
        Addr tag = 0;
        std::vector<Addr> successors; // MRU first, <= fanout
        std::uint64_t lruStamp = 0;
        bool valid = false;
    };

    /** Record transition prev -> line in the STAB. */
    void train(Addr prev, Addr line);

    Entry *findEntry(Addr line);
    Entry &allocEntry(Addr line);

    unsigned ways;
    unsigned fanout;
    std::uint64_t entryCapacity; // 0 = unbounded
    unsigned numSets = 0;        // bounded mode only

    std::vector<Entry> setTable;              // bounded storage
    std::unordered_map<Addr, Entry> bigTable; // unbounded storage

    Addr prevMissLine = 0;
    bool havePrev = false;
    std::uint64_t stamp = 0;

    // cdplint: transient(dummyGroup, observed, issued, trained) -- Stats are observational, reset at warm-up end, and travel via the stats dump, not the checkpoint
    StatGroup dummyGroup;
    Scalar observed;
    Scalar issued;
    Scalar trained;
};

} // namespace cdp

#endif // CDP_PREFETCH_MARKOV_PREFETCHER_HH
