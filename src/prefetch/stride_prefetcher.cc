#include "prefetch/stride_prefetcher.hh"

#include "snapshot/ckpt_io.hh"

namespace cdp
{

StridePrefetcher::StridePrefetcher(unsigned table_entries, unsigned degree,
                                   unsigned conf_threshold,
                                   StatGroup *stats,
                                   const std::string &name)
    : table(table_entries), degree(degree), confThreshold(conf_threshold),
      observed(stats ? *stats : dummyGroup, name + ".observed",
               "demand misses observed"),
      issued(stats ? *stats : dummyGroup, name + ".issued",
             "stride prefetches issued")
{
}

std::vector<Addr>
StridePrefetcher::observeMiss(Addr pc, Addr vaddr)
{
    ++observed;
    std::vector<Addr> out;
    Entry &e = table[(pc >> 2) % table.size()];

    if (!e.valid || e.pcTag != pc) {
        e.pcTag = pc;
        e.lastAddr = vaddr;
        e.stride = 0;
        e.confidence = 0;
        e.valid = true;
        return out;
    }

    const auto new_stride = static_cast<std::int32_t>(vaddr - e.lastAddr);
    if (new_stride == 0) {
        // Same address again (e.g. a miss under a miss); no update.
        return out;
    }

    if (new_stride == e.stride) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        if (e.confidence > 0) {
            --e.confidence;
        } else {
            e.stride = new_stride;
        }
    }
    e.lastAddr = vaddr;

    if (e.confidence >= confThreshold && e.stride != 0) {
        Addr target = vaddr;
        Addr prev_line = lineAlign(vaddr);
        for (unsigned d = 0; d < degree; ++d) {
            target += static_cast<Addr>(e.stride);
            const Addr line = lineAlign(target);
            if (line == prev_line)
                continue; // small stride staying in the same line
            prev_line = line;
            out.push_back(target);
            rememberIssued(line);
            ++issued;
        }
    }
    return out;
}

bool
StridePrefetcher::recentlyIssued(Addr line_va) const
{
    return recentSet.count(lineAlign(line_va)) != 0;
}

void
StridePrefetcher::rememberIssued(Addr line_va)
{
    line_va = lineAlign(line_va);
    if (recentSet.insert(line_va).second) {
        recentFifo.push_back(line_va);
        if (recentFifo.size() > recentCapacity) {
            recentSet.erase(recentFifo.front());
            recentFifo.pop_front();
        }
    }
}

void
StridePrefetcher::saveState(snap::Writer &w) const
{
    w.u64(table.size());
    for (const Entry &e : table) {
        w.u32(e.pcTag);
        w.u32(e.lastAddr);
        w.u32(static_cast<std::uint32_t>(e.stride));
        w.u64(e.confidence);
        w.boolean(e.valid);
    }
    // The FIFO is the source of truth; the set is rebuilt on load.
    w.u64(recentFifo.size());
    for (const Addr a : recentFifo)
        w.u32(a);
}

void
StridePrefetcher::loadState(snap::Reader &r)
{
    r.expectU64(table.size(), "stride RPT entries");
    for (Entry &e : table) {
        e.pcTag = r.u32();
        e.lastAddr = r.u32();
        e.stride = static_cast<std::int32_t>(r.u32());
        e.confidence = static_cast<unsigned>(r.u64());
        e.valid = r.boolean();
    }
    const std::uint64_t n = r.u64();
    if (n > recentCapacity)
        r.fail("stride recent-issue ring holds " + std::to_string(n) +
               " entries, capacity is " + std::to_string(recentCapacity));
    recentFifo.clear();
    recentSet.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr a = r.u32();
        recentFifo.push_back(a);
        recentSet.insert(a);
    }
}

} // namespace cdp
