#include "prefetch/stride_prefetcher.hh"

namespace cdp
{

StridePrefetcher::StridePrefetcher(unsigned table_entries, unsigned degree,
                                   unsigned conf_threshold,
                                   StatGroup *stats,
                                   const std::string &name)
    : table(table_entries), degree(degree), confThreshold(conf_threshold),
      observed(stats ? *stats : dummyGroup, name + ".observed",
               "demand misses observed"),
      issued(stats ? *stats : dummyGroup, name + ".issued",
             "stride prefetches issued")
{
}

std::vector<Addr>
StridePrefetcher::observeMiss(Addr pc, Addr vaddr)
{
    ++observed;
    std::vector<Addr> out;
    Entry &e = table[(pc >> 2) % table.size()];

    if (!e.valid || e.pcTag != pc) {
        e.pcTag = pc;
        e.lastAddr = vaddr;
        e.stride = 0;
        e.confidence = 0;
        e.valid = true;
        return out;
    }

    const auto new_stride = static_cast<std::int32_t>(vaddr - e.lastAddr);
    if (new_stride == 0) {
        // Same address again (e.g. a miss under a miss); no update.
        return out;
    }

    if (new_stride == e.stride) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        if (e.confidence > 0) {
            --e.confidence;
        } else {
            e.stride = new_stride;
        }
    }
    e.lastAddr = vaddr;

    if (e.confidence >= confThreshold && e.stride != 0) {
        Addr target = vaddr;
        Addr prev_line = lineAlign(vaddr);
        for (unsigned d = 0; d < degree; ++d) {
            target += static_cast<Addr>(e.stride);
            const Addr line = lineAlign(target);
            if (line == prev_line)
                continue; // small stride staying in the same line
            prev_line = line;
            out.push_back(target);
            rememberIssued(line);
            ++issued;
        }
    }
    return out;
}

bool
StridePrefetcher::recentlyIssued(Addr line_va) const
{
    return recentSet.count(lineAlign(line_va)) != 0;
}

void
StridePrefetcher::rememberIssued(Addr line_va)
{
    line_va = lineAlign(line_va);
    if (recentSet.insert(line_va).second) {
        recentFifo.push_back(line_va);
        if (recentFifo.size() > recentCapacity) {
            recentSet.erase(recentFifo.front());
            recentFifo.pop_front();
        }
    }
}

} // namespace cdp
