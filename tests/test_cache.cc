/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "memsys/cache.hh"

using namespace cdp;

TEST(Cache, MissOnEmpty)
{
    Cache c(32 * 1024, 8);
    EXPECT_EQ(c.lookup(0x1000), nullptr);
    EXPECT_EQ(c.missCount(), 1u);
}

TEST(Cache, InsertThenHit)
{
    Cache c(32 * 1024, 8);
    c.insert(0x1000);
    EXPECT_NE(c.lookup(0x1000), nullptr);
    EXPECT_EQ(c.hitCount(), 1u);
}

TEST(Cache, HitAnywhereInLine)
{
    Cache c(32 * 1024, 8);
    c.insert(0x1000);
    EXPECT_NE(c.lookup(0x103f), nullptr);
    EXPECT_EQ(c.lookup(0x1040), nullptr); // next line
}

TEST(Cache, GeometryComputed)
{
    Cache c(1024 * 1024, 8);
    EXPECT_EQ(c.numWays(), 8u);
    EXPECT_EQ(c.numSets(), 1024u * 1024 / 8 / lineBytes);
    EXPECT_EQ(c.sizeBytes(), 1024u * 1024);
}

TEST(Cache, SevenWayGeometryOfTheMarkovStudy)
{
    Cache c(896 * 1024, 7); // Table 3: 896 KB 7-way UL2
    EXPECT_EQ(c.numSets(), 2048u);
}

TEST(Cache, BadGeometryRejected)
{
    EXPECT_THROW(Cache(0, 8), std::invalid_argument);
    EXPECT_THROW(Cache(1000, 8), std::invalid_argument);
    EXPECT_THROW(Cache(3 * 64 * 8, 8), std::invalid_argument); // 3 sets
    EXPECT_THROW(Cache(1024, 0), std::invalid_argument);
}

TEST(Cache, LruEviction)
{
    // 2 sets, 2 ways. Lines 0x000, 0x080, 0x100 all map to set 0.
    Cache c(4 * lineBytes, 2);
    ASSERT_EQ(c.numSets(), 2u);
    c.insert(0x000);
    c.insert(0x080);
    c.lookup(0x000); // refresh
    Eviction ev;
    c.insert(0x100, &ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0x080u); // LRU victim
    EXPECT_NE(c.probe(0x000), nullptr);
    EXPECT_EQ(c.probe(0x080), nullptr);
}

TEST(Cache, InsertResetsMetadata)
{
    Cache c(32 * 1024, 8);
    CacheLine &l = c.insert(0x2000);
    l.prefetched = true;
    l.storedDepth = 3;
    l.everUsed = true;
    l.strideOverlap = true;
    CacheLine &l2 = c.insert(0x2000); // refill in place
    EXPECT_FALSE(l2.prefetched);
    EXPECT_EQ(l2.storedDepth, 0u);
    EXPECT_FALSE(l2.everUsed);
    EXPECT_FALSE(l2.strideOverlap);
}

TEST(Cache, RefillSameLineNotCountedAsEviction)
{
    Cache c(32 * 1024, 8);
    c.insert(0x2000);
    Eviction ev;
    c.insert(0x2000, &ev);
    EXPECT_FALSE(ev.valid);
    EXPECT_EQ(c.evictionCount(), 0u);
}

TEST(Cache, EvictionReportsPrefetchedFlag)
{
    Cache c(2 * lineBytes, 2); // one set, two ways
    CacheLine &l = c.insert(0x000);
    l.prefetched = true;
    l.fillType = ReqType::ContentPrefetch;
    c.insert(0x040);
    Eviction ev;
    c.insert(0x080, &ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.prefetched);
    EXPECT_EQ(ev.fillType, ReqType::ContentPrefetch);
}

TEST(Cache, ProbeDoesNotPerturbLruOrStats)
{
    Cache c(2 * lineBytes, 2);
    c.insert(0x000);
    c.insert(0x040);
    // Probing 0x000 must NOT refresh it...
    (void)c.probe(0x000);
    EXPECT_EQ(c.hitCount(), 0u);
    EXPECT_EQ(c.missCount(), 0u);
    // ...so it is still the LRU victim.
    Eviction ev;
    c.insert(0x080, &ev);
    EXPECT_EQ(ev.lineAddr, 0x000u);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(32 * 1024, 8);
    c.insert(0x3000);
    c.invalidate(0x3000);
    EXPECT_EQ(c.probe(0x3000), nullptr);
}

TEST(Cache, FlushAllEmptiesCache)
{
    Cache c(32 * 1024, 8);
    c.insert(0x1000);
    c.insert(0x2000);
    c.flushAll();
    EXPECT_EQ(c.residentLines(), 0u);
}

TEST(Cache, StoredDepthSurvivesLookups)
{
    Cache c(32 * 1024, 8);
    CacheLine &l = c.insert(0x4000);
    l.storedDepth = 2;
    CacheLine *hit = c.lookup(0x4000);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->storedDepth, 2u);
}

/** Property: a cache never holds more lines than its capacity, and
 *  an access pattern within one set touches only that set. */
class CacheGeometry
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>>
{
};

TEST_P(CacheGeometry, CapacityNeverExceeded)
{
    const auto [bytes, ways] = GetParam();
    Cache c(bytes, ways);
    Rng rng(11);
    for (int i = 0; i < 20000; ++i)
        c.insert(lineAlign(static_cast<Addr>(rng.next32())));
    EXPECT_LE(c.residentLines(), bytes / lineBytes);
}

TEST_P(CacheGeometry, WorkingSetOfOneSetFitsExactlyWays)
{
    const auto [bytes, ways] = GetParam();
    Cache c(bytes, ways);
    const Addr set_stride = c.numSets() * lineBytes;
    // Insert exactly `ways` lines mapping to set 0: all must fit.
    for (unsigned w = 0; w < ways; ++w)
        c.insert(w * set_stride);
    for (unsigned w = 0; w < ways; ++w)
        EXPECT_NE(c.probe(w * set_stride), nullptr);
    // One more displaces exactly one.
    c.insert(ways * set_stride);
    unsigned resident = 0;
    for (unsigned w = 0; w <= ways; ++w)
        resident += c.probe(w * set_stride) ? 1 : 0;
    EXPECT_EQ(resident, ways);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_pair(std::uint64_t(32) * 1024, 8u),
                      std::make_pair(std::uint64_t(1024) * 1024, 8u),
                      std::make_pair(std::uint64_t(512) * 1024, 8u),
                      std::make_pair(std::uint64_t(896) * 1024, 7u),
                      std::make_pair(std::uint64_t(4096) * 1024, 8u),
                      std::make_pair(std::uint64_t(8) * 1024, 2u)));
