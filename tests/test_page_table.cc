/** @file Unit tests for the materialized two-level page table. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/backing_store.hh"
#include "mem/frame_allocator.hh"
#include "vm/page_table.hh"

using namespace cdp;

namespace
{

struct PtFixture : ::testing::Test
{
    BackingStore store;
    FrameAllocator frames{0, 4096, /*scatter=*/false};
    PageTable pt{store, frames};
};

} // namespace

TEST_F(PtFixture, UnmappedTranslatesToNothing)
{
    EXPECT_FALSE(pt.translate(0x10000000).has_value());
}

TEST_F(PtFixture, MapThenTranslate)
{
    pt.map(0x10000000, 0x00400000);
    const auto pa = pt.translate(0x10000123);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, 0x00400123u);
}

TEST_F(PtFixture, OffsetPreserved)
{
    pt.map(0x20000000, 0x00800000);
    EXPECT_EQ(*pt.translate(0x20000fff), 0x00800fffu);
    EXPECT_EQ(*pt.translate(0x20000000), 0x00800000u);
}

TEST_F(PtFixture, DistinctPagesIndependent)
{
    pt.map(0x10000000, 0x00400000);
    pt.map(0x10001000, 0x00900000);
    EXPECT_EQ(*pt.translate(0x10000010), 0x00400010u);
    EXPECT_EQ(*pt.translate(0x10001010), 0x00900010u);
    EXPECT_FALSE(pt.translate(0x10002000).has_value());
}

TEST_F(PtFixture, RemapReplacesFrame)
{
    pt.map(0x10000000, 0x00400000);
    pt.map(0x10000000, 0x00500000);
    EXPECT_EQ(*pt.translate(0x10000000), 0x00500000u);
}

TEST_F(PtFixture, MappedPagesCountsUniquePages)
{
    pt.map(0x10000000, 0x00400000);
    pt.map(0x10001000, 0x00500000);
    pt.map(0x10000000, 0x00600000); // remap, not a new page
    EXPECT_EQ(pt.mappedPages(), 2u);
}

TEST_F(PtFixture, TablesLiveInSimulatedMemory)
{
    // Before any map, the root frame is allocated but empty.
    EXPECT_EQ(store.read32(pt.rootAddr()), 0u);
    pt.map(0x10000000, 0x00400000);
    // After a map, the PDE for directory index 0x40 must be valid.
    const Addr pde_addr = pt.rootAddr() + ((0x10000000u >> 22) * 4);
    EXPECT_NE(store.read32(pde_addr) & 1u, 0u);
}

TEST_F(PtFixture, WalkPathForMappedVa)
{
    pt.map(0x10000000, 0x00400000);
    const WalkPath p = pt.walkPath(0x10000abc);
    EXPECT_TRUE(p.complete);
    // The PDE address must be inside the root frame.
    EXPECT_EQ(pageAlign(p.pdeAddr), pt.rootAddr());
    // The PTE must hold the mapped frame.
    EXPECT_EQ(pageAlign(store.read32(p.pteAddr)), 0x00400000u);
}

TEST_F(PtFixture, WalkPathForUnmappedVaIsIncomplete)
{
    const WalkPath p = pt.walkPath(0xb0000000);
    EXPECT_FALSE(p.complete);
    EXPECT_EQ(p.pteAddr, 0u);
}

TEST_F(PtFixture, WalkPathIncompleteButPteInvalidWhenSiblingMapped)
{
    // Map one page; a different page in the same 4-MB region shares
    // the PDE, so the walk is "complete" but the PTE is invalid.
    pt.map(0x10000000, 0x00400000);
    const WalkPath p = pt.walkPath(0x10005000);
    EXPECT_TRUE(p.complete);
    EXPECT_FALSE(pt.translate(0x10005000).has_value());
}

TEST_F(PtFixture, SecondLevelTablesSharedWithinRegion)
{
    const auto before = frames.allocated();
    pt.map(0x10000000, 0x00400000);
    const auto after_first = frames.allocated();
    pt.map(0x10001000, 0x00500000); // same 4-MB region
    EXPECT_EQ(frames.allocated(), after_first);
    pt.map(0x20000000, 0x00600000); // new region -> new table frame
    EXPECT_EQ(frames.allocated(), after_first + 1);
    EXPECT_EQ(after_first, before + 1);
}

/** Property: many random mappings all translate correctly. */
TEST_F(PtFixture, RandomMappingsRoundTrip)
{
    Rng rng(5);
    std::vector<std::pair<Addr, Addr>> maps;
    for (int i = 0; i < 500; ++i) {
        const Addr va = pageAlign(static_cast<Addr>(rng.next32()));
        const Addr pa =
            pageAlign(static_cast<Addr>(rng.below(1u << 24)));
        pt.map(va, pa);
        maps.emplace_back(va, pa);
    }
    // Later mappings of the same VA win.
    for (auto it = maps.rbegin(); it != maps.rend(); ++it) {
        bool overwritten = false;
        for (auto jt = maps.rbegin(); jt != it; ++jt)
            overwritten |= (jt->first == it->first);
        if (!overwritten) {
            const auto got = pt.translate(it->first | 0x7);
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, (it->second | 0x7));
        }
    }
}
