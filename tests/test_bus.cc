/** @file Unit tests for the bus/DRAM timing model. */

#include <gtest/gtest.h>

#include "memsys/bus.hh"

using namespace cdp;

TEST(Bus, IdleServiceTakesFullLatency)
{
    Bus bus(460, 60);
    EXPECT_EQ(bus.service(1000), 1460u);
}

TEST(Bus, OccupancyDelaysNextTransfer)
{
    Bus bus(460, 60);
    bus.service(1000);               // occupies until 1060
    EXPECT_EQ(bus.service(1000), 1060u + 460u);
}

TEST(Bus, IdleGapsDoNotAccumulate)
{
    Bus bus(460, 60);
    bus.service(0);
    // Long idle gap; next transfer starts immediately at `now`.
    EXPECT_EQ(bus.service(100000), 100460u);
}

TEST(Bus, FreeAtTracksOccupancy)
{
    Bus bus(460, 60);
    EXPECT_TRUE(bus.freeAt(0));
    bus.service(100);
    EXPECT_FALSE(bus.freeAt(100));
    EXPECT_FALSE(bus.freeAt(159));
    EXPECT_TRUE(bus.freeAt(160));
    EXPECT_EQ(bus.freeCycle(), 160u);
}

TEST(Bus, BandwidthBound)
{
    // N back-to-back transfers serialize at one per occupancy period.
    Bus bus(460, 60);
    Cycle last = 0;
    for (int i = 0; i < 10; ++i)
        last = bus.service(0);
    EXPECT_EQ(last, 9u * 60 + 460);
}

TEST(Bus, StatsCountTransfersAndBusyCycles)
{
    Bus bus(460, 60);
    bus.service(0);
    bus.service(0);
    EXPECT_EQ(bus.transferCount(), 2u);
    EXPECT_EQ(bus.busyCycles(), 120u);
}

TEST(Bus, ConfigurableTiming)
{
    Bus fast(100, 10);
    EXPECT_EQ(fast.latencyCycles(), 100u);
    EXPECT_EQ(fast.occupancyCycles(), 10u);
    EXPECT_EQ(fast.service(0), 100u);
    EXPECT_EQ(fast.service(0), 110u);
}

/** Property: completions are monotonically non-decreasing for
 *  monotone arrivals, and never earlier than arrival + latency. */
TEST(BusProperty, MonotoneCompletions)
{
    Bus bus(460, 60);
    Cycle now = 0;
    Cycle prev_completion = 0;
    unsigned seed = 7;
    for (int i = 0; i < 1000; ++i) {
        seed = seed * 1103515245u + 12345u;
        now += seed % 100;
        const Cycle done = bus.service(now);
        EXPECT_GE(done, now + 460);
        EXPECT_GE(done, prev_completion);
        prev_completion = done;
    }
}
