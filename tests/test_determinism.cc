/**
 * @file
 * Determinism guard: the simulator is a pure function of its
 * configuration and seeds. Two runs of the same workload must produce
 * byte-identical statistics dumps and identical headline counters —
 * any divergence means unseeded randomness, iteration-order
 * dependence, or uninitialized state crept into the model, which
 * would make every paper-reproduction number unrepeatable.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/simulator.hh"

using namespace cdp;

namespace
{

struct RunCapture
{
    std::string statsDump;
    RunResult result;
};

RunCapture
runOnce(const SimConfig &cfg)
{
    Simulator sim(cfg);
    RunCapture cap;
    cap.result = sim.run();
    std::ostringstream os;
    sim.stats().dump(os);
    cap.statsDump = os.str();
    return cap;
}

void
expectIdentical(const RunCapture &a, const RunCapture &b)
{
    EXPECT_EQ(a.statsDump, b.statsDump);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.uops, b.result.uops);
    EXPECT_EQ(a.result.mem.l2DemandMisses, b.result.mem.l2DemandMisses);
    EXPECT_EQ(a.result.mem.cdpIssued, b.result.mem.cdpIssued);
    EXPECT_EQ(a.result.mem.cdpUseful, b.result.mem.cdpUseful);
    EXPECT_EQ(a.result.mem.strideIssued, b.result.mem.strideIssued);
    EXPECT_EQ(a.result.mem.promotions, b.result.mem.promotions);
}

} // namespace

TEST(Determinism, ByteIdenticalStatsDumpDefaultConfig)
{
    SimConfig cfg;
    cfg.warmupUops = 25'000;
    cfg.measureUops = 60'000;
    const RunCapture a = runOnce(cfg);
    const RunCapture b = runOnce(cfg);
    ASSERT_FALSE(a.statsDump.empty());
    expectIdentical(a, b);
}

TEST(Determinism, ByteIdenticalWithPollutionAndMarkov)
{
    // The pollution injector and Markov prefetcher both consume RNG
    // streams; they must be seed-stable too.
    SimConfig cfg;
    cfg.warmupUops = 15'000;
    cfg.measureUops = 40'000;
    cfg.pollution.enabled = true;
    cfg.markov.enabled = true;
    cfg.markov.stabBytes = 64 * 1024;
    expectIdentical(runOnce(cfg), runOnce(cfg));
}

TEST(Determinism, DistinctSeedsDiverge)
{
    // Sanity for the guard itself: a different workload seed must
    // change the stream (otherwise the comparison above is vacuous).
    SimConfig a;
    a.warmupUops = 15'000;
    a.measureUops = 40'000;
    SimConfig b = a;
    b.workloadSeed = 99;
    EXPECT_NE(runOnce(a).statsDump, runOnce(b).statsDump);
}
