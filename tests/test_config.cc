/** @file Unit tests for SimConfig parsing and defaults. */

#include <gtest/gtest.h>

#include "sim/config.hh"

using namespace cdp;

TEST(Config, DefaultsMatchTable1)
{
    const SimConfig c;
    EXPECT_EQ(c.core.issueWidth, 3u);
    EXPECT_EQ(c.core.retireWidth, 3u);
    EXPECT_EQ(c.core.robEntries, 128u);
    EXPECT_EQ(c.core.loadBuffer, 48u);
    EXPECT_EQ(c.core.storeBuffer, 32u);
    EXPECT_EQ(c.core.mispredictPenalty, 28u);
    EXPECT_EQ(c.core.bpEntries, 16384u);
    EXPECT_EQ(c.mem.l1Bytes, 32u * 1024);
    EXPECT_EQ(c.mem.l1Ways, 8u);
    EXPECT_EQ(c.mem.l1Latency, 3u);
    EXPECT_EQ(c.mem.l2Bytes, 1024u * 1024);
    EXPECT_EQ(c.mem.l2Ways, 8u);
    EXPECT_EQ(c.mem.l2Latency, 16u);
    EXPECT_EQ(c.mem.dtlbEntries, 64u);
    EXPECT_EQ(c.mem.dtlbWays, 4u);
    EXPECT_EQ(c.mem.busLatency, 460u);
    EXPECT_EQ(c.mem.busQueueSize, 32u);
    EXPECT_EQ(c.mem.l2QueueSize, 128u);
}

TEST(Config, DefaultsMatchBestCdpConfig)
{
    const SimConfig c;
    EXPECT_TRUE(c.cdp.enabled);
    EXPECT_EQ(c.cdp.vam.compareBits, 8u);
    EXPECT_EQ(c.cdp.vam.filterBits, 4u);
    EXPECT_EQ(c.cdp.vam.alignBits, 1u);
    EXPECT_EQ(c.cdp.vam.scanStep, 2u);
    EXPECT_EQ(c.cdp.depthThreshold, 3u);
    EXPECT_EQ(c.cdp.nextLines, 3u);
    EXPECT_EQ(c.cdp.prevLines, 0u);
    EXPECT_TRUE(c.cdp.reinforce);
    EXPECT_TRUE(c.stride.enabled); // baseline always has stride
    EXPECT_FALSE(c.markov.enabled);
}

TEST(Config, OverridesApply)
{
    SimConfig c;
    EXPECT_TRUE(c.applyOverride("cdp.depth", "5"));
    EXPECT_TRUE(c.applyOverride("cdp.next_lines", "1"));
    EXPECT_TRUE(c.applyOverride("cdp.reinforce", "false"));
    EXPECT_TRUE(c.applyOverride("mem.l2_kb", "512"));
    EXPECT_TRUE(c.applyOverride("markov.enabled", "true"));
    EXPECT_TRUE(c.applyOverride("markov.stab_kb", "128"));
    EXPECT_TRUE(c.applyOverride("workload", "tpcc-2"));
    EXPECT_EQ(c.cdp.depthThreshold, 5u);
    EXPECT_EQ(c.cdp.nextLines, 1u);
    EXPECT_FALSE(c.cdp.reinforce);
    EXPECT_EQ(c.mem.l2Bytes, 512u * 1024);
    EXPECT_TRUE(c.markov.enabled);
    EXPECT_EQ(c.markov.stabBytes, 128u * 1024);
    EXPECT_EQ(c.workload, "tpcc-2");
}

TEST(Config, UnknownKeyReturnsFalse)
{
    SimConfig c;
    EXPECT_FALSE(c.applyOverride("no.such.key", "1"));
}

TEST(Config, BoolParsingVariants)
{
    SimConfig c;
    for (const char *t : {"1", "true", "on", "yes"}) {
        c.cdp.enabled = false;
        c.applyOverride("cdp.enabled", t);
        EXPECT_TRUE(c.cdp.enabled) << t;
    }
    c.applyOverride("cdp.enabled", "0");
    EXPECT_FALSE(c.cdp.enabled);
}

TEST(Config, ParseArgsAcceptsKeyValueVector)
{
    SimConfig c;
    const char *argv[] = {"prog", "cdp.depth=9", "seed=42"};
    c.parseArgs(3, const_cast<char **>(argv));
    EXPECT_EQ(c.cdp.depthThreshold, 9u);
    EXPECT_EQ(c.workloadSeed, 42u);
}

TEST(Config, ParseArgsRejectsMalformed)
{
    SimConfig c;
    const char *bad1[] = {"prog", "cdp.depth"};
    EXPECT_THROW(c.parseArgs(2, const_cast<char **>(bad1)),
                 std::invalid_argument);
    const char *bad2[] = {"prog", "bogus.key=1"};
    EXPECT_THROW(c.parseArgs(2, const_cast<char **>(bad2)),
                 std::invalid_argument);
}

TEST(Config, ScaleRunLength)
{
    SimConfig c;
    c.warmupUops = 1000;
    c.measureUops = 2000;
    c.scaleRunLength(2.5);
    EXPECT_EQ(c.warmupUops, 2500u);
    EXPECT_EQ(c.measureUops, 5000u);
    EXPECT_THROW(c.scaleRunLength(0.0), std::invalid_argument);
}

TEST(Config, ScaleNeverReachesZero)
{
    SimConfig c;
    c.warmupUops = 10;
    c.measureUops = 10;
    c.scaleRunLength(0.001);
    EXPECT_GE(c.warmupUops, 1u);
    EXPECT_GE(c.measureUops, 1u);
}

TEST(Config, SummaryMentionsKeyKnobs)
{
    SimConfig c;
    const std::string s = c.summary();
    EXPECT_NE(s.find("8.4.1.2"), std::string::npos);
    EXPECT_NE(s.find("p0.n3"), std::string::npos);
    EXPECT_NE(s.find("ROB 128"), std::string::npos);
}
