#!/usr/bin/env python3
"""Process-level checkpoint/restore determinism gate.

Exercises the cdpsim --checkpoint-out / --checkpoint-in flags the way
the warm-fork sweep workflow uses them and requires:

  * the measured stdout (result row + full stats dump) of the
    checkpointing run and of a fresh process restoring its checkpoint
    to be byte-identical,
  * the checkpoint file itself to be byte-identical when written
    twice, and when re-written by a restored process image,
  * a sweep fork (restore under a changed cdp.* config) to succeed
    and be reproducible run over run,
  * all of the above at -j1 and -j8 alike.

Usage: checkpoint_determinism.py <cdpsim>
"""

import os
import subprocess
import sys
import tempfile

CONFIG = [
    "workload=xbtree",
    "warmup_uops=20000",
    "measure_uops=40000",
    "cdp.depth=3",
]
SWEEP = ["cdp.depth=5", "cdp.next_lines=1"]


def run(cdpsim, args, jobs):
    env = dict(os.environ)
    env.pop("CDP_SCALE", None)  # fixed-length runs
    env.pop("CDP_JOBS", None)   # job count is the test's to choose
    argv = [cdpsim] + args + ["--stats", "-j%d" % jobs]
    res = subprocess.run(argv, stdout=subprocess.PIPE,
                         stderr=subprocess.PIPE, env=env)
    if res.returncode != 0:
        sys.exit("FAIL: %s exited %d\nstderr:\n%s"
                 % (" ".join(argv), res.returncode,
                    res.stderr.decode(errors="replace")))
    return res.stdout


def read(path):
    with open(path, "rb") as f:
        return f.read()


def check(cdpsim, jobs, tmp):
    ck_a = os.path.join(tmp, "warm_a.ckpt")
    ck_b = os.path.join(tmp, "warm_b.ckpt")

    # Warm run writes the checkpoint; a fresh process restores it.
    # Both measure the same phase, so their stdout must match bytewise.
    out_save = run(cdpsim, CONFIG + ["--checkpoint-out=" + ck_a], jobs)
    out_fork = run(cdpsim, CONFIG + ["--checkpoint-in=" + ck_a], jobs)
    if out_save != out_fork:
        sys.exit("FAIL (-j%d): restored run's stdout differs from the "
                 "checkpointing run's" % jobs)

    # The serializer is deterministic: same machine, same bytes.
    run(cdpsim, CONFIG + ["--checkpoint-out=" + ck_b], jobs)
    if read(ck_a) != read(ck_b):
        sys.exit("FAIL (-j%d): re-written checkpoint bytes differ"
                 % jobs)

    # Sweep fork: the same warm checkpoint restored under a different
    # cdp configuration. Must succeed and be reproducible.
    fork1 = run(cdpsim, CONFIG + SWEEP + ["--checkpoint-in=" + ck_a],
                jobs)
    fork2 = run(cdpsim, CONFIG + SWEEP + ["--checkpoint-in=" + ck_a],
                jobs)
    if fork1 != fork2:
        sys.exit("FAIL (-j%d): sweep fork is not reproducible" % jobs)
    if fork1 == out_fork:
        sys.exit("FAIL (-j%d): sweep override had no effect on the "
                 "forked run" % jobs)
    print("-j%d: save/restore stdout identical, checkpoint bytes "
          "stable, sweep fork reproducible" % jobs)
    return out_save, read(ck_a), fork1


def main(argv):
    if len(argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    cdpsim = argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        d1 = os.path.join(tmp, "j1")
        d8 = os.path.join(tmp, "j8")
        os.makedirs(d1)
        os.makedirs(d8)
        if check(cdpsim, 1, d1) != check(cdpsim, 8, d8):
            sys.exit("FAIL: -j1 and -j8 disagree")
    print("checkpoint workflow deterministic at -j1 and -j8")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
