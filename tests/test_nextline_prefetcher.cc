/** @file Unit tests for the tagged next-line prefetcher. */

#include <gtest/gtest.h>

#include "prefetch/nextline_prefetcher.hh"
#include "sim/simulator.hh"

using namespace cdp;

TEST(NextLine, PredictsSequentialLines)
{
    NextLinePrefetcher pf(2, /*tagged=*/false);
    const auto preds = pf.observeMiss(0x400, 0x1008);
    ASSERT_EQ(preds.size(), 2u);
    EXPECT_EQ(preds[0], 0x1040u);
    EXPECT_EQ(preds[1], 0x1080u);
}

TEST(NextLine, DegreeOfOne)
{
    NextLinePrefetcher pf(1, false);
    const auto preds = pf.observeMiss(0x400, 0x2000);
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds[0], 0x2040u);
}

TEST(NextLine, ZeroDegreeClampedToOne)
{
    NextLinePrefetcher pf(0, false);
    EXPECT_EQ(pf.observeMiss(0x400, 0x2000).size(), 1u);
}

TEST(NextLine, TaggedSuppressesRecentRepeats)
{
    NextLinePrefetcher pf(1, /*tagged=*/true);
    EXPECT_EQ(pf.observeMiss(0x400, 0x1000).size(), 1u);
    // Same miss again: the next line was just predicted.
    EXPECT_TRUE(pf.observeMiss(0x400, 0x1010).empty());
    EXPECT_EQ(pf.issuedCount(), 1u);
}

TEST(NextLine, StreamAdvancesThroughTagFilter)
{
    // A sequential miss stream keeps producing fresh predictions.
    NextLinePrefetcher pf(1, true);
    unsigned issued = 0;
    for (Addr a = 0x1000; a < 0x2000; a += lineBytes)
        issued += pf.observeMiss(0x400, a).size();
    EXPECT_EQ(issued, 0x1000u / lineBytes);
}

TEST(NextLine, RecentlyIssuedTracksPredictions)
{
    NextLinePrefetcher pf(2, false);
    pf.observeMiss(0x400, 0x1000);
    EXPECT_TRUE(pf.recentlyIssued(0x1040));
    EXPECT_TRUE(pf.recentlyIssued(0x1080));
    EXPECT_FALSE(pf.recentlyIssued(0x10c0));
}

TEST(NextLine, StopsAtAddressSpaceTop)
{
    NextLinePrefetcher pf(4, false);
    const auto preds = pf.observeMiss(0x400, 0xffffff80);
    // Only one line exists above 0xffffff80's line.
    EXPECT_LE(preds.size(), 1u);
}

TEST(NextLine, PolicyKeyParses)
{
    SimConfig c;
    EXPECT_TRUE(c.applyOverride("stride.policy", "nextline"));
    EXPECT_EQ(c.stride.policy, "nextline");
    EXPECT_TRUE(c.applyOverride("stride.policy", "stride"));
    EXPECT_THROW(c.applyOverride("stride.policy", "markov"),
                 std::invalid_argument);
}

TEST(NextLine, EndToEndNextLineBaselineRuns)
{
    SimConfig c;
    c.workload = "quake";
    c.warmupUops = 50'000;
    c.measureUops = 100'000;
    c.stride.policy = "nextline";
    c.cdp.enabled = false;
    Simulator sim(c);
    const RunResult r = sim.run();
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.mem.strideIssued, 100u); // next-line issues plenty
}

TEST(NextLine, StrideIsMoreBandwidthEfficientThanNextLine)
{
    // Next-line fires on *every* miss; the confidence-gated stride
    // engine fires only on established arithmetic progressions. The
    // stride baseline therefore buys its coverage with far fewer
    // prefetches -- the efficiency that makes it the "standard
    // performance enhancement component" of Section 2.1.
    SimConfig base;
    base.workload = "quake";
    base.warmupUops = 150'000;
    base.measureUops = 300'000;
    base.cdp.enabled = false;

    SimConfig nl = base;
    nl.stride.policy = "nextline";
    Simulator ss(base), ns(nl);
    const RunResult rs = ss.run();
    const RunResult rn = ns.run();
    // Both beat a no-prefetch machine; next-line pays >= 1.5x the
    // prefetch traffic for its coverage.
    EXPECT_GT(rn.mem.strideIssued, rs.mem.strideIssued * 3 / 2);
    EXPECT_GT(rs.ipc, 0.0);
    EXPECT_GT(rn.ipc, 0.0);
}
