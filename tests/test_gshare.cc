/** @file Unit tests for the gshare branch predictor. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "cpu/gshare.hh"

using namespace cdp;

TEST(Gshare, GeometryValidation)
{
    EXPECT_THROW(Gshare(0), std::invalid_argument);
    EXPECT_THROW(Gshare(100), std::invalid_argument);
    EXPECT_NO_THROW(Gshare(16384));
}

TEST(Gshare, LearnsAlwaysTaken)
{
    // The global history register must saturate (all-taken) before
    // the steady-state counter is the one being predicted from.
    Gshare bp(1024);
    for (int i = 0; i < 100; ++i)
        bp.update(0x400, true);
    EXPECT_TRUE(bp.predict(0x400));
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    Gshare bp(1024);
    for (int i = 0; i < 100; ++i)
        bp.update(0x400, false);
    EXPECT_FALSE(bp.predict(0x400));
}

TEST(Gshare, UpdateReturnsCorrectness)
{
    Gshare bp(1024);
    // Counters initialize weakly not-taken (1): first taken branch
    // mispredicts.
    EXPECT_FALSE(bp.update(0x400, true));
    // Once history and counters saturate, updates report correct.
    for (int i = 0; i < 100; ++i)
        bp.update(0x400, true);
    EXPECT_TRUE(bp.update(0x400, true));
    // Only warm-up mispredictions accumulated.
    EXPECT_LT(bp.mispredictCount(), 40u);
}

TEST(Gshare, CountsLookups)
{
    Gshare bp(1024);
    bp.update(0x100, true);
    bp.update(0x104, false);
    EXPECT_EQ(bp.lookupCount(), 2u);
}

TEST(Gshare, SteadyLoopBranchNearPerfect)
{
    Gshare bp(16384);
    unsigned wrong = 0;
    for (int i = 0; i < 2000; ++i)
        wrong += bp.update(0x400, true) ? 0 : 1;
    // Only history warm-up mispredictions (one per fresh history
    // pattern until the GHR saturates).
    EXPECT_LT(wrong, 40u);
}

TEST(Gshare, AlternatingPatternLearnedViaHistory)
{
    // T,N,T,N...: a 2-bit counter alone fails, but global history
    // disambiguates. gshare should converge to high accuracy.
    Gshare bp(16384);
    unsigned wrong = 0;
    for (int i = 0; i < 4000; ++i)
        wrong += bp.update(0x400, i % 2 == 0) ? 0 : 1;
    EXPECT_LT(wrong, 400u); // >90% accuracy after warm-up
}

TEST(Gshare, RandomBranchesNearChance)
{
    Gshare bp(16384);
    Rng rng(99);
    unsigned wrong = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        wrong += bp.update(0x400, rng.chance(0.5)) ? 0 : 1;
    // Accuracy on random outcomes must hover around 50%.
    EXPECT_GT(wrong, n / 3u);
    EXPECT_LT(wrong, 2u * n / 3u);
}

TEST(Gshare, BiasedBranchesTrackBias)
{
    Gshare bp(16384);
    Rng rng(7);
    unsigned wrong = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        wrong += bp.update(0x770, rng.chance(0.9)) ? 0 : 1;
    // Should do clearly better than always-mispredict-the-10%.
    EXPECT_LT(wrong, n / 4u);
}

TEST(Gshare, DistinctBranchesDoNotDestructivelyAlias)
{
    Gshare bp(16384);
    unsigned wrong = 0;
    for (int i = 0; i < 2000; ++i) {
        wrong += bp.update(0x400, true) ? 0 : 1;
        wrong += bp.update(0x800, false) ? 0 : 1;
    }
    EXPECT_LT(wrong, 100u);
}
