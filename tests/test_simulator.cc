/** @file Unit tests for the Simulator driver. */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace cdp;

namespace
{

SimConfig
smallConfig(const std::string &workload = "b2c")
{
    SimConfig c;
    c.workload = workload;
    c.warmupUops = 5'000;
    c.measureUops = 20'000;
    return c;
}

} // namespace

TEST(Simulator, RunsAndReportsBasicNumbers)
{
    Simulator sim(smallConfig());
    const RunResult r = sim.run();
    EXPECT_EQ(r.workload, "b2c");
    EXPECT_GE(r.uops, 20'000u);
    EXPECT_LE(r.uops, 20'002u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 3.0); // bounded by issue width
}

TEST(Simulator, MptuMetric)
{
    RunResult r;
    r.uops = 1000;
    r.mem.l2DemandMisses = 5;
    EXPECT_DOUBLE_EQ(r.mptu(), 5.0);
    r.uops = 0;
    EXPECT_DOUBLE_EQ(r.mptu(), 0.0);
}

TEST(Simulator, SpeedupOver)
{
    RunResult fast, slow;
    fast.ipc = 1.2;
    slow.ipc = 1.0;
    EXPECT_DOUBLE_EQ(fast.speedupOver(slow), 1.2);
    slow.ipc = 0.0;
    EXPECT_DOUBLE_EQ(fast.speedupOver(slow), 0.0);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    const SimConfig c = smallConfig("specjbb-vsnet");
    Simulator a(c), b(c);
    const RunResult ra = a.run();
    const RunResult rb = b.run();
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.mem.l2DemandMisses, rb.mem.l2DemandMisses);
    EXPECT_EQ(ra.mem.cdpIssued, rb.mem.cdpIssued);
}

TEST(Simulator, SeedChangesTheRun)
{
    SimConfig c1 = smallConfig("specjbb-vsnet");
    SimConfig c2 = c1;
    c2.workloadSeed = 999;
    Simulator a(c1), b(c2);
    EXPECT_NE(a.run().cycles, b.run().cycles);
}

TEST(Simulator, MeasureFollowsWarmupCounters)
{
    Simulator sim(smallConfig());
    sim.warmup(5'000);
    const RunResult r = sim.measure(10'000);
    EXPECT_GE(r.uops, 10'000u);
    EXPECT_LE(r.uops, 10'002u);
    // Counter deltas, not cumulative totals.
    EXPECT_LE(r.mem.demandLoads, 10'000u);
}

TEST(Simulator, RunChunkReportsDeltas)
{
    Simulator sim(smallConfig());
    const RunResult c1 = sim.runChunk(5'000);
    const RunResult c2 = sim.runChunk(5'000);
    EXPECT_GE(c1.uops, 5'000u);
    EXPECT_GE(c2.uops, 5'000u);
    // Chunks report deltas, not cumulative totals.
    EXPECT_LE(c1.mem.demandLoads, c1.uops);
    EXPECT_LE(c2.mem.demandLoads, c2.uops);
    EXPECT_GT(c1.mem.demandLoads, 0u);
}

TEST(Simulator, CdpOffMatchesCdpOffBitForBit)
{
    // Two identical configs with cdp disabled: identical timing.
    SimConfig c = smallConfig("verilog-func");
    c.cdp.enabled = false;
    Simulator a(c), b(c);
    EXPECT_EQ(a.run().cycles, b.run().cycles);
}

TEST(Simulator, WorkloadAccessibleComponents)
{
    Simulator sim(smallConfig());
    EXPECT_EQ(std::string(sim.workload().name()), "b2c");
    EXPECT_EQ(sim.memory().l2().sizeBytes(), 1024u * 1024);
    EXPECT_EQ(sim.config().workload, "b2c");
}

TEST(Simulator, UnknownWorkloadThrows)
{
    SimConfig c = smallConfig("not-a-benchmark");
    EXPECT_THROW(Simulator{c}, std::invalid_argument);
}

TEST(Simulator, MarkovConfigurationsConstruct)
{
    SimConfig c = smallConfig();
    c.markov.enabled = true;
    c.markov.stabBytes = 128 * 1024;
    c.mem.l2Bytes = 896 * 1024;
    c.mem.l2Ways = 7;
    c.cdp.enabled = false;
    Simulator sim(c);
    const RunResult r = sim.run();
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_NE(sim.memory().markovPf(), nullptr);
}
