/** @file
 * End-to-end integration tests: the paper's headline behaviours must
 * hold on full simulations — CDP speeds up pointer-chasing workloads,
 * reinforcement beats no-reinforcement at low depth, the prefetcher
 * stays harmless where it has no opportunity, and the Markov
 * comparison reproduces Section 5's ordering.
 *
 * These tests run real (scaled-down) simulations and take a few
 * seconds each.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace cdp;

namespace
{

RunResult
runConfig(SimConfig c)
{
    Simulator sim(c);
    return sim.run();
}

SimConfig
base(const std::string &workload)
{
    SimConfig c;
    c.workload = workload;
    c.warmupUops = 150'000;
    c.measureUops = 250'000;
    return c;
}

} // namespace

TEST(Integration, CdpSpeedsUpPointerHeavyWorkload)
{
    SimConfig off = base("specjbb-vsnet");
    off.cdp.enabled = false;
    SimConfig on = base("specjbb-vsnet");
    const RunResult r_off = runConfig(off);
    const RunResult r_on = runConfig(on);
    // The paper's headline: clear speedup on pointer-chasing codes.
    EXPECT_GT(r_on.speedupOver(r_off), 1.10);
    // And the speedup comes from masked misses.
    EXPECT_LT(r_on.mem.l2DemandMisses, r_off.mem.l2DemandMisses);
    EXPECT_GT(r_on.mem.maskFullCdp + r_on.mem.maskPartialCdp, 100u);
}

TEST(Integration, CdpHarmlessOnCacheResidentWorkload)
{
    SimConfig off = base("proE");
    off.cdp.enabled = false;
    SimConfig on = base("proE");
    const RunResult r_off = runConfig(off);
    const RunResult r_on = runConfig(on);
    // Small working set: little to prefetch, but no meltdown either.
    EXPECT_GT(r_on.speedupOver(r_off), 0.97);
}

TEST(Integration, ReinforcementBeatsNoReinforcementAtDepth3)
{
    // Section 4.2.1: with the depth threshold at 3, reinforcement is
    // what keeps chains alive.
    SimConfig nr = base("verilog-gate");
    nr.cdp.depthThreshold = 3;
    nr.cdp.reinforce = false;
    SimConfig reinf = nr;
    reinf.cdp.reinforce = true;
    const RunResult r_nr = runConfig(nr);
    const RunResult r_reinf = runConfig(reinf);
    EXPECT_GT(r_reinf.ipc, r_nr.ipc * 0.97);
    EXPECT_GT(r_reinf.mem.rescans, 0u);
    EXPECT_EQ(r_nr.mem.rescans, 0u);
}

TEST(Integration, DeeperHelpsWithoutReinforcement)
{
    // Figure 9: without reinforcement, larger depth thresholds
    // perform better (chains die without rescans).
    SimConfig d3 = base("verilog-gate");
    d3.cdp.reinforce = false;
    d3.cdp.depthThreshold = 3;
    SimConfig d9 = d3;
    d9.cdp.depthThreshold = 9;
    const RunResult r3 = runConfig(d3);
    const RunResult r9 = runConfig(d9);
    EXPECT_GE(r9.ipc, r3.ipc * 0.97);
}

TEST(Integration, StrideBaselineAlreadyCoversRegularCode)
{
    // On the stride-friendly quake, stride does the heavy lifting:
    // disabling it must hurt the baseline clearly.
    SimConfig with_stride = base("quake");
    with_stride.cdp.enabled = false;
    SimConfig no_stride = with_stride;
    no_stride.stride.enabled = false;
    const RunResult r_s = runConfig(with_stride);
    const RunResult r_n = runConfig(no_stride);
    EXPECT_GT(r_s.ipc, r_n.ipc * 1.02);
    EXPECT_GT(r_s.mem.strideIssued, 100u);
}

TEST(Integration, AdjustedStatsTrackStrideOverlap)
{
    const RunResult r = runConfig(base("quake"));
    // Some content prefetches overlap stride work on regular code.
    EXPECT_LE(r.mem.cdpIssuedOverlap, r.mem.cdpIssued);
    EXPECT_LE(r.mem.cdpUsefulOverlap, r.mem.cdpUseful);
}

TEST(Integration, MarkovBigBeatsResourceSplitMarkov)
{
    // Section 5 / Figure 11 ordering: unbounded STAB with a full
    // 1-MB UL2 beats a Markov that sacrificed half its UL2.
    SimConfig split = base("tpcc-2");
    split.cdp.enabled = false;
    split.markov.enabled = true;
    split.markov.stabBytes = 512 * 1024;
    split.mem.l2Bytes = 512 * 1024;
    SimConfig big = base("tpcc-2");
    big.cdp.enabled = false;
    big.markov.enabled = true;
    big.markov.stabBytes = 0; // unbounded
    const RunResult r_split = runConfig(split);
    const RunResult r_big = runConfig(big);
    EXPECT_GE(r_big.ipc, r_split.ipc);
}

TEST(Integration, ContentBeatsMarkovBigOnColdChases)
{
    // The content prefetcher needs no training; the Markov prefetcher
    // cannot predict what it has not seen (compulsory misses).
    SimConfig markov = base("verilog-gate");
    markov.cdp.enabled = false;
    markov.markov.enabled = true;
    markov.markov.stabBytes = 0;
    SimConfig content = base("verilog-gate");
    const RunResult r_m = runConfig(markov);
    const RunResult r_c = runConfig(content);
    EXPECT_GT(r_c.ipc, r_m.ipc);
}

TEST(Integration, PollutionInjectionHurts)
{
    // Section 3.5 limit study: injected bad prefetches on idle bus
    // cycles cost performance.
    SimConfig clean = base("tpcc-1");
    clean.cdp.enabled = false;
    SimConfig dirty = clean;
    dirty.pollution.enabled = true;
    const RunResult r_clean = runConfig(clean);
    const RunResult r_dirty = runConfig(dirty);
    EXPECT_LT(r_dirty.ipc, r_clean.ipc);
    EXPECT_GT(r_dirty.mem.pollutionInjected, 1000u);
}

TEST(Integration, BiggerTlbDoesNotReplaceCdp)
{
    // Section 4.2.2: growing the DTLB from 64 to 1024 entries barely
    // moves the CDP speedup -- TLB prefetching is a minor factor.
    SimConfig small_off = base("verilog-gate");
    small_off.cdp.enabled = false;
    SimConfig small_on = base("verilog-gate");
    SimConfig big_off = small_off;
    big_off.mem.dtlbEntries = 1024;
    SimConfig big_on = small_on;
    big_on.mem.dtlbEntries = 1024;

    const double sp_small =
        runConfig(small_on).speedupOver(runConfig(small_off));
    const double sp_big =
        runConfig(big_on).speedupOver(runConfig(big_off));
    EXPECT_GT(sp_small, 1.05);
    EXPECT_GT(sp_big, 1.05);
    EXPECT_NEAR(sp_small, sp_big, 0.12);
}

TEST(Integration, FigureTenBucketsArePlausible)
{
    const RunResult r = runConfig(base("verilog-gate"));
    const auto &m = r.mem;
    const std::uint64_t would_miss =
        m.maskFullStride + m.maskPartialStride + m.maskFullCdp +
        m.maskPartialCdp + m.l2DemandMisses;
    EXPECT_GT(would_miss, 0u);
    // CDP masks a visible share of the would-be misses.
    const double cdp_share =
        static_cast<double>(m.maskFullCdp + m.maskPartialCdp) /
        would_miss;
    EXPECT_GT(cdp_share, 0.2);
}

TEST(Integration, EveryBenchmarkRunsToCompletion)
{
    for (const auto &spec : table2Suite()) {
        SimConfig c;
        c.workload = spec.name;
        c.warmupUops = 10'000;
        c.measureUops = 30'000;
        const RunResult r = runConfig(c);
        EXPECT_GT(r.ipc, 0.0) << spec.name;
        EXPECT_GE(r.uops, 30'000u) << spec.name;
        EXPECT_LE(r.uops, 30'002u) << spec.name;
    }
}
