/** @file
 * Unit tests for the structure builders: every pointer they write
 * into simulated memory must be walkable.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/builders.hh"

using namespace cdp;

namespace
{

struct BuildFixture : ::testing::Test
{
    BackingStore store;
    FrameAllocator frames{0, 32768, true, 9};
    PageTable pt{store, frames};
    HeapAllocator heap{store, pt, frames};
    Rng rng{42};
};

} // namespace

TEST_F(BuildFixture, ListIsCircularAndComplete)
{
    BuiltList list = buildLinkedList(heap, 500, 64, 8, 4, rng);
    ASSERT_EQ(list.nodes.size(), 500u);
    // Walk through memory: must visit all 500 nodes and return to
    // the head.
    std::set<Addr> visited;
    Addr cur = list.head;
    for (int i = 0; i < 500; ++i) {
        EXPECT_TRUE(visited.insert(cur).second) << "cycle too short";
        cur = heap.read32(cur + list.nextOffset);
    }
    EXPECT_EQ(cur, list.head);
    EXPECT_EQ(visited.size(), 500u);
}

TEST_F(BuildFixture, ListPointersAreHeapAddresses)
{
    BuiltList list = buildLinkedList(heap, 200, 48, 8, 1, rng);
    for (Addr n : list.nodes) {
        const Addr next = heap.read32(n + list.nextOffset);
        EXPECT_EQ(next >> 24, defaultHeapBase >> 24);
        EXPECT_EQ(next % 4, 0u);
    }
}

TEST_F(BuildFixture, ListRunLengthControlsAdjacency)
{
    BuiltList scattered = buildLinkedList(heap, 2000, 64, 8, 1, rng);
    BuiltList runny = buildLinkedList(heap, 2000, 64, 8, 16, rng);
    auto adjacency = [&](const BuiltList &l) {
        unsigned adj = 0;
        for (std::size_t i = 0; i + 1 < l.nodes.size(); ++i)
            adj += (l.nodes[i + 1] == l.nodes[i] + l.nodeBytes) ? 1 : 0;
        return adj;
    };
    EXPECT_GT(adjacency(runny), adjacency(scattered) * 4 + 100);
}

TEST_F(BuildFixture, ListRejectsBadArguments)
{
    EXPECT_THROW(buildLinkedList(heap, 0, 64, 8, 4, rng),
                 std::invalid_argument);
    EXPECT_THROW(buildLinkedList(heap, 10, 8, 8, 4, rng),
                 std::invalid_argument); // next offset past node end
}

TEST_F(BuildFixture, ListPayloadDoesNotClobberNextPointer)
{
    BuiltList list = buildLinkedList(heap, 100, 64, 8, 4, rng);
    // Walk twice: if payload writes had clobbered pointers, the
    // second lap would diverge.
    Addr cur = list.head;
    for (int i = 0; i < 200; ++i)
        cur = heap.read32(cur + list.nextOffset);
    EXPECT_EQ(cur, list.head);
}

TEST_F(BuildFixture, TreeIsSearchableBst)
{
    BuiltTree tree = buildBinaryTree(heap, 300, 32, rng);
    ASSERT_EQ(tree.nodes.size(), 300u);
    // Every node must be reachable and obey the BST invariant
    // locally (children on the correct side of the parent key).
    std::set<Addr> reachable;
    std::vector<Addr> stack{tree.root};
    while (!stack.empty()) {
        const Addr n = stack.back();
        stack.pop_back();
        if (n == 0 || !reachable.insert(n).second)
            continue;
        const std::uint32_t key = heap.read32(n);
        const Addr l = heap.read32(n + tree.leftOffset);
        const Addr r = heap.read32(n + tree.rightOffset);
        if (l) {
            EXPECT_LT(heap.read32(l), key);
        }
        if (r) {
            EXPECT_GE(heap.read32(r), key);
        }
        stack.push_back(l);
        stack.push_back(r);
    }
    EXPECT_EQ(reachable.size(), 300u);
}

TEST_F(BuildFixture, TreeRejectsTinyNodes)
{
    EXPECT_THROW(buildBinaryTree(heap, 10, 8, rng),
                 std::invalid_argument);
}

TEST_F(BuildFixture, HashChainsPartitionAllNodes)
{
    BuiltHash hash = buildHashTable(heap, 64, 1000, 32, rng);
    std::set<Addr> seen;
    for (std::uint32_t b = 0; b < hash.buckets; ++b) {
        Addr cur = heap.read32(hash.bucketArray + b * 4);
        while (cur != 0) {
            EXPECT_TRUE(seen.insert(cur).second)
                << "node in two chains";
            // The node's key must hash to this bucket.
            EXPECT_EQ(heap.read32(cur) & (hash.buckets - 1), b);
            cur = heap.read32(cur + hash.nextOffset);
        }
    }
    EXPECT_EQ(seen.size(), 1000u);
}

TEST_F(BuildFixture, HashRequiresPow2Buckets)
{
    EXPECT_THROW(buildHashTable(heap, 100, 10, 32, rng),
                 std::invalid_argument);
    EXPECT_THROW(buildHashTable(heap, 0, 10, 32, rng),
                 std::invalid_argument);
}

TEST_F(BuildFixture, DataRegionsHaveExpectedContentClass)
{
    const Addr ints =
        buildDataRegion(heap, 4096, DataKind::SmallInts, rng);
    for (Addr off = 0; off < 4096; off += 4)
        EXPECT_LT(heap.read32(ints + off), 1u << 16);

    const Addr bits =
        buildDataRegion(heap, 4096, DataKind::RandomBits, rng);
    // Random bits should include large values.
    bool large_seen = false;
    for (Addr off = 0; off < 4096; off += 4)
        large_seen |= heap.read32(bits + off) > (1u << 24);
    EXPECT_TRUE(large_seen);
}

TEST_F(BuildFixture, FillPayloadSkipsPointerSlots)
{
    const Addr node = heap.alloc(64, 4);
    heap.write32(node + 8, 0xdeadbeef);
    heap.write32(node + 16, 0xfeedface);
    fillPayload(heap, node, 64, {8, 16}, rng);
    EXPECT_EQ(heap.read32(node + 8), 0xdeadbeefu);
    EXPECT_EQ(heap.read32(node + 16), 0xfeedfaceu);
}

/** Property: lists of many shapes are always complete cycles. */
class ListShapes
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
{
};

TEST_P(ListShapes, AlwaysACompleteCycle)
{
    const auto [nodes, node_bytes, run_len] = GetParam();
    BackingStore store;
    FrameAllocator frames{0, 32768, true, 5};
    PageTable pt{store, frames};
    HeapAllocator heap{store, pt, frames};
    Rng rng{7};
    BuiltList list =
        buildLinkedList(heap, nodes, node_bytes, 8, run_len, rng);
    Addr cur = list.head;
    std::uint32_t steps = 0;
    do {
        cur = heap.read32(cur + list.nextOffset);
        ++steps;
        ASSERT_LE(steps, nodes);
    } while (cur != list.head);
    EXPECT_EQ(steps, nodes);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ListShapes,
    ::testing::Combine(::testing::Values(1u, 2u, 64u, 4096u),
                       ::testing::Values(16u, 64u, 128u),
                       ::testing::Values(1u, 4u, 64u)));
