/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stat.hh"

using namespace cdp;

TEST(Scalar, StartsAtZero)
{
    StatGroup g;
    Scalar s(g, "s", "d");
    EXPECT_EQ(s.value(), 0u);
}

TEST(Scalar, IncrementAndAdd)
{
    StatGroup g;
    Scalar s(g, "s", "d");
    ++s;
    s += 41;
    EXPECT_EQ(s.value(), 42u);
}

TEST(Scalar, SetOverwrites)
{
    StatGroup g;
    Scalar s(g, "s", "d");
    s += 10;
    s.set(3);
    EXPECT_EQ(s.value(), 3u);
}

TEST(Scalar, ResetZeroes)
{
    StatGroup g;
    Scalar s(g, "s", "d");
    s += 7;
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Scalar, NameAndDescStored)
{
    StatGroup g;
    Scalar s(g, "core.loads", "demand loads");
    EXPECT_EQ(s.name(), "core.loads");
    EXPECT_EQ(s.desc(), "demand loads");
}

TEST(StatGroup, ResetAllCoversEveryScalar)
{
    StatGroup g;
    Scalar a(g, "a", ""), b(g, "b", "");
    a += 1;
    b += 2;
    g.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatGroup, FindScalarByName)
{
    StatGroup g;
    Scalar a(g, "alpha", ""), b(g, "beta", "");
    b += 9;
    const Scalar *f = g.findScalar("beta");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->value(), 9u);
    EXPECT_EQ(g.findScalar("gamma"), nullptr);
}

TEST(StatGroup, DumpContainsNamesSorted)
{
    StatGroup g;
    Scalar z(g, "zeta", ""), a(g, "alpha", "");
    z += 1;
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    const auto pos_a = out.find("alpha");
    const auto pos_z = out.find("zeta");
    ASSERT_NE(pos_a, std::string::npos);
    ASSERT_NE(pos_z, std::string::npos);
    EXPECT_LT(pos_a, pos_z);
}

TEST(Distribution, CountsMeanMinMax)
{
    StatGroup g;
    Distribution d(g, "d", "", 0.0, 10.0, 10);
    d.sample(1.0);
    d.sample(3.0);
    d.sample(8.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 8.0);
}

TEST(Distribution, UnderflowOverflowBuckets)
{
    StatGroup g;
    Distribution d(g, "d", "", 0.0, 10.0, 5);
    d.sample(-1.0);
    d.sample(10.0); // hi is exclusive
    d.sample(99.0);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 2u);
    EXPECT_EQ(d.count(), 3u);
}

TEST(Distribution, BucketPlacement)
{
    StatGroup g;
    Distribution d(g, "d", "", 0.0, 10.0, 10);
    d.sample(0.0);
    d.sample(0.5);
    d.sample(9.9);
    EXPECT_EQ(d.buckets()[0], 2u);
    EXPECT_EQ(d.buckets()[9], 1u);
}

TEST(Distribution, ResetClearsEverything)
{
    StatGroup g;
    Distribution d(g, "d", "", 0.0, 1.0, 4);
    d.sample(0.5);
    d.sample(5.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.overflow(), 0u);
    for (auto b : d.buckets())
        EXPECT_EQ(b, 0u);
}

TEST(Distribution, PrintMentionsNameAndCount)
{
    StatGroup g;
    Distribution d(g, "lat", "", 0.0, 4.0, 2);
    d.sample(1.0);
    std::ostringstream os;
    d.print(os);
    EXPECT_NE(os.str().find("lat"), std::string::npos);
    EXPECT_NE(os.str().find("count=1"), std::string::npos);
}

TEST(Formula, EvaluatesLazily)
{
    StatGroup g;
    Scalar hits(g, "hits", ""), total(g, "total", "");
    Formula ratio(g, "ratio", "", [&] {
        return total.value()
                   ? static_cast<double>(hits.value()) / total.value()
                   : 0.0;
    });
    EXPECT_DOUBLE_EQ(ratio.value(), 0.0);
    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(ratio.value(), 0.75);
}

TEST(Formula, FindFormulaByName)
{
    StatGroup g;
    Formula f(g, "f", "", [] { return 1.5; });
    const Formula *found = g.findFormula("f");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->value(), 1.5);
    EXPECT_EQ(g.findFormula("nope"), nullptr);
}

TEST(Formula, SurvivesGroupReset)
{
    StatGroup g;
    Scalar s(g, "s", "");
    Formula f(g, "f", "", [&] { return s.value() * 2.0; });
    s += 5;
    g.resetAll();
    EXPECT_DOUBLE_EQ(f.value(), 0.0); // reflects the reset scalar
}
