#!/usr/bin/env python3
"""Golden-run regression net.

For every <name>.args file in the golden directory, runs cdpsim with
those arguments plus --stats and byte-compares stdout (the result row
and the full statistics dump) against the committed <name>.stats
snapshot. Each configuration is run at -j1 and -j8: the output must be
byte-identical at both job counts and to the golden file.

Any intentional statistics change must regenerate the snapshots with
tools/regolden.sh and include the diff in the same commit.

Usage: golden_compare.py <cdpsim> <golden_dir>
"""

import difflib
import glob
import os
import subprocess
import sys
import tempfile


def run_cdpsim(cdpsim, argv_tail):
    env = dict(os.environ)
    env.pop("CDP_SCALE", None)  # golden runs are fixed-length
    env.pop("CDP_JOBS", None)   # job count is the test's to choose
    argv = [cdpsim] + argv_tail
    res = subprocess.run(argv, capture_output=True, text=True, env=env)
    if res.returncode != 0:
        sys.exit("FAIL: %s exited %d\nstderr:\n%s"
                 % (" ".join(argv), res.returncode, res.stderr))
    return res.stdout


def run_config(cdpsim, args, jobs):
    if "--via-checkpoint" not in args:
        return run_cdpsim(cdpsim, args + ["--stats", "-j%d" % jobs])
    # Warm-fork golden: write a checkpoint at the quiesce point, then
    # measure in a fresh process that restores it. The golden output is
    # the restoring process's stdout; the checkpointing run (which
    # measures the same phase) is discarded.
    args = [a for a in args if a != "--via-checkpoint"]
    fd, ckpt = tempfile.mkstemp(suffix=".ckpt")
    os.close(fd)
    try:
        run_cdpsim(cdpsim, args + ["--checkpoint-out=" + ckpt,
                                   "--stats", "-j%d" % jobs])
        return run_cdpsim(cdpsim, args + ["--checkpoint-in=" + ckpt,
                                          "--stats", "-j%d" % jobs])
    finally:
        os.unlink(ckpt)


def read_args(path):
    args = []
    with open(path) as f:
        for line in f:
            line = line.split("#", 1)[0].strip()
            if line:
                args.append(line)
    return args


def main():
    if len(sys.argv) != 3:
        sys.exit("usage: golden_compare.py <cdpsim> <golden_dir>")
    cdpsim, golden_dir = sys.argv[1], sys.argv[2]

    arg_files = sorted(glob.glob(os.path.join(golden_dir, "*.args")))
    if not arg_files:
        sys.exit("FAIL: no .args files in " + golden_dir)

    failures = 0
    for arg_file in arg_files:
        name = os.path.splitext(os.path.basename(arg_file))[0]
        stats_file = os.path.splitext(arg_file)[0] + ".stats"
        if not os.path.exists(stats_file):
            sys.exit("FAIL: missing golden snapshot %s "
                     "(run tools/regolden.sh)" % stats_file)
        with open(stats_file) as f:
            golden = f.read()

        args = read_args(arg_file)
        for jobs in (1, 8):
            got = run_config(cdpsim, args, jobs)
            if got == golden:
                print("OK   %-16s -j%d (%d bytes)"
                      % (name, jobs, len(got)))
                continue
            failures += 1
            print("FAIL %-16s -j%d differs from %s:"
                  % (name, jobs, os.path.basename(stats_file)))
            diff = difflib.unified_diff(
                golden.splitlines(keepends=True),
                got.splitlines(keepends=True),
                fromfile=os.path.basename(stats_file),
                tofile="cdpsim -j%d" % jobs)
            sys.stdout.writelines(list(diff)[:60])

    if failures:
        sys.exit("FAIL: %d golden comparison(s) differ; if the change "
                 "is intentional, regenerate with tools/regolden.sh"
                 % failures)
    print("golden runs match at -j1 and -j8")


if __name__ == "__main__":
    main()
