/** @file Unit tests for the hardware page walker. */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/backing_store.hh"
#include "mem/frame_allocator.hh"
#include "vm/page_table.hh"
#include "vm/page_walker.hh"
#include "vm/tlb.hh"

using namespace cdp;

namespace
{

struct WalkerFixture : ::testing::Test
{
    BackingStore store;
    FrameAllocator frames{0, 4096, false};
    PageTable pt{store, frames};
    PageWalker walker{pt};
    Tlb tlb{64, 4};
};

} // namespace

TEST_F(WalkerFixture, SuccessfulWalkFillsTlb)
{
    pt.map(0x10000000, 0x00400000);
    const WalkResult r = walker.walk(0x10000abc, tlb);
    ASSERT_TRUE(r.framePa.has_value());
    EXPECT_EQ(*r.framePa, 0x00400000u);
    EXPECT_TRUE(tlb.probe(0x10000000).has_value());
}

TEST_F(WalkerFixture, WalkTouchesPdeThenPte)
{
    pt.map(0x10000000, 0x00400000);
    const WalkResult r = walker.walk(0x10000000, tlb);
    ASSERT_EQ(r.accesses.size(), 2u);
    // First access is in the root (page-directory) frame.
    EXPECT_EQ(pageAlign(r.accesses[0]), pt.rootAddr());
    // Second access reads the PTE; its content is the mapped frame.
    EXPECT_EQ(pageAlign(store.read32(r.accesses[1])), 0x00400000u);
}

TEST_F(WalkerFixture, FaultOnUnmappedRegion)
{
    const WalkResult r = walker.walk(0xa0000000, tlb);
    EXPECT_FALSE(r.framePa.has_value());
    EXPECT_EQ(r.accesses.size(), 1u); // stops after the invalid PDE
    EXPECT_FALSE(tlb.probe(0xa0000000).has_value());
    EXPECT_EQ(walker.faultCount(), 1u);
}

TEST_F(WalkerFixture, FaultOnUnmappedPageInMappedRegion)
{
    pt.map(0x10000000, 0x00400000);
    const WalkResult r = walker.walk(0x10009000, tlb);
    EXPECT_FALSE(r.framePa.has_value());
    EXPECT_EQ(r.accesses.size(), 2u); // PDE valid, PTE invalid
    EXPECT_EQ(walker.faultCount(), 1u);
}

TEST_F(WalkerFixture, WalkCountAccumulates)
{
    pt.map(0x10000000, 0x00400000);
    walker.walk(0x10000000, tlb);
    walker.walk(0x10000004, tlb);
    EXPECT_EQ(walker.walkCount(), 2u);
}

TEST_F(WalkerFixture, PageTableLinesArePointerDense)
{
    // Map several pages in one region; the second-level table line
    // holding their PTEs is full of frame pointers -- the content the
    // paper refuses to scan (Section 3.5).
    for (unsigned i = 0; i < 16; ++i)
        pt.map(0x10000000 + i * pageBytes, 0x00400000 + i * pageBytes);
    const WalkPath p = pt.walkPath(0x10000000);
    std::uint8_t line[lineBytes];
    store.readLine(p.pteAddr, line);
    unsigned valid_entries = 0;
    for (unsigned off = 0; off < lineBytes; off += 4) {
        std::uint32_t e;
        std::memcpy(&e, line + off, 4);
        valid_entries += (e & 1u) ? 1 : 0;
    }
    EXPECT_EQ(valid_entries, 16u);
}
