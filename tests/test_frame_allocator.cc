/** @file Unit tests for the physical frame allocator. */

#include <gtest/gtest.h>

#include <set>

#include "mem/frame_allocator.hh"

using namespace cdp;

TEST(FrameAllocator, SequentialModeIsContiguous)
{
    FrameAllocator fa(0, 16, /*scatter=*/false);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(fa.allocate(), i * pageBytes);
}

TEST(FrameAllocator, BaseAddressRespected)
{
    FrameAllocator fa(0x100000, 4, false);
    EXPECT_EQ(fa.allocate(), 0x100000u);
    EXPECT_EQ(fa.allocate(), 0x100000u + pageBytes);
}

TEST(FrameAllocator, BaseAddressIsPageAligned)
{
    FrameAllocator fa(0x100123, 4, false);
    EXPECT_EQ(fa.allocate() % pageBytes, 0u);
}

TEST(FrameAllocator, ThrowsWhenExhausted)
{
    FrameAllocator fa(0, 2, false);
    fa.allocate();
    fa.allocate();
    EXPECT_THROW(fa.allocate(), std::runtime_error);
}

TEST(FrameAllocator, ZeroFramesRejected)
{
    EXPECT_THROW(FrameAllocator(0, 0), std::runtime_error);
}

TEST(FrameAllocator, CountsAllocations)
{
    FrameAllocator fa(0, 8, true);
    EXPECT_EQ(fa.allocated(), 0u);
    fa.allocate();
    fa.allocate();
    EXPECT_EQ(fa.allocated(), 2u);
    EXPECT_EQ(fa.capacity(), 8u);
}

/** Property: scattered allocation is a bijection (no frame reused). */
class FrameAllocatorScatter : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FrameAllocatorScatter, NoDuplicatesAndInRange)
{
    const unsigned frames = GetParam();
    FrameAllocator fa(0, frames, true, 99);
    std::set<Addr> seen;
    for (unsigned i = 0; i < frames; ++i) {
        const Addr pa = fa.allocate();
        EXPECT_EQ(pa % pageBytes, 0u);
        EXPECT_LT(pa, static_cast<Addr>(frames) * pageBytes);
        EXPECT_TRUE(seen.insert(pa).second) << "frame reused: " << pa;
    }
    EXPECT_THROW(fa.allocate(), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FrameAllocatorScatter,
                         ::testing::Values(1u, 2u, 3u, 16u, 100u, 1024u,
                                           4096u));

TEST(FrameAllocator, ScatterActuallyScatters)
{
    FrameAllocator fa(0, 1024, true, 7);
    unsigned adjacent = 0;
    Addr prev = fa.allocate();
    for (unsigned i = 1; i < 1024; ++i) {
        const Addr cur = fa.allocate();
        if (cur == prev + pageBytes)
            ++adjacent;
        prev = cur;
    }
    // A scattered sequence should have few adjacent pairs.
    EXPECT_LT(adjacent, 64u);
}
