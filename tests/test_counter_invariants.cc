/** @file
 * Prefetch-counter accounting invariants, and a pin on the one place
 * they legitimately look violated.
 *
 * The headline table shows rows (b2c, rc3, proE) where cdp_useful
 * exceeds cdp_issued — 656 useful from 136 issued on b2c. That is not
 * double counting: measure() resets the counters after warm-up, but
 * lines the warm-up phase prefetched (and never touched) stay
 * resident in the UL2 with their ContentPrefetch provenance tag. The
 * first demand touch inside the measurement window then increments
 * cdpUseful against an issue that was counted before the reset. The
 * pollution injector does the same thing deliberately: it plants
 * ContentPrefetch-typed lines without ever counting an issue.
 *
 * So the invariant that actually holds, and that this file enforces,
 * is scoped to a window that starts from power-on:
 *
 *     warmupUops == 0  =>  cdpUseful <= cdpIssued + pollutionInjected
 *
 * (see DESIGN.md §12, "Counter semantics across the measure reset").
 */

#include <gtest/gtest.h>

#include "fuzz_config.hh"
#include "sim/memory_system.hh"
#include "sim/simulator.hh"

using namespace cdp;
using cdp::testcfg::randomConfig;

class CounterInvariantFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

/** From power-on, every useful CDP line was issued (or injected). */
TEST_P(CounterInvariantFuzz, UsefulBoundedByIssuedPlusInjected)
{
    SimConfig c = randomConfig(GetParam());
    c.warmupUops = 0; // the invariant is only sound from power-on
    SCOPED_TRACE("workload=" + c.workload + " seed=" +
                 std::to_string(GetParam()));

    Simulator sim(c);
    const RunResult r = sim.run();
    EXPECT_LE(r.mem.cdpUseful,
              r.mem.cdpIssued + r.mem.pollutionInjected);
    // Stride-side twin: no injector feeds the stride class, so its
    // bound has no correction term.
    EXPECT_LE(r.mem.strideUseful, r.mem.strideIssued);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterInvariantFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

/**
 * Pin the measure-window artifact on the configuration that surfaced
 * it: headline b2c (default warm-up and measurement sizes). If this
 * expectation ever starts failing because useful <= issued, the
 * warm-up residue the docs describe has disappeared — update
 * DESIGN.md §12 along with whatever changed the accounting.
 */
TEST(CounterInvariantHeadline, B2cWarmupResidueExceedsMeasuredIssues)
{
    SimConfig c;
    c.workload = "b2c";

    Simulator sim(c);
    sim.warmup(c.warmupUops);
    sim.quiesce();
    const RunResult r = sim.measure(c.measureUops);

    // The artifact itself: more useful lines than measured issues.
    EXPECT_GT(r.mem.cdpUseful, r.mem.cdpIssued);

    // Same workload from power-on: the invariant is restored, which
    // is what pins the cause to the counter reset (not the issue or
    // touch accounting).
    SimConfig cz = c;
    cz.warmupUops = 0;
    cz.measureUops = c.warmupUops + c.measureUops;
    Simulator zim(cz);
    const RunResult rz = zim.run();
    EXPECT_LE(rz.mem.cdpUseful,
              rz.mem.cdpIssued + rz.mem.pollutionInjected);
}
