/** @file
 * Unit tests for the out-of-order window core: issue width, ROB
 * limits, dependency timing, MLP, and misprediction bubbles.
 */

#include <gtest/gtest.h>

#include <functional>

#include "cpu/ooo_core.hh"

using namespace cdp;

namespace
{

/** Scripted uop source for directed tests (repeats its program). */
class ScriptSource : public UopSource
{
  public:
    explicit ScriptSource(std::vector<Uop> program)
        : program(std::move(program))
    {
    }

    Uop
    next() override
    {
        Uop u = program[pos];
        pos = (pos + 1) % program.size();
        return u;
    }

    const char *name() const override { return "script"; }

  private:
    std::vector<Uop> program;
    std::size_t pos = 0;
};

/** Memory stub with programmable latency. */
class StubMem : public CoreMemIf
{
  public:
    std::function<Cycle(Addr, Cycle)> loadFn = [](Addr, Cycle now) {
        return now + 3;
    };
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    Cycle
    load(Addr, Addr vaddr, Cycle now, bool) override
    {
        ++loads;
        return loadFn(vaddr, now);
    }

    Cycle
    store(Addr, Addr, Cycle now) override
    {
        ++stores;
        return now + 1;
    }

    void advance(Cycle) override {}
};

Uop
alu(std::int8_t src, std::int8_t dst)
{
    Uop u;
    u.type = UopType::Alu;
    u.src0 = src;
    u.dst = dst;
    return u;
}

Uop
load(Addr va, std::int8_t src, std::int8_t dst)
{
    Uop u;
    u.type = UopType::Load;
    u.vaddr = va;
    u.src0 = src;
    u.dst = dst;
    return u;
}

Uop
branch(Addr pc, bool taken)
{
    Uop u;
    u.type = UopType::Branch;
    u.pc = pc;
    u.taken = taken;
    return u;
}

} // namespace

TEST(OooCore, IndependentAlusRetireAtIssueWidth)
{
    ScriptSource src({alu(noReg, 1)});
    StubMem mem;
    CoreConfig cfg;
    OooCore core(cfg, src, mem);
    const Cycle cycles = core.run(3000);
    // 3-wide machine running independent 1-cycle ALUs: IPC -> 3.
    const double ipc = 3000.0 / cycles;
    EXPECT_GT(ipc, 2.7);
    EXPECT_LE(ipc, 3.05);
}

TEST(OooCore, DependentChainSerializes)
{
    // Every ALU depends on the previous one: IPC -> 1.
    ScriptSource src({alu(1, 1)});
    StubMem mem;
    OooCore core(CoreConfig{}, src, mem);
    const Cycle cycles = core.run(3000);
    const double ipc = 3000.0 / cycles;
    EXPECT_GT(ipc, 0.9);
    EXPECT_LT(ipc, 1.1);
}

TEST(OooCore, PointerChaseGatedByLoadLatency)
{
    // load r1 <- [r1]: each load's address depends on the previous
    // load's data. With 100-cycle loads, one load per ~100 cycles.
    ScriptSource src({load(0x1000, 1, 1)});
    StubMem mem;
    mem.loadFn = [](Addr, Cycle now) { return now + 100; };
    OooCore core(CoreConfig{}, src, mem);
    const Cycle cycles = core.run(200);
    EXPECT_GT(cycles, 200u * 95);
    EXPECT_LT(cycles, 200u * 110);
}

TEST(OooCore, IndependentLoadsOverlap)
{
    // Loads with no register deps: ROB/width-bound, not latency.
    ScriptSource src({load(0x1000, noReg, 1)});
    StubMem mem;
    mem.loadFn = [](Addr, Cycle now) { return now + 100; };
    CoreConfig cfg;
    OooCore core(cfg, src, mem);
    const Cycle cycles = core.run(960);
    // 48-entry load buffer bounds MLP; far better than serial.
    EXPECT_LT(cycles, 960u * 20);
}

TEST(OooCore, LoadBufferBoundsMlp)
{
    // With a load buffer of 2, at most 2 loads in flight.
    ScriptSource src({load(0x1000, noReg, 1)});
    StubMem mem;
    mem.loadFn = [](Addr, Cycle now) { return now + 100; };
    CoreConfig cfg;
    cfg.loadBuffer = 2;
    OooCore core(cfg, src, mem);
    const Cycle cycles = core.run(200);
    // ~2 loads per 100 cycles -> >= 9000 cycles for 200 loads.
    EXPECT_GT(cycles, 9000u);
}

TEST(OooCore, RobBoundsWindow)
{
    // A long-latency load followed by many ALUs: the ROB fills and
    // issue stalls until the load completes.
    std::vector<Uop> prog;
    prog.push_back(load(0x1000, noReg, 1));
    for (int i = 0; i < 63; ++i)
        prog.push_back(alu(noReg, 2));
    ScriptSource src(prog);
    StubMem mem;
    mem.loadFn = [](Addr, Cycle now) { return now + 1000; };
    CoreConfig cfg;
    cfg.robEntries = 16;
    OooCore core(cfg, src, mem);
    const Cycle small_rob = core.run(640);

    ScriptSource src2(prog);
    StubMem mem2;
    mem2.loadFn = [](Addr, Cycle now) { return now + 1000; };
    cfg.robEntries = 128;
    OooCore core2(cfg, src2, mem2);
    const Cycle big_rob = core2.run(640);
    EXPECT_LT(big_rob, small_rob);
}

TEST(OooCore, MispredictStallsFetch)
{
    // Random 50/50 branches vs always-taken: random must be slower
    // because of 28-cycle bubbles.
    std::vector<Uop> taken_prog, random_prog;
    for (int i = 0; i < 8; ++i) {
        taken_prog.push_back(alu(noReg, 1));
        random_prog.push_back(alu(noReg, 1));
    }
    taken_prog.push_back(branch(0x400, true));

    // Deterministic pseudo-random outcome sequence baked into the
    // program (period 16 with mixed outcomes defeats the predictor
    // less than true randomness, so use a long mixed pattern).
    for (int i = 0; i < 16; ++i)
        random_prog.push_back(branch(0x400 + 4 * i,
                                     (i * 2654435761u >> 13) & 1));

    ScriptSource ts(taken_prog);
    StubMem m1;
    OooCore c1(CoreConfig{}, ts, m1);
    const Cycle predictable = c1.run(20000);

    ScriptSource rs(random_prog);
    StubMem m2;
    OooCore c2(CoreConfig{}, rs, m2);
    const Cycle bubbly = c2.run(20000);
    EXPECT_GT(bubbly, predictable);
}

TEST(OooCore, StoresCountAndComplete)
{
    Uop st;
    st.type = UopType::Store;
    st.vaddr = 0x2000;
    ScriptSource src({st});
    StubMem mem;
    OooCore core(CoreConfig{}, src, mem);
    core.run(100);
    // run() retires at least 100; a few extra may have issued.
    EXPECT_GE(mem.stores, 100u);
    EXPECT_LE(mem.stores, 140u);
}

TEST(OooCore, RetiredUopsTracked)
{
    ScriptSource src({alu(noReg, 1)});
    StubMem mem;
    OooCore core(CoreConfig{}, src, mem);
    core.run(123);
    // Retirement is up to retireWidth per cycle, so the target can
    // be overshot by at most retireWidth - 1.
    EXPECT_GE(core.retiredUops(), 123u);
    EXPECT_LE(core.retiredUops(), 125u);
}

TEST(OooCore, IpcResetForMeasurement)
{
    ScriptSource src({alu(1, 1)}); // serial: IPC ~1
    StubMem mem;
    StatGroup stats;
    OooCore core(CoreConfig{}, src, mem, &stats);
    core.run(1000);
    stats.resetAll();
    core.resetMeasurement();
    core.run(500);
    const double ipc = core.ipc();
    EXPECT_GT(ipc, 0.8);
    EXPECT_LT(ipc, 1.2);
}

TEST(OooCore, FpLatencyLongerThanAlu)
{
    Uop fp;
    fp.type = UopType::Fp;
    fp.src0 = 1;
    fp.dst = 1; // serial FP chain
    ScriptSource fsrc({fp});
    StubMem m1;
    OooCore fcore(CoreConfig{}, fsrc, m1);
    const Cycle fp_cycles = fcore.run(1000);

    ScriptSource asrc({alu(1, 1)});
    StubMem m2;
    OooCore acore(CoreConfig{}, asrc, m2);
    const Cycle alu_cycles = acore.run(1000);
    EXPECT_GT(fp_cycles, 2 * alu_cycles);
}

/** Property: cycles scale linearly with uops for regular streams. */
class CoreLinearity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CoreLinearity, CyclesProportionalToWork)
{
    const std::uint64_t n = GetParam();
    ScriptSource src({alu(noReg, 1)});
    StubMem mem;
    OooCore core(CoreConfig{}, src, mem);
    const Cycle cycles = core.run(n);
    const double ipc = static_cast<double>(n) / cycles;
    EXPECT_GT(ipc, 2.5);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CoreLinearity,
                         ::testing::Values(300u, 3000u, 30000u));
