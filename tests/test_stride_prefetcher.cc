/** @file Unit tests for the baseline stride prefetcher. */

#include <gtest/gtest.h>

#include "prefetch/stride_prefetcher.hh"

using namespace cdp;

TEST(Stride, NoPredictionOnFirstMisses)
{
    StridePrefetcher pf(256, 2, 2);
    EXPECT_TRUE(pf.observeMiss(0x400, 0x1000).empty());
    EXPECT_TRUE(pf.observeMiss(0x400, 0x1040).empty());
}

TEST(Stride, PredictsAfterConfidenceBuilt)
{
    StridePrefetcher pf(256, 2, 2);
    pf.observeMiss(0x400, 0x1000);
    pf.observeMiss(0x400, 0x1040);
    pf.observeMiss(0x400, 0x1080);
    const auto preds = pf.observeMiss(0x400, 0x10c0);
    ASSERT_EQ(preds.size(), 2u);
    EXPECT_EQ(preds[0], 0x1100u);
    EXPECT_EQ(preds[1], 0x1140u);
}

TEST(Stride, DegreeControlsLookahead)
{
    StridePrefetcher pf(256, 4, 2);
    for (Addr a = 0x1000; a <= 0x1100; a += 0x40)
        pf.observeMiss(0x400, a);
    const auto preds = pf.observeMiss(0x400, 0x1140);
    EXPECT_EQ(preds.size(), 4u);
}

TEST(Stride, NegativeStridesWork)
{
    StridePrefetcher pf(256, 1, 2);
    pf.observeMiss(0x400, 0x5000);
    pf.observeMiss(0x400, 0x4fc0);
    pf.observeMiss(0x400, 0x4f80);
    const auto preds = pf.observeMiss(0x400, 0x4f40);
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds[0], 0x4f00u);
}

TEST(Stride, SmallStridesSkipDuplicateLines)
{
    // Stride 8 with degree 2: both predictions land in the next
    // line; only one line-distinct prefetch is produced.
    StridePrefetcher pf(256, 2, 2);
    for (Addr a = 0x1000; a < 0x1040; a += 8)
        pf.observeMiss(0x400, a);
    const auto preds = pf.observeMiss(0x400, 0x1040);
    // Predictions at 0x1048, 0x1050 -> same line as 0x1040: skipped.
    EXPECT_TRUE(preds.empty());
}

TEST(Stride, IrregularPatternNeverPredicts)
{
    StridePrefetcher pf(256, 2, 2);
    const Addr addrs[] = {0x1000, 0x9940, 0x3300, 0x77c0, 0x2180,
                          0xe000, 0x5540};
    unsigned total = 0;
    for (Addr a : addrs)
        total += pf.observeMiss(0x400, a).size();
    EXPECT_EQ(total, 0u);
}

TEST(Stride, DistinctPcsTrackedIndependently)
{
    StridePrefetcher pf(256, 1, 2);
    for (int i = 0; i < 4; ++i) {
        pf.observeMiss(0x400, 0x1000 + i * 0x40);
        pf.observeMiss(0x404, 0x8000 + i * 0x100);
    }
    const auto p1 = pf.observeMiss(0x400, 0x1100);
    const auto p2 = pf.observeMiss(0x404, 0x8400);
    ASSERT_EQ(p1.size(), 1u);
    ASSERT_EQ(p2.size(), 1u);
    EXPECT_EQ(p1[0], 0x1140u);
    EXPECT_EQ(p2[0], 0x8500u);
}

TEST(Stride, PcAliasingRetrains)
{
    // Two PCs mapping to the same entry evict each other's state.
    StridePrefetcher pf(1, 1, 2); // single entry
    pf.observeMiss(0x400, 0x1000);
    pf.observeMiss(0x404, 0x9000); // retags the entry
    EXPECT_TRUE(pf.observeMiss(0x400, 0x1040).empty()); // retag again
}

TEST(Stride, ConfidenceLostOnBrokenPattern)
{
    StridePrefetcher pf(256, 1, 2);
    for (Addr a = 0x1000; a <= 0x10c0; a += 0x40)
        pf.observeMiss(0x400, a);
    EXPECT_FALSE(pf.observeMiss(0x400, 0x1100).empty());
    // Break the pattern twice: confidence drains, no predictions.
    pf.observeMiss(0x400, 0x9000);
    pf.observeMiss(0x400, 0x2000);
    pf.observeMiss(0x400, 0xc000);
    EXPECT_TRUE(pf.observeMiss(0x400, 0xd000).empty());
}

TEST(Stride, RecentlyIssuedTracksLineAddresses)
{
    StridePrefetcher pf(256, 2, 2);
    for (Addr a = 0x1000; a <= 0x10c0; a += 0x40)
        pf.observeMiss(0x400, a);
    const auto preds = pf.observeMiss(0x400, 0x1100);
    ASSERT_FALSE(preds.empty());
    for (Addr p : preds)
        EXPECT_TRUE(pf.recentlyIssued(p));
    EXPECT_FALSE(pf.recentlyIssued(0xdead0000));
}

TEST(Stride, IssuedCountMatches)
{
    StridePrefetcher pf(256, 2, 2);
    for (Addr a = 0x1000; a <= 0x1080; a += 0x40)
        pf.observeMiss(0x400, a);
    pf.observeMiss(0x400, 0x10c0);
    EXPECT_EQ(pf.issuedCount(), 2u);
}

/** Property: strided streams of any line-multiple stride converge to
 *  predictions that exactly lead the stream. */
class StrideSweep : public ::testing::TestWithParam<std::int32_t>
{
};

TEST_P(StrideSweep, ConvergesAndLeads)
{
    const std::int32_t stride = GetParam();
    StridePrefetcher pf(256, 1, 2);
    Addr a = 0x100000;
    std::vector<Addr> preds;
    for (int i = 0; i < 12; ++i) {
        preds = pf.observeMiss(0x400, a);
        a += static_cast<Addr>(stride);
    }
    ASSERT_EQ(preds.size(), 1u);
    // The last observation was at a-stride; prediction leads by one.
    EXPECT_EQ(preds[0], a);
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweep,
                         ::testing::Values(64, 128, 256, -64, -128,
                                           192, 1024));
