#!/usr/bin/env python3
"""Determinism gate for the parallel experiment runner.

Runs a bench harness at -j1 and -j8 and requires:

  * byte-identical stdout, and
  * identical BENCH_<name>.json files once the single scheduling-
    dependent "harness" line is dropped.

Usage: runner_determinism.py <bench-binary> [more benches ...]
"""

import os
import subprocess
import sys
import tempfile


def run(bench, jobs, json_dir):
    env = dict(os.environ)
    env["CDP_SCALE"] = env.get("CDP_DETERMINISM_SCALE", "0.02")
    env["CDP_BENCH_JSON_DIR"] = json_dir
    env.pop("CDP_JOBS", None)
    proc = subprocess.run(
        [bench, "-j%d" % jobs],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        check=True,
    )
    return proc.stdout


def stable_json_lines(json_dir):
    out = {}
    for name in sorted(os.listdir(json_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(json_dir, name), "rb") as f:
            # The "harness" line and rows carrying "wall_"-prefixed
            # fields (warm-fork timing) are the sanctioned homes for
            # scheduling-dependent numbers; everything else must be
            # byte-identical.
            lines = [l for l in f.read().splitlines()
                     if b'"harness"' not in l and b'"wall_' not in l]
        out[name] = lines
    return out


def check(bench):
    with tempfile.TemporaryDirectory() as d1, \
            tempfile.TemporaryDirectory() as d2:
        serial = run(bench, 1, d1)
        wide = run(bench, 8, d2)
        if serial != wide:
            sys.stderr.write(
                "%s: stdout differs between -j1 and -j8\n" % bench)
            return False
        j1, j8 = stable_json_lines(d1), stable_json_lines(d2)
        if sorted(j1) != sorted(j8):
            sys.stderr.write(
                "%s: JSON file sets differ: %s vs %s\n"
                % (bench, sorted(j1), sorted(j8)))
            return False
        if not j1:
            sys.stderr.write("%s: no JSON emitted\n" % bench)
            return False
        for name in j1:
            if j1[name] != j8[name]:
                sys.stderr.write(
                    "%s: %s differs between -j1 and -j8\n"
                    % (bench, name))
                return False
    print("%s: -j1 and -j8 byte-identical" % os.path.basename(bench))
    return True


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    ok = all([check(bench) for bench in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
