/** @file Unit tests for the MSHR file (in-flight transaction book). */

#include <gtest/gtest.h>

#include "memsys/mshr.hh"

using namespace cdp;

namespace
{

MshrEntry
entry(Addr line_pa, ReqType type, unsigned depth = 0)
{
    MshrEntry e;
    e.linePa = line_pa;
    e.type = type;
    e.depth = depth;
    e.completion = 1000;
    return e;
}

} // namespace

TEST(Mshr, EmptyFindsNothing)
{
    MshrFile m(4);
    EXPECT_EQ(m.find(0x1000), nullptr);
}

TEST(Mshr, AllocateThenFind)
{
    MshrFile m(4);
    ASSERT_TRUE(m.allocate(entry(0x1000, ReqType::DemandLoad)));
    const MshrEntry *e = m.find(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->type, ReqType::DemandLoad);
}

TEST(Mshr, FindMatchesByLine)
{
    MshrFile m(4);
    m.allocate(entry(0x1000, ReqType::DemandLoad));
    EXPECT_NE(m.find(0x103f), nullptr); // same line
    EXPECT_EQ(m.find(0x1040), nullptr); // next line
}

TEST(Mshr, CapacityEnforced)
{
    MshrFile m(2);
    EXPECT_TRUE(m.allocate(entry(0x0, ReqType::DemandLoad)));
    EXPECT_TRUE(m.allocate(entry(0x40, ReqType::DemandLoad)));
    EXPECT_TRUE(m.full());
    EXPECT_FALSE(m.allocate(entry(0x80, ReqType::DemandLoad)));
    EXPECT_EQ(m.size(), 2u);
}

TEST(Mshr, ReleaseFreesSlot)
{
    MshrFile m(1);
    m.allocate(entry(0x0, ReqType::DemandLoad));
    m.release(0x0);
    EXPECT_FALSE(m.full());
    EXPECT_TRUE(m.allocate(entry(0x40, ReqType::DemandLoad)));
}

TEST(Mshr, PromoteConvertsPrefetchToDemand)
{
    MshrFile m(4);
    m.allocate(entry(0x1000, ReqType::ContentPrefetch, 2));
    EXPECT_TRUE(m.promote(0x1000, 0, 0x10001004));
    const MshrEntry *e = m.find(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->type, ReqType::DemandLoad);
    EXPECT_EQ(e->depth, 0u);
    EXPECT_EQ(e->vaddr, 0x10001004u);
    EXPECT_TRUE(e->promoted);
    EXPECT_EQ(m.promotionCount(), 1u);
}

TEST(Mshr, PromoteRefusesDemandEntries)
{
    MshrFile m(4);
    m.allocate(entry(0x1000, ReqType::DemandLoad));
    EXPECT_FALSE(m.promote(0x1000, 0, 0));
}

TEST(Mshr, PromoteRefusesMissingEntries)
{
    MshrFile m(4);
    EXPECT_FALSE(m.promote(0x2000, 0, 0));
}

TEST(Mshr, PromotePreservesCompletionTime)
{
    MshrFile m(4);
    MshrEntry e = entry(0x1000, ReqType::StridePrefetch, 1);
    e.completion = 777;
    m.allocate(e);
    m.promote(0x1000, 0, 0);
    EXPECT_EQ(m.find(0x1000)->completion, 777u);
}

TEST(Mshr, StatsCountAllocationsAndRejections)
{
    MshrFile m(1);
    m.allocate(entry(0x0, ReqType::DemandLoad));
    m.allocate(entry(0x40, ReqType::DemandLoad)); // rejected
    EXPECT_EQ(m.allocationCount(), 1u);
}

TEST(Mshr, WidthAndOverlapFlagsPreserved)
{
    MshrFile m(4);
    MshrEntry e = entry(0x1000, ReqType::ContentPrefetch, 1);
    e.widthLine = true;
    e.strideOverlap = true;
    m.allocate(e);
    const MshrEntry *f = m.find(0x1000);
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->widthLine);
    EXPECT_TRUE(f->strideOverlap);
}
