/**
 * @file
 * Tests for the parallel experiment runner (src/runner): thread-pool
 * draining and exception transport, ordered-map determinism, the
 * SimRunner worker-count invariance contract, the `-j` flag parser,
 * and the bench-side baseline memo's run-exactly-once guarantee.
 */

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.hh"
#include "runner/sim_runner.hh"
#include "runner/thread_pool.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

using namespace cdp;
using namespace cdp::runner;

namespace
{

/** A fast configuration for tests that run real simulations. */
SimConfig
tinyConfig(const std::string &workload)
{
    SimConfig cfg;
    cfg.workload = workload;
    cfg.warmupUops = 1000;
    cfg.measureUops = 3000;
    return cfg;
}

} // namespace

TEST(ThreadPool, DrainsEveryTaskOnWaitIdle)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.submit([&] { ++count; });
        // No waitIdle: the destructor must finish the queue itself.
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, EmptyPoolConstructsAndDestructsCleanly)
{
    for (int i = 0; i < 8; ++i) {
        ThreadPool pool(3);
        pool.waitIdle(); // no tasks: must not deadlock
    }
}

TEST(ThreadPool, OversubscribedSingleWorkerCompletes)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 500; ++i)
        pool.submit([&] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, WaitIdleIsReusableAcrossBatches)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ++count; });
        pool.waitIdle();
        EXPECT_EQ(count.load(), (batch + 1) * 50);
    }
}

TEST(OrderedMap, ResultsIndexedBySubmissionNotCompletion)
{
    ThreadPool pool(4);
    // Early indices sleep longest, so completion order is roughly the
    // reverse of submission order; the result vector must not care.
    const std::size_t n = 16;
    auto out = orderedMap(pool, n, [&](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(n - i));
        return i * 10;
    });
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * 10);
}

TEST(OrderedMap, RethrowsLowestIndexExceptionAfterDraining)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        orderedMap(pool, std::size_t(12), [&](std::size_t i) -> int {
            ++ran;
            if (i == 3 || i == 7)
                throw std::runtime_error("task " + std::to_string(i));
            return 0;
        });
        FAIL() << "expected orderedMap to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 3"); // lowest index wins
    }
    // The whole batch drained before the rethrow...
    EXPECT_EQ(ran.load(), 12);
    // ...and the pool is still usable afterwards.
    auto out = orderedMap(pool, std::size_t(4),
                          [](std::size_t i) { return i + 1; });
    EXPECT_EQ(out.back(), 4u);
}

TEST(SimRunner, ResultsInvariantUnderWorkerCount)
{
    std::vector<SimJob> jobs;
    for (const char *w : {"b2c", "quake", "tpcc-2", "rc3"})
        jobs.push_back({tinyConfig(w), w, SimJob::Mode::Run});

    SimRunner serial(1);
    SimRunner wide(4);
    const auto a = serial.run(jobs);
    const auto b = wide.run(jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(a[i].workload, jobs[i].tag);
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].cycles, b[i].cycles);
        EXPECT_EQ(a[i].uops, b[i].uops);
        EXPECT_DOUBLE_EQ(a[i].ipc, b[i].ipc);
        EXPECT_EQ(a[i].mem.l2DemandMisses, b[i].mem.l2DemandMisses);
        EXPECT_EQ(a[i].mem.cdpIssued, b[i].mem.cdpIssued);
        EXPECT_EQ(a[i].mem.cdpUseful, b[i].mem.cdpUseful);
    }
}

TEST(SimRunner, TracksHarnessTelemetry)
{
    SimRunner runner(2);
    std::vector<SimJob> jobs(3, {tinyConfig("b2c"), "b2c",
                                 SimJob::Mode::Run});
    runner.run(jobs);
    const HarnessStats s = runner.stats();
    EXPECT_EQ(s.jobs, 2u);
    EXPECT_EQ(s.sims, 3u);
    EXPECT_GT(s.wallSeconds, 0.0);
    EXPECT_GT(s.simsPerSecond(), 0.0);
}

TEST(ParseJobsFlag, AcceptsAllSpellingsAndCompactsArgv)
{
    {
        char a0[] = "prog", a1[] = "-j4", a2[] = "x=1";
        char *argv[] = {a0, a1, a2};
        int argc = 3;
        EXPECT_EQ(parseJobsFlag(argc, argv), 4u);
        ASSERT_EQ(argc, 2);
        EXPECT_STREQ(argv[1], "x=1");
    }
    {
        char a0[] = "prog", a1[] = "--jobs=8";
        char *argv[] = {a0, a1};
        int argc = 2;
        EXPECT_EQ(parseJobsFlag(argc, argv), 8u);
        EXPECT_EQ(argc, 1);
    }
    {
        char a0[] = "prog", a1[] = "-j", a2[] = "2", a3[] = "y=0";
        char *argv[] = {a0, a1, a2, a3};
        int argc = 4;
        EXPECT_EQ(parseJobsFlag(argc, argv), 2u);
        ASSERT_EQ(argc, 2);
        EXPECT_STREQ(argv[1], "y=0");
    }
    {
        char a0[] = "prog", a1[] = "--jobs", a2[] = "3";
        char *argv[] = {a0, a1, a2};
        int argc = 3;
        EXPECT_EQ(parseJobsFlag(argc, argv), 3u);
        EXPECT_EQ(argc, 1);
    }
    {
        char a0[] = "prog", a1[] = "x=1";
        char *argv[] = {a0, a1};
        int argc = 2;
        EXPECT_EQ(parseJobsFlag(argc, argv), 0u); // no flag given
        EXPECT_EQ(argc, 2);
    }
}

TEST(ParseJobsFlag, RejectsMalformedValues)
{
    char a0[] = "prog", a1[] = "-j0";
    char *argv[] = {a0, a1};
    int argc = 2;
    EXPECT_THROW(parseJobsFlag(argc, argv), std::invalid_argument);

    char b0[] = "prog", b1[] = "--jobs=lots";
    char *argvb[] = {b0, b1};
    int argcb = 2;
    EXPECT_THROW(parseJobsFlag(argcb, argvb), std::invalid_argument);
}

TEST(BaselineMemo, ConcurrentRequestsRunBaselineExactlyOnce)
{
    // A geometry no other test uses, so the memo entry is fresh.
    SimConfig base = tinyConfig("b2c");
    base.measureUops = 3100;

    const std::uint64_t before = cdpbench::baselineComputations();

    std::vector<std::thread> threads;
    std::vector<std::uint64_t> values(8, 0);
    for (std::size_t t = 0; t < values.size(); ++t)
        threads.emplace_back([&, t] {
            values[t] =
                cdpbench::missesWithoutPrefetching(base, "b2c");
        });
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(cdpbench::baselineComputations() - before, 1u);
    for (const auto v : values)
        EXPECT_EQ(v, values.front());
}

TEST(BaselineMemo, DistinctConfigsGetDistinctEntries)
{
    SimConfig base = tinyConfig("b2c");
    base.measureUops = 3200;
    const std::uint64_t before = cdpbench::baselineComputations();
    const auto small =
        cdpbench::missesWithoutPrefetching(base, "b2c");

    SimConfig big = base;
    big.mem.l2Bytes = 4 * 1024 * 1024; // geometry is part of the key
    const auto large = cdpbench::missesWithoutPrefetching(big, "b2c");
    EXPECT_EQ(cdpbench::baselineComputations() - before, 2u);
    EXPECT_GE(small, large); // bigger L2 cannot miss more
}
