/** @file Unit tests for uop-trace capture and replay. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/trace.hh"
#include "workloads/builders.hh"
#include "workloads/generators.hh"

using namespace cdp;

namespace
{

/** Temp-file path helper; files are removed in TearDown. */
struct TraceFixture : ::testing::Test
{
    std::string path;

    void
    SetUp() override
    {
        path = ::testing::TempDir() + "cdp_trace_test_" +
               std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
               ".cdpt";
    }

    void TearDown() override { std::remove(path.c_str()); }
};

Uop
sampleUop(unsigned i)
{
    Uop u;
    u.type = static_cast<UopType>(i % 6);
    u.pc = 0x1000 + 4 * i;
    u.vaddr = 0x10000000 + 64 * i;
    u.src0 = static_cast<std::int8_t>(i % 32);
    u.src1 = (i % 3) ? noReg : static_cast<std::int8_t>(i % 7);
    u.dst = static_cast<std::int8_t>((i + 1) % 32);
    u.taken = (i % 2) != 0;
    u.pointerLoad = (i % 5) == 0;
    return u;
}

bool
sameUop(const Uop &a, const Uop &b)
{
    return a.type == b.type && a.pc == b.pc && a.vaddr == b.vaddr &&
           a.src0 == b.src0 && a.src1 == b.src1 && a.dst == b.dst &&
           a.taken == b.taken && a.pointerLoad == b.pointerLoad;
}

} // namespace

TEST_F(TraceFixture, RoundTripPreservesEveryField)
{
    {
        TraceWriter w(path, "unit-test");
        for (unsigned i = 0; i < 500; ++i)
            w.append(sampleUop(i));
        w.close();
    }
    TraceReader r(path);
    EXPECT_EQ(r.count(), 500u);
    EXPECT_EQ(r.workloadTag(), "unit-test");
    Uop u;
    for (unsigned i = 0; i < 500; ++i) {
        ASSERT_TRUE(r.next(u)) << i;
        EXPECT_TRUE(sameUop(u, sampleUop(i))) << "uop " << i;
    }
    EXPECT_FALSE(r.next(u));
}

TEST_F(TraceFixture, EmptyTraceReadsNothing)
{
    {
        TraceWriter w(path, "empty");
        w.close();
    }
    TraceReader r(path);
    EXPECT_EQ(r.count(), 0u);
    Uop u;
    EXPECT_FALSE(r.next(u));
}

TEST_F(TraceFixture, WriterCountTracksAppends)
{
    TraceWriter w(path, "t");
    for (unsigned i = 0; i < 7; ++i)
        w.append(sampleUop(i));
    EXPECT_EQ(w.count(), 7u);
    w.close();
}

TEST_F(TraceFixture, AppendAfterCloseThrows)
{
    TraceWriter w(path, "t");
    w.close();
    EXPECT_THROW(w.append(sampleUop(0)), std::logic_error);
}

TEST_F(TraceFixture, BadMagicRejected)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace file at all", f);
    std::fclose(f);
    EXPECT_THROW(TraceReader r(path), std::runtime_error);
}

TEST_F(TraceFixture, MissingFileRejected)
{
    EXPECT_THROW(TraceReader r("/nonexistent/dir/x.cdpt"),
                 std::runtime_error);
}

TEST_F(TraceFixture, TraceSourceLoopsForever)
{
    {
        TraceWriter w(path, "loop");
        for (unsigned i = 0; i < 10; ++i)
            w.append(sampleUop(i));
        w.close();
    }
    TraceSource src(path);
    for (unsigned lap = 0; lap < 3; ++lap) {
        for (unsigned i = 0; i < 10; ++i)
            EXPECT_TRUE(sameUop(src.next(), sampleUop(i)))
                << "lap " << lap << " uop " << i;
    }
    EXPECT_EQ(src.wraps(), 2u);
}

TEST_F(TraceFixture, EmptyTraceSourceRejected)
{
    {
        TraceWriter w(path, "empty");
        w.close();
    }
    EXPECT_THROW(TraceSource src(path), std::runtime_error);
}

TEST_F(TraceFixture, CapturedWorkloadReplaysIdentically)
{
    // Capture a real generator's stream, then replay it and compare.
    BackingStore store;
    FrameAllocator frames{0, 8192, true, 3};
    PageTable pt{store, frames};
    HeapAllocator heap{store, pt, frames};
    Rng rng{5};
    BuiltList list = buildLinkedList(heap, 64, 64, 8, 2, rng);
    BuiltList list_copy = list;

    WalkOptions w;
    ListTraversalGen gen(heap, std::move(list), 0x1000, 0, w, 42);
    std::vector<Uop> reference;
    {
        CapturingSource cap(gen, path, "list/seed42");
        for (int i = 0; i < 300; ++i)
            reference.push_back(cap.next());
        cap.finish();
        EXPECT_EQ(cap.captured(), 300u);
    }

    TraceSource replay(path);
    EXPECT_EQ(std::string(replay.name()), "trace:list/seed42");
    for (int i = 0; i < 300; ++i)
        EXPECT_TRUE(sameUop(replay.next(), reference[i])) << i;
    (void)list_copy;
}
