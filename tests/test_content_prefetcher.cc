/** @file
 * Unit tests for the content prefetcher policy engine: chaining
 * depth, width emission, and the reinforcement predicate.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "core/content_prefetcher.hh"

using namespace cdp;

namespace
{

/** Build a line with pointers planted at the given offsets. */
std::array<std::uint8_t, lineBytes>
lineWith(std::initializer_list<std::pair<unsigned, std::uint32_t>> ptrs)
{
    std::array<std::uint8_t, lineBytes> line{};
    for (const auto &[off, v] : ptrs)
        std::memcpy(line.data() + off, &v, 4);
    return line;
}

CdpConfig
baseConfig()
{
    CdpConfig c;
    c.depthThreshold = 3;
    c.nextLines = 0;
    c.prevLines = 0;
    return c;
}

} // namespace

TEST(ContentPf, FindsCandidateAndAssignsChildDepth)
{
    ContentPrefetcher pf(baseConfig());
    const auto line = lineWith({{8, 0x10345678}});
    const auto out = pf.scanFill(line.data(), 0x10000008, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].vaddr, 0x10345678u);
    EXPECT_EQ(out[0].lineVa, lineAlign(0x10345678u));
    EXPECT_EQ(out[0].depth, 1u);
    EXPECT_FALSE(out[0].widthLine);
}

TEST(ContentPf, ChainedDepthIncrements)
{
    ContentPrefetcher pf(baseConfig());
    const auto line = lineWith({{8, 0x10345678}});
    EXPECT_EQ(pf.scanFill(line.data(), 0x10000008, 1)[0].depth, 2u);
    EXPECT_EQ(pf.scanFill(line.data(), 0x10000008, 2)[0].depth, 3u);
}

TEST(ContentPf, FillAtThresholdNotScanned)
{
    ContentPrefetcher pf(baseConfig());
    const auto line = lineWith({{8, 0x10345678}});
    EXPECT_TRUE(pf.scanFill(line.data(), 0x10000008, 3).empty());
    EXPECT_TRUE(pf.scanFill(line.data(), 0x10000008, 7).empty());
    EXPECT_EQ(pf.linesScanned(), 0u);
}

TEST(ContentPf, DisabledScansNothing)
{
    CdpConfig c = baseConfig();
    c.enabled = false;
    ContentPrefetcher pf(c);
    const auto line = lineWith({{8, 0x10345678}});
    EXPECT_TRUE(pf.scanFill(line.data(), 0x10000008, 0).empty());
}

TEST(ContentPf, NextLinesEmittedAfterCandidate)
{
    CdpConfig c = baseConfig();
    c.nextLines = 3;
    ContentPrefetcher pf(c);
    const auto line = lineWith({{8, 0x10345678}});
    const auto out = pf.scanFill(line.data(), 0x10000008, 0);
    ASSERT_EQ(out.size(), 4u);
    const Addr base = lineAlign(0x10345678u);
    EXPECT_EQ(out[0].lineVa, base);
    EXPECT_FALSE(out[0].widthLine);
    for (unsigned n = 1; n <= 3; ++n) {
        EXPECT_EQ(out[n].lineVa, base + n * lineBytes);
        EXPECT_TRUE(out[n].widthLine);
        EXPECT_EQ(out[n].depth, 1u);
    }
}

TEST(ContentPf, PrevLinesEmitted)
{
    CdpConfig c = baseConfig();
    c.prevLines = 1;
    ContentPrefetcher pf(c);
    const auto line = lineWith({{8, 0x10345678}});
    const auto out = pf.scanFill(line.data(), 0x10000008, 0);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].lineVa, lineAlign(0x10345678u) - lineBytes);
    EXPECT_TRUE(out[1].widthLine);
}

TEST(ContentPf, DuplicateLinesSuppressedWithinScan)
{
    // Two pointers into the same line produce one line request.
    CdpConfig c = baseConfig();
    ContentPrefetcher pf(c);
    const auto line = lineWith({{8, 0x10345678}, {16, 0x10345670}});
    const auto out = pf.scanFill(line.data(), 0x10000008, 0);
    EXPECT_EQ(out.size(), 1u);
}

TEST(ContentPf, TriggerLineNeverReRequested)
{
    // A self-pointer (pointer into the line being scanned) is not
    // worth a prefetch.
    ContentPrefetcher pf(baseConfig());
    const auto line = lineWith({{8, 0x10000010}});
    EXPECT_TRUE(pf.scanFill(line.data(), 0x10000008, 0).empty());
}

TEST(ContentPf, WidthDoesNotWrapBelowZero)
{
    CdpConfig c = baseConfig();
    c.prevLines = 2;
    ContentPrefetcher pf(c);
    // Candidate in the first line of the address space: prev lines
    // would wrap; they must be suppressed.
    const auto line = lineWith({{8, 0x00500000}});
    const auto out = pf.scanFill(line.data(), 0x00500fc8, 0);
    // candidate line 0x500000 is the line at the trigger? no:
    // trigger line = 0x500fc0, candidate line = 0x500000.
    ASSERT_GE(out.size(), 1u);
    for (const auto &cand : out)
        EXPECT_LE(cand.lineVa, lineAlign(0x00500000u));
}

TEST(ContentPf, ShouldRescanRequiresReinforcementOn)
{
    CdpConfig c = baseConfig();
    c.reinforce = false;
    ContentPrefetcher pf(c);
    EXPECT_FALSE(pf.shouldRescan(0, 3));
}

TEST(ContentPf, ShouldRescanDeltaOne)
{
    CdpConfig c = baseConfig();
    c.reinforce = true;
    c.reinforceMinDelta = 1;
    ContentPrefetcher pf(c);
    EXPECT_TRUE(pf.shouldRescan(0, 1));
    EXPECT_TRUE(pf.shouldRescan(0, 3));
    EXPECT_TRUE(pf.shouldRescan(1, 2));
    EXPECT_FALSE(pf.shouldRescan(1, 1));
    EXPECT_FALSE(pf.shouldRescan(2, 1)); // deeper request, no rescan
}

TEST(ContentPf, ShouldRescanDeltaTwoHalvesRescans)
{
    // Figure 4(c): rescan only when the incoming depth is at least
    // two below the stored depth.
    CdpConfig c = baseConfig();
    c.reinforceMinDelta = 2;
    ContentPrefetcher pf(c);
    EXPECT_FALSE(pf.shouldRescan(0, 1));
    EXPECT_TRUE(pf.shouldRescan(0, 2));
    EXPECT_TRUE(pf.shouldRescan(1, 3));
    EXPECT_FALSE(pf.shouldRescan(2, 3));
}

TEST(ContentPf, StatsCountScansAndCandidates)
{
    CdpConfig c = baseConfig();
    c.nextLines = 2;
    ContentPrefetcher pf(c);
    const auto line = lineWith({{8, 0x10345678}});
    pf.scanFill(line.data(), 0x10000008, 0);
    pf.scanFill(line.data(), 0x10000008, 0, /*is_rescan=*/true);
    EXPECT_EQ(pf.linesScanned(), 2u);
    EXPECT_EQ(pf.rescanCount(), 1u);
    EXPECT_EQ(pf.candidatesFound(), 2u);
}

TEST(ContentPf, WidthLabel)
{
    CdpConfig c;
    c.prevLines = 0;
    c.nextLines = 3;
    EXPECT_EQ(c.widthLabel(), "p0.n3");
    c.prevLines = 1;
    c.nextLines = 0;
    EXPECT_EQ(c.widthLabel(), "p1.n0");
}

/** Property: across depth thresholds, scans occur iff depth is below
 *  the threshold, and emitted depths never exceed threshold. */
class ContentPfDepth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ContentPfDepth, DepthInvariants)
{
    CdpConfig c = baseConfig();
    c.depthThreshold = GetParam();
    c.nextLines = 2;
    ContentPrefetcher pf(c);
    const auto line = lineWith({{8, 0x10345678}, {24, 0x10899000}});
    for (unsigned fill_depth = 0; fill_depth < 12; ++fill_depth) {
        const auto out = pf.scanFill(line.data(), 0x10000008,
                                     fill_depth);
        if (fill_depth >= c.depthThreshold) {
            EXPECT_TRUE(out.empty());
        } else {
            EXPECT_FALSE(out.empty());
            for (const auto &cand : out) {
                EXPECT_EQ(cand.depth, fill_depth + 1);
                EXPECT_LE(cand.depth, c.depthThreshold);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ContentPfDepth,
                         ::testing::Values(1u, 2u, 3u, 5u, 9u));

/** Property: emitted line set = dedup of candidate lines plus their
 *  width neighbourhoods, minus the trigger line. */
TEST(ContentPfProperty, EmittedSetMatchesSpec)
{
    CdpConfig c = baseConfig();
    c.nextLines = 3;
    c.prevLines = 1;
    ContentPrefetcher pf(c);
    const auto line = lineWith(
        {{0, 0x10100000}, {8, 0x10100040}, {32, 0x10900000}});
    const auto out = pf.scanFill(line.data(), 0x10000008, 0);

    std::set<Addr> expect;
    for (Addr cand : {0x10100000u, 0x10100040u, 0x10900000u}) {
        const Addr base = lineAlign(cand);
        expect.insert(base - lineBytes);
        for (unsigned n = 0; n <= 3; ++n)
            expect.insert(base + n * lineBytes);
    }
    expect.erase(lineAlign(0x10000008u));

    std::set<Addr> got;
    for (const auto &cand : out)
        EXPECT_TRUE(got.insert(cand.lineVa).second)
            << "duplicate line emitted";
    EXPECT_EQ(got, expect);
}
