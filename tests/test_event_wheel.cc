/** @file
 * Event-wheel scheduler tests: unit coverage of EventWheel's
 * determinism contract, plus the differential-equivalence net between
 * the wheel (idle-skipping) and legacy (tick-every-cycle) simulation
 * modes. The two modes must produce byte-identical statistics on any
 * valid configuration — that is the entire correctness argument for
 * skipping cycles (DESIGN.md §12).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "fuzz_config.hh"
#include "sim/event_wheel.hh"
#include "sim/memory_system.hh"
#include "sim/simulator.hh"

using namespace cdp;
using cdp::testcfg::randomConfig;

namespace
{

std::string
dumpStats(Simulator &sim)
{
    std::ostringstream os;
    sim.stats().dump(os);
    return os.str();
}

} // namespace

TEST(EventWheel, PopsInCycleOrder)
{
    EventWheel w;
    w.schedule(30, 0xc0);
    w.schedule(10, 0xa0);
    w.schedule(20, 0xb0);
    ASSERT_EQ(w.size(), 3u);
    ASSERT_EQ(w.nextDue(), 10u);

    auto e = w.popDue(100);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->when, 10u);
    EXPECT_EQ(e->payload, 0xa0u);
    e = w.popDue(100);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->when, 20u);
    e = w.popDue(100);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->when, 30u);
    EXPECT_TRUE(w.empty());
    EXPECT_FALSE(w.popDue(100));
}

TEST(EventWheel, FifoAmongSameCycleEvents)
{
    EventWheel w;
    for (Addr p : {0x1u, 0x2u, 0x3u, 0x4u})
        w.schedule(7, p);
    for (Addr expect : {0x1u, 0x2u, 0x3u, 0x4u}) {
        auto e = w.popDue(7);
        ASSERT_TRUE(e);
        EXPECT_EQ(e->payload, expect);
    }
    EXPECT_TRUE(w.empty());
}

TEST(EventWheel, PopDueGatesOnNow)
{
    EventWheel w;
    w.schedule(50, 0xaa);
    EXPECT_FALSE(w.popDue(49));
    EXPECT_EQ(w.size(), 1u);
    auto e = w.popDue(50);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->payload, 0xaau);
}

TEST(EventWheel, OverflowEventsMigrateIntoTheRing)
{
    // Schedule far beyond the 1024-slot horizon, then drain a near
    // event so the wheel's base turns past the old window; the
    // overflow events must surface in order.
    EventWheel w;
    w.schedule(5, 0x1);
    w.schedule(5'000, 0x2);
    w.schedule(200'000, 0x3);
    w.schedule(5'000, 0x4); // same far cycle: FIFO with 0x2

    auto e = w.popDue(5);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->payload, 0x1u);
    EXPECT_EQ(w.nextDue(), 5'000u);

    e = w.popDue(1'000'000);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->when, 5'000u);
    EXPECT_EQ(e->payload, 0x2u);
    e = w.popDue(1'000'000);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->when, 5'000u);
    EXPECT_EQ(e->payload, 0x4u);
    e = w.popDue(1'000'000);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->when, 200'000u);
    EXPECT_EQ(e->payload, 0x3u);
    EXPECT_TRUE(w.empty());
}

TEST(EventWheel, SortedReturnsPendingInWhenSeqOrder)
{
    EventWheel w;
    w.schedule(40, 0xd);
    w.schedule(12, 0xa);
    w.schedule(40, 0xe);
    w.schedule(2'000, 0xf); // overflow region

    const auto pending = w.sorted();
    ASSERT_EQ(pending.size(), 4u);
    EXPECT_EQ(pending[0].payload, 0xau);
    EXPECT_EQ(pending[1].payload, 0xdu);
    EXPECT_EQ(pending[2].payload, 0xeu);
    EXPECT_LT(pending[1].seq, pending[2].seq);
    EXPECT_EQ(pending[3].payload, 0xfu);
}

TEST(EventWheel, SchedulingBehindTheBaseThrows)
{
    EventWheel w;
    w.schedule(100, 0x1);
    // Draining the cycle-100 event turns the wheel: 100 becomes the
    // base, and anything behind it would mean time ran backwards.
    auto e = w.popDue(100);
    ASSERT_TRUE(e);
    EXPECT_THROW(w.schedule(99, 0x3), std::logic_error);

    // At or above base is legal even when it undercuts the current
    // minimum — the new event simply becomes the next to pop.
    w.schedule(200, 0x2);
    w.schedule(150, 0x4);
    w.schedule(200, 0x5); // FIFO tie with 0x2
    e = w.popDue(1'000);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->payload, 0x4u);
    e = w.popDue(1'000);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->payload, 0x2u);
    e = w.popDue(1'000);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->payload, 0x5u);
}

/**
 * The differential net: for every fuzzed configuration, a full
 * warm-up + measurement under the wheel scheduler must be
 * byte-identical — the complete stats dump, including the per-depth
 * provenance histograms — to the same run under the legacy
 * tick-every-cycle loop.
 */
class WheelVsLegacy : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(WheelVsLegacy, StatsDumpsAreByteIdentical)
{
    SimConfig c = randomConfig(GetParam());
    SCOPED_TRACE("workload=" + c.workload + " seed=" +
                 std::to_string(GetParam()));

    c.sched.mode = "wheel";
    Simulator wheel(c);
    const RunResult rw = wheel.run();

    c.sched.mode = "legacy";
    Simulator legacy(c);
    const RunResult rl = legacy.run();

    EXPECT_EQ(rw.cycles, rl.cycles);
    EXPECT_EQ(rw.uops, rl.uops);
    EXPECT_EQ(dumpStats(wheel), dumpStats(legacy));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WheelVsLegacy,
                         ::testing::Range<std::uint64_t>(1, 52));

/**
 * Directed idle-skip stress: a workload dominated by non-memory uops
 * leaves the memory system idle for long stretches, which is exactly
 * where the wheel must (a) skip work and (b) change nothing. The
 * legacy loop calls advance() every core cycle; the wheel must do
 * strictly less while producing an identical dump.
 */
TEST(WheelIdleSkip, SkipsAdvanceCallsWithoutChangingStats)
{
    SimConfig c;
    c.workload = "speech"; // lowest-MPTU workload in the suite
    c.warmupUops = 5'000;
    c.measureUops = 50'000;

    c.sched.mode = "wheel";
    Simulator wheel(c);
    const RunResult rw = wheel.run();

    c.sched.mode = "legacy";
    Simulator legacy(c);
    const RunResult rl = legacy.run();

    EXPECT_EQ(rw.cycles, rl.cycles);
    EXPECT_EQ(dumpStats(wheel), dumpStats(legacy));

    // The whole point: the wheel does strictly fewer full advances.
    EXPECT_LT(wheel.memory().fullAdvanceCount(),
              legacy.memory().fullAdvanceCount());
    // And the legacy loop never takes the skip path.
    EXPECT_EQ(legacy.memory().skippedAdvanceCount(), 0u);
}

/**
 * Cross-mode checkpoint equivalence: a checkpoint written by a
 * wheel-mode machine restores into a legacy-mode machine (and vice
 * versa) and both measure byte-identically afterwards. The scheduler
 * mode is a host-side policy, not architectural state, so it lives
 * outside the checkpoint's config-compatibility guard.
 */
class WheelCheckpointCross
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(WheelCheckpointCross, RestoreAcrossSchedulerModes)
{
    SimConfig c = randomConfig(GetParam());
    SCOPED_TRACE("workload=" + c.workload + " seed=" +
                 std::to_string(GetParam()));

    c.sched.mode = "wheel";
    Simulator wheel(c);
    wheel.warmup(c.warmupUops);
    wheel.quiesce();
    std::stringstream bytes;
    wheel.saveCheckpoint(bytes);

    SimConfig cl = c;
    cl.sched.mode = "legacy";
    Simulator legacy(cl);
    legacy.restoreCheckpoint(bytes);

    const RunResult rw = wheel.measure(c.measureUops);
    const RunResult rl = legacy.measure(c.measureUops);
    EXPECT_EQ(rw.cycles, rl.cycles);
    EXPECT_EQ(rw.uops, rl.uops);
    EXPECT_EQ(dumpStats(wheel), dumpStats(legacy));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WheelCheckpointCross,
                         ::testing::Range<std::uint64_t>(1, 9));
