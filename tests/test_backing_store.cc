/** @file Unit tests for the simulated physical memory. */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "mem/backing_store.hh"

using namespace cdp;

TEST(BackingStore, UnwrittenMemoryReadsZero)
{
    BackingStore m;
    EXPECT_EQ(m.read8(0x1234), 0u);
    EXPECT_EQ(m.read32(0xdeadbe00), 0u);
}

TEST(BackingStore, ByteRoundTrip)
{
    BackingStore m;
    m.write8(0x42, 0xab);
    EXPECT_EQ(m.read8(0x42), 0xabu);
    EXPECT_EQ(m.read8(0x43), 0u);
}

TEST(BackingStore, Word32RoundTrip)
{
    BackingStore m;
    m.write32(0x1000, 0x12345678u);
    EXPECT_EQ(m.read32(0x1000), 0x12345678u);
}

TEST(BackingStore, Word32IsLittleEndian)
{
    BackingStore m;
    m.write32(0x2000, 0x11223344u);
    EXPECT_EQ(m.read8(0x2000), 0x44u);
    EXPECT_EQ(m.read8(0x2001), 0x33u);
    EXPECT_EQ(m.read8(0x2002), 0x22u);
    EXPECT_EQ(m.read8(0x2003), 0x11u);
}

TEST(BackingStore, Word32AcrossFrameBoundary)
{
    BackingStore m;
    const Addr pa = pageBytes - 2; // straddles frames 0 and 1
    m.write32(pa, 0xa1b2c3d4u);
    EXPECT_EQ(m.read32(pa), 0xa1b2c3d4u);
    EXPECT_EQ(m.read8(pageBytes - 1), 0xc3u);
    EXPECT_EQ(m.read8(pageBytes), 0xb2u);
}

TEST(BackingStore, ReadLineReturnsAlignedLine)
{
    BackingStore m;
    for (Addr i = 0; i < lineBytes; ++i)
        m.write8(0x3040 + i, static_cast<std::uint8_t>(i));
    std::uint8_t buf[lineBytes];
    m.readLine(0x3050, buf); // mid-line address -> same line
    for (Addr i = 0; i < lineBytes; ++i)
        EXPECT_EQ(buf[i], i) << "offset " << i;
}

TEST(BackingStore, ReadLineOfUntouchedMemoryIsZero)
{
    BackingStore m;
    std::uint8_t buf[lineBytes];
    m.readLine(0x9990000, buf);
    for (Addr i = 0; i < lineBytes; ++i)
        EXPECT_EQ(buf[i], 0u);
}

TEST(BackingStore, BulkWrite)
{
    BackingStore m;
    std::uint8_t data[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    m.write(0x500, data, 10);
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(m.read8(0x500 + i), data[i]);
}

TEST(BackingStore, FramesMaterializeLazily)
{
    BackingStore m;
    EXPECT_EQ(m.framesTouched(), 0u);
    (void)m.read32(0x1000); // reads do not materialize
    EXPECT_EQ(m.framesTouched(), 0u);
    m.write8(0x1000, 1);
    EXPECT_EQ(m.framesTouched(), 1u);
    m.write8(0x1001, 2); // same frame
    EXPECT_EQ(m.framesTouched(), 1u);
    m.write8(0x10000, 3); // new frame
    EXPECT_EQ(m.framesTouched(), 2u);
}

/** Property: random word writes read back exactly. */
TEST(BackingStoreProperty, RandomWordRoundTrips)
{
    BackingStore m;
    Rng rng(123);
    // Use distinct addresses so reads are unambiguous.
    std::vector<std::pair<Addr, std::uint32_t>> writes;
    for (int i = 0; i < 2000; ++i) {
        const Addr pa = (static_cast<Addr>(i) * 52u + 4) & ~3u;
        const std::uint32_t v = rng.next32();
        m.write32(pa, v);
        writes.emplace_back(pa, v);
    }
    for (const auto &[pa, v] : writes)
        EXPECT_EQ(m.read32(pa), v);
}

/** Property: line reads agree with word reads at every offset. */
TEST(BackingStoreProperty, LineReadMatchesWordReads)
{
    BackingStore m;
    Rng rng(321);
    for (int t = 0; t < 50; ++t) {
        const Addr base =
            lineAlign(static_cast<Addr>(rng.below(1 << 20)));
        for (Addr off = 0; off < lineBytes; off += 4)
            m.write32(base + off, rng.next32());
        std::uint8_t buf[lineBytes];
        m.readLine(base, buf);
        for (Addr off = 0; off < lineBytes; off += 4) {
            std::uint32_t w;
            std::memcpy(&w, buf + off, 4);
            EXPECT_EQ(w, m.read32(base + off));
        }
    }
}
