/** @file
 * Differential property tests for the SIMD scanLine kernels: on every
 * reachable VAM configuration and every dispatch level this host
 * supports, scanLine must return exactly what the scalar reference
 * loop returns — same candidates, same values, same order. The SIMD
 * kernels are pure optimizations; any divergence is a bug here, not a
 * tuning question.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/rng.hh"
#include "core/vam.hh"

using namespace cdp;

namespace
{

/** Dispatch levels beyond Scalar that this build + host can run. */
std::vector<VamSimdLevel>
simdLevels()
{
    std::vector<VamSimdLevel> levels;
    const VamSimdLevel best = Vam::detectSimdLevel();
    if (best == VamSimdLevel::Scalar)
        return levels; // CDP_SIMD=OFF build or non-x86-64 host
    levels.push_back(VamSimdLevel::Sse2);
    if (best == VamSimdLevel::Avx2)
        levels.push_back(VamSimdLevel::Avx2);
    return levels;
}

void
expectLineAgrees(Vam &vam, const std::uint8_t *line, Addr ea)
{
    const std::vector<Addr> ref = vam.scanLineScalar(line, ea);
    for (const VamSimdLevel l : simdLevels()) {
        vam.forceSimdLevel(l);
        EXPECT_EQ(vam.scanLine(line, ea), ref)
            << "level=" << static_cast<int>(l) << " ea=" << ea;
    }
}

/** A word that passes/fails specific VAM checks, for seeding lines. */
std::uint32_t
boundaryWord(const VamConfig &cfg, unsigned kind, Addr ea)
{
    const unsigned cshift = 32 - cfg.compareBits;
    const std::uint32_t top = cshift < 32
                                  ? static_cast<std::uint32_t>(ea) >> cshift
                                  : 0;
    switch (kind % 8) {
      case 0: return 0;                      // all-zero region, filter 0
      case 1: return ~std::uint32_t{0};      // all-one region, filter 1s
      case 2: return cshift < 32 ? top << cshift : 0; // exact EA match
      case 3: return (cshift < 32 ? top << cshift : 0) | 1; // misaligned?
      case 4: return 1;                      // tiny positive integer
      case 5: return static_cast<std::uint32_t>(-2); // tiny negative
      case 6: return (cshift < 32 ? top << cshift : 0) |
                     (1u << (cfg.alignBits ? cfg.alignBits : 1)); // aligned body bit
      default: return static_cast<std::uint32_t>(ea); // the EA itself
    }
}

} // namespace

TEST(VamSimd, ForcingAnUnsupportedLevelThrows)
{
    Vam vam;
    if (Vam::detectSimdLevel() == VamSimdLevel::Scalar) {
        EXPECT_THROW(vam.forceSimdLevel(VamSimdLevel::Sse2),
                     std::invalid_argument);
        return;
    }
    if (Vam::detectSimdLevel() == VamSimdLevel::Sse2) {
        EXPECT_THROW(vam.forceSimdLevel(VamSimdLevel::Avx2),
                     std::invalid_argument);
    }
    // Forcing at or below the detected level is always legal.
    vam.forceSimdLevel(VamSimdLevel::Scalar);
    vam.forceSimdLevel(VamSimdLevel::Sse2);
}

TEST(VamSimd, ConstructionPicksTheDetectedLevel)
{
    Vam vam;
    EXPECT_EQ(vam.simdLevel(), Vam::detectSimdLevel());
}

/**
 * The full configuration lattice: every compareBits, the reachable
 * filterBits for it, align/step variants — randomized line contents.
 * This sweeps far beyond the configs the simulator can reach so the
 * kernels stay correct for whatever Figure 7/8-style sweeps come.
 */
TEST(VamSimd, ScalarAndSimdAgreeAcrossTheConfigLattice)
{
    if (simdLevels().empty())
        GTEST_SKIP() << "scalar-only build (CDP_SIMD=OFF)";

    Rng rng(20260809);
    alignas(32) std::uint8_t line[lineBytes];
    const unsigned steps[] = {1, 2, 4};

    for (unsigned cb = 1; cb < 32; ++cb) {
        const unsigned maxFb = std::min(8u, 32 - cb);
        for (unsigned fb = 0; fb <= maxFb; ++fb) {
            for (unsigned ab = 0; ab <= 4; ab += 2) {
                VamConfig cfg;
                cfg.compareBits = cb;
                cfg.filterBits = fb;
                cfg.alignBits = ab;
                cfg.scanStep = steps[(cb + fb + ab) % 3];
                Vam vam(cfg);

                for (unsigned i = 0; i < lineBytes; ++i)
                    line[i] = static_cast<std::uint8_t>(rng.below(256));
                const Addr ea =
                    static_cast<Addr>(rng.below(~std::uint32_t{0}));
                expectLineAgrees(vam, line, ea);
            }
        }
    }
}

/**
 * Exhaustive boundary enumeration: every word slot of the line, in
 * turn, holds each crafted boundary word (region edges, alignment
 * edges, exact compare matches) while the rest of the line is noise.
 * These are exactly the words where a lane predicate that is off by
 * one bit would still pass random testing.
 */
TEST(VamSimd, BoundaryWordsAgreeAtEveryLineOffset)
{
    if (simdLevels().empty())
        GTEST_SKIP() << "scalar-only build (CDP_SIMD=OFF)";

    Rng rng(42);
    alignas(32) std::uint8_t line[lineBytes];

    const VamConfig configs[] = {
        {},                 // the paper's 8.4.1.2
        {1, 0, 0, 1},       // minimal compare, no filter, byte scan
        {31, 1, 4, 4},      // maximal compare field
        {24, 8, 2, 2},      // wide filter field
        {16, 0, 0, 1},      // region checks degenerate (filterBits=0)
    };
    const Addr eas[] = {0x0000'0000u, 0x0000'1000u, 0x7fff'fff0u,
                        0x8000'0000u, 0xffff'ffccu, 0x1234'5678u};

    for (const VamConfig &cfg : configs) {
        Vam vam(cfg);
        for (const Addr ea : eas) {
            for (unsigned i = 0; i < lineBytes; ++i)
                line[i] = static_cast<std::uint8_t>(rng.below(256));
            // Place every boundary kind at every word offset; one
            // scan checks 16 planted words at once.
            for (unsigned kind = 0; kind < 8; ++kind) {
                for (unsigned off = 0; off + wordBytes <= lineBytes;
                     off += wordBytes) {
                    const std::uint32_t w =
                        boundaryWord(cfg, kind + off / wordBytes, ea);
                    std::memcpy(line + off, &w, wordBytes);
                }
                expectLineAgrees(vam, line, ea);
            }
        }
    }
}

/**
 * Unaligned trigger EAs and stepped scans: scanStep 1 and 2 examine
 * words at offsets the SIMD kernels cover with shifted loads; make
 * sure no residue lane is dropped or double-counted.
 */
TEST(VamSimd, SteppedScansCoverEveryResidue)
{
    if (simdLevels().empty())
        GTEST_SKIP() << "scalar-only build (CDP_SIMD=OFF)";

    Rng rng(7);
    alignas(32) std::uint8_t line[lineBytes];
    for (const unsigned step : {1u, 2u, 4u}) {
        VamConfig cfg;
        cfg.scanStep = step;
        Vam vam(cfg);
        for (unsigned trial = 0; trial < 200; ++trial) {
            // Half the trials: bias the line toward the EA's region
            // so candidates are dense, not vanishingly rare.
            const Addr ea = static_cast<Addr>(rng.below(~std::uint32_t{0}));
            for (unsigned off = 0; off + wordBytes <= lineBytes;
                 off += wordBytes) {
                std::uint32_t w =
                    static_cast<std::uint32_t>(rng.below(~std::uint32_t{0}));
                if (trial % 2 == 0)
                    w = (w & 0x00ff'fffeu) | (ea & 0xff00'0000u);
                std::memcpy(line + off, &w, wordBytes);
            }
            expectLineAgrees(vam, line, ea);
        }
    }
}
