/** @file Unit tests for the simulated heap allocator. */

#include <gtest/gtest.h>

#include "workloads/heap_allocator.hh"

using namespace cdp;

namespace
{

struct HeapFixture : ::testing::Test
{
    BackingStore store;
    FrameAllocator frames{0, 8192, true, 3};
    PageTable pt{store, frames};
    HeapAllocator heap{store, pt, frames};
};

} // namespace

TEST_F(HeapFixture, FirstAllocationAtHeapBase)
{
    EXPECT_EQ(heap.alloc(16), defaultHeapBase);
}

TEST_F(HeapFixture, AllocationsShareHighOrderBits)
{
    // The property VAM exploits: every heap pointer matches the heap
    // base in its upper 8 bits.
    for (int i = 0; i < 1000; ++i) {
        const Addr va = heap.alloc(48);
        EXPECT_EQ(va >> 24, defaultHeapBase >> 24);
    }
}

TEST_F(HeapFixture, AlignmentHonored)
{
    heap.alloc(3);
    EXPECT_EQ(heap.alloc(8, 4) % 4, 0u);
    heap.alloc(5);
    EXPECT_EQ(heap.alloc(8, 8) % 8, 0u);
    heap.alloc(1);
    EXPECT_EQ(heap.alloc(64, 64) % 64, 0u);
}

TEST_F(HeapFixture, BadAlignmentRejected)
{
    EXPECT_THROW(heap.alloc(8, 3), std::invalid_argument);
    EXPECT_THROW(heap.alloc(8, 0), std::invalid_argument);
}

TEST_F(HeapFixture, AllocationsDoNotOverlap)
{
    const Addr a = heap.alloc(100);
    const Addr b = heap.alloc(100);
    EXPECT_GE(b, a + 100);
}

TEST_F(HeapFixture, PagesMappedOnAllocation)
{
    const Addr va = heap.alloc(3 * pageBytes); // spans 4 pages
    for (Addr off = 0; off < 3 * pageBytes; off += pageBytes)
        EXPECT_TRUE(pt.translate(va + off).has_value());
}

TEST_F(HeapFixture, Word32RoundTripThroughTranslation)
{
    const Addr va = heap.alloc(64);
    heap.write32(va + 8, 0xcafef00du);
    EXPECT_EQ(heap.read32(va + 8), 0xcafef00du);
    // And the physical copy agrees.
    const auto pa = pt.translate(va + 8);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(store.read32(*pa), 0xcafef00du);
}

TEST_F(HeapFixture, CrossPageWord)
{
    // Force an allocation whose word straddles a page boundary.
    heap.alloc(pageBytes - 18, 2);
    const Addr va = heap.alloc(8, 2);
    ASSERT_EQ(pageOffset(va), pageBytes - 18 + (pageBytes - 18) % 2);
    const Addr cross = pageAlign(va) + pageBytes - 2;
    heap.ensureMapped(cross, 8);
    heap.write32(cross, 0x11223344u);
    EXPECT_EQ(heap.read32(cross), 0x11223344u);
}

TEST_F(HeapFixture, ByteAccessors)
{
    const Addr va = heap.alloc(4);
    heap.write8(va, 0x5a);
    EXPECT_EQ(heap.read8(va), 0x5au);
}

TEST_F(HeapFixture, UnmappedAccessThrows)
{
    EXPECT_THROW(heap.read32(0xbf000000), std::runtime_error);
    EXPECT_THROW(heap.write32(0xbf000000, 1), std::runtime_error);
}

TEST_F(HeapFixture, BytesAllocatedTracked)
{
    heap.alloc(100, 4);
    EXPECT_GE(heap.bytesAllocated(), 100u);
    EXPECT_LT(heap.bytesAllocated(), 200u);
}

TEST(HeapAlignmentNoise, FractionOfAllocationsLooselyAligned)
{
    BackingStore store;
    FrameAllocator frames{0, 8192, true, 3};
    PageTable pt{store, frames};
    HeapAllocator heap(store, pt, frames, defaultHeapBase,
                       /*align_noise=*/0.5, 1234);
    unsigned loose = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        // Odd size keeps the bump pointer unaligned so the next
        // allocation's effective alignment is observable.
        const Addr va = heap.alloc(6, 4);
        if (va % 4 != 0)
            ++loose;
    }
    // Roughly half the allocations should be 2-byte aligned only.
    EXPECT_GT(loose, n / 4u);
    EXPECT_LT(loose, 3u * n / 4u);
}

TEST(HeapAlignmentNoise, ZeroNoiseKeepsEverythingAligned)
{
    BackingStore store;
    FrameAllocator frames{0, 8192, true, 3};
    PageTable pt{store, frames};
    HeapAllocator heap(store, pt, frames, defaultHeapBase, 0.0, 1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(heap.alloc(6, 4) % 4, 0u);
}
