/** @file
 * Configuration-fuzz property tests: short simulations across
 * randomized machine/prefetcher configurations must never crash,
 * hang, or violate basic accounting invariants.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "fuzz_config.hh"
#include "sim/memory_system.hh"
#include "sim/simulator.hh"

using namespace cdp;
using cdp::testcfg::randomConfig;

namespace
{

void
checkInvariants(const RunResult &r, const SimConfig &c)
{
    // Retired what was asked (within retire-width slop).
    EXPECT_GE(r.uops, c.measureUops);
    EXPECT_LE(r.uops, c.measureUops + c.core.retireWidth);
    // IPC bounded by the machine width.
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, static_cast<double>(c.core.issueWidth) + 0.01);
    const auto &m = r.mem;
    // Masks cannot exceed demand L2 activity.
    EXPECT_LE(m.maskFullCdp + m.maskPartialCdp + m.maskFullStride +
                  m.maskPartialStride,
              m.l2DemandAccesses);
    // Adjusted subsets are subsets.
    EXPECT_LE(m.cdpIssuedOverlap, m.cdpIssued);
    EXPECT_LE(m.cdpUsefulOverlap, m.cdpUseful);
    // Misses cannot exceed accesses; L1 misses bound L2 accesses
    // from above only when stores are excluded, so just sanity-check
    // ordering of the big counters.
    EXPECT_LE(m.l2DemandMisses, m.l2DemandAccesses);
    // A disabled content prefetcher issues nothing.
    if (!c.cdp.enabled) {
        EXPECT_EQ(m.cdpIssued, 0u);
        EXPECT_EQ(m.rescans, 0u);
    }
    // strideIssued aggregates both history prefetchers (the Markov
    // prefetcher issues in the stride priority class).
    if (!c.stride.enabled && !c.markov.enabled) {
        EXPECT_EQ(m.strideIssued, 0u);
    }
    if (!c.pollution.enabled) {
        EXPECT_EQ(m.pollutionInjected, 0u);
    }
}

} // namespace

class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ConfigFuzz, ShortRunHoldsInvariants)
{
    const SimConfig c = randomConfig(GetParam());
    SCOPED_TRACE("workload=" + c.workload + " seed=" +
                 std::to_string(GetParam()));
    Simulator sim(c);
    const RunResult r = sim.run();
    checkInvariants(r, c);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

class ConfigFuzzTrace : public ::testing::TestWithParam<std::uint64_t>
{
};

/**
 * Randomized pass with the lifecycle tracer enabled: whatever the
 * configuration, the captured event stream must be well formed —
 * every issued transaction either fills exactly once (at or after its
 * issue cycle, with the same provenance root) or, for arbiter grants,
 * is explicitly dropped. Tracing must also leave results untouched.
 */
TEST_P(ConfigFuzzTrace, TraceIsWellFormed)
{
    SimConfig c = randomConfig(GetParam());
    SCOPED_TRACE("workload=" + c.workload + " seed=" +
                 std::to_string(GetParam()));

    SimConfig traced = c;
    traced.trace.enabled = true;
    traced.trace.bufferEvents = 1u << 20;
    Simulator sim(traced);
    const RunResult r = sim.run();
    if (!sim.memory().tracer().active())
        GTEST_SKIP() << "tracer compiled out (CDP_ENABLE_TRACE=OFF)";

    // Pure observer: identical results to the untraced twin.
    {
        Simulator plain(c);
        const RunResult rp = plain.run();
        ASSERT_EQ(r.cycles, rp.cycles);
        ASSERT_EQ(r.mem.cdpIssued, rp.mem.cdpIssued);
    }

    // Settle outstanding transactions so every issue can complete.
    sim.memory().drainAll(sim.core().currentCycle());
    const obs::Tracer &trc = sim.memory().tracer();
    ASSERT_EQ(trc.dropped(), 0u) << "event buffer too small";
    const std::vector<obs::TraceEvent> events = trc.snapshot();
    ASSERT_FALSE(events.empty());

    std::unordered_map<ReqId, const obs::TraceEvent *> issues;
    std::unordered_set<ReqId> filledIds, dropIds;
    std::vector<ReqId> grants;
    for (const obs::TraceEvent &e : events) {
        switch (e.kindOf()) {
        case obs::EventKind::Issue:
            EXPECT_TRUE(issues.emplace(e.id, &e).second)
                << "duplicate issue id " << e.id;
            break;
        case obs::EventKind::Fill: {
            const auto it = issues.find(e.id);
            ASSERT_NE(it, issues.end())
                << "fill without issue, id " << e.id;
            EXPECT_GE(e.cycle, it->second->cycle);
            EXPECT_EQ(e.root, it->second->root);
            EXPECT_TRUE(filledIds.insert(e.id).second)
                << "double fill, id " << e.id;
            break;
        }
        case obs::EventKind::Drop:
            dropIds.insert(e.id);
            break;
        case obs::EventKind::ArbGrant:
            grants.push_back(e.id);
            break;
        default:
            break;
        }
    }
    // After the drain, every issue has its matching completion.
    EXPECT_EQ(filledIds.size(), issues.size());
    // Every grant either issued or was explicitly dropped.
    for (const ReqId id : grants) {
        EXPECT_TRUE(issues.count(id) || dropIds.count(id))
            << "granted id " << id << " vanished silently";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzzTrace,
                         ::testing::Range<std::uint64_t>(1, 9));

class ConfigFuzzCheckpoint
    : public ::testing::TestWithParam<std::uint64_t>
{
};

/**
 * The differential-equivalence net over random configurations: for
 * any valid machine, (warm → quiesce → measure) straight through must
 * be byte-identical to (warm → quiesce → checkpoint → restore into a
 * fresh machine → measure). Both the pre-measure state (full stats
 * dump, current cycle) and everything measured afterwards have to
 * agree exactly.
 */
TEST_P(ConfigFuzzCheckpoint, RestoredRunIsByteIdentical)
{
    const SimConfig c = randomConfig(GetParam());
    SCOPED_TRACE("workload=" + c.workload + " seed=" +
                 std::to_string(GetParam()));

    const auto dump = [](Simulator &sim) {
        std::ostringstream os;
        sim.stats().dump(os);
        return os.str();
    };

    Simulator straight(c);
    straight.warmup(c.warmupUops);
    straight.quiesce();
    std::stringstream bytes;
    straight.saveCheckpoint(bytes);
    // measure() resets the stats, so capture the warm state now.
    const std::string preStraight = dump(straight);

    Simulator forked(c);
    forked.restoreCheckpoint(bytes);
    ASSERT_EQ(preStraight, dump(forked));
    ASSERT_EQ(straight.core().currentCycle(),
              forked.core().currentCycle());

    const RunResult rs = straight.measure(c.measureUops);
    const RunResult rf = forked.measure(c.measureUops);
    EXPECT_EQ(rs.cycles, rf.cycles);
    EXPECT_EQ(rs.uops, rf.uops);
    EXPECT_EQ(rs.mem.l2DemandMisses, rf.mem.l2DemandMisses);
    EXPECT_EQ(rs.mem.cdpIssued, rf.mem.cdpIssued);
    EXPECT_EQ(rs.mem.cdpUseful, rf.mem.cdpUseful);
    EXPECT_EQ(rs.mem.strideIssued, rf.mem.strideIssued);
    EXPECT_EQ(rs.mem.rescans, rf.mem.rescans);
    EXPECT_EQ(rs.mem.pollutionInjected, rf.mem.pollutionInjected);
    EXPECT_EQ(dump(straight), dump(forked));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzzCheckpoint,
                         ::testing::Range<std::uint64_t>(1, 52));

class ConfigFuzzCheckpointTrace
    : public ::testing::TestWithParam<std::uint64_t>
{
};

/**
 * Traced variant of the differential net: with the lifecycle tracer
 * on, the measured phase's event stream — ids, cycles, provenance
 * roots, everything — must be byte-identical between the straight
 * and the restored leg. The straight machine's buffer is cleared at
 * the checkpoint boundary so both legs trace from the same point.
 */
TEST_P(ConfigFuzzCheckpointTrace, MeasuredEventStreamIsByteIdentical)
{
    SimConfig c = randomConfig(GetParam());
    c.trace.enabled = true;
    c.trace.bufferEvents = 1u << 20;
    SCOPED_TRACE("workload=" + c.workload + " seed=" +
                 std::to_string(GetParam()));

    Simulator straight(c);
    straight.warmup(c.warmupUops);
    straight.quiesce();
    if (!straight.memory().tracer().active())
        GTEST_SKIP() << "tracer compiled out (CDP_ENABLE_TRACE=OFF)";
    std::stringstream bytes;
    straight.saveCheckpoint(bytes);
    straight.memory().tracer().clear();

    Simulator forked(c);
    forked.restoreCheckpoint(bytes);

    const RunResult rs = straight.measure(c.measureUops);
    const RunResult rf = forked.measure(c.measureUops);
    ASSERT_EQ(rs.cycles, rf.cycles);
    straight.memory().drainAll(straight.core().currentCycle());
    forked.memory().drainAll(forked.core().currentCycle());

    ASSERT_EQ(straight.memory().tracer().dropped(), 0u);
    ASSERT_EQ(forked.memory().tracer().dropped(), 0u);
    const std::vector<obs::TraceEvent> es =
        straight.memory().tracer().snapshot();
    const std::vector<obs::TraceEvent> ef =
        forked.memory().tracer().snapshot();
    ASSERT_EQ(es.size(), ef.size());
    // TraceEvent is a 40-byte POD with explicit zero padding, so the
    // streams can be compared as raw bytes.
    EXPECT_EQ(0, std::memcmp(es.data(), ef.data(),
                             es.size() * sizeof(obs::TraceEvent)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzzCheckpointTrace,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ConfigFuzzDeterminism, SameSeedSameResult)
{
    for (std::uint64_t seed : {3u, 11u, 19u}) {
        const SimConfig c = randomConfig(seed);
        Simulator a(c), b(c);
        const RunResult ra = a.run();
        const RunResult rb = b.run();
        EXPECT_EQ(ra.cycles, rb.cycles) << "seed " << seed;
        EXPECT_EQ(ra.mem.cdpIssued, rb.mem.cdpIssued) << "seed "
                                                      << seed;
    }
}
