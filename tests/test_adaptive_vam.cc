/** @file Unit tests for the adaptive VAM controller (§4.1 future
 *  work) and its end-to-end integration. */

#include <gtest/gtest.h>

#include "core/adaptive_vam.hh"
#include "sim/simulator.hh"

using namespace cdp;

namespace
{

AdaptiveVamConfig
cfg(std::uint64_t epoch = 100)
{
    AdaptiveVamConfig c;
    c.enabled = true;
    c.epochPrefetches = epoch;
    c.lowAccuracy = 0.10;
    c.highAccuracy = 0.40;
    return c;
}

/** Feed one epoch with the given accuracy. */
void
feed(AdaptiveVamController &ctl, unsigned issued, unsigned useful)
{
    for (unsigned i = 0; i < issued; ++i)
        ctl.noteIssued();
    for (unsigned i = 0; i < useful; ++i)
        ctl.noteUseful();
}

} // namespace

TEST(AdaptiveVam, DisabledControllerNeverActs)
{
    AdaptiveVamConfig c = cfg();
    c.enabled = false;
    AdaptiveVamController ctl(c);
    feed(ctl, 1000, 0);
    EXPECT_FALSE(ctl.epochElapsed());
    CdpConfig target;
    EXPECT_FALSE(ctl.evaluate(target));
}

TEST(AdaptiveVam, EpochElapsesAtThreshold)
{
    AdaptiveVamController ctl(cfg(100));
    feed(ctl, 99, 10);
    EXPECT_FALSE(ctl.epochElapsed());
    ctl.noteIssued();
    EXPECT_TRUE(ctl.epochElapsed());
}

TEST(AdaptiveVam, LowAccuracyTightensCompareBits)
{
    AdaptiveVamController ctl(cfg());
    CdpConfig target; // compareBits 8
    feed(ctl, 100, 5); // 5% accuracy
    EXPECT_TRUE(ctl.evaluate(target));
    EXPECT_EQ(target.vam.compareBits, 9u);
    EXPECT_EQ(ctl.tightenCount(), 1u);
    EXPECT_DOUBLE_EQ(ctl.lastEpochAccuracy(), 0.05);
}

TEST(AdaptiveVam, HighAccuracyLoosensTowardMinimum)
{
    AdaptiveVamController ctl(cfg());
    CdpConfig target;
    target.vam.compareBits = 10;
    feed(ctl, 100, 60); // 60% accuracy
    EXPECT_TRUE(ctl.evaluate(target));
    EXPECT_EQ(target.vam.compareBits, 9u);
    EXPECT_EQ(ctl.loosenCount(), 1u);
}

TEST(AdaptiveVam, HysteresisBandLeavesConfigAlone)
{
    AdaptiveVamController ctl(cfg());
    CdpConfig target;
    feed(ctl, 100, 25); // 25%: between 10% and 40%
    EXPECT_FALSE(ctl.evaluate(target));
    EXPECT_EQ(target.vam.compareBits, 8u);
}

TEST(AdaptiveVam, TightenFallsBackToWidthAtMaxCompare)
{
    AdaptiveVamController ctl(cfg());
    CdpConfig target;
    target.vam.compareBits = 14; // at the cap
    target.nextLines = 3;
    feed(ctl, 100, 2);
    EXPECT_TRUE(ctl.evaluate(target));
    EXPECT_EQ(target.vam.compareBits, 14u);
    EXPECT_EQ(target.nextLines, 2u);
}

TEST(AdaptiveVam, LoosenFallsBackToWidthAtMinCompare)
{
    AdaptiveVamController ctl(cfg());
    CdpConfig target; // compareBits 8 == minimum
    target.nextLines = 2;
    feed(ctl, 100, 80);
    EXPECT_TRUE(ctl.evaluate(target));
    EXPECT_EQ(target.vam.compareBits, 8u);
    EXPECT_EQ(target.nextLines, 3u);
}

TEST(AdaptiveVam, SaturatesAtBothEnds)
{
    AdaptiveVamConfig c = cfg();
    c.adjustWidth = false;
    AdaptiveVamController ctl(c);
    CdpConfig target;
    target.vam.compareBits = 14;
    feed(ctl, 100, 0);
    EXPECT_FALSE(ctl.evaluate(target)); // nothing left to tighten
    target.vam.compareBits = 8;
    feed(ctl, 100, 100);
    EXPECT_FALSE(ctl.evaluate(target)); // nothing left to loosen
}

TEST(AdaptiveVam, EpochCountersResetAfterEvaluate)
{
    AdaptiveVamController ctl(cfg(100));
    CdpConfig target;
    feed(ctl, 100, 50);
    ctl.evaluate(target);
    EXPECT_FALSE(ctl.epochElapsed());
    EXPECT_EQ(ctl.epochsEvaluated(), 1u);
}

TEST(AdaptiveVam, ReconfigureSwapsPredictorLive)
{
    ContentPrefetcher pf(CdpConfig{});
    EXPECT_EQ(pf.config().vam.compareBits, 8u);
    CdpConfig tuned = pf.config();
    tuned.vam.compareBits = 11;
    tuned.nextLines = 1;
    pf.reconfigure(tuned);
    EXPECT_EQ(pf.config().vam.compareBits, 11u);
    EXPECT_EQ(pf.vam().config().compareBits, 11u);
    EXPECT_EQ(pf.config().nextLines, 1u);
}

TEST(AdaptiveVam, EndToEndRunAdjustsAndStaysCompetitive)
{
    SimConfig fixed;
    fixed.workload = "verilog-gate";
    fixed.warmupUops = 150'000;
    fixed.measureUops = 250'000;

    SimConfig adaptive = fixed;
    adaptive.adaptive.enabled = true;
    adaptive.adaptive.epochPrefetches = 512;

    Simulator fs(fixed);
    const RunResult fr = fs.run();
    Simulator as(adaptive);
    const RunResult ar = as.run();

    // The controller actually ran...
    EXPECT_GT(as.memory().adaptiveCtl().epochsEvaluated(), 1u);
    // ...and adaptive stays within a reasonable band of the
    // hand-tuned configuration on this workload.
    EXPECT_GT(ar.ipc, fr.ipc * 0.9);
}

TEST(AdaptiveVam, ConfigKeysParse)
{
    SimConfig c;
    EXPECT_TRUE(c.applyOverride("adaptive.enabled", "1"));
    EXPECT_TRUE(c.applyOverride("adaptive.epoch", "4096"));
    EXPECT_TRUE(c.applyOverride("adaptive.low_accuracy", "0.05"));
    EXPECT_TRUE(c.applyOverride("adaptive.high_accuracy", "0.5"));
    EXPECT_TRUE(c.applyOverride("adaptive.adjust_width", "0"));
    EXPECT_TRUE(c.adaptive.enabled);
    EXPECT_EQ(c.adaptive.epochPrefetches, 4096u);
    EXPECT_DOUBLE_EQ(c.adaptive.lowAccuracy, 0.05);
    EXPECT_DOUBLE_EQ(c.adaptive.highAccuracy, 0.5);
    EXPECT_FALSE(c.adaptive.adjustWidth);
}
