/** @file
 * Unit tests for the uop-stream generators: emitted loads must point
 * at real structure bytes, dependencies must be wired, and mixes
 * must respect their weights.
 */

#include <gtest/gtest.h>

#include <map>

#include "workloads/generators.hh"

using namespace cdp;

namespace
{

struct GenFixture : ::testing::Test
{
    BackingStore store;
    FrameAllocator frames{0, 32768, true, 21};
    PageTable pt{store, frames};
    HeapAllocator heap{store, pt, frames};
    Rng rng{77};
};

} // namespace

TEST_F(GenFixture, ListGenPointerLoadsFollowTheRealChain)
{
    BuiltList list = buildLinkedList(heap, 64, 64, 8, 1, rng);
    const std::vector<Addr> expect = list.nodes;
    WalkOptions w;
    w.payloadLoads = 0;
    w.aluPerNode = 0;
    ListTraversalGen gen(heap, std::move(list), 0x1000, 0, w, 5);

    std::vector<Addr> chased;
    while (chased.size() < 64) {
        const Uop u = gen.next();
        if (u.type == UopType::Load && u.pointerLoad)
            chased.push_back(lineAlign(u.vaddr));
    }
    for (std::size_t i = 0; i < chased.size(); ++i)
        EXPECT_EQ(chased[i], lineAlign(expect[i] + 8)) << "hop " << i;
}

TEST_F(GenFixture, ListGenPointerLoadDependsOnPointerRegister)
{
    BuiltList list = buildLinkedList(heap, 16, 64, 8, 1, rng);
    WalkOptions w;
    ListTraversalGen gen(heap, std::move(list), 0x1000, 0, w, 5);
    for (int i = 0; i < 100; ++i) {
        const Uop u = gen.next();
        if (u.type == UopType::Load && u.pointerLoad) {
            EXPECT_EQ(u.src0, 0); // reads the pointer register
            EXPECT_EQ(u.dst, 0);  // and writes it back (the chase)
        }
    }
}

TEST_F(GenFixture, ListGenEmitsPayloadComputeAndBranch)
{
    BuiltList list = buildLinkedList(heap, 16, 128, 8, 1, rng);
    WalkOptions w;
    w.payloadLoads = 2;
    w.aluPerNode = 3;
    ListTraversalGen gen(heap, std::move(list), 0x1000, 0, w, 5);
    unsigned loads = 0, alus = 0, branches = 0;
    for (int i = 0; i < 7 * 20; ++i) {
        switch (gen.next().type) {
          case UopType::Load: ++loads; break;
          case UopType::Alu:
          case UopType::Fp: ++alus; break;
          case UopType::Branch: ++branches; break;
          default: break;
        }
    }
    EXPECT_GT(loads, 0u);
    EXPECT_GT(alus, 0u);
    EXPECT_GT(branches, 0u);
    // Per node: 2 payload + 3 compute + 1 pointer load + 1 branch.
    EXPECT_EQ(loads, 3u * branches);
}

TEST_F(GenFixture, ListGenPayloadTouchesTrailingLines)
{
    // 128-byte nodes: a payload load must land beyond offset 63.
    BuiltList list = buildLinkedList(heap, 16, 128, 8, 1, rng);
    const Addr node0 = list.nodes[0];
    WalkOptions w;
    w.payloadLoads = 2;
    ListTraversalGen gen(heap, std::move(list), 0x1000, 0, w, 5);
    bool trailing = false;
    for (int i = 0; i < 8; ++i) {
        const Uop u = gen.next();
        if (u.type == UopType::Load && !u.pointerLoad)
            trailing |= (u.vaddr >= node0 + 64 && u.vaddr < node0 + 128);
    }
    EXPECT_TRUE(trailing);
}

TEST_F(GenFixture, TreeGenWalksRealChildren)
{
    BuiltTree tree = buildBinaryTree(heap, 200, 32, rng);
    const Addr root = tree.root;
    const auto left_off = tree.leftOffset;
    const auto right_off = tree.rightOffset;
    WalkOptions w;
    TreeSearchGen gen(heap, std::move(tree), 0x2000, 4, w, 5);
    // The first pointer load must target one of the root's child
    // slots.
    for (int i = 0; i < 10; ++i) {
        const Uop u = gen.next();
        if (u.type == UopType::Load && u.pointerLoad) {
            EXPECT_TRUE(u.vaddr == root + left_off ||
                        u.vaddr == root + right_off);
            break;
        }
    }
}

TEST_F(GenFixture, HashGenLoadsBucketHeadThenChain)
{
    BuiltHash hash = buildHashTable(heap, 16, 100, 32, rng);
    const Addr arr = hash.bucketArray;
    WalkOptions w;
    HashLookupGen gen(heap, std::move(hash), 0x3000, 8, w, 5);
    bool saw_bucket_load = false;
    for (int i = 0; i < 50; ++i) {
        const Uop u = gen.next();
        if (u.type == UopType::Load && u.pointerLoad &&
            u.vaddr >= arr && u.vaddr < arr + 16 * 4) {
            saw_bucket_load = true;
            break;
        }
    }
    EXPECT_TRUE(saw_bucket_load);
}

TEST_F(GenFixture, StrideGenStridesAndWraps)
{
    StrideStreamGen gen(0x10000000, 1024, 64, 0x4000, 12, 1, 5);
    std::vector<Addr> addrs;
    while (addrs.size() < 20) {
        const Uop u = gen.next();
        if (u.type == UopType::Load)
            addrs.push_back(u.vaddr);
    }
    for (int i = 0; i < 15; ++i) {
        EXPECT_EQ(addrs[i], 0x10000000u + (i * 64) % 1024)
            << "iteration " << i;
    }
}

TEST_F(GenFixture, RandomGenStaysInRegion)
{
    RandomAccessGen gen(0x10000000, 4096, 0x5000, 16, 5);
    for (int i = 0; i < 200; ++i) {
        const Uop u = gen.next();
        if (u.type == UopType::Load) {
            EXPECT_GE(u.vaddr, 0x10000000u);
            EXPECT_LT(u.vaddr, 0x10001000u);
        }
    }
}

TEST_F(GenFixture, ComputeGenHotLoadsStayInHotRegion)
{
    ComputeGen gen(0x6000, 20, 8, 0.0, 0.0, 0x20000000, 8192, 3, 5);
    unsigned loads = 0, total = 0;
    for (int i = 0; i < 240; ++i) {
        const Uop u = gen.next();
        ++total;
        if (u.type == UopType::Load) {
            ++loads;
            EXPECT_GE(u.vaddr, 0x20000000u);
            EXPECT_LT(u.vaddr, 0x20002000u);
        }
    }
    // 3 hot loads per 12-uop block.
    EXPECT_NEAR(static_cast<double>(loads) / total, 0.25, 0.05);
}

TEST_F(GenFixture, ComputeGenNoHotRegionMeansNoLoads)
{
    ComputeGen gen(0x6000, 20, 8, 0.0, 0.0, 0, 0, 3, 5);
    for (int i = 0; i < 100; ++i)
        EXPECT_NE(gen.next().type, UopType::Load);
}

TEST_F(GenFixture, MixGenRespectsWeights)
{
    auto a = std::make_unique<ComputeGen>(0x100, 0, 1, 0.0, 0.0, 0, 0,
                                          0, 5);
    auto b = std::make_unique<ComputeGen>(0x900, 8, 1, 0.0, 0.0, 0, 0,
                                          0, 6);
    MixGen mix("m", 3);
    mix.add(std::move(a), 0.8);
    mix.add(std::move(b), 0.2);
    std::map<bool, unsigned> counts; // keyed by pc < 0x900
    for (int i = 0; i < 10000; ++i)
        ++counts[mix.next().pc < 0x900];
    const double frac_a =
        static_cast<double>(counts[true]) / 10000.0;
    EXPECT_NEAR(frac_a, 0.8, 0.05);
}

TEST_F(GenFixture, MixGenWithNoSourcesThrows)
{
    MixGen mix("empty", 1);
    EXPECT_THROW(mix.next(), std::runtime_error);
}

TEST_F(GenFixture, GeneratorsAreDeterministicPerSeed)
{
    auto make = [&](std::uint64_t seed) {
        BuiltList l = buildLinkedList(heap, 32, 64, 8, 2, rng);
        return std::make_unique<ListTraversalGen>(
            heap, std::move(l), 0x1000, 0, WalkOptions{}, seed);
    };
    // Same structure traversal is deterministic given the seed; the
    // two generators walk different lists but fixed seeds give a
    // reproducible uop type sequence.
    auto g1 = make(11);
    std::vector<UopType> t1, t2;
    for (int i = 0; i < 50; ++i)
        t1.push_back(g1->next().type);
    auto g2 = make(11);
    for (int i = 0; i < 50; ++i)
        t2.push_back(g2->next().type);
    EXPECT_EQ(t1, t2);
}
