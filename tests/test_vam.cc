/** @file
 * Unit and property tests for the Virtual Address Matching predictor
 * — the paper's pointer-recognition heuristic (Section 3.3).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "core/vam.hh"

using namespace cdp;

namespace
{

/** The paper's chosen configuration: 8.4.1.2. */
VamConfig
paperConfig()
{
    return VamConfig{8, 4, 1, 2};
}

} // namespace

TEST(VamConfig, Label)
{
    EXPECT_EQ(paperConfig().label(), "8.4.1.2");
    EXPECT_EQ((VamConfig{12, 0, 2, 4}.label()), "12.0.2.4");
}

TEST(VamConfig, Validation)
{
    EXPECT_THROW(Vam(VamConfig{0, 4, 1, 2}), std::invalid_argument);
    EXPECT_THROW(Vam(VamConfig{32, 4, 1, 2}), std::invalid_argument);
    EXPECT_THROW(Vam(VamConfig{30, 4, 1, 2}), std::invalid_argument);
    EXPECT_THROW(Vam(VamConfig{8, 4, 9, 2}), std::invalid_argument);
    EXPECT_THROW(Vam(VamConfig{8, 4, 1, 0}), std::invalid_argument);
}

TEST(Vam, HeapPointerMatchesHeapTrigger)
{
    Vam vam(paperConfig());
    // Trigger EA and candidate share the upper 8 bits (0x10).
    EXPECT_EQ(vam.classify(0x10345678 & ~1u, 0x10000008),
              VamVerdict::Candidate);
}

TEST(Vam, DifferentRegionRejected)
{
    Vam vam(paperConfig());
    EXPECT_EQ(vam.classify(0x20345678, 0x10000008),
              VamVerdict::CompareMismatch);
}

TEST(Vam, MisalignedRejected)
{
    Vam vam(paperConfig());
    EXPECT_EQ(vam.classify(0x10345679, 0x10000008),
              VamVerdict::Misaligned);
}

TEST(Vam, AlignBitsZeroAcceptsOddValues)
{
    Vam vam(VamConfig{8, 4, 0, 2});
    EXPECT_EQ(vam.classify(0x10345679, 0x10000008),
              VamVerdict::Candidate);
}

TEST(Vam, AlignBitsTwoRequiresFourByteAlignment)
{
    Vam vam(VamConfig{8, 4, 2, 4});
    EXPECT_EQ(vam.classify(0x10345678, 0x10000008),
              VamVerdict::Candidate);
    EXPECT_EQ(vam.classify(0x1034567a, 0x10000008),
              VamVerdict::Misaligned);
}

TEST(Vam, SmallIntegerFilteredInZeroRegion)
{
    Vam vam(paperConfig());
    // Trigger in the low region: upper 8 bits zero. A small value
    // (e.g. 42) has zero filter bits -> data, not address.
    EXPECT_EQ(vam.classify(42 & ~1u, 0x00001000),
              VamVerdict::FilteredZero);
}

TEST(Vam, LargeLowRegionValueAccepted)
{
    Vam vam(paperConfig());
    // Filter bits are [23:20] for 8.4; a value with a bit there is a
    // likely address even though the compare bits are all zero.
    EXPECT_EQ(vam.classify(0x00500000, 0x00001000),
              VamVerdict::Candidate);
}

TEST(Vam, SmallNegativeFilteredInOnesRegion)
{
    Vam vam(paperConfig());
    // -2 = 0xfffffffe: upper 8 all ones, filter bits all ones.
    EXPECT_EQ(vam.classify(0xfffffffe, 0xff001000),
              VamVerdict::FilteredOne);
}

TEST(Vam, StackPointerInOnesRegionAccepted)
{
    Vam vam(paperConfig());
    // 0xff4ff000: upper 8 ones, but filter nibble (0x4) not all ones.
    EXPECT_EQ(vam.classify(0xff4ff000, 0xff001000),
              VamVerdict::Candidate);
}

TEST(Vam, ZeroFilterBitsDisablePredictionInExtremeRegions)
{
    Vam vam(VamConfig{8, 0, 1, 2});
    // With zero filter bits, nothing in the all-zero region predicts
    // (the filter field is empty -> always "all zero").
    EXPECT_EQ(vam.classify(0x00500000, 0x00001000),
              VamVerdict::FilteredZero);
    EXPECT_EQ(vam.classify(0xff4ff000, 0xff001000),
              VamVerdict::FilteredOne);
    // Normal regions still predict.
    EXPECT_EQ(vam.classify(0x10345678, 0x10000008),
              VamVerdict::Candidate);
}

TEST(Vam, NullPointerNeverCandidate)
{
    for (unsigned cb : {8u, 10u, 12u}) {
        for (unsigned fb : {0u, 2u, 4u, 6u}) {
            Vam vam(VamConfig{cb, fb, 1, 2});
            EXPECT_NE(vam.classify(0, 0x00000100),
                      VamVerdict::Candidate)
                << cb << "." << fb;
        }
    }
}

TEST(Vam, MoreCompareBitsShrinkPrefetchableRange)
{
    // 0x10345678 vs trigger 0x10000008: upper 8 match, upper 12 do
    // not (0x103 vs 0x100).
    Vam vam8(VamConfig{8, 4, 1, 2});
    Vam vam12(VamConfig{12, 4, 1, 2});
    EXPECT_EQ(vam8.classify(0x10345678 & ~1u, 0x10000008),
              VamVerdict::Candidate);
    EXPECT_EQ(vam12.classify(0x10345678 & ~1u, 0x10000008),
              VamVerdict::CompareMismatch);
}

TEST(Vam, ScanLineFindsPlantedPointer)
{
    Vam vam(paperConfig());
    std::uint8_t line[lineBytes] = {};
    const std::uint32_t ptr = 0x10345678 & ~1u;
    std::memcpy(line + 8, &ptr, 4);
    const auto found = vam.scanLine(line, 0x10000008);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0], ptr);
}

TEST(Vam, ScanLineFindsMultiplePointers)
{
    Vam vam(paperConfig());
    std::uint8_t line[lineBytes] = {};
    const std::uint32_t p1 = 0x10100000, p2 = 0x10200000;
    std::memcpy(line + 0, &p1, 4);
    std::memcpy(line + 60, &p2, 4);
    const auto found = vam.scanLine(line, 0x10000008);
    ASSERT_EQ(found.size(), 2u);
    EXPECT_EQ(found[0], p1);
    EXPECT_EQ(found[1], p2);
}

TEST(Vam, ScanStepFourMissesTwoByteAlignedPointer)
{
    // A pointer at offset 6 is visible to a 2-byte scan step but not
    // to a 4-byte step -- the coverage/accuracy trade of Figure 8.
    std::uint8_t line[lineBytes] = {};
    const std::uint32_t ptr = 0x10345678 & ~1u;
    std::memcpy(line + 6, &ptr, 4);
    Vam step2(VamConfig{8, 4, 1, 2});
    Vam step4(VamConfig{8, 4, 1, 4});
    EXPECT_EQ(step2.scanLine(line, 0x10000008).size(), 1u);
    EXPECT_EQ(step4.scanLine(line, 0x10000008).size(), 0u);
}

TEST(Vam, WordsPerLineMatchesScanStep)
{
    EXPECT_EQ(Vam(VamConfig{8, 4, 1, 1}).wordsPerLine(), 61u);
    EXPECT_EQ(Vam(VamConfig{8, 4, 1, 2}).wordsPerLine(), 31u);
    EXPECT_EQ(Vam(VamConfig{8, 4, 1, 4}).wordsPerLine(), 16u);
}

TEST(Vam, ScanLineOfZerosFindsNothing)
{
    Vam vam(paperConfig());
    std::uint8_t line[lineBytes] = {};
    EXPECT_TRUE(vam.scanLine(line, 0x10000008).empty());
}

/**
 * Property sweep over the Figure 7 configurations: for every
 * compare/filter combination, (a) genuine same-region heap pointers
 * are always candidates, (b) small integers never are, and (c) the
 * false-positive rate on uniform random words shrinks as compare
 * bits grow.
 */
class VamCompareFilter
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(VamCompareFilter, HeapPointersAlwaysMatch)
{
    const auto [cb, fb] = GetParam();
    Vam vam(VamConfig{cb, fb, 1, 2});
    Rng rng(17);
    const Addr heap_base = 0x10000000;
    for (int i = 0; i < 500; ++i) {
        // Pointer and trigger inside a 1-MB heap slab: upper 12 bits
        // match, so every swept compare width must accept.
        const Addr ptr =
            (heap_base + static_cast<Addr>(rng.below(1 << 20))) & ~3u;
        const Addr ea =
            heap_base + (static_cast<Addr>(rng.below(1 << 20)) & ~3u);
        EXPECT_EQ(vam.classify(ptr, ea), VamVerdict::Candidate)
            << std::hex << ptr << " vs " << ea;
    }
}

TEST_P(VamCompareFilter, SmallIntegersNeverMatch)
{
    const auto [cb, fb] = GetParam();
    Vam vam(VamConfig{cb, fb, 1, 2});
    Rng rng(18);
    for (int i = 0; i < 500; ++i) {
        // Values below 2^16 with a low-region trigger: the filter
        // bits (at [31-cb-fb, 31-cb]) are zero for every swept
        // config, so these must be rejected.
        const auto v =
            static_cast<std::uint32_t>(rng.below(1 << 16)) & ~1u;
        EXPECT_NE(vam.classify(v, 0x00001000), VamVerdict::Candidate);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fig7Configs, VamCompareFilter,
    ::testing::Values(std::make_pair(8u, 0u), std::make_pair(8u, 2u),
                      std::make_pair(8u, 4u), std::make_pair(8u, 6u),
                      std::make_pair(8u, 8u), std::make_pair(9u, 0u),
                      std::make_pair(9u, 3u), std::make_pair(9u, 5u),
                      std::make_pair(10u, 0u), std::make_pair(10u, 4u),
                      std::make_pair(11u, 1u), std::make_pair(11u, 5u),
                      std::make_pair(12u, 0u), std::make_pair(12u, 4u)));

TEST(VamProperty, FalsePositiveRateShrinksWithCompareBits)
{
    Rng rng(29);
    std::vector<std::uint32_t> words(20000);
    for (auto &w : words)
        w = rng.next32();

    double prev_rate = 1.0;
    for (unsigned cb : {8u, 10u, 12u, 14u}) {
        Vam vam(VamConfig{cb, 4, 1, 2});
        unsigned fp = 0;
        for (auto w : words)
            fp += vam.isCandidate(w, 0x10000008) ? 1 : 0;
        const double rate = static_cast<double>(fp) / words.size();
        EXPECT_LE(rate, prev_rate + 1e-4);
        prev_rate = rate;
    }
    // At 14 compare bits the random match rate is ~2^-15.
    EXPECT_LT(prev_rate, 0.01);
}

TEST(VamProperty, FilterBitsTradeAccuracyForCoverageInLowRegion)
{
    // With a low-region trigger, growing the filter width accepts
    // strictly more values (relaxed requirement), never fewer.
    Rng rng(31);
    std::vector<std::uint32_t> words(20000);
    for (auto &w : words)
        w = rng.next32() >> 9; // low-region values (< 2^23)

    unsigned prev_accepted = 0;
    for (unsigned fb : {0u, 2u, 4u, 6u, 8u}) {
        Vam vam(VamConfig{8, fb, 1, 2});
        unsigned accepted = 0;
        for (auto w : words)
            accepted += vam.isCandidate(w & ~1u, 0x00001000) ? 1 : 0;
        EXPECT_GE(accepted, prev_accepted) << "filter bits " << fb;
        prev_accepted = accepted;
    }
}

TEST(VamProperty, ClassifyAgreesWithScanLine)
{
    // scanLine must report exactly the words classify() accepts at
    // each scan-step offset.
    Vam vam(VamConfig{8, 4, 1, 2});
    Rng rng(37);
    for (int t = 0; t < 200; ++t) {
        std::uint8_t line[lineBytes];
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.next32());
        const Addr ea = 0x10000000 + (rng.next32() & 0xffff);
        std::vector<Addr> expect;
        for (unsigned off = 0; off + 4 <= lineBytes; off += 2) {
            std::uint32_t w;
            std::memcpy(&w, line + off, 4);
            if (vam.isCandidate(w, ea))
                expect.push_back(w);
        }
        EXPECT_EQ(vam.scanLine(line, ea), expect);
    }
}
