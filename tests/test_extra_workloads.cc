/** @file
 * Tests for the graph and B-tree builders/generators and the extra
 * ("xgraph"/"xbtree") workloads.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.hh"
#include "workloads/builders.hh"
#include "workloads/generators.hh"
#include "workloads/suite.hh"

using namespace cdp;

namespace
{

struct ExtraFixture : ::testing::Test
{
    BackingStore store;
    FrameAllocator frames{0, 32768, true, 31};
    PageTable pt{store, frames};
    HeapAllocator heap{store, pt, frames};
    Rng rng{13};
};

} // namespace

// ------------------------------------------------------------- graph

TEST_F(ExtraFixture, GraphNodesHaveValidAdjacency)
{
    BuiltGraph g = buildGraph(heap, 200, 32, 6, rng);
    ASSERT_EQ(g.nodes.size(), 200u);
    std::set<Addr> node_set(g.nodes.begin(), g.nodes.end());
    for (Addr n : g.nodes) {
        const std::uint32_t degree =
            heap.read32(n + BuiltGraph::degreeOffset);
        const Addr adj = heap.read32(n + BuiltGraph::adjPtrOffset);
        ASSERT_GE(degree, 1u);
        ASSERT_LE(degree, 6u);
        for (std::uint32_t e = 0; e < degree; ++e) {
            const Addr target = heap.read32(adj + 4 * e);
            EXPECT_TRUE(node_set.count(target))
                << "edge to non-node " << std::hex << target;
        }
    }
}

TEST_F(ExtraFixture, GraphRejectsBadArguments)
{
    EXPECT_THROW(buildGraph(heap, 0, 32, 6, rng),
                 std::invalid_argument);
    EXPECT_THROW(buildGraph(heap, 10, 4, 6, rng),
                 std::invalid_argument);
    EXPECT_THROW(buildGraph(heap, 10, 32, 0, rng),
                 std::invalid_argument);
}

TEST_F(ExtraFixture, GraphWalkFollowsRealEdges)
{
    BuiltGraph g = buildGraph(heap, 100, 32, 4, rng);
    std::set<Addr> node_set(g.nodes.begin(), g.nodes.end());
    WalkOptions w;
    GraphWalkGen gen(heap, std::move(g), 0x7000, 4, w, 3);
    unsigned hops = 0;
    for (int i = 0; i < 400; ++i) {
        const Uop u = gen.next();
        if (u.type == UopType::Load && u.pointerLoad &&
            u.vaddr % 32 == BuiltGraph::adjPtrOffset % 32) {
            // header adjacency-pointer load: must target a node+4
        }
        if (u.type == UopType::Load)
            ++hops;
    }
    EXPECT_GT(hops, 100u);
}

TEST_F(ExtraFixture, GraphWalkEmitsTwoPointerLoadsPerHop)
{
    BuiltGraph g = buildGraph(heap, 50, 32, 4, rng);
    WalkOptions w;
    w.aluPerNode = 0;
    GraphWalkGen gen(heap, std::move(g), 0x7000, 4, w, 3);
    // With aluPerNode 0 a block is exactly 4 uops: degree load,
    // adjacency-pointer load, edge-select branch, hop load. Consume
    // whole blocks so the tallies line up exactly.
    unsigned ptr_loads = 0, branches = 0;
    for (int i = 0; i < 40 * 4; ++i) {
        const Uop u = gen.next();
        ptr_loads += (u.type == UopType::Load && u.pointerLoad) ? 1 : 0;
        branches += u.type == UopType::Branch ? 1 : 0;
    }
    // Per hop: adjacency-pointer load + edge-entry load, 1 branch.
    EXPECT_EQ(ptr_loads, 2 * branches);
    EXPECT_EQ(branches, 40u);
}

// ------------------------------------------------------------- btree

TEST_F(ExtraFixture, BTreeHasSaneShape)
{
    BuiltBTree t = buildBTree(heap, 64, 8, rng);
    EXPECT_GT(t.height, 1u);
    EXPECT_NE(t.root, 0u);
    // 64 leaves at fanout 8: 64 + 8 + 1 nodes.
    EXPECT_EQ(t.nodes.size(), 73u);
}

TEST_F(ExtraFixture, BTreeDescentReachesALeafForAnyKey)
{
    BuiltBTree t = buildBTree(heap, 32, 4, rng);
    Rng keys(9);
    for (int trial = 0; trial < 100; ++trial) {
        const std::uint32_t target = keys.next32() >> 1;
        Addr cur = t.root;
        for (std::uint32_t level = 0; level + 1 < t.height; ++level) {
            const std::uint32_t count = heap.read32(cur);
            ASSERT_GE(count, 1u);
            ASSERT_LE(count, 4u);
            std::uint32_t child = 0;
            for (std::uint32_t i = 0; i + 1 < count; ++i) {
                if (target >= heap.read32(cur + t.keyOffset(i)))
                    child = i + 1;
            }
            cur = heap.read32(cur + t.childOffset(child));
            ASSERT_NE(cur, 0u);
        }
    }
}

TEST_F(ExtraFixture, BTreeSeparatorsOrderTheDescent)
{
    // Search for a key known to be in leaf k must reach a leaf whose
    // key range brackets it: verify keys are sorted level-wise.
    BuiltBTree t = buildBTree(heap, 16, 4, rng);
    const std::uint32_t count = heap.read32(t.root);
    std::uint32_t prev = 0;
    for (std::uint32_t i = 0; i + 1 < count; ++i) {
        const std::uint32_t k = heap.read32(t.root + t.keyOffset(i));
        EXPECT_GE(k, prev);
        prev = k;
    }
}

TEST_F(ExtraFixture, BTreeRejectsBadArguments)
{
    EXPECT_THROW(buildBTree(heap, 0, 8, rng), std::invalid_argument);
    EXPECT_THROW(buildBTree(heap, 8, 1, rng), std::invalid_argument);
    EXPECT_THROW(buildBTree(heap, 8, 99, rng), std::invalid_argument);
}

TEST_F(ExtraFixture, BTreeSearchGenDescendsHeightLevels)
{
    BuiltBTree t = buildBTree(heap, 64, 8, rng);
    const std::uint32_t height = t.height;
    WalkOptions w;
    w.aluPerNode = 0;
    BTreeSearchGen gen(heap, std::move(t), 0x7800, 8, w, 3);
    // One search block ends with an unconditional branch; count the
    // pointer loads before it.
    unsigned ptr_loads = 0;
    for (;;) {
        const Uop u = gen.next();
        if (u.type == UopType::Load && u.pointerLoad)
            ++ptr_loads;
        if (u.type == UopType::Branch && u.taken && u.pc == 0x7880)
            break;
    }
    EXPECT_EQ(ptr_loads, height - 1);
}

// ----------------------------------------------------- extra suite

TEST(ExtraWorkloads, RegistryContainsBoth)
{
    ASSERT_EQ(extraWorkloads().size(), 2u);
    EXPECT_NO_THROW(findBenchmark("xgraph"));
    EXPECT_NO_THROW(findBenchmark("xbtree"));
}

TEST(ExtraWorkloads, RunEndToEnd)
{
    for (const char *name : {"xgraph", "xbtree"}) {
        SimConfig c;
        c.workload = name;
        c.warmupUops = 20'000;
        c.measureUops = 50'000;
        Simulator sim(c);
        const RunResult r = sim.run();
        EXPECT_GT(r.ipc, 0.0) << name;
        EXPECT_GT(r.mem.demandLoads, 1000u) << name;
    }
}

TEST(ExtraWorkloads, CdpCoversGraphChasing)
{
    SimConfig off;
    off.workload = "xgraph";
    off.warmupUops = 100'000;
    off.measureUops = 200'000;
    off.cdp.enabled = false;
    SimConfig on = off;
    on.cdp.enabled = true;
    Simulator so(off), sn(on);
    const RunResult ro = so.run();
    const RunResult rn = sn.run();
    EXPECT_GT(rn.speedupOver(ro), 1.05);
    EXPECT_LT(rn.mem.l2DemandMisses, ro.mem.l2DemandMisses);
}
