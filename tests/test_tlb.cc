/** @file Unit tests for the set-associative TLB. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "vm/tlb.hh"

using namespace cdp;

TEST(Tlb, MissOnEmpty)
{
    Tlb tlb(64, 4);
    EXPECT_FALSE(tlb.lookup(0x10000000).has_value());
    EXPECT_EQ(tlb.missCount(), 1u);
    EXPECT_EQ(tlb.hitCount(), 0u);
}

TEST(Tlb, InsertThenHit)
{
    Tlb tlb(64, 4);
    tlb.insert(0x10000000, 0x00400000);
    const auto f = tlb.lookup(0x10000abc);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(*f, 0x00400000u);
    EXPECT_EQ(tlb.hitCount(), 1u);
}

TEST(Tlb, ReturnsFrameBaseNotFullAddress)
{
    Tlb tlb(64, 4);
    tlb.insert(0x10000abc, 0x00400def); // sloppy caller
    EXPECT_EQ(*tlb.lookup(0x10000000), 0x00400000u);
}

TEST(Tlb, DifferentPagesDifferentEntries)
{
    Tlb tlb(64, 4);
    tlb.insert(0x10000000, 0x00400000);
    tlb.insert(0x10001000, 0x00500000);
    EXPECT_EQ(*tlb.lookup(0x10000000), 0x00400000u);
    EXPECT_EQ(*tlb.lookup(0x10001000), 0x00500000u);
}

TEST(Tlb, ProbeDoesNotCountStats)
{
    Tlb tlb(64, 4);
    tlb.insert(0x10000000, 0x00400000);
    (void)tlb.probe(0x10000000);
    (void)tlb.probe(0x99999000);
    EXPECT_EQ(tlb.hitCount(), 0u);
    EXPECT_EQ(tlb.missCount(), 0u);
}

TEST(Tlb, ReinsertSamePageUpdates)
{
    Tlb tlb(64, 4);
    tlb.insert(0x10000000, 0x00400000);
    tlb.insert(0x10000000, 0x00800000);
    EXPECT_EQ(*tlb.lookup(0x10000000), 0x00800000u);
}

TEST(Tlb, FlushDropsEverything)
{
    Tlb tlb(64, 4);
    tlb.insert(0x10000000, 0x00400000);
    tlb.flush();
    EXPECT_FALSE(tlb.lookup(0x10000000).has_value());
}

TEST(Tlb, LruEvictionWithinSet)
{
    // 8 entries, 4-way -> 2 sets. VPNs with the same parity map to
    // the same set. Fill one set, touch the oldest, insert another:
    // the untouched middle entry must be the victim.
    Tlb tlb(8, 4);
    const Addr base = 0x10000000;
    // VPN of base is 0x10000, even -> set 0; step 2 pages stays even.
    for (unsigned i = 0; i < 4; ++i)
        tlb.insert(base + i * 2 * pageBytes, 0x1000 * (i + 1) << 12);
    ASSERT_TRUE(tlb.lookup(base).has_value()); // refresh entry 0
    tlb.insert(base + 8 * 2 * pageBytes, 0x99000000);
    EXPECT_TRUE(tlb.lookup(base).has_value());         // kept (MRU)
    EXPECT_FALSE(tlb.lookup(base + 2 * pageBytes).has_value()); // LRU gone
}

TEST(Tlb, GeometryValidation)
{
    EXPECT_THROW(Tlb(0, 0), std::invalid_argument);
    EXPECT_THROW(Tlb(65, 4), std::invalid_argument);
    EXPECT_THROW(Tlb(12, 4), std::invalid_argument); // 3 sets: not pow2
}

TEST(Tlb, AccessorsReportGeometry)
{
    Tlb tlb(128, 4);
    EXPECT_EQ(tlb.numEntries(), 128u);
    EXPECT_EQ(tlb.numWays(), 4u);
}

/** Property: with capacity N, N distinct recent pages all hit. */
class TlbCapacity
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(TlbCapacity, RecentWorkingSetFits)
{
    const auto [entries, ways] = GetParam();
    Tlb tlb(entries, ways);
    // Insert exactly one page per set per way: guaranteed to fit.
    const unsigned sets = entries / ways;
    for (unsigned w = 0; w < ways; ++w) {
        for (unsigned s = 0; s < sets; ++s) {
            const Addr va = (w * sets + s) * pageBytes * 1u +
                            (s * pageBytes);
            // Construct VPN = s + w*sets*? -- simpler: vpn = s + w*sets
            const Addr vpn = s + w * sets;
            tlb.insert(vpn << pageShift, vpn << pageShift);
            (void)va;
        }
    }
    for (unsigned w = 0; w < ways; ++w) {
        for (unsigned s = 0; s < sets; ++s) {
            const Addr vpn = s + w * sets;
            EXPECT_TRUE(tlb.probe(vpn << pageShift).has_value())
                << "vpn " << vpn;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbCapacity,
    ::testing::Values(std::make_pair(64u, 4u), std::make_pair(128u, 4u),
                      std::make_pair(256u, 4u), std::make_pair(512u, 4u),
                      std::make_pair(1024u, 4u),
                      std::make_pair(64u, 64u), std::make_pair(16u, 2u)));
