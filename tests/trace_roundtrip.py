#!/usr/bin/env python3
"""End-to-end trace round-trip test.

Captures a binary lifecycle trace with cdpsim, converts it with
cdptrace, and validates the result:

  1. `cdptrace chrome` output parses as JSON and is a well-formed
     Chrome trace_event stream: timestamps sorted, every "E" closes a
     matching "B" on the same (pid, tid) track, nothing left open.
  2. `cdpsim --trace-json` (direct emission) produces byte-identical
     JSON to the cdptrace conversion of the binary trace from a
     separate run of the same configuration — the trace pipeline is
     deterministic end to end.
  3. `cdptrace summary` succeeds and reports the event population.
  4. `cdptrace diff` of a trace against itself reports a match.

Usage: trace_roundtrip.py <cdpsim> <cdptrace>

Set CDP_TRACE_TEST_DIR to keep the artifacts in a fixed directory
instead of a temp dir (useful for uploading from CI).
"""

import json
import os
import subprocess
import sys
import tempfile

CONFIG = [
    "workload=xbtree",
    "warmup_uops=4000",
    "measure_uops=16000",
    "trace.buffer=1048576",
]


def run(argv, **kw):
    env = dict(os.environ)
    env.pop("CDP_SCALE", None)  # keep run lengths fixed
    res = subprocess.run(argv, capture_output=True, text=True, env=env,
                         **kw)
    if res.returncode != 0:
        sys.exit("FAIL: %s exited %d\nstderr:\n%s"
                 % (" ".join(argv), res.returncode, res.stderr))
    return res


def check(cond, msg):
    if not cond:
        sys.exit("FAIL: " + msg)


def validate_chrome_json(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    check(len(events) > 0, "empty traceEvents")
    check(doc["otherData"]["dropped"] == 0,
          "ring overwrote events; buffer too small for this run")

    last_ts = -1
    open_spans = {}  # (pid, tid) -> name of the open "B"
    for ev in events:
        for key in ("name", "ph", "ts", "pid", "tid"):
            check(key in ev, "event missing %r: %r" % (key, ev))
        check(ev["ts"] >= last_ts, "timestamps not sorted")
        last_ts = ev["ts"]
        track = (ev["pid"], ev["tid"])
        if ev["ph"] == "B":
            check(track not in open_spans,
                  "nested B on track %r" % (track,))
            open_spans[track] = ev["name"]
        elif ev["ph"] == "E":
            check(track in open_spans,
                  "E without open B on track %r" % (track,))
            del open_spans[track]
        else:
            check(ev["ph"] == "i", "unexpected phase %r" % ev["ph"])
            check(ev.get("s") == "t", "instant without thread scope")
    check(not open_spans,
          "unclosed B spans after drain: %r" % open_spans)
    return len(events)


def main():
    if len(sys.argv) != 3:
        sys.exit("usage: trace_roundtrip.py <cdpsim> <cdptrace>")
    cdpsim, cdptrace = sys.argv[1], sys.argv[2]

    keep = os.environ.get("CDP_TRACE_TEST_DIR")
    if keep:
        os.makedirs(keep, exist_ok=True)
        workdir = keep
    else:
        tmp = tempfile.TemporaryDirectory(prefix="cdp-trace-")
        workdir = tmp.name

    binpath = os.path.join(workdir, "roundtrip.cdpo")
    converted = os.path.join(workdir, "converted.json")
    direct = os.path.join(workdir, "direct.json")

    # Capture the binary trace, then convert it offline.
    run([cdpsim] + CONFIG + ["--trace-out=" + binpath])
    run([cdptrace, "chrome", binpath, converted])
    n = validate_chrome_json(converted)

    # A second identical run emitting JSON directly must match the
    # offline conversion byte for byte.
    run([cdpsim] + CONFIG + ["--trace-json=" + direct])
    with open(converted, "rb") as a, open(direct, "rb") as b:
        check(a.read() == b.read(),
              "direct --trace-json differs from cdptrace conversion")

    summary = run([cdptrace, "summary", binpath])
    check("events" in summary.stdout, "summary missing population")
    check("chains" in summary.stdout, "summary missing chain rollup")

    diff = run([cdptrace, "diff", binpath, binpath])
    check("traces match" in diff.stdout,
          "self-diff did not report a match")

    print("OK: %d events round-tripped; summary and self-diff pass"
          % n)


if __name__ == "__main__":
    main()
