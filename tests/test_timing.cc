/** @file
 * Directed timing tests: bus priority between demands and
 * prefetches, retroactive drain of the prefetch queue across core
 * stalls, rescan port contention, and end-of-run draining.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/memory_system.hh"
#include "workloads/heap_allocator.hh"

using namespace cdp;

namespace
{

struct TimingFixture : ::testing::Test
{
    SimConfig cfg;
    StatGroup stats;
    BackingStore store;
    FrameAllocator frames{0, 8192, true, 77};
    PageTable pt{store, frames};
    HeapAllocator heap{store, pt, frames};
    std::unique_ptr<MemorySystem> mem;

    void
    build()
    {
        mem = std::make_unique<MemorySystem>(cfg, store, pt, &stats);
    }

    std::vector<Addr>
    buildChain(unsigned n)
    {
        std::vector<Addr> nodes;
        for (unsigned i = 0; i < n; ++i)
            nodes.push_back(heap.alloc(lineBytes, lineBytes));
        for (unsigned i = 0; i + 1 < n; ++i)
            heap.write32(nodes[i] + 8, nodes[i + 1]);
        heap.write32(nodes[n - 1] + 8, 0);
        return nodes;
    }

    void
    pump(Cycle from, Cycle span, Cycle step = 100)
    {
        for (Cycle t = from; t <= from + span; t += step)
            mem->advance(t);
    }
};

} // namespace

TEST_F(TimingFixture, PrefetchNeverDelaysALaterDemandMuchBeyondOneTransfer)
{
    // Queue a chain that produces prefetches, then issue a demand to
    // an unrelated line: its completion must not be pushed out by
    // more than one in-progress transfer (strict priority means
    // queued prefetches cannot reserve the bus ahead of it).
    cfg.cdp.nextLines = 4;
    build();
    const auto nodes = buildChain(6);
    const Addr unrelated = heap.alloc(lineBytes, lineBytes);

    // Warm the page tables so walk time doesn't blur the bound.
    Cycle t = mem->load(0x400, unrelated, 0, false);
    pump(t, 50000);
    t += 50000;
    // Kick the chain (enqueues several prefetches)...
    const Cycle c1 = mem->load(0x404, nodes[0] + 8, t, true);
    // ...and immediately demand another line.
    const Addr unrelated2 = heap.alloc(lineBytes, lineBytes);
    heap.ensureMapped(unrelated2, lineBytes);
    const Cycle c2 = mem->load(0x408, unrelated2, t + 1, false);
    // A clean miss takes walk + bus latency; allow one extra bus
    // occupancy for an in-progress prefetch transfer, plus walk
    // traffic of this access itself.
    EXPECT_LE(c2, t + 1 + 3 * cfg.mem.busLatency +
                      2 * cfg.mem.busOccupancy);
    (void)c1;
}

TEST_F(TimingFixture, RetroactiveDrainIssuesDuringCoreStalls)
{
    // Enqueue chain prefetches at time T, then jump far ahead as a
    // stalled core would: the prefetches must have been issued *and
    // completed* inside the skipped window.
    cfg.cdp.nextLines = 0;
    build();
    const auto nodes = buildChain(4);
    const Cycle t = mem->load(0x400, nodes[0] + 8, 0, true);
    // One giant skip: fills, scans, chained issues, and their fills
    // all lie inside the window.
    mem->advance(t + 50'000);
    mem->advance(t + 100'000);
    mem->advance(t + 150'000);
    EXPECT_GE(mem->counters().cdpIssued, 2u);
    const auto pa1 = pt.translate(nodes[1]);
    EXPECT_NE(mem->l2().probe(*pa1), nullptr);
}

TEST_F(TimingFixture, DrainAllLeavesNothingInFlight)
{
    cfg.cdp.nextLines = 2;
    build();
    const auto nodes = buildChain(8);
    const Cycle t = mem->load(0x400, nodes[0] + 8, 0, true);
    mem->drainAll(t);
    // After drainAll, another demand to the chained node must be a
    // clean hit or miss -- no stale in-flight state. Just verify the
    // next access completes sanely.
    const Cycle done =
        mem->load(0x404, nodes[1] + 8, t + 1'000'000, true);
    EXPECT_GT(done, t + 1'000'000);
    EXPECT_LT(done, t + 1'000'000 + 3 * cfg.mem.busLatency);
}

TEST_F(TimingFixture, RescansConsumeDrainSlots)
{
    // With reinforcement on and a deep resident chain, rescans add
    // port debt; the system must still make forward progress and the
    // rescan count must be visible.
    cfg.cdp.nextLines = 0;
    cfg.cdp.reinforce = true;
    build();
    const auto nodes = buildChain(16);
    Cycle t = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(t, 100000);
    for (unsigned i = 1; i < 8; ++i) {
        t += 100000;
        t = mem->load(0x400, nodes[i] + 8, t, true);
        pump(t, 100000);
    }
    EXPECT_GT(mem->counters().rescans, 0u);
    // The chain stayed ahead: most of those accesses were masked.
    const auto &c = mem->counters();
    EXPECT_GE(c.maskFullCdp + c.maskPartialCdp, 4u);
}

TEST_F(TimingFixture, ArbiterRequeueFrontPreservesOrder)
{
    QueuedArbiter a(8);
    MemRequest r1{}, r2{};
    r1.type = ReqType::ContentPrefetch;
    r1.lineVa = 0x1000;
    r2.type = ReqType::ContentPrefetch;
    r2.lineVa = 0x2000;
    a.enqueue(r1);
    a.enqueue(r2);
    auto got = a.dequeue();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->lineVa, 0x1000u);
    a.requeueFront(*got);
    // Front position restored: the same request comes out first.
    EXPECT_EQ(a.dequeue()->lineVa, 0x1000u);
    EXPECT_EQ(a.dequeue()->lineVa, 0x2000u);
}

TEST_F(TimingFixture, NonMonotonicAdvanceIsSafe)
{
    // The core issues loads at register-ready times that are not
    // monotonic; advance() must tolerate going "backwards".
    build();
    const Addr a1 = heap.alloc(lineBytes, lineBytes);
    const Addr a2 = heap.alloc(lineBytes, lineBytes);
    const Cycle c1 = mem->load(0x400, a1, 1000, false);
    const Cycle c2 = mem->load(0x404, a2, 500, false); // earlier now
    EXPECT_GT(c1, 1000u);
    EXPECT_GT(c2, 500u);
    mem->advance(400); // strictly before both
    mem->advance(c1 + c2); // far after
    EXPECT_GE(mem->counters().l2DemandMisses, 2u);
}

TEST_F(TimingFixture, BackToBackMissesRespectBusBandwidth)
{
    cfg.cdp.enabled = false;
    cfg.stride.enabled = false;
    build();
    // N independent demand misses issued at the same instant must
    // serialize at one bus occupancy apart.
    std::vector<Addr> lines;
    for (int i = 0; i < 8; ++i)
        lines.push_back(heap.alloc(lineBytes, lineBytes));
    // Warm translations.
    for (Addr a : lines) {
        const Cycle t = mem->load(0x500, a, 0, false);
        pump(t, 2000);
    }
    // Evict by running far forward and reloading through a cold L2?
    // Simpler: flush both cache levels via new lines mapping to all
    // sets is overkill -- instead check the *first* fill train.
    MemorySystem fresh(cfg, store, pt, &stats);
    std::vector<Cycle> done;
    for (Addr a : lines)
        done.push_back(fresh.load(0x600, a, 100, false));
    for (std::size_t i = 1; i < done.size(); ++i) {
        EXPECT_GE(done[i], done[i - 1] + cfg.mem.busOccupancy)
            << "transfer " << i;
    }
}

TEST_F(TimingFixture, LoadLatencyHistogramPopulated)
{
    cfg.cdp.enabled = false;
    build();
    const Addr va = heap.alloc(64, 64);
    Cycle t = mem->load(0x400, va, 0, false);
    pump(t, 2000);
    mem->load(0x400, va, t + 2000, false); // L1 hit
    const auto *d = stats.findScalar("x"); // no such scalar
    EXPECT_EQ(d, nullptr);
    // The histogram is registered on the group and has samples; find
    // it by dumping (count appears in the text).
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("mem.load_latency"), std::string::npos);
    EXPECT_NE(os.str().find("mem.prefetch_lead"), std::string::npos);
}

TEST_F(TimingFixture, PrefetchLeadSampledOnFullMask)
{
    cfg.cdp.nextLines = 0;
    build();
    const auto nodes = buildChain(4);
    Cycle now = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(now, 100000);
    now = mem->load(0x404, nodes[1] + 8, now + 100000, true);
    std::ostringstream os;
    stats.dump(os);
    const std::string out = os.str();
    const auto pos = out.find("mem.prefetch_lead count=");
    ASSERT_NE(pos, std::string::npos);
    // At least one lead sample was recorded for the full mask.
    EXPECT_EQ(out.substr(pos + 24, 1) == "0", false);
}
