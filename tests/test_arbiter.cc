/** @file Unit tests for the strict-priority queued arbiter. */

#include <gtest/gtest.h>

#include "memsys/queued_arbiter.hh"

using namespace cdp;

namespace
{

MemRequest
req(ReqType type, Addr line_va, unsigned depth = 0)
{
    MemRequest r;
    r.type = type;
    r.vaddr = line_va;
    r.lineVa = lineAlign(line_va);
    r.depth = depth;
    return r;
}

} // namespace

TEST(Arbiter, EmptyDequeueReturnsNothing)
{
    QueuedArbiter a(4);
    EXPECT_FALSE(a.dequeue().has_value());
    EXPECT_TRUE(a.empty());
}

TEST(Arbiter, FifoWithinClass)
{
    QueuedArbiter a(4);
    a.enqueue(req(ReqType::ContentPrefetch, 0x1000));
    a.enqueue(req(ReqType::ContentPrefetch, 0x2000));
    EXPECT_EQ(a.dequeue()->lineVa, 0x1000u);
    EXPECT_EQ(a.dequeue()->lineVa, 0x2000u);
}

TEST(Arbiter, StrictPriorityOrdering)
{
    QueuedArbiter a(8);
    a.enqueue(req(ReqType::ContentPrefetch, 0x1000));
    a.enqueue(req(ReqType::StridePrefetch, 0x2000));
    a.enqueue(req(ReqType::DemandLoad, 0x3000));
    a.enqueue(req(ReqType::ContentPrefetch, 0x4000));
    EXPECT_EQ(a.dequeue()->lineVa, 0x3000u); // demand first
    EXPECT_EQ(a.dequeue()->lineVa, 0x2000u); // then stride
    EXPECT_EQ(a.dequeue()->lineVa, 0x1000u); // then content, FIFO
    EXPECT_EQ(a.dequeue()->lineVa, 0x4000u);
}

TEST(Arbiter, PageWalkIsDemandClass)
{
    QueuedArbiter a(4);
    a.enqueue(req(ReqType::StridePrefetch, 0x1000));
    a.enqueue(req(ReqType::PageWalk, 0x2000));
    EXPECT_EQ(a.dequeue()->lineVa, 0x2000u);
}

TEST(Arbiter, FullArbiterSquashesPrefetch)
{
    QueuedArbiter a(2);
    EXPECT_EQ(a.enqueue(req(ReqType::ContentPrefetch, 0x1000)),
              EnqueueResult::Accepted);
    EXPECT_EQ(a.enqueue(req(ReqType::ContentPrefetch, 0x2000)),
              EnqueueResult::Accepted);
    EXPECT_EQ(a.enqueue(req(ReqType::ContentPrefetch, 0x3000)),
              EnqueueResult::Rejected);
    EXPECT_EQ(a.rejectedCount(), 1u);
    EXPECT_EQ(a.size(), 2u);
}

TEST(Arbiter, DemandDisplacesLowestPriorityPrefetch)
{
    QueuedArbiter a(2);
    a.enqueue(req(ReqType::StridePrefetch, 0x1000));
    a.enqueue(req(ReqType::ContentPrefetch, 0x2000));
    EXPECT_EQ(a.enqueue(req(ReqType::DemandLoad, 0x3000)),
              EnqueueResult::AcceptedDisplaced);
    EXPECT_EQ(a.displacedCount(), 1u);
    // The content prefetch was the sacrifice.
    EXPECT_EQ(a.dequeue()->lineVa, 0x3000u);
    EXPECT_EQ(a.dequeue()->lineVa, 0x1000u);
    EXPECT_FALSE(a.dequeue().has_value());
}

TEST(Arbiter, NewestContentPrefetchIsSacrificed)
{
    QueuedArbiter a(2);
    a.enqueue(req(ReqType::ContentPrefetch, 0x1000, 1));
    a.enqueue(req(ReqType::ContentPrefetch, 0x2000, 3));
    a.enqueue(req(ReqType::DemandLoad, 0x3000));
    // The most recently queued (deepest, most speculative) content
    // prefetch is dropped.
    EXPECT_EQ(a.dequeue()->lineVa, 0x3000u);
    EXPECT_EQ(a.dequeue()->lineVa, 0x1000u);
}

TEST(Arbiter, DemandRejectedWhenFullOfDemands)
{
    QueuedArbiter a(2);
    a.enqueue(req(ReqType::DemandLoad, 0x1000));
    a.enqueue(req(ReqType::DemandLoad, 0x2000));
    EXPECT_EQ(a.enqueue(req(ReqType::DemandLoad, 0x3000)),
              EnqueueResult::Rejected);
}

TEST(Arbiter, ContainsMatchesByVirtualLine)
{
    QueuedArbiter a(4);
    a.enqueue(req(ReqType::ContentPrefetch, 0x1010));
    EXPECT_TRUE(a.contains(0x1000));
    EXPECT_TRUE(a.contains(0x103f));
    EXPECT_FALSE(a.contains(0x1040));
}

TEST(Arbiter, ExtractPrefetchRemovesAndReturns)
{
    QueuedArbiter a(4);
    a.enqueue(req(ReqType::StridePrefetch, 0x1000));
    a.enqueue(req(ReqType::ContentPrefetch, 0x2000));
    const auto got = a.extractPrefetch(0x2000);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, ReqType::ContentPrefetch);
    EXPECT_FALSE(a.contains(0x2000));
    EXPECT_EQ(a.size(), 1u);
}

TEST(Arbiter, ExtractPrefetchIgnoresDemands)
{
    QueuedArbiter a(4);
    a.enqueue(req(ReqType::DemandLoad, 0x1000));
    EXPECT_FALSE(a.extractPrefetch(0x1000).has_value());
    EXPECT_EQ(a.size(), 1u);
}

TEST(Arbiter, SizeOfClassReporting)
{
    QueuedArbiter a(8);
    a.enqueue(req(ReqType::DemandLoad, 0x1000));
    a.enqueue(req(ReqType::StridePrefetch, 0x2000));
    a.enqueue(req(ReqType::ContentPrefetch, 0x3000));
    a.enqueue(req(ReqType::ContentPrefetch, 0x4000));
    EXPECT_EQ(a.sizeOfClass(0), 1u);
    EXPECT_EQ(a.sizeOfClass(1), 1u);
    EXPECT_EQ(a.sizeOfClass(2), 2u);
}

/** Property: under a random request storm, the arbiter never exceeds
 *  capacity and dequeues strictly by priority. */
TEST(ArbiterProperty, RandomStormInvariant)
{
    QueuedArbiter a(16);
    const ReqType types[] = {ReqType::DemandLoad,
                             ReqType::StridePrefetch,
                             ReqType::ContentPrefetch};
    unsigned seed = 12345;
    auto rnd = [&seed] {
        seed = seed * 1664525u + 1013904223u;
        return seed >> 16;
    };
    for (int i = 0; i < 3000; ++i) {
        if (rnd() % 3 != 0) {
            a.enqueue(req(types[rnd() % 3], (rnd() % 1024) * 64));
            EXPECT_LE(a.size(), 16u);
        } else {
            unsigned last_prio = 0;
            const auto got = a.dequeue();
            if (got) {
                EXPECT_GE(got->priority(), last_prio);
                last_prio = got->priority();
            }
        }
    }
}
