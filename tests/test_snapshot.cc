/** @file
 * Checkpoint/restore round trips (DESIGN.md §11).
 *
 * The headline property is differential equivalence: running
 * A (warm-up) → quiesce → B (measure) straight through must be
 * byte-identical — counters, cycles, and full stats dump — to running
 * A, checkpointing, restoring into a fresh machine, and running B
 * there. The directed tests below pin that property on machines with
 * specific state populated (empty, warmed caches with depth tags, a
 * trained Markov STAB, an adaptive controller mid-epoch), and the
 * failure-path tests pin that damaged inputs die loudly with a
 * diagnostic instead of undefined behaviour.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/simulator.hh"
#include "snapshot/ckpt_io.hh"

using namespace cdp;

namespace
{

std::string
dumpStats(Simulator &sim)
{
    std::ostringstream os;
    sim.stats().dump(os);
    return os.str();
}

/** Warm → quiesce → checkpoint; returns the serialized bytes. */
std::string
checkpointAfterWarmup(Simulator &sim, std::uint64_t warm_uops)
{
    sim.warmup(warm_uops);
    sim.quiesce();
    std::ostringstream os;
    sim.saveCheckpoint(os);
    return os.str();
}

/**
 * The differential harness: straight run vs checkpoint + restore into
 * a fresh machine must agree on everything observable.
 */
void
expectDifferentialEquivalence(const SimConfig &cfg,
                              std::uint64_t warm_uops,
                              std::uint64_t measure_uops)
{
    Simulator straight(cfg);
    const std::string bytes = checkpointAfterWarmup(straight, warm_uops);
    const std::string preDumpStraight = dumpStats(straight);

    Simulator forked(cfg);
    std::istringstream is(bytes);
    forked.restoreCheckpoint(is);

    // Restored machine is indistinguishable before measuring...
    EXPECT_EQ(preDumpStraight, dumpStats(forked));
    EXPECT_EQ(straight.core().currentCycle(),
              forked.core().currentCycle());

    // ...and stays indistinguishable through the measured phase.
    const RunResult rs = straight.measure(measure_uops);
    const RunResult rf = forked.measure(measure_uops);
    EXPECT_EQ(rs.cycles, rf.cycles);
    EXPECT_EQ(rs.uops, rf.uops);
    EXPECT_EQ(rs.mem.l2DemandMisses, rf.mem.l2DemandMisses);
    EXPECT_EQ(rs.mem.cdpIssued, rf.mem.cdpIssued);
    EXPECT_EQ(rs.mem.cdpUseful, rf.mem.cdpUseful);
    EXPECT_EQ(rs.mem.rescans, rf.mem.rescans);
    EXPECT_EQ(rs.mem.promotions, rf.mem.promotions);
    EXPECT_EQ(dumpStats(straight), dumpStats(forked));
}

} // namespace

TEST(SnapshotRoundTrip, EmptyMachine)
{
    SimConfig c;
    c.workload = "specjbb-vsnet";
    expectDifferentialEquivalence(c, /*warm=*/0, /*measure=*/20'000);
}

TEST(SnapshotRoundTrip, WarmedCachesWithDepthTags)
{
    SimConfig c;
    c.workload = "specjbb-vsnet";
    c.cdp.depthThreshold = 4; // deeper chains -> richer depth tags
    c.cdp.reinforce = true;
    expectDifferentialEquivalence(c, /*warm=*/60'000,
                                  /*measure=*/40'000);
}

TEST(SnapshotRoundTrip, MarkovTablesPopulated)
{
    SimConfig c;
    c.workload = "tpcc-2";
    c.markov.enabled = true;
    c.markov.stabBytes = 0; // unbounded STAB: the key-sorted big table
    expectDifferentialEquivalence(c, /*warm=*/50'000,
                                  /*measure=*/30'000);

    SimConfig bounded = c;
    bounded.markov.stabBytes = 64 * 1024; // set-associative STAB
    expectDifferentialEquivalence(bounded, /*warm=*/50'000,
                                  /*measure=*/30'000);
}

TEST(SnapshotRoundTrip, AdaptiveControllerMidEpoch)
{
    SimConfig c;
    c.workload = "xbtree";
    c.adaptive.enabled = true;
    c.adaptive.epochPrefetches = 256; // several epochs during warm-up
    expectDifferentialEquivalence(c, /*warm=*/80'000,
                                  /*measure=*/40'000);
}

TEST(SnapshotRoundTrip, WarmForkAppliesSweepOverride)
{
    // One warm checkpoint forked into a different cdp configuration:
    // the sweep knobs must win over the checkpointed live config, and
    // two forks of the same checkpoint must agree with each other.
    SimConfig base;
    base.workload = "xgraph";
    base.cdp.depthThreshold = 3;

    Simulator warm(base);
    const std::string bytes = checkpointAfterWarmup(warm, 50'000);

    SimConfig swept = base;
    swept.cdp.depthThreshold = 5;
    swept.cdp.nextLines = 1;

    Simulator forkA(swept), forkB(swept);
    std::istringstream isA(bytes), isB(bytes);
    forkA.restoreCheckpoint(isA);
    forkB.restoreCheckpoint(isB);
    EXPECT_EQ(forkA.memory().contentPf().config().depthThreshold, 5u);
    EXPECT_EQ(forkA.memory().contentPf().config().nextLines, 1u);

    const RunResult ra = forkA.measure(40'000);
    const RunResult rb = forkB.measure(40'000);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.mem.cdpIssued, rb.mem.cdpIssued);
    EXPECT_EQ(dumpStats(forkA), dumpStats(forkB));

    // And the fork is exactly equivalent to a straight run that
    // switches the cdp configuration at the quiesce point — the
    // semantics a warm-fork sweep relies on (warm-up happened under
    // the base config on both legs; only the measured phase differs).
    Simulator straight(base);
    straight.warmup(50'000);
    straight.quiesce();
    straight.memory().reconfigureCdp(swept.cdp);
    const RunResult rc = straight.measure(40'000);
    EXPECT_EQ(ra.cycles, rc.cycles);
    EXPECT_EQ(dumpStats(forkA), dumpStats(straight));
}

TEST(SnapshotRoundTrip, RestoredMachineCanCheckpointAgain)
{
    // Chained checkpoints: warm → ckpt1 → run → ckpt2 on the straight
    // machine must equal ckpt1 → restore → run → ckpt2' bytes.
    SimConfig c;
    c.workload = "speech";
    Simulator straight(c);
    const std::string first = checkpointAfterWarmup(straight, 40'000);

    Simulator forked(c);
    std::istringstream is(first);
    forked.restoreCheckpoint(is);

    straight.warmup(20'000);
    straight.quiesce();
    forked.warmup(20'000);
    forked.quiesce();

    std::ostringstream a, b;
    straight.saveCheckpoint(a);
    forked.saveCheckpoint(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(SnapshotFailure, CheckpointRequiresQuiescedMachine)
{
    SimConfig c;
    c.workload = "specjbb-vsnet";
    Simulator sim(c);
    sim.warmup(5'000);
    // Put a fill in flight deliberately: a demand load to a mapped
    // line that cannot be in any cache yet.
    const Addr va = sim.heap().heapBase();
    sim.memory().load(/*pc=*/0x1000, va, sim.core().currentCycle(),
                      false);
    std::ostringstream os;
    EXPECT_THROW(sim.saveCheckpoint(os), snap::SnapshotError);
    try {
        sim.saveCheckpoint(os);
    } catch (const snap::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("quiesce"),
                  std::string::npos)
            << e.what();
    }
    // After a drain the same machine checkpoints fine.
    sim.quiesce();
    std::ostringstream ok;
    EXPECT_NO_THROW(sim.saveCheckpoint(ok));
}

class SnapshotCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SimConfig c;
        c.workload = "specjbb-vsnet";
        Simulator sim(c);
        bytes = checkpointAfterWarmup(sim, 20'000);
        ASSERT_GT(bytes.size(), 64u);
    }

    /** Restore @p data into a fresh default machine; return what() or
     *  empty when no exception fired. */
    std::string
    restoreError(const std::string &data)
    {
        SimConfig c;
        c.workload = "specjbb-vsnet";
        Simulator sim(c);
        std::istringstream is(data);
        try {
            sim.restoreCheckpoint(is);
        } catch (const snap::SnapshotError &e) {
            return e.what();
        }
        return "";
    }

    std::string bytes;
};

TEST_F(SnapshotCorruption, TruncatedHeaderFailsLoudly)
{
    const std::string err = restoreError(bytes.substr(0, 6));
    EXPECT_NE(err.find("truncated checkpoint"), std::string::npos)
        << err;
}

TEST_F(SnapshotCorruption, TruncatedSectionFailsLoudly)
{
    // Cut inside the first section's payload.
    const std::string err = restoreError(bytes.substr(0, 64));
    EXPECT_NE(err.find("truncated checkpoint"), std::string::npos)
        << err;
    EXPECT_NE(err.find("CFG!"), std::string::npos) << err;
}

TEST_F(SnapshotCorruption, TruncatedMidFileNamesTheSection)
{
    const std::string err =
        restoreError(bytes.substr(0, bytes.size() / 2));
    EXPECT_NE(err.find("truncated checkpoint"), std::string::npos)
        << err;
}

TEST_F(SnapshotCorruption, BitFlipFailsTheSectionChecksum)
{
    std::string damaged = bytes;
    damaged[40] = static_cast<char>(damaged[40] ^ 0x01);
    const std::string err = restoreError(damaged);
    EXPECT_NE(err.find("corrupted checkpoint"), std::string::npos)
        << err;
    EXPECT_NE(err.find("checksum"), std::string::npos) << err;
}

TEST_F(SnapshotCorruption, BadMagicIsRejected)
{
    std::string damaged = bytes;
    damaged[0] = 'X';
    const std::string err = restoreError(damaged);
    EXPECT_NE(err.find("not a CDP checkpoint"), std::string::npos)
        << err;
}

TEST_F(SnapshotCorruption, VersionSkewIsRejectedWithBothVersions)
{
    std::string damaged = bytes;
    damaged[8] = 99; // formatVersion lives right after the magic
    const std::string err = restoreError(damaged);
    EXPECT_NE(err.find("version skew"), std::string::npos) << err;
    EXPECT_NE(err.find("99"), std::string::npos) << err;
    EXPECT_NE(err.find("version " +
                       std::to_string(snap::formatVersion)),
              std::string::npos)
        << err;
}

TEST_F(SnapshotCorruption, WrongSectionTagIsRejected)
{
    std::string damaged = bytes;
    damaged[12] = 'Z'; // first byte of the "CFG!" tag
    const std::string err = restoreError(damaged);
    EXPECT_NE(err.find("section mismatch"), std::string::npos) << err;
}

TEST_F(SnapshotCorruption, GuardedConfigMismatchNamesTheKnob)
{
    SimConfig other;
    other.workload = "specjbb-vsnet";
    other.mem.l2Bytes = 512 * 1024; // geometry change: must refuse
    Simulator sim(other);
    std::istringstream is(bytes);
    try {
        sim.restoreCheckpoint(is);
        FAIL() << "geometry mismatch not detected";
    } catch (const snap::SnapshotError &e) {
        const std::string err = e.what();
        EXPECT_NE(err.find("mem.l2_bytes"), std::string::npos) << err;
        EXPECT_NE(err.find("mismatch"), std::string::npos) << err;
    }
}

TEST_F(SnapshotCorruption, WrongWorkloadNamesBothWorkloads)
{
    SimConfig other;
    other.workload = "tpcc-2";
    Simulator sim(other);
    std::istringstream is(bytes);
    try {
        sim.restoreCheckpoint(is);
        FAIL() << "workload mismatch not detected";
    } catch (const snap::SnapshotError &e) {
        const std::string err = e.what();
        EXPECT_NE(err.find("specjbb-vsnet"), std::string::npos) << err;
        EXPECT_NE(err.find("tpcc-2"), std::string::npos) << err;
    }
}

TEST(SnapshotWriter, CheckpointBytesAreDeterministic)
{
    SimConfig c;
    c.workload = "b2c";
    c.markov.enabled = true; // exercise the key-sorted big table
    Simulator a(c), b(c);
    EXPECT_EQ(checkpointAfterWarmup(a, 30'000),
              checkpointAfterWarmup(b, 30'000));
}
