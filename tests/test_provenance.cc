/** @file
 * Directed tests of the provenance/observability layer: chain-depth
 * bounds, provenance survival across MSHR merge and promotion,
 * reinforcement-promotion accounting, per-depth attribution, the
 * tracer ring buffer, and the pure-observer guarantee (tracing never
 * changes statistics).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "sim/memory_system.hh"
#include "sim/simulator.hh"
#include "workloads/heap_allocator.hh"

using namespace cdp;

namespace
{

struct ProvFixture : ::testing::Test
{
    SimConfig cfg;
    StatGroup stats;
    BackingStore store;
    FrameAllocator frames{0, 8192, true, 13};
    PageTable pt{store, frames};
    HeapAllocator heap{store, pt, frames};
    std::unique_ptr<MemorySystem> mem;

    void
    build()
    {
        cfg.trace.enabled = true;
        cfg.trace.bufferEvents = 1u << 18;
        mem = std::make_unique<MemorySystem>(cfg, store, pt, &stats);
        if (!mem->tracer().active())
            GTEST_SKIP() << "tracer compiled out (CDP_ENABLE_TRACE=OFF)";
    }

    /** Allocate a chain of nodes; node[i] holds a pointer to
     *  node[i+1] at offset 8. Nodes land on distinct lines. */
    std::vector<Addr>
    buildChain(unsigned n)
    {
        std::vector<Addr> nodes;
        for (unsigned i = 0; i < n; ++i)
            nodes.push_back(heap.alloc(lineBytes, lineBytes));
        for (unsigned i = 0; i + 1 < n; ++i)
            heap.write32(nodes[i] + 8, nodes[i + 1]);
        heap.write32(nodes[n - 1] + 8, 0);
        return nodes;
    }

    void
    pump(Cycle from, Cycle span)
    {
        for (Cycle t = from; t <= from + span; t += 100)
            mem->advance(t);
    }

    std::vector<obs::TraceEvent>
    eventsOfKind(obs::EventKind k) const
    {
        std::vector<obs::TraceEvent> out;
        for (const obs::TraceEvent &e : mem->tracer().snapshot())
            if (e.kindOf() == k)
                out.push_back(e);
        return out;
    }
};

} // namespace

TEST_F(ProvFixture, ContentChainDepthNeverExceedsThreshold)
{
    cfg.cdp.nextLines = 0;
    cfg.cdp.depthThreshold = 3;
    build();
    const auto nodes = buildChain(10);
    const Cycle t = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(t, 200000);

    unsigned content_events = 0;
    for (const obs::TraceEvent &e : mem->tracer().snapshot()) {
        if (e.typeOf() != ReqType::ContentPrefetch)
            continue;
        ++content_events;
        EXPECT_LE(e.depth, cfg.cdp.depthThreshold)
            << eventKindName(e.kindOf());
        if (e.kindOf() == obs::EventKind::Issue ||
            e.kindOf() == obs::EventKind::ArbEnqueue) {
            EXPECT_GE(e.depth, 1u);
        }
    }
    EXPECT_GT(content_events, 0u);
    // Nothing was ever attributed above the threshold either.
    const auto &c = mem->counters();
    for (unsigned d = cfg.cdp.depthThreshold + 1; d < provDepthBuckets;
         ++d) {
        EXPECT_EQ(c.depthAccurate[d], 0u) << d;
        EXPECT_EQ(c.depthDropped[d], 0u) << d;
    }
}

TEST_F(ProvFixture, WholeChainSharesTheRootDemandId)
{
    cfg.cdp.nextLines = 0;
    cfg.stride.enabled = false; // isolate the content chain
    build();
    const auto nodes = buildChain(8);
    const Cycle t = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(t, 200000);

    const auto misses = eventsOfKind(obs::EventKind::DemandMiss);
    ASSERT_EQ(misses.size(), 1u);
    const ReqId root = misses[0].id;
    EXPECT_EQ(misses[0].root, root); // a demand is its own root

    unsigned content_issues = 0;
    for (const obs::TraceEvent &e : mem->tracer().snapshot()) {
        if (e.typeOf() != ReqType::ContentPrefetch)
            continue;
        EXPECT_EQ(e.root, root) << eventKindName(e.kindOf());
        content_issues += e.kindOf() == obs::EventKind::Issue;
    }
    EXPECT_GE(content_issues, 2u);
}

TEST_F(ProvFixture, EveryIssueFillsExactlyOnceAfterDrain)
{
    cfg.cdp.nextLines = 1;
    build();
    const auto nodes = buildChain(8);
    Cycle now = mem->load(0x400, nodes[0] + 8, 0, true);
    now = mem->load(0x404, nodes[3] + 8, now + 200, true);
    mem->drainAll(now);

    const auto issues = eventsOfKind(obs::EventKind::Issue);
    const auto fills = eventsOfKind(obs::EventKind::Fill);
    ASSERT_EQ(mem->tracer().dropped(), 0u);
    ASSERT_EQ(issues.size(), fills.size());
    for (const obs::TraceEvent &is : issues) {
        unsigned matches = 0;
        for (const obs::TraceEvent &f : fills) {
            if (f.id != is.id)
                continue;
            ++matches;
            EXPECT_GE(f.cycle, is.cycle);
            EXPECT_EQ(f.root, is.root);
        }
        EXPECT_EQ(matches, 1u) << "issue id " << is.id;
    }
}

TEST_F(ProvFixture, ProvenanceSurvivesInflightPromotion)
{
    cfg.cdp.nextLines = 0;
    build();
    const auto nodes = buildChain(4);
    const Cycle t0 = mem->load(0x400, nodes[0] + 8, 0, true);
    mem->advance(t0 + 10);
    // Demand node 1 while its chain prefetch is still in flight.
    const Cycle t1 = mem->load(0x404, nodes[1] + 8, t0 + 10, true);
    mem->advance(t1 + 100000);
    ASSERT_EQ(mem->counters().maskPartialCdp, 1u);

    const auto misses = eventsOfKind(obs::EventKind::DemandMiss);
    ASSERT_GE(misses.size(), 2u);
    const ReqId root = misses[0].id; // the chain's root

    const auto promotes = eventsOfKind(obs::EventKind::Promote);
    ASSERT_EQ(promotes.size(), 1u);
    EXPECT_EQ(promotes[0].root, root);
    EXPECT_EQ(promotes[0].typeOf(), ReqType::ContentPrefetch);
    EXPECT_EQ(promotes[0].depth, 1u);

    // The promoted transaction's fill keeps id and root, but
    // completes at demand class.
    unsigned matched = 0;
    for (const obs::TraceEvent &f : eventsOfKind(obs::EventKind::Fill)) {
        if (f.id != promotes[0].id)
            continue;
        ++matched;
        EXPECT_EQ(f.root, root);
        EXPECT_EQ(f.typeOf(), ReqType::DemandLoad);
    }
    EXPECT_EQ(matched, 1u);
    // And the lateness was charged to the prefetch's chain depth.
    EXPECT_EQ(mem->counters().depthLate[1], 1u);
}

TEST_F(ProvFixture, ProvenanceSurvivesDemandMerge)
{
    cfg.cdp.enabled = false;
    cfg.stride.enabled = false;
    build();
    const Addr va = heap.alloc(64, 64);
    mem->load(0x400, va, 0, false);
    mem->load(0x404, va + 8, 1, false); // merges: same line in flight
    mem->drainAll(1);

    const auto misses = eventsOfKind(obs::EventKind::DemandMiss);
    ASSERT_EQ(misses.size(), 2u);
    const auto merges = eventsOfKind(obs::EventKind::Merge);
    ASSERT_EQ(merges.size(), 1u);
    // The merge is recorded against the first demand's transaction.
    EXPECT_EQ(merges[0].id, misses[0].id);
    EXPECT_EQ(merges[0].root, misses[0].id);
    // The single fill retires the first demand's id, not the second.
    std::vector<obs::TraceEvent> fills;
    for (const obs::TraceEvent &f : eventsOfKind(obs::EventKind::Fill))
        if (f.typeOf() == ReqType::DemandLoad)
            fills.push_back(f);
    ASSERT_EQ(fills.size(), 1u);
    EXPECT_EQ(fills[0].id, misses[0].id);
}

TEST_F(ProvFixture, DemandHitRecordsExactlyOneReinforcePromotion)
{
    cfg.cdp.nextLines = 0;
    cfg.cdp.reinforce = true;
    cfg.cdp.reinforceMinDelta = 2; // promote without rescanning
    cfg.cdp.depthThreshold = 3;
    build();
    const auto nodes = buildChain(10);
    Cycle now = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(now, 100000);
    ASSERT_EQ(mem->counters().reinforcePromotions, 0u);

    now = mem->load(0x400, nodes[1] + 8, now + 100000, true);
    pump(now, 100000);
    const auto &c = mem->counters();
    EXPECT_EQ(c.reinforcePromotions, 1u);
    EXPECT_EQ(c.rescans, 0u); // delta 1 < 2: promotion only

    const auto reinforces = eventsOfKind(obs::EventKind::Reinforce);
    ASSERT_EQ(reinforces.size(), 1u);
    EXPECT_EQ(reinforces[0].addr, lineAlign(*pt.translate(nodes[1])));
    EXPECT_EQ(reinforces[0].aux, 1u);   // old stored depth
    EXPECT_EQ(reinforces[0].depth, 0u); // new (demand) depth
}

TEST_F(ProvFixture, FirstDemandTouchChargesAccurateAtFillDepth)
{
    cfg.cdp.nextLines = 0;
    build();
    const auto nodes = buildChain(4);
    Cycle now = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(now, 100000); // prefetch of node 1 completes
    now = mem->load(0x404, nodes[1] + 8, now + 100000, true);
    const auto &c = mem->counters();
    EXPECT_EQ(c.maskFullCdp, 1u);
    EXPECT_EQ(c.depthAccurate[1], 1u);
    EXPECT_EQ(c.depthAccurate[0] + c.depthAccurate[2] +
                  c.depthAccurate[3],
              0u);
}

TEST_F(ProvFixture, RingWrapRetainsNewestAndCountsOverwrites)
{
    cfg.cdp.enabled = false;
    cfg.trace.enabled = true;
    cfg.trace.bufferEvents = 16; // build() would pick a big buffer
    mem = std::make_unique<MemorySystem>(cfg, store, pt, &stats);
    if (!mem->tracer().active())
        GTEST_SKIP() << "tracer compiled out (CDP_ENABLE_TRACE=OFF)";
    mem->tracer().clear();
    // Generate far more than 16 events via distinct demand misses.
    Cycle now = 0;
    for (unsigned i = 0; i < 64; ++i) {
        const Addr va = heap.alloc(lineBytes, lineBytes);
        now = mem->load(0x400, va, now + 1, false);
        mem->drainAll(now);
    }
    const obs::Tracer &trc = mem->tracer();
    EXPECT_EQ(trc.size(), 16u);
    EXPECT_GT(trc.dropped(), 0u);
    EXPECT_EQ(trc.recorded(), trc.size() + trc.dropped());
    // snapshot() preserves record order across the wrap point.
    const auto snap = trc.snapshot();
    ASSERT_EQ(snap.size(), 16u);
}

TEST_F(ProvFixture, DisabledTracerRecordsNothing)
{
    cfg.cdp.nextLines = 0;
    cfg.trace.enabled = false;
    mem = std::make_unique<MemorySystem>(cfg, store, pt, &stats);
    const auto nodes = buildChain(4);
    const Cycle t = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(t, 100000);
    EXPECT_FALSE(mem->tracer().active());
    EXPECT_EQ(mem->tracer().recorded(), 0u);
    // ...but provenance statistics are always on.
    EXPECT_GT(mem->counters().cdpIssued, 0u);
}

TEST(ProvenanceObserver, TracingNeverChangesStatistics)
{
    SimConfig base;
    base.workload = "xbtree";
    base.warmupUops = 2'000;
    base.measureUops = 10'000;

    SimConfig traced = base;
    traced.trace.enabled = true;

    Simulator a(base), b(traced);
    const RunResult ra = a.run();
    const RunResult rb = b.run();
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.mem.cdpIssued, rb.mem.cdpIssued);
    EXPECT_EQ(ra.mem.reinforcePromotions, rb.mem.reinforcePromotions);

    std::ostringstream da, db;
    a.stats().dump(da);
    b.stats().dump(db);
    EXPECT_EQ(da.str(), db.str());
}
