/** @file
 * Directed tests of the full memory system (Figure 6): hit/miss
 * timing, prefetcher wiring, chaining through real memory content,
 * promotion of in-flight prefetches, path reinforcement, page-walk
 * bypass, and the pollution injector.
 */

#include <gtest/gtest.h>

#include "sim/memory_system.hh"
#include "workloads/heap_allocator.hh"

using namespace cdp;

namespace
{

struct MemSysFixture : ::testing::Test
{
    SimConfig cfg;
    StatGroup stats;
    BackingStore store;
    FrameAllocator frames{0, 8192, true, 13};
    PageTable pt{store, frames};
    HeapAllocator heap{store, pt, frames};
    std::unique_ptr<MemorySystem> mem;

    void
    build()
    {
        mem = std::make_unique<MemorySystem>(cfg, store, pt, &stats);
    }

    /** Allocate a chain of nodes; node[i] holds a pointer to
     *  node[i+1] at offset 8. Nodes land on distinct lines. */
    std::vector<Addr>
    buildChain(unsigned n)
    {
        std::vector<Addr> nodes;
        for (unsigned i = 0; i < n; ++i)
            nodes.push_back(heap.alloc(lineBytes, lineBytes));
        for (unsigned i = 0; i + 1 < n; ++i)
            heap.write32(nodes[i] + 8, nodes[i + 1]);
        heap.write32(nodes[n - 1] + 8, 0);
        return nodes;
    }

    /** Let all in-flight work finish. */
    void
    settle(Cycle now)
    {
        mem->drainAll(now);
        mem->advance(now + 100000);
    }

    /**
     * Advance in small steps across [from, from+span), the way the
     * core does every cycle; chained prefetches need repeated
     * advances (one fill -> scan -> issue round per pass).
     */
    void
    pump(Cycle from, Cycle span)
    {
        for (Cycle t = from; t <= from + span; t += 100)
            mem->advance(t);
    }
};

} // namespace

TEST_F(MemSysFixture, L1HitCostsL1Latency)
{
    cfg.cdp.enabled = false;
    build();
    const Addr va = heap.alloc(64, 64);
    const Cycle first = mem->load(0x400, va, 0, false);
    settle(first);
    const Cycle hit = mem->load(0x400, va, first + 1000, false);
    EXPECT_EQ(hit, first + 1000 + cfg.mem.l1Latency);
}

TEST_F(MemSysFixture, ColdMissPaysBusLatency)
{
    cfg.cdp.enabled = false;
    build();
    const Addr va = heap.alloc(64, 64);
    const Cycle done = mem->load(0x400, va, 0, false);
    // Walk (2 bus accesses on a cold page table) + fill.
    EXPECT_GE(done, cfg.mem.busLatency);
    EXPECT_LT(done, 4 * cfg.mem.busLatency + 200);
}

TEST_F(MemSysFixture, L2HitAfterL1Eviction)
{
    cfg.cdp.enabled = false;
    build();
    const Addr va = heap.alloc(64, 64);
    Cycle t = mem->load(0x400, va, 0, false);
    settle(t);
    // Blow the L1 (32 KB) with 1024 distinct lines, keeping L2 warm.
    for (unsigned i = 0; i < 1024; ++i) {
        const Addr filler = heap.alloc(64, 64);
        t = std::max(t, mem->load(0x500, filler, t + 1, false));
        settle(t);
    }
    const Cycle start = t + 10000;
    const Cycle done = mem->load(0x400, va, start, false);
    // Not an L1 hit, far cheaper than memory.
    EXPECT_GT(done, start + cfg.mem.l1Latency);
    EXPECT_LE(done, start + cfg.mem.l2Latency + 10);
}

TEST_F(MemSysFixture, SecondDemandToSameLineMerges)
{
    cfg.cdp.enabled = false;
    build();
    const Addr va = heap.alloc(64, 64);
    const Cycle d1 = mem->load(0x400, va, 0, false);
    const Cycle d2 = mem->load(0x404, va + 8, 1, false);
    EXPECT_LE(d2, d1); // merged: no second bus trip
    EXPECT_EQ(mem->counters().l2DemandMisses, 1u);
}

TEST_F(MemSysFixture, StrideCoversStream)
{
    cfg.cdp.enabled = false;
    build();
    // Touch a long stream; the stride prefetcher should mask many of
    // the later misses.
    Addr base = heap.alloc(256 * lineBytes, lineBytes);
    Cycle now = 0;
    for (unsigned i = 0; i < 256; ++i) {
        now = mem->load(0x400, base + i * lineBytes, now + 50, false);
        mem->advance(now + 400);
    }
    settle(now);
    const auto &c = mem->counters();
    EXPECT_GT(c.strideIssued, 50u);
    EXPECT_GT(c.maskFullStride + c.maskPartialStride, 20u);
}

TEST_F(MemSysFixture, ContentPrefetcherChainsThroughRealPointers)
{
    cfg.cdp.nextLines = 0;
    build();
    const auto nodes = buildChain(8);
    // Demand-load the first node, then give the prefetcher time.
    Cycle now = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(now, 20000);
    const auto &c = mem->counters();
    // The chain should have prefetched several successors (depth 3
    // threshold bounds the initial burst).
    EXPECT_GE(c.cdpIssued, 2u);
    // The successor lines must now be resident or in flight.
    unsigned covered = 0;
    for (unsigned i = 1; i <= 3; ++i) {
        const auto pa = pt.translate(nodes[i]);
        ASSERT_TRUE(pa.has_value());
        covered += mem->l2().probe(*pa) != nullptr ? 1 : 0;
    }
    EXPECT_GE(covered, 2u);
}

TEST_F(MemSysFixture, DepthTagsStoredInCache)
{
    cfg.cdp.nextLines = 0;
    build();
    const auto nodes = buildChain(8);
    const Cycle t = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(t, 20000);
    const auto pa1 = pt.translate(nodes[1]);
    const CacheLine *l1 = mem->l2().probe(*pa1);
    ASSERT_NE(l1, nullptr);
    EXPECT_TRUE(l1->prefetched);
    EXPECT_EQ(l1->fillType, ReqType::ContentPrefetch);
    EXPECT_EQ(l1->storedDepth, 1u);
    const auto pa2 = pt.translate(nodes[2]);
    const CacheLine *l2 = mem->l2().probe(*pa2);
    ASSERT_NE(l2, nullptr);
    EXPECT_EQ(l2->storedDepth, 2u);
}

TEST_F(MemSysFixture, ChainStopsAtDepthThreshold)
{
    cfg.cdp.nextLines = 0;
    cfg.cdp.reinforce = false;
    cfg.cdp.depthThreshold = 3;
    build();
    const auto nodes = buildChain(10);
    const Cycle t = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(t, 100000);
    // Nodes 1..3 fetched; node 4 requires scanning a depth-3 fill,
    // which the threshold forbids.
    const auto pa4 = pt.translate(nodes[4]);
    EXPECT_EQ(mem->l2().probe(*pa4), nullptr);
    EXPECT_EQ(mem->counters().cdpIssued, 3u);
}

TEST_F(MemSysFixture, ReinforcementExtendsChainOnDemandHit)
{
    cfg.cdp.nextLines = 0;
    cfg.cdp.reinforce = true;
    cfg.cdp.reinforceMinDelta = 1;
    cfg.cdp.depthThreshold = 3;
    build();
    const auto nodes = buildChain(10);
    Cycle now = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(now, 100000);
    // Demand hit on node 1 (stored depth 1) promotes and rescans,
    // extending the chain to node 4.
    now += 100000;
    now = mem->load(0x400, nodes[1] + 8, now, true);
    pump(now, 100000);
    const auto &c = mem->counters();
    EXPECT_GE(c.promotions, 1u);
    EXPECT_GE(c.rescans, 1u);
    const auto pa4 = pt.translate(nodes[4]);
    EXPECT_NE(mem->l2().probe(*pa4), nullptr);
    // And the hit line's stored depth was promoted to 0.
    const auto pa1 = pt.translate(nodes[1]);
    EXPECT_EQ(mem->l2().probe(*pa1)->storedDepth, 0u);
}

TEST_F(MemSysFixture, NoReinforcementMeansNoRescans)
{
    cfg.cdp.nextLines = 0;
    cfg.cdp.reinforce = false;
    build();
    const auto nodes = buildChain(10);
    Cycle now = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(now, 100000);
    now = mem->load(0x400, nodes[1] + 8, now + 100000, true);
    pump(now, 100000);
    EXPECT_EQ(mem->counters().rescans, 0u);
    const auto pa4 = pt.translate(nodes[4]);
    EXPECT_EQ(mem->l2().probe(*pa4), nullptr);
}

TEST_F(MemSysFixture, RescanThrottleDeltaTwo)
{
    // Figure 4(c): with min delta 2, a hit on a depth-1 line promotes
    // without rescanning.
    cfg.cdp.nextLines = 0;
    cfg.cdp.reinforceMinDelta = 2;
    build();
    const auto nodes = buildChain(10);
    Cycle now = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(now, 100000);
    now = mem->load(0x400, nodes[1] + 8, now + 100000, true);
    pump(now, 100000);
    EXPECT_EQ(mem->counters().rescans, 0u);
    EXPECT_GE(mem->counters().promotions, 1u);
}

TEST_F(MemSysFixture, DemandPromotesInflightPrefetch)
{
    cfg.cdp.nextLines = 0;
    build();
    const auto nodes = buildChain(4);
    const Cycle t0 = mem->load(0x400, nodes[0] + 8, 0, true);
    // Let the fill complete and the chain prefetch get onto the bus,
    // then demand node 1 while its prefetch is still in flight.
    mem->advance(t0 + 10);
    const Cycle t1 = mem->load(0x404, nodes[1] + 8, t0 + 10, true);
    mem->advance(t1 + 100000);
    const auto &c = mem->counters();
    EXPECT_EQ(c.maskPartialCdp, 1u);
    EXPECT_EQ(c.cdpUseful, 1u);
    // The demand completed no later than a fresh miss would have.
    EXPECT_LE(t1, t0 + 10 + 2 * cfg.mem.busLatency);
}

TEST_F(MemSysFixture, FullMaskCountedOnDemandHitOfPrefetchedLine)
{
    cfg.cdp.nextLines = 0;
    build();
    const auto nodes = buildChain(4);
    Cycle now = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(now, 100000); // prefetch of node 1 completes
    now = mem->load(0x404, nodes[1] + 8, now + 100000, true);
    EXPECT_EQ(mem->counters().maskFullCdp, 1u);
    EXPECT_EQ(mem->counters().cdpUseful, 1u);
}

TEST_F(MemSysFixture, WidthLinesFetchedButNotScanned)
{
    cfg.cdp.nextLines = 2;
    build();
    // One node whose pointer targets an isolated node; the width
    // lines beyond the target contain further pointers which must
    // NOT be chased (width fills are not chain-scanned).
    const Addr a = heap.alloc(lineBytes, lineBytes);
    const Addr b = heap.alloc(lineBytes, lineBytes); // b = target
    const Addr b1 = heap.alloc(lineBytes, lineBytes); // width line
    heap.alloc(8 * lineBytes, lineBytes); // gap: keep far outside
    const Addr far = heap.alloc(lineBytes, lineBytes);
    heap.write32(a + 8, b);
    heap.write32(b1 + 8, far); // pointer inside a width line
    const Cycle t = mem->load(0x400, a + 8, 0, true);
    pump(t, 200000);
    // b and b+64 fetched...
    EXPECT_NE(mem->l2().probe(*pt.translate(b)), nullptr);
    EXPECT_NE(mem->l2().probe(*pt.translate(b1)), nullptr);
    // ...but far was not chased out of the width line.
    EXPECT_EQ(mem->l2().probe(*pt.translate(far)), nullptr);
}

TEST_F(MemSysFixture, ScanWidthFillsAblationChasesWidthContent)
{
    cfg.cdp.nextLines = 2;
    cfg.cdp.scanWidthFills = true;
    build();
    const Addr a = heap.alloc(lineBytes, lineBytes);
    const Addr b = heap.alloc(lineBytes, lineBytes);
    const Addr b1 = heap.alloc(lineBytes, lineBytes);
    heap.alloc(8 * lineBytes, lineBytes); // gap: keep far outside
    const Addr far = heap.alloc(lineBytes, lineBytes);
    heap.write32(a + 8, b);
    heap.write32(b1 + 8, far);
    const Cycle t = mem->load(0x400, a + 8, 0, true);
    pump(t, 200000);
    EXPECT_NE(mem->l2().probe(*pt.translate(far)), nullptr);
}

TEST_F(MemSysFixture, PageWalkFillsAreNotScanned)
{
    // Page-table lines are full of frame pointers; scanning them
    // would explode (Section 3.5). Verify no content prefetch is
    // triggered by pure walk traffic.
    cfg.stride.enabled = false;
    build();
    // Map many pages and touch one VA per page: every access walks.
    const Addr va = heap.alloc(64, 64);
    const Cycle t = mem->load(0x400, va, 0, false);
    pump(t, 100000);
    const auto &c = mem->counters();
    EXPECT_GE(c.demandWalks, 1u);
    // The walk fills contain pointers into the page-table region but
    // no cdp prefetch was issued for them (heap data line had no
    // pointers either).
    EXPECT_EQ(c.cdpIssued, 0u);
}

TEST_F(MemSysFixture, SpeculativeWalksFillTlb)
{
    cfg.cdp.nextLines = 0;
    build();
    // Nodes on distinct pages, so chain prefetches need their own
    // translations (speculative page walks).
    std::vector<Addr> nodes;
    for (unsigned i = 0; i < 4; ++i)
        nodes.push_back(heap.alloc(pageBytes, pageBytes));
    for (unsigned i = 0; i + 1 < 4; ++i)
        heap.write32(nodes[i] + 8, nodes[i + 1]);
    heap.write32(nodes[3] + 8, 0);
    Cycle now = mem->load(0x400, nodes[0] + 8, 0, true);
    pump(now, 200000);
    EXPECT_GT(mem->counters().prefetchWalks, 0u);
    // The prefetched node's translation is now cached: a demand
    // lookup of that page hits the TLB.
    EXPECT_TRUE(mem->dtlb().probe(nodes[1]).has_value());
}

TEST_F(MemSysFixture, PrefetchToUnmappedTargetDropped)
{
    cfg.cdp.nextLines = 0;
    build();
    const Addr a = heap.alloc(lineBytes, lineBytes);
    // Plant a heap-looking pointer to an unmapped address.
    heap.write32(a + 8, 0x10f00000);
    const Cycle t = mem->load(0x400, a + 8, 0, true);
    pump(t, 100000);
    EXPECT_GE(mem->counters().pfDropUnmapped, 1u);
    EXPECT_EQ(mem->counters().cdpIssued, 0u);
}

TEST_F(MemSysFixture, PrefetchToResidentLineDropped)
{
    cfg.cdp.nextLines = 0;
    build();
    const Addr a = heap.alloc(lineBytes, lineBytes);
    const Addr b = heap.alloc(lineBytes, lineBytes);
    heap.write32(a + 8, b);
    heap.write32(b + 8, 0);
    // Load b first so it is resident, then scan a.
    Cycle now = mem->load(0x400, b, 0, false);
    pump(now, 100000);
    now = mem->load(0x404, a + 8, now + 100000, true);
    pump(now, 100000);
    EXPECT_GE(mem->counters().pfDropL2Hit, 1u);
    EXPECT_EQ(mem->counters().cdpIssued, 0u);
}

TEST_F(MemSysFixture, PollutionInjectorChurnsCache)
{
    cfg.cdp.enabled = false;
    cfg.pollution.enabled = true;
    build();
    const Addr va = heap.alloc(64, 64);
    Cycle now = mem->load(0x400, va, 0, false);
    // Idle bus time lets the injector shovel bad lines into the UL2.
    for (int i = 0; i < 100; ++i)
        mem->advance(now + i * 1000);
    EXPECT_GT(mem->counters().pollutionInjected, 10u);
    EXPECT_GT(mem->l2().residentLines(), 10u);
}

TEST_F(MemSysFixture, StoresFillCacheWithoutBlocking)
{
    cfg.cdp.enabled = false;
    build();
    const Addr va = heap.alloc(64, 64);
    const Cycle done = mem->store(0x400, va, 0);
    EXPECT_EQ(done, 1u); // store buffer hides the fill
    mem->advance(500000);
    EXPECT_NE(mem->l2().probe(*pt.translate(va)), nullptr);
}

TEST_F(MemSysFixture, CountersResetCleanly)
{
    build();
    const Addr va = heap.alloc(64, 64);
    mem->load(0x400, va, 0, false);
    EXPECT_GT(mem->counters().demandLoads, 0u);
    mem->resetCounters();
    EXPECT_EQ(mem->counters().demandLoads, 0u);
    EXPECT_EQ(mem->counters().l2DemandMisses, 0u);
}
