/** @file Unit tests for the Table 2 benchmark suite. */

#include <gtest/gtest.h>

#include <set>

#include "workloads/suite.hh"

using namespace cdp;

TEST(Suite, HasFifteenBenchmarksInPaperOrder)
{
    const auto &suite = table2Suite();
    ASSERT_EQ(suite.size(), 15u);
    const char *expected[] = {
        "b2b",          "b2c",          "quake",       "speech",
        "rc3",          "creation",     "tpcc-1",      "tpcc-2",
        "tpcc-3",       "tpcc-4",       "verilog-func", "verilog-gate",
        "proE",         "slsb",         "specjbb-vsnet"};
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(Suite, SuiteColumnsMatchTable2)
{
    EXPECT_EQ(findBenchmark("b2b").suite, "Internet");
    EXPECT_EQ(findBenchmark("quake").suite, "Multimedia");
    EXPECT_EQ(findBenchmark("speech").suite, "Productivity");
    EXPECT_EQ(findBenchmark("tpcc-3").suite, "Server");
    EXPECT_EQ(findBenchmark("verilog-gate").suite, "Workstation");
    EXPECT_EQ(findBenchmark("specjbb-vsnet").suite, "Runtime");
}

TEST(Suite, FindBenchmarkThrowsOnUnknown)
{
    EXPECT_THROW(findBenchmark("nope"), std::invalid_argument);
}

TEST(Suite, WeightsArePositiveAndSumNearOne)
{
    for (const auto &s : table2Suite()) {
        const double sum = s.wList + s.wTree + s.wHash + s.wStride +
                           s.wRandom + s.wCompute;
        EXPECT_NEAR(sum, 1.0, 0.02) << s.name;
        EXPECT_GT(s.wCompute, 0.0) << s.name;
    }
}

TEST(Suite, WorkingSetsSpanCacheScales)
{
    // The suite must contain benchmarks that fit in the 1-MB UL2 and
    // benchmarks that blow it out, as Table 2's MPTU spread implies.
    std::uint64_t smallest = ~0ull, largest = 0;
    for (const auto &s : table2Suite()) {
        smallest = std::min(smallest, s.workingSetBytes());
        largest = std::max(largest, s.workingSetBytes());
    }
    EXPECT_LT(smallest, 1024u * 1024);
    EXPECT_GT(largest, 4u * 1024 * 1024);
}

TEST(Suite, VerilogGateIsTheHeaviest)
{
    // Table 2: verilog-gate has by far the highest MPTU; our stand-in
    // must have the largest pointer-walk weight.
    const auto &vg = findBenchmark("verilog-gate");
    for (const auto &s : table2Suite()) {
        if (s.name != "verilog-gate") {
            EXPECT_GE(vg.wList + vg.wTree + vg.wHash,
                      s.wList + s.wTree + s.wHash)
                << s.name;
        }
    }
}

TEST(Suite, StructureSpecsAreConsistent)
{
    for (const auto &s : table2Suite()) {
        if (s.wList > 0) {
            EXPECT_GT(s.listNodes, 0u) << s.name;
        }
        if (s.wHash > 0) {
            EXPECT_GT(s.hashNodes, 0u) << s.name;
            EXPECT_GT(s.hashBuckets, 0u) << s.name;
            EXPECT_EQ(s.hashBuckets & (s.hashBuckets - 1), 0u)
                << s.name;
        }
        if (s.wTree > 0) {
            EXPECT_GT(s.treeNodes, 0u) << s.name;
        }
        if (s.wStride > 0) {
            EXPECT_GT(s.strideKB, 0u) << s.name;
        }
    }
}

TEST(Suite, MakeBenchmarkProducesRunnableSource)
{
    BackingStore store;
    FrameAllocator frames{0, 48 * 1024, true, 3};
    PageTable pt{store, frames};
    HeapAllocator heap{store, pt, frames};
    auto src = makeBenchmark(findBenchmark("b2c"), heap, 1);
    ASSERT_NE(src, nullptr);
    unsigned loads = 0;
    for (int i = 0; i < 2000; ++i)
        loads += src->next().type == UopType::Load ? 1 : 0;
    EXPECT_GT(loads, 100u); // realistic load density
}

TEST(Suite, EveryBenchmarkBuildsAndEmits)
{
    for (const auto &s : table2Suite()) {
        BackingStore store;
        FrameAllocator frames{0, 48 * 1024, true, 3};
        PageTable pt{store, frames};
        HeapAllocator heap{store, pt, frames};
        auto src = makeBenchmark(s, heap, 7);
        ASSERT_NE(src, nullptr) << s.name;
        std::set<UopType> kinds;
        for (int i = 0; i < 3000; ++i)
            kinds.insert(src->next().type);
        EXPECT_TRUE(kinds.count(UopType::Load)) << s.name;
        EXPECT_TRUE(kinds.count(UopType::Branch)) << s.name;
    }
}

TEST(Suite, BenchmarkHeapStaysUnder16MBCompareWindow)
{
    // With 8 compare bits on a 32-bit address, the prefetchable range
    // around the heap base is 16 MB; the suite working sets must stay
    // inside it for VAM to see the whole heap.
    for (const auto &s : table2Suite())
        EXPECT_LT(s.workingSetBytes(), 14u * 1024 * 1024) << s.name;
}
