/** @file
 * Shared configuration fuzzer for the property-test nets.
 *
 * randomConfig(seed) maps a seed to a random-but-valid SimConfig.
 * Multiple test binaries (test_fuzz, test_event_wheel) draw from the
 * same distribution so a seed reported by one net reproduces in the
 * others.
 *
 * Draw-order contract: new knobs must be drawn AFTER all existing
 * ones. Every draw consumes RNG state, so inserting one in the middle
 * silently reshuffles every configuration behind existing seeds and
 * invalidates triaged repro seeds.
 */

#ifndef CDP_TESTS_FUZZ_CONFIG_HH
#define CDP_TESTS_FUZZ_CONFIG_HH

#include <cstdint>
#include <iterator>

#include "common/rng.hh"
#include "sim/config.hh"

namespace cdp::testcfg
{

/** Random-but-valid configuration from a seed. */
inline SimConfig
randomConfig(std::uint64_t seed)
{
    Rng rng(seed);
    SimConfig c;

    const char *workloads[] = {"b2c", "quake", "tpcc-2",
                               "verilog-gate", "specjbb-vsnet",
                               "xgraph", "xbtree", "speech"};
    c.workload = workloads[rng.below(std::size(workloads))];
    c.workloadSeed = 1 + rng.below(5);
    c.warmupUops = 2'000 + rng.below(10'000);
    c.measureUops = 10'000 + rng.below(30'000);

    // Machine geometry (kept valid: pow2 sets everywhere).
    const std::uint64_t l2_opts[] = {256, 512, 1024, 2048};
    c.mem.l2Bytes = l2_opts[rng.below(4)] * 1024;
    const unsigned tlb_opts[] = {32, 64, 128, 256};
    c.mem.dtlbEntries = tlb_opts[rng.below(4)];
    c.mem.busLatency = 100 + rng.below(600);
    c.mem.busOccupancy = 10 + rng.below(100);
    c.core.robEntries = 32 + static_cast<unsigned>(rng.below(4)) * 32;

    // Prefetchers.
    c.stride.enabled = rng.chance(0.8);
    c.stride.degree = 1 + rng.below(4);
    c.cdp.enabled = rng.chance(0.8);
    c.cdp.vam.compareBits = 8 + rng.below(7);
    c.cdp.vam.filterBits = rng.below(7);
    c.cdp.vam.alignBits = rng.below(3);
    const unsigned steps[] = {1, 2, 4};
    c.cdp.vam.scanStep = steps[rng.below(3)];
    c.cdp.depthThreshold = 1 + rng.below(9);
    c.cdp.nextLines = rng.below(5);
    c.cdp.prevLines = rng.below(2);
    c.cdp.reinforce = rng.chance(0.7);
    c.cdp.reinforceMinDelta = 1 + rng.below(2);
    c.cdp.scanPageWalkFills = rng.chance(0.1);
    c.cdp.scanWidthFills = rng.chance(0.1);
    c.adaptive.enabled = rng.chance(0.3);
    c.adaptive.epochPrefetches = 128 + rng.below(2048);
    c.markov.enabled = rng.chance(0.3);
    c.markov.stabBytes = rng.chance(0.5) ? 0 : 128 * 1024;
    c.pollution.enabled = rng.chance(0.15);

    // Appended after every pre-existing draw (see header comment):
    // exercise the legacy tick-every-cycle scheduler on a quarter of
    // the configurations so the fuzz nets cover both advance paths.
    c.sched.mode = rng.chance(0.25) ? "legacy" : "wheel";
    return c;
}

} // namespace cdp::testcfg

#endif // CDP_TESTS_FUZZ_CONFIG_HH
