/** @file Unit tests for the 1-history Markov prefetcher (Section 5). */

#include <gtest/gtest.h>

#include "prefetch/markov_prefetcher.hh"

using namespace cdp;

TEST(Markov, NoPredictionUntilTrained)
{
    MarkovPrefetcher pf(0);
    EXPECT_TRUE(pf.observeMiss(0, 0x1000).empty());
    EXPECT_TRUE(pf.observeMiss(0, 0x2000).empty());
}

TEST(Markov, PredictsSeenSuccessor)
{
    MarkovPrefetcher pf(0);
    pf.observeMiss(0, 0x1000);
    pf.observeMiss(0, 0x2000); // trains 0x1000 -> 0x2000
    pf.observeMiss(0, 0x9000);
    const auto preds = pf.observeMiss(0, 0x1000);
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds[0], 0x2000u);
}

TEST(Markov, TrainingIsLineGranular)
{
    MarkovPrefetcher pf(0);
    pf.observeMiss(0, 0x1008);
    pf.observeMiss(0, 0x2010);
    const auto preds = pf.observeMiss(0, 0x1030); // same line as 0x1008
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds[0], 0x2000u);
}

TEST(Markov, FanoutBoundsSuccessors)
{
    MarkovPrefetcher pf(0, 16, 2); // fanout 2
    for (Addr succ : {0x2000u, 0x3000u, 0x4000u, 0x5000u}) {
        pf.observeMiss(0, 0x1000);
        pf.observeMiss(0, succ);
    }
    const auto preds = pf.observeMiss(0, 0x1000);
    EXPECT_EQ(preds.size(), 2u);
    // MRU first: the most recent successor leads.
    EXPECT_EQ(preds[0], 0x5000u);
    EXPECT_EQ(preds[1], 0x4000u);
}

TEST(Markov, RepeatedTransitionMovesToFront)
{
    MarkovPrefetcher pf(0, 16, 4);
    pf.observeMiss(0, 0x1000);
    pf.observeMiss(0, 0x2000);
    pf.observeMiss(0, 0x1000);
    pf.observeMiss(0, 0x3000);
    pf.observeMiss(0, 0x1000);
    pf.observeMiss(0, 0x2000); // 0x2000 becomes MRU again
    const auto preds = pf.observeMiss(0, 0x1000);
    ASSERT_GE(preds.size(), 2u);
    EXPECT_EQ(preds[0], 0x2000u);
    EXPECT_EQ(preds[1], 0x3000u);
}

TEST(Markov, SelfTransitionIgnored)
{
    MarkovPrefetcher pf(0);
    pf.observeMiss(0, 0x1000);
    pf.observeMiss(0, 0x1020); // same line: no self edge
    pf.observeMiss(0, 0x2000);
    const auto preds = pf.observeMiss(0, 0x1000);
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds[0], 0x2000u);
}

TEST(Markov, UnboundedTableGrows)
{
    MarkovPrefetcher pf(0);
    EXPECT_EQ(pf.capacityEntries(), 0u);
    for (Addr a = 0; a < 100 * lineBytes; a += lineBytes)
        pf.observeMiss(0, a);
    EXPECT_EQ(pf.population(), 99u); // 99 transitions trained
}

TEST(Markov, BoundedCapacityFromBytes)
{
    // 512 KB at 20 B/entry ~ 26214 entries -> floor pow2 sets * 16.
    MarkovPrefetcher pf(512 * 1024, 16, 4);
    EXPECT_GT(pf.capacityEntries(), 0u);
    EXPECT_LE(pf.capacityEntries() * MarkovPrefetcher::bytesPerEntry,
              512u * 1024 * 2); // within 2x of budget (pow2 rounding)
    EXPECT_EQ(pf.capacityEntries() % 16, 0u);
}

TEST(Markov, BoundedTableEvictsLru)
{
    // Tiny STAB: 16 ways x 1 set = 16 entries (320 bytes).
    MarkovPrefetcher pf(320, 16, 4);
    ASSERT_EQ(pf.capacityEntries(), 16u);
    // Train 17 distinct predecessors; the first should be evicted.
    for (unsigned i = 0; i < 17; ++i) {
        pf.observeMiss(0, (2 * i) * lineBytes * 1024);
        pf.observeMiss(0, (2 * i + 1) * lineBytes * 1024);
    }
    EXPECT_LE(pf.population(), 16u);
}

TEST(Markov, PopulationNeverExceedsCapacity)
{
    MarkovPrefetcher pf(128 * 1024, 16, 4);
    unsigned seed = 5;
    for (int i = 0; i < 50000; ++i) {
        seed = seed * 1664525u + 1013904223u;
        pf.observeMiss(0, (seed % (1u << 24)) & ~63u);
    }
    EXPECT_LE(pf.population(), pf.capacityEntries());
}

TEST(Markov, StatsCount)
{
    MarkovPrefetcher pf(0);
    pf.observeMiss(0, 0x1000);
    pf.observeMiss(0, 0x2000);
    pf.observeMiss(0, 0x1000);
    EXPECT_EQ(pf.issuedCount(), 1u);
}

/** Property: a repeating miss cycle is fully predicted once seen. */
class MarkovCycle : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MarkovCycle, CycleFullyLearnedAfterOnePass)
{
    const unsigned len = GetParam();
    MarkovPrefetcher pf(0);
    std::vector<Addr> cycle;
    for (unsigned i = 0; i < len; ++i)
        cycle.push_back(0x100000 + i * 0x1000);
    // Pass 1: training.
    for (Addr a : cycle)
        pf.observeMiss(0, a);
    pf.observeMiss(0, cycle[0]); // closes the loop
    // Pass 2: every miss predicts its successor.
    for (unsigned i = 1; i < len; ++i) {
        const auto preds = pf.observeMiss(0, cycle[i]);
        ASSERT_FALSE(preds.empty()) << "at " << i;
        EXPECT_EQ(preds[0], lineAlign(cycle[(i + 1) % len]));
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, MarkovCycle,
                         ::testing::Values(2u, 3u, 8u, 64u, 500u));
