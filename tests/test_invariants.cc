/**
 * @file
 * Tests for the invariant-checker subsystem (src/check).
 *
 * Two halves:
 *  - positive: healthy components and a fully-wired simulator pass
 *    every audit;
 *  - fault injection: each class of corruption (MSHR lifecycle, depth
 *    tags, arbiter priority order, TLB backing, conservation ledger)
 *    is introduced through check::Access and the matching audit must
 *    abort. These are gtest death tests; they require a build with
 *    CDP_ENABLE_CHECKS=ON and are skipped otherwise.
 */

#include <gtest/gtest.h>

#include "check/access.hh"
#include "check/check.hh"
#include "check/invariants.hh"
#include "mem/backing_store.hh"
#include "mem/frame_allocator.hh"
#include "memsys/cache.hh"
#include "memsys/mshr.hh"
#include "memsys/queued_arbiter.hh"
#include "sim/simulator.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

using namespace cdp;

namespace
{

MshrEntry
prefetchEntry(Addr line_pa, unsigned depth)
{
    MshrEntry e{};
    e.linePa = lineAlign(line_pa);
    e.lineVa = lineAlign(line_pa);
    e.vaddr = line_pa;
    e.type = ReqType::ContentPrefetch;
    e.depth = depth;
    e.completion = 500;
    return e;
}

MemRequest
request(ReqType type, Addr line_va, ReqId id)
{
    MemRequest r{};
    r.id = id;
    r.type = type;
    r.vaddr = line_va;
    r.lineVa = lineAlign(line_va);
    r.depth = isPrefetch(type) ? 1 : 0;
    return r;
}

/** Skip the current test unless invariant checking is compiled in. */
#define REQUIRE_CHECKED_BUILD()                                         \
    do {                                                                \
        if (!CDP_CHECKS_ENABLED)                                        \
            GTEST_SKIP()                                                \
                << "build has CDP_ENABLE_CHECKS off; death tests "      \
                   "need a checked build";                              \
    } while (false)

} // namespace

// ---------------------------------------------------------------------
// Positive: audits pass on healthy state.
// ---------------------------------------------------------------------

TEST(Invariants, HealthyComponentsPass)
{
    Cache cache(32 * 1024, 8);
    cache.insert(0x1000);
    cache.insert(0x2000);
    check::auditCache(cache, 3, "cache");

    MshrFile mshrs(8);
    ASSERT_TRUE(mshrs.allocate(prefetchEntry(0x4000, 2)));
    check::auditMshr(mshrs, 3, "mshr");

    QueuedArbiter arb(16);
    arb.enqueue(request(ReqType::DemandLoad, 0x1000, 1));
    arb.enqueue(request(ReqType::StridePrefetch, 0x2000, 2));
    arb.enqueue(request(ReqType::ContentPrefetch, 0x3000, 3));
    check::auditArbiter(arb, "arb");

    BackingStore store;
    FrameAllocator frames(0, 256, /*scatter=*/false, 1);
    PageTable pt(store, frames);
    pt.map(0x10000000, 0x00400000);
    Tlb tlb(64, 4);
    tlb.insert(0x10000000, pageAlign(*pt.translate(0x10000000)));
    check::auditTlb(tlb, pt, "tlb");
}

TEST(Invariants, ArbiterConservationAcrossTraffic)
{
    QueuedArbiter arb(4);
    for (ReqId i = 0; i < 12; ++i) {
        // Mix of classes; overflow exercises both squash (prefetch
        // arriving full) and displacement (demand arriving full).
        const ReqType t = i % 3 == 0 ? ReqType::DemandLoad
                          : i % 3 == 1 ? ReqType::StridePrefetch
                                       : ReqType::ContentPrefetch;
        arb.enqueue(request(t, 0x1000 + 0x40 * i, i + 1));
        if (i % 4 == 3)
            (void)arb.dequeue();
    }
    (void)arb.extractPrefetch(0x1000 + 0x40 * 10);
    check::auditArbiter(arb, "arb");
    while (arb.dequeue())
        check::auditArbiter(arb, "arb");
}

TEST(Invariants, EndToEndSimulatorAuditPasses)
{
    SimConfig cfg;
    cfg.warmupUops = 20'000;
    cfg.measureUops = 50'000;
    Simulator sim(cfg);
    (void)sim.run(); // run()/measure() audit at every phase boundary
    sim.memory().checkInvariants();
}

// ---------------------------------------------------------------------
// Fault injection: every corruption class must abort the audit.
// ---------------------------------------------------------------------

TEST(InvariantDeath, MshrIllegalPromotionState)
{
    REQUIRE_CHECKED_BUILD();
    MshrFile mshrs(8);
    ASSERT_TRUE(mshrs.allocate(prefetchEntry(0x4000, 1)));
    // A promoted entry that is still prefetch-class is outside the
    // merge/promotion FSM (promote() reclassifies to demand).
    check::Access::entries(mshrs).begin()->second.promoted = true;
    EXPECT_DEATH(check::auditMshr(mshrs, 3, "mshr"), "promoted");
}

TEST(InvariantDeath, MshrLeakedEntriesBeyondCapacity)
{
    REQUIRE_CHECKED_BUILD();
    MshrFile mshrs(1);
    ASSERT_TRUE(mshrs.allocate(prefetchEntry(0x4000, 1)));
    // Inject a second entry behind the allocator's back: occupancy
    // now exceeds the hardware's register count.
    auto leaked = prefetchEntry(0x8000, 1);
    check::Access::entries(mshrs).emplace(leaked.linePa, leaked);
    EXPECT_DEATH(check::auditMshr(mshrs, 3, "mshr"), "capacity");
}

TEST(InvariantDeath, MshrContentChainDepthOverrun)
{
    REQUIRE_CHECKED_BUILD();
    MshrFile mshrs(8);
    ASSERT_TRUE(mshrs.allocate(prefetchEntry(0x4000, 9)));
    EXPECT_DEATH(check::auditMshr(mshrs, 3, "mshr"), "depth");
}

TEST(InvariantDeath, CacheDepthTagExceedsThreshold)
{
    REQUIRE_CHECKED_BUILD();
    Cache cache(32 * 1024, 8);
    cache.insert(0x1000);
    for (auto &l : check::Access::lines(cache)) {
        if (l.valid)
            l.storedDepth = 200; // way past any configured threshold
    }
    EXPECT_DEATH(check::auditCache(cache, 3, "cache"), "storedDepth");
}

TEST(InvariantDeath, CacheDuplicateTagInSet)
{
    REQUIRE_CHECKED_BUILD();
    Cache cache(32 * 1024, 8);
    cache.insert(0x1000);
    auto &lines = check::Access::lines(cache);
    const unsigned set = check::Access::setOf(cache, 0x1000);
    auto *base = &lines[static_cast<std::size_t>(set) * cache.numWays()];
    base[1] = base[0]; // two ways now claim the same line
    base[1].lruStamp = base[0].lruStamp ? base[0].lruStamp - 1 : 1;
    EXPECT_DEATH(check::auditCache(cache, 3, "cache"), "tag");
}

TEST(InvariantDeath, CacheLruStampAheadOfGlobalClock)
{
    REQUIRE_CHECKED_BUILD();
    Cache cache(32 * 1024, 8);
    cache.insert(0x1000);
    for (auto &l : check::Access::lines(cache)) {
        if (l.valid)
            l.lruStamp = check::Access::lruStamp(cache) + 100;
    }
    EXPECT_DEATH(check::auditCache(cache, 3, "cache"), "lruStamp");
}

TEST(InvariantDeath, ArbiterPriorityOrderViolated)
{
    REQUIRE_CHECKED_BUILD();
    QueuedArbiter arb(16);
    arb.enqueue(request(ReqType::DemandLoad, 0x1000, 1));
    arb.enqueue(request(ReqType::ContentPrefetch, 0x2000, 2));
    // Reorder: the demand is moved into the content-prefetch class,
    // so it would be served behind speculative traffic.
    auto &demands = check::Access::classQueue(arb, 0);
    auto &contents = check::Access::classQueue(arb, 2);
    contents.push_back(demands.front());
    demands.pop_front();
    EXPECT_DEATH(check::auditArbiter(arb, "arb"), "priority");
}

TEST(InvariantDeath, ArbiterQueueConservationBroken)
{
    REQUIRE_CHECKED_BUILD();
    QueuedArbiter arb(16);
    arb.enqueue(request(ReqType::DemandLoad, 0x1000, 1));
    arb.enqueue(request(ReqType::StridePrefetch, 0x2000, 2));
    // Vanish a request without going through dequeue/displace/extract:
    // the conservation ledger can no longer balance.
    check::Access::classQueue(arb, 1).pop_back();
    check::Access::totalRef(arb) -= 1;
    EXPECT_DEATH(check::auditArbiter(arb, "arb"), "enqueuedCount");
}

TEST(InvariantDeath, TlbEntryWithoutPageTableBacking)
{
    REQUIRE_CHECKED_BUILD();
    BackingStore store;
    FrameAllocator frames(0, 256, /*scatter=*/false, 1);
    PageTable pt(store, frames);
    pt.map(0x10000000, 0x00400000);
    Tlb tlb(64, 4);
    // Fabricate a translation for a page the table never mapped.
    check::Access::corruptTlbEntry(tlb, 0,
                                   pageNumber(0x30000000), 0x00700000);
    EXPECT_DEATH(check::auditTlb(tlb, pt, "tlb"), "has_value");
}

TEST(InvariantDeath, CycleArithmeticUnderflow)
{
    REQUIRE_CHECKED_BUILD();
    // The typed helper must refuse a reversed subtraction instead of
    // producing a ~2^64-cycle latency.
    EXPECT_DEATH((void)cyclesSince(10, 20), "now >= then");
    EXPECT_DEATH((void)cyclesUntil(10, 20), "deadline >= now");
}
