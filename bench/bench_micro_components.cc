/**
 * @file
 * google-benchmark microbenchmarks of the hot simulator components:
 * the VAM line scan (the operation the paper's hardware performs on
 * every UL2 fill), cache lookups, TLB lookups, the prefetcher
 * training paths, and end-to-end simulated uops per second.
 */

#include <benchmark/benchmark.h>

#include <cstring>

#include "core/vam.hh"
#include "cpu/gshare.hh"
#include "memsys/cache.hh"
#include "prefetch/markov_prefetcher.hh"
#include "prefetch/stride_prefetcher.hh"
#include "sim/simulator.hh"
#include "vm/tlb.hh"

using namespace cdp;

static void
BM_VamScanLine(benchmark::State &state)
{
    Vam vam(VamConfig{8, 4, 1, static_cast<unsigned>(state.range(0))});
    std::uint8_t line[lineBytes];
    Rng rng(1);
    for (auto &b : line)
        b = static_cast<std::uint8_t>(rng.next32());
    const std::uint32_t ptr = 0x10345678;
    std::memcpy(line + 8, &ptr, 4);
    for (auto _ : state) {
        auto v = vam.scanLine(line, 0x10000008);
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VamScanLine)->Arg(1)->Arg(2)->Arg(4);

static void
BM_CacheLookupHit(benchmark::State &state)
{
    Cache cache(1024 * 1024, 8);
    for (Addr a = 0; a < 1024 * 1024; a += lineBytes)
        cache.insert(a);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(a));
        a = (a + lineBytes) & (1024 * 1024 - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupHit);

static void
BM_TlbLookup(benchmark::State &state)
{
    Tlb tlb(64, 4);
    for (Addr p = 0; p < 64; ++p)
        tlb.insert(p << pageShift, p << pageShift);
    Addr p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(p << pageShift));
        p = (p + 1) & 63;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup);

static void
BM_StrideObserve(benchmark::State &state)
{
    StridePrefetcher pf(256, 2, 2);
    Addr a = 0x10000000;
    for (auto _ : state) {
        auto v = pf.observeMiss(0x400, a);
        benchmark::DoNotOptimize(v);
        a += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StrideObserve);

static void
BM_MarkovObserve(benchmark::State &state)
{
    MarkovPrefetcher pf(512 * 1024, 16, 4);
    Rng rng(3);
    for (auto _ : state) {
        auto v = pf.observeMiss(0, (rng.next32() & 0xffffff) & ~63u);
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MarkovObserve);

static void
BM_GshareUpdate(benchmark::State &state)
{
    Gshare bp(16384);
    Rng rng(9);
    for (auto _ : state)
        benchmark::DoNotOptimize(bp.update(0x400, rng.chance(0.6)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GshareUpdate);

static void
BM_EndToEndSimulation(benchmark::State &state)
{
    for (auto _ : state) {
        SimConfig cfg;
        cfg.workload = "b2c";
        cfg.warmupUops = 1'000;
        cfg.measureUops = 20'000;
        Simulator sim(cfg);
        benchmark::DoNotOptimize(sim.run().ipc);
    }
    state.SetItemsProcessed(state.iterations() * 21'000);
    state.SetLabel("simulated uops/s in items/s");
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
