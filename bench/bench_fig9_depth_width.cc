/**
 * @file
 * Figure 9: speedup versus prefetch width (prev/next lines) for
 * depth thresholds {3, 5, 9}, with and without path reinforcement.
 *
 * Paper findings to reproduce in shape:
 *  - previous-line prefetching adds nothing on average;
 *  - without reinforcement, deeper thresholds do better;
 *  - with reinforcement the ordering reverses (depth 3 best) and the
 *    overall best point is reinforcement + depth 3 + p0.n3 (12.6%),
 *    ~1.3% above the best no-reinforcement configuration.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    const std::pair<unsigned, unsigned> widths[] = {
        {0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 0}, {1, 1}};
    const unsigned depths[] = {3, 5, 9};

    printHeader(
        "Figure 9: speedup vs prefetch depth and next-line count",
        "prev-line adds nothing; without reinforcement deeper is "
        "better; with reinforcement depth 3 + p0.n3 wins (~12.6%)",
        base);

    // Baselines (stride only) per workload, reused across configs.
    std::vector<RunResult> baselines;
    for (const auto &name : benchSet()) {
        SimConfig c = base;
        c.workload = name;
        c.cdp.enabled = false;
        baselines.push_back(runSim(c));
    }

    std::printf("%-8s", "width");
    for (unsigned d : depths)
        std::printf(" %11s.%u", "depth-nr", d);
    for (unsigned d : depths)
        std::printf(" %11s.%u", "depth-rf", d);
    std::printf("\n");

    double best = 0.0;
    std::string best_label;
    for (const auto &[prev, next] : widths) {
        std::printf("p%u.n%-4u", prev, next);
        for (bool reinforce : {false, true}) {
            for (unsigned depth : depths) {
                std::vector<double> sp;
                const auto set = benchSet();
                for (std::size_t i = 0; i < set.size(); ++i) {
                    SimConfig c = base;
                    c.workload = set[i];
                    c.cdp.prevLines = prev;
                    c.cdp.nextLines = next;
                    c.cdp.depthThreshold = depth;
                    c.cdp.reinforce = reinforce;
                    const RunResult r = runSim(c);
                    sp.push_back(r.speedupOver(baselines[i]));
                }
                const double avg = mean(sp);
                std::printf(" %12.4f", avg);
                if (avg > best) {
                    best = avg;
                    char lab[64];
                    std::snprintf(lab, sizeof(lab),
                                  "p%u.n%u depth %u %s", prev, next,
                                  depth,
                                  reinforce ? "reinforced"
                                            : "no-reinforcement");
                    best_label = lab;
                }
            }
        }
        std::printf("\n");
    }

    std::printf("\nbest configuration: %s -> average speedup %s\n",
                best_label.c_str(), pct(best).c_str());
    return 0;
}
