/**
 * @file
 * Figure 9: speedup versus prefetch width (prev/next lines) for
 * depth thresholds {3, 5, 9}, with and without path reinforcement.
 *
 * Paper findings to reproduce in shape:
 *  - previous-line prefetching adds nothing on average;
 *  - without reinforcement, deeper thresholds do better;
 *  - with reinforcement the ordering reverses (depth 3 best) and the
 *    overall best point is reinforcement + depth 3 + p0.n3 (12.6%),
 *    ~1.3% above the best no-reinforcement configuration.
 *
 * Fan-out: the per-workload stride-only baselines run as one batch,
 * then the full width x reinforce x depth x workload grid as another.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    const std::pair<unsigned, unsigned> widths[] = {
        {0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 0}, {1, 1}};
    const unsigned depths[] = {3, 5, 9};

    printHeader(
        "Figure 9: speedup vs prefetch depth and next-line count",
        "prev-line adds nothing; without reinforcement deeper is "
        "better; with reinforcement depth 3 + p0.n3 wins (~12.6%)",
        base);

    const auto set = benchSet();

    // Baselines (stride only) per workload, reused across configs.
    std::vector<runner::SimJob> base_jobs;
    for (const auto &name : set) {
        runner::SimJob j;
        j.cfg = base;
        j.cfg.workload = name;
        j.cfg.cdp.enabled = false;
        j.tag = name + "/stride-only";
        base_jobs.push_back(j);
    }
    const std::vector<RunResult> baselines = runBatch(base_jobs);

    std::printf("%-8s", "width");
    for (unsigned d : depths)
        std::printf(" %11s.%u", "depth-nr", d);
    for (unsigned d : depths)
        std::printf(" %11s.%u", "depth-rf", d);
    std::printf("\n");

    // Grid order (outer to inner): width, reinforce, depth, workload
    // — matching the serial print order so results land in place.
    const std::size_t nw = std::size(widths);
    const std::size_t nd = std::size(depths);
    std::vector<runner::SimJob> jobs;
    jobs.reserve(nw * 2 * nd * set.size());
    for (const auto &[prev, next] : widths) {
        for (bool reinforce : {false, true}) {
            for (unsigned depth : depths) {
                for (const auto &name : set) {
                    runner::SimJob j;
                    j.cfg = base;
                    j.cfg.workload = name;
                    j.cfg.cdp.prevLines = prev;
                    j.cfg.cdp.nextLines = next;
                    j.cfg.cdp.depthThreshold = depth;
                    j.cfg.cdp.reinforce = reinforce;
                    char tag[64];
                    std::snprintf(tag, sizeof(tag),
                                  "p%u.n%u/d%u/%s/%s", prev, next,
                                  depth, reinforce ? "rf" : "nr",
                                  name.c_str());
                    j.tag = tag;
                    jobs.push_back(j);
                }
            }
        }
    }
    const std::vector<RunResult> res = runBatch(jobs);

    runner::BenchReport report("fig9_depth_width");
    double best = 0.0;
    std::string best_label;
    std::size_t idx = 0;
    for (const auto &[prev, next] : widths) {
        std::printf("p%u.n%-4u", prev, next);
        for (bool reinforce : {false, true}) {
            for (unsigned depth : depths) {
                std::vector<double> sp;
                for (std::size_t i = 0; i < set.size(); ++i)
                    sp.push_back(
                        res[idx++].speedupOver(baselines[i]));
                const double avg = mean(sp);
                std::printf(" %12.4f", avg);
                char tag[48];
                std::snprintf(tag, sizeof(tag), "p%u.n%u/d%u/%s",
                              prev, next, depth,
                              reinforce ? "rf" : "nr");
                report.row(tag)
                    .add("prev_lines", prev)
                    .add("next_lines", next)
                    .add("depth_threshold", depth)
                    .add("reinforce", reinforce ? 1 : 0)
                    .add("avg_speedup", avg);
                if (avg > best) {
                    best = avg;
                    char lab[64];
                    std::snprintf(lab, sizeof(lab),
                                  "p%u.n%u depth %u %s", prev, next,
                                  depth,
                                  reinforce ? "reinforced"
                                            : "no-reinforcement");
                    best_label = lab;
                }
            }
        }
        std::printf("\n");
    }

    std::printf("\nbest configuration: %s -> average speedup %s\n",
                best_label.c_str(), pct(best).c_str());
    report.write(simRunner());
    return 0;
}
