/**
 * @file
 * Section 4.2.2: contribution of TLB prefetching.
 *
 * The paper doubles the DTLB from 64 to 1024 entries; the content
 * prefetcher's speedup barely moves (12.6% -> 12.3%), showing that
 * implicit TLB prefetching is a minor contributor and that a bigger
 * TLB cannot replace the content prefetcher.
 *
 * Every TLB size x workload pair fans out through runPairs().
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    printHeader(
        "Section 4.2.2: DTLB size sweep (64..1024 entries)",
        "speedup nearly flat across TLB sizes (12.6% -> 12.3%): TLB "
        "prefetching is a minor contributor",
        base);

    std::printf("%-12s %12s %14s %14s\n", "dtlb", "avg-speedup",
                "demand-walks", "prefetch-walks");

    const unsigned sizes[] = {64u, 128u, 256u, 512u, 1024u};
    const auto set = benchSet();

    std::vector<SimConfig> cfgs;
    for (unsigned entries : sizes) {
        for (const auto &name : set) {
            SimConfig c = base;
            c.workload = name;
            c.mem.dtlbEntries = entries;
            cfgs.push_back(c);
        }
    }
    const std::vector<PairResult> pairs = runPairs(cfgs);

    runner::BenchReport report("tlb_sweep");
    std::size_t idx = 0;
    for (unsigned entries : sizes) {
        std::vector<double> sp;
        std::uint64_t dwalks = 0, pwalks = 0;
        for (std::size_t i = 0; i < set.size(); ++i) {
            const PairResult &pr = pairs[idx++];
            sp.push_back(pr.speedup());
            dwalks += pr.withCdp.mem.demandWalks;
            pwalks += pr.withCdp.mem.prefetchWalks;
        }
        std::printf("%-12u %12s %14llu %14llu\n", entries,
                    pct(mean(sp)).c_str(),
                    static_cast<unsigned long long>(dwalks),
                    static_cast<unsigned long long>(pwalks));
        report.row("dtlb" + std::to_string(entries))
            .add("dtlb_entries", entries)
            .add("avg_speedup", mean(sp))
            .add("demand_walks", dwalks)
            .add("prefetch_walks", pwalks);
    }

    std::printf("\nshape check: the speedup column stays roughly "
                "constant while demand walks\nshrink with TLB size -- "
                "the content prefetcher is not just a TLB warmer.\n");
    report.write(simRunner());
    return 0;
}
