/**
 * @file
 * Section 3.5 limit study: bad prefetches injected on idle bus
 * cycles force evictions and pollute the UL2.
 *
 * The paper measures an average ~3% performance reduction from a
 * zero-accuracy prefetcher that fills directly into the cache,
 * motivating the need for a reasonably accurate predictor.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);
    base.cdp.enabled = false; // isolate the injection effect

    printHeader(
        "Section 3.5 limit study: bad-prefetch injection",
        "a zero-accuracy prefetcher filling the UL2 on idle bus "
        "cycles costs ~3% on average",
        base);

    std::printf("%-16s %10s %10s %10s %12s\n", "benchmark",
                "clean-ipc", "dirty-ipc", "slowdown", "injected");

    std::vector<double> slowdowns;
    for (const auto &name : benchSet()) {
        SimConfig clean = base;
        clean.workload = name;
        SimConfig dirty = clean;
        dirty.pollution.enabled = true;

        const RunResult rc = runSim(clean);
        const RunResult rd = runSim(dirty);
        const double slow = rd.speedupOver(rc);
        slowdowns.push_back(slow);
        std::printf("%-16s %10.4f %10.4f %10s %12llu\n", name.c_str(),
                    rc.ipc, rd.ipc, pct(slow).c_str(),
                    static_cast<unsigned long long>(
                        rd.mem.pollutionInjected));
    }

    std::printf("\naverage change from pollution: %s (paper: ~-3%%)\n",
                pct(mean(slowdowns)).c_str());
    return 0;
}
