/**
 * @file
 * Section 3.5 limit study: bad prefetches injected on idle bus
 * cycles force evictions and pollute the UL2.
 *
 * The paper measures an average ~3% performance reduction from a
 * zero-accuracy prefetcher that fills directly into the cache,
 * motivating the need for a reasonably accurate predictor.
 *
 * Clean/dirty runs per workload fan out as one batch.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);
    base.cdp.enabled = false; // isolate the injection effect

    printHeader(
        "Section 3.5 limit study: bad-prefetch injection",
        "a zero-accuracy prefetcher filling the UL2 on idle bus "
        "cycles costs ~3% on average",
        base);

    std::printf("%-16s %10s %10s %10s %12s\n", "benchmark",
                "clean-ipc", "dirty-ipc", "slowdown", "injected");

    const auto set = benchSet();
    std::vector<runner::SimJob> jobs;
    for (const auto &name : set) {
        runner::SimJob clean;
        clean.cfg = base;
        clean.cfg.workload = name;
        clean.tag = name + "/clean";
        jobs.push_back(clean);

        runner::SimJob dirty = clean;
        dirty.cfg.pollution.enabled = true;
        dirty.tag = name + "/dirty";
        jobs.push_back(dirty);
    }
    const std::vector<RunResult> res = runBatch(jobs);

    runner::BenchReport report("pollution_limit");
    std::vector<double> slowdowns;
    for (std::size_t i = 0; i < set.size(); ++i) {
        const RunResult &rc = res[2 * i];
        const RunResult &rd = res[2 * i + 1];
        const double slow = rd.speedupOver(rc);
        slowdowns.push_back(slow);
        std::printf("%-16s %10.4f %10.4f %10s %12llu\n",
                    set[i].c_str(), rc.ipc, rd.ipc, pct(slow).c_str(),
                    static_cast<unsigned long long>(
                        rd.mem.pollutionInjected));
        report.row(set[i])
            .add("clean_ipc", rc.ipc)
            .add("dirty_ipc", rd.ipc)
            .add("slowdown", slow)
            .add("injected", rd.mem.pollutionInjected);
    }

    std::printf("\naverage change from pollution: %s (paper: ~-3%%)\n",
                pct(mean(slowdowns)).c_str());
    report.write(simRunner());
    return 0;
}
