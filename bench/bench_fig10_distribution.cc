/**
 * @file
 * Figure 10: distribution of UL2 load requests that would have missed
 * without prefetching — stride full/partial masks, content
 * full/partial masks, and remaining misses — with each benchmark's
 * individual speedup overlaid.
 *
 * Paper observations reproduced here: the content prefetcher fully
 * eliminates ~43% and at least partially masks ~60% of the non-
 * stride-based misses, and of the content prefetches that masked
 * anything, ~72% fully masked the load (validating the on-chip
 * placement); individual speedups range 1.4%..39.5%.
 *
 * The baseline/with-CDP pair per workload fans out via runPairs().
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    printHeader(
        "Figure 10: UL2 load-request distribution + per-benchmark "
        "speedup",
        "CDP fully masks ~43% / touches ~60% of non-stride misses; "
        "72% of masking content prefetches are full masks",
        base);

    std::printf("%-16s %9s %9s %9s %9s %9s %10s\n", "benchmark",
                "str-full", "str-part", "cpf-full", "cpf-part",
                "ul2-miss", "speedup");

    std::uint64_t tot_cpf_full = 0, tot_cpf_part = 0;
    std::uint64_t tot_nonstride = 0, tot_cpf_any = 0;
    std::vector<double> speedups;

    const auto names = fullSuite()
                           ? benchSet()
                           : [] {
                                 std::vector<std::string> all;
                                 for (const auto &s : table2Suite())
                                     all.push_back(s.name);
                                 return all;
                             }();

    std::vector<SimConfig> cfgs;
    for (const auto &name : names) {
        SimConfig c = base;
        c.workload = name;
        cfgs.push_back(c);
    }
    const std::vector<PairResult> pairs = runPairs(cfgs);

    runner::BenchReport report("fig10_distribution");
    for (std::size_t i = 0; i < names.size(); ++i) {
        const PairResult &pr = pairs[i];
        const auto &m = pr.withCdp.mem;

        const std::uint64_t would_miss =
            m.maskFullStride + m.maskPartialStride + m.maskFullCdp +
            m.maskPartialCdp + m.l2DemandMisses;
        auto share = [&](std::uint64_t v) {
            return would_miss
                       ? 100.0 * static_cast<double>(v) / would_miss
                       : 0.0;
        };
        const double sp = pr.speedup();
        speedups.push_back(sp);
        std::printf("%-16s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% "
                    "%10s\n",
                    names[i].c_str(), share(m.maskFullStride),
                    share(m.maskPartialStride), share(m.maskFullCdp),
                    share(m.maskPartialCdp), share(m.l2DemandMisses),
                    pct(sp).c_str());
        report.row(names[i])
            .addResult(pr.withCdp)
            .add("mask_full_stride", m.maskFullStride)
            .add("mask_partial_stride", m.maskPartialStride)
            .add("mask_full_cdp", m.maskFullCdp)
            .add("mask_partial_cdp", m.maskPartialCdp)
            .add("speedup", sp);

        tot_cpf_full += m.maskFullCdp;
        tot_cpf_part += m.maskPartialCdp;
        tot_cpf_any += m.maskFullCdp + m.maskPartialCdp;
        tot_nonstride += m.maskFullCdp + m.maskPartialCdp +
                         m.l2DemandMisses;
    }

    std::printf("\naggregates over the suite:\n");
    if (tot_nonstride) {
        std::printf("  CDP fully eliminates %.0f%% of non-stride "
                    "misses (paper: ~43%%)\n",
                    100.0 * tot_cpf_full / tot_nonstride);
        std::printf("  CDP at least partially masks %.0f%% of "
                    "non-stride misses (paper: ~60%%)\n",
                    100.0 * tot_cpf_any / tot_nonstride);
    }
    if (tot_cpf_any) {
        std::printf("  of masking content prefetches, %.0f%% are "
                    "full masks (paper: 72%%)\n",
                    100.0 * tot_cpf_full / tot_cpf_any);
    }
    std::printf("  average speedup %s, range %s .. %s (paper: 12.6%%"
                " avg, 1.4%%..39.5%%)\n",
                pct(mean(speedups)).c_str(),
                pct(*std::min_element(speedups.begin(),
                                      speedups.end()))
                    .c_str(),
                pct(*std::max_element(speedups.begin(),
                                      speedups.end()))
                    .c_str());
    report.write(simRunner());
    return 0;
}
