/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Every bench regenerates one table or figure from the paper. By
 * default the benches run a representative 5-benchmark subset of the
 * Table 2 suite at reduced uop counts so the whole harness finishes
 * in minutes; set CDP_FULL_SUITE=1 for all 15 benchmarks and
 * CDP_SCALE=<f> to scale run lengths.
 */

#ifndef CDP_BENCH_COMMON_HH
#define CDP_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/simulator.hh"

namespace cdpbench
{

/** Apply CDP_SCALE and any argv overrides to @p cfg. */
void applyEnv(cdp::SimConfig &cfg, int argc, char **argv);

/** The benchmark names to sweep (subset, or all 15 with env). */
std::vector<std::string> benchSet();

/** True when CDP_FULL_SUITE is set. */
bool fullSuite();

/** Run one simulation to completion. */
cdp::RunResult runSim(const cdp::SimConfig &cfg);

/**
 * Run warm-up + measure as a single counted phase (no counter reset).
 * Used by the tuning benches: coverage/accuracy are whole-run
 * feedback metrics, and resetting at the warm-up boundary would
 * credit measure-phase uses of warm-up-issued prefetches with no
 * matching issue ("accuracy" above 100%).
 */
cdp::RunResult runWhole(const cdp::SimConfig &cfg);

/**
 * Run @p cfg with the content prefetcher disabled (the paper's
 * stride-enhanced baseline) and enabled, same workload and seed.
 */
struct PairResult
{
    cdp::RunResult baseline;
    cdp::RunResult withCdp;
    double speedup() const
    {
        return withCdp.speedupOver(baseline);
    }
};

PairResult runPair(cdp::SimConfig cfg);

/** Arithmetic mean. */
double mean(const std::vector<double> &v);

/** Print the standard bench header with the machine summary. */
void printHeader(const std::string &title,
                 const std::string &paper_expectation,
                 const cdp::SimConfig &cfg);

/** "12.6%"-style percentage formatting of a speedup ratio. */
std::string pct(double ratio);

/**
 * Adjusted coverage/accuracy per Figure 7: content prefetches that
 * the stride prefetcher also issued are subtracted from both the
 * useful and issued counts; coverage is measured against the miss
 * count of a no-prefetch run of the same workload.
 */
struct CoverageAccuracy
{
    double coverage = 0.0;
    double accuracy = 0.0;
};

CoverageAccuracy
adjustedCoverageAccuracy(const cdp::RunResult &cdp_run,
                         std::uint64_t misses_without_prefetching);

/**
 * Misses of @p workload with every prefetcher off (the denominator
 * of the coverage metric). Results are memoized per workload/config
 * size within one process.
 */
std::uint64_t missesWithoutPrefetching(const cdp::SimConfig &base,
                                       const std::string &workload);

} // namespace cdpbench

#endif // CDP_BENCH_COMMON_HH
