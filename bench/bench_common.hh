/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Every bench regenerates one table or figure from the paper. By
 * default the benches run a representative 5-benchmark subset of the
 * Table 2 suite at reduced uop counts so the whole harness finishes
 * in minutes; set CDP_FULL_SUITE=1 for all 15 benchmarks and
 * CDP_SCALE=<f> to scale run lengths.
 *
 * Independent simulations fan out over the process-wide SimRunner
 * (src/runner): pass `-jN` / `--jobs=N` (or CDP_JOBS=N) to use N
 * worker threads. Results always come back in submission order, so a
 * bench's stdout and its BENCH_<name>.json are byte-identical at any
 * job count; only stderr progress and the report's single "harness"
 * line depend on scheduling.
 */

#ifndef CDP_BENCH_COMMON_HH
#define CDP_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "runner/report.hh"
#include "runner/sim_runner.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

namespace cdpbench
{

/**
 * Apply CDP_SCALE and any argv overrides to @p cfg. A `-jN` /
 * `--jobs=N` argument is consumed here and sets the worker count of
 * the shared runner (must precede the first fan-out).
 */
void applyEnv(cdp::SimConfig &cfg, int argc, char **argv);

/** The benchmark names to sweep (subset, or all 15 with env). */
std::vector<std::string> benchSet();

/** True when CDP_FULL_SUITE is set. */
bool fullSuite();

/**
 * The process-wide experiment runner. Created on first use with the
 * worker count from `-j` / CDP_JOBS / hardware_concurrency.
 */
cdp::runner::SimRunner &simRunner();

/**
 * Request a worker count for the shared runner; must be called
 * before the first simRunner() use (applyEnv does this for `-j`).
 */
void setRunnerJobs(unsigned jobs);

/** Run one simulation to completion (callable from worker threads). */
cdp::RunResult runSim(const cdp::SimConfig &cfg);

/**
 * Run warm-up + measure as a single counted phase (no counter reset).
 * Used by the tuning benches: coverage/accuracy are whole-run
 * feedback metrics, and resetting at the warm-up boundary would
 * credit measure-phase uses of warm-up-issued prefetches with no
 * matching issue ("accuracy" above 100%).
 */
cdp::RunResult runWhole(const cdp::SimConfig &cfg);

/**
 * Fan @p jobs out on the shared runner; results in submission order.
 */
std::vector<cdp::RunResult>
runBatch(const std::vector<cdp::runner::SimJob> &jobs);

/**
 * Run @p cfg with the content prefetcher disabled (the paper's
 * stride-enhanced baseline) and enabled, same workload and seed.
 */
struct PairResult
{
    cdp::RunResult baseline;
    cdp::RunResult withCdp;
    double speedup() const
    {
        return withCdp.speedupOver(baseline);
    }
};

PairResult runPair(cdp::SimConfig cfg);

/**
 * Fan out baseline/with-CDP pairs for every config (2N sims on the
 * shared runner); pair i corresponds to @p cfgs[i].
 */
std::vector<PairResult> runPairs(const std::vector<cdp::SimConfig> &cfgs);

/**
 * One warm-fork sweep (DESIGN.md §11) and its cold-equivalent
 * control: the cold leg warms a fresh machine per config and switches
 * the cdp configuration at the quiesce point; the fork leg warms
 * once, checkpoints, and restores every config from the shared
 * checkpoint. The two legs are defined to be byte-identical —
 * `identical` is the equivalence gate, the wall-clock pair is the
 * payoff (N warm-ups collapsed into one).
 */
struct WarmForkSweep
{
    std::vector<cdp::RunResult> cold;   //!< straight leg, per config
    std::vector<cdp::RunResult> forked; //!< restored leg, per config
    bool identical = false; //!< cycles + stats dumps byte-equal
    double coldSeconds = 0.0; //!< runner wall-clock of the cold leg
    double forkSeconds = 0.0; //!< warm-up + checkpoint + all forks

    double
    speedup() const
    {
        return forkSeconds > 0.0 ? coldSeconds / forkSeconds : 0.0;
    }
};

/**
 * Run @p sweep (one cdp.* config per entry) over @p base both cold
 * and warm-forked on the shared runner. Wall-clock comes from the
 * runner's own telemetry, so the simulated results stay free of
 * scheduling-dependent state.
 */
WarmForkSweep runWarmForkSweep(const cdp::SimConfig &base,
                               const std::vector<cdp::CdpConfig> &sweep);

/** Arithmetic mean. */
double mean(const std::vector<double> &v);

/** Print the standard bench header with the machine summary. */
void printHeader(const std::string &title,
                 const std::string &paper_expectation,
                 const cdp::SimConfig &cfg);

/** "12.6%"-style percentage formatting of a speedup ratio. */
std::string pct(double ratio);

/**
 * Adjusted coverage/accuracy per Figure 7: content prefetches that
 * the stride prefetcher also issued are subtracted from both the
 * useful and issued counts; coverage is measured against the miss
 * count of a no-prefetch run of the same workload.
 */
struct CoverageAccuracy
{
    double coverage = 0.0;
    double accuracy = 0.0;
};

CoverageAccuracy
adjustedCoverageAccuracy(const cdp::RunResult &cdp_run,
                         std::uint64_t misses_without_prefetching);

/**
 * Misses of @p workload with every prefetcher off (the denominator
 * of the coverage metric). Memoized per process behind a
 * shared_future keyed on the full relevant configuration (workload,
 * seed, run lengths, cache/TLB geometry): safe to call from any
 * worker thread, and concurrent requests for the same baseline run
 * the simulation exactly once while the rest block on the shared
 * result.
 */
std::uint64_t missesWithoutPrefetching(const cdp::SimConfig &base,
                                       const std::string &workload);

/**
 * Prime the missesWithoutPrefetching memo for every name in
 * @p workloads in parallel, so a following sweep doesn't serialize
 * its first configuration behind baseline computation.
 */
void prewarmBaselines(const cdp::SimConfig &base,
                      const std::vector<std::string> &workloads);

/**
 * Number of baseline simulations actually executed by
 * missesWithoutPrefetching (memo misses); test support.
 */
std::uint64_t baselineComputations();

} // namespace cdpbench

#endif // CDP_BENCH_COMMON_HH
