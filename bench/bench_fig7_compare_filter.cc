/**
 * @file
 * Figure 7: stride-adjusted prefetch coverage and accuracy across
 * compare/filter bit combinations ("08.0" ... "12.4").
 *
 * The paper tunes the VAM predictor with these curves and picks
 * 8 compare bits + 4 filter bits as the best coverage/accuracy
 * trade-off: accuracy rises with more compare bits while coverage
 * falls (the prefetchable range halves per added bit).
 *
 * Fan-out: the no-prefetch baselines are prewarmed (one shared
 * future-backed run per workload), then every config x workload cell
 * is an independent job computing its own coverage/accuracy.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    // The paper's swept configurations (compare.filter).
    const std::pair<unsigned, unsigned> configs[] = {
        {8, 0},  {8, 2},  {8, 4},  {8, 6},  {8, 8},  {9, 0},  {9, 1},
        {9, 3},  {9, 5},  {9, 7},  {10, 0}, {10, 2}, {10, 4}, {10, 6},
        {11, 0}, {11, 1}, {11, 3}, {11, 5}, {12, 0}, {12, 2}, {12, 4}};

    printHeader(
        "Figure 7: adjusted coverage/accuracy vs compare.filter bits",
        "coverage falls and accuracy rises as compare bits grow; "
        "8.4 is the chosen trade-off",
        base);

    std::printf("%-8s %12s %12s\n", "config", "adj-coverage",
                "adj-accuracy");

    const auto set = benchSet();
    prewarmBaselines(base, set);

    const std::size_t ncfg = std::size(configs);
    struct Cell
    {
        double coverage = 0.0;
        double accuracy = 0.0;
    };
    const auto cells = simRunner().map(
        ncfg * set.size(), [&](std::size_t idx) {
            const auto &[cb, fb] = configs[idx / set.size()];
            const std::string &name = set[idx % set.size()];
            SimConfig c = base;
            c.workload = name;
            c.cdp.vam.compareBits = cb;
            c.cdp.vam.filterBits = fb;
            const RunResult r = runWhole(c);
            const auto ca = adjustedCoverageAccuracy(
                r, missesWithoutPrefetching(base, name));
            return Cell{ca.coverage, ca.accuracy};
        });

    runner::BenchReport report("fig7_compare_filter");
    double best_cov84 = 0, best_acc84 = 0;
    for (std::size_t ci = 0; ci < ncfg; ++ci) {
        const auto &[cb, fb] = configs[ci];
        std::vector<double> covs, accs;
        for (std::size_t wi = 0; wi < set.size(); ++wi) {
            covs.push_back(cells[ci * set.size() + wi].coverage);
            accs.push_back(cells[ci * set.size() + wi].accuracy);
        }
        const double cov = mean(covs), acc = mean(accs);
        std::printf("%02u.%-5u %11.1f%% %11.1f%%\n", cb, fb,
                    cov * 100.0, acc * 100.0);
        char tag[16];
        std::snprintf(tag, sizeof(tag), "%02u.%u", cb, fb);
        report.row(tag)
            .add("compare_bits", cb)
            .add("filter_bits", fb)
            .add("adj_coverage", cov)
            .add("adj_accuracy", acc);
        if (cb == 8 && fb == 4) {
            best_cov84 = cov;
            best_acc84 = acc;
        }
    }

    std::printf("\nchosen configuration 8.4: coverage %.1f%%, "
                "accuracy %.1f%%\n",
                best_cov84 * 100.0, best_acc84 * 100.0);
    report.write(simRunner());
    return 0;
}
