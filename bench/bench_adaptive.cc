/**
 * @file
 * Extension experiment: the Section 4.1 "future work" — adaptive
 * runtime tuning of the VAM parameters — versus the paper's fixed
 * hand-tuned 8.4.1.2 / p0.n3 configuration, and versus a deliberately
 * mis-tuned fixed configuration (12 compare bits, the "safe" end of
 * Figure 7) that the controller should be able to escape from.
 *
 * The three fixed-config runs per workload fan out as plain SimJobs;
 * the adaptive runs go through SimRunner::map because each needs the
 * live Simulator to read the controller's epoch count afterwards.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    printHeader(
        "Extension: adaptive VAM tuning (Section 4.1 future work)",
        "adaptive tuning should track the hand-tuned configuration "
        "and rescue a mis-tuned one",
        base);

    std::printf("%-16s %12s %12s %12s %10s\n", "benchmark",
                "hand-tuned", "mis-tuned", "adaptive", "epochs");

    const auto set = benchSet();

    std::vector<runner::SimJob> jobs;
    for (const auto &name : set) {
        runner::SimJob off;
        off.cfg = base;
        off.cfg.workload = name;
        off.cfg.cdp.enabled = false;
        off.tag = name + "/stride-only";
        jobs.push_back(off);

        runner::SimJob hand;
        hand.cfg = base;
        hand.cfg.workload = name;
        hand.tag = name + "/hand-tuned";
        jobs.push_back(hand);

        runner::SimJob mis;
        mis.cfg = base;
        mis.cfg.workload = name;
        mis.cfg.cdp.vam.compareBits = 12;
        mis.cfg.cdp.nextLines = 0;
        mis.tag = name + "/mis-tuned";
        jobs.push_back(mis);
    }
    const std::vector<RunResult> fixed = runBatch(jobs);

    struct AdaptiveRun
    {
        RunResult result;
        std::uint64_t epochs = 0;
    };
    const auto adaptive_runs =
        simRunner().map(set.size(), [&](std::size_t i) {
            SimConfig adapt = base; // start from the mis-tuned point
            adapt.workload = set[i];
            adapt.cdp.vam.compareBits = 12;
            adapt.cdp.nextLines = 0;
            adapt.adaptive.enabled = true;
            adapt.adaptive.epochPrefetches = 1024;
            Simulator as(adapt);
            AdaptiveRun run;
            run.result = as.run();
            run.epochs = as.memory().adaptiveCtl().epochsEvaluated();
            return run;
        });

    runner::BenchReport report("adaptive");
    std::vector<double> sp_hand, sp_mis, sp_adapt;
    for (std::size_t i = 0; i < set.size(); ++i) {
        const RunResult &rb = fixed[3 * i];
        const RunResult &rh = fixed[3 * i + 1];
        const RunResult &rm = fixed[3 * i + 2];
        const AdaptiveRun &ar = adaptive_runs[i];

        const double sh = rh.speedupOver(rb);
        const double sm = rm.speedupOver(rb);
        const double sa = ar.result.speedupOver(rb);
        sp_hand.push_back(sh);
        sp_mis.push_back(sm);
        sp_adapt.push_back(sa);
        std::printf("%-16s %12s %12s %12s %10llu\n", set[i].c_str(),
                    pct(sh).c_str(), pct(sm).c_str(), pct(sa).c_str(),
                    static_cast<unsigned long long>(ar.epochs));
        report.row(set[i])
            .add("speedup_hand", sh)
            .add("speedup_mistuned", sm)
            .add("speedup_adaptive", sa)
            .add("epochs", ar.epochs);
    }

    std::printf("\naverages: hand-tuned %s, mis-tuned %s, adaptive "
                "(from mis-tuned start) %s\n",
                pct(mean(sp_hand)).c_str(), pct(mean(sp_mis)).c_str(),
                pct(mean(sp_adapt)).c_str());
    std::printf("expected shape: adaptive recovers part of the gap "
                "between mis-tuned and hand-tuned.\n");
    report.write(simRunner());
    return 0;
}
