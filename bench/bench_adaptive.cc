/**
 * @file
 * Extension experiment: the Section 4.1 "future work" — adaptive
 * runtime tuning of the VAM parameters — versus the paper's fixed
 * hand-tuned 8.4.1.2 / p0.n3 configuration, and versus a deliberately
 * mis-tuned fixed configuration (12 compare bits, the "safe" end of
 * Figure 7) that the controller should be able to escape from.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    printHeader(
        "Extension: adaptive VAM tuning (Section 4.1 future work)",
        "adaptive tuning should track the hand-tuned configuration "
        "and rescue a mis-tuned one",
        base);

    std::printf("%-16s %12s %12s %12s %10s\n", "benchmark",
                "hand-tuned", "mis-tuned", "adaptive", "epochs");

    std::vector<double> sp_hand, sp_mis, sp_adapt;
    for (const auto &name : benchSet()) {
        SimConfig off = base;
        off.workload = name;
        off.cdp.enabled = false;
        const RunResult rb = runSim(off);

        SimConfig hand = base;
        hand.workload = name;
        const RunResult rh = runSim(hand);

        SimConfig mis = base;
        mis.workload = name;
        mis.cdp.vam.compareBits = 12;
        mis.cdp.nextLines = 0;
        const RunResult rm = runSim(mis);

        SimConfig adapt = mis; // start from the mis-tuned point
        adapt.adaptive.enabled = true;
        adapt.adaptive.epochPrefetches = 1024;
        Simulator as(adapt);
        const RunResult ra = as.run();

        const double sh = rh.speedupOver(rb);
        const double sm = rm.speedupOver(rb);
        const double sa = ra.speedupOver(rb);
        sp_hand.push_back(sh);
        sp_mis.push_back(sm);
        sp_adapt.push_back(sa);
        std::printf("%-16s %12s %12s %12s %10llu\n", name.c_str(),
                    pct(sh).c_str(), pct(sm).c_str(), pct(sa).c_str(),
                    static_cast<unsigned long long>(
                        as.memory().adaptiveCtl().epochsEvaluated()));
    }

    std::printf("\naverages: hand-tuned %s, mis-tuned %s, adaptive "
                "(from mis-tuned start) %s\n",
                pct(mean(sp_hand)).c_str(), pct(mean(sp_mis)).c_str(),
                pct(mean(sp_adapt)).c_str());
    std::printf("expected shape: adaptive recovers part of the gap "
                "between mis-tuned and hand-tuned.\n");
    return 0;
}
