/**
 * @file
 * Figure 8: adjusted coverage/accuracy across align-bit and
 * scan-step combinations with compare/filter fixed at 8.4.
 *
 * The paper finds that demanding full 4-byte alignment (2 align
 * bits) costs coverage because not all compilers align node bases;
 * 1 align bit with a 2-byte scan step ("8.4.1.2") is the chosen
 * trade-off.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    // The paper's grid: align bits {0,1,2,4} x scan step {1,2,4}.
    const std::pair<unsigned, unsigned> configs[] = {
        {0, 1}, {1, 1}, {2, 1}, {4, 1}, {0, 2}, {1, 2},
        {2, 2}, {4, 2}, {0, 4}, {1, 4}, {2, 4}, {4, 4}};

    printHeader(
        "Figure 8: adjusted coverage/accuracy vs align bits & scan step",
        "more align bits raise accuracy but cost coverage (not all "
        "compilers align); 8.4.1.2 is the chosen trade-off",
        base);

    std::printf("%-10s %12s %12s\n", "config", "adj-coverage",
                "adj-accuracy");

    for (const auto &[ab, step] : configs) {
        std::vector<double> covs, accs;
        for (const auto &name : benchSet()) {
            SimConfig c = base;
            c.workload = name;
            c.cdp.vam.alignBits = ab;
            c.cdp.vam.scanStep = step;
            const RunResult r = runWhole(c);
            const auto ca = adjustedCoverageAccuracy(
                r, missesWithoutPrefetching(base, name));
            covs.push_back(ca.coverage);
            accs.push_back(ca.accuracy);
        }
        std::printf("8.4.%u.%-4u %11.1f%% %11.1f%%\n", ab, step,
                    mean(covs) * 100.0, mean(accs) * 100.0);
    }

    std::printf("\nshape check: align=2 raises accuracy over align=1 "
                "at equal step,\nwhile coverage drops (alignment-"
                "noise allocations are missed).\n");
    return 0;
}
