/**
 * @file
 * Figure 8: adjusted coverage/accuracy across align-bit and
 * scan-step combinations with compare/filter fixed at 8.4.
 *
 * The paper finds that demanding full 4-byte alignment (2 align
 * bits) costs coverage because not all compilers align node bases;
 * 1 align bit with a 2-byte scan step ("8.4.1.2") is the chosen
 * trade-off.
 *
 * Fan-out mirrors Figure 7: prewarmed shared baselines, then one job
 * per config x workload cell.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    // The paper's grid: align bits {0,1,2,4} x scan step {1,2,4}.
    const std::pair<unsigned, unsigned> configs[] = {
        {0, 1}, {1, 1}, {2, 1}, {4, 1}, {0, 2}, {1, 2},
        {2, 2}, {4, 2}, {0, 4}, {1, 4}, {2, 4}, {4, 4}};

    printHeader(
        "Figure 8: adjusted coverage/accuracy vs align bits & scan step",
        "more align bits raise accuracy but cost coverage (not all "
        "compilers align); 8.4.1.2 is the chosen trade-off",
        base);

    std::printf("%-10s %12s %12s\n", "config", "adj-coverage",
                "adj-accuracy");

    const auto set = benchSet();
    prewarmBaselines(base, set);

    const std::size_t ncfg = std::size(configs);
    struct Cell
    {
        double coverage = 0.0;
        double accuracy = 0.0;
    };
    const auto cells = simRunner().map(
        ncfg * set.size(), [&](std::size_t idx) {
            const auto &[ab, step] = configs[idx / set.size()];
            const std::string &name = set[idx % set.size()];
            SimConfig c = base;
            c.workload = name;
            c.cdp.vam.alignBits = ab;
            c.cdp.vam.scanStep = step;
            const RunResult r = runWhole(c);
            const auto ca = adjustedCoverageAccuracy(
                r, missesWithoutPrefetching(base, name));
            return Cell{ca.coverage, ca.accuracy};
        });

    runner::BenchReport report("fig8_align_step");
    for (std::size_t ci = 0; ci < ncfg; ++ci) {
        const auto &[ab, step] = configs[ci];
        std::vector<double> covs, accs;
        for (std::size_t wi = 0; wi < set.size(); ++wi) {
            covs.push_back(cells[ci * set.size() + wi].coverage);
            accs.push_back(cells[ci * set.size() + wi].accuracy);
        }
        std::printf("8.4.%u.%-4u %11.1f%% %11.1f%%\n", ab, step,
                    mean(covs) * 100.0, mean(accs) * 100.0);
        char tag[24];
        std::snprintf(tag, sizeof(tag), "8.4.%u.%u", ab, step);
        report.row(tag)
            .add("align_bits", ab)
            .add("scan_step", step)
            .add("adj_coverage", mean(covs))
            .add("adj_accuracy", mean(accs));
    }

    std::printf("\nshape check: align=2 raises accuracy over align=1 "
                "at equal step,\nwhile coverage drops (alignment-"
                "noise allocations are missed).\n");
    report.write(simRunner());
    return 0;
}
