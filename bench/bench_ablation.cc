/**
 * @file
 * Ablation of the content prefetcher's design decisions (the knobs
 * DESIGN.md calls out), each measured as average speedup over the
 * stride-only baseline:
 *
 *   best            — reinforced, depth 3, p0.n3, walk-bypass on
 *   no-chaining     — depth threshold 1 (only demand-fill scans)
 *   no-width        — p0.n0 (chain only)
 *   no-reinforce    — chains die at the threshold (Fig. 4a)
 *   rescan-delta-2  — Figure 4(c) rescan throttling
 *   scan-walk-fills — page-walk fills scanned (Section 3.5 warns of
 *                     combinational explosion on page-table lines)
 *   scan-width      — width fills extend chains (geometric frontier)
 *
 * Baselines run as one batch, the variant grid as another.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    printHeader(
        "Ablation: contribution of each CDP design decision",
        "chaining, width, and reinforcement each contribute; "
        "scanning page-walk or width fills causes prefetch storms",
        base);

    struct Variant
    {
        const char *name;
        void (*apply)(SimConfig &);
    } variants[] = {
        {"best", [](SimConfig &) {}},
        {"no-chaining", [](SimConfig &c) { c.cdp.depthThreshold = 1; }},
        {"no-width", [](SimConfig &c) { c.cdp.nextLines = 0; }},
        {"no-reinforce", [](SimConfig &c) { c.cdp.reinforce = false; }},
        {"rescan-delta-2",
         [](SimConfig &c) { c.cdp.reinforceMinDelta = 2; }},
        {"scan-walk-fills",
         [](SimConfig &c) { c.cdp.scanPageWalkFills = true; }},
        {"scan-width",
         [](SimConfig &c) { c.cdp.scanWidthFills = true; }},
    };

    const auto set = benchSet();

    // Shared stride-only baselines.
    std::vector<runner::SimJob> base_jobs;
    for (const auto &name : set) {
        runner::SimJob j;
        j.cfg = base;
        j.cfg.workload = name;
        j.cfg.cdp.enabled = false;
        j.tag = name + "/stride-only";
        base_jobs.push_back(j);
    }
    const std::vector<RunResult> baselines = runBatch(base_jobs);

    std::vector<runner::SimJob> jobs;
    for (const auto &v : variants) {
        for (const auto &name : set) {
            runner::SimJob j;
            j.cfg = base;
            j.cfg.workload = name;
            v.apply(j.cfg);
            j.tag = std::string(v.name) + "/" + name;
            jobs.push_back(j);
        }
    }
    const std::vector<RunResult> res = runBatch(jobs);

    std::printf("%-16s %12s %14s %12s\n", "variant", "avg-speedup",
                "cdp-issued", "rescans");

    runner::BenchReport report("ablation");
    std::size_t idx = 0;
    for (const auto &v : variants) {
        std::vector<double> sp;
        std::uint64_t issued = 0, rescans = 0;
        for (std::size_t i = 0; i < set.size(); ++i) {
            const RunResult &r = res[idx++];
            sp.push_back(r.speedupOver(baselines[i]));
            issued += r.mem.cdpIssued;
            rescans += r.mem.rescans;
        }
        std::printf("%-16s %12s %14llu %12llu\n", v.name,
                    pct(mean(sp)).c_str(),
                    static_cast<unsigned long long>(issued),
                    static_cast<unsigned long long>(rescans));
        report.row(v.name)
            .add("avg_speedup", mean(sp))
            .add("cdp_issued", issued)
            .add("rescans", rescans);
    }
    report.write(simRunner());
    return 0;
}
