/**
 * @file
 * Figure 1: non-cumulative L2 MPTU trace on a 4-MByte UL2.
 *
 * The paper samples misses-per-1000-uops in windows of 200 K retired
 * uops to find the warm-up point: a sharp transient followed by a
 * steady state around 7.5 M uops. We reproduce the trace (scaled
 * windows) for one benchmark per suite, prefetchers disabled, on the
 * 4-MB cache the paper uses for this study.
 *
 * Each benchmark's whole 30-window chunked trace is one task on the
 * shared runner (a trace is stateful across windows, so windows
 * cannot split across workers); the matrix prints after the batch.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);
    base.mem.l2Bytes = 4 * 1024 * 1024; // the Figure 1 configuration
    base.cdp.enabled = false;
    base.stride.enabled = false;

    // One benchmark from each of the six workload suites, as in the
    // paper's readable subset.
    const std::vector<std::string> traced = {
        "b2c", "quake", "rc3", "tpcc-2", "verilog-func",
        "specjbb-vsnet"};

    const std::uint64_t window = base.measureUops / 20;
    const unsigned windows = 30;

    printHeader("Figure 1: non-cumulative MPTU trace, 4-MB UL2",
                "distinct cold-start transient, then steady-state "
                "MPTU; warm-up point ~1/6 of the run",
                base);

    std::printf("%-10s", "window");
    for (const auto &name : traced)
        std::printf(" %14s", name.c_str());
    std::printf("\n");

    const auto traces =
        simRunner().map(traced.size(), [&](std::size_t i) {
            SimConfig c = base;
            c.workload = traced[i];
            Simulator sim(c);
            std::vector<double> trace;
            trace.reserve(windows);
            for (unsigned w = 0; w < windows; ++w)
                trace.push_back(sim.runChunk(window).mptu());
            return trace;
        });

    for (unsigned w = 0; w < windows; ++w) {
        std::printf("%-10u", w * static_cast<unsigned>(window));
        for (std::size_t i = 0; i < traced.size(); ++i)
            std::printf(" %14.3f", traces[i][w]);
        std::printf("\n");
    }

    runner::BenchReport report("fig1_mptu");
    std::printf("\nsteady-state (mean of last 10 windows):\n");
    for (std::size_t i = 0; i < traced.size(); ++i) {
        double tail = 0;
        for (unsigned w = windows - 10; w < windows; ++w)
            tail += traces[i][w];
        tail /= 10.0;
        std::printf("  %-16s MPTU %.3f (first window %.3f, "
                    "transient ratio %.1fx)\n",
                    traced[i].c_str(), tail, traces[i][0],
                    tail > 0 ? traces[i][0] / tail : 0.0);
        report.row(traced[i])
            .add("steady_state_mptu", tail)
            .add("first_window_mptu", traces[i][0])
            .add("transient_ratio",
                 tail > 0 ? traces[i][0] / tail : 0.0);
    }
    std::printf("\nconclusion: statistics collection should start "
                "after the transient;\nthe simulator defaults its "
                "warm-up to ~40%% of the run accordingly.\n");
    report.write(simRunner());
    return 0;
}
