#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <numeric>

namespace cdpbench
{

using namespace cdp;

void
applyEnv(SimConfig &cfg, int argc, char **argv)
{
    cfg.parseArgs(argc, argv); // also applies CDP_SCALE
}

bool
fullSuite()
{
    const char *v = std::getenv("CDP_FULL_SUITE");
    return v && *v && std::string(v) != "0";
}

std::vector<std::string>
benchSet()
{
    if (fullSuite()) {
        std::vector<std::string> all;
        for (const auto &s : table2Suite())
            all.push_back(s.name);
        return all;
    }
    // A representative spread: near-resident (b2c), stream-heavy
    // (quake), OLTP hash chains (tpcc-2), netlist chase
    // (verilog-gate), and the Java object-graph mix (specjbb).
    return {"b2c", "quake", "tpcc-2", "verilog-gate",
            "specjbb-vsnet"};
}

RunResult
runSim(const SimConfig &cfg)
{
    Simulator sim(cfg);
    return sim.run();
}

RunResult
runWhole(const SimConfig &cfg)
{
    Simulator sim(cfg);
    return sim.runChunk(cfg.warmupUops + cfg.measureUops);
}

PairResult
runPair(SimConfig cfg)
{
    PairResult r;
    SimConfig off = cfg;
    off.cdp.enabled = false;
    r.baseline = runSim(off);
    cfg.cdp.enabled = true;
    r.withCdp = runSim(cfg);
    return r;
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

void
printHeader(const std::string &title,
            const std::string &paper_expectation, const SimConfig &cfg)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("--------------------------------------------------------------\n");
    std::printf("paper: %s\n", paper_expectation.c_str());
    std::printf("%s\n", cfg.summary().c_str());
    std::printf("suite: %s (%zu benchmarks)%s\n",
                fullSuite() ? "full Table 2" : "representative subset",
                benchSet().size(),
                fullSuite() ? "" : "  [CDP_FULL_SUITE=1 for all 15]");
    std::printf("==============================================================\n\n");
}

std::string
pct(double ratio)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f%%", (ratio - 1.0) * 100.0);
    return buf;
}

CoverageAccuracy
adjustedCoverageAccuracy(const RunResult &cdp_run,
                         std::uint64_t misses_without_prefetching)
{
    CoverageAccuracy ca;
    const auto &m = cdp_run.mem;
    const std::uint64_t useful_adj =
        m.cdpUseful > m.cdpUsefulOverlap
            ? m.cdpUseful - m.cdpUsefulOverlap
            : 0;
    const std::uint64_t issued_adj =
        m.cdpIssued > m.cdpIssuedOverlap
            ? m.cdpIssued - m.cdpIssuedOverlap
            : 0;
    if (misses_without_prefetching)
        ca.coverage = static_cast<double>(useful_adj) /
                      static_cast<double>(misses_without_prefetching);
    if (issued_adj)
        ca.accuracy = static_cast<double>(useful_adj) /
                      static_cast<double>(issued_adj);
    return ca;
}

std::uint64_t
missesWithoutPrefetching(const SimConfig &base,
                         const std::string &workload)
{
    static std::map<std::string, std::uint64_t> memo;
    const std::string key =
        workload + "/" + std::to_string(base.mem.l2Bytes) + "/" +
        std::to_string(base.measureUops);
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;

    SimConfig cfg = base;
    cfg.workload = workload;
    cfg.cdp.enabled = false;
    cfg.stride.enabled = false;
    cfg.markov.enabled = false;
    const RunResult r = runWhole(cfg);
    memo[key] = r.mem.l2DemandMisses;
    return r.mem.l2DemandMisses;
}

} // namespace cdpbench
