#include "bench_common.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cdpbench
{

using namespace cdp;

namespace
{

// Process-wide runner, created lazily so a `-j` flag parsed in
// applyEnv can still pick the worker count. Namespace-scope (not
// function-local static) deliberately: tools/cdplint flags
// function-local static mutable state as the thread-unsafe pattern.
std::mutex g_runnerMutex;
std::unique_ptr<runner::SimRunner> g_runner;
unsigned g_requestedJobs = 0;

/**
 * The baseline-miss memo. shared_future-based: the first requester
 * of a key installs the future and runs the simulation; concurrent
 * requesters block on the shared result, so each distinct baseline
 * runs exactly once per process no matter how many workers ask.
 */
struct BaselineMemo
{
    std::mutex m;
    std::map<std::string, std::shared_future<std::uint64_t>> futures;
    std::atomic<std::uint64_t> computations{0};
};
BaselineMemo g_baselines;

} // namespace

void
setRunnerJobs(unsigned jobs)
{
    std::lock_guard<std::mutex> lk(g_runnerMutex);
    if (g_runner && jobs != 0 && jobs != g_runner->jobCount())
        throw std::logic_error(
            "setRunnerJobs after the shared runner was created");
    g_requestedJobs = jobs;
}

runner::SimRunner &
simRunner()
{
    std::lock_guard<std::mutex> lk(g_runnerMutex);
    if (!g_runner)
        g_runner =
            std::make_unique<runner::SimRunner>(g_requestedJobs);
    return *g_runner;
}

void
applyEnv(SimConfig &cfg, int argc, char **argv)
{
    const unsigned jobs = runner::parseJobsFlag(argc, argv);
    if (jobs)
        setRunnerJobs(jobs);
    cfg.parseArgs(argc, argv); // also applies CDP_SCALE
}

bool
fullSuite()
{
    // cdplint: allow(nondeterminism) -- CDP_FULL_SUITE only selects
    // which benchmarks run; each benchmark's simulated behavior is
    // unaffected by the environment.
    const char *v = std::getenv("CDP_FULL_SUITE");
    return v && *v && std::string(v) != "0";
}

std::vector<std::string>
benchSet()
{
    if (fullSuite()) {
        std::vector<std::string> all;
        for (const auto &s : table2Suite())
            all.push_back(s.name);
        return all;
    }
    // A representative spread: near-resident (b2c), stream-heavy
    // (quake), OLTP hash chains (tpcc-2), netlist chase
    // (verilog-gate), and the Java object-graph mix (specjbb).
    return {"b2c", "quake", "tpcc-2", "verilog-gate",
            "specjbb-vsnet"};
}

RunResult
runSim(const SimConfig &cfg)
{
    Simulator sim(cfg);
    return sim.run();
}

RunResult
runWhole(const SimConfig &cfg)
{
    Simulator sim(cfg);
    return sim.runChunk(cfg.warmupUops + cfg.measureUops);
}

std::vector<RunResult>
runBatch(const std::vector<runner::SimJob> &jobs)
{
    return simRunner().run(jobs);
}

PairResult
runPair(SimConfig cfg)
{
    PairResult r;
    SimConfig off = cfg;
    off.cdp.enabled = false;
    r.baseline = runSim(off);
    cfg.cdp.enabled = true;
    r.withCdp = runSim(cfg);
    return r;
}

std::vector<PairResult>
runPairs(const std::vector<SimConfig> &cfgs)
{
    std::vector<runner::SimJob> jobs;
    jobs.reserve(cfgs.size() * 2);
    for (const auto &cfg : cfgs) {
        runner::SimJob off;
        off.cfg = cfg;
        off.cfg.cdp.enabled = false;
        off.tag = cfg.workload + "/base";
        jobs.push_back(std::move(off));

        runner::SimJob on;
        on.cfg = cfg;
        on.cfg.cdp.enabled = true;
        on.tag = cfg.workload + "/cdp";
        jobs.push_back(std::move(on));
    }
    const std::vector<RunResult> res = runBatch(jobs);
    std::vector<PairResult> out(cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        out[i].baseline = res[2 * i];
        out[i].withCdp = res[2 * i + 1];
    }
    return out;
}

namespace
{

std::string
statsDump(Simulator &sim)
{
    std::ostringstream os;
    sim.stats().dump(os);
    return os.str();
}

} // namespace

WarmForkSweep
runWarmForkSweep(const SimConfig &base,
                 const std::vector<CdpConfig> &sweep)
{
    WarmForkSweep out;
    runner::SimRunner &r = simRunner();
    std::vector<std::string> coldDumps(sweep.size());
    std::vector<std::string> forkDumps(sweep.size());

    // Cold control: every config pays its own warm-up, then switches
    // to its swept cdp config at the quiesce point.
    const double wall0 = r.stats().wallSeconds;
    out.cold = r.map(sweep.size(), [&](std::size_t i) {
        Simulator sim(base);
        sim.warmup(base.warmupUops);
        sim.quiesce();
        sim.memory().reconfigureCdp(sweep[i]);
        const RunResult res = sim.measure(base.measureUops);
        coldDumps[i] = statsDump(sim);
        return res;
    });
    const double wall1 = r.stats().wallSeconds;

    // Fork leg: warm once (charged to this leg's wall-clock), then
    // restore every config from the shared in-memory checkpoint.
    std::string checkpoint;
    r.map(1, [&](std::size_t) {
        Simulator warm(base);
        warm.warmup(base.warmupUops);
        warm.quiesce();
        std::ostringstream os;
        warm.saveCheckpoint(os);
        checkpoint = os.str();
        return 0;
    });
    out.forked = r.map(sweep.size(), [&](std::size_t i) {
        SimConfig cfg = base;
        cfg.cdp = sweep[i];
        Simulator sim(cfg);
        std::istringstream is(checkpoint);
        sim.restoreCheckpoint(is);
        const RunResult res = sim.measure(base.measureUops);
        forkDumps[i] = statsDump(sim);
        return res;
    });
    const double wall2 = r.stats().wallSeconds;

    out.coldSeconds = wall1 - wall0;
    out.forkSeconds = wall2 - wall1;
    out.identical = true;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        if (out.cold[i].cycles != out.forked[i].cycles ||
            out.cold[i].uops != out.forked[i].uops ||
            coldDumps[i] != forkDumps[i])
            out.identical = false;
    }
    return out;
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

void
printHeader(const std::string &title,
            const std::string &paper_expectation, const SimConfig &cfg)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("--------------------------------------------------------------\n");
    std::printf("paper: %s\n", paper_expectation.c_str());
    std::printf("%s\n", cfg.summary().c_str());
    std::printf("suite: %s (%zu benchmarks)%s\n",
                fullSuite() ? "full Table 2" : "representative subset",
                benchSet().size(),
                fullSuite() ? "" : "  [CDP_FULL_SUITE=1 for all 15]");
    std::printf("==============================================================\n\n");
}

std::string
pct(double ratio)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f%%", (ratio - 1.0) * 100.0);
    return buf;
}

CoverageAccuracy
adjustedCoverageAccuracy(const RunResult &cdp_run,
                         std::uint64_t misses_without_prefetching)
{
    CoverageAccuracy ca;
    const auto &m = cdp_run.mem;
    const std::uint64_t useful_adj =
        m.cdpUseful > m.cdpUsefulOverlap
            ? m.cdpUseful - m.cdpUsefulOverlap
            : 0;
    const std::uint64_t issued_adj =
        m.cdpIssued > m.cdpIssuedOverlap
            ? m.cdpIssued - m.cdpIssuedOverlap
            : 0;
    if (misses_without_prefetching)
        ca.coverage = static_cast<double>(useful_adj) /
                      static_cast<double>(misses_without_prefetching);
    if (issued_adj)
        ca.accuracy = static_cast<double>(useful_adj) /
                      static_cast<double>(issued_adj);
    return ca;
}

namespace
{

/**
 * Everything the baseline miss count can depend on. Workload name +
 * size alone is not enough: benches override run lengths, seeds, and
 * cache/TLB geometry per experiment, and a memo keyed too narrowly
 * silently returns a denominator from a different machine.
 */
std::string
baselineKey(const SimConfig &base, const std::string &workload)
{
    std::ostringstream os;
    os << workload << "/seed" << base.workloadSeed << "/w"
       << base.warmupUops << "/m" << base.measureUops << "/l1."
       << base.mem.l1Bytes << "." << base.mem.l1Ways << "/l2."
       << base.mem.l2Bytes << "." << base.mem.l2Ways << "/tlb."
       << base.mem.dtlbEntries << "." << base.mem.dtlbWays << "/bus."
       << base.mem.busLatency << "." << base.mem.busOccupancy;
    return os.str();
}

} // namespace

std::uint64_t
missesWithoutPrefetching(const SimConfig &base,
                         const std::string &workload)
{
    const std::string key = baselineKey(base, workload);
    std::promise<std::uint64_t> promise;
    std::shared_future<std::uint64_t> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lk(g_baselines.m);
        auto it = g_baselines.futures.find(key);
        if (it == g_baselines.futures.end()) {
            future = promise.get_future().share();
            g_baselines.futures.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
        }
    }
    if (owner) {
        try {
            SimConfig cfg = base;
            cfg.workload = workload;
            cfg.cdp.enabled = false;
            cfg.stride.enabled = false;
            cfg.markov.enabled = false;
            const RunResult r = runWhole(cfg);
            ++g_baselines.computations;
            promise.set_value(r.mem.l2DemandMisses);
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

void
prewarmBaselines(const SimConfig &base,
                 const std::vector<std::string> &workloads)
{
    simRunner().map(workloads.size(), [&](std::size_t i) {
        return missesWithoutPrefetching(base, workloads[i]);
    });
}

std::uint64_t
baselineComputations()
{
    return g_baselines.computations.load();
}

} // namespace cdpbench
