/**
 * @file
 * Figure 11 + Table 3: Markov prefetcher versus content prefetcher.
 *
 * Configurations per Table 3 (equal total resources):
 *   markov_1/8  — 896-KB 7-way UL2 + 128-KB 16-way STAB
 *   markov_1/2  — 512-KB 8-way UL2 + 512-KB 16-way STAB
 *   markov_big  — full 1-MB UL2 + unbounded STAB (upper bound)
 *   content     — full 1-MB UL2 + content prefetcher (<0.5% overhead)
 *
 * Paper findings: repartitioning UL2 capacity into the STAB loses
 * outright (speedups below 1.0); even the unbounded STAB tops out at
 * ~4.5% because it must train before it can predict, while the
 * stateless content prefetcher reaches ~12.6% — nearly 3x better.
 *
 * All base/variant runs across the four rows fan out as one batch.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);
    base.cdp.enabled = false; // stride-enhanced 1-MB baseline
    // The Markov prefetcher needs to *observe* miss successions
    // before it can predict them; run long enough for working sets
    // to be revisited (the paper's LITs run 30 M instructions).
    base.scaleRunLength(4.0);

    printHeader(
        "Figure 11: Markov vs content prefetcher (Table 3 configs)",
        "markov_1/8 and markov_1/2 lose (UL2 repartitioning); "
        "markov_big <= ~4.5%; content ~3x better at ~12.6%",
        base);

    SimConfig m18 = base;
    m18.markov.enabled = true;
    m18.markov.stabBytes = 128 * 1024;
    m18.mem.l2Bytes = 896 * 1024;
    m18.mem.l2Ways = 7;

    SimConfig m12 = base;
    m12.markov.enabled = true;
    m12.markov.stabBytes = 512 * 1024;
    m12.mem.l2Bytes = 512 * 1024;
    m12.mem.l2Ways = 8;

    SimConfig mbig = base;
    mbig.markov.enabled = true;
    mbig.markov.stabBytes = 0; // unbounded

    SimConfig content = base;
    content.cdp.enabled = true;

    struct Row
    {
        const char *name;
        const SimConfig *cfg;
        const char *paper;
    } rows[] = {
        {"markov_1/8", &m18, "< 1.00 (loses)"},
        {"markov_1/2", &m12, "< 1.00 (loses)"},
        {"markov_big", &mbig, "~1.045 (upper bound)"},
        {"content", &content, "~1.126"},
    };

    // One base + one variant sim per (row, workload).
    const auto set = benchSet();
    std::vector<runner::SimJob> jobs;
    for (const auto &row : rows) {
        for (const auto &name : set) {
            runner::SimJob jb;
            jb.cfg = base;
            jb.cfg.workload = name;
            jb.tag = std::string(row.name) + "/" + name + "/base";
            jobs.push_back(jb);

            runner::SimJob jv;
            jv.cfg = *row.cfg;
            jv.cfg.workload = name;
            jv.tag = std::string(row.name) + "/" + name;
            jobs.push_back(jv);
        }
    }
    const std::vector<RunResult> res = runBatch(jobs);

    runner::BenchReport report("fig11_markov");
    std::printf("%-12s %12s %20s\n", "config", "avg-speedup",
                "paper shape");
    double markov_big_sp = 1.0, content_sp = 1.0;
    std::size_t idx = 0;
    for (const auto &row : rows) {
        std::vector<double> sp;
        for (std::size_t i = 0; i < set.size(); ++i) {
            const RunResult &rb = res[idx++];
            const RunResult &rv = res[idx++];
            sp.push_back(rv.speedupOver(rb));
        }
        const double avg = mean(sp);
        std::printf("%-12s %12s %20s\n", row.name, pct(avg).c_str(),
                    row.paper);
        report.row(row.name).add("avg_speedup", avg);
        if (std::string(row.name) == "markov_big")
            markov_big_sp = avg;
        if (std::string(row.name) == "content")
            content_sp = avg;
    }

    if (markov_big_sp > 1.0) {
        std::printf("\ncontent/markov_big gain ratio: %.1fx "
                    "(paper: ~3x)\n",
                    (content_sp - 1.0) / (markov_big_sp - 1.0));
    } else {
        std::printf("\nmarkov_big shows no gain on this suite; the "
                    "stateless content prefetcher wins outright.\n");
    }
    report.write(simRunner());
    return 0;
}
