/**
 * @file
 * The paper's headline numbers (abstract / conclusions): the content
 * prefetcher provides an 11.3% average speedup with *no additional
 * processor state* (no reinforcement tags), rising to 12.6% with the
 * <0.5% UL2 overhead of two depth bits per line (path reinforcement).
 * All speedups are relative to a machine that already has a stride
 * prefetcher.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    printHeader(
        "Headline: stateless CDP vs CDP + path reinforcement",
        "11.3% average speedup stateless; 12.6% with reinforcement "
        "(two depth bits per UL2 line, <0.5% overhead)",
        base);

    std::printf("%-16s %14s %14s %14s\n", "benchmark", "stateless",
                "reinforced", "reinf-delta");

    std::vector<double> sp_nr, sp_rf;
    const auto names = [] {
        std::vector<std::string> all;
        for (const auto &s : table2Suite())
            all.push_back(s.name);
        return all;
    }();

    for (const auto &name : names) {
        SimConfig off = base;
        off.workload = name;
        off.cdp.enabled = false;
        const RunResult rb = runSim(off);

        SimConfig nr = base;
        nr.workload = name;
        nr.cdp.reinforce = false;
        const RunResult rn = runSim(nr);

        SimConfig rf = base;
        rf.workload = name;
        rf.cdp.reinforce = true;
        const RunResult rr = runSim(rf);

        const double s_nr = rn.speedupOver(rb);
        const double s_rf = rr.speedupOver(rb);
        sp_nr.push_back(s_nr);
        sp_rf.push_back(s_rf);
        std::printf("%-16s %14s %14s %+13.2f%%\n", name.c_str(),
                    pct(s_nr).c_str(), pct(s_rf).c_str(),
                    (s_rf - s_nr) * 100.0);
    }

    std::printf("\naverage: stateless %s (paper 11.3%%), reinforced "
                "%s (paper 12.6%%)\n",
                pct(mean(sp_nr)).c_str(), pct(mean(sp_rf)).c_str());
    std::printf("reinforcement state cost: 2 bits per 64-byte line = "
                "%.2f%% of the UL2\n",
                100.0 * 2.0 / (64 * 8));
    return 0;
}
