/**
 * @file
 * The paper's headline numbers (abstract / conclusions): the content
 * prefetcher provides an 11.3% average speedup with *no additional
 * processor state* (no reinforcement tags), rising to 12.6% with the
 * <0.5% UL2 overhead of two depth bits per line (path reinforcement).
 * All speedups are relative to a machine that already has a stride
 * prefetcher.
 *
 * Three sims per workload (stride-only, stateless CDP, reinforced
 * CDP) fan out on the shared runner; rows print in suite order.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    printHeader(
        "Headline: stateless CDP vs CDP + path reinforcement",
        "11.3% average speedup stateless; 12.6% with reinforcement "
        "(two depth bits per UL2 line, <0.5% overhead)",
        base);

    std::printf("%-16s %14s %14s %14s\n", "benchmark", "stateless",
                "reinforced", "reinf-delta");

    const auto names = [] {
        std::vector<std::string> all;
        for (const auto &s : table2Suite())
            all.push_back(s.name);
        return all;
    }();

    std::vector<runner::SimJob> jobs;
    jobs.reserve(names.size() * 3);
    for (const auto &name : names) {
        runner::SimJob off;
        off.cfg = base;
        off.cfg.workload = name;
        off.cfg.cdp.enabled = false;
        off.tag = name + "/stride-only";
        jobs.push_back(off);

        runner::SimJob nr;
        nr.cfg = base;
        nr.cfg.workload = name;
        nr.cfg.cdp.reinforce = false;
        nr.tag = name + "/stateless";
        jobs.push_back(nr);

        runner::SimJob rf;
        rf.cfg = base;
        rf.cfg.workload = name;
        rf.cfg.cdp.reinforce = true;
        rf.tag = name + "/reinforced";
        jobs.push_back(rf);
    }

    const std::vector<RunResult> res = runBatch(jobs);

    runner::BenchReport report("headline");
    std::vector<double> sp_nr, sp_rf;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const RunResult &rb = res[3 * i];
        const RunResult &rn = res[3 * i + 1];
        const RunResult &rr = res[3 * i + 2];
        const double s_nr = rn.speedupOver(rb);
        const double s_rf = rr.speedupOver(rb);
        sp_nr.push_back(s_nr);
        sp_rf.push_back(s_rf);
        std::printf("%-16s %14s %14s %+13.2f%%\n", names[i].c_str(),
                    pct(s_nr).c_str(), pct(s_rf).c_str(),
                    (s_rf - s_nr) * 100.0);
        report.row(names[i])
            .addResult(rr)
            .add("baseline_ipc", rb.ipc)
            .add("stateless_ipc", rn.ipc)
            .add("speedup_stateless", s_nr)
            .add("speedup_reinforced", s_rf);
    }

    std::printf("\naverage: stateless %s (paper 11.3%%), reinforced "
                "%s (paper 12.6%%)\n",
                pct(mean(sp_nr)).c_str(), pct(mean(sp_rf)).c_str());
    std::printf("reinforcement state cost: 2 bits per 64-byte line = "
                "%.2f%% of the UL2\n",
                100.0 * 2.0 / (64 * 8));

    report.row("average")
        .add("speedup_stateless", mean(sp_nr))
        .add("speedup_reinforced", mean(sp_rf));

    // Warm-fork sweep (DESIGN.md §11): one warm checkpoint of the
    // object-graph workload forked across a chain-depth sweep. The
    // equivalence gate requires the forks byte-identical to
    // cold-equivalent runs; the wall-clock pair (scheduling-dependent,
    // so stderr/"wall_" fields only) shows the warm-ups saved.
    SimConfig wf = base;
    wf.workload = "specjbb-vsnet";
    std::vector<CdpConfig> sweep;
    for (unsigned d : {1u, 2u, 3u, 5u}) {
        CdpConfig cd = base.cdp;
        cd.reinforce = true;
        cd.depthThreshold = d;
        sweep.push_back(cd);
    }
    const WarmForkSweep wfr = runWarmForkSweep(wf, sweep);
    std::printf("\nwarm-fork sweep (%s, depth {1,2,3,5}): %s\n",
                wf.workload.c_str(),
                wfr.identical ? "byte-identical to cold runs"
                              : "MISMATCH vs cold runs");
    std::fprintf(stderr,
                 "warm-fork: cold %.2fs, forked %.2fs (%.2fx)\n",
                 wfr.coldSeconds, wfr.forkSeconds, wfr.speedup());
    report.row("warm_fork")
        .add("workload", wf.workload)
        .add("configs", static_cast<std::uint64_t>(sweep.size()))
        .add("identical", wfr.identical ? 1 : 0)
        .add("wall_cold_seconds", wfr.coldSeconds)
        .add("wall_fork_seconds", wfr.forkSeconds)
        .add("wall_speedup", wfr.speedup());

    report.write(simRunner());
    return wfr.identical ? 0 : 1;
}
