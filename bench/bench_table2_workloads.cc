/**
 * @file
 * Table 2: per-benchmark uop counts and L2 MPTU at 1-MB and 4-MB UL2
 * configurations, with the paper's reported MPTU alongside for shape
 * comparison. Measured on the paper's base machine (stride prefetcher
 * on, content prefetcher off), after warm-up. The two cache sizes per
 * workload run as independent jobs on the shared runner.
 */

#include <cstdio>
#include <map>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

namespace
{

/** Paper's Table 2 MPTU values (1 MB, 4 MB) for reference. */
const std::map<std::string, std::pair<double, double>> paperMptu = {
    {"b2b", {1.04, 0.83}},          {"b2c", {0.13, 0.13}},
    {"quake", {1.41, 0.30}},        {"speech", {1.19, 0.44}},
    {"rc3", {0.43, 0.33}},          {"creation", {0.56, 0.24}},
    {"tpcc-1", {1.88, 0.68}},       {"tpcc-2", {2.29, 0.87}},
    {"tpcc-3", {2.49, 0.87}},       {"tpcc-4", {2.05, 0.70}},
    {"verilog-func", {7.60, 5.49}}, {"verilog-gate", {24.12, 19.74}},
    {"proE", {0.26, 0.23}},         {"slsb", {3.23, 2.74}},
    {"specjbb-vsnet", {1.23, 1.10}},
};

} // namespace

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);
    base.cdp.enabled = false; // Table 2 characterizes the workloads
    // Cache-size sensitivity needs working-set *revisits*; run this
    // bench 4x longer than the default so capacity misses (not just
    // first-touch compulsory misses) dominate the 1-MB column.
    base.scaleRunLength(4.0);

    printHeader(
        "Table 2: workload characterization (L2 MPTU at 1 MB / 4 MB)",
        "MPTU spans ~0.1 to ~24; verilog-gate heaviest, b2c/proE "
        "lightest; 4-MB cache reduces every benchmark's MPTU",
        base);

    std::printf("%-16s %10s %12s %12s %12s %12s\n", "benchmark",
                "uops", "mptu@1MB", "paper@1MB", "mptu@4MB",
                "paper@4MB");

    std::vector<runner::SimJob> jobs;
    for (const auto &spec : table2Suite()) {
        runner::SimJob j1;
        j1.cfg = base;
        j1.cfg.workload = spec.name;
        j1.cfg.mem.l2Bytes = 1024 * 1024;
        j1.tag = spec.name + "/1MB";
        jobs.push_back(j1);

        runner::SimJob j4;
        j4.cfg = base;
        j4.cfg.workload = spec.name;
        j4.cfg.mem.l2Bytes = 4 * 1024 * 1024;
        j4.tag = spec.name + "/4MB";
        jobs.push_back(j4);
    }

    const std::vector<RunResult> res = runBatch(jobs);

    runner::BenchReport report("table2_workloads");
    const auto &suite = table2Suite();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const RunResult &r1 = res[2 * i];
        const RunResult &r4 = res[2 * i + 1];
        const auto paper = paperMptu.at(suite[i].name);
        std::printf("%-16s %10llu %12.3f %12.2f %12.3f %12.2f\n",
                    suite[i].name.c_str(),
                    static_cast<unsigned long long>(r1.uops),
                    r1.mptu(), paper.first, r4.mptu(), paper.second);
        report.row(suite[i].name)
            .addResult(r1)
            .add("mptu_4mb", r4.mptu())
            .add("paper_mptu_1mb", paper.first)
            .add("paper_mptu_4mb", paper.second);
    }

    std::printf("\nshape checks: 4-MB MPTU <= 1-MB MPTU per benchmark;"
                "\nverilog-gate is the heaviest; b2c/proE the "
                "lightest.\n");
    report.write(simRunner());
    return 0;
}
