/**
 * @file
 * Baseline study: why the paper measures against a stride-enhanced
 * machine (Section 2.1 insists the base model "is complete in its
 * use of standard performance enhancement components").
 *
 * Compares: no prefetching, tagged next-line, and the PC-indexed
 * stride prefetcher — each with and without the content prefetcher.
 * On these synthetic run-structured heaps the aggressive next-line
 * baseline covers a lot (at ~2x the prefetch traffic of stride);
 * what matters for the paper's methodology is that CDP's reported
 * gain is measured ON TOP of a real hardware baseline rather than
 * against a prefetch-free machine — the paper's stated concern about
 * inflated "context-based" comparisons.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    printHeader(
        "Baseline study: none vs next-line vs stride (x CDP)",
        "CDP is measured on top of a real baseline; next-line buys "
        "its coverage with ~2x the prefetch traffic of stride",
        base);

    struct Baseline
    {
        const char *name;
        void (*apply)(SimConfig &);
    } baselines[] = {
        {"none", [](SimConfig &c) { c.stride.enabled = false; }},
        {"next-line",
         [](SimConfig &c) { c.stride.policy = "nextline"; }},
        {"stride", [](SimConfig &) {}},
    };

    // IPCs normalized to the no-prefetch machine without CDP.
    std::printf("%-12s %14s %14s %14s\n", "baseline", "ipc-vs-none",
                "with-cdp", "cdp-gain");

    std::vector<double> none_ipcs;
    for (const auto &name : benchSet()) {
        SimConfig c = base;
        c.workload = name;
        c.stride.enabled = false;
        c.cdp.enabled = false;
        none_ipcs.push_back(runSim(c).ipc);
    }

    for (const auto &b : baselines) {
        std::vector<double> rel_off, rel_on, gain;
        const auto set = benchSet();
        for (std::size_t i = 0; i < set.size(); ++i) {
            SimConfig off = base;
            off.workload = set[i];
            b.apply(off);
            off.cdp.enabled = false;
            const RunResult ro = runSim(off);

            SimConfig on = off;
            on.cdp.enabled = true;
            const RunResult rn = runSim(on);

            rel_off.push_back(ro.ipc / none_ipcs[i]);
            rel_on.push_back(rn.ipc / none_ipcs[i]);
            gain.push_back(rn.ipc / ro.ipc);
        }
        std::printf("%-12s %14.4f %14.4f %14s\n", b.name,
                    mean(rel_off), mean(rel_on),
                    pct(mean(gain)).c_str());
    }

    std::printf("\nshape checks: both hardware baselines beat "
                "'none'; CDP's gain on the stride\nbaseline is the "
                "paper's reported quantity. On these synthetic "
                "run-structured\nheaps next-line covers broadly (at "
                "~2x stride's prefetch traffic), absorbing\nmost of "
                "what CDP would otherwise contribute -- real "
                "fragmented heaps behave\nlike the stride row.\n");
    return 0;
}
