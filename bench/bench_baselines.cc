/**
 * @file
 * Baseline study: why the paper measures against a stride-enhanced
 * machine (Section 2.1 insists the base model "is complete in its
 * use of standard performance enhancement components").
 *
 * Compares: no prefetching, tagged next-line, and the PC-indexed
 * stride prefetcher — each with and without the content prefetcher.
 * On these synthetic run-structured heaps the aggressive next-line
 * baseline covers a lot (at ~2x the prefetch traffic of stride);
 * what matters for the paper's methodology is that CDP's reported
 * gain is measured ON TOP of a real hardware baseline rather than
 * against a prefetch-free machine — the paper's stated concern about
 * inflated "context-based" comparisons.
 *
 * Reference IPCs and the baseline x CDP grid fan out as batches.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace cdp;
using namespace cdpbench;

int
main(int argc, char **argv)
{
    SimConfig base;
    applyEnv(base, argc, argv);

    printHeader(
        "Baseline study: none vs next-line vs stride (x CDP)",
        "CDP is measured on top of a real baseline; next-line buys "
        "its coverage with ~2x the prefetch traffic of stride",
        base);

    struct Baseline
    {
        const char *name;
        void (*apply)(SimConfig &);
    } baselines[] = {
        {"none", [](SimConfig &c) { c.stride.enabled = false; }},
        {"next-line",
         [](SimConfig &c) { c.stride.policy = "nextline"; }},
        {"stride", [](SimConfig &) {}},
    };

    // IPCs normalized to the no-prefetch machine without CDP.
    std::printf("%-12s %14s %14s %14s\n", "baseline", "ipc-vs-none",
                "with-cdp", "cdp-gain");

    const auto set = benchSet();

    std::vector<runner::SimJob> none_jobs;
    for (const auto &name : set) {
        runner::SimJob j;
        j.cfg = base;
        j.cfg.workload = name;
        j.cfg.stride.enabled = false;
        j.cfg.cdp.enabled = false;
        j.tag = name + "/none";
        none_jobs.push_back(j);
    }
    const std::vector<RunResult> none_runs = runBatch(none_jobs);
    std::vector<double> none_ipcs;
    for (const auto &r : none_runs)
        none_ipcs.push_back(r.ipc);

    std::vector<runner::SimJob> jobs;
    for (const auto &b : baselines) {
        for (const auto &name : set) {
            runner::SimJob off;
            off.cfg = base;
            off.cfg.workload = name;
            b.apply(off.cfg);
            off.cfg.cdp.enabled = false;
            off.tag = std::string(b.name) + "/" + name + "/no-cdp";
            jobs.push_back(off);

            runner::SimJob on = off;
            on.cfg.cdp.enabled = true;
            on.tag = std::string(b.name) + "/" + name + "/cdp";
            jobs.push_back(on);
        }
    }
    const std::vector<RunResult> res = runBatch(jobs);

    runner::BenchReport report("baselines");
    std::size_t idx = 0;
    for (const auto &b : baselines) {
        std::vector<double> rel_off, rel_on, gain;
        for (std::size_t i = 0; i < set.size(); ++i) {
            const RunResult &ro = res[idx++];
            const RunResult &rn = res[idx++];
            rel_off.push_back(ro.ipc / none_ipcs[i]);
            rel_on.push_back(rn.ipc / none_ipcs[i]);
            gain.push_back(rn.ipc / ro.ipc);
        }
        std::printf("%-12s %14.4f %14.4f %14s\n", b.name,
                    mean(rel_off), mean(rel_on),
                    pct(mean(gain)).c_str());
        report.row(b.name)
            .add("ipc_vs_none", mean(rel_off))
            .add("ipc_with_cdp", mean(rel_on))
            .add("cdp_gain", mean(gain));
    }

    std::printf("\nshape checks: both hardware baselines beat "
                "'none'; CDP's gain on the stride\nbaseline is the "
                "paper's reported quantity. On these synthetic "
                "run-structured\nheaps next-line covers broadly (at "
                "~2x stride's prefetch traffic), absorbing\nmost of "
                "what CDP would otherwise contribute -- real "
                "fragmented heaps behave\nlike the stride row.\n");
    report.write(simRunner());
    return 0;
}
