#!/bin/sh
# Regenerate the golden statistics snapshots in tests/golden/ from the
# current build. Run this only when a statistics change is intentional,
# and commit the refreshed .stats files together with the code change.
#
# Usage: tools/regolden.sh [build_dir]   (default: build)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
cdpsim="$build/tools/cdpsim"

if [ ! -x "$cdpsim" ]; then
    echo "regolden: $cdpsim not found; build the repo first" >&2
    echo "  cmake -B \"$build\" -S \"$repo\" && cmake --build \"$build\" -j" >&2
    exit 1
fi

# Golden runs are fixed-length and single-job by definition.
unset CDP_SCALE CDP_JOBS || true

for args_file in "$repo"/tests/golden/*.args; do
    name=$(basename "$args_file" .args)
    stats_file="$repo/tests/golden/$name.stats"
    args=$(grep -v '^[[:space:]]*#' "$args_file" | grep -v '^--via-checkpoint$')
    if grep -q '^--via-checkpoint$' "$args_file"; then
        # Warm-fork golden: checkpoint at the quiesce point, then
        # measure in a fresh process restoring it (mirrors the
        # --via-checkpoint handling in tests/golden_compare.py).
        ckpt=$(mktemp)
        # shellcheck disable=SC2086  # word-splitting the args is the point
        "$cdpsim" $args --checkpoint-out="$ckpt" --stats -j1 \
            > /dev/null 2>&1
        # shellcheck disable=SC2086
        "$cdpsim" $args --checkpoint-in="$ckpt" --stats -j1 \
            > "$stats_file" 2>/dev/null
        rm -f "$ckpt"
    else
        # shellcheck disable=SC2086  # word-splitting the args is the point
        "$cdpsim" $args --stats -j1 > "$stats_file" 2>/dev/null
    fi
    echo "regolden: wrote $stats_file ($(wc -c < "$stats_file") bytes)"
done
echo "regolden: done — review the diff before committing"
