/**
 * @file
 * cdptrace — offline converter/inspector for lifecycle traces.
 *
 * Consumes the compact binary traces that `cdpsim --trace-out=PATH`
 * (or any obs::writeBinaryTrace caller) produces and replays them
 * into human- or tool-facing forms:
 *
 *   cdptrace chrome  IN.cdpo [OUT.json]   Chrome trace_event JSON
 *                                         (stdout when OUT omitted)
 *   cdptrace summary IN.cdpo              per-chain text summary
 *   cdptrace diff    A.cdpo B.cdpo        event-population diff;
 *                                         exit 1 when they differ
 *
 * Everything here is deterministic: output bytes are a pure function
 * of the input trace(s), so summaries and diffs can be committed or
 * compared across runs.
 */

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_io.hh"

using namespace cdp;
using namespace cdp::obs;

namespace
{

constexpr unsigned numEventKinds =
    static_cast<unsigned>(EventKind::Reinforce) + 1;
constexpr unsigned depthSlots = 16; //!< 0..14 own slot, 15 = deeper

void
usage()
{
    std::fprintf(
        stderr,
        "usage: cdptrace chrome  IN.cdpo [OUT.json]\n"
        "       cdptrace summary IN.cdpo\n"
        "       cdptrace diff    A.cdpo B.cdpo\n");
}

unsigned
depthSlot(unsigned depth)
{
    return depth < depthSlots ? depth : depthSlots - 1;
}

/** Order-independent population of one trace (for summary/diff). */
struct Population
{
    std::uint64_t total = 0;
    std::uint64_t dropped = 0; //!< ring overwrites before the dump
    std::uint64_t byKind[numEventKinds] = {};
    /** Content-prefetch Issue events per chain depth. */
    std::uint64_t issueByDepth[depthSlots] = {};
    /** Drop events per reason (aux of EventKind::Drop). */
    std::map<std::string, std::uint64_t> dropsByReason;

    static Population
    of(const LoadedTrace &t)
    {
        Population p;
        p.total = t.events.size();
        p.dropped = t.dropped;
        for (const TraceEvent &e : t.events) {
            const unsigned k = e.kind < numEventKinds ? e.kind : 0;
            ++p.byKind[k];
            if (e.kindOf() == EventKind::Issue &&
                e.typeOf() == ReqType::ContentPrefetch)
                ++p.issueByDepth[depthSlot(e.depth)];
            if (e.kindOf() == EventKind::Drop)
                ++p.dropsByReason[dropReasonName(e.dropOf())];
        }
        return p;
    }

    bool
    operator==(const Population &o) const
    {
        if (total != o.total)
            return false;
        for (unsigned k = 0; k < numEventKinds; ++k)
            if (byKind[k] != o.byKind[k])
                return false;
        for (unsigned d = 0; d < depthSlots; ++d)
            if (issueByDepth[d] != o.issueByDepth[d])
                return false;
        return dropsByReason == o.dropsByReason;
    }
};

/** One provenance chain: everything rooted at the same demand miss. */
struct Chain
{
    std::uint64_t events = 0;
    std::uint64_t issued = 0;  //!< content-prefetch Issues
    std::uint64_t filled = 0;  //!< content-prefetch Fills
    std::uint64_t drops = 0;
    unsigned maxDepth = 0;
};

int
cmdChrome(const std::string &in, const std::string &out)
{
    const LoadedTrace t = readBinaryTrace(in);
    if (out.empty()) {
        writeChromeJson(std::cout, t);
        return 0;
    }
    std::ofstream os(out);
    if (!os) {
        std::fprintf(stderr, "cdptrace: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    writeChromeJson(os, t);
    std::fprintf(stderr, "wrote %llu events to %s\n",
                 static_cast<unsigned long long>(t.events.size()),
                 out.c_str());
    return 0;
}

void
printPopulation(const Population &p)
{
    std::printf("events   %llu (ring overwrote %llu)\n",
                static_cast<unsigned long long>(p.total),
                static_cast<unsigned long long>(p.dropped));
    for (unsigned k = 0; k < numEventKinds; ++k) {
        if (p.byKind[k]) {
            std::printf("  %-12s %llu\n",
                        eventKindName(static_cast<EventKind>(k)),
                        static_cast<unsigned long long>(p.byKind[k]));
        }
    }
    for (const auto &[reason, n] : p.dropsByReason)
        std::printf("  drop/%-10s %llu\n", reason.c_str(),
                    static_cast<unsigned long long>(n));
    for (unsigned d = 0; d < depthSlots; ++d) {
        if (p.issueByDepth[d]) {
            std::printf("  cdp-issue d%-2u %llu\n", d,
                        static_cast<unsigned long long>(
                            p.issueByDepth[d]));
        }
    }
}

int
cmdSummary(const std::string &in)
{
    const LoadedTrace t = readBinaryTrace(in);
    std::printf("trace    %s\ntag      %s\n", in.c_str(),
                t.tag.c_str());
    printPopulation(Population::of(t));

    // Per-chain rollup keyed by provenance root. root 0 groups the
    // unattributed traffic (injected pollution).
    std::map<ReqId, Chain> chains;
    for (const TraceEvent &e : t.events) {
        Chain &c = chains[e.root];
        ++c.events;
        c.maxDepth = std::max(c.maxDepth, unsigned(e.depth));
        if (e.typeOf() == ReqType::ContentPrefetch) {
            if (e.kindOf() == EventKind::Issue)
                ++c.issued;
            else if (e.kindOf() == EventKind::Fill)
                ++c.filled;
        }
        if (e.kindOf() == EventKind::Drop)
            ++c.drops;
    }
    std::printf("chains   %llu roots\n",
                static_cast<unsigned long long>(chains.size()));

    // Top chains by event count; ties broken by root id so the
    // listing is deterministic.
    std::vector<std::pair<ReqId, Chain>> top(chains.begin(),
                                             chains.end());
    std::stable_sort(top.begin(), top.end(),
                     [](const auto &a, const auto &b) {
                         if (a.second.events != b.second.events)
                             return a.second.events > b.second.events;
                         return a.first < b.first;
                     });
    const std::size_t n = std::min<std::size_t>(top.size(), 10);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &[root, c] = top[i];
        std::printf("  root %-10llu events %-6llu cdp issued/filled "
                    "%llu/%llu drops %-5llu max-depth %u\n",
                    static_cast<unsigned long long>(root),
                    static_cast<unsigned long long>(c.events),
                    static_cast<unsigned long long>(c.issued),
                    static_cast<unsigned long long>(c.filled),
                    static_cast<unsigned long long>(c.drops),
                    c.maxDepth);
    }
    return 0;
}

int
cmdDiff(const std::string &a, const std::string &b)
{
    const Population pa = Population::of(readBinaryTrace(a));
    const Population pb = Population::of(readBinaryTrace(b));
    std::printf("--- %s\n", a.c_str());
    printPopulation(pa);
    std::printf("--- %s\n", b.c_str());
    printPopulation(pb);
    if (pa == pb) {
        std::printf("traces match (same event populations)\n");
        return 0;
    }
    std::printf("traces differ:\n");
    for (unsigned k = 0; k < numEventKinds; ++k) {
        if (pa.byKind[k] != pb.byKind[k]) {
            std::printf(
                "  %-12s %+lld\n",
                eventKindName(static_cast<EventKind>(k)),
                static_cast<long long>(pb.byKind[k]) -
                    static_cast<long long>(pa.byKind[k]));
        }
    }
    for (unsigned d = 0; d < depthSlots; ++d) {
        if (pa.issueByDepth[d] != pb.issueByDepth[d]) {
            std::printf(
                "  cdp-issue d%-2u %+lld\n", d,
                static_cast<long long>(pb.issueByDepth[d]) -
                    static_cast<long long>(pa.issueByDepth[d]));
        }
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const std::string cmd = argc > 1 ? argv[1] : "";
        if (cmd == "chrome" && (argc == 3 || argc == 4))
            return cmdChrome(argv[2], argc == 4 ? argv[3] : "");
        if (cmd == "summary" && argc == 3)
            return cmdSummary(argv[2]);
        if (cmd == "diff" && argc == 4)
            return cmdDiff(argv[2], argv[3]);
        usage();
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cdptrace: error: %s\n", e.what());
        return 1;
    }
}
