// Negatives: every moved-from local is reassigned or refilled before
// its next read, or the read and the move cannot share a path.
#include <string>
#include <utility>
#include <vector>

class Clean {
  public:
    void reassigned()
    {
        std::string s = fill();
        ship(std::move(s));
        s = fill(); // back to a known state
        emit(s);
    }

    void refilledInLoop(int n)
    {
        std::vector<int> buf = makeVec();
        for (int i = 0; i < n; ++i) {
            sendVec(std::move(buf));
            buf = makeVec(); // refilled before the back edge
        }
    }

    void cleared()
    {
        std::vector<int> scratch = makeVec();
        sendVec(std::move(scratch));
        scratch.clear();
        useVec(scratch);
    }

    void disjointPaths(bool fast)
    {
        std::string s = fill();
        if (fast) {
            ship(std::move(s));
            return; // the moved value never escapes this branch
        }
        emit(s);
    }

  private:
    std::string fill();
    std::vector<int> makeVec();
    void ship(std::string s);
    void emit(const std::string &s);
    void sendVec(std::vector<int> v);
    void useVec(const std::vector<int> &v);
};
