// Positive: the retry-loop shape — the happy path moves the buffer
// out, the next iteration reads it again.
#include <string>
#include <utility>

class Retrier {
  public:
    void drain(int n)
    {
        std::string chunk = fill();
        for (int i = 0; i < n; ++i) {
            emit(chunk); // planted: moved by the previous iteration
            ship(std::move(chunk));
        }
    }

  private:
    std::string fill();
    void emit(const std::string &s);
    void ship(std::string s);
};
