// Positives: a move on one branch reaches a read after the join, and
// a second move of an already-moved local.
#include <utility>
#include <vector>

class Shipper {
  public:
    void branchMove(bool fast)
    {
        std::vector<int> buf = make();
        if (fast)
            send(std::move(buf));
        use(buf); // planted: moved on the fast path
    }

    void doubleMove()
    {
        std::vector<int> pkt = make();
        send(std::move(pkt));
        send(std::move(pkt)); // planted: second move
    }

  private:
    std::vector<int> make();
    void send(std::vector<int> v);
    void use(const std::vector<int> &v);
};
