// Positives: a stat with no update anywhere, and one whose only
// update sits in code the CFG proves unreachable.
#pragma once

namespace stats {
class Scalar {
  public:
    Scalar &operator++();
    Scalar &operator+=(unsigned long v);
};
class Distribution {
  public:
    void sample(unsigned long v);
};
}

class CachePolicy {
  public:
    void onHit();
    void onEvict();

  private:
    stats::Scalar hits;
    stats::Scalar replacements; // planted: never updated anywhere
    stats::Distribution evictAge; // planted: update is dead code
};
