#include "neg_live.hh"

static void touch(stats::Scalar *s);

void
BusModel::onBeat(unsigned long n)
{
    ++beats;
    stalls += n;
    highWater.set(n);
    occupancy.sample(n);
    touch(&escaped);
}
