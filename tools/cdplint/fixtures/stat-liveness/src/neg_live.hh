// Negatives: every update form keeps its stat alive — increment,
// compound assign, .set/.sample, an update through a by-reference
// escape — Formula is exempt, and a deliberately-dormant stat can
// say so.
#pragma once

namespace stats {
class Scalar {
  public:
    Scalar &operator++();
    Scalar &operator+=(unsigned long v);
    void set(unsigned long v);
};
class Distribution {
  public:
    void sample(unsigned long v);
};
class Formula {};
}

class BusModel {
  public:
    void onBeat(unsigned long n);

  private:
    stats::Scalar beats;
    stats::Scalar stalls;
    stats::Scalar highWater;
    stats::Distribution occupancy;
    stats::Scalar escaped;   // updated through touch(&escaped)
    stats::Formula utilization; // computed on demand: exempt
    // cdplint: allow(stat-liveness) -- kept for checkpoint-format stability until the v2 format lands
    stats::Scalar legacyPad;
};
