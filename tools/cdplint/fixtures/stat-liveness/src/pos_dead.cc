#include "pos_dead.hh"

void
CachePolicy::onHit()
{
    ++hits;
}

void
CachePolicy::onEvict()
{
    return; // pasted early-out orphaned the sample below
    evictAge.sample(1);
}
