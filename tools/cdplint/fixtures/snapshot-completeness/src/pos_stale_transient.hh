// Positives: one transient annotation whose member is serialized
// after all, one naming a member that does not exist, and one in a
// class that defines no saveState at all.
#pragma once

class Stale {
  public:
    void saveState(Writer &w) const
    {
        w.u64(kept);
    }
    void loadState(Reader &r)
    {
        kept = r.u64();
    }

  private:
    // cdplint: transient(kept) -- stale: both sides serialize it
    unsigned long kept = 0;
    // cdplint: transient(ghost) -- no such member
    unsigned long real = 0; // also missing from both sides (planted)
};

class NeverSaved {
  private:
    // cdplint: transient(scratch) -- class has no saveState; dead weight
    unsigned long scratch = 0;
};
