// Positive: both sides touch every member but read them back in a
// different order than they were written.
#pragma once

class Pair {
  public:
    void saveState(Writer &w) const
    {
        w.u64(first);
        w.u64(second);
    }
    void loadState(Reader &r)
    {
        second = r.u64();
        first = r.u64();
    }

  private:
    unsigned long first = 0;
    unsigned long second = 0;
};
