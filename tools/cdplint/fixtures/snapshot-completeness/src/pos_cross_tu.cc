#include "pos_cross_tu.hh"

void
Ledger::saveState(Writer &w) const
{
    w.u64(balance);
    w.u64(epoch);
}

void
Ledger::loadState(Reader &r)
{
    balance = r.u64();
}
