// Positive: 'dirty' is serialized by neither side and carries no
// transient annotation.
#pragma once

class Counter {
  public:
    void saveState(Writer &w) const
    {
        w.u64(value);
    }
    void loadState(Reader &r)
    {
        value = r.u64();
    }

  private:
    unsigned long value = 0;
    bool dirty = false;
};
