// Negative: every member either travels on both sides in matching
// order or carries a reasoned transient annotation; helper-call
// references (w.rng(gen)) count as references.
#pragma once

class Clean {
  public:
    void saveState(Writer &w) const
    {
        w.u64(ticks);
        w.rng(gen);
    }
    void loadState(Reader &r)
    {
        ticks = r.u64();
        r.rng(gen);
        cachedSquare = ticks * ticks;
    }

  private:
    unsigned long ticks = 0;
    Rng gen;
    // cdplint: transient(cachedSquare) -- derived from ticks on load
    unsigned long cachedSquare = 0;
    // cdplint: transient(scratchpad) -- per-call workspace, dead across a checkpoint
    unsigned long scratchpad = 0;
};
