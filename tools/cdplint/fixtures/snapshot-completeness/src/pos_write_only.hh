// Positive: saveState with no loadState anywhere is a write-only
// wire format.
#pragma once

class WriteOnly {
  public:
    void saveState(Writer &w) const
    {
        w.u64(value);
    }

  private:
    unsigned long value = 0;
};
