// Positive (cross-TU): the bodies live in pos_cross_tu.cc and forget
// 'epoch' on the load side; the finding anchors at the member here.
#pragma once

class Ledger {
  public:
    void saveState(Writer &w) const;
    void loadState(Reader &r);

  private:
    unsigned long balance = 0;
    unsigned long epoch = 0;
};
