// Fixture: a pure observer — common/ includes, reading values,
// writing to its own sink — is clean. Container mutations on the
// sink's own state (insert/push_back) are not simulator mutators.

#include "common/types.hh"
#include "obs/event.hh"

#include <vector>

struct Sink
{
    std::vector<int> rows;

    void note(int kind, int value)
    {
        rows.push_back(kind + value);
    }
};
