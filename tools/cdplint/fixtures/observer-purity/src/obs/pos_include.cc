// Fixture: observer code including a simulator-internal header is a
// finding — the tracer may only see what is handed to it.

#include "memsys/request.hh" // FINDING observer-purity
#include "sim/memory_system.hh" // FINDING observer-purity

void
observe()
{
}
