// Fixture: observer code naming Stat types or calling mutating
// simulator methods is a finding.

struct MemSys;

void
record(MemSys *sys, int v)
{
    Scalar traced; // FINDING observer-purity (names a Stat type)
    (void)v;
}

void
flush(MemSys &sys)
{
    sys.drainAll(0); // FINDING observer-purity (mutator call)
}
