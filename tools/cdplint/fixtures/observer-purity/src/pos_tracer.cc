// Fixture: out-of-line Tracer:: member bodies are held to the same
// purity contract even outside src/obs.

struct Core;

struct Tracer
{
    void onRetire(Core &core, int ev);
};

void
Tracer::onRetire(Core &core, int ev)
{
    core.sample(ev); // FINDING observer-purity (mutator in Tracer::)
}
