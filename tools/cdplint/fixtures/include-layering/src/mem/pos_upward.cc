// Positive: 'mem' is a foundation layer; including the simulator
// harness points up the DAG.
#include "sim/driver.hh"
#include "common/types.hh"

int mem_pos_upward_anchor = 0;
