// Negative: check/check.hh and snapshot/ckpt_io.hh are common-layer
// by decree (FILE_LAYER_OVERRIDES), so a foundation module may use
// them even though their directories are top-layer.
#include "check/check.hh"
#include "snapshot/ckpt_io.hh"

int mem_neg_override_anchor = 0;
