// Positive: 'core' and 'cpu' are sibling layers; neither may reach
// into the other.
#include "cpu/gshare.hh"
#include "memsys/cache.hh"

int core_pos_cross_anchor = 0;
