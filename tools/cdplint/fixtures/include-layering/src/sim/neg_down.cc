// Negative: 'sim' sits near the top and may include anything it can
// reach downward, directly or transitively.
#include "core/content_prefetcher.hh"
#include "cpu/ooo_core.hh"
#include "memsys/bus.hh"
#include "common/types.hh"
#include <vector>

int sim_neg_down_anchor = 0;
