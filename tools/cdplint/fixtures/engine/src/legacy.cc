// Fixture: old-style lint_sim waivers are flagged for migration and
// no longer suppress the underlying finding.

int *
grab()
{
    return new int; // lint-ok: raw-new-delete
}
