// Fixture: a suppression that matches no finding is stale and gets
// reported (as a warning) so waivers cannot quietly outlive fixes.

int
identity(int v)
{
    // cdplint: allow(cycle-arith) -- fixture: nothing left to suppress
    return v;
}
