// Fixture: a suppression without the mandatory `-- reason` clause is
// itself a finding, and does not suppress anything.

int *
grab()
{
    // cdplint: allow(raw-new-delete)
    return new int[4]; // FINDING raw-new-delete (suppression malformed)
}
