// Fixture: a well-formed suppression (with a reason) silences the
// finding on its target line — this file must produce no findings.

int *
grab()
{
    // cdplint: allow(raw-new-delete) -- fixture: round-trip of a valid suppression
    return new int[4];
}
