// Fixture: the sanctioned serializer shape — snapshot the keys,
// sort, then emit. Checkpoint bytes become a pure function of the
// table's contents, independent of insertion history.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Writer
{
    void writeU32(std::uint32_t v);
};

void
saveTableSorted(
    Writer &w,
    const std::unordered_map<std::uint32_t, std::uint32_t> &tab)
{
    std::vector<std::uint32_t> keys;
    keys.reserve(tab.size());
    for (const auto &kv : tab) {
        keys.push_back(kv.first);
    }
    std::sort(keys.begin(), keys.end());
    for (std::uint32_t k : keys) {
        w.writeU32(k);
        w.writeU32(tab.at(k));
    }
}
