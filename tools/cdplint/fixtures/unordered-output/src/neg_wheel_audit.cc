// Fixture: the sanctioned event-wheel audit shape — snapshot the
// pending events, sort by the determinism key (when, then schedule
// sequence), then emit. The audit becomes a pure function of the
// pending set, independent of hash layout (src/sim/event_wheel.cc
// sorted() is the in-tree original).

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

struct WheelEvent
{
    std::uint64_t when;
    std::uint64_t seq;
    std::uint32_t payload;
};

std::string
auditPendingSorted(
    const std::unordered_map<std::uint32_t, WheelEvent> &pending)
{
    std::vector<WheelEvent> events;
    events.reserve(pending.size());
    for (const auto &kv : pending) {
        events.push_back(kv.second);
    }
    std::sort(events.begin(), events.end(),
              [](const WheelEvent &a, const WheelEvent &b) {
                  return a.when != b.when ? a.when < b.when
                                          : a.seq < b.seq;
              });
    std::ostringstream os;
    for (const WheelEvent &e : events) {
        os << e.when << ":" << e.seq << " " << e.payload << "\n";
    }
    return os.str();
}
