// Fixture: order-insensitive folds over unordered containers are
// fine, as is streaming from an ordered container.

#include <iostream>
#include <unordered_map>
#include <vector>

int
total(const std::unordered_map<int, int> &weights)
{
    int sum = 0;
    for (const auto &kv : weights) {
        sum += kv.second;
    }
    return sum;
}

void
printRows(const std::vector<int> &rows)
{
    for (int r : rows) {
        std::cout << r << "\n";
    }
}
