// Fixture: range-for over an unordered container whose body streams
// into an ostream emits hash-order into output.

#include <sstream>
#include <string>
#include <unordered_map>

std::string
dumpTable(const std::unordered_map<int, int> &table)
{
    std::ostringstream os;
    for (const auto &kv : table) { // FINDING unordered-output
        os << kv.first << "=" << kv.second << "\n";
    }
    return os.str();
}
