// Fixture: a checkpoint serializer draining an unordered table in
// hash order — exactly what would make checkpoint bytes differ
// between semantically identical machines.

#include <cstdint>
#include <unordered_map>

struct Writer
{
    void writeU32(std::uint32_t v);
};

void
saveTable(Writer &w,
          const std::unordered_map<std::uint32_t, std::uint32_t> &tab)
{
    for (const auto &kv : tab) { // FINDING unordered-output
        w.writeU32(kv.first);
        w.writeU32(kv.second);
    }
}
