// Fixture: an event-wheel audit dump draining the pending-event
// table in hash order. Scheduler dumps feed golden comparisons, so
// emitting events in container order would make two semantically
// identical wheels print different audits.

#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>

struct WheelEvent
{
    std::uint64_t when;
    std::uint64_t seq;
    std::uint32_t payload;
};

std::string
auditPending(
    const std::unordered_map<std::uint32_t, WheelEvent> &pending)
{
    std::ostringstream os;
    for (const auto &kv : pending) { // FINDING unordered-output
        os << kv.second.when << ":" << kv.second.seq << " "
           << kv.second.payload << "\n";
    }
    return os.str();
}
