// Fixture: iterating the result of a function that returns an
// unordered container, with a dump-shaped call in the body.

#include <unordered_set>

const std::unordered_set<int> &liveEntries();
void dumpEntry(int v);

void
dumpAll()
{
    for (int v : liveEntries()) { // FINDING unordered-output
        dumpEntry(v);
    }
}
