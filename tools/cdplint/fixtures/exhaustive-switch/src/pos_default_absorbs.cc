// Positive: an unannotated default absorbs enumerators that were
// added after the switch was written.
enum class DropWhy { Filtered, QueueFull, Duplicate, Pollution };

const char *
whyName(DropWhy w)
{
    switch (w) {
      case DropWhy::Filtered:
        return "filtered";
      case DropWhy::QueueFull:
        return "queue-full";
      default: // planted: Duplicate and Pollution fall in here
        return "?";
    }
}
