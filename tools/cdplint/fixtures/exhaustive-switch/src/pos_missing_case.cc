// Positive: a switch over a project enum with no default silently
// drops the enumerator it forgot.
enum class ReqKind { Load, Store, Walk, Prefetch };

int
priorityOf(ReqKind k)
{
    switch (k) { // planted: Prefetch missing, no default
      case ReqKind::Load:
        return 0;
      case ReqKind::Store:
        return 1;
      case ReqKind::Walk:
        return 2;
    }
    return -1;
}
