// Negatives: full coverage (with and without a defensive default),
// an annotated catch-all, and dispatch that is not over a project
// enum at all.
enum class Phase { Warm, Measure, Drain };

int
stepsOf(Phase p)
{
    switch (p) { // covered exactly
      case Phase::Warm:
        return 1;
      case Phase::Measure:
        return 2;
      case Phase::Drain:
        return 3;
    }
    return 0;
}

const char *
phaseName(Phase p)
{
    switch (p) { // covered, plus a defensive default for the return
      case Phase::Warm:
        return "warm";
      case Phase::Measure:
        return "measure";
      case Phase::Drain:
        return "drain";
      default:
        return "?";
    }
}

int
phaseClass(Phase p)
{
    switch (p) {
      case Phase::Measure:
        return 1;
      // cdplint: allow(exhaustive-switch) -- everything but Measure is bookkeeping and shares one path
      default:
        return 0;
    }
}

int
charClass(char c)
{
    switch (c) { // not a project enum: integer dispatch is exempt
      case 'a':
        return 1;
      case 'b':
        return 2;
    }
    return 0;
}
