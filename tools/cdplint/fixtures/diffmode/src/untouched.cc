// Never edited by the DiffMode selftest: its finding must appear in
// the full run and never in the --diff run.
int *
otherLeak()
{
    return new int;
}
