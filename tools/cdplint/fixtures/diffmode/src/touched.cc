// The file the DiffMode selftest edits: it starts with one finding
// in an old function, and the test appends a new function with a
// fresh finding. --diff must report only the fresh one.
int *
oldLeak()
{
    return new int; // pre-existing finding, untouched by the edit
}
