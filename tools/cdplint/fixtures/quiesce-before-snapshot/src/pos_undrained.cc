// Positives: saveState with no drain anywhere, and one whose drain
// only happens on one branch (not dominating).
#include "machine.hh"

void
Machine::checkpointBad(snap::Writer &w) const
{
    memsys->saveState(w); // planted: no drain in sight
}

void
Machine::checkpointMaybe(snap::Writer &w, bool fast) const
{
    if (!fast)
        memsys->drainAll(0);
    memsys->saveState(w); // planted: undrained on the fast path
}
