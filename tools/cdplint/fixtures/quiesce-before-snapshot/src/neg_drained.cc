// Negatives: a direct drain, a drain through a method that provably
// drains on every path, a requires_quiesced contract discharging the
// body, and a caller that drains before the annotated method.
#include "machine.hh"

void
Machine::checkpointGood(snap::Writer &w) const
{
    memsys->drainAll(0);
    memsys->saveState(w);
}

void
Machine::checkpointViaHelper(snap::Writer &w) const
{
    const_cast<Machine *>(this)->quiescent();
    memsys->saveState(w);
}

// cdplint: requires_quiesced(memsys)
void
Machine::checkpointContract(snap::Writer &w) const
{
    memsys->saveState(w); // the obligation moved to the callers
}

void
Machine::checkpointCaller(snap::Writer &w) const
{
    memsys->drainAll(0);
    checkpointContract(w);
}
