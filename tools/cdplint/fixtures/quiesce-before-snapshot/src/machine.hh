// Shared fixture model: a MemorySystem with the real drain/save
// surface, owned by a Machine.
#pragma once
#include <memory>
#include <ostream>

namespace snap { class Writer; }

class MemorySystem {
  public:
    void drainAll(unsigned long now);
    void saveState(snap::Writer &w) const;
};

class Machine {
  public:
    void quiescent();               // drains on every path
    void checkpointBad(snap::Writer &w) const;
    void checkpointMaybe(snap::Writer &w, bool fast) const;
    void checkpointGood(snap::Writer &w) const;
    void checkpointViaHelper(snap::Writer &w) const;
    void checkpointContract(snap::Writer &w) const;
    void checkpointCaller(snap::Writer &w) const;

  private:
    std::unique_ptr<MemorySystem> memsys;
};
