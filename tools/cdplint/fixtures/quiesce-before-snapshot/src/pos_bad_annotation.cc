// Positive: requires_quiesced must sit on a function definition's
// signature — on a random statement it binds to nothing.
#include "machine.hh"

void
Machine::quiescent()
{
    // cdplint: requires_quiesced(memsys)
    memsys->drainAll(0);
}
