// Fixture: src/runner is host-side orchestration — wall clocks and
// environment knobs are allowed there (random_device still is not).

#include <chrono>
#include <cstdlib>

double
hostSeconds()
{
    const char *jobs = std::getenv("CDP_JOBS");
    (void)jobs;
    auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}
