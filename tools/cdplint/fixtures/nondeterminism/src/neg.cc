// Fixture: deterministic simulated code — seeded RNG, stable ids in
// output — is clean. Mentions of "%p" in comments do not count.

#include <cstdint>
#include <iostream>

std::uint64_t
xorshift(std::uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

void
report(std::uint64_t id)
{
    std::cout << "req id=" << id << "\n";
}
