// Fixture: std::random_device is banned everywhere — hardware
// entropy breaks run-to-run reproducibility.

#include <random>

unsigned
seedFromHardware()
{
    std::random_device rd; // FINDING nondeterminism
    return rd();
}
