// Fixture: wall clocks, getenv, and pointer values formatted into
// output are findings outside src/runner and tools.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

void
stampAndDump(const int *p)
{
    auto t0 = std::chrono::steady_clock::now(); // FINDING nondeterminism
    const char *home = std::getenv("HOME");     // FINDING nondeterminism
    std::printf("at %p\n", (const void *)p);    // FINDING nondeterminism
    std::cout << static_cast<const void *>(p);  // FINDING nondeterminism
    std::cout << &t0;                           // FINDING nondeterminism
    (void)home;
}
