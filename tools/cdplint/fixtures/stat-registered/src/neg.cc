#include "neg.hh"

#include <string>

static std::string prefix();

CoreStats::CoreStats(StatGroup &g)
    : hits(g, "core.hits", "demand hits"),
      uopsDone(g, prefix() + ".done_uops", "uops completed"),
      latency(g, "core.latency", "load-to-use latency")
{
}
