// Fixture: properly registered stats — exact name, dotted-segment
// name, word-order permutation, and inline registration — are clean.

#ifndef FIXTURE_NEG_HH
#define FIXTURE_NEG_HH

struct StatGroup;
struct Scalar;
struct Distribution;

struct CoreStats
{
    explicit CoreStats(StatGroup &g);

    Scalar hits;
    Scalar uopsDone;
    Distribution latency;
};

#endif
