// Fixture: a stat member never constructed against a StatGroup is
// invisible in every dump.

#ifndef FIXTURE_POS_UNREGISTERED_HH
#define FIXTURE_POS_UNREGISTERED_HH

struct StatGroup;
struct Scalar;

struct CacheStats
{
    explicit CacheStats(StatGroup &g);

    Scalar hits; // FINDING stat-registered (never constructed)
};

#endif
