#include "pos_unregistered.hh"

// The constructor exists but forgets to wire up `hits`.
CacheStats::CacheStats(StatGroup &g)
{
    (void)g;
}
