// Fixture: a stat registered under a name that does not correspond
// to the member mis-attributes its samples in every dump.

#ifndef FIXTURE_POS_WRONGNAME_HH
#define FIXTURE_POS_WRONGNAME_HH

struct StatGroup;
struct Scalar;

struct BusStats
{
    explicit BusStats(StatGroup &g);

    Scalar misses; // FINDING stat-registered (registered as hits_total)
};

#endif
