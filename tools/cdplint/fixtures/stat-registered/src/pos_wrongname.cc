#include "pos_wrongname.hh"

BusStats::BusStats(StatGroup &g)
    : misses(g, "bus.hits_total", "copy-paste slip: wrong stat name")
{
}
