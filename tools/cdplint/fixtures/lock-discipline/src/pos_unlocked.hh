// Positives: a guarded member touched with no lock in sight, and one
// touched after the guard's scope has already closed.
#pragma once

class Pool {
  public:
    void bump()
    {
        ++count; // planted: no lock held
    }

    void lapsed()
    {
        {
            std::lock_guard<std::mutex> lk(mtx);
            ++count;
        }
        ++count; // planted: guard went out of scope
    }

  private:
    std::mutex mtx;
    std::size_t count = 0; // cdplint: guarded_by(mtx)
};
