#pragma once

class Balanced {
  public:
    void deferred(bool fast);
    bool branchRelease(bool empty);

  private:
    std::mutex mtx;
    std::size_t steps = 0; // cdplint: guarded_by(mtx)
};
