#pragma once

class Flow {
  public:
    void conditional(bool need);
    bool earlyReturn(bool empty);
    void doubleLock();

  private:
    std::mutex mtx;
    std::size_t depth = 0; // cdplint: guarded_by(mtx)
};
