#pragma once

class Manual {
  public:
    void toggle();

  private:
    std::mutex mtx;
    bool flag = false; // cdplint: guarded_by(mtx)
};
