// Positives: annotation hygiene. guarded_by must name a real mutex
// member and sit on a member declaration.
#pragma once

class Orphan {
  private:
    std::mutex mtx;
    int a = 0; // cdplint: guarded_by(no_such_mutex)
};

// cdplint: guarded_by(mtx)
int free_floating = 0;
