// Positives only a path-sensitive analysis can see: a lock taken on
// one branch, a return that keeps the mutex, a second acquisition.
#include "pos_flow.hh"

void
Flow::conditional(bool need)
{
    if (need)
        mtx.lock();
    ++depth; // planted: unlocked when !need
    if (need)
        mtx.unlock();
}

bool
Flow::earlyReturn(bool empty)
{
    mtx.lock();
    if (empty)
        return false; // planted: leaves with mtx held
    ++depth;
    mtx.unlock();
    return true;
}

void
Flow::doubleLock()
{
    mtx.lock();
    ++depth;
    mtx.lock(); // planted: already held on every path
    mtx.unlock();
}
