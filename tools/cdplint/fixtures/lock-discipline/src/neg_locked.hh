// Negative: every guarded access holds the lock — via lock_guard,
// unique_lock, a requires_lock contract, a bare .lock(), or an
// explicit reasoned suppression for a single-threaded phase.
#pragma once

class Good {
  public:
    Good()
    {
        // cdplint: allow(lock-discipline) -- single-threaded: no worker exists yet
        count = 1;
    }

    void bump()
    {
        std::lock_guard<std::mutex> lk(mtx);
        ++count;
    }

    void wait()
    {
        std::unique_lock<std::mutex> lk(mtx);
        cv.wait(lk, [this] { return count > 0; });
    }

    // cdplint: requires_lock(mtx)
    void bumpLocked() { ++count; }

    void manual()
    {
        mtx.lock();
        ++count;
        mtx.unlock();
    }

  private:
    std::mutex mtx;
    std::condition_variable cv;
    std::size_t count = 0; // cdplint: guarded_by(mtx)
};
