// Negatives for the path-sensitive upgrade: a defer_lock guard whose
// explicit lock() covers the access, branch-balanced unlocking
// before every return, and a re-lock after a full release.
#include "neg_flow.hh"

void
Balanced::deferred(bool fast)
{
    std::unique_lock<std::mutex> lk(mtx, std::defer_lock);
    lk.lock();
    ++steps;
    lk.unlock();
    if (fast)
        return; // nothing held here
    lk.lock();
    ++steps;
    lk.unlock();
}

bool
Balanced::branchRelease(bool empty)
{
    mtx.lock();
    if (empty) {
        mtx.unlock();
        return false;
    }
    ++steps;
    mtx.unlock();
    return true;
}
