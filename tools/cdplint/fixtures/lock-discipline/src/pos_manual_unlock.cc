// Positive: a bare mtx.lock()/mtx.unlock() pair stops covering the
// member once unlock has run.
#include "pos_manual_unlock.hh"

void
Manual::toggle()
{
    mtx.lock();
    flag = !flag;
    mtx.unlock();
    flag = false; // planted: lock already released
}
