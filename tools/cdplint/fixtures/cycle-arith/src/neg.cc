// Fixture: going through the checked helpers is fine, as is
// subtraction between untyped integers.

using Cycle = unsigned long long;

Cycle cyclesSince(Cycle now, Cycle then);

Cycle
elapsed(Cycle now, Cycle enqueued)
{
    return cyclesSince(now, enqueued);
}

int
delta(int a, int b)
{
    return a - b;
}
