// Fixture: subtraction where one operand is a call to a
// Cycle-returning function is also a finding.

using Cycle = unsigned long long;

Cycle freeCycle();

Cycle
waitFor(Cycle start)
{
    Cycle wait = freeCycle() - start; // FINDING cycle-arith
    return wait;
}
