// Fixture: direct subtraction between Cycle-typed variables is a
// finding — it must go through cyclesSince/cyclesUntil.

using Cycle = unsigned long long;

Cycle
latencyOf(Cycle now, Cycle enqueued)
{
    return now - enqueued; // FINDING cycle-arith
}
