// Fixture: placement new and `= delete` are not findings, nor is
// the word `new` inside comments or strings.

#include <new>

struct Pinned
{
    Pinned(const Pinned &) = delete;
    int v = 0;
};

void
construct(void *slot)
{
    // new objects are constructed in place here
    new (slot) Pinned{};
    const char *msg = "delete me later";
    (void)msg;
}
