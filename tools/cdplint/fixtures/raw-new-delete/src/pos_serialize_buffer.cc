// Fixture: a deserializer hand-rolling a scratch buffer with raw
// new/delete — the payload read can throw and leak it.

#include <cstddef>
#include <istream>

void
loadPayload(std::istream &is, std::size_t n)
{
    char *buf = new char[n]; // FINDING raw-new-delete
    is.read(buf, static_cast<std::streamsize>(n));
    delete[] buf; // FINDING raw-new-delete
}
