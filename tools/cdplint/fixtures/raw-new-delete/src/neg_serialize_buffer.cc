// Fixture: the sanctioned deserializer shape — a std::vector scratch
// buffer owns its storage through every exception path.

#include <cstddef>
#include <istream>
#include <vector>

void
loadPayloadSafe(std::istream &is, std::size_t n)
{
    std::vector<char> buf(n);
    is.read(buf.data(), static_cast<std::streamsize>(n));
}
