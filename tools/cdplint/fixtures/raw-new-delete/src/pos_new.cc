// Fixture: raw `new` outside backing_store is a finding.

int *
makeBuffer()
{
    return new int[16]; // FINDING raw-new-delete
}
