// Fixture: raw `delete` is a finding.

void
freeBuffer(int *p)
{
    delete[] p; // FINDING raw-new-delete
}
