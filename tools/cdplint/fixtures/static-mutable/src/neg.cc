// Fixture: static const data, constexpr tables, static member
// functions, and namespace-scope statics are all fine.

namespace fixture
{

// Namespace-scope shared state (column 1) is the sanctioned pattern.
static int g_sharedCount = 0;

struct Helper
{
    static int twice(int v);
    static constexpr int kWays = 4;
};

int
lookup(int i)
{
    static const int table[4] = {1, 2, 4, 8};
    static constexpr int scale = 2;
    return table[i & 3] * scale + g_sharedCount;
}

} // namespace fixture
