// Fixture: a function-local static object (no initializer tokens
// marking it const) is a finding.

#include <string>

const std::string &
cachedName()
{
    static std::string cache; // FINDING static-mutable
    return cache;
}
