// Fixture: function-local static mutable state is a finding.

int
nextId()
{
    static int counter = 0; // FINDING static-mutable
    return ++counter;
}
