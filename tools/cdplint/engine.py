"""cdplint engine: rule registry, suppressions, baseline, driver.

A rule is a class with class attributes:

    id        stable kebab-case rule id (finding + suppression key)
    severity  "error" or "warning" (SARIF level; both gate the exit
              code — warnings are contracts too, just newer ones)
    doc       one-paragraph description shown by --list-rules and
              embedded in the SARIF rule metadata

and a ``check(ctx)`` method yielding Finding objects. Register with
the @rule decorator. Rules never re-parse comments or strings: they
see the lexed token stream via FileContext.

Suppressions: ``// cdplint: allow(rule-a, rule-b) -- reason``.
The reason is mandatory; a suppression without one is itself a
finding (bad-suppression), as is a suppression that matched nothing
(unused-suppression). A suppression comment on a line of its own
applies to the next line that has code on it.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

import lexer
from decls import DeclIndex, build_index
from model import ProgramModel, build_model, parse_annotation

TOOL_NAME = "cdplint"
TOOL_VERSION = "1.0.0"

SEV_ERROR = "error"
SEV_WARNING = "warning"

_RULES: Dict[str, type] = {}


def rule(cls):
    """Class decorator: register a rule by its ``id``."""
    rid = cls.id
    if rid in _RULES:
        raise ValueError(f"duplicate rule id {rid}")
    _RULES[rid] = cls
    return cls


def all_rules() -> Dict[str, type]:
    # Import for side effect: each rule module registers itself.
    import rules  # noqa: F401
    return dict(_RULES)


@dataclass
class Finding:
    rule: str
    path: str       # repo-relative, forward slashes
    line: int
    col: int
    message: str
    severity: str = SEV_ERROR

    def text(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity}[{self.rule}]: {self.message}")


@dataclass
class Suppression:
    rules: Set[str]
    reason: str
    comment_line: int
    target_line: int  # line the suppression applies to
    used: bool = False
    malformed: bool = False


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""
    path: str                   # as reported (relative if possible)
    lines: List[str]            # raw source lines (0-based list)
    tokens: List[lexer.Token]   # code tokens (no comments)
    comments: List[lexer.Comment]
    index: DeclIndex            # global declaration index
    root: Path                  # lint root (for sibling lookups)
    # whole-program model (classes, bodies, includes, annotations)
    # shared by the cross-TU rule families
    model: Optional[ProgramModel] = None
    # code tokens grouped by line for line-oriented rules
    tokens_by_line: Dict[int, List[lexer.Token]] = field(
        default_factory=dict)
    # per-body CFGs, built on first use and shared by every
    # flow-sensitive rule that asks for the same body
    _cfg_cache: Dict[Tuple[str, int], object] = field(
        default_factory=dict)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def cfg_of(self, body):
        """Control-flow graph of a MethodBody defined in this file
        (memoized; see cfg.py for the construction contract)."""
        key = (body.path, body.body_lo)
        if key not in self._cfg_cache:
            import cfg
            self._cfg_cache[key] = cfg.build_cfg(
                self.tokens, body.body_lo, body.body_hi)
        return self._cfg_cache[key]


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

_ALLOW_RE = re.compile(
    r"cdplint:\s*allow\(\s*([\w\-, ]*?)\s*\)(?:\s*--\s*(.*))?\s*$")
_LEGACY_RE = re.compile(r"lint-ok:\s*([\w-]+)")


def scan_suppressions(ctx: FileContext) -> List[Suppression]:
    out: List[Suppression] = []
    code_lines = set(ctx.tokens_by_line.keys())
    for c in ctx.comments:
        m = _ALLOW_RE.search(c.text)
        if m is None:
            ann = parse_annotation(c.text)
            if ann is not None:
                # Semantic annotation (transient / guarded_by /
                # requires_lock): consumed by the model, not a
                # suppression — but a malformed one is still an error
                # here, exactly like a malformed allow().
                if not ann[3]:
                    out.append(Suppression(set(), "", c.line, c.line,
                                           malformed=True))
                continue
            if "cdplint:" in c.text:
                # Looks like an attempted directive but did not parse.
                out.append(Suppression(set(), "", c.line, c.line,
                                       malformed=True))
            continue
        rules_txt, reason = m.group(1), (m.group(2) or "").strip()
        names = {r.strip() for r in rules_txt.split(",") if r.strip()}
        target = c.line
        if c.line not in code_lines:
            # Standalone comment line: applies to the next code line.
            nxt = [ln for ln in code_lines if ln > c.line]
            target = min(nxt) if nxt else c.line
        s = Suppression(names, reason, c.line, target)
        if not names or not reason:
            s.malformed = True
        out.append(s)
    return out


def legacy_waivers(ctx: FileContext) -> List[Tuple[int, str]]:
    """Old-style ``// lint-ok: rule`` comments (to be migrated)."""
    out = []
    for c in ctx.comments:
        m = _LEGACY_RE.search(c.text)
        if m:
            out.append((c.line, m.group(1)))
    return out


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def fingerprint(f: Finding, ctx_lines: List[str]) -> str:
    """Stable id for a finding: rule + path + hash of the line text,
    so the baseline survives unrelated line-number churn."""
    text = ""
    if 1 <= f.line <= len(ctx_lines):
        text = ctx_lines[f.line - 1].strip()
    h = hashlib.sha256(
        f"{f.rule}|{f.path}|{text}".encode()).hexdigest()[:16]
    return h


def load_baseline(path: Path) -> Dict[str, int]:
    """Baseline file: JSON list of {rule, path, fingerprint, count}."""
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        raise SystemExit(f"{TOOL_NAME}: bad baseline {path}: {e}")
    out: Dict[str, int] = {}
    for entry in data:
        out[entry["fingerprint"]] = out.get(entry["fingerprint"], 0) + \
            int(entry.get("count", 1))
    return out


def write_baseline(path: Path, findings: List[Tuple[Finding, str]]) -> None:
    counts: Dict[Tuple[str, str, str], int] = {}
    for f, fp in findings:
        counts[(f.rule, f.path, fp)] = counts.get(
            (f.rule, f.path, fp), 0) + 1
    data = [
        {"rule": r, "path": p, "fingerprint": fp, "count": c}
        for (r, p, fp), c in sorted(counts.items())
    ]
    path.write_text(json.dumps(data, indent=2) + "\n")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for p in (Path(p) for p in paths):
        if p.is_dir():
            files.extend(sorted(p.rglob("*.hh")))
            files.extend(sorted(p.rglob("*.cc")))
        elif p.exists():
            files.append(p)
        else:
            raise SystemExit(f"{TOOL_NAME}: no such path: {p}")
    return files


def relpath(p: Path) -> str:
    try:
        return p.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return p.as_posix()


# ---------------------------------------------------------------------------
# Differential mode (--diff <ref>)
# ---------------------------------------------------------------------------

_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(\d+)(?:,(\d+))? @@")


def changed_lines(ref: str, rel_paths: List[str]
                  ) -> Dict[str, Set[int]]:
    """New-side line numbers changed vs ``ref``, per repo-relative
    path, from ``git diff -U0``. A pure deletion (zero new-side
    lines) records the line after the cut, so the enclosing function
    still counts as touched. Files git does not track (fresh,
    uncommitted) are wholly changed. Raises SystemExit on git
    failure — a bad ref must fail the lint run loudly, not lint
    nothing."""
    import subprocess
    want = set(rel_paths)
    out: Dict[str, Set[int]] = {}

    proc = subprocess.run(
        ["git", "diff", "--unified=0", "--no-color", ref, "--",
         *sorted(want)],
        capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        raise SystemExit(
            f"{TOOL_NAME}: git diff {ref} failed: "
            f"{proc.stderr.strip()}")
    cur: Optional[str] = None
    for ln in proc.stdout.splitlines():
        if ln.startswith("+++ "):
            name = ln[4:].strip()
            if name.startswith("b/"):
                name = name[2:]
            cur = name if name in want else None
            continue
        m = _HUNK_RE.match(ln)
        if m and cur is not None:
            start = int(m.group(1))
            count = int(m.group(2)) if m.group(2) is not None else 1
            lines = out.setdefault(cur, set())
            if count == 0:
                lines.add(max(start, 1))
            else:
                lines.update(range(start, start + count))

    # Untracked files never appear in the diff; treat them as fully
    # changed so brand-new code is always linted.
    proc = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard", "--",
         *sorted(want)],
        capture_output=True, text=True)
    if proc.returncode == 0:
        for name in proc.stdout.splitlines():
            name = name.strip()
            if name in want:
                out.setdefault(name, set()).add(-1)  # sentinel: all
    return out


def diff_filter(findings: List[Finding], prog: ProgramModel,
                changed: Dict[str, Set[int]]) -> List[Finding]:
    """Keep a finding iff its file changed AND the finding is
    attributable to a changed region: its own line changed, or it
    sits inside a function body / class body that has a changed
    line. Dropping is the only operation, so --diff output is a
    strict subset of the full run by construction (selftest-pinned).
    Cross-file effects (a .cc edit surfacing a finding anchored in
    the paired .hh) are deliberately out of --diff's reach; the
    full-run CI fallback covers them."""
    kept: List[Finding] = []
    for f in findings:
        ch = changed.get(f.path)
        if not ch:
            continue
        if -1 in ch or f.line in ch:
            kept.append(f)
            continue
        hit = False
        for b in prog.bodies.get(f.path, []):
            toks = prog.streams.get(f.path, [])
            hi_line = toks[b.body_hi].line \
                if b.body_hi < len(toks) else b.sig_line
            if b.sig_line <= f.line <= hi_line and \
                    any(b.sig_line <= c <= hi_line for c in ch):
                hit = True
                break
        if not hit:
            for ci in prog.classes_in(f.path):
                if ci.line <= f.line <= ci.end_line and \
                        any(ci.line <= c <= ci.end_line for c in ch):
                    hit = True
                    break
        if hit:
            kept.append(f)
    return kept


# Shared state for --jobs workers. Populated in the parent before the
# fork pool is created, so children inherit it read-only and nothing
# but the per-file payload and results ever crosses a pipe.
_WORK: Dict[str, object] = {}


def _lex_one(payload: Tuple[str, str]):
    """Worker: read + lex one file. Returns everything the parent
    needs to build the context and the global model."""
    abs_path, rel = payload
    text = Path(abs_path).read_text(errors="replace")
    toks, comments = lexer.lex(text)
    return rel, text, toks, comments


def _analyze_one(i: int) -> Tuple[List[Finding], Dict[str, float]]:
    """Worker: run every active rule over one file and apply that
    file's suppressions. Pure function of the shared state + index,
    so results are identical at any job count. Also returns per-rule
    wall time for the stderr timing line."""
    ctx: FileContext = _WORK["contexts"][i]
    active: Dict[str, object] = _WORK["active"]
    only_rules: Optional[Set[str]] = _WORK["only_rules"]

    sups = scan_suppressions(ctx)
    raw: List[Finding] = []
    timings: Dict[str, float] = {}
    for rid, r in active.items():
        t0 = time.monotonic()
        raw.extend(r.check(ctx))
        timings[rid] = time.monotonic() - t0

    # Apply suppressions.
    kept: List[Finding] = []
    for f in sorted(raw, key=lambda x: (x.line, x.col, x.rule)):
        sup = next((s for s in sups
                    if not s.malformed and s.target_line == f.line
                    and f.rule in s.rules), None)
        if sup is not None:
            sup.used = True
            continue
        kept.append(f)

    # Suppression hygiene findings. A stale suppression is an error —
    # a waiver that outlives its finding hides the next regression on
    # that line.
    for s in sups:
        if s.malformed:
            kept.append(Finding(
                "bad-suppression", ctx.path, s.comment_line, 1,
                "malformed cdplint directive; use "
                "'// cdplint: allow(rule) -- reason' or an "
                "annotation per DESIGN.md §10 (reasons are "
                "mandatory)"))
        elif not s.used and (only_rules is None or
                             s.rules & set(active)):
            kept.append(Finding(
                "unused-suppression", ctx.path, s.comment_line, 1,
                f"suppression for {', '.join(sorted(s.rules))} "
                "matched no finding; delete it"))
    for line, rid in legacy_waivers(ctx):
        kept.append(Finding(
            "legacy-waiver", ctx.path, line, 1,
            f"old-style '// lint-ok: {rid}' waiver; migrate to "
            f"'// cdplint: allow({rid}) -- reason'"))
    return kept, timings


def _map_jobs(fn, items: List, jobs: int) -> List:
    """Order-preserving map, forked across ``jobs`` workers when
    possible. Falls back to serial (identical results, by
    construction) when multiprocessing is unavailable."""
    if jobs <= 1 or len(items) <= 1:
        return [fn(it) for it in items]
    try:
        import multiprocessing
        mp = multiprocessing.get_context("fork")
    except (ImportError, ValueError):
        return [fn(it) for it in items]
    try:
        with mp.Pool(min(jobs, len(items))) as pool:
            return pool.map(fn, items, chunksize=4)
    except OSError:
        return [fn(it) for it in items]


def run_analysis(files: List[Path],
                 only_rules: Optional[Set[str]] = None,
                 jobs: int = 1,
                 restrict: Optional[Set[str]] = None,
                 ) -> Tuple[List[FileContext], List[Finding],
                            ProgramModel, Dict[str, float]]:
    """Lex, index, model, and run every registered rule over
    ``files``. Two passes: pass 1 lexes every file and builds the
    whole-program model (declaration index, class/member lists,
    method bodies, include graph, annotations); pass 2 runs the rules
    per file against that model. Both passes fan out over ``jobs``
    workers; output is byte-identical at any job count.

    ``restrict`` (for --diff) limits *pass 2* to the named
    repo-relative paths; pass 1 always covers every file so the
    cross-TU model — and therefore every finding that is emitted —
    is identical to the full run's."""
    lexed = _map_jobs(_lex_one, [(str(f), relpath(f)) for f in files],
                      jobs)
    streams = {}
    comments_by_path = {}
    contexts: List[FileContext] = []
    for (rel, text, toks, comments), f in zip(lexed, files):
        streams[rel] = toks
        comments_by_path[rel] = comments
        ctx = FileContext(path=rel, lines=text.splitlines(),
                          tokens=toks, comments=comments,
                          index=None, root=f.parent)  # type: ignore
        for t in toks:
            ctx.tokens_by_line.setdefault(t.line, []).append(t)
        contexts.append(ctx)

    index = build_index(streams)
    prog = build_model(streams, comments_by_path)
    rules_map = all_rules()
    active = {rid: cls() for rid, cls in sorted(rules_map.items())
              if only_rules is None or rid in only_rules}
    for ctx in contexts:
        ctx.index = index
        ctx.model = prog

    _WORK["contexts"] = contexts
    _WORK["active"] = active
    _WORK["only_rules"] = only_rules
    todo = [i for i, ctx in enumerate(contexts)
            if restrict is None or ctx.path in restrict]
    try:
        per_file = _map_jobs(_analyze_one, todo, jobs)
    finally:
        _WORK.clear()

    findings: List[Finding] = []
    timings: Dict[str, float] = {rid: 0.0 for rid in active}
    for kept, t in per_file:
        findings.extend(kept)
        for rid, dt in t.items():
            timings[rid] = timings.get(rid, 0.0) + dt
    return contexts, findings, prog, timings


def builtin_rule_meta() -> Dict[str, Tuple[str, str]]:
    """Engine-level findings that are not registered rules."""
    return {
        "bad-suppression": (
            SEV_ERROR,
            "A cdplint suppression comment that does not parse or "
            "lacks the mandatory '-- reason' clause."),
        "unused-suppression": (
            SEV_ERROR,
            "A suppression that matched no finding on its target "
            "line; stale waivers hide real regressions, so they are "
            "errors and must be deleted."),
        "legacy-waiver": (
            SEV_ERROR,
            "An old-style '// lint-ok:' waiver from the retired "
            "single-file linter; migrate to "
            "'// cdplint: allow(rule) -- reason'."),
    }


def main(argv: List[str]) -> int:
    ap = argparse.ArgumentParser(
        prog=TOOL_NAME,
        description="Rule-engine static analyzer enforcing the CDP "
                    "simulator's determinism and observer-purity "
                    "contracts.")
    ap.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to lint (default: src)")
    ap.add_argument("--sarif", metavar="FILE",
                    help="also write findings as SARIF 2.1.0")
    ap.add_argument("--baseline", metavar="FILE",
                    default=str(Path(__file__).resolve().parent /
                                "baseline.json"),
                    help="baseline file of grandfathered findings "
                         "(default: tools/cdplint/baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline file")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the baseline from current findings "
                         "and exit 0")
    ap.add_argument("--rule", action="append", metavar="ID",
                    help="run only the named rule(s)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    ap.add_argument("--jobs", "-j", type=int, metavar="N",
                    default=0,
                    help="analysis worker processes (default: CPU "
                         "count); findings and SARIF bytes are "
                         "identical at any value")
    ap.add_argument("--dump-model", metavar="FILE",
                    help="write the cross-TU program model (classes, "
                         "members, bodies, include graph, "
                         "annotations) as JSON, for debugging rule "
                         "behaviour")
    ap.add_argument("--diff", metavar="REF",
                    help="differential mode: lex and model every "
                         "path as usual, but report only findings "
                         "attributable to lines changed vs the git "
                         "ref (strict subset of the full run)")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return 2 if e.code not in (0, None) else 0

    rules_map = all_rules()
    if args.list_rules:
        for rid, cls in sorted(rules_map.items()):
            print(f"{rid} [{cls.severity}]")
            for ln in cls.doc.strip().splitlines():
                print(f"    {ln.strip()}")
        for rid, (sev, doc) in sorted(builtin_rule_meta().items()):
            print(f"{rid} [{sev}] (engine built-in)")
            print(f"    {doc}")
        return 0

    only = set(args.rule) if args.rule else None
    if only:
        unknown = only - set(rules_map)
        if unknown:
            print(f"{TOOL_NAME}: unknown rule(s): "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    try:
        files = collect_files(args.paths or ["src"])
    except SystemExit as e:
        print(e, file=sys.stderr)
        return 2

    if args.diff and args.write_baseline:
        print(f"{TOOL_NAME}: --diff and --write-baseline are "
              f"mutually exclusive (a partial run must never "
              f"become the baseline)", file=sys.stderr)
        return 2

    changed: Optional[Dict[str, Set[int]]] = None
    restrict: Optional[Set[str]] = None
    if args.diff:
        try:
            changed = changed_lines(
                args.diff, [relpath(p) for p in files])
        except SystemExit as e:
            print(e, file=sys.stderr)
            return 2
        restrict = set(changed)

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    t0 = time.monotonic()
    contexts, findings, prog, timings = run_analysis(
        files, only, jobs, restrict=restrict)
    elapsed = time.monotonic() - t0

    if changed is not None:
        findings = diff_filter(findings, prog, changed)

    if args.dump_model:
        from model import model_to_json
        Path(args.dump_model).write_text(
            json.dumps(model_to_json(prog), indent=2, sort_keys=True)
            + "\n")

    lines_by_path = {c.path: c.lines for c in contexts}
    with_fp = [(f, fingerprint(f, lines_by_path.get(f.path, [])))
               for f in findings]

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        write_baseline(baseline_path, with_fp)
        print(f"{TOOL_NAME}: baseline written to {baseline_path} "
              f"({len(with_fp)} finding(s))")
        return 0

    if not args.no_baseline:
        budget = load_baseline(baseline_path)
        fresh = []
        for f, fp in with_fp:
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                continue
            fresh.append((f, fp))
        with_fp = fresh

    final = [f for f, _ in with_fp]
    final.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    for f in final:
        print(f.text())

    if args.sarif:
        import emit
        Path(args.sarif).write_text(
            emit.to_sarif(final, rules_map, builtin_rule_meta()))

    nfiles = len(files)
    # Timing goes to stderr: stdout stays byte-identical at any -j.
    print(f"{TOOL_NAME}: analyzed {nfiles} file(s) in "
          f"{elapsed:.2f}s with {jobs} job(s)", file=sys.stderr)
    if timings:
        per_rule = " ".join(
            f"{rid}={timings[rid] * 1000:.0f}ms"
            for rid in sorted(timings))
        print(f"{TOOL_NAME}: rule timings: {per_rule}",
              file=sys.stderr)
    if restrict is not None:
        print(f"{TOOL_NAME}: --diff {args.diff}: "
              f"{len(restrict)}/{nfiles} file(s) changed",
              file=sys.stderr)
    if final:
        print(f"{TOOL_NAME}: {len(final)} finding(s) in {nfiles} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"{TOOL_NAME}: {nfiles} files clean "
          f"({len(rules_map) if not only else len(only)} rules)")
    return 0
