#!/usr/bin/env python3
"""cdplint self-test: fixture corpus, suppression/baseline round
trips, SARIF structure, and an end-to-end acceptance check against a
scratch copy of a real source file.

Runs the analyzer the same way users and CI do — as a subprocess of
``python3 tools/cdplint`` — so the CLI surface (exit codes, output
format, flags) is under test too. Plain unittest; also collectable
by pytest.
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

CDPLINT = Path(__file__).resolve().parent
FIXTURES = CDPLINT / "fixtures"
REPO = CDPLINT.parents[1]

_FINDING_RE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<sev>error|warning)\[(?P<rule>[\w-]+)\]: ")

# Fixture groups run with --rule <group>; "engine" runs every rule so
# the suppression/waiver machinery (which is rule-agnostic) engages.
RULE_GROUPS = [
    "cycle-arith",
    "exhaustive-switch",
    "include-layering",
    "lock-discipline",
    "nondeterminism",
    "observer-purity",
    "quiesce-before-snapshot",
    "raw-new-delete",
    "snapshot-completeness",
    "stat-liveness",
    "stat-registered",
    "static-mutable",
    "unordered-output",
    "use-after-move",
]


def run_lint(args, cwd):
    """Run cdplint; return (exit_code, stdout, stderr)."""
    proc = subprocess.run(
        [sys.executable, str(CDPLINT)] + args,
        cwd=str(cwd), capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def findings_of(stdout):
    """Set of (path, line, rule) triples parsed from text output."""
    out = set()
    for ln in stdout.splitlines():
        m = _FINDING_RE.match(ln)
        if m:
            out.add((m.group("path"), int(m.group("line")),
                     m.group("rule")))
    return out


def expected_of(group_dir):
    out = set()
    for ln in (group_dir / "expected.txt").read_text().splitlines():
        ln = ln.strip()
        if not ln or ln.startswith("#"):
            continue
        loc, rule = ln.split()
        path, line = loc.rsplit(":", 1)
        out.add((path, int(line), rule))
    return out


class FixtureCorpus(unittest.TestCase):
    """Each rule's positives fire at the planted lines and nothing
    else in the group fires — negatives stay silent."""

    def _check_group(self, group, extra_args):
        gdir = FIXTURES / group
        code, out, err = run_lint(
            ["--no-baseline"] + extra_args + ["src"], cwd=gdir)
        got = findings_of(out)
        want = expected_of(gdir)
        self.assertEqual(
            got, want,
            f"{group}: findings diverge from expected.txt\n"
            f"  unexpected: {sorted(got - want)}\n"
            f"  missing:    {sorted(want - got)}\n--- output ---\n"
            f"{out}{err}")
        self.assertEqual(code, 1 if want else 0)

    def test_engine_builtins(self):
        self._check_group("engine", [])


def _add_group_tests():
    for group in RULE_GROUPS:
        def test(self, group=group):
            self._check_group(group, ["--rule", group])
        setattr(FixtureCorpus, f"test_{group.replace('-', '_')}", test)


_add_group_tests()


class SuppressionRoundTrip(unittest.TestCase):
    def test_valid_suppression_silences(self):
        code, out, _ = run_lint(
            ["--no-baseline", "src/sup_ok.cc"],
            cwd=FIXTURES / "engine")
        self.assertEqual(findings_of(out), set(), out)
        self.assertEqual(code, 0)

    def test_reason_is_mandatory(self):
        code, out, _ = run_lint(
            ["--no-baseline", "src/sup_bad.cc"],
            cwd=FIXTURES / "engine")
        rules = {r for _, _, r in findings_of(out)}
        self.assertIn("bad-suppression", rules)
        self.assertIn("raw-new-delete", rules,
                      "a malformed suppression must not suppress")
        self.assertEqual(code, 1)


class BaselineRoundTrip(unittest.TestCase):
    def test_write_then_clean_then_no_grow(self):
        with tempfile.TemporaryDirectory() as td:
            work = Path(td)
            src = work / "src"
            src.mkdir()
            target = src / "grandfathered.cc"
            shutil.copyfile(
                FIXTURES / "engine" / "src" / "sup_bad.cc", target)
            bl = work / "baseline.json"

            code, _, _ = run_lint(
                ["--baseline", str(bl), "--write-baseline", "src"],
                cwd=work)
            self.assertEqual(code, 0)
            self.assertTrue(bl.exists())

            # Grandfathered findings no longer gate.
            code, out, _ = run_lint(
                ["--baseline", str(bl), "src"], cwd=work)
            self.assertEqual(code, 0, out)
            self.assertEqual(findings_of(out), set())

            # ...but a new violation still does (no-grow).
            with target.open("a") as f:
                f.write("\nint *fresh_violation = new int;\n")
            newline = len(target.read_text().splitlines())
            code, out, _ = run_lint(
                ["--baseline", str(bl), "src"], cwd=work)
            self.assertEqual(code, 1, out)
            self.assertEqual(
                findings_of(out),
                {("src/grandfathered.cc", newline, "raw-new-delete")},
                out)


class AcceptanceScratch(unittest.TestCase):
    """ISSUE acceptance: planting std::random_device and a hash-order
    stats dump into a scratch copy of memory_system.cc yields findings
    with the right file:line and rule id, in text and SARIF."""

    ANCHOR = "std::unordered_set<Addr> scheduled;"

    def _scratch(self, work):
        dst = work / "scratch" / "src" / "sim"
        dst.mkdir(parents=True)
        real = REPO / "src" / "sim" / "memory_system.cc"
        lines = real.read_text().splitlines(keepends=True)
        anchor = next(i for i, ln in enumerate(lines)
                      if self.ANCHOR in ln)
        inject = [
            "    std::random_device planted_rd;\n",
            "    for (const auto pa2 : scheduled) {"
            " std::cout << pa2; }\n",
        ]
        lines[anchor + 1:anchor + 1] = inject
        out = dst / "memory_system.cc"
        out.write_text("".join(lines))
        # 1-based lines of the two planted statements.
        return out, anchor + 2, anchor + 3

    def test_planted_bugs_are_found(self):
        with tempfile.TemporaryDirectory() as td:
            work = Path(td)
            _, rd_line, loop_line = self._scratch(work)
            sarif_path = work / "out.sarif"
            code, out, _ = run_lint(
                ["--no-baseline", "--sarif", str(sarif_path),
                 "scratch"], cwd=work)
            self.assertEqual(code, 1, out)
            got = findings_of(out)
            path = "scratch/src/sim/memory_system.cc"
            self.assertIn((path, rd_line, "nondeterminism"), got, out)
            self.assertIn((path, loop_line, "unordered-output"), got,
                          out)

            sarif = json.loads(sarif_path.read_text())
            self.assertEqual(sarif["version"], "2.1.0")
            driver = sarif["runs"][0]["tool"]["driver"]
            self.assertEqual(driver["name"], "cdplint")
            rule_ids = [r["id"] for r in driver["rules"]]
            results = {
                (res["locations"][0]["physicalLocation"]
                 ["artifactLocation"]["uri"],
                 res["locations"][0]["physicalLocation"]["region"]
                 ["startLine"],
                 res["ruleId"])
                for res in sarif["runs"][0]["results"]}
            self.assertIn((path, rd_line, "nondeterminism"), results)
            self.assertIn((path, loop_line, "unordered-output"),
                          results)
            for res in sarif["runs"][0]["results"]:
                self.assertIn(res["ruleId"], rule_ids)
                self.assertEqual(res["ruleIndex"],
                                 rule_ids.index(res["ruleId"]))

    def test_unmodified_copy_is_clean(self):
        with tempfile.TemporaryDirectory() as td:
            work = Path(td)
            dst = work / "scratch" / "src" / "sim"
            dst.mkdir(parents=True)
            shutil.copyfile(
                REPO / "src" / "sim" / "memory_system.cc",
                dst / "memory_system.cc")
            code, out, _ = run_lint(
                ["--no-baseline", "scratch"], cwd=work)
            self.assertEqual(code, 0, out)


class JobsDeterminism(unittest.TestCase):
    """Output (text and SARIF bytes) is identical at any --jobs
    count; only the stderr timing line may differ."""

    def test_jobs_do_not_change_output(self):
        gdir = FIXTURES / "snapshot-completeness"
        runs = {}
        with tempfile.TemporaryDirectory() as td:
            for jobs in ("1", "4"):
                sarif = Path(td) / f"out-{jobs}.sarif"
                code, out, _ = run_lint(
                    ["--no-baseline", "--rule", "snapshot-completeness",
                     "--jobs", jobs, "--sarif", str(sarif), "src"],
                    cwd=gdir)
                runs[jobs] = (code, out, sarif.read_bytes())
        self.assertEqual(runs["1"][0], runs["4"][0])
        self.assertEqual(runs["1"][1], runs["4"][1],
                         "text output must not depend on --jobs")
        self.assertEqual(runs["1"][2], runs["4"][2],
                         "SARIF bytes must not depend on --jobs")


class DiffMode(unittest.TestCase):
    """--diff <ref> pins the differential contract: its findings are
    a strict subset of the full run (exactly the ones attributable to
    changed lines), byte-identical at any --jobs count, and refused
    in combination with --write-baseline."""

    NEW_FUNC = ("\nint *\nfreshLeak()\n{\n"
                "    return new int; // planted by DiffMode\n}\n")

    def _scratch_repo(self, work):
        """Copy the diffmode fixture, commit it, append a new finding
        to touched.cc only. Returns the line of the fresh finding."""
        shutil.copytree(FIXTURES / "diffmode" / "src", work / "src")
        def git(*args):
            subprocess.run(
                ["git", "-c", "user.email=selftest@cdplint",
                 "-c", "user.name=cdplint selftest", *args],
                cwd=str(work), capture_output=True, check=True)
        git("init", "-q")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")
        target = work / "src" / "touched.cc"
        with target.open("a") as f:
            f.write(self.NEW_FUNC)
        return len(target.read_text().splitlines()) - 1

    def test_diff_is_strict_subset_of_full_run(self):
        with tempfile.TemporaryDirectory() as td:
            work = Path(td)
            fresh_line = self._scratch_repo(work)

            code, full_out, _ = run_lint(
                ["--no-baseline", "src"], cwd=work)
            self.assertEqual(code, 1)
            full = findings_of(full_out)
            # The committed findings plus the planted one.
            self.assertIn(("src/touched.cc", 7, "raw-new-delete"),
                          full)
            self.assertIn(("src/untouched.cc", 6, "raw-new-delete"),
                          full)

            code, diff_out, err = run_lint(
                ["--no-baseline", "--diff", "HEAD", "src"], cwd=work)
            self.assertEqual(code, 1, diff_out + err)
            diff = findings_of(diff_out)
            self.assertEqual(
                diff,
                {("src/touched.cc", fresh_line, "raw-new-delete")},
                "diff mode must report exactly the findings in "
                "changed regions\n" + diff_out)
            self.assertTrue(diff < full,
                            "--diff output must be a strict subset "
                            "of the full run")

    def test_diff_output_identical_at_any_jobs(self):
        with tempfile.TemporaryDirectory() as td:
            work = Path(td)
            self._scratch_repo(work)
            outs = {}
            for jobs in ("1", "4"):
                code, out, _ = run_lint(
                    ["--no-baseline", "--diff", "HEAD",
                     "--jobs", jobs, "src"], cwd=work)
                outs[jobs] = (code, out)
            self.assertEqual(outs["1"], outs["4"],
                             "--diff text output must not depend "
                             "on --jobs")

    def test_untracked_file_is_fully_linted(self):
        with tempfile.TemporaryDirectory() as td:
            work = Path(td)
            self._scratch_repo(work)
            fresh = work / "src" / "brand_new.cc"
            fresh.write_text("int *f() { return new int; }\n")
            code, out, _ = run_lint(
                ["--no-baseline", "--diff", "HEAD", "src"], cwd=work)
            self.assertEqual(code, 1)
            self.assertIn(("src/brand_new.cc", 1, "raw-new-delete"),
                          findings_of(out))

    def test_diff_rejects_write_baseline(self):
        code, _, err = run_lint(
            ["--diff", "HEAD", "--write-baseline", "src"], cwd=REPO)
        self.assertEqual(code, 2)
        self.assertIn("mutually exclusive", err)

    def test_bad_ref_fails_loudly(self):
        with tempfile.TemporaryDirectory() as td:
            work = Path(td)
            self._scratch_repo(work)
            code, _, err = run_lint(
                ["--no-baseline", "--diff", "no-such-ref", "src"],
                cwd=work)
            self.assertEqual(code, 2)
            self.assertIn("git diff", err)


class LayerDagMatchesDocs(unittest.TestCase):
    """The DAG the rule enforces and the one DESIGN.md documents are
    the same table; an edit to either without the other fails here."""

    _EDGE_RE = re.compile(r"^\s*([a-z]+)\s*->\s*(.*?)\s*$")

    def _docs_dag(self):
        text = (REPO / "DESIGN.md").read_text()
        begin, end = "<!-- layer-dag -->", "<!-- /layer-dag -->"
        self.assertIn(begin, text,
                      "DESIGN.md lost its layer-dag block")
        self.assertIn(end, text,
                      "DESIGN.md lost its layer-dag end marker")
        block = text.split(begin)[1].split(end)[0]
        dag = {}
        for ln in block.splitlines():
            m = self._EDGE_RE.match(ln)
            if not m:
                continue
            deps = tuple(d for d in
                         re.split(r"[,\s]+", m.group(2)) if d)
            dag[m.group(1)] = deps
        return dag

    def test_rule_table_matches_design_md(self):
        sys.path.insert(0, str(CDPLINT))
        try:
            from rules.include_layering import LAYER_DAG
        finally:
            sys.path.pop(0)
        self.assertEqual(self._docs_dag(), dict(LAYER_DAG))


class CliSurface(unittest.TestCase):
    def test_list_rules_names_all_rules(self):
        code, out, _ = run_lint(["--list-rules"], cwd=REPO)
        self.assertEqual(code, 0)
        for rid in RULE_GROUPS + ["bad-suppression",
                                  "unused-suppression",
                                  "legacy-waiver"]:
            self.assertIn(rid, out)

    def test_unknown_rule_is_usage_error(self):
        code, _, err = run_lint(
            ["--rule", "no-such-rule", "src"], cwd=REPO)
        self.assertEqual(code, 2)
        self.assertIn("unknown rule", err)

    def test_repo_tree_is_clean(self):
        code, out, err = run_lint(["src", "bench"], cwd=REPO)
        self.assertEqual(code, 0, out + err)


if __name__ == "__main__":
    unittest.main(verbosity=2)
