"""Entry point: ``python3 tools/cdplint [paths...]``.

Running a directory puts that directory on sys.path, so the engine
and rule modules import as plain top-level modules.
"""

import sys

from engine import main

if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # Output piped into head & friends; not an analysis failure.
        sys.exit(0)
