"""Declaration-aware index over the lexed token streams.

The retired single-file linter knew which identifiers hold Cycle
timestamps via a hardcoded list; this module derives that information
from the declarations themselves, across every file in the lint run:

  - cycle_idents: identifiers declared with type `Cycle` (variables,
    members, parameters), e.g. `Cycle now`, `const Cycle &deadline`.
  - cycle_funcs: functions declared returning `Cycle`, so a call like
    `bus.freeCycle()` is recognized as a Cycle-typed operand.
  - unordered_idents: identifiers declared as std::unordered_map /
    std::unordered_set (any template arguments).
  - unordered_funcs: functions returning (references to) unordered
    containers, e.g. check::Access::entries().

The index is global across the run on purpose: the tree's naming is
consistent (a member called `completion` is a Cycle everywhere), and
the header that declares a member is usually a different file from
the .cc that does the arithmetic on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from lexer import IDENT, PUNCT, Token

# Tokens that may appear between a type name and the declared
# identifier (cv-qualifiers and declarator punctuation).
_DECL_SKIP_IDENTS = {"const", "volatile", "constexpr", "static",
                     "inline", "mutable"}
_DECL_SKIP_PUNCT = {"&", "*", "&&"}

_UNORDERED_TYPES = {"unordered_map", "unordered_set",
                    "unordered_multimap", "unordered_multiset"}


@dataclass
class DeclIndex:
    cycle_idents: Set[str] = field(default_factory=set)
    cycle_funcs: Set[str] = field(default_factory=set)
    unordered_idents: Set[str] = field(default_factory=set)
    unordered_funcs: Set[str] = field(default_factory=set)
    # path -> list of (line, member) Scalar/Distribution/Formula
    # declarations found in that header (consumed by stat-registered).
    stat_members: Dict[str, List] = field(default_factory=dict)

    def is_cycle_operand(self, name: str, is_call: bool) -> bool:
        if is_call:
            return name in self.cycle_funcs
        return name in self.cycle_idents

    def is_unordered_expr_ident(self, name: str) -> bool:
        return (name in self.unordered_idents or
                name in self.unordered_funcs)


def build_index(streams: Dict[str, List[Token]]) -> DeclIndex:
    """Scan every token stream and collect declarations."""
    idx = DeclIndex()
    for _path, toks in sorted(streams.items()):
        _scan_cycle_decls(toks, idx)
        _scan_unordered_decls(toks, idx)
    return idx


def _scan_cycle_decls(toks: List[Token], idx: DeclIndex) -> None:
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text != "Cycle":
            continue
        # `using Cycle = ...` or `cdp::Cycle` type *position* only:
        # require the previous token not to be `=` (alias target use
        # is still a type position, fine) — no constraint needed; we
        # only act when an identifier follows.
        j = i + 1
        # Skip declarator decoration: `Cycle *p`, `Cycle &r`,
        # `Cycle const x`.
        while j < n and ((toks[j].kind == IDENT and
                          toks[j].text in _DECL_SKIP_IDENTS) or
                         (toks[j].kind == PUNCT and
                          toks[j].text in _DECL_SKIP_PUNCT)):
            j += 1
        if j >= n or toks[j].kind != IDENT:
            continue
        name = toks[j].text
        nxt = toks[j + 1] if j + 1 < n else None
        if nxt is not None and nxt.kind == PUNCT and nxt.text == "(":
            # Function returning Cycle (or paren-init variable, which
            # is indistinguishable without full parsing; recording it
            # as a callable is the useful interpretation here).
            idx.cycle_funcs.add(name)
            continue
        idx.cycle_idents.add(name)
        # Comma-separated declarator list: `Cycle a, b;`
        k = j + 1
        while k + 1 < n and toks[k].kind == PUNCT and toks[k].text == ",":
            if toks[k + 1].kind == IDENT:
                idx.cycle_idents.add(toks[k + 1].text)
                k += 2
            else:
                break


def _scan_unordered_decls(toks: List[Token], idx: DeclIndex) -> None:
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in _UNORDERED_TYPES:
            continue
        # Must be followed by a template argument list.
        j = i + 1
        if j >= n or toks[j].text != "<":
            continue
        depth = 0
        while j < n:
            if toks[j].text == "<":
                depth += 1
            elif toks[j].text == ">":
                depth -= 1
                if depth == 0:
                    break
            elif toks[j].text == ">>":
                depth -= 2
                if depth <= 0:
                    break
            j += 1
        if j >= n:
            continue
        j += 1
        while j < n and ((toks[j].kind == IDENT and
                          toks[j].text in _DECL_SKIP_IDENTS) or
                         (toks[j].kind == PUNCT and
                          toks[j].text in _DECL_SKIP_PUNCT)):
            j += 1
        if j >= n or toks[j].kind != IDENT:
            continue
        name = toks[j].text
        nxt = toks[j + 1] if j + 1 < n else None
        if nxt is not None and nxt.kind == PUNCT and nxt.text == "(":
            idx.unordered_funcs.add(name)
        else:
            idx.unordered_idents.add(name)
