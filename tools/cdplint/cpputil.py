"""Small token-stream utilities shared by the rules."""

from __future__ import annotations

from typing import List, Optional, Tuple

from lexer import IDENT, PUNCT, Token

_OPEN = {"(": ")", "{": "}", "[": "]"}


def match_close(toks: List[Token], i: int) -> int:
    """Index of the token closing the bracket at ``i``; len(toks) if
    unbalanced."""
    opener = toks[i].text
    closer = _OPEN[opener]
    depth = 0
    j = i
    n = len(toks)
    while j < n:
        t = toks[j]
        if t.kind == PUNCT:
            if t.text == opener:
                depth += 1
            elif t.text == closer:
                depth -= 1
                if depth == 0:
                    return j
        j += 1
    return n


def operand_left(toks: List[Token], i: int
                 ) -> Tuple[Optional[str], bool]:
    """Resolve the postfix expression ending just before index ``i``
    (exclusive) to its final member/identifier.

    Returns (name, is_call): for ``e->completion`` → ("completion",
    False); for ``bus.freeCycle()`` → ("freeCycle", True); (None, _)
    when the left operand is not an identifier chain.
    """
    j = i - 1
    if j < 0:
        return None, False
    is_call = False
    if toks[j].kind == PUNCT and toks[j].text == ")":
        # Walk back to the matching open paren, then the callee name.
        depth = 0
        while j >= 0:
            if toks[j].text == ")":
                depth += 1
            elif toks[j].text == "(":
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        j -= 1
        is_call = True
    if j < 0 or toks[j].kind != IDENT:
        return None, is_call
    return toks[j].text, is_call


def operand_right(toks: List[Token], i: int
                  ) -> Tuple[Optional[str], bool]:
    """Resolve the postfix expression starting at index ``i`` to its
    final member identifier: ``line->fillCycle`` → ("fillCycle",
    False); ``bus.freeCycle()`` → ("freeCycle", True)."""
    n = len(toks)
    j = i
    if j < n and toks[j].kind == PUNCT and toks[j].text in ("*", "&"):
        j += 1  # deref / address-of prefix
    if j >= n or toks[j].kind != IDENT:
        return None, False
    last = toks[j].text
    j += 1
    while j + 1 < n and toks[j].kind == PUNCT and \
            toks[j].text in (".", "->", "::") and \
            toks[j + 1].kind == IDENT:
        last = toks[j + 1].text
        j += 2
    is_call = j < n and toks[j].kind == PUNCT and toks[j].text == "("
    return last, is_call


def idents_in(toks: List[Token], lo: int, hi: int) -> List[str]:
    """All identifier texts in toks[lo:hi]."""
    return [t.text for t in toks[lo:hi] if t.kind == IDENT]


def find_range_fors(toks: List[Token]):
    """Yield (for_index, iter_lo, iter_hi, body_lo, body_hi) for each
    range-based for statement; iter covers the tokens after ':' up to
    the closing ')', body covers the loop body (brace contents or the
    single statement)."""
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text != "for":
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        close = match_close(toks, i + 1)
        if close >= n:
            continue
        # Find a ':' at paren depth 1 that is not part of '::'.
        colon = -1
        depth = 0
        for j in range(i + 1, close):
            txt = toks[j].text
            if toks[j].kind != PUNCT:
                continue
            if txt in "([{":
                depth += 1
            elif txt in ")]}":
                depth -= 1
            elif txt == ":" and depth == 1:
                colon = j
                break
        if colon < 0:
            continue  # classic for loop
        body_lo = close + 1
        if body_lo < n and toks[body_lo].text == "{":
            body_hi = match_close(toks, body_lo)
        else:
            body_hi = body_lo
            while body_hi < n and toks[body_hi].text != ";":
                if toks[body_hi].text == "{":
                    body_hi = match_close(toks, body_hi)
                body_hi += 1
        yield i, colon + 1, close, body_lo, body_hi


def split_top_args(toks: List[Token], lo: int, hi: int
                   ) -> List[Tuple[int, int]]:
    """Split toks[lo:hi] (contents of an argument list) on top-level
    commas; returns (start, stop) index pairs."""
    args = []
    depth = 0
    start = lo
    for j in range(lo, hi):
        txt = toks[j].text
        if toks[j].kind == PUNCT:
            if txt in "([{":
                depth += 1
            elif txt in ")]}":
                depth -= 1
            elif txt == "," and depth == 0:
                args.append((start, j))
                start = j + 1
    if start < hi:
        args.append((start, hi))
    return args
