"""nondeterminism: sources of run-to-run variance are banned from
simulated code.

The -j1 == -jN golden contract (DESIGN.md section 8) only holds when
nothing under src/ or bench/ reads ambient entropy: hardware RNGs,
wall clocks, the environment, or address-space layout (pointer
values formatted into output change with ASLR).

Host-side orchestration — the runner's telemetry and the CLI tools —
legitimately reads wall clocks and environment knobs, so paths under
src/runner/ and tools/ are exempt from the clock and getenv checks
(never from std::random_device).
"""

from __future__ import annotations

from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PUNCT, STRING


_WALL_CLOCK = {"system_clock", "steady_clock", "high_resolution_clock",
               "gettimeofday", "clock_gettime", "timespec_get",
               "localtime", "gmtime", "strftime", "mktime"}
_GETENV = {"getenv", "secure_getenv"}


def _exempt(path: str) -> bool:
    p = path.replace("\\", "/")
    return ("/runner/" in p or p.startswith("tools/") or
            "/tools/" in p)


@rule
class Nondeterminism:
    id = "nondeterminism"
    severity = SEV_ERROR
    doc = """No nondeterminism sources in simulated code:
    std::random_device (anywhere), wall-clock reads and getenv
    (outside src/runner/ and tools/), and pointer values formatted
    into output ('%p', streaming a void* cast or an address-of) —
    ASLR makes those differ run to run, which breaks the byte-
    identical golden contract."""

    def check(self, ctx):
        toks = ctx.tokens
        n = len(toks)
        exempt = _exempt(ctx.path)
        for i, t in enumerate(toks):
            if t.kind == IDENT:
                if t.text == "random_device":
                    yield Finding(
                        self.id, ctx.path, t.line, t.col,
                        "std::random_device is a hardware entropy "
                        "source; seed a cdp::Rng from the config "
                        "instead")
                    continue
                if t.text in _WALL_CLOCK and not exempt:
                    yield Finding(
                        self.id, ctx.path, t.line, t.col,
                        f"wall-clock source '{t.text}' in simulated "
                        "code; simulation time is Cycle — wall time "
                        "belongs in src/runner telemetry only")
                    continue
                if t.text in _GETENV and not exempt:
                    yield Finding(
                        self.id, ctx.path, t.line, t.col,
                        f"'{t.text}' outside src/runner//tools makes "
                        "simulated behavior depend on the "
                        "environment; plumb it through SimConfig")
                    continue
                if t.text == "time" and i >= 2 and \
                        toks[i - 1].text == "::" and \
                        toks[i - 2].text == "std" and \
                        i + 1 < n and toks[i + 1].text == "(" and \
                        not exempt:
                    yield Finding(
                        self.id, ctx.path, t.line, t.col,
                        "std::time() in simulated code; wall time "
                        "belongs in src/runner telemetry only")
                    continue
            elif t.kind == STRING:
                if "%p" in t.text:
                    yield Finding(
                        self.id, ctx.path, t.line, t.col,
                        "'%p' formats a pointer value into output; "
                        "ASLR makes it differ run to run — print a "
                        "stable id or offset instead")
            elif t.kind == PUNCT and t.text == "<<":
                nxt = toks[i + 1] if i + 1 < n else None
                if nxt is None:
                    continue
                # `<< static_cast<void *>(p)` / `<< (void *)p`
                if nxt.kind == IDENT and nxt.text == "static_cast":
                    j = i + 2
                    depth = 0
                    seen_void = False
                    while j < n:
                        txt = toks[j].text
                        if txt == "<":
                            depth += 1
                        elif txt in (">", ">>"):
                            depth -= 1 if txt == ">" else 2
                            if depth <= 0:
                                break
                        elif toks[j].kind == IDENT and txt == "void":
                            seen_void = True
                        j += 1
                    if seen_void:
                        yield Finding(
                            self.id, ctx.path, t.line, t.col,
                            "pointer value streamed into output "
                            "(void* cast); ASLR makes it differ run "
                            "to run")
                    continue
                # `<< &obj` — streaming an object's address.
                if nxt.kind == PUNCT and nxt.text == "&" and \
                        i + 2 < n and toks[i + 2].kind == IDENT:
                    yield Finding(
                        self.id, ctx.path, t.line, t.col,
                        "address-of streamed into output; pointer "
                        "values vary with ASLR — print a stable id "
                        "instead")
