"""static-mutable: no hidden per-process mutable state — sims fan
out across the src/runner worker threads."""

from __future__ import annotations

from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PUNCT


@rule
class StaticMutable:
    id = "static-mutable"
    severity = SEV_ERROR
    doc = """No function-local (or otherwise scope-indented) `static`
    mutable state. Simulations run concurrently on the src/runner
    thread pool, so hidden per-process state breaks thread-safety and
    the -j1 == -jN determinism contract. `static const`/`constexpr`
    data and static member functions are fine; deliberate shared
    state must be an explicit namespace-scope object with documented
    locking."""

    def check(self, ctx):
        toks = ctx.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != IDENT or t.text != "static":
                continue
            # Namespace-scope statics (column 1) are the sanctioned
            # explicit form; indentation marks function/class scope.
            if t.col == 1:
                continue
            has_const = False
            paren_pos = None
            init_pos = None
            depth = 0
            j = i + 1
            while j < n:
                tok = toks[j]
                txt = tok.text
                if tok.kind == PUNCT:
                    if txt == "(":
                        if depth == 0 and paren_pos is None:
                            paren_pos = j
                        depth += 1
                    elif txt == ")":
                        depth -= 1
                    elif txt == "<":
                        depth += 1
                    elif txt in (">", ">>"):
                        depth -= 1 if txt == ">" else 2
                        depth = max(depth, 0)
                    elif depth == 0 and txt == "=":
                        if init_pos is None:
                            init_pos = j
                    elif depth == 0 and txt == "{":
                        if init_pos is None:
                            init_pos = j
                        break
                    elif depth == 0 and txt == ";":
                        break
                elif tok.kind == IDENT and depth == 0 and \
                        init_pos is None and \
                        txt in ("const", "constexpr", "consteval"):
                    has_const = True
                j += 1
            if has_const:
                continue  # immutable state is safe to share
            # A parameter list opening before any initializer means a
            # static member *function*, not state. (Paren-initialized
            # static variables slip through; brace- or =-initialize
            # statics so the analyzer can see them.)
            if paren_pos is not None and (init_pos is None or
                                          paren_pos < init_pos):
                continue
            yield Finding(
                self.id, ctx.path, t.line, t.col,
                "function-local static mutable state; sims run "
                "concurrently (src/runner) — hoist to an explicit "
                "synchronized namespace-scope object or make it "
                "const")
