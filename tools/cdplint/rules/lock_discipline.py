"""lock-discipline v2: path-sensitive lock-state tracking.

The work-stealing pool in src/runner is the one place the simulator
is genuinely concurrent, and its correctness argument is simple: a
handful of members are only ever accessed with ``mtx`` held. TSan
checks that argument dynamically — when a schedule happens to race.
PR 6 checked it *lexically*; this version checks it on the cdplint
CFG, which buys three things the lexical walk could not see:

  - **conditional locks** — ``if (need) mtx.lock();`` followed by a
    guarded access joins "held" with "not held"; the must-analysis
    (intersection join) correctly says *not provably held*;
  - **early return while held** — a manual ``mtx.lock()`` that
    escapes through one ``return`` but not the other is reported at
    the leaking return (may-analysis, union join);
  - **double lock** — ``mtx.lock()`` (or constructing a guard of
    ``mtx``) on a path where ``mtx`` may already be held is UB on a
    non-recursive mutex and is reported at the second acquisition.

RAII guards stay *lexical intervals*: a ``lock_guard``'s lifetime is
its scope by construction, so the interval [construction token,
scope-closing ``}``] is exact, not an approximation. Manual
``.lock()``/``.unlock()`` — including through a ``unique_lock``
declared ``std::defer_lock`` — flow through the dataflow solver. A
member access is legal when *any* of the three sources holds the
mutex: a requires_lock contract, an enclosing RAII interval, or the
must-state of the flow analysis.

Deliberate limits (unchanged from v1, documented in DESIGN.md §10):
no lock transfer, no ``condition_variable::wait`` unlock window, no
aliasing through references; ``unique_lock::unlock()`` inside the
guard's own RAII interval is ignored (a conservative miss, never a
false positive). TSan remains the proof; this is the zero-execution
regression net.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import dataflow
from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PUNCT

_GUARD_CLASSES = {"lock_guard", "unique_lock", "scoped_lock",
                  "shared_lock"}
# Constructor arguments that are lock-policy tags, not mutexes.
_LOCK_TAGS = {"std", "defer_lock", "adopt_lock", "try_to_lock"}


def _guarded_members(model, ci) -> Dict[str, Tuple[str, object]]:
    """member name -> (mutex name, annotation) for guarded_by
    annotations attached to this class's member declarations."""
    out: Dict[str, Tuple[str, object]] = {}
    by_line = {m.line: m for m in ci.members}
    for a in model.annotations.get(ci.path, []):
        if a.kind != "guarded_by":
            continue
        m = by_line.get(a.target_line)
        if m is None or not (ci.line <= a.target_line <= ci.end_line):
            continue
        if a.args:
            out[m.name] = (a.args[0], a)
    return out


def _requires_locks(model, path: str, body,
                    body_open_line: int) -> Set[str]:
    """Mutexes a requires_lock annotation on this definition's
    signature lines declares held."""
    held: Set[str] = set()
    for a in model.annotations.get(path, []):
        if a.kind != "requires_lock":
            continue
        if body.sig_line <= a.target_line <= body_open_line:
            held.update(a.args)
    return held


class _BodyLocks:
    """Lexical pre-pass over one body: RAII intervals, manual
    lock/unlock events, guard-object-to-mutex bindings, and guarded
    member access sites — everything the flow analysis consumes."""

    def __init__(self, toks, lo: int, hi: int, mutex_members: Set[str],
                 guarded: Dict[str, Tuple[str, object]]):
        self.raii: List[Tuple[str, int, int]] = []  # (mutex, lo, hi)
        self.events: List[Tuple[int, str, int]] = []  # (tok, mtx, ±1)
        self.accesses: List[Tuple[int, str]] = []   # (tok, member)
        obj2mtx: Dict[str, str] = {}
        open_raii: List[Tuple[str, int, int]] = []  # (mtx, lo, depth)
        depth = 0
        n = min(hi + 1, len(toks))
        j = lo
        while j < n:
            t = toks[j]
            if t.kind == PUNCT:
                if t.text == "{":
                    depth += 1
                elif t.text == "}":
                    depth -= 1
                    still = []
                    for m, s, d in open_raii:
                        if d > depth:
                            self.raii.append((m, s, j))
                        else:
                            still.append((m, s, d))
                    open_raii = still
                j += 1
                continue
            if t.kind != IDENT:
                j += 1
                continue
            if t.text in _GUARD_CLASSES:
                j = self._consume_guard(toks, j, n, depth, open_raii,
                                        obj2mtx)
                continue
            # Manual m.lock() / m.unlock(), directly on a mutex member
            # or through a bound guard object (defer_lock idiom).
            if j + 3 < n and toks[j + 1].kind == PUNCT and \
                    toks[j + 1].text == "." and \
                    toks[j + 2].kind == IDENT and \
                    toks[j + 2].text in ("lock", "unlock") and \
                    toks[j + 3].kind == PUNCT and \
                    toks[j + 3].text == "(":
                name = t.text
                mtx = obj2mtx.get(name,
                                  name if name in mutex_members
                                  else None)
                if mtx is not None:
                    delta = 1 if toks[j + 2].text == "lock" else -1
                    self.events.append((j, mtx, delta))
                j += 4
                continue
            if t.text in guarded:
                prev = toks[j - 1] if j > 0 else None
                if prev is not None and prev.kind == PUNCT and \
                        prev.text in (".", "->"):
                    base = toks[j - 2] if j >= 2 else None
                    if not (base is not None and base.kind == IDENT
                            and base.text == "this"):
                        j += 1
                        continue
                nxt = toks[j + 1] if j + 1 < n else None
                if nxt is not None and nxt.kind == PUNCT and \
                        nxt.text == "::":
                    j += 1
                    continue
                self.accesses.append((j, t.text))
            j += 1
        for m, s, _ in open_raii:  # unclosed at body end (truncated)
            self.raii.append((m, s, n))

    @staticmethod
    def _consume_guard(toks, j, n, depth, open_raii, obj2mtx) -> int:
        """Parse a guard construction; record its RAII interval (or a
        defer_lock binding) and return the index to resume at."""
        k = j + 1
        if k < n and toks[k].kind == PUNCT and toks[k].text == "<":
            adepth = 0
            while k < n:
                if toks[k].text == "<":
                    adepth += 1
                elif toks[k].text == ">":
                    adepth -= 1
                    if adepth == 0:
                        break
                elif toks[k].text == ">>":
                    adepth -= 2
                    if adepth <= 0:
                        break
                k += 1
            k += 1
        obj = None
        if k < n and toks[k].kind == IDENT:
            obj = toks[k].text
            k += 1
        if k >= n or toks[k].kind != PUNCT or \
                toks[k].text not in ("(", "{"):
            return j + 1  # a mention, not a construction
        opener = toks[k].text
        closer = ")" if opener == "(" else "}"
        pdepth = 0
        mutexes: List[str] = []
        deferred = False
        k2 = k
        while k2 < n:
            tt = toks[k2]
            if tt.kind == PUNCT:
                if tt.text == opener:
                    pdepth += 1
                elif tt.text == closer:
                    pdepth -= 1
                    if pdepth == 0:
                        break
            elif tt.kind == IDENT:
                if tt.text == "defer_lock":
                    deferred = True
                elif tt.text not in _LOCK_TAGS:
                    mutexes.append(tt.text)
            k2 += 1
        if deferred:
            # Only a defer_lock guard routes obj.lock()/obj.unlock()
            # into the flow state; for a live RAII guard those calls
            # are ignored (conservative miss, never a false
            # positive) — the interval already says "held".
            if obj is not None and mutexes:
                obj2mtx[obj] = mutexes[0]
        else:
            for m in mutexes:
                open_raii.append((m, j, depth))
        return k2 + 1

    def in_raii(self, mutex: str, tok: int) -> bool:
        return any(m == mutex and lo <= tok <= hi
                   for m, lo, hi in self.raii)


@rule
class LockDiscipline:
    id = "lock-discipline"
    severity = SEV_ERROR
    doc = """A member annotated '// cdplint: guarded_by(mtx)' may only
    be used where that mutex is provably held on every path: under a
    RAII guard, after a manual .lock() with no path releasing it, or
    in a body marked '// cdplint: requires_lock(mtx)'. Also reports
    early returns holding a manual lock and double acquisition on a
    path where the mutex may already be held. Path-sensitive (CFG +
    must/may dataflow); the zero-execution complement to the TSan
    job for src/runner's work-stealing pool."""

    def check(self, ctx):
        model = ctx.model
        if model is None:
            return
        yield from self._annotation_hygiene(ctx, model)
        for body in model.bodies.get(ctx.path, []):
            ci = self._owner(model, body)
            if ci is None:
                continue
            guarded = _guarded_members(model, ci)
            if not guarded and not ci.mutex_members:
                continue
            yield from self._check_body(ctx, model, ci, body, guarded)

    # -- annotation validation (anchored where the annotation is) -------

    def _annotation_hygiene(self, ctx, model):
        classes = model.classes_in(ctx.path)
        body_sig_ranges = []
        for b in model.bodies.get(ctx.path, []):
            open_line = ctx.tokens[b.body_lo].line \
                if b.body_lo < len(ctx.tokens) else b.sig_line
            body_sig_ranges.append((b.sig_line, open_line))
        for a in model.annotations.get(ctx.path, []):
            if a.kind == "guarded_by":
                if len(a.args) != 1:
                    yield Finding(
                        self.id, ctx.path, a.comment_line, 1,
                        "guarded_by takes exactly one mutex member")
                    continue
                owner = next(
                    (ci for ci in classes
                     if ci.line <= a.target_line <= ci.end_line and
                     any(m.line == a.target_line
                         for m in ci.members)), None)
                if owner is None:
                    yield Finding(
                        self.id, ctx.path, a.comment_line, 1,
                        "guarded_by must sit on a data-member "
                        "declaration inside a class body")
                elif a.args[0] not in owner.mutex_members:
                    yield Finding(
                        self.id, ctx.path, a.comment_line, 1,
                        f"guarded_by('{a.args[0]}') names no mutex "
                        f"member of {owner.name}")
            elif a.kind == "requires_lock":
                if not any(lo <= a.target_line <= hi
                           for lo, hi in body_sig_ranges):
                    yield Finding(
                        self.id, ctx.path, a.comment_line, 1,
                        "requires_lock must sit on a function "
                        "definition's signature")

    # -- body analysis ---------------------------------------------------

    def _owner(self, model, body):
        lst = model.classes.get(body.cls)
        if not lst:
            short = body.cls.rsplit("::", 1)[-1]
            for name in sorted(model.classes):
                if name.rsplit("::", 1)[-1] == short:
                    lst = model.classes[name]
                    break
        if not lst:
            return None
        for ci in lst:
            if ci.path == body.path:
                return ci
        stem = body.path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        for ci in lst:
            if ci.path.rsplit("/", 1)[-1].rsplit(".", 1)[0] == stem:
                return ci
        return lst[0]

    def _check_body(self, ctx, model, ci, body, guarded):
        toks = ctx.tokens
        open_line = toks[body.body_lo].line \
            if body.body_lo < len(toks) else body.sig_line
        pre_held = _requires_locks(model, ctx.path, body, open_line)
        bl = _BodyLocks(toks, body.body_lo, body.body_hi,
                        ci.mutex_members, guarded)
        if not (bl.accesses or bl.events or bl.raii):
            return
        cfg = ctx.cfg_of(body)

        def stmt_transfer(rng, state: FrozenSet[str]
                          ) -> FrozenSet[str]:
            lo, hi = rng
            s = set(state)
            for idx, mtx, delta in bl.events:
                if lo <= idx < hi:
                    (s.add if delta > 0 else s.discard)(mtx)
            return frozenset(s)

        def transfer(block, state):
            for rng in block.stmts:
                state = stmt_transfer(rng, state)
            return state

        must_in, _ = dataflow.solve_forward(
            cfg, frozenset(), transfer, lambda a, b: a & b)
        may_in, may_out = dataflow.solve_forward(
            cfg, frozenset(), transfer, lambda a, b: a | b)

        def at_tok(pre: FrozenSet[str], rng, tok: int
                   ) -> FrozenSet[str]:
            """State just before token ``tok`` inside statement
            ``rng``, replaying the statement's earlier events."""
            s = set(pre)
            for idx, mtx, delta in bl.events:
                if rng[0] <= idx < tok:
                    (s.add if delta > 0 else s.discard)(mtx)
            return frozenset(s)

        findings: List[Finding] = []
        fell_off: Set[str] = set()
        exit_preds = set(cfg.block(cfg.exit).preds)

        for bid in cfg.rpo():
            if bid == cfg.exit:
                continue
            block = cfg.block(bid)
            must0, may0 = must_in.get(bid), may_in.get(bid)
            if must0 is None or may0 is None:
                continue
            must_states = list(dataflow.states_at(
                block, must0, stmt_transfer))
            may_states = list(dataflow.states_at(
                block, may0, stmt_transfer))
            for (rng, must_pre), (_, may_pre) in zip(must_states,
                                                     may_states):
                lo, hi = rng
                head = toks[lo].text if lo < len(toks) else ""
                # Guarded member access: must-held check.
                for tok, member in bl.accesses:
                    if not (lo <= tok < hi):
                        continue
                    mutex = guarded[member][0]
                    if mutex in pre_held or \
                            bl.in_raii(mutex, tok) or \
                            mutex in at_tok(must_pre, rng, tok):
                        continue
                    t = toks[tok]
                    findings.append(Finding(
                        self.id, ctx.path, t.line, t.col,
                        f"member '{member}' of {ci.name} is "
                        f"guarded_by({mutex}) but this use in "
                        f"{body.cls}::{body.method} is not under "
                        f"'{mutex}' on every path reaching it"))
                # Double lock: may-held check at each acquisition.
                for idx, mtx, delta in bl.events:
                    if delta < 0 or not (lo <= idx < hi):
                        continue
                    if mtx in pre_held or \
                            mtx in at_tok(may_pre, rng, idx) or \
                            any(m == mtx and s < idx <= e
                                for m, s, e in bl.raii):
                        t = toks[idx]
                        findings.append(Finding(
                            self.id, ctx.path, t.line, t.col,
                            f"'{mtx}.lock()' on a path where "
                            f"'{mtx}' may already be held "
                            f"(double lock is undefined on a "
                            f"non-recursive mutex)"))
                for m, s, e in bl.raii:
                    if not (lo <= s < hi):
                        continue
                    if m in pre_held or \
                            m in at_tok(may_pre, rng, s) or \
                            any(m2 == m and s2 < s <= e2
                                for m2, s2, e2 in bl.raii
                                if (m2, s2, e2) != (m, s, e)):
                        t = toks[s]
                        findings.append(Finding(
                            self.id, ctx.path, t.line, t.col,
                            f"guard of '{m}' constructed on a path "
                            f"where '{m}' may already be held "
                            f"(double lock)"))
                # Early return holding a manual lock.
                if head == "return":
                    leak = at_tok(may_pre, rng, lo)
                    for mtx in sorted(leak):
                        t = toks[lo]
                        findings.append(Finding(
                            self.id, ctx.path, t.line, t.col,
                            f"returns while '{mtx}' is still "
                            f"manually locked on some path; unlock "
                            f"first or use a lock_guard"))
            # Fall-off-the-end while manually locked.
            if bid in exit_preds:
                last_head = ""
                if block.stmts:
                    lt = block.stmts[-1][0]
                    last_head = toks[lt].text if lt < len(toks) else ""
                if last_head not in ("return", "throw", "goto"):
                    out = may_out.get(bid)
                    if out:
                        fell_off.update(out)
        if fell_off:
            close = min(body.body_hi, len(toks) - 1)
            t = toks[close]
            for mtx in sorted(fell_off):
                findings.append(Finding(
                    self.id, ctx.path, t.line, t.col,
                    f"function ends while '{mtx}' is still "
                    f"manually locked on some path"))

        seen: Set[Tuple[int, int, str]] = set()
        for f in sorted(findings,
                        key=lambda f: (f.line, f.col, f.message)):
            key = (f.line, f.col, f.message)
            if key not in seen:
                seen.add(key)
                yield f
