"""lock-discipline: annotated members are only touched under their lock.

The work-stealing pool in src/runner is the one place the simulator
is genuinely concurrent, and its correctness argument is simple: a
handful of members are only ever accessed with ``mtx`` held. TSan
checks that argument dynamically — when a schedule happens to race.
This rule checks it lexically, with zero execution: a member declared

    std::mutex mtx;
    std::size_t inflight = 0; // cdplint: guarded_by(mtx)

may only be referenced, inside the owning class's member-function
bodies, at a point where a ``std::lock_guard`` / ``unique_lock`` /
``scoped_lock`` of ``mtx`` constructed in an enclosing scope is still
alive, or after a bare ``mtx.lock()`` without an intervening
``mtx.unlock()``. Functions whose *contract* is "caller holds the
lock" say so at the definition:

    // cdplint: requires_lock(mtx)
    bool ThreadPool::takeTask(...)

and their whole body is treated as locked.

This is a deliberate heuristic, not a thread-safety proof (that is
what the TSan CI job is for): it does not model lock transfer,
``condition_variable::wait``'s unlock window, or aliasing through
references. What it does catch — cheaply, on every lint run — is the
common regression: a new method (or a quick fix in an old one)
reading a guarded member with no lock in sight. Accesses through
*other* objects (``other.inflight``) and from free functions are out
of scope; single-threaded phases (a constructor running before any
worker exists) use an ``allow(lock-discipline)`` suppression with the
reason spelled out.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PUNCT

_GUARD_CLASSES = {"lock_guard", "unique_lock", "scoped_lock",
                  "shared_lock"}


def _guarded_members(model, ci) -> Dict[str, Tuple[str, object]]:
    """member name -> (mutex name, annotation) for guarded_by
    annotations attached to this class's member declarations."""
    out: Dict[str, Tuple[str, object]] = {}
    by_line = {m.line: m for m in ci.members}
    for a in model.annotations.get(ci.path, []):
        if a.kind != "guarded_by":
            continue
        m = by_line.get(a.target_line)
        if m is None or not (ci.line <= a.target_line <= ci.end_line):
            continue
        if a.args:
            out[m.name] = (a.args[0], a)
    return out


def _requires_locks(model, path: str, body,
                    body_open_line: int) -> Set[str]:
    """Mutexes a requires_lock annotation on this definition's
    signature lines declares held."""
    held: Set[str] = set()
    for a in model.annotations.get(path, []):
        if a.kind != "requires_lock":
            continue
        if body.sig_line <= a.target_line <= body_open_line:
            held.update(a.args)
    return held


class _Scope:
    """Active lock tracking while walking one body lexically."""

    def __init__(self, pre_held: Set[str]):
        self.pre_held = pre_held
        self.guards: List[Tuple[str, int, bool]] = []  # (mutex, depth, manual)

    def holds(self, mutex: str) -> bool:
        return mutex in self.pre_held or \
            any(g[0] == mutex for g in self.guards)

    def close_to(self, depth: int) -> None:
        self.guards = [g for g in self.guards if g[1] <= depth]


@rule
class LockDiscipline:
    id = "lock-discipline"
    severity = SEV_ERROR
    doc = """A member annotated '// cdplint: guarded_by(mtx)' next to
    its std::mutex may only be used inside a scope holding that mutex
    (a lock_guard/unique_lock/scoped_lock in an enclosing scope, a
    bare .lock(), or a body marked '// cdplint: requires_lock(mtx)').
    A zero-execution complement to the TSan job for src/runner's
    work-stealing pool."""

    def check(self, ctx):
        model = ctx.model
        if model is None:
            return
        yield from self._annotation_hygiene(ctx, model)
        for body in model.bodies.get(ctx.path, []):
            ci = self._owner(model, body)
            if ci is None:
                continue
            guarded = _guarded_members(model, ci)
            if not guarded:
                continue
            yield from self._check_body(ctx, model, ci, body, guarded)

    # -- annotation validation (anchored where the annotation is) -------

    def _annotation_hygiene(self, ctx, model):
        classes = model.classes_in(ctx.path)
        body_sig_ranges = []
        for b in model.bodies.get(ctx.path, []):
            open_line = ctx.tokens[b.body_lo].line \
                if b.body_lo < len(ctx.tokens) else b.sig_line
            body_sig_ranges.append((b.sig_line, open_line))
        for a in model.annotations.get(ctx.path, []):
            if a.kind == "guarded_by":
                if len(a.args) != 1:
                    yield Finding(
                        self.id, ctx.path, a.comment_line, 1,
                        "guarded_by takes exactly one mutex member")
                    continue
                owner = next(
                    (ci for ci in classes
                     if ci.line <= a.target_line <= ci.end_line and
                     any(m.line == a.target_line
                         for m in ci.members)), None)
                if owner is None:
                    yield Finding(
                        self.id, ctx.path, a.comment_line, 1,
                        "guarded_by must sit on a data-member "
                        "declaration inside a class body")
                elif a.args[0] not in owner.mutex_members:
                    yield Finding(
                        self.id, ctx.path, a.comment_line, 1,
                        f"guarded_by('{a.args[0]}') names no mutex "
                        f"member of {owner.name}")
            elif a.kind == "requires_lock":
                if not any(lo <= a.target_line <= hi
                           for lo, hi in body_sig_ranges):
                    yield Finding(
                        self.id, ctx.path, a.comment_line, 1,
                        "requires_lock must sit on a function "
                        "definition's signature")

    # -- body walk -------------------------------------------------------

    def _owner(self, model, body):
        lst = model.classes.get(body.cls)
        if not lst:
            short = body.cls.rsplit("::", 1)[-1]
            for name in sorted(model.classes):
                if name.rsplit("::", 1)[-1] == short:
                    lst = model.classes[name]
                    break
        if not lst:
            return None
        for ci in lst:
            if ci.path == body.path:
                return ci
        stem = body.path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        for ci in lst:
            if ci.path.rsplit("/", 1)[-1].rsplit(".", 1)[0] == stem:
                return ci
        return lst[0]

    def _check_body(self, ctx, model, ci, body, guarded):
        toks = ctx.tokens
        open_line = toks[body.body_lo].line
        scope = _Scope(_requires_locks(model, ctx.path, body,
                                       open_line))
        depth = 0
        j = body.body_lo
        n = min(body.body_hi + 1, len(toks))
        while j < n:
            t = toks[j]
            if t.kind == PUNCT:
                if t.text == "{":
                    depth += 1
                elif t.text == "}":
                    depth -= 1
                    scope.close_to(depth)
                j += 1
                continue
            if t.kind != IDENT:
                j += 1
                continue
            # Guard-object construction:
            #   std::lock_guard<std::mutex> lk(mtx);
            if t.text in _GUARD_CLASSES:
                j = self._consume_guard(toks, j, n, depth, scope)
                continue
            # Bare mtx.lock() / mtx.unlock().
            if j + 2 < n and toks[j + 1].kind == PUNCT and \
                    toks[j + 1].text == "." and \
                    toks[j + 2].kind == IDENT and \
                    toks[j + 2].text in ("lock", "unlock"):
                if toks[j + 2].text == "lock":
                    scope.guards.append((t.text, depth, True))
                else:
                    for k in range(len(scope.guards) - 1, -1, -1):
                        if scope.guards[k][0] == t.text and \
                                scope.guards[k][2]:
                            del scope.guards[k]
                            break
                j += 3
                continue
            # Guarded-member use?
            if t.text in guarded:
                prev = toks[j - 1] if j > 0 else None
                if prev is not None and prev.kind == PUNCT and \
                        prev.text in (".", "->"):
                    base = toks[j - 2] if j >= 2 else None
                    if not (base is not None and base.kind == IDENT
                            and base.text == "this"):
                        j += 1
                        continue
                nxt = toks[j + 1] if j + 1 < n else None
                if nxt is not None and nxt.kind == PUNCT and \
                        nxt.text == "::":
                    j += 1
                    continue
                mutex = guarded[t.text][0]
                if not scope.holds(mutex):
                    yield Finding(
                        self.id, ctx.path, t.line, t.col,
                        f"member '{t.text}' of {ci.name} is "
                        f"guarded_by({mutex}) but this use in "
                        f"{body.cls}::{body.method} holds no lock "
                        f"of '{mutex}'")
            j += 1

    def _consume_guard(self, toks, j, n, depth, scope) -> int:
        """From a lock_guard/unique_lock/... token, record the mutexes
        named in its constructor arguments as held at ``depth``."""
        k = j + 1
        # Template argument list.
        if k < n and toks[k].kind == PUNCT and toks[k].text == "<":
            adepth = 0
            while k < n:
                if toks[k].text == "<":
                    adepth += 1
                elif toks[k].text == ">":
                    adepth -= 1
                    if adepth == 0:
                        break
                elif toks[k].text == ">>":
                    adepth -= 2
                    if adepth <= 0:
                        break
                k += 1
            k += 1
        # Variable name.
        if k < n and toks[k].kind == IDENT:
            k += 1
        if k >= n or toks[k].kind != PUNCT or \
                toks[k].text not in ("(", "{"):
            return j + 1  # a mention, not a construction
        closer = ")" if toks[k].text == "(" else "}"
        opener = toks[k].text
        pdepth = 0
        k2 = k
        while k2 < n:
            if toks[k2].kind == PUNCT:
                if toks[k2].text == opener:
                    pdepth += 1
                elif toks[k2].text == closer:
                    pdepth -= 1
                    if pdepth == 0:
                        break
            elif toks[k2].kind == IDENT:
                scope.guards.append((toks[k2].text, depth, False))
            k2 += 1
        return k2 + 1
