"""cycle-arith: Cycle differences go through the checked helpers.

Declaration-aware port of the old rule: instead of a hardcoded
identifier list, any identifier declared `Cycle x` anywhere in the
lint run (and any function declared `Cycle f(...)`) is treated as a
Cycle-typed operand.
"""

from __future__ import annotations

from cpputil import operand_left, operand_right
from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, NUMBER, PUNCT


@rule
class CycleArith:
    id = "cycle-arith"
    severity = SEV_ERROR
    doc = """Direct subtraction between Cycle-typed expressions must
    go through the checked helpers cyclesSince()/cyclesUntil() in
    common/types.hh. Cycle is unsigned; a reversed subtraction yields
    a silent ~2^64 latency instead of an error. Identifiers are
    classified Cycle-typed from their declarations across the whole
    lint run."""

    _HELPERS = {"cyclesSince", "cyclesUntil"}

    def check(self, ctx):
        toks = ctx.tokens
        idx = ctx.index
        for i, t in enumerate(toks):
            if t.kind != PUNCT or t.text != "-":
                continue
            prev = toks[i - 1] if i > 0 else None
            if prev is None or not (
                    prev.kind in (IDENT, NUMBER) or
                    (prev.kind == PUNCT and prev.text in (")", "]"))):
                continue  # unary minus
            lname, lcall = operand_left(toks, i)
            rname, rcall = operand_right(toks, i + 1)
            if lname is None or rname is None:
                continue
            if not idx.is_cycle_operand(lname, lcall):
                continue
            if not idx.is_cycle_operand(rname, rcall):
                continue
            # A subtraction on a line that already routes through the
            # helpers is the helper call itself (or its argument
            # plumbing) — same exemption the old rule gave.
            line_idents = {tok.text
                           for tok in ctx.tokens_by_line.get(t.line, [])
                           if tok.kind == IDENT}
            if line_idents & self._HELPERS:
                continue
            lhs = f"{lname}()" if lcall else lname
            rhs = f"{rname}()" if rcall else rname
            yield Finding(
                self.id, ctx.path, t.line, t.col,
                f"raw Cycle subtraction '{lhs} - {rhs}'; use "
                "cyclesSince()/cyclesUntil() from common/types.hh")
