"""include-layering: enforce the DESIGN.md layer DAG structurally.

The tree is layered (DESIGN.md §10): foundation types at the bottom,
the simulator core in the middle, harnesses and observers on top. An
include that points up the DAG — or sideways between sibling layers —
couples modules the architecture says are independent (the
``obs`` -> ``memsys`` edge PR 4 had to fix by hand is the canonical
example: an observer that includes simulator internals can no longer
be proven pure). This rule rejects such edges at lint time.

The DAG below lists each module's *direct* dependencies; legality is
transitive reachability. Two files are layered by the directory they
live in under ``src/``, with per-file overrides for the foundation
headers that deliberately live against their directory's grain:
``check/check.hh`` (the assert macro, included by common/types.hh)
and ``snapshot/ckpt_io.hh``/``.cc`` (the serialization primitives
every saveState body uses) belong to the ``common`` layer even though
their directories are top-layer.

Files outside ``src/`` (bench, tests, tools) sit above the whole DAG
and may include anything; includes that do not resolve to a known
module (system headers, sibling-relative paths) are ignored.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from engine import Finding, SEV_ERROR, rule

# Direct dependencies; see the diagram in DESIGN.md §10. Keep the two
# in sync — the self-test cross-checks this table against the one in
# the docs.
LAYER_DAG: Dict[str, Tuple[str, ...]] = {
    "common":    (),
    "mem":       ("common",),
    "stats":     ("common",),
    "memsys":    ("mem", "stats"),
    "vm":        ("memsys",),
    "check":     ("memsys", "vm"),
    "core":      ("memsys",),
    "prefetch":  ("memsys",),
    "cpu":       ("memsys",),
    "trace":     ("cpu",),
    "workloads": ("cpu", "vm"),
    "obs":       ("common",),
    "sim":       ("core", "prefetch", "cpu", "vm", "workloads",
                  "trace", "check", "obs"),
    "runner":    ("sim",),
    "snapshot":  ("sim",),
}

# Foundation files whose layer differs from their directory's.
FILE_LAYER_OVERRIDES: Dict[str, str] = {
    "check/check.hh": "common",
    "snapshot/ckpt_io.hh": "common",
    "snapshot/ckpt_io.cc": "common",
}


def _closure() -> Dict[str, frozenset]:
    out: Dict[str, frozenset] = {}

    def visit(mod: str) -> frozenset:
        if mod in out:
            return out[mod]
        acc = set()
        for dep in LAYER_DAG[mod]:
            acc.add(dep)
            acc |= visit(dep)
        out[mod] = frozenset(acc)
        return out[mod]

    for mod in LAYER_DAG:
        visit(mod)
    return out


REACHABLE = _closure()


def src_relative(path: str) -> Optional[str]:
    """The part of ``path`` below its last ``src/`` component, or None
    when the file is not under a src tree."""
    parts = path.split("/")
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "src":
            return "/".join(parts[i + 1:])
    return None


def layer_of_file(path: str) -> Optional[str]:
    """Module a source file belongs to, or None (unconstrained)."""
    rel = src_relative(path)
    if rel is None:
        return None
    if rel in FILE_LAYER_OVERRIDES:
        return FILE_LAYER_OVERRIDES[rel]
    mod = rel.split("/", 1)[0]
    return mod if mod in LAYER_DAG else None


def layer_of_include(target: str) -> Optional[str]:
    """Module an include string points into, or None (not ours)."""
    if target in FILE_LAYER_OVERRIDES:
        return FILE_LAYER_OVERRIDES[target]
    mod = target.split("/", 1)[0]
    return mod if mod in LAYER_DAG else None


@rule
class IncludeLayering:
    id = "include-layering"
    severity = SEV_ERROR
    doc = """An #include that points up or across the DESIGN.md layer
    DAG (common -> mem/stats -> memsys -> core/prefetch/cpu/vm ->
    sim -> runner/snapshot, with check/obs as constrained observers)
    couples modules the architecture keeps independent. Depend
    downward only; foundation headers (check/check.hh,
    snapshot/ckpt_io.hh) are common-layer by decree."""

    def check(self, ctx):
        model = ctx.model
        if model is None:
            return
        src_mod = layer_of_file(ctx.path)
        if src_mod is None:
            return  # bench/tests/tools sit above the DAG
        allowed = REACHABLE[src_mod]
        for edge in model.includes.get(ctx.path, []):
            tgt_mod = layer_of_include(edge.target)
            if tgt_mod is None or tgt_mod == src_mod or \
                    tgt_mod in allowed:
                continue
            direction = "upward" if src_mod in REACHABLE[tgt_mod] \
                else "cross-layer"
            ok = ", ".join(sorted(allowed)) or "(nothing)"
            yield Finding(
                self.id, ctx.path, edge.line, 1,
                f"{direction} include: layer '{src_mod}' may not "
                f"include '{edge.target}' (layer '{tgt_mod}'); "
                f"'{src_mod}' may depend on: {ok}. See the layer "
                "DAG in DESIGN.md §10")
