"""stat-liveness: a registered stat that no reachable path updates.

The stat-registered rule (PR 4) closes one half of the copy-paste
stat bug: a counter that exists but never shows up in a dump. This
rule closes the other half: a counter that shows up in every dump
and is *always zero*, because the increment was pasted onto the
wrong member, or the update sits behind an early ``return`` that
makes it dead code. A reviewer reading bench output trusts a zero —
"no replacements happened" — so a dead stat is worse than a missing
one.

A ``Scalar`` or ``Distribution`` member is *live* when some token
stream in the program contains an update of that name —

    ++x / x++ / --x / x--          x += e / x -= e / x = e
    x.set(e)                       x.sample(e)

— in a statement the CFG can actually reach (an update strictly
after an unconditional ``return``/``throw``/``break``/``continue``
contributes nothing). ``Formula`` members are exempt: they are
computed on demand. ``reset()`` is not an update — zeroing a counter
that nothing increments does not make it meaningful.

Matching is by member *name* across the whole program and ignores
the receiver, so an update through any alias or owner object counts.
That errs toward liveness (two classes sharing a member name shadow
each other), which is the right direction for a deadness verdict.
Findings anchor at the member declaration; a deliberately-dormant
stat (kept for checkpoint-format stability, say) takes
``// cdplint: allow(stat-liveness) -- reason`` on its declaration.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import cfg as cfgmod
from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PUNCT

_LIVE_TYPES = {"Scalar", "Distribution"}
_UPDATE_CALLS = {"set", "sample"}
_UPDATE_OPS = {"++", "--", "+=", "-=", "=", "|=", "&=", "^="}

_LIVE_CACHE: Dict[int, Set[str]] = {}


def _stat_decls(model, ci) -> List:
    """Scalar/Distribution data members of one class."""
    return [m for m in ci.data_members()
            if m.type_text.rsplit("::", 1)[-1] in _LIVE_TYPES]


def _updates_in(toks, lo: int, hi: int, names: Set[str]
                ) -> List[Tuple[int, str]]:
    """(token index, name) of update expressions over tracked names
    in toks[lo:hi). Receiver-agnostic by design."""
    out = []
    n = min(hi, len(toks))
    for j in range(lo, n):
        t = toks[j]
        if t.kind != IDENT or t.text not in names:
            continue
        prev = toks[j - 1] if j > lo else None
        nxt = toks[j + 1] if j + 1 < n else None
        if prev is not None and prev.kind == PUNCT and \
                prev.text in ("++", "--"):
            out.append((j, t.text))
            continue
        if nxt is None or nxt.kind != PUNCT:
            continue
        # Escape analysis, one token deep: the name passed as a bare
        # call argument or having its address taken may be updated
        # through the alias — count it live rather than guess.
        if prev is not None and prev.kind == PUNCT and \
                (prev.text == "&" or
                 (prev.text in ("(", ",") and
                  nxt.text in (")", ","))):
            out.append((j, t.text))
            continue
        if nxt.text in _UPDATE_OPS:
            out.append((j, t.text))
        elif nxt.text in (".", "->") and j + 3 < n and \
                toks[j + 2].kind == IDENT and \
                toks[j + 2].text in _UPDATE_CALLS and \
                toks[j + 3].kind == PUNCT and toks[j + 3].text == "(":
            out.append((j, t.text))
    return out


def _live_names(model) -> Set[str]:
    """Every stat-member name with at least one reachable update
    anywhere in the program. Computed once per model and cached
    (workers are pure functions of the shared model)."""
    key = id(model)
    if key in _LIVE_CACHE:
        return _LIVE_CACHE[key]
    _LIVE_CACHE.clear()

    tracked: Set[str] = set()
    for lst in model.classes.values():
        for ci in lst:
            tracked.update(m.name for m in _stat_decls(model, ci))

    live: Set[str] = set()
    for path in sorted(model.streams):
        toks = model.streams[path]
        bodies = model.bodies.get(path, [])
        for b in bodies:
            ups = _updates_in(toks, b.body_lo, b.body_hi,
                              tracked - live)
            if not ups:
                continue
            c = cfgmod.build_cfg(toks, b.body_lo, b.body_hi)
            ok = {j for bid in c.reachable()
                  for lo, hi in c.block(bid).stmts
                  for j in range(lo, hi)}
            for j, name in ups:
                if j in ok:
                    live.add(name)
    _LIVE_CACHE[key] = live
    return live


@rule
class StatLiveness:
    id = "stat-liveness"
    severity = SEV_ERROR
    doc = """A Scalar/Distribution stat member with no reachable
    update (++/--/+=/-=/=/.set()/.sample()) anywhere in the program
    is dead: it renders as a trustworthy-looking zero in every dump.
    Updates in code the CFG proves unreachable do not count. Delete
    the member or wire it up; a deliberately-dormant stat takes
    '// cdplint: allow(stat-liveness) -- reason' on its
    declaration."""

    def check(self, ctx):
        model = ctx.model
        if model is None:
            return
        live = _live_names(model)
        for ci in model.classes_in(ctx.path):
            for m in _stat_decls(model, ci):
                if m.name in live:
                    continue
                yield Finding(
                    self.id, ctx.path, m.line, m.col,
                    f"stat member '{m.name}' of {ci.name} is never "
                    f"incremented or assigned on any reachable "
                    f"path; it reads as a plausible zero in every "
                    f"dump — remove it or wire it up")
