"""use-after-move: moved-from locals read before reassignment.

``std::move`` in this codebase hands buffers between pipeline stages
(a fill payload into the MSHR, a task closure into the pool's deque),
and the historical bug shape is a *retry path*: the happy path moves
the buffer out, an error branch loops back and reads it again. That
is invisible to lexical linting — both uses look fine in isolation —
and exactly what a path-sensitive pass sees at once.

The analysis runs per function body on the cdplint CFG with a may-
lattice (power set of moved variable names, union join): a variable
is *possibly moved* at a point if any path from entry moves it
without an intervening reassignment. A read of a possibly-moved
variable is the finding; ``std::move(x)`` of a possibly-moved ``x``
is the same finding (double move). Reassignment — ``x = ...`` or a
refilling call ``x.clear() / x.reset() / x.assign(...) / x.emplace
(...)`` — returns the variable to the valid state, matching the
standard's moved-from contract (valid but unspecified; assignment is
the only portable way back).

Scope limits, chosen to keep zero false positives on real code:
only ``std::move(ident)`` of a plain identifier is tracked; members
of the enclosing class are excluded (another method may refill
them); reads inside the statement that performs the move are judged
against the state *before* the statement, so ``use(x, std::move(x))``
is (conservatively) not flagged. Bodies never calling std::move are
skipped outright.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

import dataflow
from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PUNCT

# receiver.method(...) calls that reset a moved-from object to a
# known-good state.
_REFILL_METHODS = {"clear", "reset", "assign", "emplace"}

# Keywords that precede an identifier without declaring it; anything
# else in identifier position before 'x ;' / 'x (' / 'x {' is a type
# name, which makes the statement a fresh declaration of x (the loop
# body that re-declares its locals every iteration).
_NOT_A_TYPE = {"return", "co_return", "co_yield", "co_await",
               "throw", "delete", "goto", "new", "else", "case",
               "do", "typedef", "using", "sizeof", "decltype",
               "operator", "break", "continue"}


def _moves_in(toks, lo: int, hi: int) -> List[Tuple[int, str]]:
    """(token index of the identifier, name) for each
    ``std::move(ident)`` with a bare-identifier argument."""
    out = []
    j = lo
    while j + 5 < hi:
        if (toks[j].kind == IDENT and toks[j].text == "std" and
                toks[j + 1].kind == PUNCT and
                toks[j + 1].text == "::" and
                toks[j + 2].kind == IDENT and
                toks[j + 2].text == "move" and
                toks[j + 3].kind == PUNCT and
                toks[j + 3].text == "(" and
                toks[j + 4].kind == IDENT and
                toks[j + 5].kind == PUNCT and
                toks[j + 5].text == ")"):
            out.append((j + 4, toks[j + 4].text))
            j += 6
            continue
        j += 1
    return out


def _kills_in(toks, lo: int, hi: int, names: Set[str]
              ) -> List[Tuple[int, str]]:
    """(token index, name) where a tracked name is reassigned or
    refilled within the statement."""
    out = []
    for j in range(lo, hi):
        t = toks[j]
        if t.kind != IDENT or t.text not in names:
            continue
        prev = toks[j - 1] if j > lo else None
        if prev is not None and prev.kind == PUNCT and \
                prev.text in (".", "->"):
            continue  # someone else's member named like our local
        nxt = toks[j + 1] if j + 1 < hi else None
        if nxt is None or nxt.kind != PUNCT:
            continue
        if nxt.text == "=":
            out.append((j, t.text))
        elif nxt.text in (";", "(", "{") and prev is not None and \
                ((prev.kind == IDENT and
                  prev.text not in _NOT_A_TYPE) or
                 (prev.kind == PUNCT and
                  prev.text in (">", ">>", "*", "&", "&&"))):
            # 'Type x;' / 'Type x(...);' / 'Type x{...};': a fresh
            # declaration constructs a brand-new object under the
            # tracked name.
            out.append((j, t.text))
        elif nxt.text in (".", "->") and j + 3 < hi and \
                toks[j + 2].kind == IDENT and \
                toks[j + 2].text in _REFILL_METHODS and \
                toks[j + 3].kind == PUNCT and toks[j + 3].text == "(":
            out.append((j, t.text))
    return out


@rule
class UseAfterMove:
    id = "use-after-move"
    severity = SEV_ERROR
    doc = """A local moved from by std::move(x) is read again — or
    moved again — on some path before being reassigned (x = ...) or
    refilled (x.clear()/reset()/assign()/emplace()). Path-sensitive:
    catches the retry-loop re-read that lexical scanning cannot."""

    def check(self, ctx):
        model = ctx.model
        if model is None:
            return
        for body in model.bodies.get(ctx.path, []):
            n = min(body.body_hi, len(ctx.tokens))
            moves = _moves_in(ctx.tokens, body.body_lo, n)
            if not moves:
                continue
            members = self._member_names(model, body)
            tracked = {name for _, name in moves
                       if name not in members}
            if not tracked:
                continue
            yield from self._check_body(ctx, body, tracked)

    @staticmethod
    def _member_names(model, body) -> Set[str]:
        lst = model.classes.get(body.cls)
        if not lst:
            short = body.cls.rsplit("::", 1)[-1]
            for name in sorted(model.classes):
                if name.rsplit("::", 1)[-1] == short:
                    lst = model.classes[name]
                    break
        out: Set[str] = set()
        for ci in lst or []:
            out.update(m.name for m in ci.members)
        return out

    def _check_body(self, ctx, body, tracked: Set[str]):
        toks = ctx.tokens
        cfg = ctx.cfg_of(body)

        def stmt_transfer(rng, state: FrozenSet[str]
                          ) -> FrozenSet[str]:
            lo, hi = rng
            s = set(state)
            s.difference_update(
                name for _, name in _kills_in(toks, lo, hi, tracked))
            s.update(name for _, name in _moves_in(toks, lo, hi)
                     if name in tracked)
            return frozenset(s)

        def transfer(block, state):
            for rng in block.stmts:
                state = stmt_transfer(rng, state)
            return state

        in_s, _ = dataflow.solve_forward(
            cfg, frozenset(), transfer,
            lambda a, b: a | b)

        findings: List[Finding] = []
        for bid in cfg.rpo():
            state = in_s.get(bid)
            if state is None:
                continue
            for rng, pre in dataflow.states_at(
                    cfg.block(bid), state, stmt_transfer):
                if pre:
                    findings.extend(
                        self._reads_of_moved(ctx, body, rng, pre))
        # One finding per (variable, line): the same read site can sit
        # in a loop head visited via several statement ranges.
        seen: Set[Tuple[str, int, int]] = set()
        for f in sorted(findings, key=lambda f: (f.line, f.col)):
            key = (f.message, f.line, f.col)
            if key not in seen:
                seen.add(key)
                yield f

    def _reads_of_moved(self, ctx, body, rng, moved: FrozenSet[str]):
        toks = ctx.tokens
        lo, hi = rng
        killed = {j for j, _ in _kills_in(toks, lo, hi, set(moved))}
        j = lo
        while j < hi:
            t = toks[j]
            if t.kind != IDENT or t.text not in moved or j in killed:
                j += 1
                continue
            prev = toks[j - 1] if j > 0 else None
            if prev is not None and prev.kind == PUNCT and \
                    prev.text in (".", "->"):
                j += 1
                continue
            nxt = toks[j + 1] if j + 1 < len(toks) else None
            if nxt is not None and nxt.kind == PUNCT and \
                    nxt.text == "::":
                j += 1
                continue
            yield Finding(
                self.id, ctx.path, t.line, t.col,
                f"'{t.text}' is used here but was moved from on a "
                f"path reaching this point; reassign or refill it "
                f"before reuse (in {body.cls}::{body.method})")
            j += 1
