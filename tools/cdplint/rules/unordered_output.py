"""unordered-output: hash-order iteration may not feed output.

The exact class of bug that breaks the -j1 == -jN golden contract:
libstdc++ hash-table iteration order depends on insertion history
and rehash points, so a range-for over an unordered_map/_set whose
body writes to a stream, builds a report row, records trace events,
or calls anything dump/print-shaped produces byte-different output
between runs that are semantically identical.

Detection: range-based for statements whose iterable expression
mentions an identifier declared (anywhere in the lint run) as an
unordered container — or a function returning one — and whose loop
body contains an output operation:

  - a `<<` whose chain includes a string literal or a stream-named
    identifier (os/out/oss/ss/cout/cerr/stream), or
  - a call to an identifier matching dump|print|emit|write|record|
    report|sink|serialize|format|json|sarif|log.

Count-only folds over unordered containers (sums, membership
checks) are order-insensitive and not flagged. Iterator-based loops
(`it = m.begin()`) are outside this rule's reach — prefer range-for.
"""

from __future__ import annotations

import re

from cpputil import find_range_fors, idents_in
from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PUNCT, STRING


_OUTPUT_CALL = re.compile(
    r"(dump|print|emit|write|record|report|sink|serializ|format|"
    r"json|sarif|log)", re.IGNORECASE)
_STREAM_NAMES = {"os", "out", "oss", "ss", "cout", "cerr", "clog",
                 "stream", "ostr"}


@rule
class UnorderedOutput:
    id = "unordered-output"
    severity = SEV_ERROR
    doc = """Iterating an unordered_map/unordered_set in code that
    feeds a stats dump, trace sink, or report emits hash-order —
    which varies with insertion history — into byte-compared output.
    Iterate a sorted snapshot (sort the keys first) before any
    ordering-sensitive use."""

    def check(self, ctx):
        toks = ctx.tokens
        idx = ctx.index
        for fi, it_lo, it_hi, b_lo, b_hi in find_range_fors(toks):
            iter_idents = idents_in(toks, it_lo, it_hi)
            unordered = [nm for nm in iter_idents
                         if idx.is_unordered_expr_ident(nm)]
            if not unordered:
                continue
            sink = self._output_op(toks, b_lo, b_hi)
            if sink is None:
                continue
            ft = toks[fi]
            yield Finding(
                self.id, ctx.path, ft.line, ft.col,
                f"hash-order iteration over unordered container "
                f"'{unordered[0]}' feeds output ({sink}); iterate a "
                "sorted snapshot so dumps stay byte-deterministic")

    def _output_op(self, toks, lo, hi):
        n = len(toks)
        for j in range(lo, min(hi + 1, n)):
            t = toks[j]
            if t.kind == IDENT and _OUTPUT_CALL.search(t.text) and \
                    j + 1 < n and toks[j + 1].kind == PUNCT and \
                    toks[j + 1].text == "(":
                return f"call to '{t.text}'"
            if t.kind == PUNCT and t.text == "<<":
                prev = toks[j - 1] if j > 0 else None
                nxt = toks[j + 1] if j + 1 < n else None
                if prev is not None and prev.kind == IDENT and \
                        prev.text in _STREAM_NAMES:
                    return f"'{prev.text} <<' stream write"
                if nxt is not None and nxt.kind == STRING:
                    return "string streamed with '<<'"
        return None
