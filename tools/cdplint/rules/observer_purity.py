"""observer-purity: src/obs is a strict observer.

The tracing layer's contract (DESIGN.md section 9): enabling it must
never perturb simulated state or statistics — dumps are byte-
identical with tracing on, off, or compiled out. This rule makes the
contract structural:

  - observer code may not include simulator-internal headers (it can
    only observe what is passed to it, never reach into the machine);
  - observer code may not name the Stat types (Scalar, Distribution,
    Formula, StatGroup) — a tracer that bumps a counter changes the
    dump;
  - observer code may not call the mutating entry points of the
    memory system / simulator objects.

Scope: every file under src/obs/, plus out-of-line `Tracer::` member
definitions anywhere in the tree.
"""

from __future__ import annotations

from cpputil import match_close
from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PP, PUNCT


_FORBIDDEN_INCLUDE_PREFIXES = (
    "sim/", "memsys/", "core/", "cpu/", "mem/", "vm/", "prefetch/",
    "stats/", "runner/", "workloads/")

_STAT_TYPES = {"Scalar", "Distribution", "Formula", "StatGroup"}

# Mutating entry points of simulator-side objects. Names are chosen
# to be specific to the simulator's interfaces so container methods
# (insert/erase on a sink-local std::map) do not false-positive.
_MUTATORS = {"allocate", "release", "promote", "requeueFront",
             "extractPrefetch", "reconfigure", "resetAll", "sample",
             "noteIssued", "noteUseful", "observeMiss",
             "scanAndEnqueue", "enqueuePrefetch", "issuePrefetch",
             "completeFill", "drainAll", "drainPrefetches",
             "maybeInjectPollution", "reinforceOnHit"}


@rule
class ObserverPurity:
    id = "observer-purity"
    severity = SEV_ERROR
    doc = """Code under src/obs/ and Tracer member functions are
    strict observers: they may not include simulator-internal
    headers, may not touch Stat members (Scalar/Distribution/
    Formula/StatGroup), and may not call mutating methods on memsys
    or simulator objects. Violations would let enabling a trace
    change simulated state or stats."""

    def check(self, ctx):
        p = ctx.path.replace("\\", "/")
        if "/obs/" in p or p.startswith("obs/"):
            yield from self._check_span(ctx, 0, len(ctx.tokens),
                                        includes=True)
            return
        # Out-of-line Tracer:: member definitions elsewhere.
        toks = ctx.tokens
        n = len(toks)
        i = 0
        while i + 3 < n:
            if (toks[i].kind == IDENT and toks[i].text == "Tracer" and
                    toks[i + 1].kind == PUNCT and
                    toks[i + 1].text == "::" and
                    toks[i + 2].kind == IDENT and
                    i + 3 < n and toks[i + 3].text == "("):
                close = match_close(toks, i + 3)
                j = close + 1
                while j < n and toks[j].text not in ("{", ";"):
                    j += 1
                if j < n and toks[j].text == "{":
                    body_end = match_close(toks, j)
                    yield from self._check_span(ctx, j, body_end,
                                                includes=False)
                    i = body_end
                    continue
            i += 1

    def _check_span(self, ctx, lo, hi, includes):
        toks = ctx.tokens
        n = len(toks)
        for j in range(lo, min(hi + 1, n)):
            t = toks[j]
            if includes and t.kind == PP and \
                    t.text.startswith("#include"):
                target = t.text.split('"')
                if len(target) >= 2:
                    inc = target[1]
                    if inc.startswith(_FORBIDDEN_INCLUDE_PREFIXES):
                        yield Finding(
                            self.id, ctx.path, t.line, t.col,
                            f"observer code includes simulator-"
                            f"internal header \"{inc}\"; src/obs may "
                            "only depend on common/ and its own "
                            "headers")
                continue
            if t.kind != IDENT:
                continue
            if t.text in _STAT_TYPES:
                yield Finding(
                    self.id, ctx.path, t.line, t.col,
                    f"observer code names Stat type '{t.text}'; the "
                    "tracer must not read or write statistics — "
                    "dumps are byte-identical with tracing on or "
                    "off")
                continue
            if t.text in _MUTATORS and j > 0 and \
                    toks[j - 1].kind == PUNCT and \
                    toks[j - 1].text in (".", "->") and \
                    j + 1 < n and toks[j + 1].text == "(":
                yield Finding(
                    self.id, ctx.path, t.line, t.col,
                    f"observer code calls mutating method "
                    f"'{t.text}()' on a simulator object; observers "
                    "may only read")
