"""Rule catalog: importing this package registers every rule."""

from . import raw_new_delete          # noqa: F401
from . import static_mutable          # noqa: F401
from . import cycle_arith             # noqa: F401
from . import stat_registered         # noqa: F401
from . import nondeterminism          # noqa: F401
from . import unordered_output        # noqa: F401
from . import observer_purity         # noqa: F401
from . import snapshot_completeness   # noqa: F401
from . import include_layering        # noqa: F401
from . import lock_discipline         # noqa: F401
from . import exhaustive_switch       # noqa: F401
from . import use_after_move          # noqa: F401
from . import quiesce_before_snapshot  # noqa: F401
from . import stat_liveness           # noqa: F401
