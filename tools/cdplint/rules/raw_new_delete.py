"""raw-new-delete: ownership goes through containers and smart
pointers; only the backing store touches raw storage."""

from __future__ import annotations

from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PUNCT


@rule
class RawNewDelete:
    id = "raw-new-delete"
    severity = SEV_ERROR
    doc = """No raw `new` / `delete` outside src/mem/backing_store.*.
    Ownership elsewhere goes through standard containers and
    std::make_unique; a raw allocation leaks simulated state between
    runs the moment an exception path skips the delete."""

    def check(self, ctx):
        if ctx.path.rsplit("/", 1)[-1].startswith("backing_store"):
            return
        toks = ctx.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != IDENT:
                continue
            prev = toks[i - 1] if i > 0 else None
            nxt = toks[i + 1] if i + 1 < n else None
            if t.text == "new":
                # `new (addr) T` placement syntax was historically
                # exempt; keep that port exact.
                if nxt is not None and nxt.kind == PUNCT and \
                        nxt.text == "(":
                    continue
                yield Finding(
                    self.id, ctx.path, t.line, t.col,
                    "raw 'new' outside backing_store; use containers "
                    "or std::make_unique")
            elif t.text == "delete":
                # `= delete` declarations are not deallocations.
                if prev is not None and prev.kind == PUNCT and \
                        prev.text == "=":
                    continue
                yield Finding(
                    self.id, ctx.path, t.line, t.col,
                    "raw 'delete' outside backing_store")
