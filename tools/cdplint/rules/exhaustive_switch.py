"""exhaustive-switch: switches over project enums cover every value.

The CDP pipeline dispatches on small enums everywhere — ReqType in
the arbiter, DropReason in the observer, EventKind in trace replay —
and the failure mode when an enumerator is added (say, a new
prefetcher kind for the Pangloss table) is always the same: one
switch keeps compiling, silently routes the new value through
``default:`` (or falls off the end), and a Fig-9 curve moves with no
diagnostic. This rule closes that hole using the PR-6 cross-TU
model: any ``switch`` whose case labels name a project enum (an enum
*defined* inside the lint run) must either

  - list every enumerator of that enum as a ``case``, or
  - carry a ``default:`` annotated
    ``// cdplint: allow(exhaustive-switch) -- reason``
    stating why a catch-all is the right semantics.

A fully-covered switch may still keep a defensive ``default:`` (the
name-lookup functions do, for return-value completeness) — that is
not a finding. Switches whose labels carry no ``Enum::Value``
qualification (integer dispatch, unscoped enumerators used bare) are
outside the rule's reach and are skipped, as documented in
DESIGN.md §10.
"""

from __future__ import annotations

from cfg import scan_switches
from engine import Finding, SEV_ERROR, rule


@rule
class ExhaustiveSwitch:
    id = "exhaustive-switch"
    severity = SEV_ERROR
    doc = """A switch whose case labels name a project enum (defined
    inside the lint run) must cover every enumerator, or carry a
    'default:' suppressed with
    '// cdplint: allow(exhaustive-switch) -- reason'. Catches the
    silently-absorbed new enumerator when ReqType/DropReason/
    EventKind grow."""

    def check(self, ctx):
        model = ctx.model
        if model is None:
            return
        for sw in scan_switches(ctx.tokens, 0, len(ctx.tokens)):
            names = {c.enum_name for c in sw.cases if c.enum_name}
            if len(names) != 1:
                continue  # unqualified labels or mixed enums: skip
            enum_name = names.pop()
            ei = model.find_enum(enum_name, ctx.path)
            if ei is None:
                continue  # not a project enum (std::, system, ...)
            covered = {c.enumerator for c in sw.cases
                       if c.enum_name == enum_name}
            missing = [e for e in ei.enumerators if e not in covered]
            if not missing:
                continue
            shown = ", ".join(missing[:4]) + \
                (", ..." if len(missing) > 4 else "")
            d = sw.default
            if d is None:
                yield Finding(
                    self.id, ctx.path, sw.line, sw.col,
                    f"switch over {enum_name} does not cover "
                    f"{shown} and has no default; values fall "
                    f"through the switch silently")
            else:
                # Anchored at the default label so an allow() on that
                # line suppresses through the normal machinery.
                yield Finding(
                    self.id, ctx.path, d.line, d.col,
                    f"default absorbs uncovered enumerator(s) "
                    f"{shown} of {enum_name}; list them as cases or "
                    f"annotate the default with "
                    f"allow(exhaustive-switch)")
