"""stat-registered (v2): every stat member is wired to a StatGroup,
under a name that corresponds to the member.

A default-constructed Scalar/Distribution/Formula silently drops
every sample and never appears in a dump, so a declared-but-never-
constructed stat member is a bug. v1 detected this with a substring
search for `name(...)` anywhere in the paired source; v2 resolves
constructor initializer lists properly:

  Class::Class(args) : member(group, "name", "desc"), ... {

and checks, per registered member, that the registration name's
string-literal part corresponds to the member identifier (catching a
stat registered under another stat's name — invisible in v1, and a
silent mis-attribution in every dump).
"""

from __future__ import annotations

import re
from pathlib import Path

import lexer
from cpputil import match_close, split_top_args
from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PUNCT, STRING

_STAT_TYPES = {"Scalar", "Distribution", "Formula"}


def _norm(s: str) -> str:
    return re.sub(r"[^a-z0-9]", "", s.lower())


def _words(s: str) -> list:
    """Lower-cased word list of a camelCase or snake_case name."""
    return sorted(w.lower()
                  for w in re.findall(r"[A-Z]?[a-z0-9]+|[A-Z]+(?![a-z])", s))


@rule
class StatRegistered:
    id = "stat-registered"
    severity = SEV_ERROR
    doc = """Every Scalar/Distribution/Formula member declared in a
    header must be constructed against a StatGroup in a constructor
    initializer list of the paired .cc (or inline in the header),
    and the registration name's literal part must correspond to the
    member identifier. An unregistered stat is invisible in every
    dump; a wrong-name registration mis-attributes its samples."""

    def __init__(self) -> None:
        self._lex_cache = {}

    def check(self, ctx):
        if not ctx.path.endswith(".hh"):
            return
        members = self._stat_members(ctx.tokens)
        if not members:
            return

        # Registrations can live inline in the header or in the
        # paired .cc's constructor initializer lists.
        streams = [ctx.tokens]
        cc = Path(str(ctx.root / Path(ctx.path).name)
                  ).with_suffix(".cc")
        cc_toks = self._lex_file(cc)
        if cc_toks is not None:
            streams.append(cc_toks)

        regs = {}
        for toks in streams:
            for name, args in self._init_list_entries(toks):
                regs.setdefault(name, []).append((toks, args))

        for line, col, mtype, name in members:
            entries = regs.get(name, [])
            constructed = [
                (toks, args) for toks, args in entries if args]
            if not constructed:
                yield Finding(
                    self.id, ctx.path, line, col,
                    f"stat member '{name}' ({mtype}) is never "
                    "constructed against a StatGroup; it would be "
                    "invisible in every stats dump")
                continue
            for toks, args in constructed:
                bad = self._name_mismatch(toks, args, name)
                if bad is not None:
                    yield Finding(
                        self.id, ctx.path, line, col,
                        f"stat member '{name}' is registered under "
                        f"name '{bad}', which does not correspond to "
                        "the member identifier; samples would be "
                        "mis-attributed in the dump")
                    break

    # -- helpers ----------------------------------------------------

    def _lex_file(self, path: Path):
        key = str(path)
        if key not in self._lex_cache:
            try:
                text = path.read_text(errors="replace")
            except OSError:
                self._lex_cache[key] = None
            else:
                self._lex_cache[key] = lexer.lex(text)[0]
        return self._lex_cache[key]

    def _stat_members(self, toks):
        """(line, col, type, name) for plain `Scalar name;` member
        declarations. `Scalar name{...};` declarations are treated as
        inline registrations, handled by _init_list_entries."""
        out = []
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != IDENT or t.text not in _STAT_TYPES:
                continue
            if i + 2 >= n:
                continue
            if i > 0 and toks[i - 1].kind == PUNCT and \
                    toks[i - 1].text in (".", "->", "::"):
                continue  # qualified use, not a declaration
            nm = toks[i + 1]
            if nm.kind != IDENT:
                continue
            term = toks[i + 2]
            if term.kind == PUNCT and term.text == ";":
                out.append((t.line, t.col, t.text, nm.text))
        return out

    def _init_list_entries(self, toks):
        """Yield (member_name, arg_spans_tokens) for every entry of
        every constructor initializer list, plus inline brace-or-
        paren member initializers `Scalar s{...};` in class bodies."""
        n = len(toks)
        i = 0
        while i < n:
            t = toks[i]
            # Constructor init list: `) : name(...), name{...} ... {`
            if t.kind == PUNCT and t.text == ":" and i > 0 and \
                    toks[i - 1].kind == PUNCT and \
                    toks[i - 1].text == ")":
                j = i + 1
                while j + 1 < n:
                    if toks[j].kind != IDENT:
                        break
                    name = toks[j].text
                    opener = toks[j + 1]
                    if opener.kind != PUNCT or \
                            opener.text not in ("(", "{"):
                        break
                    close = match_close(toks, j + 1)
                    args = [
                        toks[a:b] for a, b in
                        split_top_args(toks, j + 2, close)]
                    yield name, args
                    j = close + 1
                    if j < n and toks[j].kind == PUNCT and \
                            toks[j].text == ",":
                        j += 1
                        continue
                    break
                i = j
                continue
            # Inline member init: `Scalar name{group, "n", "d"};`
            if t.kind == IDENT and t.text in _STAT_TYPES and \
                    i + 2 < n and toks[i + 1].kind == IDENT and \
                    toks[i + 2].kind == PUNCT and \
                    toks[i + 2].text == "{":
                close = match_close(toks, i + 2)
                args = [toks[a:b] for a, b in
                        split_top_args(toks, i + 3, close)]
                yield toks[i + 1].text, args
                i = close + 1
                continue
            i += 1

    def _name_mismatch(self, toks, args, member):
        """Return the offending registration-name literal when it
        cannot correspond to ``member``; None when plausible (or when
        the name is fully computed at runtime)."""
        if len(args) < 2:
            return None
        lits = [t.text[1:-1] for t in args[1] if t.kind == STRING]
        if not lits:
            return None  # dynamic name; nothing checkable
        literal = "".join(lits)
        member_n = _norm(member)
        full_n = _norm(literal)
        seg = literal.rsplit(".", 1)[-1]
        seg_n = _norm(seg)
        if (member_n == full_n or member_n == seg_n or
                full_n.endswith(member_n) or
                member_n.endswith(seg_n) and seg_n):
            return None
        # Same words in a different order also correspond: member
        # `uopsRetired` registered as ".retired_uops".
        if _words(member) == _words(seg):
            return None
        return literal
