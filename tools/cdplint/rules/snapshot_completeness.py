"""snapshot-completeness: every member travels in every checkpoint.

The PR 5 checkpoint contract (DESIGN.md §11) is enforced dynamically
by the differential-equivalence net, but a *new* data member added to
a serialized class is only caught if some fuzz seed happens to give
it a value that changes downstream behaviour before and after a
restore. This rule turns the contract into a compile-gate:

For every class that defines ``saveState``, every non-static data
member must be referenced in both the ``saveState`` and ``loadState``
bodies — wherever those bodies live; the cross-TU model pairs a
header's member list with the .cc that serializes it — and the first
references must occur in the same order in both directions, so the
write and read sides cannot silently disagree on the wire layout.

Deliberately unserialized members carry an annotation in the class
body:

    // cdplint: transient(member[, member...]) -- reason

The reason is mandatory. A transient annotation that has stopped
doing anything — the member is serialized after all, or no longer
exists, or the class no longer defines saveState — is itself an
error, so annotations cannot rot (same policy as suppressions).

References are lexical: an identifier token equal to the member name,
not behind ``obj.`` / ``obj->`` (uses through *other* objects touch
that object's member), with ``this->member`` counted. A member
serialized only through a helper that takes it by reference still
counts — the call site names it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PUNCT


def _first_refs(toks, lo: int, hi: int, names) -> Dict[str, int]:
    """Map member name -> token index of its first reference inside
    toks(lo, hi) (exclusive of the braces themselves)."""
    out: Dict[str, int] = {}
    for j in range(lo + 1, hi):
        t = toks[j]
        if t.kind != IDENT or t.text not in names:
            continue
        prev = toks[j - 1] if j > 0 else None
        if prev is not None and prev.kind == PUNCT and \
                prev.text in (".", "->"):
            base = toks[j - 2] if j >= 2 else None
            if not (base is not None and base.kind == IDENT and
                    base.text == "this"):
                continue  # someone else's member
        nxt = toks[j + 1] if j + 1 < hi else None
        if nxt is not None and nxt.kind == PUNCT and nxt.text == "::":
            continue  # qualifier, not a data-member use
        out.setdefault(t.text, j)
    return out


def _pick_body(bodies: List, cls_path: str):
    """Prefer the body in the class's own file (inline), then one in
    a file with the same stem (the conventional .hh/.cc pair), then
    the path-sorted first."""
    if not bodies:
        return None
    for b in bodies:
        if b.path == cls_path:
            return b
    stem = cls_path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    for b in bodies:
        if b.path.rsplit("/", 1)[-1].rsplit(".", 1)[0] == stem:
            return b
    return bodies[0]


@rule
class SnapshotCompleteness:
    id = "snapshot-completeness"
    severity = SEV_ERROR
    doc = """A class that defines saveState must reference every
    non-static data member in both saveState and loadState, in the
    same order, or declare the member
    '// cdplint: transient(member) -- reason'. Catches the silent
    checkpoint corruption of adding a member and forgetting the
    serializers; stale transient annotations are errors too."""

    def check(self, ctx):
        model = ctx.model
        if model is None:
            return
        for ci in model.classes_in(ctx.path):
            yield from self._check_class(ctx, model, ci)

    # -- per-class -------------------------------------------------------

    def _check_class(self, ctx, model, ci):
        transients = model.class_transients(ci)
        save = _pick_body(model.find_bodies(ci.name, "saveState"),
                          ci.path)
        if save is None:
            # Not a serialized class; any transient annotation in it
            # is dead weight.
            for name, a in sorted(transients.items()):
                yield Finding(
                    self.id, ctx.path, a.comment_line, 1,
                    f"transient('{name}') is stale: {ci.name} does "
                    "not define saveState, so the annotation "
                    "suppresses nothing; delete it")
            return
        load = _pick_body(model.find_bodies(ci.name, "loadState"),
                          ci.path)
        members = ci.data_members()
        names = {m.name for m in members}

        if load is None:
            yield Finding(
                self.id, ctx.path, ci.line, 1,
                f"{ci.name} defines saveState but no loadState body "
                "was found; a checkpoint no reader can consume is a "
                "write-only format")
            return

        save_toks = self._toks_of(ctx, model, save)
        load_toks = self._toks_of(ctx, model, load)
        if save_toks is None or load_toks is None:
            return  # body file outside the lint run; nothing to pair
        save_refs = _first_refs(save_toks, save.body_lo, save.body_hi,
                                names)
        load_refs = _first_refs(load_toks, load.body_lo, load.body_hi,
                                names)

        for m in members:
            if m.name in transients:
                continue
            missing = [side for side, refs in
                       (("saveState", save_refs),
                        ("loadState", load_refs))
                       if m.name not in refs]
            if missing:
                yield Finding(
                    self.id, ctx.path, m.line, m.col,
                    f"non-static member '{m.name}' of {ci.name} is "
                    f"not referenced in {' or '.join(missing)} "
                    f"({save.path}); serialize it or annotate "
                    f"'// cdplint: transient({m.name}) -- reason'")

        # Order: members present in both sides, in first-reference
        # order, must agree.
        both = [m.name for m in members
                if m.name in save_refs and m.name in load_refs and
                m.name not in transients]
        save_seq = sorted(both, key=lambda nm: save_refs[nm])
        load_seq = sorted(both, key=lambda nm: load_refs[nm])
        if save_seq != load_seq:
            bad = next(nm for a, b in zip(save_seq, load_seq)
                       for nm in (a,) if a != b)
            m = ci.member(bad)
            yield Finding(
                self.id, ctx.path,
                m.line if m else ci.line, m.col if m else 1,
                f"{ci.name} serializes its members in different "
                f"orders: saveState writes {', '.join(save_seq)} but "
                f"loadState reads {', '.join(load_seq)}; the wire "
                "layout must be read back exactly as written")

        # Stale / dangling transients.
        for name, a in sorted(transients.items()):
            if name not in names:
                yield Finding(
                    self.id, ctx.path, a.comment_line, 1,
                    f"transient('{name}') names no non-static data "
                    f"member of {ci.name}; fix the name or delete "
                    "the annotation")
            elif name in save_refs and name in load_refs:
                yield Finding(
                    self.id, ctx.path, a.comment_line, 1,
                    f"transient('{name}') is stale: '{name}' is "
                    "referenced by both saveState and loadState; "
                    "delete the annotation")

    def _toks_of(self, ctx, model, body):
        if body.path == ctx.path:
            return ctx.tokens
        return model.streams.get(body.path) if model.streams else None
