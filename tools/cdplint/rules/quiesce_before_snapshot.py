"""quiesce-before-snapshot: saveState on a MemorySystem needs a drain.

Checkpoints are only meaningful at quiesce points: MSHRs empty, no
pending fills, no prefetches in flight. ``MemorySystem::saveState``
enforces that *dynamically* — it throws ``SnapshotError`` on a
non-quiesced machine — but the throw fires at checkpoint time, deep
into a sweep, hours after the missing ``drainAll()`` was written.
This rule moves the check to lint time.

Obligation: every call of ``saveState`` on a receiver declared as a
``MemorySystem`` (value, reference, pointer, or smart pointer — a
token scan over every stream collects the receiver names) must be
*dominated* by a drain in the same function: on every CFG path from
entry to the call there is a ``drainAll(...)`` call or a call to a
**draining method** — one whose own body provably drains on every
path to its exit (``Simulator::quiesce()`` earns that status
automatically; the set is a fixpoint over the name-based call
graph). The analysis is a must-dataflow on the cdplint CFG with the
two-point drained/unknown lattice, intersection join.

Functions whose *contract* is "caller has quiesced" say so at the
definition::

    // cdplint: requires_quiesced(memsys)
    void
    Simulator::saveCheckpoint(std::ostream &os) const

which discharges the body's obligation and transfers it to every
caller: a call to an annotated method is itself a snapshot site that
must be dominated by a drain. An *unannotated* function with an
undrained call gets one finding at the call site and does not
propagate to its callers — the defect is reported where the fix
belongs, not cascaded up the call tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import cfg as cfgmod
import dataflow
from engine import Finding, SEV_ERROR, rule
from lexer import IDENT, PUNCT

# Tokens that may sit between 'MemorySystem' and the declared name.
_DECL_SKIP_PUNCT = {">", ">>", "*", "&", "&&"}
_DECL_SKIP_IDENT = {"const"}

# Per-program caches (safe: workers fork per file but the program
# model is identical in every worker, and rules are pure functions
# of it).
_PROGRAM_FACTS: Dict[int, dict] = {}


def _program_facts(prog) -> dict:
    key = id(prog)
    if key not in _PROGRAM_FACTS:
        _PROGRAM_FACTS.clear()  # one program per process lifetime
        _PROGRAM_FACTS[key] = {
            "receivers": _memsys_receivers(prog),
            "annotated": _annotated_methods(prog),
            "drains": _draining_methods(prog),
        }
    return _PROGRAM_FACTS[key]


def _memsys_receivers(prog) -> Set[str]:
    """Names declared with type MemorySystem anywhere in the run."""
    out: Set[str] = set()
    for path in sorted(prog.streams):
        toks = prog.streams[path]
        for j, t in enumerate(toks):
            if t.kind != IDENT or t.text != "MemorySystem":
                continue
            k = j + 1
            while k < len(toks) and (
                    (toks[k].kind == PUNCT and
                     toks[k].text in _DECL_SKIP_PUNCT) or
                    (toks[k].kind == IDENT and
                     toks[k].text in _DECL_SKIP_IDENT)):
                k += 1
            if k < len(toks) and toks[k].kind == IDENT:
                out.add(toks[k].text)
    return out


def _body_annotated(prog, body, open_line: int) -> bool:
    """requires_quiesced bound to this definition's signature.
    Accepts the line above the name too: with the return type on its
    own line, a standalone comment targets that line."""
    for a in prog.annotations.get(body.path, []):
        if a.kind != "requires_quiesced":
            continue
        if body.sig_line - 1 <= a.target_line <= open_line:
            return True
    return False


def _annotated_methods(prog) -> Set[str]:
    out: Set[str] = set()
    for path in sorted(prog.bodies):
        toks = prog.streams.get(path, [])
        for b in prog.bodies[path]:
            open_line = toks[b.body_lo].line \
                if b.body_lo < len(toks) else b.sig_line
            if _body_annotated(prog, b, open_line):
                out.add(b.method)
    return out


def _call_sites(toks, lo: int, hi: int, names: Set[str]
                ) -> List[int]:
    """Token indexes where a method in ``names`` is called (with or
    without an explicit receiver) inside toks[lo:hi)."""
    out = []
    n = min(hi, len(toks))
    for j in range(lo, n):
        t = toks[j]
        if t.kind != IDENT or t.text not in names:
            continue
        if j + 1 >= n or toks[j + 1].kind != PUNCT or \
                toks[j + 1].text != "(":
            continue
        prev = toks[j - 1] if j > 0 else None
        if prev is not None and prev.kind == PUNCT and \
                prev.text == "::":
            continue  # qualified name: definition or member pointer
        out.append(j)
    return out


def _drain_sites(toks, lo: int, hi: int, drains: Set[str]
                 ) -> List[int]:
    return _call_sites(toks, lo, hi, {"drainAll"} | drains)


def _body_drains(toks, body, drains: Set[str]) -> bool:
    """True when every path from entry to exit passes a drain."""
    sites = _drain_sites(toks, body.body_lo, body.body_hi, drains)
    if not sites:
        return False
    c = cfgmod.build_cfg(toks, body.body_lo, body.body_hi)

    def transfer(block, state: bool) -> bool:
        if state:
            return True
        return any(lo <= s < hi
                   for lo, hi in block.stmts for s in sites)

    _, out_s = dataflow.solve_forward(
        c, False, transfer, lambda a, b: a and b)
    exit_in: Optional[bool] = None
    for p in c.block(c.exit).preds:
        o = out_s.get(p)
        if o is None:
            continue
        exit_in = o if exit_in is None else (exit_in and o)
    return bool(exit_in)


def _draining_methods(prog) -> Set[str]:
    """Fixpoint: methods whose bodies drain on every path, where a
    call to an already-known draining method counts as a drain."""
    drains: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for path in sorted(prog.bodies):
            toks = prog.streams.get(path, [])
            for b in prog.bodies[path]:
                if b.method in drains or b.method == "drainAll":
                    continue
                if _body_drains(toks, b, drains):
                    drains.add(b.method)
                    changed = True
    return drains


@rule
class QuiesceBeforeSnapshot:
    id = "quiesce-before-snapshot"
    severity = SEV_ERROR
    doc = """A call of saveState on a MemorySystem — or of any method
    annotated '// cdplint: requires_quiesced(obj)' — must be
    dominated, in the same function, by memsys->drainAll(...) or a
    call to a method that provably drains on every path (e.g.
    Simulator::quiesce()). Moves MemorySystem::saveState's runtime
    SnapshotError to lint time. Annotating a definition with
    requires_quiesced discharges its body and transfers the
    obligation to its callers."""

    def check(self, ctx):
        model = ctx.model
        if model is None:
            return
        facts = _program_facts(model)
        yield from self._annotation_hygiene(ctx, model)
        targets = facts["annotated"]
        for body in model.bodies.get(ctx.path, []):
            open_line = ctx.tokens[body.body_lo].line \
                if body.body_lo < len(ctx.tokens) else body.sig_line
            if _body_annotated(model, body, open_line):
                continue  # contract transfers to callers
            yield from self._check_body(ctx, body, facts, targets)

    def _annotation_hygiene(self, ctx, model):
        ranges = []
        for b in model.bodies.get(ctx.path, []):
            open_line = ctx.tokens[b.body_lo].line \
                if b.body_lo < len(ctx.tokens) else b.sig_line
            ranges.append((b.sig_line - 1, open_line))
        for a in model.annotations.get(ctx.path, []):
            if a.kind != "requires_quiesced":
                continue
            if not any(lo <= a.target_line <= hi for lo, hi in ranges):
                yield Finding(
                    self.id, ctx.path, a.comment_line, 1,
                    "requires_quiesced must sit on a function "
                    "definition's signature")

    def _check_body(self, ctx, body, facts, targets: Set[str]):
        toks = ctx.tokens
        receivers = facts["receivers"]
        sites: List[Tuple[int, str]] = []
        n = min(body.body_hi, len(toks))
        for j in _call_sites(toks, body.body_lo, n, {"saveState"}):
            prev = toks[j - 1] if j > 0 else None
            base = toks[j - 2] if j >= 2 else None
            if prev is not None and prev.kind == PUNCT and \
                    prev.text in (".", "->") and \
                    base is not None and base.kind == IDENT and \
                    base.text in receivers:
                sites.append((j, f"{base.text}{prev.text}saveState"))
        if targets:
            for j in _call_sites(toks, body.body_lo, n, targets):
                sites.append((j, f"{toks[j].text} (annotated "
                                 f"requires_quiesced)"))
        if not sites:
            return
        sites.sort()
        drain_sites = _drain_sites(toks, body.body_lo, n,
                                   facts["drains"])
        cfg = ctx.cfg_of(body)

        def stmt_transfer(rng, state: bool) -> bool:
            if state:
                return True
            lo, hi = rng
            return any(lo <= s < hi for s in drain_sites)

        def transfer(block, state):
            for rng in block.stmts:
                state = stmt_transfer(rng, state)
            return state

        in_s, _ = dataflow.solve_forward(
            cfg, False, transfer, lambda a, b: a and b)

        reported: Set[int] = set()
        for bid in cfg.rpo():
            state = in_s.get(bid)
            if state is None:
                continue
            for rng, pre in dataflow.states_at(
                    cfg.block(bid), state, stmt_transfer):
                lo, hi = rng
                for j, desc in sites:
                    if not (lo <= j < hi) or j in reported:
                        continue
                    drained = pre or any(lo <= s < j
                                         for s in drain_sites)
                    if not drained:
                        t = toks[j]
                        reported.add(j)
                        yield Finding(
                            self.id, ctx.path, t.line, t.col,
                            f"call of {desc} in "
                            f"{body.cls}::{body.method} is not "
                            f"dominated by drainAll()/quiesce(); "
                            f"drain first, or annotate this "
                            f"definition with "
                            f"requires_quiesced(...) to pass the "
                            f"obligation to callers")
                    else:
                        reported.add(j)
        # Unreached sites (dead code): no obligation.
