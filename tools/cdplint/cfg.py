"""Per-function control-flow graphs for cdplint.

PR 4's rules see one token stream, PR 6's see whole-program
structure; neither can see *flow* — which is exactly where the defect
classes that have actually bitten this repo live (a moved-from buffer
read on the retry path, a lock released on one early return but not
the other, a switch that stopped being exhaustive when an enumerator
was added). This module builds a basic-block CFG for one function
body straight from the lexed token stream, with no AST in between:

  - a Block is a list of *statement* token ranges ``[lo, hi)`` into
    the file's token stream, executed linearly;
  - edges model ``if``/``else``, ``while``/``do``/``for`` (classic
    and range-based), ``switch`` with fallthrough and ``default``,
    ``break``/``continue``, ``return``/``throw``, and ``try``/
    ``catch``;
  - everything else is *conservatively widened* rather than
    misparsed: short-circuit ``&&``/``||`` and ``?:`` stay inside
    their statement (a rule sees their operands in source order),
    lambda bodies are kept inline in the statement that creates them,
    ``goto`` is treated as a function exit, and preprocessor
    conditionals are ignored (both arms look sequential). Each
    widening is recorded in ``Cfg.widened`` so rules can refuse to
    conclude anything subtle about such a body. The contract is
    documented in DESIGN.md §10.

The parser trusts the lexer's token classification, so strings,
comments and char literals can never open a fake block. Construction
is O(tokens) and pure: the same stream yields the same CFG, which
keeps ``--jobs`` output byte-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from lexer import IDENT, PP, PUNCT, Token

# Statement keywords with dedicated structure.
_JUMPS = {"return", "break", "continue", "goto", "throw"}


@dataclass
class CaseLabel:
    """One ``case X:`` / ``default:`` label of a switch."""
    tok: int                      # token index of 'case' / 'default'
    line: int
    col: int
    is_default: bool
    enum_name: Optional[str] = None   # 'ReqType' for case ReqType::X:
    enumerator: Optional[str] = None  # 'X'


@dataclass
class SwitchInfo:
    """Structural record of one switch statement (exhaustive-switch
    consumes these; the blocks themselves carry the flow)."""
    tok: int                      # token index of 'switch'
    line: int
    col: int
    subject: Tuple[int, int]      # token range of '(subject)'
    body: Tuple[int, int]         # token range of '{...}' (or stmt)
    cases: List[CaseLabel] = field(default_factory=list)

    @property
    def default(self) -> Optional[CaseLabel]:
        for c in self.cases:
            if c.is_default:
                return c
        return None


@dataclass
class Block:
    bid: int
    stmts: List[Tuple[int, int]] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


@dataclass
class Cfg:
    blocks: List[Block]
    entry: int
    exit: int
    switches: List[SwitchInfo]
    widened: Set[str]             # constructs modeled conservatively

    def block(self, bid: int) -> Block:
        return self.blocks[bid]

    def reachable(self) -> Set[int]:
        """Block ids reachable from entry."""
        seen = {self.entry}
        work = deque([self.entry])
        while work:
            b = work.popleft()
            for s in self.blocks[b].succs:
                if s not in seen:
                    seen.add(s)
                    work.append(s)
        return seen

    def rpo(self) -> List[int]:
        """Reverse post-order over reachable blocks (stable)."""
        seen: Set[int] = set()
        post: List[int] = []

        def visit(b: int) -> None:
            stack = [(b, 0)]
            seen.add(b)
            while stack:
                bid, i = stack.pop()
                succs = self.blocks[bid].succs
                if i < len(succs):
                    stack.append((bid, i + 1))
                    s = succs[i]
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, 0))
                else:
                    post.append(bid)

        visit(self.entry)
        return list(reversed(post))


class _Builder:
    def __init__(self, toks: List[Token], lo: int, hi: int):
        self.toks = toks
        self.hi = min(hi, len(toks))
        self.blocks: List[Block] = []
        self.switches: List[SwitchInfo] = []
        self.widened: Set[str] = set()
        self.entry = self._new()
        self.exit = self._new()

    # -- plumbing -------------------------------------------------------

    def _new(self) -> int:
        b = Block(len(self.blocks))
        self.blocks.append(b)
        return b.bid

    def _edge(self, a: Optional[int], b: int) -> None:
        if a is None:
            return
        if b not in self.blocks[a].succs:
            self.blocks[a].succs.append(b)
            self.blocks[b].preds.append(a)

    def _stmt(self, cur: Optional[int], lo: int, hi: int
              ) -> Optional[int]:
        """Append toks[lo:hi) as one linear statement. Dead code after
        a jump still gets a (predecessor-less) block, so rules can
        distinguish 'unreachable' from 'nonexistent'."""
        if hi <= lo:
            return cur
        if cur is None:
            cur = self._new()
        self.blocks[cur].stmts.append((lo, hi))
        return cur

    def _match(self, i: int, opener: str, closer: str) -> int:
        depth = 0
        j = i
        while j < self.hi:
            t = self.toks[j]
            if t.kind == PUNCT:
                if t.text == opener:
                    depth += 1
                elif t.text == closer:
                    depth -= 1
                    if depth == 0:
                        return j
            j += 1
        return self.hi

    def _stmt_end(self, i: int) -> int:
        """Index just past the ';' terminating a plain statement
        starting at ``i`` (balancing every bracket kind, so lambdas
        and init-lists stay inside their statement)."""
        j = i
        while j < self.hi:
            t = self.toks[j]
            if t.kind == PUNCT:
                if t.text == "(":
                    j = self._match(j, "(", ")")
                elif t.text == "[":
                    j = self._match(j, "[", "]")
                elif t.text == "{":
                    j = self._match(j, "{", "}")
                elif t.text == ";":
                    return j + 1
            j += 1
        return self.hi

    # -- statement sequence ---------------------------------------------

    def seq(self, lo: int, hi: int, cur: Optional[int],
            ctx: Dict[str, Optional[int]]) -> Optional[int]:
        """Build the CFG for the statements in toks[lo:hi); returns
        the open block at the end (None if every path jumped away)."""
        i = lo
        while i < hi:
            i, cur = self.parse_stmt(i, hi, cur, ctx)
        return cur

    def parse_stmt(self, i: int, hi: int, cur: Optional[int],
                   ctx: Dict[str, Optional[int]]
                   ) -> Tuple[int, Optional[int]]:
        t = self.toks[i]

        if t.kind == PP:
            # #if/#else arms both look sequential; note the widening
            # only for *conditional* directives (includes/defines do
            # not affect flow).
            if t.text.lstrip("# \t").startswith(("if", "el", "endif")):
                self.widened.add("preprocessor-conditional")
            return i + 1, cur

        if t.kind == PUNCT:
            if t.text == ";":
                return i + 1, cur
            if t.text == "{":
                close = self._match(i, "{", "}")
                cur = self.seq(i + 1, close, cur, ctx)
                return close + 1, cur

        if t.kind == IDENT:
            if t.text == "if":
                return self.parse_if(i, hi, cur, ctx)
            if t.text == "while":
                return self.parse_while(i, hi, cur, ctx)
            if t.text == "do":
                return self.parse_do(i, hi, cur, ctx)
            if t.text == "for":
                return self.parse_for(i, hi, cur, ctx)
            if t.text == "switch":
                return self.parse_switch(i, hi, cur, ctx)
            if t.text == "try":
                return self.parse_try(i, hi, cur, ctx)
            if t.text in _JUMPS:
                return self.parse_jump(i, hi, cur, ctx)

        end = self._stmt_end(i)
        cur = self._stmt(cur, i, end)
        return end, cur

    # -- structured statements ------------------------------------------

    def _cond(self, i: int, cur: Optional[int]
              ) -> Tuple[int, Optional[int]]:
        """Append the parenthesized condition after keyword index
        ``i`` to ``cur``; returns (index past ')', cur)."""
        j = i + 1
        # 'if constexpr (...)'
        if j < self.hi and self.toks[j].kind == IDENT and \
                self.toks[j].text == "constexpr":
            j += 1
        if j >= self.hi or self.toks[j].text != "(":
            return i + 1, cur  # malformed; resync
        close = self._match(j, "(", ")")
        cur = self._stmt(cur, j, close + 1)
        return close + 1, cur

    def parse_if(self, i: int, hi: int, cur: Optional[int],
                 ctx: Dict[str, Optional[int]]
                 ) -> Tuple[int, Optional[int]]:
        j, cur = self._cond(i, cur)
        then_in = self._new()
        self._edge(cur, then_in)
        j, then_out = self.parse_stmt(j, hi, then_in, ctx)
        else_out: Optional[int] = cur
        if j < hi and self.toks[j].kind == IDENT and \
                self.toks[j].text == "else":
            else_in = self._new()
            self._edge(cur, else_in)
            j, else_out = self.parse_stmt(j + 1, hi, else_in, ctx)
        join = self._new()
        self._edge(then_out, join)
        self._edge(else_out, join)
        return j, join

    def parse_while(self, i: int, hi: int, cur: Optional[int],
                    ctx: Dict[str, Optional[int]]
                    ) -> Tuple[int, Optional[int]]:
        head = self._new()
        self._edge(cur, head)
        j, _ = self._cond(i, head)
        join = self._new()
        body_in = self._new()
        self._edge(head, body_in)
        self._edge(head, join)  # condition may be false immediately
        inner = dict(ctx, **{"break": join, "continue": head})
        j, body_out = self.parse_stmt(j, hi, body_in, inner)
        self._edge(body_out, head)
        return j, join

    def parse_do(self, i: int, hi: int, cur: Optional[int],
                 ctx: Dict[str, Optional[int]]
                 ) -> Tuple[int, Optional[int]]:
        body_in = self._new()
        self._edge(cur, body_in)
        cond = self._new()
        join = self._new()
        inner = dict(ctx, **{"break": join, "continue": cond})
        j, body_out = self.parse_stmt(i + 1, hi, body_in, inner)
        self._edge(body_out, cond)
        if j < hi and self.toks[j].kind == IDENT and \
                self.toks[j].text == "while":
            j, _ = self._cond(j, cond)
            if j < hi and self.toks[j].text == ";":
                j += 1
        self._edge(cond, body_in)
        self._edge(cond, join)
        return j, join

    def parse_for(self, i: int, hi: int, cur: Optional[int],
                  ctx: Dict[str, Optional[int]]
                  ) -> Tuple[int, Optional[int]]:
        j = i + 1
        if j >= self.hi or self.toks[j].text != "(":
            return i + 1, cur
        close = self._match(j, "(", ")")
        # Split the header on top-level ';' — two of them: classic
        # for(init;cond;inc). A range-for has none.
        semis = []
        depth = 0
        for k in range(j + 1, close):
            tt = self.toks[k]
            if tt.kind != PUNCT:
                continue
            if tt.text in "([{":
                depth += 1
            elif tt.text in ")]}":
                depth -= 1
            elif tt.text == ";" and depth == 0:
                semis.append(k)
        join = self._new()
        if len(semis) == 2:
            init_lo, init_hi = j + 1, semis[0]
            cond_lo, cond_hi = semis[0] + 1, semis[1]
            inc_lo, inc_hi = semis[1] + 1, close
            cur = self._stmt(cur, init_lo, init_hi)
            head = self._new()
            self._edge(cur, head)
            self._stmt(head, cond_lo, cond_hi)
            inc = self._new()
            self._stmt(inc, inc_lo, inc_hi)
            body_in = self._new()
            self._edge(head, body_in)
            self._edge(head, join)  # for(;;) still gets the exit
            inner = dict(ctx, **{"break": join, "continue": inc})
            j2, body_out = self.parse_stmt(close + 1, hi, body_in,
                                           inner)
            self._edge(body_out, inc)
            self._edge(inc, head)
            return j2, join
        # Range-for: the range expression is evaluated once, in the
        # predecessor; the loop-variable binding repeats per
        # iteration, in the head.
        head = self._new()
        cur = self._stmt(cur, j + 1, close)
        self._edge(cur, head)
        body_in = self._new()
        self._edge(head, body_in)
        self._edge(head, join)
        inner = dict(ctx, **{"break": join, "continue": head})
        j2, body_out = self.parse_stmt(close + 1, hi, body_in, inner)
        self._edge(body_out, head)
        return j2, join

    def parse_switch(self, i: int, hi: int, cur: Optional[int],
                     ctx: Dict[str, Optional[int]]
                     ) -> Tuple[int, Optional[int]]:
        t = self.toks[i]
        j = i + 1
        if j >= self.hi or self.toks[j].text != "(":
            return i + 1, cur
        subj_close = self._match(j, "(", ")")
        cur = self._stmt(cur, j, subj_close + 1)
        b = subj_close + 1
        if b >= hi or self.toks[b].text != "{":
            # Braceless switch body: legal, absent from the tree;
            # widen to a linear statement.
            self.widened.add("braceless-switch")
            return self.parse_stmt(b, hi, cur, ctx)
        bclose = self._match(b, "{", "}")
        info = SwitchInfo(i, t.line, t.col,
                          (j, subj_close + 1), (b, bclose + 1))
        labels = self._scan_labels(b + 1, bclose, info)
        self.switches.append(info)
        join = self._new()
        inner = dict(ctx, **{"break": join})
        prev_out: Optional[int] = None
        for k, (lab, body_lo) in enumerate(labels):
            seg_in = self._new()
            self._edge(cur, seg_in)        # dispatch edge
            self._edge(prev_out, seg_in)   # fallthrough edge
            body_hi = labels[k + 1][0].tok if k + 1 < len(labels) \
                else bclose
            prev_out = self.seq(body_lo, body_hi, seg_in, inner)
        self._edge(prev_out, join)
        if info.default is None:
            self._edge(cur, join)          # uncovered value skips all
        return bclose + 1, join

    def _scan_labels(self, lo: int, hi: int, info: SwitchInfo
                     ) -> List[Tuple[CaseLabel, int]]:
        """Collect (label, body-start index) for the depth-0 case/
        default labels of a switch body; fills info.cases."""
        out: List[Tuple[CaseLabel, int]] = []
        depth = 0
        j = lo
        while j < hi:
            t = self.toks[j]
            if t.kind == PUNCT:
                if t.text in "([{":
                    depth += 1
                elif t.text in ")]}":
                    depth -= 1
                j += 1
                continue
            if t.kind == IDENT and depth == 0 and \
                    t.text in ("case", "default"):
                lab = CaseLabel(j, t.line, t.col, t.text == "default")
                k = j + 1
                # Scan the label expression to its ':' (the '::' of a
                # scoped enumerator is a single token, so the first
                # bare ':' is the label terminator).
                expr: List[Token] = []
                while k < hi and not (self.toks[k].kind == PUNCT and
                                      self.toks[k].text == ":"):
                    expr.append(self.toks[k])
                    k += 1
                self._classify_case(lab, expr)
                info.cases.append(lab)
                out.append((lab, k + 1))
                j = k + 1
                continue
            j += 1
        return out

    @staticmethod
    def _classify_case(lab: CaseLabel, expr: List[Token]) -> None:
        """Extract 'Enum::Enumerator' from a case-label expression.
        Only the trailing IDENT::IDENT pair matters; deeper
        qualification (cdp::obs::EventKind::Fill) keeps the last two
        components."""
        ids = [t for t in expr if t.kind == IDENT]
        if len(ids) >= 2 and any(t.kind == PUNCT and t.text == "::"
                                 for t in expr):
            lab.enum_name = ids[-2].text
            lab.enumerator = ids[-1].text

    def parse_try(self, i: int, hi: int, cur: Optional[int],
                  ctx: Dict[str, Optional[int]]
                  ) -> Tuple[int, Optional[int]]:
        """try { A } catch (...) { B }: B can start after any prefix
        of A, so every catch gets an edge from the block *before* the
        try as well as from its end — the conservative join."""
        self.widened.add("try-catch")
        j = i + 1
        if j >= hi or self.toks[j].text != "{":
            return i + 1, cur
        close = self._match(j, "{", "}")
        try_out = self.seq(j + 1, close, cur, ctx)
        join = self._new()
        self._edge(try_out, join)
        j = close + 1
        while j < hi and self.toks[j].kind == IDENT and \
                self.toks[j].text == "catch":
            k = j + 1
            if k < hi and self.toks[k].text == "(":
                k = self._match(k, "(", ")") + 1
            catch_in = self._new()
            self._edge(cur, catch_in)      # throw before any effect
            self._edge(try_out, catch_in)  # throw after all of them
            if k < hi and self.toks[k].text == "{":
                cclose = self._match(k, "{", "}")
                catch_out = self.seq(k + 1, cclose, catch_in, ctx)
                j = cclose + 1
            else:
                j, catch_out = self.parse_stmt(k, hi, catch_in, ctx)
            self._edge(catch_out, join)
        return j, join

    def parse_jump(self, i: int, hi: int, cur: Optional[int],
                   ctx: Dict[str, Optional[int]]
                   ) -> Tuple[int, Optional[int]]:
        kw = self.toks[i].text
        end = self._stmt_end(i)
        cur = self._stmt(cur, i, end)
        if kw == "break" and ctx.get("break") is not None:
            self._edge(cur, ctx["break"])
        elif kw == "continue" and ctx.get("continue") is not None:
            self._edge(cur, ctx["continue"])
        else:
            # return, throw, goto (widened), or a stray break/continue
            # outside any loop: the path leaves the function body.
            if kw == "goto":
                self.widened.add("goto")
            self._edge(cur, self.exit)
        return end, None


def scan_switches(toks: List[Token], lo: int, hi: int
                  ) -> List[SwitchInfo]:
    """Every braced switch statement (nested ones included) in
    toks[lo:hi), labels classified, without building a CFG. The
    exhaustive-switch rule uses this so switches in free functions —
    which have no MethodBody record — are still covered."""
    b = _Builder(toks, lo, min(hi, len(toks)))
    out: List[SwitchInfo] = []
    j = lo
    n = b.hi
    while j < n:
        t = toks[j]
        if t.kind == IDENT and t.text == "switch" and \
                j + 1 < n and toks[j + 1].kind == PUNCT and \
                toks[j + 1].text == "(":
            subj_close = b._match(j + 1, "(", ")")
            bo = subj_close + 1
            if bo < n and toks[bo].kind == PUNCT and \
                    toks[bo].text == "{":
                bclose = b._match(bo, "{", "}")
                info = SwitchInfo(j, t.line, t.col,
                                  (j + 1, subj_close + 1),
                                  (bo, bclose + 1))
                b._scan_labels(bo + 1, bclose, info)
                out.append(info)
        j += 1
    return out


def build_cfg(toks: List[Token], body_lo: int, body_hi: int) -> Cfg:
    """CFG for the body whose '{' is at token ``body_lo`` and whose
    matching '}' is at ``body_hi`` (MethodBody.body_lo/body_hi)."""
    b = _Builder(toks, body_lo, body_hi)
    last = b.seq(body_lo + 1, min(body_hi, len(toks)), b.entry, {})
    b._edge(last, b.exit)
    return Cfg(b.blocks, b.entry, b.exit, b.switches, b.widened)
