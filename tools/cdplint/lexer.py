"""C++ lexer for cdplint.

Comments, string literals (including raw strings), character
literals, and preprocessor directives are each handled exactly once
here, so no rule ever needs to re-derive "is this token inside a
comment?" with a per-rule regex. The output is:

  - a list of Token objects (the *code* stream: identifiers, numbers,
    punctuators, string/char literals, preprocessor directives), and
  - a list of Comment objects (kept separately so the suppression
    scanner can see them without the rules tripping over them).

The lexer is deliberately not a full phase-3 translation: trigraphs,
universal-character-names and digit separators in exotic positions
are out of scope for a repo-local analyzer. It is, however, exact
about nesting-free constructs: a `//` inside a string does not start
a comment, a `"` inside a comment does not start a string, and a raw
string R"x(...)x" swallows everything up to its matching delimiter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

# Token kinds.
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"
PP = "preproc"  # one token per directive, text == full directive


@dataclass
class Token:
    kind: str
    text: str
    line: int  # 1-based
    col: int   # 1-based

    def __repr__(self) -> str:  # compact for test failures
        return f"{self.kind}:{self.line}:{self.col}:{self.text!r}"


@dataclass
class Comment:
    text: str  # without the // or /* */ fence
    line: int  # line the comment starts on
    block: bool


# Longest-match punctuator table (order within a length bucket is
# irrelevant; buckets are tried longest first).
_PUNCTUATORS = [
    "...", "<<=", ">>=", "->*", "<=>",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "##", ".*",
    "{", "}", "[", "]", "(", ")", ";", ":", ",", ".", "?",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "=", "<",
    ">", "#", "@", "\\",
]
_PUNCT_BY_LEN = sorted(_PUNCTUATORS, key=len, reverse=True)

_IDENT_START = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")


class LexError(Exception):
    pass


def lex(text: str) -> Tuple[List[Token], List[Comment]]:
    """Tokenize C++ source; returns (code_tokens, comments)."""
    tokens: List[Token] = []
    comments: List[Comment] = []
    i = 0
    n = len(text)
    line = 1
    col = 1
    at_line_start = True  # only whitespace seen since the newline

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = text[i]

        # --- whitespace -------------------------------------------------
        if c in " \t\r\f\v":
            advance(1)
            continue
        if c == "\n":
            advance(1)
            at_line_start = True
            continue

        start_line, start_col = line, col

        # --- comments ---------------------------------------------------
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            comments.append(Comment(text[i + 2:j], start_line, False))
            advance(j - i)
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                comments.append(Comment(text[i + 2:], start_line, True))
                advance(n - i)
                continue
            comments.append(Comment(text[i + 2:j], start_line, True))
            advance(j + 2 - i)
            at_line_start = False
            continue

        # --- preprocessor directive ------------------------------------
        if c == "#" and at_line_start:
            # Swallow to end of line, honoring backslash continuations;
            # strip // and /* */ comments that trail the directive.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                # Count trailing backslashes before the newline.
                b = k - 1
                while b >= j and text[b] in " \t\r":
                    b -= 1
                if b >= j and text[b] == "\\":
                    j = k + 1
                    continue
                j = k
                break
            raw = text[i:j]
            directive = _strip_directive_comments(raw)
            tokens.append(Token(PP, directive.strip(), start_line,
                                start_col))
            # Re-lex comments inside the directive line so suppression
            # comments on #include lines are still seen.
            cpos = raw.find("//")
            if cpos >= 0:
                comments.append(Comment(raw[cpos + 2:], start_line,
                                        False))
            advance(j - i)
            continue

        at_line_start = False

        # --- raw string literal ----------------------------------------
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = i + 2
            while j < n and text[j] not in "(\n":
                j += 1
            if j < n and text[j] == "(":
                delim = text[i + 2:j]
                closer = ")" + delim + '"'
                k = text.find(closer, j + 1)
                if k < 0:
                    raise LexError(
                        f"unterminated raw string at line {start_line}")
                end = k + len(closer)
                tokens.append(Token(STRING, text[i:end], start_line,
                                    start_col))
                advance(end - i)
                continue
            # "R" not followed by a raw-string open: plain identifier.

        # --- string / char literal (with optional prefixes) ------------
        if c in "\"'" or (c in "uUL" and _literal_prefix(text, i)):
            j = i
            while j < n and text[j] not in "\"'":
                j += 1
            quote = text[j]
            k = j + 1
            while k < n:
                if text[k] == "\\":
                    k += 2
                    continue
                if text[k] == quote:
                    break
                if text[k] == "\n":
                    break  # unterminated; recover at newline
                k += 1
            end = min(k + 1, n)
            kind = STRING if quote == '"' else CHAR
            tokens.append(Token(kind, text[i:end], start_line,
                                start_col))
            advance(end - i)
            continue

        # --- identifier / keyword --------------------------------------
        if c in _IDENT_START:
            j = i + 1
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            tokens.append(Token(IDENT, text[i:j], start_line,
                                start_col))
            advance(j - i)
            continue

        # --- number (incl. 0x..., 1.5e-3, ' separators, suffixes) ------
        if c in _DIGITS or (c == "." and i + 1 < n and
                            text[i + 1] in _DIGITS):
            j = i + 1
            while j < n:
                ch = text[j]
                if ch in _IDENT_CONT or ch in "'.":
                    j += 1
                    continue
                # Exponent signs: 1e-3, 0x1p+4.
                if ch in "+-" and text[j - 1] in "eEpP":
                    j += 1
                    continue
                break
            tokens.append(Token(NUMBER, text[i:j], start_line,
                                start_col))
            advance(j - i)
            continue

        # --- punctuator -------------------------------------------------
        for p in _PUNCT_BY_LEN:
            if text.startswith(p, i):
                tokens.append(Token(PUNCT, p, start_line, start_col))
                advance(len(p))
                break
        else:
            # Unknown byte: emit as a 1-char punct so positions stay
            # aligned rather than aborting the whole file.
            tokens.append(Token(PUNCT, c, start_line, start_col))
            advance(1)

    return tokens, comments


def _literal_prefix(text: str, i: int) -> bool:
    """True when text[i:] starts a prefixed string/char literal
    (u8"...", L'x', etc.)."""
    for pfx in ("u8", "u", "U", "L"):
        if text.startswith(pfx, i):
            j = i + len(pfx)
            if j < len(text) and text[j] in "\"'":
                return True
            if (text.startswith(pfx + "R\"", i)):
                return True
    return False


def _strip_directive_comments(raw: str) -> str:
    """Remove // and /* */ comments from a directive's text."""
    out = []
    i = 0
    n = len(raw)
    while i < n:
        if raw.startswith("//", i):
            j = raw.find("\n", i)
            if j < 0:
                break
            i = j
            continue
        if raw.startswith("/*", i):
            j = raw.find("*/", i + 2)
            i = n if j < 0 else j + 2
            continue
        if raw[i] == '"':
            j = i + 1
            while j < n and raw[j] != '"':
                j += 2 if raw[j] == "\\" else 1
            out.append(raw[i:j + 1])
            i = j + 1
            continue
        out.append(raw[i])
        i += 1
    return "".join(out)
