#!/usr/bin/env python3
"""cdplint mutation self-test: snapshot-completeness + CFG rules.

For each mutation, copy the repo's real ``src`` (and ``bench``) tree
to a scratch directory, delete one load-bearing line — a serialized
member, an enum case, a ``quiesce()`` before a checkpoint, a lock
acquisition, a stat increment — and assert the analyzer reports
exactly the expected finding, no more, no less. An analyzer that
goes quiet on any of these mutations has lost the property the rule
exists for, no matter how green the fixture corpus is.

The unmutated scratch copy must be clean under every exercised rule,
so the test also guards the annotation set in ``src/`` against rot.

Run directly or via ctest (``cdplint_mutation``).
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

CDPLINT = Path(__file__).resolve().parent
REPO = CDPLINT.parents[1]

_FINDING_RE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+): "
    r"error\[snapshot-completeness\]: non-static member "
    r"'(?P<member>\w+)' of (?P<cls>\w+) ")

# (class, file with the saveState body, member, the serialization
# line to delete — must occur exactly once in that file).
MUTATIONS = [
    ("Bus", "src/memsys/bus.cc", "busyUntil",
     "w.u64(busyUntil);"),
    ("Cache", "src/memsys/cache.cc", "stamp",
     "w.u64(stamp);"),
    ("Gshare", "src/cpu/gshare.cc", "history",
     "w.u32(history);"),
    ("Tlb", "src/vm/tlb.cc", "stamp",
     "w.u64(stamp);"),
    ("MarkovPrefetcher", "src/prefetch/markov_prefetcher.cc",
     "havePrev", "w.boolean(havePrev);"),
    ("QueuedArbiter", "src/memsys/queued_arbiter.cc",
     "enqueuedCount", "w.u64(enqueuedCount);"),
    ("AdaptiveVamController", "src/core/adaptive_vam.cc",
     "issuedInEpoch", "w.u64(issuedInEpoch);"),
    ("HeapAllocator", "src/workloads/heap_allocator.cc", "mappedTo",
     "w.u32(mappedTo);"),
    ("MemorySystem", "src/sim/memory_system.cc", "lastDrain",
     "w.u64(lastDrain);"),
]


# Flow-sensitive rule mutations: (rule, file, line-needle, which
# occurrence to delete — an int index, or "all" — and the exact
# finding set the mutant must produce, as (path, line) pairs in the
# post-deletion line numbering).
CFG_MUTATIONS = [
    # Delete one enum case from a fully-covered switch with no
    # default: eventKindName() stops covering EventKind::Scan.
    ("exhaustive-switch", "src/obs/event.hh",
     'case EventKind::Scan: return "scan";', 0,
     {("src/obs/event.hh", 68)}),
    # Delete every drain between warm-up and checkpoint (both the
    # cold leg's and the fork leg's — they share one function body,
    # so either alone dominates): the annotated saveCheckpoint()
    # call loses its quiesce.
    ("quiesce-before-snapshot", "bench/bench_common.cc",
     ".quiesce();", "all",
     {("bench/bench_common.cc", 202)}),
    # Rot both requires_quiesced annotations off the checkpoint
    # writers: the raw memsys->saveState inside resurfaces.
    ("quiesce-before-snapshot", "src/snapshot/snapshot.cc",
     "// cdplint: requires_quiesced(memsys)", "all",
     {("src/snapshot/snapshot.cc", 141)}),
    # Delete the lock acquisition in ~ThreadPool: the guarded
    # 'stopping' write right below it goes bare.
    ("lock-discipline", "src/runner/thread_pool.cc",
     "std::lock_guard<std::mutex> lk(mtx);", 0,
     {("src/runner/thread_pool.cc", 39)}),
    # Delete the only increment of a stat: 'trained' turns into a
    # dead counter that dumps as a plausible zero.
    ("stat-liveness", "src/prefetch/markov_prefetcher.cc",
     "++trained;", 0,
     {("src/prefetch/markov_prefetcher.hh", 114)}),
]

CFG_RULES = sorted({m[0] for m in CFG_MUTATIONS})

_ANY_FINDING_RE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+): "
    r"(?:error|warning)\[(?P<rule>[\w-]+)\]: ")


def run_lint(args, cwd):
    proc = subprocess.run(
        [sys.executable, str(CDPLINT)] + args,
        cwd=str(cwd), capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def _copy_src(work: Path) -> Path:
    dst = work / "src"
    shutil.copytree(REPO / "src", dst)
    return dst


def _findings(stdout):
    out = set()
    for ln in stdout.splitlines():
        m = _FINDING_RE.match(ln)
        if m:
            out.add((m.group("cls"), m.group("member")))
    return out


def _copy_tree(work: Path) -> None:
    """src plus bench: the CFG mutations reach into both."""
    shutil.copytree(REPO / "src", work / "src")
    shutil.copytree(REPO / "bench", work / "bench")


def _delete_line(target: Path, needle: str, which) -> None:
    """Delete the ``which``-th line containing ``needle`` ("all" for
    every occurrence), asserting the needle count is as expected."""
    lines = target.read_text().splitlines(keepends=True)
    hits = [i for i, ln in enumerate(lines) if needle in ln]
    assert hits, f"{target}: no line contains '{needle}'"
    if which == "all":
        doomed = set(hits)
    else:
        assert len(hits) > which, \
            f"{target}: only {len(hits)} lines contain '{needle}'"
        doomed = {hits[which]}
    target.write_text("".join(
        ln for i, ln in enumerate(lines) if i not in doomed))


def _cfg_findings(stdout):
    out = set()
    for ln in stdout.splitlines():
        m = _ANY_FINDING_RE.match(ln)
        if m:
            out.add((m.group("path"), int(m.group("line"))))
    return out


class MutationKill(unittest.TestCase):
    def test_unmutated_tree_is_clean(self):
        with tempfile.TemporaryDirectory() as td:
            work = Path(td)
            _copy_src(work)
            code, out, err = run_lint(
                ["--no-baseline", "--rule", "snapshot-completeness",
                 "src"], cwd=work)
            self.assertEqual(code, 0, out + err)

    def test_each_mutant_is_killed(self):
        for cls, rel, member, stmt in MUTATIONS:
            with self.subTest(cls=cls, member=member):
                with tempfile.TemporaryDirectory() as td:
                    work = Path(td)
                    _copy_src(work)
                    target = work / rel
                    text = target.read_text()
                    self.assertEqual(
                        text.count(stmt), 1,
                        f"{rel}: expected exactly one '{stmt}'")
                    lines = [ln for ln in
                             text.splitlines(keepends=True)
                             if stmt not in ln]
                    target.write_text("".join(lines))
                    code, out, err = run_lint(
                        ["--no-baseline",
                         "--rule", "snapshot-completeness", "src"],
                        cwd=work)
                    self.assertEqual(code, 1, out + err)
                    self.assertEqual(
                        _findings(out), {(cls, member)},
                        f"mutating {cls}.{member} must yield exactly "
                        f"that finding\n--- output ---\n{out}{err}")


class CfgMutationKill(unittest.TestCase):
    """The flow-sensitive rules must each catch their canonical
    regression when it is introduced into the real tree."""

    def test_unmutated_tree_is_clean(self):
        with tempfile.TemporaryDirectory() as td:
            work = Path(td)
            _copy_tree(work)
            args = ["--no-baseline"]
            for rid in CFG_RULES:
                args += ["--rule", rid]
            code, out, err = run_lint(
                args + ["src", "bench"], cwd=work)
            self.assertEqual(code, 0, out + err)

    def test_each_mutant_is_killed(self):
        for rid, rel, needle, which, expected in CFG_MUTATIONS:
            with self.subTest(rule=rid, file=rel):
                with tempfile.TemporaryDirectory() as td:
                    work = Path(td)
                    _copy_tree(work)
                    _delete_line(work / rel, needle, which)
                    code, out, err = run_lint(
                        ["--no-baseline", "--rule", rid,
                         "src", "bench"], cwd=work)
                    self.assertEqual(code, 1, out + err)
                    self.assertEqual(
                        _cfg_findings(out), expected,
                        f"deleting '{needle}' in {rel} must yield "
                        f"exactly {sorted(expected)}\n"
                        f"--- output ---\n{out}{err}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
