#!/usr/bin/env python3
"""cdplint mutation self-test for snapshot-completeness.

For each of several real serialized classes, copy the repo's ``src``
tree to a scratch directory, delete the single line that serializes
one member in ``saveState``, and assert the analyzer reports exactly
that member of exactly that class — no more, no less. An analyzer
that goes quiet on any of these mutations has lost the property the
rule exists for, no matter how green the fixture corpus is.

The unmutated scratch copy must be clean, so the test also guards the
annotation set in ``src/`` against rot.

Run directly or via ctest (``cdplint_mutation``).
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

CDPLINT = Path(__file__).resolve().parent
REPO = CDPLINT.parents[1]

_FINDING_RE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+): "
    r"error\[snapshot-completeness\]: non-static member "
    r"'(?P<member>\w+)' of (?P<cls>\w+) ")

# (class, file with the saveState body, member, the serialization
# line to delete — must occur exactly once in that file).
MUTATIONS = [
    ("Bus", "src/memsys/bus.cc", "busyUntil",
     "w.u64(busyUntil);"),
    ("Cache", "src/memsys/cache.cc", "stamp",
     "w.u64(stamp);"),
    ("Gshare", "src/cpu/gshare.cc", "history",
     "w.u32(history);"),
    ("Tlb", "src/vm/tlb.cc", "stamp",
     "w.u64(stamp);"),
    ("MarkovPrefetcher", "src/prefetch/markov_prefetcher.cc",
     "havePrev", "w.boolean(havePrev);"),
    ("QueuedArbiter", "src/memsys/queued_arbiter.cc",
     "enqueuedCount", "w.u64(enqueuedCount);"),
    ("AdaptiveVamController", "src/core/adaptive_vam.cc",
     "issuedInEpoch", "w.u64(issuedInEpoch);"),
    ("HeapAllocator", "src/workloads/heap_allocator.cc", "mappedTo",
     "w.u32(mappedTo);"),
    ("MemorySystem", "src/sim/memory_system.cc", "lastDrain",
     "w.u64(lastDrain);"),
]


def run_lint(args, cwd):
    proc = subprocess.run(
        [sys.executable, str(CDPLINT)] + args,
        cwd=str(cwd), capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def _copy_src(work: Path) -> Path:
    dst = work / "src"
    shutil.copytree(REPO / "src", dst)
    return dst


def _findings(stdout):
    out = set()
    for ln in stdout.splitlines():
        m = _FINDING_RE.match(ln)
        if m:
            out.add((m.group("cls"), m.group("member")))
    return out


class MutationKill(unittest.TestCase):
    def test_unmutated_tree_is_clean(self):
        with tempfile.TemporaryDirectory() as td:
            work = Path(td)
            _copy_src(work)
            code, out, err = run_lint(
                ["--no-baseline", "--rule", "snapshot-completeness",
                 "src"], cwd=work)
            self.assertEqual(code, 0, out + err)

    def test_each_mutant_is_killed(self):
        for cls, rel, member, stmt in MUTATIONS:
            with self.subTest(cls=cls, member=member):
                with tempfile.TemporaryDirectory() as td:
                    work = Path(td)
                    _copy_src(work)
                    target = work / rel
                    text = target.read_text()
                    self.assertEqual(
                        text.count(stmt), 1,
                        f"{rel}: expected exactly one '{stmt}'")
                    lines = [ln for ln in
                             text.splitlines(keepends=True)
                             if stmt not in ln]
                    target.write_text("".join(lines))
                    code, out, err = run_lint(
                        ["--no-baseline",
                         "--rule", "snapshot-completeness", "src"],
                        cwd=work)
                    self.assertEqual(code, 1, out + err)
                    self.assertEqual(
                        _findings(out), {(cls, member)},
                        f"mutating {cls}.{member} must yield exactly "
                        f"that finding\n--- output ---\n{out}{err}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
